// Command fdlint runs the repository's invariant analyzers (see
// internal/lint) over the given packages and exits non-zero if any
// finding survives suppression. CI gates merges on `fdlint ./...`
// beside gofmt, vet and staticcheck.
//
// Usage:
//
//	fdlint [-list] [packages]
//
// Suppress a finding with a reasoned directive (the reason is
// mandatory — see cmd/fdlint/README.md for policy):
//
//	//lint:ignore fdlint/<analyzer> <why this code is exempt>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fdlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := driver.Load(dir, patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := driver.Run(pkgs, lint.Analyzers())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fdlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdlint:", err)
	os.Exit(2)
}
