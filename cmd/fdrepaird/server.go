package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/fdrepair"
	"repro/internal/srepair"
	"repro/internal/table"
)

// config freezes the daemon's operational knobs.
type config struct {
	workers        int           // solver worker budget
	queueDepth     int           // admitted-request bound; beyond it requests are shed
	tenantRate     float64       // per-tenant sustained requests/second (0 = unlimited)
	tenantBurst    float64       // per-tenant burst allowance
	defaultTimeout time.Duration // per-request deadline when the client asks for none
	maxTimeout     time.Duration // ceiling for client-requested ?timeout=
	approxFallback time.Duration // exact→approx degradation budget (0 = off)
	maxBody        int64         // request body cap in bytes
	logf           func(format string, args ...any)
}

// counters are the daemon's per-request outcome counters, exported at
// /metrics. Admission outcomes (admitted vs the shed_* family) sum to
// every /solve request seen; completion outcomes describe admitted
// requests only.
type counters struct {
	admitted         atomic.Int64
	shedQueue        atomic.Int64
	shedQuota        atomic.Int64
	shedDraining     atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	deadlineExceeded atomic.Int64
	panicked         atomic.Int64
	degraded         atomic.Int64

	// Ingestion volume: rows and raw body bytes accepted by the
	// streaming CSV ingester across all /solve requests (including
	// requests whose solve later failed; a table was still built).
	ingestRows  atomic.Int64
	ingestBytes atomic.Int64

	// byAlgo counts admitted requests by their parsed algorithm
	// (exported as fdrepaird_requests_total{algo=...}); a request that
	// later fails or degrades still counts under the algorithm it asked
	// for.
	byAlgo [int(fdrepair.AlgoPriorityRepair) + 1]atomic.Int64
}

// server is the repair daemon: admission control and lifecycle around
// one shared fdrepair.Solver.
type server struct {
	cfg      config
	sv       *fdrepair.Solver
	sem      chan struct{} // admission queue slots
	quotas   *quotas
	draining atomic.Bool
	m        counters
}

func newServer(cfg config) *server {
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queueDepth < 1 {
		cfg.queueDepth = 1
	}
	return &server{
		cfg:    cfg,
		sv:     fdrepair.NewSolver(fdrepair.WithParallelism(cfg.workers), fdrepair.WithStats()),
		sem:    make(chan struct{}, cfg.queueDepth),
		quotas: newQuotas(cfg.tenantRate, cfg.tenantBurst),
	}
}

// routes builds the daemon's handler.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /solve", s.handleSolve)
	return mux
}

// startDrain flips the server into draining: /readyz reports 503 so
// load balancers stop routing here, and new /solve requests are shed.
// In-flight requests keep running; the HTTP shutdown and Solver.Close
// in main wait for them.
func (s *server) startDrain() { s.draining.Store(true) }

// handleHealthz: liveness — the process is up and serving.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz: readiness — 200 while admitting, 503 once draining.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleSolve admits and runs one repair request:
//
//	POST /solve?fd=A+-%3E+B&algo=auto&timeout=5s
//	X-Tenant: team-a
//	<CSV table body>
//
// The body is the table (header row = attributes; optional id/w
// columns). Repeatable fd params give the FD set; algo is one of
// auto (default), optimal, exact, approx, urepair, mpd. The response
// is the repaired table as CSV with X-Repair-* headers.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Admission, cheapest gate first: drain state, then the tenant
	// quota (token bucket), then a queue slot.
	if s.draining.Load() {
		s.m.shedDraining.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if ok, wait := s.quotas.allow(tenant); !ok {
		s.m.shedQuota.Add(1)
		w.Header().Set("Retry-After", retryAfter(wait))
		http.Error(w, fmt.Sprintf("tenant %q over quota", tenant), http.StatusTooManyRequests)
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.m.shedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "request queue full", http.StatusTooManyRequests)
		return
	}
	s.m.admitted.Add(1)

	// Parse outside the solver: a malformed request must cost nothing
	// but the parse.
	q := r.URL.Query()
	algoName := q.Get("algo")
	if algoName == "" {
		algoName = "auto"
	}
	algo, err := parseAlgo(algoName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	timeout := s.cfg.defaultTimeout
	if ts := q.Get("timeout"); ts != "" {
		d, err := time.ParseDuration(ts)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad timeout %q", ts), http.StatusBadRequest)
			return
		}
		timeout = d
	}
	if s.cfg.maxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.maxTimeout) {
		timeout = s.cfg.maxTimeout
	}
	// The body streams straight through the chunked ingester: the
	// daemon never holds the raw CSV in memory, only the dictionary
	// encoding, so peak memory per request is bounded by the encoded
	// table plus one chunk — not the body size.
	cr := &countingReader{r: io.LimitReader(http.MaxBytesReader(w, r.Body, s.cfg.maxBody), s.cfg.maxBody)}
	tab, err := table.IngestCSV(cr, "T")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad table: %v", err), http.StatusBadRequest)
		return
	}
	s.m.ingestRows.Add(int64(tab.Len()))
	s.m.ingestBytes.Add(cr.n.Load())
	var ds *fdrepair.FDSet
	if fdSpecs := q["fd"]; len(fdSpecs) > 0 {
		ds, err = fdrepair.ParseFDs(tab.Schema(), fdSpecs...)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad fd: %v", err), http.StatusBadRequest)
			return
		}
	}

	// One request = one single-element batch on the shared Solver: its
	// own scope, deadline and stats; its recursion's tasks interleave
	// with every other in-flight request on the one scheduler.
	// Request.Context is the connection's context, so a vanished client
	// cancels its own solve and nothing else.
	req := fdrepair.Request{FDs: ds, Table: tab, Algorithm: algo.algo, Context: r.Context()}
	var cqaProject []string
	switch algo.algo {
	case fdrepair.AlgoCFDSRepair:
		// algo=cfd repairs under cfd= constraints; fd= is not consulted.
		specs := q["cfd"]
		if len(specs) == 0 {
			http.Error(w, "algo=cfd requires at least one cfd query parameter", http.StatusBadRequest)
			return
		}
		for _, spec := range specs {
			c, err := fdrepair.ParseConditionalFD(tab.Schema(), spec)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad cfd: %v", err), http.StatusBadRequest)
				return
			}
			req.CFDs = append(req.CFDs, c)
		}
	case fdrepair.AlgoDenialSRepair:
		// algo=denial repairs under dc= constraints, or under the fd=
		// set translated to denial form when no dc= is given.
		for _, spec := range q["dc"] {
			c, err := fdrepair.ParseDenial(tab.Schema(), spec)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad dc: %v", err), http.StatusBadRequest)
				return
			}
			req.Denial = append(req.Denial, c)
		}
		if len(req.Denial) == 0 && ds == nil {
			http.Error(w, "algo=denial requires dc or fd query parameters", http.StatusBadRequest)
			return
		}
	case fdrepair.AlgoCQA:
		if ds == nil {
			http.Error(w, "at least one fd query parameter is required", http.StatusBadRequest)
			return
		}
		proj := q.Get("project")
		if proj == "" {
			http.Error(w, "algo=cqa requires a project query parameter (comma-separated attributes)", http.StatusBadRequest)
			return
		}
		for _, a := range strings.Split(proj, ",") {
			cqaProject = append(cqaProject, strings.TrimSpace(a))
		}
		var filters []fdrepair.CQAFilter
		for _, cond := range q["where"] {
			attr, val, ok := strings.Cut(cond, "=")
			pos, known := tab.Schema().AttrIndex(strings.TrimSpace(attr))
			if !ok || !known {
				http.Error(w, fmt.Sprintf("bad where %q (want attr=value)", cond), http.StatusBadRequest)
				return
			}
			filters = append(filters, fdrepair.CQAFilter{Attr: pos, Value: val})
		}
		query, err := fdrepair.NewCQAQuery(tab.Schema(), cqaProject, filters...)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad query: %v", err), http.StatusBadRequest)
			return
		}
		req.Query = query
	case fdrepair.AlgoPriorityRepair:
		if ds == nil {
			http.Error(w, "at least one fd query parameter is required", http.StatusBadRequest)
			return
		}
		rel := fdrepair.NewPriority()
		for _, p := range q["prefer"] {
			a, b, ok := strings.Cut(p, ">")
			ai, errA := strconv.Atoi(strings.TrimSpace(a))
			bi, errB := strconv.Atoi(strings.TrimSpace(b))
			if !ok || errA != nil || errB != nil {
				http.Error(w, fmt.Sprintf("bad prefer %q (want id>id)", p), http.StatusBadRequest)
				return
			}
			rel.Add(ai, bi)
		}
		req.Priority = rel
	default:
		if ds == nil {
			http.Error(w, "at least one fd query parameter is required", http.StatusBadRequest)
			return
		}
	}
	s.m.byAlgo[int(algo.algo)].Add(1)
	opts := []fdrepair.BatchOption{fdrepair.WithRequestTimeout(timeout)}
	if s.cfg.approxFallback > 0 {
		opts = append(opts, fdrepair.WithApproxFallback(s.cfg.approxFallback))
	}
	res := s.sv.SolveBatch([]fdrepair.Request{req}, opts...)[0]
	ranAlgo := algo.algo

	// algo=auto degrades a hard FD set to the 2-approximation instead
	// of failing the request.
	if algo.auto && errors.Is(res.Err, srepair.ErrNoSimplification) {
		req.Algorithm = fdrepair.AlgoApproxSRepair
		res = s.sv.SolveBatch([]fdrepair.Request{req}, opts...)[0]
		res.Degraded = true
		ranAlgo = fdrepair.AlgoApproxSRepair
	}

	if res.Err != nil {
		s.writeSolveError(w, r, res.Err)
		return
	}
	s.m.completed.Add(1)
	if res.Degraded {
		s.m.degraded.Add(1)
	}
	if res.CQA != nil {
		// algo=cqa produces answer sets, not a repair: the body is the
		// certain answers as CSV over the projected attributes, counts in
		// the headers.
		h := w.Header()
		h.Set("Content-Type", "text/csv")
		h.Set("X-Repair-Algorithm", ranAlgo.String())
		h.Set("X-Cqa-Certain", strconv.Itoa(len(res.CQA.Certain)))
		h.Set("X-Cqa-Possible", strconv.Itoa(len(res.CQA.Possible)))
		h.Set("X-Cqa-Repairs", strconv.Itoa(res.CQA.Repairs))
		fmt.Fprintln(w, strings.Join(cqaProject, ","))
		for _, tup := range res.CQA.Certain {
			fmt.Fprintln(w, strings.Join(tup, ","))
		}
		return
	}
	out, cost := res.Table, res.Cost
	h := w.Header()
	if res.URepair != nil {
		out, cost = res.URepair.Update, res.URepair.Cost
		h.Set("X-Urepair-Exact", strconv.FormatBool(res.URepair.Exact))
		h.Set("X-Urepair-Ratio", strconv.FormatFloat(res.URepair.RatioBound, 'g', -1, 64))
		h.Set("X-Urepair-Method", res.URepair.Method)
	}
	h.Set("Content-Type", "text/csv")
	h.Set("X-Repair-Algorithm", ranAlgo.String())
	h.Set("X-Repair-Cost", strconv.FormatFloat(cost, 'g', -1, 64))
	h.Set("X-Repair-Kept", strconv.Itoa(out.Len()))
	h.Set("X-Repair-Input-Rows", strconv.Itoa(tab.Len()))
	h.Set("X-Repair-Degraded", strconv.FormatBool(res.Degraded))
	if err := out.WriteCSV(w); err != nil {
		// Headers are gone; all we can do is log.
		s.cfg.logf("fdrepaird: writing response: %v", err)
	}
}

// writeSolveError maps a request's failure to an HTTP status and
// counts the outcome.
func (s *server) writeSolveError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *fdrepair.PanicError
	switch {
	case errors.As(err, &pe):
		// The panic was isolated to this request; the daemon, solver and
		// scheduler are intact. The stack goes to the log, not the
		// client.
		s.m.panicked.Add(1)
		s.cfg.logf("fdrepaird: %s %s: isolated panic: %v", r.Method, r.URL.Path, err)
		http.Error(w, fmt.Sprintf("solve panicked (isolated): %v", pe.Value), http.StatusInternalServerError)
	case errors.Is(err, context.DeadlineExceeded):
		s.m.deadlineExceeded.Add(1)
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is nginx-speak, 408 is the closest
		// standard status.
		s.m.failed.Add(1)
		http.Error(w, "canceled", http.StatusRequestTimeout)
	case errors.Is(err, fdrepair.ErrSolverClosed):
		s.m.shedDraining.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case errors.Is(err, srepair.ErrNoSimplification):
		s.m.failed.Add(1)
		http.Error(w, "FD set is APX-hard for exact S-repair; use algo=auto, approx or exact", http.StatusUnprocessableEntity)
	default:
		s.m.failed.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// algoChoice is a parsed algo parameter; auto marks the
// optimal-with-approx-degradation mode.
type algoChoice struct {
	algo fdrepair.Algorithm
	auto bool
}

// supportedAlgos is the full algo= vocabulary, quoted back verbatim in
// the 400 rejecting an unknown value.
const supportedAlgos = "auto|optimal|exact|approx|urepair|mpd|cfd|denial|cqa|priority"

func parseAlgo(name string) (algoChoice, error) {
	switch name {
	case "auto":
		return algoChoice{fdrepair.AlgoOptimalSRepair, true}, nil
	case "optimal", "optimal-srepair":
		return algoChoice{algo: fdrepair.AlgoOptimalSRepair}, nil
	case "exact", "exact-srepair":
		return algoChoice{algo: fdrepair.AlgoExactSRepair}, nil
	case "approx", "approx-srepair":
		return algoChoice{algo: fdrepair.AlgoApproxSRepair}, nil
	case "urepair", "optimal-urepair":
		return algoChoice{algo: fdrepair.AlgoOptimalURepair}, nil
	case "mpd", "most-probable":
		return algoChoice{algo: fdrepair.AlgoMostProbable}, nil
	case "cfd", "cfd-srepair":
		return algoChoice{algo: fdrepair.AlgoCFDSRepair}, nil
	case "denial", "denial-srepair":
		return algoChoice{algo: fdrepair.AlgoDenialSRepair}, nil
	case "cqa":
		return algoChoice{algo: fdrepair.AlgoCQA}, nil
	case "priority", "priority-repair":
		return algoChoice{algo: fdrepair.AlgoPriorityRepair}, nil
	default:
		return algoChoice{}, fmt.Errorf("unknown algo %q (%s)", name, supportedAlgos)
	}
}

// countingReader counts bytes as they stream through to the ingester,
// so the volume metrics reflect what was actually read — not the
// Content-Length header, which streaming clients may omit.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// retryAfter renders a wait as whole seconds, rounding up, minimum 1 —
// Retry-After takes integral seconds.
func retryAfter(wait time.Duration) string {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
