package main

import (
	"fmt"
	"net/http"
	"reflect"
	"sort"

	"repro/fdrepair"
)

// handleMetrics renders the daemon's counters in Prometheus text
// exposition format, hand-rolled to keep the daemon dependency-free.
// Two families:
//
//   - fdrepaird_requests_total{outcome=...} — per-request admission and
//     completion outcomes (S6); the {algo=...} series of the same
//     family counts admitted requests by their parsed algorithm.
//   - fdrepaird_solve_<counter>_total — the solver's own SolveStats
//     snapshot, one series per counter, derived from the snapshot's
//     JSON tags so new solver counters show up without touching this
//     file.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	fmt.Fprintln(w, "# HELP fdrepaird_requests_total Solve requests by outcome.")
	fmt.Fprintln(w, "# TYPE fdrepaird_requests_total counter")
	for _, o := range []struct {
		name string
		v    int64
	}{
		{"admitted", s.m.admitted.Load()},
		{"shed_queue_full", s.m.shedQueue.Load()},
		{"shed_quota", s.m.shedQuota.Load()},
		{"shed_draining", s.m.shedDraining.Load()},
		{"completed", s.m.completed.Load()},
		{"failed", s.m.failed.Load()},
		{"deadline_exceeded", s.m.deadlineExceeded.Load()},
		{"panicked", s.m.panicked.Load()},
		{"degraded", s.m.degraded.Load()},
	} {
		fmt.Fprintf(w, "fdrepaird_requests_total{outcome=%q} %d\n", o.name, o.v)
	}
	for i := range s.m.byAlgo {
		fmt.Fprintf(w, "fdrepaird_requests_total{algo=%q} %d\n", fdrepair.Algorithm(i).String(), s.m.byAlgo[i].Load())
	}

	fmt.Fprintln(w, "# HELP fdrepaird_ingest_rows_total Rows accepted by the streaming CSV ingester.")
	fmt.Fprintln(w, "# TYPE fdrepaird_ingest_rows_total counter")
	fmt.Fprintf(w, "fdrepaird_ingest_rows_total %d\n", s.m.ingestRows.Load())
	fmt.Fprintln(w, "# HELP fdrepaird_ingest_bytes_total Request body bytes consumed by the streaming CSV ingester.")
	fmt.Fprintln(w, "# TYPE fdrepaird_ingest_bytes_total counter")
	fmt.Fprintf(w, "fdrepaird_ingest_bytes_total %d\n", s.m.ingestBytes.Load())

	fmt.Fprintln(w, "# HELP fdrepaird_solve_total Cumulative solver counters (SolveStats).")
	snap := s.sv.Stats()
	rv := reflect.ValueOf(snap)
	rt := rv.Type()
	type series struct {
		name string
		v    int64
	}
	var out []series
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		if tag == "" || tag == "-" || rt.Field(i).Type.Kind() != reflect.Int64 {
			continue
		}
		out = append(out, series{"fdrepaird_solve_" + tag + "_total", rv.Field(i).Int()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, o := range out {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", o.name, o.name, o.v)
	}
}
