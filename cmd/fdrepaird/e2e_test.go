package main

import (
	"bufio"
	"io"
	"net/http"
	"net/url"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDaemonE2E builds the real binary, starts it on an ephemeral
// port, waits for readiness, runs one solve over the wire, sends
// SIGTERM, and requires a clean drain with exit code 0.
func TestDaemonE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("e2e: go toolchain not in PATH")
	}

	bin := filepath.Join(t.TempDir(), "fdrepaird")
	if out, err := exec.Command(gobin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "10s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// First line announces the bound address; collect the rest for the
	// drain assertions.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon exited before announcing its address: %v", sc.Err())
	}
	first := sc.Text()
	const marker = "listening on "
	i := strings.Index(first, marker)
	if i < 0 {
		t.Fatalf("unexpected first line %q", first)
	}
	addr := strings.TrimSpace(first[i+len(marker):])
	var rest strings.Builder
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	ready := false
	for i := 0; i < 100 && !ready; i++ {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
		}
		if !ready {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !ready {
		t.Fatal("daemon never became ready")
	}

	resp, err := client.Post(
		base+"/solve?"+url.Values{"fd": {"A -> B"}}.Encode(),
		"text/csv",
		strings.NewReader("id,A,B,w\n1,a1,x,1\n2,a1,y,1\n3,a2,z,1\n"),
	)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve over the wire: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Repair-Cost") != "1" {
		t.Fatalf("X-Repair-Cost = %q", resp.Header.Get("X-Repair-Cost"))
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}
	wg.Wait()
	if !strings.Contains(rest.String(), "drained cleanly") {
		t.Fatalf("drain log missing:\n%s", rest.String())
	}
}
