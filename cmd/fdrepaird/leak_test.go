package main

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestShedPathGoroutineLeak hammers the admission queue's shed path:
// with a single queue slot held, every request takes the 429 fast path,
// which must complete without parking anything — a goroutine retained
// per shed request would turn overload (exactly when shedding fires)
// into a resource leak. After the slot frees, a real solve must still
// succeed and the process must return to its goroutine baseline.
func TestShedPathGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cfg := testConfig()
	cfg.queueDepth = 1
	s := newServer(cfg)
	ts := httptest.NewServer(s.routes())

	// Occupy the single queue slot so every concurrent request below is
	// shed rather than admitted.
	s.sem <- struct{}{}
	const n = 32
	var wg sync.WaitGroup
	var shed sync.WaitGroup
	shed.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postSolve(t, ts, url.Values{"fd": {"A -> B"}}.Encode(), "", conflicted)
			readAll(t, resp)
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("status %d, want 429", resp.StatusCode)
			}
			shed.Done()
		}()
	}
	shed.Wait()
	if got := s.m.shedQueue.Load(); got < n {
		t.Errorf("shedQueue counter = %d, want >= %d", got, n)
	}
	<-s.sem

	// The queue must still admit work after the storm.
	resp := postSolve(t, ts, url.Values{"fd": {"A -> B"}}.Encode(), "", conflicted)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after slot freed: status %d", resp.StatusCode)
	}

	wg.Wait()
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+3 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
