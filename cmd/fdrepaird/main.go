// Command fdrepaird serves optimal-repair computation over HTTP: a
// fault-tolerant daemon over the fdrepair batch/stream engine with
// per-request panic isolation, admission control (bounded queue,
// per-tenant token buckets, load shedding), per-request deadlines with
// optional exact→approx degradation, Prometheus metrics, and graceful
// drain on SIGTERM. See the package README for the HTTP API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/solve/failpoint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, serve until SIGTERM or
// SIGINT, drain, exit. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdrepaird", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "solver worker budget")
		queue       = fs.Int("queue", 64, "max concurrently admitted solve requests; beyond this, shed with 429")
		tenantRate  = fs.Float64("tenant-rate", 0, "per-tenant sustained requests/second (0 = unlimited)")
		tenantBurst = fs.Float64("tenant-burst", 10, "per-tenant burst allowance")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 5*time.Minute, "ceiling for client-requested timeouts (0 = no ceiling)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget after SIGTERM")
		approx      = fs.Duration("approx-fallback", 0, "degrade exact solves to the 2-approximation after this budget (0 = off)")
		maxBody     = fs.Int64("max-body", 64<<20, "max request body bytes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Fault injection is opt-in via the environment so production
	// binaries carry the hooks disarmed (one atomic load per block).
	if env := os.Getenv(failpoint.EnvVar); env != "" {
		names, err := failpoint.EnableFromEnv(env)
		if err != nil {
			fmt.Fprintf(stderr, "fdrepaird: %s: %v\n", failpoint.EnvVar, err)
			return 2
		}
		fmt.Fprintf(stderr, "fdrepaird: failpoints armed: %v\n", names)
	}

	srv := newServer(config{
		workers:        *workers,
		queueDepth:     *queue,
		tenantRate:     *tenantRate,
		tenantBurst:    *tenantBurst,
		defaultTimeout: *timeout,
		maxTimeout:     *maxTimeout,
		approxFallback: *approx,
		maxBody:        *maxBody,
		logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "fdrepaird: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	// The e2e smoke test and operators parse this line; keep it stable.
	fmt.Fprintf(stdout, "fdrepaird: listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "fdrepaird: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Drain: stop admitting (readyz flips 503), let in-flight requests
	// finish within the budget, then quiesce the solver.
	fmt.Fprintf(stdout, "fdrepaird: draining (budget %s)\n", *drain)
	srv.startDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "fdrepaird: shutdown: %v\n", err)
		hs.Close()
		code = 1
	}
	if err := srv.sv.Close(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(stderr, "fdrepaird: solver close: %v\n", err)
		code = 1
	} else if err != nil {
		fmt.Fprintf(stderr, "fdrepaird: solver close: drain budget exceeded\n")
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(stdout, "fdrepaird: drained cleanly")
	}
	return code
}
