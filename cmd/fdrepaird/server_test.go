package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// testConfig is a permissive baseline the individual tests tighten.
func testConfig() config {
	return config{
		workers:        2,
		queueDepth:     8,
		defaultTimeout: 10 * time.Second,
		maxBody:        1 << 20,
	}
}

// conflicted is a table with one A-group conflict under "A -> B": the
// optimal S-repair drops one of the first two rows (cost 1, 2 kept).
const conflicted = "id,A,B,w\n1,a1,x,1\n2,a1,y,1\n3,a2,z,1\n"

func postSolve(t *testing.T, ts *httptest.Server, query, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/solve?"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSolveRoundtrip(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	q := url.Values{"fd": {"A -> B"}}.Encode()
	resp := postSolve(t, ts, q, "", conflicted)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Repair-Cost"); got != "1" {
		t.Fatalf("X-Repair-Cost = %q, want 1", got)
	}
	if got := resp.Header.Get("X-Repair-Kept"); got != "2" {
		t.Fatalf("X-Repair-Kept = %q, want 2", got)
	}
	if got := resp.Header.Get("X-Repair-Degraded"); got != "false" {
		t.Fatalf("X-Repair-Degraded = %q", got)
	}
	// Round-trippable CSV: header + 2 rows, the consistent pair kept.
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("response CSV has %d lines, want 3:\n%s", len(lines), body)
	}
	if !strings.Contains(body, "a2,z") {
		t.Fatalf("conflict-free row missing from repair:\n%s", body)
	}
}

func TestSolveURepairAlgo(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	q := url.Values{"fd": {"A -> B"}, "algo": {"urepair"}}.Encode()
	resp := postSolve(t, ts, q, "", conflicted)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// An update repair keeps all three rows and reports its guarantee.
	if got := resp.Header.Get("X-Repair-Kept"); got != "3" {
		t.Fatalf("X-Repair-Kept = %q, want 3", got)
	}
	if resp.Header.Get("X-Urepair-Exact") == "" || resp.Header.Get("X-Urepair-Method") == "" {
		t.Fatalf("U-repair guarantee headers missing: %v", resp.Header)
	}
}

func TestSolveAutoDegradesHardFDSet(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// "A -> B","B -> C" is on the hard side of the S-repair dichotomy:
	// optimal refuses, auto degrades to the 2-approximation.
	tab := "id,A,B,C,w\n1,a,b,c,1\n2,a,b2,c,1\n"
	hard := url.Values{"fd": {"A -> B", "B -> C"}}

	resp := postSolve(t, ts, hard.Encode(), "", tab)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto on hard set: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Repair-Degraded") != "true" {
		t.Fatal("auto on hard set did not mark degraded")
	}
	if resp.Header.Get("X-Repair-Algorithm") != "approx-srepair" {
		t.Fatalf("degraded algo = %q", resp.Header.Get("X-Repair-Algorithm"))
	}

	// algo=optimal on the same set is an explicit client error.
	hard.Set("algo", "optimal")
	resp = postSolve(t, ts, hard.Encode(), "", tab)
	readAll(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("optimal on hard set: status %d, want 422", resp.StatusCode)
	}
}

func TestSolveBadRequests(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for _, tc := range []struct {
		name, query, body string
	}{
		{"no fd", "", conflicted},
		{"bad fd", url.Values{"fd": {"A -> Nope"}}.Encode(), conflicted},
		{"bad algo", url.Values{"fd": {"A -> B"}, "algo": {"quantum"}}.Encode(), conflicted},
		{"bad timeout", url.Values{"fd": {"A -> B"}, "timeout": {"soon"}}.Encode(), conflicted},
		{"bad csv", url.Values{"fd": {"A -> B"}}.Encode(), "id,A,B\n1,only-two"},
	} {
		resp := postSolve(t, ts, tc.query, "", tc.body)
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestQueueShedding(t *testing.T) {
	cfg := testConfig()
	cfg.queueDepth = 1
	s := newServer(cfg)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Occupy the single queue slot directly; the next request must be
	// shed with 429 + Retry-After rather than block.
	s.sem <- struct{}{}
	resp := postSolve(t, ts, url.Values{"fd": {"A -> B"}}.Encode(), "", conflicted)
	readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	<-s.sem
	resp = postSolve(t, ts, url.Values{"fd": {"A -> B"}}.Encode(), "", conflicted)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after slot freed: status %d", resp.StatusCode)
	}
}

func TestTenantQuota(t *testing.T) {
	cfg := testConfig()
	cfg.tenantRate = 0.0001 // effectively no refill within the test
	cfg.tenantBurst = 2
	s := newServer(cfg)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	q := url.Values{"fd": {"A -> B"}}.Encode()
	for i := 0; i < 2; i++ {
		resp := postSolve(t, ts, q, "team-a", conflicted)
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("team-a request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := postSolve(t, ts, q, "team-a", conflicted)
	readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("team-a over burst: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota response missing Retry-After")
	}
	// Quotas are per tenant: team-b is unaffected.
	resp = postSolve(t, ts, q, "team-b", conflicted)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("team-b: status %d", resp.StatusCode)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	get := func(path string) *http.Response {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		return resp
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", resp.StatusCode)
	}

	s.startDrain()
	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", resp.StatusCode)
	}
	// Liveness stays green — the process is healthy, just not admitting.
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: %d", resp.StatusCode)
	}
	resp := postSolve(t, ts, url.Values{"fd": {"A -> B"}}.Encode(), "", conflicted)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/solve during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed missing Retry-After")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// One completed solve and one shed request, then scrape.
	resp := postSolve(t, ts, url.Values{"fd": {"A -> B"}}.Encode(), "", conflicted)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	s.startDrain()
	resp = postSolve(t, ts, url.Values{"fd": {"A -> B"}}.Encode(), "", conflicted)
	readAll(t, resp)
	s.draining.Store(false)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		`fdrepaird_requests_total{outcome="admitted"} 1`,
		`fdrepaird_requests_total{outcome="completed"} 1`,
		`fdrepaird_requests_total{outcome="shed_draining"} 1`,
		`fdrepaird_requests_total{outcome="panicked"} 0`,
		"fdrepaird_solve_nodes_total",
		"fdrepaird_solve_panics_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestRetryAfterRounding(t *testing.T) {
	for _, tc := range []struct {
		in   time.Duration
		want string
	}{
		{0, "1"},
		{200 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1700 * time.Millisecond, "2"},
	} {
		if got := retryAfter(tc.in); got != tc.want {
			t.Errorf("retryAfter(%v) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestQuotaRefill(t *testing.T) {
	q := newQuotas(10, 1) // 10 tokens/s, burst 1
	now := time.Unix(0, 0)
	q.now = func() time.Time { return now }

	if ok, _ := q.allow("t"); !ok {
		t.Fatal("first request denied")
	}
	ok, wait := q.allow("t")
	if ok {
		t.Fatal("bucket not drained after burst")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait = %v, want (0, 100ms]", wait)
	}
	now = now.Add(100 * time.Millisecond) // exactly one token refilled
	if ok, _ := q.allow("t"); !ok {
		t.Fatal("request denied after refill")
	}
	// The bucket never exceeds burst.
	now = now.Add(time.Hour)
	if ok, _ := q.allow("t"); !ok {
		t.Fatal("denied after long idle")
	}
	if ok, _ := q.allow("t"); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}
