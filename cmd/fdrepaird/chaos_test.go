package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/solve/failpoint"
	"repro/internal/workload"
)

// chaosBody renders a deep tractable instance as a CSV request body;
// its solve recurses through enough block dispatches for mid-recursion
// failpoints to land.
func chaosBody(t *testing.T, n int) string {
	t.Helper()
	sc, err := schema.New("R", "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	tab := workload.RandomTable(sc, n, n/10+2, rand.New(rand.NewSource(int64(n))))
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

var chaosFDs = url.Values{"fd": {"A -> B", "B -> A", "B -> C"}, "algo": {"optimal"}}

// TestChaosPanicIsolation floods the daemon with concurrent solves
// while the panic-in-block failpoint fires mid-recursion, at every
// worker count. Every request must get a response: either 200 or an
// isolated 500; the daemon, solver and scheduler survive to serve a
// clean request afterwards, and no goroutines leak.
func TestChaosPanicIsolation(t *testing.T) {
	defer failpoint.DisableAll()
	body := chaosBody(t, 400)
	baseline := runtime.NumGoroutine()

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := testConfig()
			cfg.workers = workers
			cfg.queueDepth = 32
			s := newServer(cfg)
			ts := httptest.NewServer(s.routes())

			// Fire sparsely but repeatedly: some requests absorb a panic,
			// the rest must complete untouched.
			failpoint.Enable(failpoint.PanicInBlock, failpoint.Spec{After: 40, Every: 301, Count: 6})

			const reqs = 12
			statuses := make([]int, reqs)
			bodies := make([]string, reqs)
			var wg sync.WaitGroup
			for i := 0; i < reqs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp := postSolve(t, ts, chaosFDs.Encode(), fmt.Sprintf("t%d", i%3), body)
					statuses[i] = resp.StatusCode
					bodies[i] = readAll(t, resp)
				}(i)
			}
			wg.Wait()
			failpoint.DisableAll()

			ok, panicked := 0, 0
			for i, st := range statuses {
				switch {
				case st == http.StatusOK:
					ok++
				case st == http.StatusInternalServerError && strings.Contains(bodies[i], "panicked"):
					panicked++
				default:
					t.Fatalf("request %d: status %d body %q — not OK and not an isolated panic", i, st, bodies[i])
				}
			}
			if ok == 0 {
				t.Fatal("no request survived the chaos run")
			}
			t.Logf("workers=%d: %d ok, %d isolated panics", workers, ok, panicked)

			// The scrape must agree with what the clients saw.
			resp, err := ts.Client().Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			metrics := readAll(t, resp)
			if want := fmt.Sprintf(`fdrepaird_requests_total{outcome="panicked"} %d`, panicked); !strings.Contains(metrics, want) {
				t.Fatalf("metrics missing %q:\n%s", want, metrics)
			}

			// Availability after chaos: a clean request on the same daemon.
			resp2 := postSolve(t, ts, chaosFDs.Encode(), "", body)
			b := readAll(t, resp2)
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("post-chaos request: status %d: %s", resp2.StatusCode, b)
			}

			// Drain and check for leaked goroutines: the scheduler parks
			// its helpers at idle and Close quiesces in-flight work.
			ts.Close()
			if err := s.sv.Close(context.Background()); err != nil {
				t.Fatalf("Close: %v", err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline+3 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > baseline+3 {
				buf := make([]byte, 1<<16)
				t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
			}
		})
	}
}

// TestChaosSlowBlockDeadline: with every block dispatch stalled, a
// short per-request timeout surfaces as 504 and the daemon keeps
// serving.
func TestChaosSlowBlockDeadline(t *testing.T) {
	defer failpoint.DisableAll()
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	body := chaosBody(t, 400)

	failpoint.Enable(failpoint.SlowBlock, failpoint.Spec{Sleep: 2 * time.Millisecond})
	q := url.Values{"fd": {"A -> B", "B -> A", "B -> C"}, "algo": {"optimal"}, "timeout": {"25ms"}}
	resp := postSolve(t, ts, q.Encode(), "", body)
	readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled solve: status %d, want 504", resp.StatusCode)
	}
	failpoint.DisableAll()

	resp = postSolve(t, ts, chaosFDs.Encode(), "", body)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after stall: status %d: %s", resp.StatusCode, b)
	}
}

// TestChaosCancelMidRecursion: the cancel failpoint poisons one
// request's scope mid-solve; the daemon maps it to 408 and later
// requests are unaffected.
func TestChaosCancelMidRecursion(t *testing.T) {
	defer failpoint.DisableAll()
	s := newServer(testConfig())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	body := chaosBody(t, 400)

	failpoint.Enable(failpoint.CancelMidRecursion, failpoint.Spec{After: 20, Count: 1})
	resp := postSolve(t, ts, chaosFDs.Encode(), "", body)
	readAll(t, resp)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("canceled solve: status %d, want 408", resp.StatusCode)
	}
	failpoint.DisableAll()

	resp = postSolve(t, ts, chaosFDs.Encode(), "", body)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after cancel: status %d: %s", resp.StatusCode, b)
	}
}
