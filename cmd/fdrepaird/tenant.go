package main

import (
	"sync"
	"time"
)

// quotas is a per-tenant token-bucket rate limiter. Each tenant gets a
// bucket holding up to burst tokens, refilled at rate tokens/second; a
// request spends one token. rate <= 0 disables limiting entirely.
type quotas struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate, burst float64) *quotas {
	if burst < 1 {
		burst = 1
	}
	return &quotas{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from tenant's bucket. When the bucket is dry
// it reports false and how long until a full token accrues.
func (q *quotas) allow(tenant string) (ok bool, wait time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false, time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	}
	b.tokens--
	return true, 0
}
