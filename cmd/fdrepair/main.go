// Command fdrepair computes optimal and approximate repairs of a CSV
// table under functional dependencies, and explains the complexity of
// an FD set under the dichotomy of Livshits, Kimelfeld & Roy (PODS'18).
//
// The CSV header names the attributes; optional columns "id" and "w"
// carry tuple identifiers and weights.
//
// Usage:
//
//	fdrepair classify -fd "A -> B" -fd "B -> C" -attrs A,B,C
//	fdrepair srepair  -in table.csv -fd "facility -> city" [-mode auto|exact|approx] [-out repaired.csv]
//	fdrepair urepair  -in table.csv -fd "A -> B" [-out repaired.csv]
//	fdrepair mpd      -in table.csv -fd "A -> B" [-out mpd.csv]
//	fdrepair count    -in table.csv -fd "A -> B" [-list 5]
//	fdrepair demo                      # the paper's running example
//
// See internal/cli for the implementation.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdout, os.Stderr))
}
