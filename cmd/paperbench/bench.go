package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/fdrepair"
	"repro/internal/cfd"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/priority"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// benchResult is one benchmark measurement in BENCH_srepair.json. The
// file gives future PRs a machine-readable perf trajectory of the
// repair engine; compare snapshots across commits before claiming a
// speedup. SolveStats, when present, is the counter snapshot of one
// representative (untimed) solve run after the measurement: recursion
// nodes, block fan-out, matcher path dispatches and arena reuse.
type benchResult struct {
	Name        string          `json:"name"`
	Iterations  int             `json:"iterations"`
	NsPerOp     float64         `json:"ns_per_op"`
	BytesPerOp  int64           `json:"bytes_per_op"`
	AllocsPerOp int64           `json:"allocs_per_op"`
	SolveStats  *solve.Snapshot `json:"solve_stats,omitempty"`
}

// writeBenchJSON measures the repair-engine hot paths (the Figure-1
// running example, the four hard sets of Table 1 under exact/approx
// vertex cover, and an OptSRepair scaling point) and writes the results
// as a JSON array.
func writeBenchJSON(path string) error {
	type benchCase struct {
		name  string
		fn    func(b *testing.B)
		stats func() *solve.Snapshot
	}
	var cases []benchCase

	_, officeDS, officeT := workload.Office()
	cases = append(cases, benchCase{"Fig1RunningExample/optsrepair", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srepair.OptSRepair(officeDS, officeT); err != nil {
				b.Fatal(err)
			}
		}
	}, optSRepairStats(officeDS, officeT)})

	hard := workload.HardSets()
	hardNames := make([]string, 0, len(hard))
	for name := range hard {
		hardNames = append(hardNames, name)
	}
	sort.Strings(hardNames)
	for _, name := range hardNames {
		ds := hard[name]
		tab := workload.RandomTable(ds.Schema(), 28, 3, rand.New(rand.NewSource(2)))
		cases = append(cases,
			benchCase{"Table1HardSets/" + name + "/exact", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := srepair.Exact(ds, tab); err != nil {
						b.Fatal(err)
					}
				}
			}, nil},
			benchCase{"Table1HardSets/" + name + "/approx2", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := srepair.Approx2(ds, tab); err != nil {
						b.Fatal(err)
					}
				}
			}, nil},
		)
	}

	chainSC := workload.TractableSets()["chain"].Schema()
	chainDS := fd.MustParseSet(chainSC, "A -> B", "A B -> C")
	scaleTab := workload.RandomTable(chainSC, 1600, 162, rand.New(rand.NewSource(1600)))
	cases = append(cases, benchCase{"OptSRepairScaling/chain/n=1600", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srepair.OptSRepair(chainDS, scaleTab); err != nil {
				b.Fatal(err)
			}
		}
	}, optSRepairStats(chainDS, scaleTab)})

	// Marriage-heavy scaling: the matching-dominated shape (one edge per
	// observed block, distinct-value counts ~n/10) that the sparse
	// matching engine targets; mirrors bench_test's E9 marriage case.
	marriageDS := fd.MustParseSet(chainSC, "A -> B", "B -> A", "B -> C")
	marriageTab := workload.RandomTable(chainSC, 6400, 642, rand.New(rand.NewSource(6400)))
	cases = append(cases, benchCase{"OptSRepairScaling/marriage/n=6400", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srepair.OptSRepair(marriageDS, marriageTab); err != nil {
				b.Fatal(err)
			}
		}
	}, optSRepairStats(marriageDS, marriageTab)})
	for _, n := range []int{6400, 102400} {
		// The 102400 point became feasible once workload generation was
		// batched through table.AppendRows.
		sparseTab := workload.MarriageSparseTable(chainSC, n, 3, 3, rand.New(rand.NewSource(int64(n))))
		cases = append(cases, benchCase{fmt.Sprintf("OptSRepairScaling/marriage-sparse/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srepair.OptSRepair(marriageDS, sparseTab); err != nil {
					b.Fatal(err)
				}
			}
		}, optSRepairStats(marriageDS, sparseTab)})
	}

	// U-repair planner over a multi-component FD set (key swap +
	// common-lhs + approximation): the per-component solves ride the
	// work-stealing scheduler, and the attached solve_stats record the
	// planner's per-component decisions (which subroutine won, component
	// count and sizes).
	planSC := schema.MustNew("R", "A", "B", "C", "D", "E", "F", "G", "H")
	planDS := fd.MustParseSet(planSC, "A -> B", "B -> A", "C -> D", "C -> E", "F -> G", "H -> G")
	planTab := workload.RandomTable(planSC, 400, 9, rand.New(rand.NewSource(400)))
	cases = append(cases, benchCase{"URepairPlanner/multi-component/n=400", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := urepair.Repair(planDS, planTab); err != nil {
				b.Fatal(err)
			}
		}
	}, uRepairStats(planDS, planTab)})

	// Constraint-extension engines: each class pairs the seed
	// string-tuple implementation (kept as the differential oracle)
	// against the encoded Solver-core port on the same instance, plus an
	// encoded-only 102400-row scaling point per class. Seed sizes sit
	// where the quadratic pair scans (CFD, denial) and the
	// clone-per-insertion admission loop (priority) still finish in
	// seconds; the seed CQA enumerator is bounded at 64 tuples total, so
	// its oracle point runs at n=48 while the encoded side's
	// per-component bound carries the class to n=102400.
	extStats := func(run func(*solve.Ctx) error) func() *solve.Snapshot {
		return func() *solve.Snapshot {
			st := new(solve.Stats)
			if err := run(solve.New(1, nil, st)); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: stats solve failed: %v\n", err)
				return nil
			}
			snap := st.Snapshot()
			return &snap
		}
	}
	extSV := fdrepair.NewSolver()

	cfdSC := schema.MustNew("C", "P", "K", "V")
	cfdEmb := fd.MustParseSet(cfdSC, "P K -> V").FDs()[0]
	mustCFD := func(lhsPat []table.Value, rhsPat table.Value) *cfd.CFD {
		c, err := cfd.New(cfdSC, cfdEmb, lhsPat, rhsPat)
		if err != nil {
			panic(fmt.Sprintf("benchjson: building CFD: %v", err))
		}
		return c
	}
	// One pattern-scoped wildcard CFD and one with a constant rhs, so the
	// cases exercise both the grouped conflict scan and the forced
	// (unary-violation) path.
	cfdCs := []*cfd.CFD{
		mustCFD([]table.Value{"p0", cfd.Wildcard}, cfd.Wildcard),
		mustCFD([]table.Value{"p1", cfd.Wildcard}, "v0"),
	}
	cfdTab := workload.CFDTable(cfdSC, 3200, 4, 3, 2, rand.New(rand.NewSource(3200)))
	cfdBigTab := workload.CFDTable(cfdSC, 102400, 4, 3, 2, rand.New(rand.NewSource(102400)))
	cfdCase := func(name string, tab *table.Table, encoded bool) benchCase {
		var stats func() *solve.Snapshot
		if encoded {
			stats = extStats(func(c *solve.Ctx) error {
				_, err := cfd.Approx2SRepairCtx(c, cfdCs, tab)
				return err
			})
		}
		return benchCase{name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if encoded {
					_, err = extSV.ApproxCFDSRepair(cfdCs, tab)
				} else {
					_, err = cfd.Approx2SRepair(cfdCs, tab)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}, stats}
	}
	cases = append(cases,
		cfdCase("ConstraintExtScaling/cfd/seed-oracle/n=3200", cfdTab, false),
		cfdCase("ConstraintExtScaling/cfd/encoded/n=3200", cfdTab, true),
		cfdCase("ConstraintExtScaling/cfd/encoded/n=102400", cfdBigTab, true),
	)

	denSC := schema.MustNew("S", "dept", "rank", "salary")
	denC, err := denial.Parse(denSC, "t1.dept = t2.dept & t1.rank < t2.rank & t1.salary > t2.salary")
	if err != nil {
		return fmt.Errorf("benchjson: parsing denial constraint: %w", err)
	}
	denCs := []*denial.Constraint{denC}
	denTab := workload.RankedTable(denSC, 1600, 4, 40, rand.New(rand.NewSource(1600)))
	denBigTab := workload.RankedTable(denSC, 102400, 4, 40, rand.New(rand.NewSource(102400)))
	denCase := func(name string, tab *table.Table, encoded bool) benchCase {
		var stats func() *solve.Snapshot
		if encoded {
			stats = extStats(func(c *solve.Ctx) error {
				_, err := denial.Approx2SRepairCtx(c, denCs, tab)
				return err
			})
		}
		return benchCase{name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if encoded {
					_, _, err = extSV.ApproxDenialSRepair(denCs, tab)
				} else {
					_, err = denial.Approx2SRepair(denCs, tab)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}, stats}
	}
	cases = append(cases,
		denCase("ConstraintExtScaling/denial/seed-oracle/n=1600", denTab, false),
		denCase("ConstraintExtScaling/denial/encoded/n=1600", denTab, true),
		denCase("ConstraintExtScaling/denial/encoded/n=102400", denBigTab, true),
	)

	blockSC := schema.MustNew("Q", "K", "V")
	blockDS := fd.MustParseSet(blockSC, "K -> V")
	// Projecting the block key makes every certain-answer set nonempty:
	// each conflict component keeps at least one tuple in every repair,
	// so each block key survives everywhere.
	blockProj, err := blockSC.Set("K")
	if err != nil {
		return fmt.Errorf("benchjson: cqa projection: %w", err)
	}
	blockQ, err := cqa.NewQuery(blockSC, blockProj)
	if err != nil {
		return fmt.Errorf("benchjson: cqa query: %w", err)
	}
	cqaTab := workload.SmallComponentTable(blockSC, 48, 2, 2, rand.New(rand.NewSource(48)))
	cqaBigTab := workload.SmallComponentTable(blockSC, 102400, 3, 2, rand.New(rand.NewSource(102400)))
	cqaCase := func(name string, tab *table.Table, encoded bool) benchCase {
		var stats func() *solve.Snapshot
		if encoded {
			stats = extStats(func(c *solve.Ctx) error {
				_, err := cqa.ConsistentAnswersCtx(c, blockDS, tab, blockQ)
				return err
			})
		}
		return benchCase{name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if encoded {
					_, err = extSV.ConsistentAnswers(blockDS, tab, blockQ)
				} else {
					_, err = cqa.ConsistentAnswers(blockDS, tab, blockQ)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}, stats}
	}
	cases = append(cases,
		cqaCase("ConstraintExtScaling/cqa/seed-oracle/n=48", cqaTab, false),
		cqaCase("ConstraintExtScaling/cqa/encoded/n=48", cqaTab, true),
		cqaCase("ConstraintExtScaling/cqa/encoded/n=102400", cqaBigTab, true),
	)

	prioTab := workload.SmallComponentTable(blockSC, 1600, 3, 2, rand.New(rand.NewSource(1600)))
	prioBigTab := workload.SmallComponentTable(blockSC, 102400, 3, 2, rand.New(rand.NewSource(7)))
	buildPrio := func(tab *table.Table) *priority.Relation {
		r := priority.NewRelation()
		for _, p := range workload.PriorityPairs(tab.ConflictGraph(blockDS), 0.7, rand.New(rand.NewSource(11))) {
			r.Add(p[0], p[1])
		}
		return r
	}
	prioRel, prioBigRel := buildPrio(prioTab), buildPrio(prioBigTab)
	prioCase := func(name string, tab *table.Table, rel *priority.Relation, encoded bool) benchCase {
		var stats func() *solve.Snapshot
		if encoded {
			stats = extStats(func(c *solve.Ctx) error {
				_, err := priority.CRepairCtx(c, blockDS, tab, rel)
				return err
			})
		}
		return benchCase{name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if encoded {
					_, err = extSV.PrioritizedRepair(blockDS, tab, rel)
				} else {
					_, err = priority.CRepair(blockDS, tab, rel)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}, stats}
	}
	cases = append(cases,
		prioCase("ConstraintExtScaling/priority/seed-oracle/n=1600", prioTab, prioRel, false),
		prioCase("ConstraintExtScaling/priority/encoded/n=1600", prioTab, prioRel, true),
		prioCase("ConstraintExtScaling/priority/encoded/n=102400", prioBigTab, prioBigRel, true),
	)

	// Matching engines head to head on one sparse instance (~4 edges per
	// left node): the dense Hungarian pays O(n³) on the padded matrix,
	// the sparse engine O(V·E·log V) on the real edges. Same generator
	// (and seed scheme) as bench_test's MatchingScaling, so the two
	// suites measure the same instances.
	const matchN = 480
	matchEdges, matchWeight := workload.SparseMatchingInstance(matchN, 4, 1000, rand.New(rand.NewSource(17+matchN)))
	cases = append(cases,
		benchCase{"MatchingScaling/hungarian/n=480", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := graph.MaxWeightBipartiteMatching(matchN, matchN, matchWeight); err != nil {
					b.Fatal(err)
				}
			}
		}, nil},
		benchCase{"MatchingScaling/sparse/n=480", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sm, err := graph.NewSparseMatcher(matchN, matchN, matchEdges)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sm.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		}, nil},
	)

	// Mixed-size batch workload: interleaved n=100 and n=102400 tables
	// run as one SolveBatch on one Solver, the request-serving shape the
	// batch entry point exists for. The companion small-after-large case
	// measures a small solve on a Solver that has already repaired the
	// 102400-row table; with per-request solve scopes its B/op must
	// track the small table, not the large one (the sticky-hints bug
	// pre-sized every cold buffer at the biggest table ever seen — the
	// schema smoke asserts the ratio, and fdrepair's
	// TestStickyHintsRegression pins it at 2× against a fresh Solver).
	// These cases run last, and their tables are generated lazily on
	// first use: they keep a 102400-row table live, and anything
	// measured after that heap shift would pay its GC noise.
	var batchOnce sync.Once
	var smallBatchTab, largeBatchTab *table.Table
	var batchReqs []fdrepair.Request
	initBatch := func() {
		batchOnce.Do(func() {
			smallBatchTab = workload.MarriageSparseTable(chainSC, 100, 3, 3, rand.New(rand.NewSource(100)))
			largeBatchTab = workload.MarriageSparseTable(chainSC, 102400, 3, 3, rand.New(rand.NewSource(102400)))
			for i := 0; i < 10; i++ {
				tab := smallBatchTab
				if i == 2 || i == 7 {
					tab = largeBatchTab
				}
				batchReqs = append(batchReqs, fdrepair.Request{FDs: marriageDS, Table: tab})
			}
		})
	}
	cases = append(cases,
		benchCase{"SolveBatch/mixed-size/interleaved-8x100+2x102400", func(b *testing.B) {
			initBatch()
			b.ResetTimer()
			b.ReportAllocs()
			sv := fdrepair.NewSolver()
			for i := 0; i < b.N; i++ {
				for _, res := range sv.SolveBatch(batchReqs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		}, func() *solve.Snapshot {
			initBatch()
			sv := fdrepair.NewSolver(fdrepair.WithStats())
			for _, res := range sv.SolveBatch(batchReqs) {
				if res.Err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: stats batch failed: %v\n", res.Err)
					return nil
				}
			}
			snap := sv.Stats()
			return &snap
		}},
		benchCase{"SolveBatch/small-solo/n=100", func(b *testing.B) {
			initBatch()
			b.ResetTimer()
			b.ReportAllocs()
			sv := fdrepair.NewSolver()
			for i := 0; i < b.N; i++ {
				if _, _, err := sv.OptimalSRepair(marriageDS, smallBatchTab); err != nil {
					b.Fatal(err)
				}
			}
		}, nil},
		benchCase{"SolveBatch/small-after-large/n=100", func(b *testing.B) {
			initBatch()
			b.ReportAllocs()
			sv := fdrepair.NewSolver()
			if _, _, err := sv.OptimalSRepair(marriageDS, largeBatchTab); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sv.OptimalSRepair(marriageDS, smallBatchTab); err != nil {
					b.Fatal(err)
				}
			}
		}, nil},
	)

	// Resident-session incremental repair: mutate a 102400-row table a
	// little (append 1% duplicate-shaped rows, or touch 0.1% of cells)
	// and re-repair through fdrepair.Session, which re-solves only the
	// dirty blocks and splices the cached clean-block repairs back in.
	// Each measured iteration is one mutation batch plus one Repair; the
	// session is rebuilt (fresh clone, untimed warm solve) every 8
	// rounds so the table never drifts far from the named size. The
	// companion append-1%-resolve points are the sessionless controls:
	// the identical mutation stream through the plain table mutators
	// (which drop the cached encoding) followed by a from-scratch
	// OptSRepair — what a caller without a resident session pays per
	// round-trip. The schema smoke holds each session case to 1/5 of its
	// control. Tables are generated lazily for the same GC-noise reason
	// as the batch cases.
	var incOnce sync.Once
	var chainBigTab, marriageBigTab *table.Table
	initInc := func() {
		incOnce.Do(func() {
			chainBigTab = workload.RandomWeightedTable(chainSC, 102400, 10240, 4, rand.New(rand.NewSource(31)))
			marriageBigTab = workload.MarriageSparseTable(chainSC, 102400, 3, 3, rand.New(rand.NewSource(102400)))
		})
	}
	appendRows := func(frac float64) func(*fdrepair.Session, *rand.Rand) error {
		return func(s *fdrepair.Session, rng *rand.Rand) error {
			rows := s.Table().Rows()
			k := int(float64(len(rows)) * frac)
			if k < 1 {
				k = 1
			}
			tuples := make([]table.Tuple, k)
			weights := make([]float64, k)
			for i := range tuples {
				src := rows[rng.Intn(len(rows))]
				tuples[i] = src.Tuple
				weights[i] = src.Weight
			}
			_, err := s.AppendRows(tuples, weights)
			return err
		}
	}
	// touchCells models corrections: each touched cell gets a fresh
	// value the table has never seen (a typo fix, a late-arriving true
	// value). Fresh values split equality classes, preserving the
	// workload's sparse block shape across rounds; copying values
	// between random rows instead would progressively merge blocks and
	// coalesce the marriage graph into giant matching components — a
	// denser instance than the one the case is named for.
	touchSeq := 0
	touchCells := func(frac float64) func(*fdrepair.Session, *rand.Rand) error {
		return func(s *fdrepair.Session, rng *rand.Rand) error {
			rows := s.Table().Rows()
			arity := s.Table().Schema().Arity()
			k := int(float64(len(rows)*arity) * frac)
			if k < 1 {
				k = 1
			}
			updates := make([]table.CellUpdate, k)
			for i := range updates {
				touchSeq++
				updates[i] = table.CellUpdate{
					ID:   rows[rng.Intn(len(rows))].ID,
					Attr: rng.Intn(arity),
					Val:  fmt.Sprintf("fix-%d", touchSeq),
				}
			}
			return s.SetCells(updates)
		}
	}
	incCase := func(name string, ds *fd.Set, tab **table.Table, mutate func(*fdrepair.Session, *rand.Rand) error) benchCase {
		return benchCase{name, func(b *testing.B) {
			initInc()
			sv := fdrepair.NewSolver()
			rng := rand.New(rand.NewSource(9))
			var sess *fdrepair.Session
			round := 0
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if round == 0 {
					b.StopTimer()
					var err error
					sess, err = fdrepair.NewSession(sv, ds, (*tab).Clone())
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := sess.Repair(); err != nil { // warm the block cache
						b.Fatal(err)
					}
					// Collect the setup garbage (table clone, cold encoding,
					// full solve) outside the timed window so background
					// marking does not bleed into the incremental iterations.
					runtime.GC()
					b.StartTimer()
				}
				if err := mutate(sess, rng); err != nil {
					b.Fatal(err)
				}
				if _, _, err := sess.Repair(); err != nil {
					b.Fatal(err)
				}
				round = (round + 1) % 8
			}
		}, nil}
	}
	coldResolveCase := func(name string, ds *fd.Set, tab **table.Table) benchCase {
		return benchCase{name, func(b *testing.B) {
			initInc()
			rng := rand.New(rand.NewSource(9))
			var cur *table.Table
			round := 0
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if round == 0 {
					b.StopTimer()
					cur = (*tab).Clone()
					runtime.GC()
					b.StartTimer()
				}
				rows := cur.Rows()
				k := len(rows) / 100
				tuples := make([]table.Tuple, k)
				weights := make([]float64, k)
				for j := range tuples {
					src := rows[rng.Intn(len(rows))]
					tuples[j] = src.Tuple
					weights[j] = src.Weight
				}
				if _, err := cur.AppendRows(tuples, weights); err != nil {
					b.Fatal(err)
				}
				if _, err := srepair.OptSRepair(ds, cur); err != nil {
					b.Fatal(err)
				}
				round = (round + 1) % 8
			}
		}, func() *solve.Snapshot {
			initInc()
			return optSRepairStats(ds, *tab)()
		}}
	}
	cases = append(cases,
		benchCase{"OptSRepairScaling/chain/n=102400", func(b *testing.B) {
			initInc()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srepair.OptSRepair(chainDS, chainBigTab); err != nil {
					b.Fatal(err)
				}
			}
		}, func() *solve.Snapshot {
			initInc()
			return optSRepairStats(chainDS, chainBigTab)()
		}},
		coldResolveCase("OptSRepairScaling/append-1%-resolve/chain/n=102400", chainDS, &chainBigTab),
		coldResolveCase("OptSRepairScaling/append-1%-resolve/marriage-sparse/n=102400", marriageDS, &marriageBigTab),
		incCase("IncrementalRepair/append-1%/chain/n=102400", chainDS, &chainBigTab, appendRows(0.01)),
		incCase("IncrementalRepair/touch-0.1%-cells/chain/n=102400", chainDS, &chainBigTab, touchCells(0.001)),
		incCase("IncrementalRepair/append-1%/marriage-sparse/n=102400", marriageDS, &marriageBigTab, appendRows(0.01)),
		incCase("IncrementalRepair/touch-0.1%-cells/marriage-sparse/n=102400", marriageDS, &marriageBigTab, touchCells(0.001)),
	)

	// Sketch-fed hints vs the DistinctEstimate baseline on identical
	// data: the sketch table is the marriage-sparse table round-tripped
	// through the streaming ingester, so its solve pre-sizes arenas from
	// exact per-projection cardinalities instead of the dictionary-size
	// upper bound. The schema smoke asserts the sketch side's
	// arena_misses never exceed the baseline's.
	cases = append(cases,
		benchCase{"OptSRepairScaling/hints/baseline/marriage-sparse/n=102400", func(b *testing.B) {
			initInc()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srepair.OptSRepair(marriageDS, marriageBigTab); err != nil {
					b.Fatal(err)
				}
			}
		}, func() *solve.Snapshot {
			initInc()
			return optSRepairStats(marriageDS, marriageBigTab)()
		}},
		benchCase{"OptSRepairScaling/hints/sketch/marriage-sparse/n=102400", func(b *testing.B) {
			initInc()
			sketchTab := ingestRoundTrip(marriageBigTab)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srepair.OptSRepair(marriageDS, sketchTab); err != nil {
					b.Fatal(err)
				}
			}
		}, func() *solve.Snapshot {
			initInc()
			return optSRepairStats(marriageDS, ingestRoundTrip(marriageBigTab))()
		}},
	)

	// Out-of-core ingestion at the ROADMAP's 10M-row scale. The chunked
	// and buffered cases consume byte-identical streams (the generator is
	// deterministic), so their bytes_per_op ratio is the tentpole's
	// measurement: the chunked path allocates O(chunk + dictionary +
	// encoding) while the seed path additionally materializes one Go
	// string per cell. The scaling points solve tables built through the
	// ingester (sketch-fed hints and all); they run last because each
	// keeps a ~10M-row table live while it runs. Differential tests in
	// internal/table pin the two ingest paths to byte-identical tables,
	// so the pair here measures cost, not correctness.
	const scale10M = 10_240_000
	const ingestDomain, ingestWidth = 65536, 170
	cases = append(cases,
		benchCase{fmt.Sprintf("IngestCSV/chunked/n=%d", scale10M), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := table.IngestCSV(workload.IngestCSVInput(scale10M, ingestDomain, ingestWidth), "T"); err != nil {
					b.Fatal(err)
				}
			}
		}, nil},
		benchCase{fmt.Sprintf("IngestCSV/buffered-seed/n=%d", scale10M), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := table.ReadCSVBuffered(workload.IngestCSVInput(scale10M, ingestDomain, ingestWidth), "T"); err != nil {
					b.Fatal(err)
				}
			}
		}, nil},
	)
	var scaleOnce sync.Once
	var chain10M, marriage10M *table.Table
	initScale10M := func() {
		scaleOnce.Do(func() {
			chain10M = ingestRoundTrip(workload.RandomWeightedTable(chainSC, scale10M, scale10M/10, 4, rand.New(rand.NewSource(31))))
			marriage10M = ingestRoundTrip(workload.MarriageSparseTable(chainSC, scale10M, 3, 3, rand.New(rand.NewSource(scale10M))))
		})
	}
	cases = append(cases,
		benchCase{fmt.Sprintf("OptSRepairScaling/chain/n=%d", scale10M), func(b *testing.B) {
			initScale10M()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srepair.OptSRepair(chainDS, chain10M); err != nil {
					b.Fatal(err)
				}
			}
		}, func() *solve.Snapshot {
			initScale10M()
			return optSRepairStats(chainDS, chain10M)()
		}},
		benchCase{fmt.Sprintf("OptSRepairScaling/marriage-sparse/n=%d", scale10M), func(b *testing.B) {
			initScale10M()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srepair.OptSRepair(marriageDS, marriage10M); err != nil {
					b.Fatal(err)
				}
			}
		}, func() *solve.Snapshot {
			initScale10M()
			return optSRepairStats(marriageDS, marriage10M)()
		}},
	)

	var out []benchResult
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		// One measurement is noisy at millisecond scale (GC phase,
		// pool warmth, the incremental cases' session-rebuild cadence
		// all swing a run ±25%); re-measure short cases and keep the
		// fastest run — the standard noise-robust estimator, since
		// slowdowns are one-sided. Cases whose single measurement
		// already runs multi-second (the 10M ingest and scaling
		// points) stay single-shot: their per-op times dwarf the
		// noise floor, and tripling them would dominate the wall.
		for extra := 0; extra < 2 && r.T < 5*time.Second; extra++ {
			r2 := testing.Benchmark(c.fn)
			if float64(r2.T.Nanoseconds())/float64(r2.N) < float64(r.T.Nanoseconds())/float64(r.N) {
				r = r2
			}
		}
		br := benchResult{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if c.stats != nil {
			br.SolveStats = c.stats()
		}
		out = append(out, br)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// ingestRoundTrip rebuilds a generated table through WriteCSV →
// IngestCSV: same rows, IDs and weights, but with the streaming
// builder's cardinality sketches attached, so solves on the result
// pre-size arenas the way any ingested table would.
func ingestRoundTrip(t *table.Table) *table.Table {
	var buf bytes.Buffer
	if err := t.WriteCSV(&buf); err != nil {
		panic(fmt.Sprintf("benchjson: round-trip write: %v", err))
	}
	rt, err := table.IngestCSV(&buf, t.Schema().Name())
	if err != nil {
		panic(fmt.Sprintf("benchjson: round-trip ingest: %v", err))
	}
	return rt
}

// optSRepairStats runs one untimed, instrumented solve on a fresh
// serial stats context, so the recorded snapshot describes exactly one
// solve of the case's instance rather than scaling with the timed
// loop's iteration count.
func optSRepairStats(ds *fd.Set, tab *table.Table) func() *solve.Snapshot {
	return func() *solve.Snapshot {
		st := new(solve.Stats)
		if _, err := srepair.OptSRepairCtx(solve.New(1, nil, st), ds, tab); err != nil {
			// Surface the failure rather than silently omitting the
			// stats field (the CI schema smoke would otherwise report a
			// misleading "no solve_stats").
			fmt.Fprintf(os.Stderr, "benchjson: stats solve failed for %v: %v\n", ds, err)
			return nil
		}
		snap := st.Snapshot()
		return &snap
	}
}

// uRepairStats is optSRepairStats for the Section-4 planner: one
// untimed, instrumented U-repair whose snapshot carries the planner's
// per-component decisions.
func uRepairStats(ds *fd.Set, tab *table.Table) func() *solve.Snapshot {
	return func() *solve.Snapshot {
		st := new(solve.Stats)
		if _, err := urepair.RepairCtx(solve.New(1, nil, st), ds, tab); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: stats urepair failed for %v: %v\n", ds, err)
			return nil
		}
		snap := st.Snapshot()
		return &snap
	}
}
