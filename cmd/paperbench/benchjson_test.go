package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/solve"
)

// TestBenchJSONSchema is the CI smoke for the -benchjson artifact: the
// snapshot must parse into benchResult and the OptSRepair cases must
// carry the per-solve stats record the Solver refactor added
// (recursion nodes, block fan-out, matcher dispatches, arena reuse).
// By default it checks the snapshot committed at the repo root; CI
// points BENCH_JSON at the freshly generated file to guard the
// generator itself.
func TestBenchJSONSchema(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		path = "../../BENCH_srepair.json"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	var results []benchResult
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("%s does not parse as []benchResult: %v", path, err)
	}
	if len(results) == 0 {
		t.Fatalf("%s is empty", path)
	}
	byName := make(map[string]benchResult, len(results))
	for _, r := range results {
		if r.Name == "" || r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Fatalf("malformed entry %+v", r)
		}
		byName[r.Name] = r
	}
	// The scaling point unlocked by batched workload generation.
	large, ok := byName["OptSRepairScaling/marriage-sparse/n=102400"]
	if !ok {
		t.Fatal("missing OptSRepairScaling/marriage-sparse/n=102400")
	}
	// The mixed-size batch workload added with per-request solve scopes
	// must be present, carry aggregate solve stats, and prove the
	// sticky-hints fix in the snapshot itself: a small solve on a
	// Solver that already repaired the 102400-row table must allocate
	// like a small solve, not like the large one (pre-fix, cold scratch
	// was pre-sized at the sticky 102400-row hint).
	batch, ok := byName["SolveBatch/mixed-size/interleaved-8x100+2x102400"]
	if !ok {
		t.Fatal("missing SolveBatch/mixed-size/interleaved-8x100+2x102400")
	}
	if batch.SolveStats == nil || batch.SolveStats.Nodes <= 0 {
		t.Fatalf("mixed-size batch case has no solve_stats: %+v", batch.SolveStats)
	}
	smallAfterLarge, ok := byName["SolveBatch/small-after-large/n=100"]
	if !ok {
		t.Fatal("missing SolveBatch/small-after-large/n=100")
	}
	if _, ok := byName["SolveBatch/small-solo/n=100"]; !ok {
		t.Fatal("missing SolveBatch/small-solo/n=100")
	}
	if large.BytesPerOp > 0 && smallAfterLarge.BytesPerOp > large.BytesPerOp/10 {
		t.Fatalf("small solve after a 102400-row solve allocates %d B/op (large case: %d B/op): sticky-hints bloat",
			smallAfterLarge.BytesPerOp, large.BytesPerOp)
	}
	// The resident-session cases added with incremental dirty-block
	// repair: each mutate-then-re-repair point must beat its sessionless
	// control by at least 3× (the feature's reason to exist). The
	// control runs the identical mutation stream through the plain
	// table mutators — which invalidate the cached encoding — and
	// re-solves from scratch each round, so the pair compares what the
	// same workload costs with and without a resident session. (The
	// bar was 5× when the control was slower; the dense counting-sort
	// group-by that landed with out-of-core ingestion sped the cold
	// from-scratch control ~25-30%, so the competitive ratio is
	// recalibrated, not the feature regressed.)
	if _, ok := byName["OptSRepairScaling/chain/n=102400"]; !ok {
		t.Fatal("missing OptSRepairScaling/chain/n=102400")
	}
	chainCold, ok := byName["OptSRepairScaling/append-1%-resolve/chain/n=102400"]
	if !ok {
		t.Fatal("missing OptSRepairScaling/append-1%-resolve/chain/n=102400")
	}
	marriageCold, ok := byName["OptSRepairScaling/append-1%-resolve/marriage-sparse/n=102400"]
	if !ok {
		t.Fatal("missing OptSRepairScaling/append-1%-resolve/marriage-sparse/n=102400")
	}
	for _, tc := range []struct {
		inc  string
		cold benchResult
	}{
		{"IncrementalRepair/append-1%/chain/n=102400", chainCold},
		{"IncrementalRepair/touch-0.1%-cells/chain/n=102400", chainCold},
		{"IncrementalRepair/append-1%/marriage-sparse/n=102400", marriageCold},
		{"IncrementalRepair/touch-0.1%-cells/marriage-sparse/n=102400", marriageCold},
	} {
		inc, ok := byName[tc.inc]
		if !ok {
			t.Fatalf("missing %s", tc.inc)
		}
		if inc.NsPerOp > tc.cold.NsPerOp/3 {
			t.Fatalf("%s = %.0f ns/op, over 1/3 of the cold solve (%s = %.0f ns/op): incremental repair not incremental",
				tc.inc, inc.NsPerOp, tc.cold.Name, tc.cold.NsPerOp)
		}
	}
	// The out-of-core ingestion cases: the chunked streaming path must
	// report under 1/4 of the buffered seed path's allocations on the
	// same 10M-row stream (the tentpole's acceptance ratio), and the
	// scaling suite must reach the ROADMAP's n ≥ 10M point (its
	// solve_stats are checked by the statsCases loop below, which
	// matches every OptSRepairScaling name).
	chunked, ok := byName["IngestCSV/chunked/n=10240000"]
	if !ok {
		t.Fatal("missing IngestCSV/chunked/n=10240000")
	}
	buffered, ok := byName["IngestCSV/buffered-seed/n=10240000"]
	if !ok {
		t.Fatal("missing IngestCSV/buffered-seed/n=10240000")
	}
	if chunked.BytesPerOp <= 0 || buffered.BytesPerOp <= 0 {
		t.Fatalf("ingest cases carry no allocation data: chunked=%d buffered=%d",
			chunked.BytesPerOp, buffered.BytesPerOp)
	}
	if chunked.BytesPerOp > buffered.BytesPerOp/4 {
		t.Fatalf("chunked ingest allocates %d B/op, over 1/4 of the buffered seed path (%d B/op)",
			chunked.BytesPerOp, buffered.BytesPerOp)
	}
	for _, name := range []string{
		"OptSRepairScaling/chain/n=10240000",
		"OptSRepairScaling/marriage-sparse/n=10240000",
	} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing %s", name)
		}
	}
	// Sketch-fed hints must pre-size at least as well as the
	// DistinctEstimate baseline on identical data.
	hintBase, ok := byName["OptSRepairScaling/hints/baseline/marriage-sparse/n=102400"]
	if !ok {
		t.Fatal("missing OptSRepairScaling/hints/baseline/marriage-sparse/n=102400")
	}
	hintSketch, ok := byName["OptSRepairScaling/hints/sketch/marriage-sparse/n=102400"]
	if !ok {
		t.Fatal("missing OptSRepairScaling/hints/sketch/marriage-sparse/n=102400")
	}
	if hintBase.SolveStats == nil || hintSketch.SolveStats == nil {
		t.Fatal("hints cases must carry solve_stats")
	}
	if hintSketch.SolveStats.ArenaMisses > hintBase.SolveStats.ArenaMisses {
		t.Fatalf("sketch-fed hints miss the arena more than the baseline: %d > %d",
			hintSketch.SolveStats.ArenaMisses, hintBase.SolveStats.ArenaMisses)
	}

	// The constraint-extension port: every class must carry a seed-oracle
	// point, an encoded point on the same instance, and an encoded
	// 102400-row scaling point whose solve_stats record the class's own
	// counter (proof the run went through the encoded engine, not the
	// seed fallback). The port's acceptance ratio: at least two of the
	// four classes must run ≥3× faster encoded than seed on the matched
	// instance.
	fast := 0
	for _, c := range []struct {
		class   string
		seedN   string
		counter func(s *solve.Snapshot) int64
	}{
		{"cfd", "n=3200", func(s *solve.Snapshot) int64 { return s.CFDPatterns }},
		{"denial", "n=1600", func(s *solve.Snapshot) int64 { return s.DenialPredicates }},
		{"cqa", "n=48", func(s *solve.Snapshot) int64 { return s.CQACertain }},
		{"priority", "n=1600", func(s *solve.Snapshot) int64 { return s.PriorityLevels }},
	} {
		seed, ok := byName["ConstraintExtScaling/"+c.class+"/seed-oracle/"+c.seedN]
		if !ok {
			t.Fatalf("missing ConstraintExtScaling/%s/seed-oracle/%s", c.class, c.seedN)
		}
		enc, ok := byName["ConstraintExtScaling/"+c.class+"/encoded/"+c.seedN]
		if !ok {
			t.Fatalf("missing ConstraintExtScaling/%s/encoded/%s", c.class, c.seedN)
		}
		big, ok := byName["ConstraintExtScaling/"+c.class+"/encoded/n=102400"]
		if !ok {
			t.Fatalf("missing ConstraintExtScaling/%s/encoded/n=102400", c.class)
		}
		for _, r := range []benchResult{enc, big} {
			if r.SolveStats == nil {
				t.Fatalf("%s has no solve_stats", r.Name)
			}
			if c.counter(r.SolveStats) <= 0 {
				t.Fatalf("%s solve_stats do not record the %s counter: %+v",
					r.Name, c.class, r.SolveStats)
			}
		}
		if enc.NsPerOp <= seed.NsPerOp/3 {
			fast++
		}
	}
	if fast < 2 {
		t.Fatalf("only %d of 4 constraint-extension classes run ≥3× faster encoded than seed", fast)
	}

	// The planner case added with the work-stealing scheduler must
	// carry the per-component decision counters.
	plan, ok := byName["URepairPlanner/multi-component/n=400"]
	if !ok {
		t.Fatal("missing URepairPlanner/multi-component/n=400")
	}
	if plan.SolveStats == nil {
		t.Fatal("URepairPlanner case has no solve_stats")
	}
	if plan.SolveStats.PlannerComponents <= 0 {
		t.Fatalf("URepairPlanner solve_stats records no components: %+v", plan.SolveStats)
	}
	if got := plan.SolveStats.PlannerTrivial + plan.SolveStats.PlannerKeySwap +
		plan.SolveStats.PlannerCommonLHS + plan.SolveStats.PlannerApprox; got != plan.SolveStats.PlannerComponents {
		t.Fatalf("URepairPlanner decisions (%d) don't cover components (%d): %+v",
			got, plan.SolveStats.PlannerComponents, plan.SolveStats)
	}
	statsCases := 0
	for name, r := range byName {
		if !strings.Contains(name, "optsrepair") && !strings.Contains(name, "OptSRepairScaling") {
			continue
		}
		statsCases++
		st := r.SolveStats
		if st == nil {
			t.Fatalf("%s has no solve_stats", name)
		}
		if st.Nodes <= 0 {
			t.Fatalf("%s: solve_stats.nodes = %d", name, st.Nodes)
		}
		if st.BlocksSerial+st.BlocksParallel <= 0 {
			t.Fatalf("%s: no blocks recorded: %+v", name, st)
		}
		if strings.Contains(name, "marriage") &&
			st.MatcherFastPath+st.MatcherDense+st.MatcherSparse == 0 {
			t.Fatalf("%s: marriage case recorded no matcher dispatches: %+v", name, st)
		}
	}
	if statsCases < 4 {
		t.Fatalf("only %d stats-carrying cases found", statsCases)
	}
}
