// Command paperbench regenerates every table, figure and worked example
// of "Computing Optimal Repairs for Functional Dependencies" (PODS
// 2018). Each experiment prints a report comparing the paper's claim
// with the measured outcome; ✓/✗ marks per row indicate agreement.
//
// Usage:
//
//	paperbench all          # run every experiment in paper order
//	paperbench E1 E7        # run selected experiments
//	paperbench -list        # list experiments
//	paperbench -benchjson BENCH_srepair.json   # machine-readable perf snapshot
//	paperbench -ingestsmoke 10240000           # memory-bounded ingestion smoke
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	benchJSON := flag.String("benchjson", "", "write a repair-engine benchmark snapshot to this JSON file (e.g. BENCH_srepair.json) and exit")
	ingestSmoke := flag.Int("ingestsmoke", 0, "stream this many synthetic CSV rows through table.IngestCSV and fail unless live heap stays out-of-core-bounded (run under GOMEMLIMIT to also bound transients)")
	flag.Parse()
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}
	if *ingestSmoke > 0 {
		if err := runIngestSmoke(*ingestSmoke); err != nil {
			fmt.Fprintf(os.Stderr, "ingestsmoke failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-5s %s\n", r.ID, r.Artifact)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: paperbench [-list] all | %s\n",
			strings.Join(experiments.IDs(), " | "))
		os.Exit(2)
	}
	runners := experiments.All()
	want := map[string]bool{}
	runAll := false
	for _, a := range args {
		if strings.EqualFold(a, "all") {
			runAll = true
			continue
		}
		want[strings.ToUpper(a)] = true
	}
	matched := 0
	for _, r := range runners {
		if !runAll && !want[r.ID] {
			continue
		}
		matched++
		out, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v; try -list\n", args)
		os.Exit(2)
	}
}

// runIngestSmoke is the CI memory smoke for out-of-core ingestion: it
// streams n synthetic rows (3 attributes, 170-byte cells, 65536-value
// domains — about n·513 bytes of raw CSV) through table.IngestCSV and
// asserts the live heap afterwards is bounded by the encoding, not the
// raw string form. The bound is 120 bytes/row (rows + tuple headers +
// int32 columns, measured ~105 B/row) plus 256 MiB of dictionary and
// slack headroom. The seed []Tuple path retains one string per cell —
// upwards of 550 B/row live — so it cannot pass this bound, nor run
// under the GOMEMLIMIT CI pins for the smoke.
func runIngestSmoke(n int) error {
	const domain, width = 65536, 170
	t, err := table.IngestCSV(workload.IngestCSVInput(n, domain, width), "T")
	if err != nil {
		return err
	}
	if t.Len() != n {
		return fmt.Errorf("ingested %d rows, want %d", t.Len(), n)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(t)
	limit := uint64(n)*120 + 256<<20
	fmt.Printf("ingestsmoke: rows=%d raw=%d B live-heap=%d B (limit %d B)\n",
		n, workload.IngestCSVInputSize(n, width), ms.HeapAlloc, limit)
	if ms.HeapAlloc > limit {
		return fmt.Errorf("live heap %d B exceeds the out-of-core bound %d B", ms.HeapAlloc, limit)
	}
	return nil
}
