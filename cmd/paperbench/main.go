// Command paperbench regenerates every table, figure and worked example
// of "Computing Optimal Repairs for Functional Dependencies" (PODS
// 2018). Each experiment prints a report comparing the paper's claim
// with the measured outcome; ✓/✗ marks per row indicate agreement.
//
// Usage:
//
//	paperbench all          # run every experiment in paper order
//	paperbench E1 E7        # run selected experiments
//	paperbench -list        # list experiments
//	paperbench -benchjson BENCH_srepair.json   # machine-readable perf snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	benchJSON := flag.String("benchjson", "", "write a repair-engine benchmark snapshot to this JSON file (e.g. BENCH_srepair.json) and exit")
	flag.Parse()
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-5s %s\n", r.ID, r.Artifact)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: paperbench [-list] all | %s\n",
			strings.Join(experiments.IDs(), " | "))
		os.Exit(2)
	}
	runners := experiments.All()
	want := map[string]bool{}
	runAll := false
	for _, a := range args {
		if strings.EqualFold(a, "all") {
			runAll = true
			continue
		}
		want[strings.ToUpper(a)] = true
	}
	matched := 0
	for _, r := range runners {
		if !runAll && !want[r.ID] {
			continue
		}
		matched++
		out, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v; try -list\n", args)
		os.Exit(2)
	}
}
