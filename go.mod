module repro

go 1.24

// Vendored from the Go toolchain's own copy
// ($GOROOT/src/cmd/vendor/golang.org/x/tools, the subset go vet is
// built from) because the build environment is offline. Only the
// go/analysis framework packages needed by internal/lint are carried.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
