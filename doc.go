// Package repro is the root of the reproduction of "Computing Optimal
// Repairs for Functional Dependencies" (Livshits, Kimelfeld, Roy,
// PODS 2018).
//
// Layout:
//
//	fdrepair/              public API (start here)
//	internal/schema        relation schemas, bitset attribute sets
//	internal/fd            FDs: closures, simplifications, classification,
//	                       keys/normal forms, Armstrong derivations
//	internal/table         weighted identified tables, distances, conflicts,
//	                       CSV I/O, repair diffs
//	internal/graph         bipartite matching, weighted vertex cover
//	internal/srepair       OptSRepair, OSRSucceeds, exact + 2-approx
//	internal/urepair       U-repair planner, transfers, approximations,
//	                       restricted & mixed variants
//	internal/mpd           most probable database (Theorem 3.10)
//	internal/reduction     fact-wise reductions and hardness gadgets
//	internal/enumerate     subset-repair enumeration + chain counting
//	internal/priority      prioritized repairing (Staworko et al.)
//	internal/denial        binary denial constraints
//	internal/cfd           conditional FDs (pattern tableaux)
//	internal/cqa           consistent query answering over repairs
//	internal/workload      synthetic tables, graphs, formulas, catalogue
//	internal/experiments   the paper-reproduction harness (E1–E12)
//	internal/cli           testable CLI implementation
//	cmd/fdrepair           repair/classify/count/gen/entails CLI
//	cmd/paperbench         regenerate every paper table and figure
//	examples/              runnable walk-throughs of the public API
//
// # Performance architecture
//
// The table core is dictionary-encoded: every column is lazily interned
// into dense int32 value codes, and every attribute-set projection into
// dense int32 group codes (internal/table/encoding.go). Equal codes ⇔
// equal projections, so GroupBy, SatisfiesFD, Violations and
// ConflictGraph compare fixed-width integers instead of building
// length-prefixed string keys per row. The encoding is cached on the
// table, invalidated by mutation, and built under a mutex so concurrent
// readers are safe.
//
// The repair algorithms recurse over zero-copy views
// (internal/table/view.go): a view is the backing table plus a
// row-index slice, grouped and weighed against the shared encoding.
// OptSRepair precomputes the (data-independent) simplification chain
// once, recurses over views, and materializes only the final repair;
// the seed implementation instead rebuilt a *Table, an id index and
// cloned tuples at every node of the recursion tree. Independent blocks
// of the three subroutines can be solved in parallel through an opt-in,
// try-acquire worker pool (fdrepair.SetParallelism); results are
// byte-identical to the serial algorithm.
//
// MarriageRep (Subroutine 3) runs on a sparse matching engine
// (internal/graph.SparseMatcher): the marriage graph has exactly one
// edge per observed (X1, X2) block, so marriageRep emits that edge list
// directly and the engine decomposes it into connected components
// (solved independently, and in parallel on the same worker pool as the
// repair blocks), dispatching each to a fast path — singleton edges and
// one-sided stars by a max scan, tiny components to the dense Hungarian
// solver — or to a sparse Jonker–Volgenant solver: shortest augmenting
// paths with potentials over CSR adjacency lists and a heap-based
// Dijkstra, with a private zero-weight slack column per row so maximum-
// weight partial matching reduces to an assignment that is perfect on
// the smaller side. Cost is O(V·E·log V) on the real edge set instead
// of the O(size³) the padded dense matrix costs, which turns the
// matching-dominated marriage workloads from cubic in the
// distinct-value counts into near-linear in the block count. The dense
// Hungarian remains as the differential oracle (and the small-component
// fast path); GreedyMatching is the ablation baseline over the same
// edge-list type.
//
// The bench baseline for this architecture is recorded in ROADMAP.md;
// regenerate with:
//
//	go test -bench='Fig1|Table1|Scaling' -benchmem .
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
