// Package repro is the root of the reproduction of "Computing Optimal
// Repairs for Functional Dependencies" (Livshits, Kimelfeld, Roy,
// PODS 2018).
//
// Layout:
//
//	fdrepair/              public API (start here)
//	internal/schema        relation schemas, bitset attribute sets
//	internal/fd            FDs: closures, simplifications, classification,
//	                       keys/normal forms, Armstrong derivations
//	internal/table         weighted identified tables, distances, conflicts,
//	                       CSV I/O, repair diffs
//	internal/graph         bipartite matching, weighted vertex cover
//	internal/srepair       OptSRepair, OSRSucceeds, exact + 2-approx
//	internal/urepair       U-repair planner, transfers, approximations,
//	                       restricted & mixed variants
//	internal/mpd           most probable database (Theorem 3.10)
//	internal/reduction     fact-wise reductions and hardness gadgets
//	internal/enumerate     subset-repair enumeration + chain counting
//	internal/priority      prioritized repairing (Staworko et al.)
//	internal/denial        binary denial constraints
//	internal/cfd           conditional FDs (pattern tableaux)
//	internal/cqa           consistent query answering over repairs
//	internal/workload      synthetic tables, graphs, formulas, catalogue
//	internal/experiments   the paper-reproduction harness (E1–E12)
//	internal/cli           testable CLI implementation
//	cmd/fdrepair           repair/classify/count/gen/entails CLI
//	cmd/paperbench         regenerate every paper table and figure
//	examples/              runnable walk-throughs of the public API
//
// # Performance architecture
//
// The table core is dictionary-encoded: every column is lazily interned
// into dense int32 value codes, and every attribute-set projection into
// dense int32 group codes (internal/table/encoding.go). Equal codes ⇔
// equal projections, so GroupBy, SatisfiesFD, Violations and
// ConflictGraph compare fixed-width integers instead of building
// length-prefixed string keys per row. The encoding is cached on the
// table, invalidated by mutation, and built under a mutex so concurrent
// readers are safe.
//
// The repair algorithms recurse over zero-copy views
// (internal/table/view.go): a view is the backing table plus a
// row-index slice, grouped and weighed against the shared encoding.
// OptSRepair precomputes the (data-independent) simplification chain
// once, recurses over views, and materializes only the final repair;
// the seed implementation instead rebuilt a *Table, an id index and
// cloned tuples at every node of the recursion tree. Independent blocks
// of the three subroutines can be solved in parallel through an opt-in,
// try-acquire worker pool (fdrepair.SetParallelism); results are
// byte-identical to the serial algorithm.
//
// The bench baseline for this architecture is recorded in ROADMAP.md;
// regenerate with:
//
//	go test -bench='Fig1|Table1|Scaling' -benchmem .
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
