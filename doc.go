// Package repro is the root of the reproduction of "Computing Optimal
// Repairs for Functional Dependencies" (Livshits, Kimelfeld, Roy,
// PODS 2018).
//
// Layout:
//
//	fdrepair/              public API (start here)
//	internal/schema        relation schemas, bitset attribute sets
//	internal/fd            FDs: closures, simplifications, classification,
//	                       keys/normal forms, Armstrong derivations
//	internal/table         weighted identified tables, distances, conflicts,
//	                       CSV I/O, repair diffs
//	internal/graph         bipartite matching, weighted vertex cover
//	internal/srepair       OptSRepair, OSRSucceeds, exact + 2-approx
//	internal/urepair       U-repair planner, transfers, approximations,
//	                       restricted & mixed variants
//	internal/mpd           most probable database (Theorem 3.10)
//	internal/reduction     fact-wise reductions and hardness gadgets
//	internal/enumerate     subset-repair enumeration + chain counting
//	internal/priority      prioritized repairing (Staworko et al.)
//	internal/denial        binary denial constraints
//	internal/cfd           conditional FDs (pattern tableaux)
//	internal/cqa           consistent query answering over repairs
//	internal/workload      synthetic tables, graphs, formulas, catalogue
//	internal/experiments   the paper-reproduction harness (E1–E12)
//	internal/cli           testable CLI implementation
//	cmd/fdrepair           repair/classify/count/gen/entails CLI
//	cmd/paperbench         regenerate every paper table and figure
//	examples/              runnable walk-throughs of the public API
//
// # Performance architecture
//
// The table core is dictionary-encoded: every column is lazily interned
// into dense int32 value codes, and every attribute-set projection into
// dense int32 group codes (internal/table/encoding.go). Equal codes ⇔
// equal projections, so GroupBy, SatisfiesFD, Violations and
// ConflictGraph compare fixed-width integers instead of building
// length-prefixed string keys per row. The encoding is cached on the
// table, invalidated by mutation, and built under a mutex so concurrent
// readers are safe. Bulk loads go through table.AppendRows, which grows
// the row store once and invalidates the encoding once per batch —
// workload generation at 10⁵+ rows is batched this way.
//
// The repair algorithms recurse over zero-copy views
// (internal/table/view.go): a view is the backing table plus a
// row-index slice, grouped and weighed against the shared encoding.
// OptSRepair precomputes the (data-independent) simplification chain
// once, recurses over views, and materializes only the final repair.
//
// Execution is organized around per-solve contexts (internal/solve,
// surfaced publicly as fdrepair.Solver with functional options): each
// Solver owns a worker budget (WithParallelism — independent blocks of
// the three subroutines and connected components of the marriage
// matching fan out on a try-acquire pool that can never deadlock on
// nested recursion), sync.Pool-backed scratch arenas (group-by
// buffers, block result slices, matcher CSR/potential/distance arrays
// and heap storage, recycled across recursion levels, components and
// sequential solves), cooperative cancellation (WithContext — checked
// at recursion and component boundaries and inside the exponential
// vertex-cover search, so a deadline-exceeded solve returns the
// context error promptly without touching the input table), and an
// optional SolveStats record (WithStats — recursion nodes, serial vs
// parallel blocks, matcher path dispatches, arena reuse). Nothing on
// the solve hot path reads package-level pool state, so any number of
// Solvers with different settings run concurrently; results are
// byte-identical to the serial engine in every configuration. The
// deprecated fdrepair.SetParallelism shim merely reconfigures the
// default Solver backing the package-level entry points.
//
// MarriageRep (Subroutine 3) runs on a sparse matching engine
// (internal/graph.SparseMatcher): the marriage graph has exactly one
// edge per observed (X1, X2) block, so marriageRep emits that edge list
// directly and the engine decomposes it into connected components
// (solved independently, and in parallel on the same worker budget as
// the repair blocks), dispatching each to a fast path — singleton edges
// and one-sided stars by a max scan, tiny components to the dense
// Hungarian solver (its padded matrix and working arrays pooled on the
// solve arena) — or to a sparse Jonker–Volgenant solver: shortest
// augmenting paths with potentials over CSR adjacency lists and a
// Dijkstra on a 4-ary heap over pooled storage, with a private
// zero-weight slack column per row so maximum-weight partial matching
// reduces to an assignment that is perfect on the smaller side. Cost is
// O(V·E·log V) on the real edge set instead of the O(size³) the padded
// dense matrix costs, which turns the matching-dominated marriage
// workloads from cubic in the distinct-value counts into near-linear in
// the block count. The dense Hungarian remains as the differential
// oracle (and the small-component fast path); GreedyMatching is the
// ablation baseline over the same edge-list type.
//
// The bench baseline for this architecture is recorded in ROADMAP.md;
// regenerate with:
//
//	go test -bench='Fig1|Table1|Scaling' -benchmem .
//
// or, machine-readable with per-solve stats (recursion nodes, matcher
// dispatches, arena reuse) attached to each repair case:
//
//	go run ./cmd/paperbench -benchjson BENCH_srepair.json
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
