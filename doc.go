// Package repro is the root of the reproduction of "Computing Optimal
// Repairs for Functional Dependencies" (Livshits, Kimelfeld, Roy,
// PODS 2018).
//
// Layout:
//
//	fdrepair/              public API (start here)
//	internal/schema        relation schemas, bitset attribute sets
//	internal/fd            FDs: closures, simplifications, classification,
//	                       keys/normal forms, Armstrong derivations
//	internal/table         weighted identified tables, distances, conflicts,
//	                       CSV I/O, repair diffs
//	internal/graph         bipartite matching, weighted vertex cover
//	internal/srepair       OptSRepair, OSRSucceeds, exact + 2-approx
//	internal/urepair       U-repair planner, transfers, approximations,
//	                       restricted & mixed variants
//	internal/mpd           most probable database (Theorem 3.10)
//	internal/reduction     fact-wise reductions and hardness gadgets
//	internal/enumerate     subset-repair enumeration + chain counting
//	internal/priority      prioritized repairing (Staworko et al.)
//	internal/denial        binary denial constraints
//	internal/cfd           conditional FDs (pattern tableaux)
//	internal/cqa           consistent query answering over repairs
//	internal/workload      synthetic tables, graphs, formulas, catalogue
//	internal/experiments   the paper-reproduction harness (E1–E12)
//	internal/cli           testable CLI implementation
//	cmd/fdrepair           repair/classify/count/gen/entails CLI
//	cmd/paperbench         regenerate every paper table and figure
//	examples/              runnable walk-throughs of the public API
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
