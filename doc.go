// Package repro is the root of the reproduction of "Computing Optimal
// Repairs for Functional Dependencies" (Livshits, Kimelfeld, Roy,
// PODS 2018).
//
// Layout:
//
//	fdrepair/              public API (start here)
//	internal/schema        relation schemas, bitset attribute sets
//	internal/fd            FDs: closures, simplifications, classification,
//	                       keys/normal forms, Armstrong derivations
//	internal/table         weighted identified tables, distances, conflicts,
//	                       CSV I/O, repair diffs
//	internal/graph         bipartite matching, weighted vertex cover
//	internal/srepair       OptSRepair, OSRSucceeds, exact + 2-approx
//	internal/urepair       U-repair planner, transfers, approximations,
//	                       restricted & mixed variants
//	internal/mpd           most probable database (Theorem 3.10)
//	internal/reduction     fact-wise reductions and hardness gadgets
//	internal/enumerate     subset-repair enumeration + chain counting
//	internal/priority      prioritized repairing (Staworko et al.)
//	internal/denial        binary denial constraints
//	internal/cfd           conditional FDs (pattern tableaux)
//	internal/cqa           consistent query answering over repairs
//	internal/workload      synthetic tables, graphs, formulas, catalogue
//	internal/experiments   the paper-reproduction harness (E1–E12)
//	internal/cli           testable CLI implementation
//	cmd/fdrepair           repair/classify/count/gen/entails CLI
//	cmd/paperbench         regenerate every paper table and figure
//	examples/              runnable walk-throughs of the public API
//
// # Performance architecture
//
// The table core is dictionary-encoded: every column is lazily interned
// into dense int32 value codes, and every attribute-set projection into
// dense int32 group codes (internal/table/encoding.go). Equal codes ⇔
// equal projections, so GroupBy, SatisfiesFD, Violations and
// ConflictGraph compare fixed-width integers instead of building
// length-prefixed string keys per row. The encoding is cached on the
// table, invalidated by mutation, and built under a mutex so concurrent
// readers are safe. Bulk loads go through table.AppendRows, which grows
// the row store once and invalidates the encoding once per batch —
// workload generation at 10⁵+ rows is batched this way.
//
// The repair algorithms recurse over zero-copy views
// (internal/table/view.go): a view is the backing table plus a
// row-index slice, grouped and weighed against the shared encoding.
// OptSRepair precomputes the (data-independent) simplification chain
// once, recurses over views, and materializes only the final repair.
//
// Execution is organized around per-solve contexts (internal/solve,
// surfaced publicly as fdrepair.Solver with functional options). Each
// Solver owns a worker budget (WithParallelism) executed by a
// work-stealing task scheduler: the algorithm's natural tree of
// independent subproblems — OptSRepair blocks at every recursion
// depth, marriage-matching connected components, U-repair planner
// components — becomes explicit tasks on per-worker bounded deques,
// popped LIFO by their producer (depth-first, data still hot) and
// stolen FIFO by idle workers (breadth-first, the largest pending
// subtree). A parent awaiting its blocks never parks while work is
// pending anywhere: it helps execute queued tasks — its own or stolen
// ones from any recursion level — so nested recursion cannot deadlock
// on the budget and cannot idle a worker the way a try-acquire pool
// does (a worker acquired high in the tree used to park in the join
// while the subtree below it, finding the pool saturated, ran
// serially). Helper goroutines spawn per free worker slot while tasks
// are queued and exit when the deques drain, so an idle Solver holds
// no goroutines. Block results are joined in deterministic index
// order, so results are byte-identical to the serial engine at every
// worker count.
//
// Each Solver also owns scratch arenas in two tiers — a private
// lock-free shard per scheduler worker (hot buffers stay in the
// executing worker's cache even when tasks are stolen) over sync.Pool
// overflow (group-by buffers, block result slices, marriage edge
// lists, matcher CSR/potential/distance arrays and heap storage,
// recycled across recursion levels, components and sequential solves),
// pre-sized on first use from solve.Hints (row count, distinct-code
// estimate) taken from the input table; cooperative cancellation
// (WithContext — checked at task dispatch, recursion and component
// boundaries, every few augmenting phases inside the sparse matching
// loop, and inside the exponential vertex-cover search, so a
// deadline-exceeded solve returns the context error promptly without
// touching the input table); and an optional SolveStats record
// (WithStats — recursion nodes, tasks inline/executed/stolen, matcher
// path dispatches, U-repair planner decisions per component, arena
// reuse). Nothing on the solve hot path reads package-level pool
// state, so any number of Solvers with different settings run
// concurrently. The deprecated fdrepair.SetParallelism shim merely
// reconfigures the default Solver backing the package-level entry
// points.
//
// # Request scopes and batching
//
// Solver state is split along lifetimes. Solver-lifetime state — the
// worker budget and scheduler, the scratch arenas, the aggregate stats
// sink — persists across solves; that persistence is the point of a
// long-lived Solver (arena buffers converge on high-water sizes, the
// scheduler holds the budget). Per-request state — the scratch
// pre-sizing hints taken from the input table, the request's
// cancellation snapshot and deadline, an optional per-request stats
// record — lives in a solve scope (internal/solve.Scope) begun afresh
// by every entry point. Scoping the hints fixes a real bug: hints used
// to accumulate as a sticky maximum on the shared context, so a Solver
// that once repaired a 100k-row table pre-sized every cold buffer of
// every later 10-row solve at 100k rows — unbounded memory
// amplification in precisely the multi-tenant, many-table setting the
// Solver targets. A scope pre-sizes at the table actually being
// solved; pooled buffers grown by big solves are still reused by small
// ones, which costs nothing.
//
// On top of scopes sits the batch/stream entry point for many-table
// traffic: Solver.SolveBatch runs a slice of (FDSet, Table, Algorithm)
// requests as tasks on the solver's one work-stealing scheduler —
// request-level tasks interleave with the block-level tasks their own
// recursions spawn, so a mixed-size batch saturates the budget without
// over-subscribing it — and returns index-ordered, per-request results:
// each request carries its own error (one expired deadline, hard FD
// set or cancelled context never poisons its siblings), its own
// deadline (WithRequestTimeout or Request.Context) and its own
// SolveStats slice, while results remain byte-identical to solo solves
// at any worker count. Solver.NewStream is the queue form: Submit
// enqueues requests as they arrive (in-flight work bounded by the
// worker budget, natural backpressure past it), Results delivers each
// outcome as it completes, tagged with its submission index. The CLI's
// batch subcommand and the SolveBatch cases in paperbench -benchjson
// ride this path.
//
// # Resident sessions and incremental repair
//
// For tables that mutate between solves, fdrepair.Session binds one
// Solver, one table and one FD set into a resident handle that keeps
// the expensive intermediate state of a repair alive across calls:
// the table's dictionary-encoding snapshot, the FD set's simplification
// chain, the top-step block partition, and every block's previous
// repair. Mutations route through Session.AppendRows and
// Session.SetCells, which extend the live encoding in place —
// appends intern only new dictionary entries and bucket only new rows;
// cell updates re-intern the touched cells and re-code only the
// projections whose attribute sets intersect the touched attributes
// (a packed-key width overflow falls back to rebuilding that one
// projection) — and record a dirty row set instead of invalidating the
// encoding wholesale.
//
// Session.Repair then exploits the block decomposition: the first
// simplification step of the chain is data-independent, so the table
// partitions into blocks (common-lhs groups, consensus groups, or
// marriage (X1, X2) groups) that are solved independently. A block
// containing no dirty row and unchanged membership has, provably, the
// same optimal repair as last time — non-dirty rows never change
// equality class, and blocks are keyed by their smallest row index —
// so only dirty blocks are re-solved (as tasks on the Solver's
// work-stealing scheduler, under a fresh per-request solve.Scope) and
// clean blocks splice their cached result in. The root combine —
// union, heaviest block, or marriage matching — is replayed over the
// mix of cached and fresh block repairs in block order, so the output
// is byte-identical to a from-scratch solve at any worker count
// (pinned by a differential test suite running randomized mutation
// scripts at workers 1/2/4/8 under -race). When the dirty fraction
// exceeds a threshold (WithDirtyFallback, default 30%), when the FD
// set changes (SetFDs), or on the first call, the session falls back
// to a full solve and repopulates the cache. Sessions also feed the
// live dictionary to the solver as a cardinality source (solve.Hints.
// Cards), so scratch pre-sizing uses exact projection cardinalities
// instead of worst-case estimates. WithImpactRecording makes every
// Repair also produce an Impact report — violations per FD and cells
// changed per block, before vs after — surfaced by the CLI's verify
// subcommand.
//
// MarriageRep (Subroutine 3) runs on a sparse matching engine
// (internal/graph.SparseMatcher): the marriage graph has exactly one
// edge per observed (X1, X2) block, so marriageRep emits that edge list
// directly and the engine decomposes it into connected components
// (solved independently, and in parallel on the same worker budget as
// the repair blocks), dispatching each to a fast path — singleton edges
// and one-sided stars by a max scan, tiny components to the dense
// Hungarian solver (its padded matrix and working arrays pooled on the
// solve arena) — or to a sparse Jonker–Volgenant solver: shortest
// augmenting paths with potentials over CSR adjacency lists and a
// Dijkstra on a 4-ary heap over pooled storage, with a private
// zero-weight slack column per row so maximum-weight partial matching
// reduces to an assignment that is perfect on the smaller side. Cost is
// O(V·E·log V) on the real edge set instead of the O(size³) the padded
// dense matrix costs, which turns the matching-dominated marriage
// workloads from cubic in the distinct-value counts into near-linear in
// the block count. The dense Hungarian remains as the differential
// oracle (and the small-component fast path); GreedyMatching is the
// ablation baseline over the same edge-list type.
//
// The bench baseline for this architecture is recorded in ROADMAP.md;
// regenerate with:
//
//	go test -bench='Fig1|Table1|Scaling' -benchmem .
//
// or, machine-readable with per-solve stats (recursion nodes, matcher
// dispatches, arena reuse) attached to each repair case:
//
//	go run ./cmd/paperbench -benchjson BENCH_srepair.json
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
