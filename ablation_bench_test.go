// Ablation benchmarks for the design choices called out in DESIGN.md:
// the Hungarian matching inside MarriageRep, the Bar-Yehuda–Even vertex
// cover behind the 2-approximation, and the combined U-repair
// approximation of Section 4.4. Quality deltas are emitted as custom
// benchmark metrics so `go test -bench=Ablation` doubles as a quality
// report.
package repro_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// BenchmarkAblationMatching compares the optimal Hungarian matching
// with the greedy maximal matching on random weighted bipartite graphs.
// greedy-loss reports the mean fraction of matched weight the greedy
// variant forfeits — the price OptSRepair's marriage case would pay.
func BenchmarkAblationMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(301))
	const n = 24
	instances := make([][][]float64, 16)
	for t := range instances {
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				if rng.Float64() < 0.4 {
					w[i][j] = math.Inf(-1)
				} else {
					w[i][j] = float64(1 + rng.Intn(100))
				}
			}
		}
		instances[t] = w
	}
	edgeLists := make([][]graph.Edge, len(instances))
	for t, w := range instances {
		w := w
		edgeLists[t] = graph.EdgesOf(n, n, func(x, y int) float64 { return w[x][y] })
	}
	b.Run("hungarian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := instances[i%len(instances)]
			weight := func(x, y int) float64 { return w[x][y] }
			_, total, err := graph.MaxWeightBipartiteMatching(n, n, weight)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = total
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sm, err := graph.NewSparseMatcher(n, n, edgeLists[i%len(edgeLists)])
			if err != nil {
				b.Fatal(err)
			}
			res, err := sm.Solve()
			if err != nil {
				b.Fatal(err)
			}
			benchSink = res.Total
		}
	})
	b.Run("greedy", func(b *testing.B) {
		var loss, trials float64
		for i := 0; i < b.N; i++ {
			w := instances[i%len(instances)]
			weight := func(x, y int) float64 { return w[x][y] }
			_, opt, err := graph.MaxWeightBipartiteMatching(n, n, weight)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			_ = opt
			b.StartTimer()
			_, greedy := graph.GreedyMatching(n, n, edgeLists[i%len(edgeLists)])
			if opt > 0 {
				loss += 1 - greedy/opt
				trials++
			}
			benchSink = greedy
		}
		if trials > 0 {
			b.ReportMetric(loss/trials, "greedy-loss")
		}
	})
}

// BenchmarkAblationVertexCover compares the three cover strategies
// behind the S-repair approximations on random weighted graphs,
// reporting the mean cost ratio to the exact optimum.
func BenchmarkAblationVertexCover(b *testing.B) {
	rng := rand.New(rand.NewSource(303))
	type inst struct {
		g   *graph.Graph
		opt float64
	}
	var instances []inst
	for t := 0; t < 12; t++ {
		n := 14 + rng.Intn(6)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1 + float64(rng.Intn(9))
		}
		g := graph.MustNewGraph(weights)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		cover, err := g.ExactMinVertexCover()
		if err != nil {
			b.Fatal(err)
		}
		instances = append(instances, inst{g, g.CoverWeight(cover)})
	}
	run := func(b *testing.B, solve func(*graph.Graph) map[int]bool) {
		var ratio, trials float64
		for i := 0; i < b.N; i++ {
			in := instances[i%len(instances)]
			cover := solve(in.g)
			if !in.g.IsVertexCover(cover) {
				b.Fatal("not a cover")
			}
			if in.opt > 0 {
				ratio += in.g.CoverWeight(cover) / in.opt
				trials++
			}
			benchSink = cover
		}
		if trials > 0 {
			b.ReportMetric(ratio/trials, "cost-ratio")
		}
	}
	b.Run("bar-yehuda-even", func(b *testing.B) { run(b, (*graph.Graph).ApproxVertexCoverBE) })
	b.Run("greedy", func(b *testing.B) { run(b, (*graph.Graph).GreedyVertexCover) })
	b.Run("exact", func(b *testing.B) {
		run(b, func(g *graph.Graph) map[int]bool {
			c, err := g.ExactMinVertexCover()
			if err != nil {
				b.Fatal(err)
			}
			return c
		})
	})
}

// BenchmarkAblationCombinedURepair compares the two U-repair
// approximations of Section 4.4 and their combination on a hard FD set,
// reporting mean costs; kl-win-rate is the fraction of instances where
// the KL-style heuristic beat the 2·mlc construction (the paper's
// argument for running both).
func BenchmarkAblationCombinedURepair(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	rng := rand.New(rand.NewSource(305))
	var tables []*table.Table
	for t := 0; t < 12; t++ {
		tables = append(tables, workload.RandomTable(sc, 60, 4, rng))
	}
	b.Run("2mlc", func(b *testing.B) {
		var cost, trials float64
		for i := 0; i < b.N; i++ {
			tab := tables[i%len(tables)]
			u, _ := urepair.Approx2MLC(ds, tab)
			cost += table.DistUpd(u, tab)
			trials++
			benchSink = u
		}
		b.ReportMetric(cost/trials, "mean-cost")
	})
	b.Run("kl-heuristic", func(b *testing.B) {
		var cost, trials float64
		for i := 0; i < b.N; i++ {
			tab := tables[i%len(tables)]
			u, ok := urepair.KLHeuristic(ds, tab)
			if !ok {
				b.Fatal("heuristic refused")
			}
			cost += table.DistUpd(u, tab)
			trials++
			benchSink = u
		}
		b.ReportMetric(cost/trials, "mean-cost")
	})
	b.Run("combined", func(b *testing.B) {
		var cost, klWins, trials float64
		for i := 0; i < b.N; i++ {
			tab := tables[i%len(tables)]
			res, err := urepair.Repair(ds, tab)
			if err != nil {
				b.Fatal(err)
			}
			u1, _ := urepair.Approx2MLC(ds, tab)
			if table.WeightLess(res.Cost, table.DistUpd(u1, tab)) {
				klWins++
			}
			cost += res.Cost
			trials++
			benchSink = res
		}
		b.ReportMetric(cost/trials, "mean-cost")
		b.ReportMetric(klWins/trials, "kl-win-rate")
	})
}

// BenchmarkAblationExactVsOptSRepair quantifies why the dichotomy
// matters operationally: on a tractable set, Algorithm 1 vs the
// exponential vertex-cover baseline, as the table grows.
func BenchmarkAblationExactVsOptSRepair(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "A B -> C")
	for _, n := range []int{20, 40, 80} {
		tab := workload.RandomTable(sc, n, 3, rand.New(rand.NewSource(int64(n))))
		b.Run(benchName("optsrepair", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := srepair.OptSRepair(ds, tab)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s
			}
		})
		b.Run(benchName("exact-vc", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := srepair.Exact(ds, tab)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "/n=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}
