package priority

// The encoded priority engine: the same greedy completion-optimal
// repair as CRepair, but with the per-step clone-and-recheck replaced
// by per-FD admission maps over cached int32 projection codes. A tuple
// inserted along the topological completion violates consistency iff it
// conflicts (same lhs code, different rhs code under some FD) with an
// already-accepted tuple — so acceptance decisions decompose over the
// conflict graph's components, and each component (stratum) runs as one
// scheduler task. The accepted tuples assemble into the result table in
// the global topological order, reproducing CRepair's insertion
// sequence byte for byte.

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/solve"
	"repro/internal/table"
)

// validateAgainst is Validate with the conflict graph precomputed, so
// CRepairCtx builds it once for validation and component discovery.
func (r *Relation) validateAgainst(edges []table.ConflictEdge, t *table.Table) error {
	conflicts := map[[2]int]bool{}
	for _, e := range edges {
		conflicts[[2]int{e.ID1, e.ID2}] = true
		conflicts[[2]int{e.ID2, e.ID1}] = true
	}
	for a, bs := range r.prefers {
		if !t.Has(a) {
			return fmt.Errorf("priority: unknown tuple id %d", a)
		}
		for b := range bs {
			if !t.Has(b) {
				return fmt.Errorf("priority: unknown tuple id %d", b)
			}
			if !conflicts[[2]int{a, b}] {
				return fmt.Errorf("priority: %d ≻ %d relates non-conflicting tuples", a, b)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var visit func(v int) error
	visit = func(v int) error {
		color[v] = gray
		for b := range r.prefers[v] {
			switch color[b] {
			case gray:
				return fmt.Errorf("priority: cycle through %d and %d", v, b)
			case white:
				if err := visit(b); err != nil {
					return err
				}
			}
		}
		color[v] = black
		return nil
	}
	for a := range r.prefers {
		if color[a] == white {
			if err := visit(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// CRepairCtx is CRepair on the encoded core under a solve context:
// admission runs on cached projection codes (one lhs-code → rhs-code
// map per FD instead of a table clone and full consistency re-check per
// insertion), conflict components are processed as independent strata
// on the context's scheduler, and the result is byte-identical to
// CRepair — same accepted tuples, same insertion order.
func CRepairCtx(c *solve.Ctx, ds *fd.Set, t *table.Table, r *Relation) (*table.Table, error) {
	c = c.BeginSolve()
	rows := t.Rows()
	n := len(rows)
	c.SetHints(solve.Hints{Rows: n})

	edges := t.ConflictGraph(ds)
	if err := r.validateAgainst(edges, t); err != nil {
		return nil, err
	}
	order, err := topoOrder(t.IDs(), r)
	if err != nil {
		return nil, err
	}

	// Row positions by id, and the conflict components via union-find.
	idx := make(map[int]int32, n)
	for ri := range rows {
		idx[rows[ri].ID] = int32(ri)
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	conflicted := make([]bool, n)
	for _, e := range edges {
		u, v := idx[e.ID1], idx[e.ID2]
		conflicted[u], conflicted[v] = true, true
		ru, rv := find(u), find(v)
		if ru != rv {
			parent[ru] = rv
		}
	}

	// A conflict-free tuple is always accepted; the others are decided
	// stratum by stratum. accepted is indexed by row position.
	accepted := make([]bool, n)
	for ri := range rows {
		if !conflicted[ri] {
			accepted[ri] = true
		}
	}

	// Bucket conflicted rows by component root in global topo order, so
	// each stratum sees its tuples exactly as CRepair's scan would.
	compOf := make(map[int32]int32)
	var comps [][]int32 // row positions, in topo order
	for _, id := range order {
		ri := idx[id]
		if !conflicted[ri] {
			continue
		}
		root := find(ri)
		ci, ok := compOf[root]
		if !ok {
			ci = int32(len(comps))
			compOf[root] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], ri)
	}
	c.Stats().PriorityLevel(len(comps))

	// Whole-table projection codes per FD, computed up front so the
	// parallel strata only read the cached columns.
	fds := ds.FDs()
	lhsCodes := make([][]int32, len(fds))
	rhsCodes := make([][]int32, len(fds))
	for fi, f := range fds {
		lhsCodes[fi], _ = t.ProjectionCodes(f.LHS)
		rhsCodes[fi], _ = t.ProjectionCodes(f.RHS)
	}

	err = c.ForEachBlock(len(comps),
		func(i int) int { return len(comps[i]) },
		func(wc *solve.Ctx, i int) error {
			if err := wc.Err(); err != nil {
				return err
			}
			// Admission maps: per FD, the rhs code committed for each
			// lhs code by the tuples accepted so far in this stratum.
			seen := make([]map[int32]int32, len(fds))
			for fi := range seen {
				seen[fi] = make(map[int32]int32, len(comps[i]))
			}
			for _, ri := range comps[i] {
				ok := true
				for fi := range fds {
					if rhs, hit := seen[fi][lhsCodes[fi][ri]]; hit && rhs != rhsCodes[fi][ri] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				accepted[ri] = true
				for fi := range fds {
					seen[fi][lhsCodes[fi][ri]] = rhsCodes[fi][ri]
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	// Materialize in the global topological order — CRepair's insertion
	// sequence — so the result table is byte-identical to the seed's.
	chosen := table.New(t.Schema())
	for _, id := range order {
		ri := idx[id]
		if accepted[ri] {
			chosen.MustInsert(rows[ri].ID, rows[ri].Tuple, rows[ri].Weight)
		}
	}
	return chosen, nil
}
