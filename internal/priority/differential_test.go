package priority

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
	"repro/internal/workload"
)

// The component-local admission engine must reproduce the seed
// clone-and-recheck greedy byte-identically: same accepted rows in the
// same order — at every worker count, including relations that leave
// whole components unconstrained and relations that chain preferences
// across a component.

var diffWorkers = []int{1, 2, 4, 8}

func sameTables(t *testing.T, label string, want, got *table.Table) {
	t.Helper()
	wr, gr := want.Rows(), got.Rows()
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d rows, oracle has %d", label, len(gr), len(wr))
	}
	for i := range wr {
		if wr[i].ID != gr[i].ID || wr[i].Weight != gr[i].Weight ||
			!reflect.DeepEqual(wr[i].Tuple, gr[i].Tuple) {
			t.Fatalf("%s: row %d diverges: got %+v, oracle %+v", label, i, gr[i], wr[i])
		}
	}
}

func TestDifferentialPriorityCRepair(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		ds := fd.MustParseSet(sc, "A -> B")
		if rng.Intn(2) == 0 {
			ds = fd.MustParseSet(sc, "A -> B", "B -> C")
		}
		var tab *table.Table
		switch rng.Intn(3) {
		case 0:
			tab = workload.SmallComponentTable(sc, rng.Intn(201), 1+rng.Intn(5), 1+rng.Intn(3), rng)
		case 1:
			tab = workload.RandomTable(sc, rng.Intn(161), 1+rng.Intn(4), rng)
		default:
			tab = workload.MarriageSparseTable(sc, rng.Intn(201), 3, 3, rng)
		}
		rel := NewRelation()
		if rng.Intn(4) > 0 { // leave every fourth trial unconstrained
			for _, p := range workload.PriorityPairs(tab.ConflictGraph(ds), 0.3+rng.Float64()*0.7, rng) {
				rel.Add(p[0], p[1])
			}
		}
		want, err := CRepair(ds, tab, rel)
		if err != nil {
			t.Fatalf("trial %d: seed repair: %v", trial, err)
		}
		for _, w := range diffWorkers {
			got, err := CRepairCtx(solve.New(w, nil, nil), ds, tab, rel)
			if err != nil {
				t.Fatalf("trial %d workers=%d: encoded repair: %v", trial, w, err)
			}
			sameTables(t, "prioritized repair", want, got)
		}
	}
}

// TestDifferentialPriorityValidation pins the validation parity: a
// relation that relates non-conflicting tuples must be rejected by both
// implementations.
func TestDifferentialPriorityValidation(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B")
	tab := workload.SmallComponentTable(sc, 30, 3, 2, rand.New(rand.NewSource(73)))
	ids := tab.IDs()
	var a, b int
	found := false
	conflicts := map[[2]int]bool{}
	for _, e := range tab.ConflictGraph(ds) {
		conflicts[[2]int{e.ID1, e.ID2}] = true
		conflicts[[2]int{e.ID2, e.ID1}] = true
	}
	for _, x := range ids {
		for _, y := range ids {
			if x != y && !conflicts[[2]int{x, y}] {
				a, b, found = x, y, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("workload produced a complete conflict graph")
	}
	rel := NewRelation()
	rel.Add(a, b)
	if _, err := CRepair(ds, tab, rel); err == nil {
		t.Fatal("seed accepted a preference between non-conflicting tuples")
	}
	for _, w := range diffWorkers {
		if _, err := CRepairCtx(solve.New(w, nil, nil), ds, tab, rel); err == nil {
			t.Fatalf("workers=%d: encoded engine accepted a preference between non-conflicting tuples", w)
		}
	}
}
