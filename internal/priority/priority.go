// Package priority implements prioritized subset repairing in the
// framework of Staworko, Chomicki and Marcinkowski (cited as [29] and
// raised as future work in Section 5 of the paper): an acyclic priority
// relation ≻ between conflicting tuples eliminates subset repairs that
// are inferior to others.
//
// Supported notions (Staworko et al. 2012):
//
//   - completion-optimal repairs (c-repairs): produced by greedily
//     inserting tuples along a topological completion of ≻;
//   - Pareto-optimal repairs (p-repairs): no repair S′ has a tuple
//     t′ ∈ S′∖S preferred to every tuple of S∖S′;
//   - globally-optimal repairs (g-repairs): no repair S′ improves S
//     with every removed tuple dominated by some added one
//     (GRep ⊆ PRep ⊆ CRep).
//
// Optimality checks are enumeration-based (via internal/enumerate) and
// therefore limited to small instances; the greedy c-repair is
// polynomial. The package also detects ambiguity — whether the
// priorities determine the repair uniquely — the question studied by
// Kimelfeld, Livshits and Peterfreund (cited as [23]).
package priority

import (
	"fmt"
	"sort"

	"repro/internal/enumerate"
	"repro/internal/fd"
	"repro/internal/table"
)

// Relation is a priority relation ≻ on tuple identifiers: Add(a, b)
// declares a ≻ b (a is preferred to b). The relation must be acyclic;
// Validate checks it.
type Relation struct {
	prefers map[int]map[int]bool // a -> set of b with a ≻ b
}

// NewRelation returns an empty priority relation.
func NewRelation() *Relation {
	return &Relation{prefers: map[int]map[int]bool{}}
}

// Add declares a ≻ b.
func (r *Relation) Add(a, b int) {
	if r.prefers[a] == nil {
		r.prefers[a] = map[int]bool{}
	}
	r.prefers[a][b] = true
}

// Prefers reports whether a ≻ b was declared (no transitive closure;
// Staworko et al. treat ≻ as a base relation).
func (r *Relation) Prefers(a, b int) bool { return r.prefers[a][b] }

// Validate checks that the relation is acyclic, mentions only tuple
// identifiers of t, and (per the framework) only relates conflicting
// tuples.
func (r *Relation) Validate(ds *fd.Set, t *table.Table) error {
	conflicts := map[[2]int]bool{}
	for _, e := range t.ConflictGraph(ds) {
		conflicts[[2]int{e.ID1, e.ID2}] = true
		conflicts[[2]int{e.ID2, e.ID1}] = true
	}
	for a, bs := range r.prefers {
		if !t.Has(a) {
			return fmt.Errorf("priority: unknown tuple id %d", a)
		}
		for b := range bs {
			if !t.Has(b) {
				return fmt.Errorf("priority: unknown tuple id %d", b)
			}
			if !conflicts[[2]int{a, b}] {
				return fmt.Errorf("priority: %d ≻ %d relates non-conflicting tuples", a, b)
			}
		}
	}
	// Acyclicity by DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var visit func(v int) error
	visit = func(v int) error {
		color[v] = gray
		for b := range r.prefers[v] {
			switch color[b] {
			case gray:
				return fmt.Errorf("priority: cycle through %d and %d", v, b)
			case white:
				if err := visit(b); err != nil {
					return err
				}
			}
		}
		color[v] = black
		return nil
	}
	for a := range r.prefers {
		if color[a] == white {
			if err := visit(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// CRepair computes a completion-optimal repair: tuples are inserted
// greedily along a topological completion of ≻ (ties broken by tuple
// id, keeping the result deterministic); a tuple enters iff it stays
// consistent with the tuples chosen so far. The result is always a
// subset repair.
func CRepair(ds *fd.Set, t *table.Table, r *Relation) (*table.Table, error) {
	if err := r.Validate(ds, t); err != nil {
		return nil, err
	}
	order, err := topoOrder(t.IDs(), r)
	if err != nil {
		return nil, err
	}
	chosen := table.New(t.Schema())
	for _, id := range order {
		row, _ := t.Row(id)
		trial := chosen.Clone()
		trial.MustInsert(row.ID, row.Tuple, row.Weight)
		if trial.Satisfies(ds) {
			chosen = trial
		}
	}
	return chosen, nil
}

// topoOrder returns a total order of ids extending ≻ (preferred tuples
// first), Kahn's algorithm with id tie-breaking.
func topoOrder(ids []int, r *Relation) ([]int, error) {
	indeg := map[int]int{}
	for _, id := range ids {
		indeg[id] = 0
	}
	for a, bs := range r.prefers {
		if _, ok := indeg[a]; !ok {
			continue
		}
		for b := range bs {
			if _, ok := indeg[b]; ok {
				indeg[b]++
			}
		}
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Ints(ready)
	var out []int
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		var unlocked []int
		for b := range r.prefers[id] {
			if _, ok := indeg[b]; !ok {
				continue
			}
			indeg[b]--
			if indeg[b] == 0 {
				unlocked = append(unlocked, b)
			}
		}
		sort.Ints(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(out) != len(ids) {
		return nil, fmt.Errorf("priority: relation is cyclic")
	}
	return out, nil
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// diff returns ids(s1) ∖ ids(s2).
func diff(s1, s2 *table.Table) []int {
	var out []int
	for _, id := range s1.IDs() {
		if !s2.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// isGlobalImprovement reports whether s2 globally improves s1: s2 ≠ s1
// and every tuple of s1∖s2 (removed) is dominated by some tuple of
// s2∖s1 (added). Every Pareto improvement is a global improvement, so
// fewer repairs are globally optimal: GRep ⊆ PRep.
func (r *Relation) isGlobalImprovement(s1, s2 *table.Table) bool {
	added := diff(s2, s1)
	removed := diff(s1, s2)
	if len(added) == 0 && len(removed) == 0 {
		return false
	}
	for _, b := range removed {
		ok := false
		for _, a := range added {
			if r.Prefers(a, b) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// isParetoImprovement reports whether s2 Pareto-improves s1: some tuple
// of s2∖s1 is preferred to every tuple of s1∖s2.
func (r *Relation) isParetoImprovement(s1, s2 *table.Table) bool {
	added := diff(s2, s1)
	removed := diff(s1, s2)
	if len(added) == 0 || len(removed) == 0 {
		return false
	}
	for _, a := range added {
		all := true
		for _, b := range removed {
			if !r.Prefers(a, b) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Optimal enumerates the subset repairs of t and splits them by
// optimality notion. Enumeration-bounded (≤ 64 tuples).
type Optimal struct {
	// All subset repairs.
	All []*table.Table
	// Pareto holds the p-repairs (no Pareto improvement exists).
	Pareto []*table.Table
	// Global holds the g-repairs (no global improvement exists).
	Global []*table.Table
}

// Compute classifies every subset repair of t under ds.
func Compute(ds *fd.Set, t *table.Table, r *Relation) (*Optimal, error) {
	if err := r.Validate(ds, t); err != nil {
		return nil, err
	}
	reps, count, err := enumerate.SubsetRepairs(ds, t, 0)
	if err != nil {
		return nil, err
	}
	if count != len(reps) {
		return nil, fmt.Errorf("priority: enumeration truncated (%d of %d)", len(reps), count)
	}
	out := &Optimal{All: reps}
	for _, s := range reps {
		pareto, global := true, true
		for _, s2 := range reps {
			if s == s2 {
				continue
			}
			if r.isParetoImprovement(s, s2) {
				pareto = false
			}
			if r.isGlobalImprovement(s, s2) {
				global = false
			}
			if !pareto && !global {
				break
			}
		}
		if pareto {
			out.Pareto = append(out.Pareto, s)
		}
		if global {
			out.Global = append(out.Global, s)
		}
	}
	return out, nil
}

// Unambiguous reports whether the priorities clean the database
// unambiguously: exactly one Pareto-optimal repair remains (the notion
// studied in [23]).
func Unambiguous(ds *fd.Set, t *table.Table, r *Relation) (bool, error) {
	opt, err := Compute(ds, t, r)
	if err != nil {
		return false, err
	}
	return len(opt.Pareto) == 1, nil
}
