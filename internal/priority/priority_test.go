package priority

import (
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

func TestValidate(t *testing.T) {
	_, ds, tab := workload.Office()
	r := NewRelation()
	r.Add(1, 2) // tuples 1 and 2 conflict: fine
	if err := r.Validate(ds, tab); err != nil {
		t.Fatal(err)
	}
	// Non-conflicting pair rejected.
	r2 := NewRelation()
	r2.Add(1, 4)
	if err := r2.Validate(ds, tab); err == nil {
		t.Fatal("1 and 4 do not conflict; must be rejected")
	}
	// Unknown ids rejected.
	r3 := NewRelation()
	r3.Add(1, 99)
	if err := r3.Validate(ds, tab); err == nil {
		t.Fatal("unknown id must be rejected")
	}
	// Cycles rejected.
	r4 := NewRelation()
	r4.Add(1, 2)
	r4.Add(2, 1)
	if err := r4.Validate(ds, tab); err == nil {
		t.Fatal("cycle must be rejected")
	}
}

// TestCRepairFollowsPriority: on Figure 1, preferring tuple 1 over its
// conflictors keeps tuple 1 (the S2 repair); preferring 2 and 3 keeps
// them (the S1 repair).
func TestCRepairFollowsPriority(t *testing.T) {
	_, ds, tab := workload.Office()
	r := NewRelation()
	r.Add(1, 2)
	r.Add(1, 3)
	rep, err := CRepair(ds, tab, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Has(1) || rep.Has(2) || rep.Has(3) || !rep.Has(4) {
		t.Fatalf("repair = %v, want {1,4}", rep.IDs())
	}
	r2 := NewRelation()
	r2.Add(2, 1)
	r2.Add(3, 1)
	rep2, err := CRepair(ds, tab, r2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Has(1) || !rep2.Has(2) || !rep2.Has(3) || !rep2.Has(4) {
		t.Fatalf("repair = %v, want {2,3,4}", rep2.IDs())
	}
}

// TestCRepairIsARepair: the greedy output is always a maximal
// consistent subset.
func TestCRepairIsARepair(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 15; iter++ {
		tab := workload.RandomTable(sc, 8, 2, rng)
		r := NewRelation()
		// Random acyclic priorities: higher id ≻ lower id on some edges.
		for _, e := range tab.ConflictGraph(ds) {
			if rng.Intn(2) == 0 {
				hi, lo := e.ID1, e.ID2
				if hi < lo {
					hi, lo = lo, hi
				}
				r.Add(hi, lo)
			}
		}
		rep, err := CRepair(ds, tab, r)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Satisfies(ds) || !rep.IsSubsetOf(tab) {
			t.Fatal("c-repair invalid")
		}
		for _, id := range tab.IDs() {
			if rep.Has(id) {
				continue
			}
			row, _ := tab.Row(id)
			trial := rep.Clone()
			trial.MustInsert(row.ID, row.Tuple, row.Weight)
			if trial.Satisfies(ds) {
				t.Fatalf("c-repair not maximal: %d can return", id)
			}
		}
	}
}

// TestEmptyPriorityAllOptimal: with no priorities every repair is both
// Pareto- and globally-optimal (no improvement can exist).
func TestEmptyPriorityAllOptimal(t *testing.T) {
	_, ds, tab := workload.Office()
	opt, err := Compute(ds, tab, NewRelation())
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.All) == 0 {
		t.Fatal("no repairs enumerated")
	}
	if len(opt.Pareto) != len(opt.All) || len(opt.Global) != len(opt.All) {
		t.Fatalf("empty priority: %d repairs, %d pareto, %d global",
			len(opt.All), len(opt.Pareto), len(opt.Global))
	}
}

// TestGlobalSubsetOfPareto: every g-repair is a p-repair (Staworko et
// al.; global improvements generalize Pareto improvements... the
// containment GRep ⊆ PRep).
func TestGlobalSubsetOfPareto(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	rng := rand.New(rand.NewSource(93))
	for iter := 0; iter < 15; iter++ {
		tab := workload.RandomTable(sc, 7, 2, rng)
		// Orient a random subset of conflicts along a random global rank,
		// which keeps the relation acyclic by construction.
		rank := rng.Perm(tab.Len() + 1)
		r := NewRelation()
		for _, e := range tab.ConflictGraph(ds) {
			if rng.Intn(3) == 2 {
				continue
			}
			if rank[e.ID1] > rank[e.ID2] {
				r.Add(e.ID1, e.ID2)
			} else {
				r.Add(e.ID2, e.ID1)
			}
		}
		if err := r.Validate(ds, tab); err != nil {
			t.Fatal(err)
		}
		opt, err := Compute(ds, tab, r)
		if err != nil {
			t.Fatal(err)
		}
		inPareto := map[*table.Table]bool{}
		for _, s := range opt.Pareto {
			inPareto[s] = true
		}
		for _, s := range opt.Global {
			if !inPareto[s] {
				t.Fatalf("g-repair %v is not a p-repair", s.IDs())
			}
		}
		if len(opt.Global) == 0 {
			t.Fatal("at least one g-repair must exist")
		}
	}
}

// TestUnambiguousDetection: a total priority over every conflict makes
// the repair unique; dropping priorities brings ambiguity back.
func TestUnambiguousDetection(t *testing.T) {
	_, ds, tab := workload.Office()
	r := NewRelation()
	r.Add(1, 2)
	r.Add(1, 3)
	unique, err := Unambiguous(ds, tab, r)
	if err != nil {
		t.Fatal(err)
	}
	if !unique {
		t.Fatal("full priority should determine the repair uniquely")
	}
	ambiguous, err := Unambiguous(ds, tab, NewRelation())
	if err != nil {
		t.Fatal(err)
	}
	if ambiguous {
		t.Fatal("no priorities: the running example has several repairs")
	}
}

// TestCRepairAmongPareto: the greedy c-repair with the declared
// priorities appears among the enumerated repairs and, when the
// priority totally orders each conflict, among the Pareto-optimal ones.
func TestCRepairAmongPareto(t *testing.T) {
	_, ds, tab := workload.Office()
	r := NewRelation()
	r.Add(1, 2)
	r.Add(1, 3)
	rep, err := CRepair(ds, tab, r)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compute(ds, tab, r)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range opt.Pareto {
		if sameIDs(s.IDs(), rep.IDs()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("c-repair %v not among p-repairs", rep.IDs())
	}
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}
