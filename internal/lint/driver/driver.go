// Package driver loads Go packages and runs go/analysis analyzers over
// them without the go/packages machinery (which is not vendored with
// the toolchain). Package metadata and dependency export data come from
// `go list -deps -export -json`; the listed target packages are then
// re-parsed and type-checked from source so analyzers see full syntax
// trees, while their imports resolve through the compiler's export
// data. Everything works offline against the local build cache.
//
// The driver implements the subset of the analysis contract fdlint
// needs: syntax, types, and the Requires graph (inspect, ctrlflow).
// Facts are not supported — fdlint's analyzers are package-local by
// design — and a registered analyzer declaring fact types is rejected.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	GoFiles []string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is a finding from one analyzer, positioned and resolved
// (suppressions already applied by Run).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (fdlint/%s)", d.Pos, d.Message, d.Analyzer)
}

// listedPkg is the slice of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns (plus dependencies) from dir, parses and
// type-checks every matched target package, and returns them sorted by
// import path.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export", "-e",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		p, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t listedPkg) (*Package, error) {
	var files []*ast.File
	var names []string
	for _, f := range t.GoFiles {
		name := t.Dir + string(os.PathSeparator) + f
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, af)
		names = append(names, name)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect the first error below instead
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
	}
	return &Package{
		PkgPath: t.ImportPath,
		Name:    t.Name,
		Dir:     t.Dir,
		GoFiles: names,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewInfo returns a types.Info with every map analyzers may consult
// populated. Shared with the linttest loader so test packages are
// checked identically to real ones.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
}

// Run executes analyzers (and, transitively, their Requires) over each
// package and returns the surviving diagnostics: suppression directives
// (`//lint:ignore fdlint/<name> <reason>`) filter matching findings,
// and malformed directives — no reason, unknown analyzer — are
// themselves reported as findings of the pseudo-analyzer "directive".
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if err := validate(a); err != nil {
			return nil, err
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// validate rejects registered analyzers that depend on cross-package
// facts for their own findings. Required sub-analyzers (e.g. ctrlflow,
// which exports noReturn facts) are allowed: they run against the
// stubbed fact API and degrade to their package-local precision.
func validate(a *analysis.Analyzer) error {
	if len(a.FactTypes) > 0 {
		return fmt.Errorf("analyzer %s declares facts; the fdlint driver is package-local", a.Name)
	}
	return nil
}

// RunPackage executes analyzers over one already-loaded package. Used
// by the linttest golden runner; Run is the multi-package entry point.
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	return runPackage(pkg, analyzers)
}

func runPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	sup, supDiags := parseDirectives(pkg)
	diags := supDiags

	results := make(map[*analysis.Analyzer]any)
	var exec func(a *analysis.Analyzer) error
	exec = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
		for _, req := range a.Requires {
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:          a,
			Fset:              pkg.Fset,
			Files:             pkg.Files,
			Pkg:               pkg.Types,
			TypesInfo:         pkg.Info,
			TypesSizes:        types.SizesFor("gc", "amd64"),
			ResultOf:          resultOf,
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		pass.Report = func(d analysis.Diagnostic) {
			if sup.suppressed(a.Name, d.Pos) {
				return
			}
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		if a.ResultType != nil {
			results[a] = res
		} else {
			results[a] = nil
		}
		return nil
	}
	for _, a := range analyzers {
		if err := exec(a); err != nil {
			return nil, err
		}
	}
	// Keep only diagnostics from the requested analyzers (plus directive
	// findings); required sub-analyzers run silently.
	want := make(map[string]bool, len(analyzers)+1)
	want["directive"] = true
	for _, a := range analyzers {
		want[a.Name] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if want[d.Analyzer] {
			out = append(out, d)
		}
	}
	return out, nil
}

// ---- Suppression directives ----

// A directive `//lint:ignore fdlint/<name> <reason>` suppresses
// diagnostics of analyzer <name>:
//
//   - as a trailing comment: on its own line;
//   - on a line of its own: within the statement or declaration that
//     begins on the next code line (so one directive above a function
//     can pin a whole-function finding, and one above a loop pins the
//     loop).
//
// The reason is mandatory: a bare directive is itself a finding.
type suppressions struct {
	fset *token.FileSet
	// byName maps analyzer name to suppressed position ranges.
	ranges map[string][]posRange
}

type posRange struct{ lo, hi token.Pos }

func (s *suppressions) suppressed(name string, pos token.Pos) bool {
	for _, r := range s.ranges[name] {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	return false
}

const directivePrefix = "//lint:ignore fdlint/"

func parseDirectives(pkg *Package) (*suppressions, []Diagnostic) {
	sup := &suppressions{fset: pkg.Fset, ranges: make(map[string][]posRange)}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "lint:ignore directive requires an analyzer name and a reason: //lint:ignore fdlint/<name> <reason>",
					})
					continue
				}
				lo, hi := directiveTarget(pkg, f, c)
				sup.ranges[name] = append(sup.ranges[name], posRange{lo, hi})
			}
		}
	}
	return sup, diags
}

// directiveTarget returns the source range a directive comment governs.
func directiveTarget(pkg *Package, f *ast.File, c *ast.Comment) (lo, hi token.Pos) {
	line := pkg.Fset.Position(c.Pos()).Line
	// Trailing directive: govern the statement it trails.
	if n := nodeStartingOnLine(pkg, f, line); n != nil {
		return n.Pos(), n.End()
	}
	// Stand-alone directive (possibly inside a doc comment): govern the
	// outermost statement or declaration beginning on the next code
	// line, skipping any remaining comment lines. The scan is bounded so
	// a dangling directive never governs distant code.
	last := min(line+10, pkg.Fset.File(f.Pos()).LineCount())
	for next := line + 1; next <= last; next++ {
		if n := nodeStartingOnLine(pkg, f, next); n != nil {
			return n.Pos(), n.End()
		}
	}
	return lineRange(pkg, f, line)
}

// nodeStartingOnLine returns the outermost statement or declaration
// whose first token is on the given line, or nil.
func nodeStartingOnLine(pkg *Package, f *ast.File, line int) ast.Node {
	var found ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found != nil {
			return false
		}
		switch n.(type) {
		case ast.Decl, ast.Stmt:
			if pkg.Fset.Position(n.Pos()).Line == line {
				found = n
				return false
			}
		}
		return true
	})
	return found
}

func lineRange(pkg *Package, f *ast.File, line int) (lo, hi token.Pos) {
	tf := pkg.Fset.File(f.Pos())
	lo = tf.LineStart(line)
	if line+1 <= tf.LineCount() {
		hi = tf.LineStart(line+1) - 1
	} else {
		hi = token.Pos(tf.Base() + tf.Size())
	}
	return lo, hi
}
