package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// loadSrc typechecks a single import-free source file into a Package.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		PkgPath: "p", Name: "p", GoFiles: []string{"p.go"},
		Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info,
	}
}

// markAnalyzer reports one diagnostic at every call to a function
// literally named "mark".
var markAnalyzer = &analysis.Analyzer{
	Name: "mark",
	Doc:  "flags calls to mark() — a suppression test fixture",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						pass.Reportf(call.Pos(), "mark called")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

func runMark(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := RunPackage(loadSrc(t, src), []*analysis.Analyzer{markAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestTrailingDirectiveSuppressesStatement(t *testing.T) {
	diags := runMark(t, `package p
func mark() {}
func f() {
	mark() //lint:ignore fdlint/mark this call is under test
	mark()
}
`)
	if len(diags) != 1 {
		t.Fatalf("want 1 surviving diagnostic, got %d: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 5 {
		t.Errorf("surviving diagnostic on line %d, want 5 (the unsuppressed call)", diags[0].Pos.Line)
	}
}

func TestStandaloneDirectiveGovernsNextDeclaration(t *testing.T) {
	diags := runMark(t, `package p
func mark() {}

//lint:ignore fdlint/mark whole function is exempt for the fixture
func f() {
	mark()
	mark()
}

func g() {
	mark()
}
`)
	if len(diags) != 1 {
		t.Fatalf("want 1 surviving diagnostic (g's), got %d: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 11 {
		t.Errorf("surviving diagnostic on line %d, want 11", diags[0].Pos.Line)
	}
}

func TestReasonlessDirectiveIsAFinding(t *testing.T) {
	diags := runMark(t, `package p
func mark() {}
func f() {
	//lint:ignore fdlint/mark
	mark()
}
`)
	var directive, mark int
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive++
			if !strings.Contains(d.Message, "requires an analyzer name and a reason") {
				t.Errorf("directive finding message = %q", d.Message)
			}
		case "mark":
			mark++
		}
	}
	if directive != 1 {
		t.Errorf("want 1 directive finding for the reasonless ignore, got %d: %v", directive, diags)
	}
	if mark != 1 {
		t.Errorf("reasonless directive must not suppress: want the mark finding to survive, got %d", mark)
	}
}

func TestDirectiveForOtherAnalyzerDoesNotSuppress(t *testing.T) {
	diags := runMark(t, `package p
func mark() {}
func f() {
	mark() //lint:ignore fdlint/other a reason that names the wrong analyzer
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "mark" {
		t.Fatalf("want the mark finding to survive a mismatched directive, got %v", diags)
	}
}
