// Package determinism guards the optimality contract's reproducibility
// half: a repair must be byte-identical across runs and across worker
// counts ∈ {1,2,4,8}, so solve-path code (lintutil's solve-path
// package list) must not consult sources of run-to-run variation:
//
//   - wall clocks: time.Now, Since, Until, After, Tick, NewTimer,
//     NewTicker, Sleep — scheduling-visible time has no place between
//     BeginSolve and the result rows;
//   - ambient randomness: the package-level math/rand and math/rand/v2
//     functions (process-seeded; a deterministic *rand.Rand built from
//     an explicit seed is fine);
//   - map iteration order that feeds results: a `range` over a map
//     whose body appends to a slice is flagged unless that slice is
//     sorted after the loop in the same function — the work-stealing
//     scheduler makes any such order user-visible in the repair.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "determinism",
	Doc:      "forbid wall clocks, ambient randomness and unsorted map-order results in solve-path packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "Sleep": true,
	"AfterFunc": true,
}

// randConstructors build explicitly seeded generators — the blessed
// deterministic pattern — and touch no ambient state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.OnSolvePath(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		sig := fn.Type().(*types.Signature)
		switch pkg := fn.Pkg().Path(); {
		case pkg == "time" && sig.Recv() == nil && bannedTime[fn.Name()]:
			pass.Reportf(call.Pos(),
				"time.%s in solve-path code: wall-clock values vary run to run and break byte-identical repairs (thread deadlines through Ctx instead)",
				fn.Name())
		case (pkg == "math/rand" || pkg == "math/rand/v2") && sig.Recv() == nil && !randConstructors[fn.Name()]:
			pass.Reportf(call.Pos(),
				"package-level %s.%s is seeded per process: solve-path randomness must come from an explicitly seeded *rand.Rand, or better, be removed",
				pkg, fn.Name())
		}
	})

	// Map-order checks need the enclosing function to look for sorts
	// after the loop.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			checkMapRanges(pass, body)
		}
	})
	return nil, nil
}

// checkMapRanges flags `for ... := range m { out = append(out, ...) }`
// when m is a map and out is not subsequently sorted in the same body.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions are scanned on their own
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		for _, out := range appendTargets(pass, rng.Body) {
			if !sortedAfter(pass, body, rng, out) {
				pass.Reportf(rng.Pos(),
					"map iteration order feeds slice %q without a subsequent sort in this function: the scheduler makes the order user-visible in results",
					out.Name())
			}
		}
		return true
	})
}

// appendTargets returns the variables appended to inside the loop body.
func appendTargets(pass *analysis.Pass, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		asn, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asn.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if i >= len(asn.Lhs) {
				continue
			}
			v, ok := lintutil.ObjOf(pass.TypesInfo, asn.Lhs[i]).(*types.Var)
			if ok && !seen[v] {
				seen[v] = true
				out = append(out, v)
			} else if !ok {
				// appends to fields/elements: approximate by flagging
				// through a nil sentinel-free path — skip; field sinks
				// are rare and reviewed by hand.
				continue
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether v is passed to a sort-like call after
// the range statement within the enclosing body. Recognized sorts:
// anything in packages sort or slices, and local helpers whose name
// contains "sort" (e.g. srepair.sortRows). The variable may appear
// directly, wrapped in a conversion (sort.Sort(byCost(v))), or as the
// argument of a method value.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.End() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortLike(pass, call) {
			return true
		}
		mentions := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					mentions = true
				}
				return !mentions
			})
		}
		if mentions {
			found = true
		}
		return !found
	})
	return found
}

func isSortLike(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	return strings.Contains(strings.ToLower(fn.Name()), "sort")
}
