package determinism_test

import (
	"testing"

	"repro/internal/lint/determinism"
	"repro/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, "repro/internal/srepair", "plainpkg")
}
