// Package plainpkg sits off the solve path: wall clocks and ambient
// randomness are allowed here, so the analyzer must stay silent.
package plainpkg

import (
	"math/rand"
	"time"
)

func Timestamp() int64 { return time.Now().UnixNano() }

func Jitter(n int) int { return rand.Intn(n) }

func Keys(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
