package srepair

import (
	"math/rand"
	"sort"
	"time"
)

func WallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in solve-path code`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in solve-path code`
}

func AmbientRand(n int) int {
	return rand.Intn(n) // want `package-level math/rand.Intn is seeded per process`
}

// SeededRand is the blessed pattern: an explicitly seeded generator.
func SeededRand(n int) int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(n)
}

// BadOrder lets map iteration order leak into a result slice.
func BadOrder(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `map iteration order feeds slice "out" without a subsequent sort`
		out = append(out, v)
	}
	return out
}

// SortedOrder restores determinism with a sort after the loop.
func SortedOrder(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Aggregate is order-insensitive: no slice is built, no finding.
func Aggregate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
