package srepair

import "time"

// AuditClock is sanctioned: the timestamp labels a diagnostics dump and
// never reaches the repair rows.
//
//lint:ignore fdlint/determinism timestamp labels a debug dump, not repair output
func AuditClock() int64 {
	return time.Now().UnixNano()
}
