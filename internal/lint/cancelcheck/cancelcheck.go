// Package cancelcheck enforces cooperative-cancellation polling in the
// solve recursion: a deadline-exceeded or cancelled request must stop
// burning CPU at the next loop boundary, which only happens if loops
// over rows, blocks, components and augmenting phases actually poll
// Ctx.Err (the sparse matcher polls every 32 phases; block fan-outs
// poll per dispatch inside ForEachBlock).
//
// Two loop shapes are flagged in solve-path packages:
//
//   - a loop that hands its *solve.Ctx to same-package work per
//     iteration without the loop (or that callee, transitively) ever
//     polling Err. Calls into other solve-path packages are assumed to
//     poll — each package is analyzed under its own cancelcheck — and
//     Ctx.ForEachBlock polls at every dispatch by construction;
//   - a deeply nested (≥3 levels) pure-computation loop in a function
//     with a Ctx in scope that never polls: the JV-convention shape,
//     where the outermost phase loop must carry the check.
package cancelcheck

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cancelcheck",
	Doc:  "solve-path loops dispatching per-iteration work must poll Ctx.Err",
	Run:  run,
}

// cheapCtxMethods neither do per-iteration work nor poll: handing the
// Ctx to them does not make a loop heavy.
var cheapCtxMethods = map[string]bool{
	"SetHints": true, "Hints": true, "Workers": true, "Stats": true,
	"ProjectionCard": true, "Base": true, "Scoped": true, "BeginSolve": true,
	"GetScratch": true, "PutScratch": true,
	"Int32s": true, "PutInt32s": true, "Int32Slices": true, "PutInt32Slices": true,
	"Float64s": true, "PutFloat64s": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.OnSolvePath(pass) {
		return nil, nil
	}

	decls := funcDecls(pass)
	pollers := localPollers(pass, decls)

	for fn, decl := range decls {
		hasCtx := lintutil.CtxParam(fn) != nil || usesCtx(pass, decl.Body)
		checkBody(pass, decl.Body, pollers, hasCtx)
	}
	return nil, nil
}

func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
					decls[fn] = decl
				}
			}
		}
	}
	return decls
}

// localPollers computes, to a fixed point, the same-package functions
// that poll cancellation: their body calls Ctx.Err or Ctx.ForEachBlock
// (which polls per dispatch), or calls another local poller.
func localPollers(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	pollers := make(map[*types.Func]bool)
	for fn, decl := range decls {
		if containsDirectPoll(pass, decl.Body) {
			pollers[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, decl := range decls {
			if pollers[fn] {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if pollers[fn] {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok && pollers[callee] {
					pollers[fn] = true
					changed = true
					return false
				}
				return true
			})
		}
	}
	return pollers
}

// containsDirectPoll reports whether the subtree calls Err or
// ForEachBlock on a *solve.Ctx.
func containsDirectPoll(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Err" || sel.Sel.Name == "ForEachBlock" {
				if t := pass.TypesInfo.TypeOf(sel.X); t != nil && lintutil.IsCtxPtr(t) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, pollers map[*types.Func]bool, hasCtx bool) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch l := m.(type) {
			case *ast.FuncLit:
				if m != n {
					// Fresh loop-depth scope for closures; a captured ctx
					// keeps the JV-shape check armed.
					checkBody(pass, l.Body, pollers, hasCtx || usesCtx(pass, l.Body))
					return false
				}
			case *ast.ForStmt:
				if m != n {
					checkLoop(pass, l, l.Body, loopDepth, hasCtx, pollers)
					walk(l.Body, loopDepth+1)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					checkLoop(pass, l, l.Body, loopDepth, hasCtx, pollers)
					walk(l.Body, loopDepth+1)
					return false
				}
			}
			return true
		})
	}
	walk(body, 0)
}

func checkLoop(pass *analysis.Pass, loop ast.Stmt, body *ast.BlockStmt, depth int, hasCtx bool, pollers map[*types.Func]bool) {
	if containsDirectPoll(pass, body) {
		return
	}
	// Heavy same-package dispatch without a poll anywhere beneath.
	if callee := heavyCall(pass, body, pollers); callee != "" {
		pass.Reportf(loop.Pos(),
			"loop dispatches ctx-threaded work (%s) every iteration but never polls Ctx.Err: a cancelled or deadline-exceeded solve keeps burning CPU here",
			callee)
		return
	}
	// The JV shape: outermost pure-computation loop nesting ≥3 deep in
	// a ctx-bearing function. Only the outermost loop is reported — the
	// convention puts the poll on the phase loop, not the scan loops —
	// and only when no ctx-threaded call owns the work (those are
	// attributed to their innermost loop above).
	if depth == 0 && hasCtx && nestingDepth(body) >= 2 && !containsCtxCall(pass, body) {
		pass.Reportf(loop.Pos(),
			"deeply nested solve loop never polls Ctx.Err: add the every-32-iterations cancellation check to the outermost phase loop")
	}
}

// heavyCall returns the name of a call in the loop body that hands a
// *solve.Ctx to a non-cheap, non-polling same-package function, or "".
// Cross-package Ctx calls are assumed to poll internally (their own
// package's cancelcheck enforces it); deferred calls run after the
// loop, not per iteration.
func heavyCall(pass *analysis.Pass, body *ast.BlockStmt, pollers map[*types.Func]bool) string {
	heavy := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if heavy != "" {
			return false
		}
		switch n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			// Heavy calls inside a nested loop are attributed to that
			// loop, keeping one finding per construct.
			if n != ast.Node(body) {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return true
		}
		takesCtx := false
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil && lintutil.IsCtxPtr(t) {
				if cheapCtxMethods[callee.Name()] || callee.Name() == "Err" || callee.Name() == "ForEachBlock" {
					return true
				}
				takesCtx = true
			}
		}
		for _, arg := range call.Args {
			if t := pass.TypesInfo.TypeOf(arg); t != nil && lintutil.IsCtxPtr(t) {
				takesCtx = true
			}
		}
		if !takesCtx {
			return true
		}
		if callee.Pkg() != pass.Pkg { // other package: its cancelcheck covers it
			return true
		}
		if pollers[callee] || cheapCtxMethods[callee.Name()] {
			return true
		}
		heavy = callee.Name()
		return false
	})
	return heavy
}

// containsCtxCall reports whether the subtree contains any call that
// receives a *solve.Ctx (as receiver or argument) — i.e. the loop's
// work is ctx-threaded rather than pure computation.
func containsCtxCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil && lintutil.IsCtxPtr(t) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if t := pass.TypesInfo.TypeOf(arg); t != nil && lintutil.IsCtxPtr(t) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// usesCtx reports whether any expression in the body has type
// *solve.Ctx (a param, field or local — the function could poll).
func usesCtx(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if t := pass.TypesInfo.TypeOf(e); t != nil && lintutil.IsCtxPtr(t) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// nestingDepth returns the maximum loop nesting depth inside body
// (a body directly containing a loop has depth ≥1).
func nestingDepth(body *ast.BlockStmt) int {
	max := 0
	var walk func(n ast.Node, d int)
	walk = func(n ast.Node, d int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch l := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				if m != n {
					if d+1 > max {
						max = d + 1
					}
					walk(l.Body, d+1)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					if d+1 > max {
						max = d + 1
					}
					walk(l.Body, d+1)
					return false
				}
			}
			return true
		})
	}
	walk(body, 0)
	return max
}
