package cancelcheck_test

import (
	"testing"

	"repro/internal/lint/cancelcheck"
	"repro/internal/lint/linttest"
)

func TestCancelCheck(t *testing.T) {
	linttest.Run(t, cancelcheck.Analyzer, "repro/internal/srepair")
}
