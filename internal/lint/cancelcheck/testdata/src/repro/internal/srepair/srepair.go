package srepair

import "repro/internal/solve"

// heavyWork does per-block work and never polls.
func heavyWork(c *solve.Ctx, b int) int {
	return b * c.Workers()
}

// pollingWork polls before working: calling it counts as a poll.
func pollingWork(c *solve.Ctx, b int) (int, error) {
	if err := c.Err(); err != nil {
		return 0, err
	}
	return b, nil
}

// BadDispatch hands the ctx to heavy work every iteration and never
// polls anywhere beneath the loop.
func BadDispatch(c *solve.Ctx, blocks []int) int {
	total := 0
	for _, b := range blocks { // want `never polls Ctx.Err`
		total += heavyWork(c, b)
	}
	return total
}

// GoodDispatchInline polls in the loop body.
func GoodDispatchInline(c *solve.Ctx, blocks []int) (int, error) {
	total := 0
	for _, b := range blocks {
		if err := c.Err(); err != nil {
			return 0, err
		}
		total += heavyWork(c, b)
	}
	return total, nil
}

// GoodDispatchCallee delegates to a callee that polls.
func GoodDispatchCallee(c *solve.Ctx, blocks []int) (int, error) {
	total := 0
	for _, b := range blocks {
		n, err := pollingWork(c, b)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// GoodBlocks fans out through ForEachBlock, which polls per dispatch.
func GoodBlocks(c *solve.Ctx, nb int) error {
	for round := 0; round < 3; round++ {
		if err := c.ForEachBlock(nb, func(wc *solve.Ctx, b int) error { return nil }); err != nil {
			return err
		}
	}
	return nil
}

// BadPhases is the JV shape: a ctx in hand, three levels of pure
// scanning, and no poll on the outermost phase loop.
func BadPhases(c *solve.Ctx, n int) int {
	acc := 0
	for i := 0; i < n; i++ { // want `deeply nested solve loop never polls Ctx.Err`
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				acc += i * j * k
			}
		}
	}
	return acc
}

// GoodPhases carries the every-32-phases check on the outer loop.
func GoodPhases(c *solve.Ctx, n int) (int, error) {
	acc := 0
	for i := 0; i < n; i++ {
		if i%32 == 31 {
			if err := c.Err(); err != nil {
				return 0, err
			}
		}
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				acc += i * j * k
			}
		}
	}
	return acc, nil
}

// ShallowScan nests only two deep: below the JV threshold, no finding.
func ShallowScan(c *solve.Ctx, rows [][]int) int {
	acc := 0
	for _, r := range rows {
		for _, x := range r {
			acc += x
		}
	}
	return acc
}
