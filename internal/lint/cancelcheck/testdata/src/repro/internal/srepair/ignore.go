package srepair

import "repro/internal/solve"

// PinnedScan is pinned: the scan is bounded by the 64-code block cap
// and finishes in microseconds, so polling would be pure overhead.
func PinnedScan(c *solve.Ctx, rows [][]int) int {
	acc := 0
	//lint:ignore fdlint/cancelcheck bounded 64x64 scan finishes in microseconds
	for _, r := range rows {
		for _, x := range r {
			for _, y := range r {
				acc += x * y
			}
		}
	}
	return acc
}
