package lint_test

import (
	"path/filepath"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint"
	"repro/internal/lint/driver"
	"repro/internal/lint/scopeentry"
)

// TestRepoSweepClean runs the full fdlint suite over the repository and
// requires zero findings — the in-test mirror of the CI `fdlint ./...`
// gate, so a reintroduced violation fails `go test` even before CI.
func TestRepoSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repository")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := driver.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := driver.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
}

// TestSRepairEntryPointsBeginSolve pins a fixed finding: the first
// repo sweep flagged srepair.ExactCtx and srepair.Approx2Ctx for
// skipping BeginSolve, so a caller's previous solve's size hints leaked
// into the cover search (the PR 5 sticky-hints shape). Both now begin a
// fresh scope; this test keeps the package scopeentry-clean.
func TestSRepairEntryPointsBeginSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks part of the repository")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := driver.Load(root, []string{"./internal/srepair"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := driver.Run(pkgs, []*analysis.Analyzer{scopeentry.Analyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
}
