// Package arenapair checks, flow-sensitively, that scratch acquired
// from the solve arena is returned to it on every path. The arena
// contract (solve.Ctx): every Int32s / Int32Slices / Float64s /
// GetScratch must reach a matching PutInt32s / PutInt32Slices /
// PutFloat64s / PutScratch — otherwise the pooled buffer is lost and
// the >99.9% arena hit rate decays into steady-state allocation.
//
// The check walks the function's control-flow graph (go/cfg) from each
// acquire site. An obligation is discharged by any ownership-affecting
// use of the acquired value: the matching Put, handing the value to
// another function, storing it into a field, composite literal or
// return value (ownership transfer — e.g. a codeIndex keeping its
// dense scratch until release()), or rebinding. Element reads/writes,
// range, len/cap/clear/copy and comparisons are neutral: a path from
// the acquire to a return along which the value is only used neutrally
// means the buffer leaks — the classic miss is an early error return
// between Get and Put. A defer whose body releases the value covers
// every path.
package arenapair

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "arenapair",
	Doc:      "arena Get/Put must pair on all control-flow paths, including error returns",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

// pairs maps acquire method name (on *solve.Ctx) to its release.
var pairs = map[string]string{
	"Int32s":      "PutInt32s",
	"Int32Slices": "PutInt32Slices",
	"Float64s":    "PutFloat64s",
	"GetScratch":  "PutScratch",
}

func run(pass *analysis.Pass) (any, error) {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body, cfgs.FuncDecl(fn))
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body, cfgs.FuncLit(fn))
			}
			return true
		})
	}
	return nil, nil
}

// acquire is one arena Get call and the state needed to track it.
type acquire struct {
	call    *ast.CallExpr
	method  string       // Int32s, GetScratch, ...
	put     string       // matching release method
	v       *types.Var   // variable bound to the result; nil if unused/discarded
	recv    types.Object // the Ctx variable the acquire was called on, if an identifier
	keyed   bool         // GetScratch/PutScratch: key-typed pairing
	keyType types.Type   // type of the GetScratch key argument
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, g *cfg.CFG) {
	if g == nil {
		return
	}
	acquires := findAcquires(pass, body)
	for _, ac := range acquires {
		if deferCovers(pass, body, ac) {
			continue
		}
		if leaks(pass, g, ac) {
			what := "c." + ac.method
			pass.Reportf(ac.call.Pos(),
				"arena scratch from %s may leak: some path to return neither calls %s nor hands the buffer off — release it on early returns or use a defer",
				what, ac.put)
		}
	}
}

// findAcquires locates arena Get calls in body, skipping nested
// function literals (they have their own CFGs and defer scopes).
func findAcquires(pass *analysis.Pass, body *ast.BlockStmt) []*acquire {
	var out []*acquire
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false // nested literals have their own CFG and defers
			}
			stack = append(stack, m)
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, recvOK := arenaMethod(pass, call)
			put, isGet := pairs[method]
			if !recvOK || !isGet {
				return true
			}
			ac := &acquire{call: call, method: method, put: put, keyed: method == "GetScratch"}
			if ac.keyed && len(call.Args) > 0 {
				ac.keyType = pass.TypesInfo.TypeOf(call.Args[0])
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				ac.recv = lintutil.ObjOf(pass.TypesInfo, sel.X)
			}
			ac.v = boundVar(pass, stack)
			if ac.v == nil && transferredAtBirth(stack) {
				return true // result handed off inside the acquiring expression
			}
			out = append(out, ac)
			return true
		})
	}
	walk(body)
	return out
}

// transferredAtBirth reports whether an unbound acquire's result is
// consumed by the enclosing expression (return value, call argument,
// composite literal ...), which transfers ownership immediately. A bare
// expression statement or an assignment that bound no variable (e.g.
// `_ = c.Int32s(n)`) discards the buffer and stays tracked.
func transferredAtBirth(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ParenExpr, *ast.TypeAssertExpr:
			continue
		case *ast.ExprStmt, *ast.AssignStmt, *ast.ValueSpec:
			return false
		default:
			return true
		}
	}
	return false
}

// arenaMethod returns the method name if call is a method on a
// *solve.Ctx receiver.
func arenaMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil || !lintutil.IsCtxPtr(t) {
		return "", false
	}
	return sel.Sel.Name, true
}

// boundVar walks the enclosing-node stack outward from an acquire call
// to the variable its result is bound to: `s := c.Int32s(n)` or
// `scr, _ := c.GetScratch(k).(*T)`. Intervening parens and type
// assertions are looked through; anything else (the call used as an
// argument, a bare expression statement) yields nil.
func boundVar(pass *analysis.Pass, stack []ast.Node) *types.Var {
	child := ast.Node(stack[len(stack)-1])
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.TypeAssertExpr:
			child = p
			continue
		case *ast.AssignStmt:
			for j, rhs := range p.Rhs {
				if ast.Node(rhs) == child && j < len(p.Lhs) {
					if id, ok := p.Lhs[j].(*ast.Ident); ok {
						if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
							return v
						}
						if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
							return v
						}
					}
				}
			}
			return nil
		case *ast.ValueSpec:
			for j, rhs := range p.Values {
				if ast.Node(rhs) == child && j < len(p.Names) {
					if v, ok := pass.TypesInfo.Defs[p.Names[j]].(*types.Var); ok {
						return v
					}
				}
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// deferCovers reports whether some defer in the function releases the
// acquire: its subtree contains the matching Put (for keyed acquires,
// with an identical key type) or any ownership-affecting use of the
// bound variable.
func deferCovers(pass *analysis.Pass, body *ast.BlockStmt, ac *acquire) bool {
	covered := false
	ast.Inspect(body, func(n ast.Node) bool {
		if covered {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if subtreeDischarges(pass, d, ac) {
			covered = true
		}
		return false
	})
	return covered
}

// leaks walks the CFG from the acquire and reports whether a path
// reaches an exit without discharging the obligation.
func leaks(pass *analysis.Pass, g *cfg.CFG, ac *acquire) bool {
	startBlock, startIdx := locate(g, ac.call)
	if startBlock == nil {
		return false // not reachable in the CFG (dead code)
	}
	// Scan the remainder of the acquire's own block first.
	for i := startIdx + 1; i < len(startBlock.Nodes); i++ {
		if subtreeDischarges(pass, startBlock.Nodes[i], ac) {
			return false
		}
	}
	if len(startBlock.Succs) == 0 {
		return !panicExit(pass, startBlock)
	}
	seen := map[*cfg.Block]bool{startBlock: true}
	var dfs func(b *cfg.Block) bool
	dfs = func(b *cfg.Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if subtreeDischarges(pass, n, ac) {
				return false
			}
		}
		if len(b.Succs) == 0 {
			// A panic exit unwinds the whole solve (the arena shard is
			// discarded with it), so only plain returns count as leaks.
			return !panicExit(pass, b)
		}
		for _, s := range succsWithObligation(pass, b, ac) {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range succsWithObligation(pass, startBlock, ac) {
		if dfs(s) {
			return true
		}
	}
	return false
}

// succsWithObligation narrows a conditional block's successors when its
// condition proves the scratch was never acquired: a branch on which
// the bound value — or the Ctx the acquire was called through — is nil
// owes no Put (GetScratch returns nil on a pool miss, and the arena
// methods degrade to no-ops on a nil Ctx).
func succsWithObligation(pass *analysis.Pass, b *cfg.Block, ac *acquire) []*cfg.Block {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return b.Succs
	}
	cond, ok := b.Nodes[len(b.Nodes)-1].(*ast.BinaryExpr)
	if !ok || (cond.Op != token.EQL && cond.Op != token.NEQ) {
		return b.Succs
	}
	var x ast.Expr
	switch {
	case isNilExpr(pass, cond.X):
		x = cond.Y
	case isNilExpr(pass, cond.Y):
		x = cond.X
	default:
		return b.Succs
	}
	obj := lintutil.ObjOf(pass.TypesInfo, x)
	if obj == nil || (obj != types.Object(ac.v) && obj != ac.recv) {
		return b.Succs
	}
	if cond.Op == token.EQL {
		return b.Succs[1:2] // x == nil: only the false branch still owes
	}
	return b.Succs[0:1] // x != nil: only the true branch still owes
}

func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// panicExit reports whether the exit block ends by panicking.
func panicExit(pass *analysis.Pass, b *cfg.Block) bool {
	for _, n := range b.Nodes {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Builtin); ok && fn.Name() == "panic" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// locate finds the CFG node containing the acquire call.
func locate(g *cfg.CFG, call *ast.CallExpr) (*cfg.Block, int) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= call.Pos() && call.End() <= n.End() {
				return b, i
			}
		}
	}
	return nil, 0
}

// subtreeDischarges reports whether node n contains an
// ownership-affecting use of the acquire: the matching Put, a
// key-type-matching PutScratch for variable-less keyed acquires, or a
// non-neutral use of the bound variable.
func subtreeDischarges(pass *analysis.Pass, n ast.Node, ac *acquire) bool {
	found := false
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if found {
			return false
		}
		stack = append(stack, m)
		// Key-typed PutScratch matches even without a tracked variable.
		if call, ok := m.(*ast.CallExpr); ok && ac.keyed && ac.keyType != nil {
			if name, recvOK := arenaMethod(pass, call); recvOK && name == "PutScratch" && len(call.Args) > 0 {
				kt := pass.TypesInfo.TypeOf(call.Args[0])
				if kt != nil && types.Identical(kt, ac.keyType) {
					found = true
					return false
				}
			}
		}
		if ac.v == nil {
			return true
		}
		id, ok := m.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != ac.v {
			return true
		}
		if !neutralUse(pass, stack, id) {
			found = true
			return false
		}
		return true
	})
	return found
}

// neutralUse classifies a use of the tracked variable: true when the
// use neither releases nor transfers ownership (element access, range,
// len/cap/clear/copy/min/max, comparisons, rebinding on the LHS).
func neutralUse(pass *analysis.Pass, stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 2 {
		// The identifier is the whole CFG node (the cfg package hoists
		// range X and condition expressions out of their statements): a
		// bare mention transfers nothing.
		return true
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.IndexExpr:
		return p.X == ast.Expr(id)
	case *ast.RangeStmt:
		return p.X == ast.Expr(id)
	case *ast.SelectorExpr:
		// scr.field reads/writes on a keyed scratch struct are how the
		// scratch is used; they transfer nothing.
		return p.X == ast.Expr(id)
	case *ast.BinaryExpr:
		return true // comparisons (scr == nil) and arithmetic on elements
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return true // rebinding: the old buffer's obligation is judged conservatively neutral
			}
		}
		return false
	case *ast.CallExpr:
		if fn, ok := typeutil.Callee(pass.TypesInfo, p).(*types.Builtin); ok {
			switch fn.Name() {
			case "len", "cap", "clear", "copy", "min", "max":
				return true
			}
		}
		return false // any other call takes the buffer: release or hand-off
	}
	return false
}
