// Package solve is a miniature of the real repro/internal/solve: just
// enough surface (Ctx, Stats) for the fdlint fixtures to typecheck at
// the real import path.
package solve

import "sync/atomic"

type Ctx struct{ stats Stats }

func (c *Ctx) BeginSolve() *Ctx                                   { return c }
func (c *Ctx) Err() error                                         { return nil }
func (c *Ctx) Workers() int                                       { return 1 }
func (c *Ctx) Stats() *Stats                                      { return &c.stats }
func (c *Ctx) Scoped() *Ctx                                       { return c }
func (c *Ctx) SetHints(rows, codes int)                           {}
func (c *Ctx) ForEachBlock(n int, fn func(*Ctx, int) error) error { return nil }

func (c *Ctx) GetScratch(key any) any      { return nil }
func (c *Ctx) PutScratch(key, v any)       {}
func (c *Ctx) Int32s(n int) []int32        { return make([]int32, n) }
func (c *Ctx) PutInt32s(s []int32)         {}
func (c *Ctx) Int32Slices(n int) [][]int32 { return make([][]int32, n) }
func (c *Ctx) PutInt32Slices(s [][]int32)  {}
func (c *Ctx) Float64s(n int) []float64    { return make([]float64, n) }
func (c *Ctx) PutFloat64s(s []float64)     {}

// Stats mirrors the real all-atomic counter sink.
type Stats struct {
	Nodes  atomic.Int64
	Steals atomic.Int64
}

func (s *Stats) Node()              {}
func (s *Stats) Snapshot() Snapshot { return Snapshot{} }
func (s *Stats) Reset()             {}

type Snapshot struct{ Nodes, Steals int64 }
