package arenauser

import "repro/internal/solve"

// PinnedProbe deliberately drops its buffer: it measures arena
// pressure, and the pinning directive records why that is sound.
func PinnedProbe(c *solve.Ctx, n int) int {
	//lint:ignore fdlint/arenapair probe measures arena pressure; dropping the buffer is the point
	buf := c.Int32s(n)
	return len(buf)
}
