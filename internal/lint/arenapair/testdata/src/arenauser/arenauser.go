package arenauser

import (
	"errors"

	"repro/internal/solve"
)

// LeakOnError forgets the buffer on the early error return — the
// classic miss the analyzer exists for.
func LeakOnError(c *solve.Ctx, n int) ([]int32, error) {
	buf := c.Int32s(n) // want `arena scratch from c.Int32s may leak`
	for i := range buf {
		buf[i] = int32(i)
	}
	if n > 1024 {
		return nil, errors.New("block too large")
	}
	out := make([]int32, n)
	copy(out, buf)
	c.PutInt32s(buf)
	return out, nil
}

// DeferRelease covers every path with a defer.
func DeferRelease(c *solve.Ctx, n int) (int32, error) {
	buf := c.Int32s(n)
	defer c.PutInt32s(buf)
	if n == 0 {
		return 0, errors.New("empty")
	}
	var acc int32
	for i := range buf {
		acc += buf[i]
	}
	return acc, nil
}

// ReleaseBothPaths puts explicitly on the error path too.
func ReleaseBothPaths(c *solve.Ctx, n int) ([]float64, error) {
	buf := c.Float64s(n)
	if n > 1<<20 {
		c.PutFloat64s(buf)
		return nil, errors.New("too large")
	}
	out := make([]float64, n)
	copy(out, buf)
	c.PutFloat64s(buf)
	return out, nil
}

// Discard drops the buffer outright.
func Discard(c *solve.Ctx, n int) {
	_ = c.Int32s(n) // want `arena scratch from c.Int32s may leak`
}

// index takes ownership of its dense scratch until release() — the
// acquire inside the composite literal is a hand-off, not a leak.
type index struct {
	codes []int32
	c     *solve.Ctx
}

func NewIndex(c *solve.Ctx, n int) *index {
	return &index{codes: c.Int32s(n), c: c}
}

func (ix *index) release() {
	ix.c.PutInt32s(ix.codes)
	ix.codes = nil
}

type scratchKey struct{}

type scratch struct {
	rows []int32
}

// KeyedLeak drops the keyed scratch on the error path.
func KeyedLeak(c *solve.Ctx, n int) error {
	scr, _ := c.GetScratch(scratchKey{}).(*scratch) // want `arena scratch from c.GetScratch may leak`
	if scr == nil {
		scr = &scratch{}
	}
	if n < 0 {
		return errors.New("negative")
	}
	c.PutScratch(scratchKey{}, scr)
	return nil
}

// PanicPath only loses its buffer by panicking, which unwinds the
// whole solve and discards the arena shard with it: not a leaking
// return.
func PanicPath(c *solve.Ctx, n int) int32 {
	buf := c.Int32s(n)
	if n == 0 {
		panic("empty component")
	}
	v := buf[0]
	c.PutInt32s(buf)
	return v
}

// GetOrMake is the pool-miss idiom: a nil result means nothing was
// acquired, so the fallthrough path owes no Put; the hit path hands
// ownership to the caller.
func GetOrMake(c *solve.Ctx, n int) *scratch {
	if v := c.GetScratch(scratchKey{}); v != nil {
		return v.(*scratch)
	}
	return &scratch{rows: make([]int32, n)}
}

// NilCtxGuard acquires through a possibly nil Ctx: the c == nil path
// acquired nothing and owes nothing.
func NilCtxGuard(c *solve.Ctx, n int) []int32 {
	scr, _ := c.GetScratch(scratchKey{}).(*scratch)
	if scr == nil {
		scr = &scratch{}
	}
	scr.rows = append(scr.rows[:0], make([]int32, n)...)
	if c == nil {
		return scr.rows
	}
	c.PutScratch(scratchKey{}, scr)
	return nil
}

// KeyedDefer releases through a defer keyed by the same type.
func KeyedDefer(c *solve.Ctx, n int) error {
	scr, _ := c.GetScratch(scratchKey{}).(*scratch)
	if scr == nil {
		scr = &scratch{}
	}
	defer c.PutScratch(scratchKey{}, scr)
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}
