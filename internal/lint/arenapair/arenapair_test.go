package arenapair_test

import (
	"testing"

	"repro/internal/lint/arenapair"
	"repro/internal/lint/linttest"
)

func TestArenaPair(t *testing.T) {
	linttest.Run(t, arenapair.Analyzer, "arenauser")
}
