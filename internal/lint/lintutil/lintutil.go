// Package lintutil holds the shared vocabulary of the fdlint
// analyzers: which packages form the solve path (where determinism and
// cancellation invariants apply), and type predicates for the
// solve.Ctx / solve.Stats types the invariants revolve around.
package lintutil

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// SolvePkg is the import path of the package owning Ctx and Stats.
const SolvePkg = "repro/internal/solve"

// solvePath lists the packages whose code executes inside a solve —
// where results must be byte-identical across worker counts and runs,
// so wall clocks, unseeded randomness and map-iteration order are
// forbidden and loops must poll cancellation. The experiment/workload
// generators, the CLI and the daemons are deliberately absent: they
// sit outside the optimality contract.
var solvePath = map[string]bool{
	"repro/internal/solve":     true,
	"repro/internal/srepair":   true,
	"repro/internal/urepair":   true,
	"repro/internal/graph":     true,
	"repro/internal/table":     true,
	"repro/internal/mpd":       true,
	"repro/internal/fd":        true,
	"repro/internal/schema":    true,
	"repro/internal/reduction": true,
	"repro/internal/enumerate": true,
	"repro/internal/cfd":       true,
	"repro/internal/denial":    true,
	"repro/internal/cqa":       true,
	"repro/internal/priority":  true,
	"repro/fdrepair":           true,
}

// EntryPkgs lists the packages whose exported Ctx-taking functions are
// solve entry points and must begin a fresh scope (scopeentry).
var EntryPkgs = map[string]bool{
	"repro/internal/srepair":  true,
	"repro/internal/urepair":  true,
	"repro/internal/cfd":      true,
	"repro/internal/denial":   true,
	"repro/internal/cqa":      true,
	"repro/internal/priority": true,
}

// OnSolvePath reports whether the pass's package carries the solve-path
// determinism and cancellation invariants.
func OnSolvePath(pass *analysis.Pass) bool {
	return solvePath[pass.Pkg.Path()]
}

// IsCtxPtr reports whether t is *solve.Ctx.
func IsCtxPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(p.Elem(), SolvePkg, "Ctx")
}

// IsStats reports whether t (after pointer stripping) is solve.Stats.
func IsStats(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, SolvePkg, "Stats")
}

func isNamed(t types.Type, pkg, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

// CtxParam returns the *types.Var of fn's first *solve.Ctx parameter
// (receiver included for methods), or nil.
func CtxParam(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if r := sig.Recv(); r != nil && IsCtxPtr(r.Type()) {
		return r
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); IsCtxPtr(p.Type()) {
			return p
		}
	}
	return nil
}

// ObjOf resolves an expression to the object of its identifier, seeing
// through parens. Returns nil for anything richer than an identifier.
func ObjOf(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}
