package statsatomic_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/statsatomic"
)

func TestStatsAtomic(t *testing.T) {
	linttest.Run(t, statsatomic.Analyzer, "statsuser")
}
