// Package statsatomic enforces the access discipline of solve.Stats:
// one Stats value sinks counters from many concurrent solves, so every
// field is an atomic.Int64 and the only sound accesses outside the
// owning package are
//
//   - counting through the Stats methods (Node, Planner, Merge, ...),
//   - field.Load() and field.Add(n) on a field selector, and
//   - whole-struct reads through Snapshot().
//
// Everything else is flagged: Store/Swap/CompareAndSwap on a field
// (clobbers concurrent aggregation — zeroing goes through Reset),
// copying a field's atomic.Int64 value, taking a field's address, and
// passing or assigning a Stats by value (which go vet's copylocks also
// rejects, but this analyzer anchors the diagnostic to the invariant).
// The defining package repro/internal/solve is exempt: its methods are
// the blessed accessors.
package statsatomic

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "statsatomic",
	Doc:      "fields of solve.Stats may only be read/added through their atomic methods",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// allowedMethods are the atomic.Int64 methods callable on a Stats
// field outside the owning package.
var allowedMethods = map[string]bool{"Load": true, "Add": true}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == lintutil.SolvePkg {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.SelectorExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		sel := n.(*ast.SelectorExpr)
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if !lintutil.IsStats(selection.Recv()) {
			return true
		}
		// The only blessed shape: the field selector is immediately the
		// receiver of an allowed atomic method call, i.e. the stack is
		// ... CallExpr > SelectorExpr(method) > this SelectorExpr.
		if len(stack) >= 3 {
			if msel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && msel.X == sel {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == msel {
					if allowedMethods[msel.Sel.Name] {
						return true
					}
					pass.Reportf(sel.Pos(),
						"%s on field %s of solve.Stats outside its owning package: mutating a shared sink clobbers concurrent aggregation (zero through Reset, combine through Merge)",
						msel.Sel.Name, sel.Sel.Name)
					return true
				}
			}
		}
		pass.Reportf(sel.Pos(),
			"field %s of solve.Stats accessed non-atomically: use .Load()/.Add(n) on the field or the Stats counting methods",
			sel.Sel.Name)
		return true
	})

	// By-value Stats: copies tear the atomics. Catch value-typed
	// assignments/arguments/returns at their source: any expression of
	// type solve.Stats (not a pointer) that is a dereference or a
	// plain identifier being copied.
	ins.Preorder([]ast.Node{(*ast.StarExpr)(nil)}, func(n ast.Node) {
		star := n.(*ast.StarExpr)
		t := pass.TypesInfo.TypeOf(star)
		if t == nil {
			return
		}
		if n, ok := t.(*types.Named); ok {
			if obj := n.Obj(); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == lintutil.SolvePkg && obj.Name() == "Stats" {
				pass.Reportf(star.Pos(),
					"dereferencing a *solve.Stats copies its atomic counters non-atomically: read a consistent view with Snapshot()")
			}
		}
	})
	return nil, nil
}
