package statsuser

import "repro/internal/solve"

// Good uses only the blessed shapes: Load/Add on fields, counting
// methods, Snapshot for a consistent view.
func Good(st *solve.Stats) int64 {
	st.Nodes.Add(1)
	st.Node()
	return st.Nodes.Load() + st.Steals.Load() + st.Snapshot().Nodes
}

func StoreBad(st *solve.Stats) {
	st.Nodes.Store(0) // want `Store on field Nodes of solve.Stats`
}

func SwapBad(st *solve.Stats) int64 {
	return st.Steals.Swap(0) // want `Swap on field Steals of solve.Stats`
}

func CopyBad(st *solve.Stats) int64 {
	n := st.Nodes // want `field Nodes of solve.Stats accessed non-atomically`
	return n.Load()
}

func AddrBad(st *solve.Stats) *int64 {
	p := &st.Steals // want `field Steals of solve.Stats accessed non-atomically`
	_ = p
	return nil
}

func DerefBad(st *solve.Stats) int64 {
	snap := *st // want `dereferencing a \*solve.Stats copies its atomic counters`
	return snap.Nodes.Load()
}
