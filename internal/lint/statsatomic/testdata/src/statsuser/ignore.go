package statsuser

import "repro/internal/solve"

// Pinned exercises the raw store path under a reasoned suppression.
func Pinned(st *solve.Stats) {
	st.Steals.Store(7) //lint:ignore fdlint/statsatomic fixture exercises the raw store path
}
