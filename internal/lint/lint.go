// Package lint assembles the fdlint analyzer suite: go/analysis
// analyzers encoding the repair engine's hand-maintained invariants —
// per-solve scopes, arena Get/Put pairing, atomic stats access,
// solve-path determinism and cancellation polling — so the optimality
// contract (repairs byte-identical to the seed implementations at
// workers ∈ {1,2,4,8}) is enforced mechanically at merge time instead
// of by reviewer vigilance.
//
// See fdrepair/doc.go ("Invariants and how they are enforced") for the
// mapping from each analyzer to the invariant and the PR that
// motivated it, and cmd/fdlint/README.md for the suppression policy.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/arenapair"
	"repro/internal/lint/cancelcheck"
	"repro/internal/lint/determinism"
	"repro/internal/lint/scopeentry"
	"repro/internal/lint/statsatomic"
)

// Analyzers returns the full fdlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		scopeentry.Analyzer,
		arenapair.Analyzer,
		statsatomic.Analyzer,
		determinism.Analyzer,
		cancelcheck.Analyzer,
	}
}
