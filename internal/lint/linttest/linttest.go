// Package linttest is the golden-diagnostic harness for the fdlint
// analyzers (the role analysistest plays upstream, reimplemented here
// because the toolchain does not vendor it or go/packages).
//
// Test packages live under the analyzer's testdata/src/<importpath>/
// in GOPATH-style layout; import paths that resolve under testdata
// shadow real ones, so a fixture can reimplement repro/internal/solve
// with a miniature Ctx/Stats and defect files can sit in a fake
// repro/internal/srepair. Remaining imports resolve to the real
// standard library through the compiler's export data (offline, via
// the local build cache).
//
// Expectations are `// want` comments carrying one or more quoted
// regular expressions; every diagnostic on that comment's line must
// match one, and every expectation must be consumed:
//
//	for k := range m { // want `map iteration order`
//
// Suppression directives are honored before matching, so fixtures can
// assert both that a reasoned //lint:ignore silences a finding and
// that a reasonless one is itself reported.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/driver"
)

// Run loads each test package from testdata/src (relative to the
// caller's directory) and checks the analyzer's diagnostics against
// the `// want` expectations in its files.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root)
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := driver.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		match(t, pkg, diags)
	}
}

// ---- expectation matching ----

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func match(t *testing.T, pkg *driver.Package, diags []driver.Diagnostic) {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimLeft(text, " \t")
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, raw := range quotedStrings(strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, line, raw, err)
					}
					expects = append(expects, &expectation{file: name, line: line, re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s (fdlint/%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("no diagnostic at %s:%d matching %q",
				filepath.Base(e.file), e.line, e.raw)
		}
	}
}

// quotedStrings parses a sequence of Go-quoted strings ("..." or
// `...`) separated by spaces.
func quotedStrings(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" || (s[0] != '"' && s[0] != '`') {
			return out
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return out
		}
		u, err := strconv.Unquote(q)
		if err != nil {
			return out
		}
		out = append(out, u)
		s = s[len(q):]
	}
}

// ---- testdata package loading ----

type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*driver.Package
	std  types.Importer
}

func newLoader(root string) *loader {
	l := &loader{root: root, fset: token.NewFileSet(), pkgs: make(map[string]*driver.Package)}
	l.std = stdImporter(l.fset)
	return l
}

// Import implements types.Importer: testdata packages shadow real
// import paths; everything else is standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); dirExists(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*driver.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool { return names[i] < names[j] })
	sort.Strings(names)

	info := driver.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &driver.Package{
		PkgPath: path,
		Name:    tpkg.Name(),
		Dir:     dir,
		GoFiles: names,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[path] = p
	return p, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// ---- standard library via export data ----

var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

// stdImporter returns a gc-importer over `go list -export std` output,
// so testdata fixtures can import real standard-library packages
// without network access or source re-typechecking.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		stdOnce.Do(func() {
			stdExports = make(map[string]string)
			out, err := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", "std").Output()
			if err != nil {
				stdErr = fmt.Errorf("go list -export std: %v", err)
				return
			}
			dec := json.NewDecoder(bytes.NewReader(out))
			for dec.More() {
				var m struct{ ImportPath, Export string }
				if err := dec.Decode(&m); err != nil {
					stdErr = err
					return
				}
				if m.Export != "" {
					stdExports[m.ImportPath] = m.Export
				}
			}
		})
		if stdErr != nil {
			return nil, stdErr
		}
		f, ok := stdExports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in std?)", path)
		}
		return os.Open(f)
	})
}
