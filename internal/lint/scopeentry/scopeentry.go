// Package scopeentry enforces the per-solve scope discipline: every
// exported solve entry point — an exported function with a *solve.Ctx
// parameter in one of the engine packages (srepair, urepair, cfd,
// denial, cqa, priority) — must begin a fresh scope with
// Ctx.BeginSolve before doing work, directly or by delegating its Ctx
// to a same-package function that does.
//
// The invariant exists because size hints recorded on a scope pre-size
// scratch arenas: an entry point that skips BeginSolve inherits the
// hints of whatever solve its caller ran last, so a 100-row solve
// after a 100k-row one allocates at the big table's shape (the PR 5
// sticky-hints bug, ~456× amplification). Entry points that are
// deliberately spliced into a caller-managed scope (session dirty-block
// re-solves) carry a reasoned //lint:ignore.
package scopeentry

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "scopeentry",
	Doc:  "exported solve entry points must call Ctx.BeginSolve (sticky-hints protection)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.EntryPkgs[pass.Pkg.Path()] {
		return nil, nil
	}

	// One node per function that receives a Ctx: does it call
	// BeginSolve on its own Ctx, and to which same-package functions
	// does it forward that Ctx?
	type funcInfo struct {
		decl     *ast.FuncDecl
		begins   bool
		forwards []*types.Func
	}
	infos := make(map[*types.Func]*funcInfo)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ctx := lintutil.CtxParam(fn)
			if ctx == nil {
				continue
			}
			fi := &funcInfo{decl: decl}
			infos[fn] = fi
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := typeutil.Callee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if isBeginSolve(callee) && receiverIsVar(pass.TypesInfo, call, ctx) {
					fi.begins = true
					return true
				}
				// Forwarding: the Ctx parameter passed as an argument to
				// a same-package function (delegation to a shared
				// implementation that begins the scope itself).
				if cf, ok := callee.(*types.Func); ok && cf.Pkg() == pass.Pkg {
					for _, arg := range call.Args {
						if lintutil.ObjOf(pass.TypesInfo, arg) == ctx {
							fi.forwards = append(fi.forwards, cf)
							break
						}
					}
				}
				return true
			})
		}
	}

	// Propagate "begins a solve" backwards over forwarding edges to a
	// fixed point: a function that hands its Ctx to a beginning
	// delegate is itself covered.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.begins {
				continue
			}
			for _, callee := range fi.forwards {
				if ci, ok := infos[callee]; ok && ci.begins {
					fi.begins = true
					changed = true
					break
				}
			}
		}
	}

	for fn, fi := range infos {
		if fi.begins || !fn.Exported() || fn.Type().(*types.Signature).Recv() != nil {
			continue
		}
		pass.Reportf(fi.decl.Name.Pos(),
			"exported solve entry point %s takes a *solve.Ctx but never calls BeginSolve (directly or via a same-package delegate): hints from the caller's previous solve would leak into this one",
			fn.Name())
	}
	return nil, nil
}

func isBeginSolve(callee types.Object) bool {
	fn, ok := callee.(*types.Func)
	if !ok || fn.Name() != "BeginSolve" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && lintutil.IsCtxPtr(sig.Recv().Type())
}

// receiverIsVar reports whether the method call's receiver expression
// resolves to v (the tracked Ctx parameter) — or to a local rebinding
// of it, which we accept: any *solve.Ctx-typed receiver counts, since
// rebinding chains (wc := c.Scoped(...)) still begin a scope on the
// request's context family.
func receiverIsVar(info *types.Info, call *ast.CallExpr, v *types.Var) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if lintutil.ObjOf(info, sel.X) == v {
		return true
	}
	t := info.TypeOf(sel.X)
	return t != nil && lintutil.IsCtxPtr(t)
}
