package srepair

import "repro/internal/solve"

// BadEntry is an exported entry point that skips BeginSolve: it would
// inherit the caller's previous solve's size hints.
func BadEntry(c *solve.Ctx, rows int) int { // want `BadEntry takes a \*solve.Ctx but never calls BeginSolve`
	return rows * c.Workers()
}

// GoodEntry begins its own scope.
func GoodEntry(c *solve.Ctx, rows int) int {
	c = c.BeginSolve()
	c.SetHints(rows, rows)
	return rows
}

// DelegatedEntry hands its Ctx to a same-package delegate that begins
// the scope, which covers the entry point.
func DelegatedEntry(c *solve.Ctx, rows int) int {
	return impl(c, rows)
}

func impl(c *solve.Ctx, rows int) int {
	c = c.BeginSolve()
	return rows
}

// helper is unexported: not an entry point, no finding.
func helper(c *solve.Ctx) int { return c.Workers() }

type engine struct{}

// Solve is a method: methods are not entry points.
func (e *engine) Solve(c *solve.Ctx) int { return c.Workers() + helper(c) }
