package srepair

import "repro/internal/solve"

// SplicedEntry is deliberately spliced into a caller-managed scope.
//
//lint:ignore fdlint/scopeentry dirty-block re-solve runs inside the session's scope by design
func SplicedEntry(c *solve.Ctx, rows int) int {
	return rows * c.Workers()
}
