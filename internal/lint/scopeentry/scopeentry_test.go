package scopeentry_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/scopeentry"
)

func TestScopeEntry(t *testing.T) {
	linttest.Run(t, scopeentry.Analyzer, "repro/internal/srepair")
}
