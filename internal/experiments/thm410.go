package experiments

import (
	"math/rand"

	"repro/internal/reduction"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// RunThm410 regenerates the quantitative content of Theorem 4.10's
// reduction: on the ∆A↔B→C gadget table of a graph G,
//
//   - a vertex cover of size k yields a consistent update of distance
//     exactly 2|E| + k (upper bound, verified for the minimum cover on
//     random bounded-degree graphs), and
//   - on the single-edge graph the brute-force optimal U-repair attains
//     exactly 2|E| + vc(G) (full identity on the exhaustively solvable
//     size).
//
// It also shows the companion S-repair identity |E| + vc(G) of the
// ∆A→B→C subset gadget (our verified substitution, DESIGN.md §4).
func RunThm410(seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	r := newReport("E6", "Theorem 4.10 — vertex-cover gadgets")
	r.rowf("graph\t|V|\t|E|\tvc(G)\tclaim\tmeasured\tok")

	// Full identity on the single edge.
	single := &workload.SimpleGraph{N: 2, Edges: [][2]int{{0, 1}}}
	dsU, tabU := reduction.VCUpdateGadget(single)
	_, cost, err := urepair.Exact(dsU, tabU)
	if err != nil {
		return "", err
	}
	r.rowf("K2 (exact U-repair)\t2\t1\t1\t2|E|+vc = 3\t%g\t%s", cost, boolMark(table.WeightEq(cost, 3)))

	// Upper bound via minimum covers on random bounded-degree graphs.
	for i := 0; i < 5; i++ {
		g := workload.RandomBoundedDegree(5+rng.Intn(5), 3, 80, rng)
		vc, err := g.MinVertexCoverSize()
		if err != nil {
			return "", err
		}
		ds, tab := reduction.VCUpdateGadget(g)
		cover, err := minCoverSet(g)
		if err != nil {
			return "", err
		}
		u, err := reduction.VCUpdateFromCover(g, tab, cover)
		if err != nil {
			return "", err
		}
		want := float64(2*len(g.Edges) + vc)
		got := table.DistUpd(u, tab)
		ok := u.Satisfies(ds) && table.WeightEq(got, want)
		r.rowf("G%d (cover→update)\t%d\t%d\t%d\t2|E|+vc = %g\t%g\t%s",
			i, g.N, len(g.Edges), vc, want, got, boolMark(ok))
	}

	// S-repair companion gadget: deletions = |E| + vc(G).
	for i := 0; i < 5; i++ {
		g := workload.RandomGNP(4+rng.Intn(3), 0.5, rng)
		vc, err := g.MinVertexCoverSize()
		if err != nil {
			return "", err
		}
		ds, tab := reduction.VCSubsetGadget(g)
		rep, err := exactSubsetRepair(ds, tab)
		if err != nil {
			return "", err
		}
		want := float64(len(g.Edges) + vc)
		got := table.DistSub(rep, tab)
		r.rowf("H%d (subset gadget)\t%d\t%d\t%d\t|E|+vc = %g\t%g\t%s",
			i, g.N, len(g.Edges), vc, want, got, boolMark(table.WeightEq(got, want)))
	}
	r.notef("paper: G has a vertex cover of size k iff the gadget has a consistent update of distance 2|E|+k; the subset gadget is our documented substitution for the ∆A→B→C hardness source.")
	return r.String(), nil
}

// minCoverSet returns a minimum vertex cover of the simple graph as a
// set, reusing the exact solver.
func minCoverSet(g *workload.SimpleGraph) (map[int]bool, error) {
	weights := make([]float64, g.N)
	for i := range weights {
		weights[i] = 1
	}
	wg, err := newUnitGraph(weights, g.Edges)
	if err != nil {
		return nil, err
	}
	return wg.ExactMinVertexCover()
}
