package experiments

import (
	"math/rand"
	"time"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/srepair"
	"repro/internal/workload"
)

// RunScaling regenerates the quantitative content of Theorem 3.2:
// OptSRepair runs in polynomial time, demonstrated by near-linear
// scaling on a chain FD set and a marriage FD set as |T| grows, in
// contrast with the exponential exact baseline, whose growth explodes
// on conflict-dense instances.
func RunScaling() (string, error) {
	r := newReport("E9", "Theorem 3.2 — OptSRepair terminates in polynomial time")
	r.rowf("FD set\t|T|\tOptSRepair time\ttime / |T| (µs)")
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []struct {
		name  string
		specs []string
	}{
		{"chain {A→B, AB→C}", []string{"A -> B", "A B -> C"}},
		{"marriage ∆A↔B→C", []string{"A -> B", "B -> A", "B -> C"}},
	}
	for _, s := range sets {
		ds := fd.MustParseSet(sc, s.specs...)
		for _, n := range []int{200, 800, 3200, 12800} {
			tab := workload.RandomTable(sc, n, n/10+2, rand.New(rand.NewSource(int64(n))))
			t0 := time.Now()
			if _, err := srepair.OptSRepair(ds, tab); err != nil {
				return "", err
			}
			dur := time.Since(t0)
			r.rowf("%s\t%d\t%v\t%.2f", s.name, n, dur, float64(dur.Microseconds())/float64(n))
		}
	}
	r.notef("paper: OptSRepair is polynomial in k, |Δ| and |T| even under combined complexity; a flat-ish time/|T| column is the observable signature.")
	return r.String(), nil
}
