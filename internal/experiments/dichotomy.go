package experiments

import (
	"strings"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/srepair"
	"repro/internal/workload"
)

// RunEx35 regenerates Example 3.5 and the catalogue classifications:
// the simplification trace of each named FD set of the paper and its
// dichotomy side, compared with the paper's claims.
func RunEx35() (string, error) {
	r := newReport("E3", "Example 3.5 / Algorithm 2 — dichotomy traces for the paper's FD sets")
	r.rowf("FD set\tsource\ttrace\tpoly (ours)\tpoly (paper)\tok")
	for _, entry := range workload.Catalogue() {
		steps, success := srepair.Trace(entry.Set)
		var parts []string
		for _, st := range steps {
			parts = append(parts, st.Describe())
		}
		trace := strings.Join(parts, " ⇛ ")
		if success {
			trace += " ⇛ {}"
		} else if trace == "" {
			trace = "(stuck immediately)"
		} else {
			trace += " ⇛ STUCK"
		}
		ok := success == entry.SRepairPoly
		r.rowf("%s\t%s\t%s\t%v\t%v\t%s", entry.Name, entry.Source, trace, success, entry.SRepairPoly, boolMark(ok))
	}
	r.notef("paper: OSRSucceeds(Δ) ⇔ optimal S-repairs are polynomial-time (Theorem 3.4).")
	return r.String(), nil
}

// RunFig2 regenerates Figure 2 / Example 3.8: each ∆i of the example
// lands in class i, and each class names its Table-1 base set.
func RunFig2() (string, error) {
	sc := schema.MustNew("R", "A", "B", "C", "D", "E")
	r := newReport("E4", "Figure 2 / Example 3.8 — classes of non-simplifiable FD sets")
	r.rowf("FD set\tpaper class\tmeasured class\tbase hard set\tok")
	cases := []struct {
		name  string
		specs []string
		want  fd.Class
	}{
		{"∆1 = {A→B, C→D}", []string{"A -> B", "C -> D"}, fd.Class1},
		{"∆2 = {A→CD, B→CE}", []string{"A -> C D", "B -> C E"}, fd.Class2},
		{"∆3 = {A→BC, B→D}", []string{"A -> B C", "B -> D"}, fd.Class3},
		{"∆4 = {AB→C, AC→B, BC→A}", []string{"A B -> C", "A C -> B", "B C -> A"}, fd.Class4},
		{"∆5 = {AB→C, C→AD}", []string{"A B -> C", "C -> A D"}, fd.Class5},
	}
	for _, c := range cases {
		set := fd.MustParseSet(sc, c.specs...)
		cl, err := set.ClassifyNonSimplifiable()
		if err != nil {
			return "", err
		}
		ok := cl.Class == c.want
		r.rowf("%s\tclass %d\t%v\t%s\t%s", c.name, int(c.want), cl.Class, cl.Class.BaseSet(), boolMark(ok))
	}
	r.notef("paper: every non-simplifiable FD set falls into one of the five classes, each admitting a fact-wise reduction from a Table-1 set (Lemma A.22); the reductions themselves are property-tested in internal/reduction.")
	return r.String(), nil
}
