package experiments

import (
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// RunFig1 regenerates Figure 1 and Example 2.3: the distances of the
// consistent subsets S1–S3 and updates U1–U3 of the running example,
// and the optimal S- and U-repair costs.
func RunFig1() (string, error) {
	sc, ds, t := workload.Office()
	r := newReport("E1", "Figure 1 / Example 2.3 — running example")

	r.rowf("object\tpaper dist\tmeasured\tconsistent\tok")
	subsets := []struct {
		name string
		ids  []int
		want float64
	}{
		{"S1", []int{2, 3, 4}, 2},
		{"S2", []int{1, 4}, 2},
		{"S3", []int{3, 4}, 3},
	}
	for _, s := range subsets {
		sub := t.MustSubsetByIDs(s.ids)
		got := table.DistSub(sub, t)
		ok := table.WeightEq(got, s.want) && sub.Satisfies(ds)
		r.rowf("%s\t%g\t%g\t%v\t%s", s.name, s.want, got, sub.Satisfies(ds), boolMark(ok))
	}

	facility, _ := sc.AttrIndex("facility")
	floor, _ := sc.AttrIndex("floor")
	city, _ := sc.AttrIndex("city")
	u1 := t.Clone()
	u1.SetCellInPlace(1, facility, "F01")
	u2 := t.Clone()
	u2.SetCellInPlace(2, floor, "3")
	u2.SetCellInPlace(2, city, "Paris")
	u2.SetCellInPlace(3, city, "Paris")
	u3 := t.Clone()
	u3.SetCellInPlace(1, floor, "30")
	u3.SetCellInPlace(1, city, "Madrid")
	updates := []struct {
		name string
		u    *table.Table
		want float64
	}{{"U1", u1, 2}, {"U2", u2, 3}, {"U3", u3, 4}}
	for _, s := range updates {
		got := table.DistUpd(s.u, t)
		ok := table.WeightEq(got, s.want) && s.u.Satisfies(ds)
		r.rowf("%s\t%g\t%g\t%v\t%s", s.name, s.want, got, s.u.Satisfies(ds), boolMark(ok))
	}

	sOpt, err := srepair.OptSRepair(ds, t)
	if err != nil {
		return "", err
	}
	r.rowf("optimal S-repair\t2\t%g\t%v\t%s",
		table.DistSub(sOpt, t), sOpt.Satisfies(ds),
		boolMark(table.WeightEq(table.DistSub(sOpt, t), 2)))
	uOpt, err := urepair.Repair(ds, t)
	if err != nil {
		return "", err
	}
	r.rowf("optimal U-repair\t2\t%g\texact=%v\t%s",
		uOpt.Cost, uOpt.Exact, boolMark(uOpt.Exact && table.WeightEq(uOpt.Cost, 2)))
	r.notef("S3 is a 1.5-optimal S-repair: 3 / 2 = %.1f (paper: 1.5)", 3.0/2.0)
	return r.String(), nil
}
