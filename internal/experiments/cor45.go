package experiments

import (
	"math/rand"

	"repro/internal/fd"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// RunCor45 regenerates Corollary 4.5: on random tables and
// consensus-free FD sets, dist_sub(S*) ≤ dist_upd(U*) ≤
// mlc(Δ)·dist_sub(S*), with both optima computed exactly (vertex-cover
// baseline and brute-force update search on tiny instances).
func RunCor45(seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	r := newReport("E8", "Corollary 4.5 — dist_sub(S*) ≤ dist_upd(U*) ≤ mlc·dist_sub(S*)")
	r.rowf("FD set\tmlc\ttrials\tlower holds\tupper holds\tmax observed dUpd/dSub\tok")
	sets := []struct {
		name  string
		specs []string
	}{
		{"{A→B}", []string{"A -> B"}},
		{"{A→B, B→C}", []string{"A -> B", "B -> C"}},
		{"{A→B, B→A}", []string{"A -> B", "B -> A"}},
		{"{A→C, B→C}", []string{"A -> C", "B -> C"}},
	}
	const trials = 12
	for _, s := range sets {
		ds := fd.MustParseSet(abcSchema, s.specs...)
		mlc, err := ds.MLC()
		if err != nil {
			return "", err
		}
		lower, upper := 0, 0
		maxRatio := 0.0
		for i := 0; i < trials; i++ {
			tab := workload.RandomTable(abcSchema, 4, 2, rng)
			sOpt, err := srepair.Exact(ds, tab)
			if err != nil {
				return "", err
			}
			dSub := table.DistSub(sOpt, tab)
			_, dUpd, err := urepair.Exact(ds, tab)
			if err != nil {
				return "", err
			}
			if table.WeightLeq(dSub, dUpd) {
				lower++
			}
			if dUpd <= float64(mlc)*dSub+1e-9 {
				upper++
			}
			if dSub > 0 && dUpd/dSub > maxRatio {
				maxRatio = dUpd / dSub
			}
		}
		ok := lower == trials && upper == trials
		r.rowf("%s\t%d\t%d\t%d\t%d\t%.3f\t%s", s.name, mlc, trials, lower, upper, maxRatio, boolMark(ok))
	}
	r.notef("paper: the sandwich holds for every consensus-free Δ; for common-lhs sets (mlc = 1) the two optima coincide (Corollary 4.6).")
	return r.String(), nil
}
