// Package experiments implements the paper-reproduction harness: one
// runner per table/figure/worked-example of the paper (see DESIGN.md §3
// for the experiment index E1–E11). Each runner returns a formatted
// report comparing the paper's claim with the measured outcome;
// cmd/paperbench prints them, EXPERIMENTS.md records them, and the
// root-level benchmarks time them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// report accumulates a titled, tab-aligned experiment report.
type report struct {
	b  strings.Builder
	tw *tabwriter.Writer
}

func newReport(id, title string) *report {
	r := &report{}
	fmt.Fprintf(&r.b, "== %s: %s ==\n", id, title)
	r.tw = tabwriter.NewWriter(&r.b, 2, 4, 2, ' ', 0)
	return r
}

func (r *report) rowf(format string, args ...interface{}) {
	fmt.Fprintf(r.tw, format+"\n", args...)
}

func (r *report) notef(format string, args ...interface{}) {
	r.tw.Flush()
	fmt.Fprintf(&r.b, format+"\n", args...)
	r.tw = tabwriter.NewWriter(&r.b, 2, 4, 2, ' ', 0)
}

func (r *report) String() string {
	r.tw.Flush()
	return r.b.String()
}

func boolMark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// Runner is one experiment: an id (DESIGN.md §3), the paper artifact it
// regenerates, and the function producing the report.
type Runner struct {
	ID       string
	Artifact string
	Run      func() (string, error)
}

// All returns every experiment runner in paper order.
func All() []Runner {
	return []Runner{
		{"E1", "Figure 1 / Example 2.3 (running example)", RunFig1},
		{"E2", "Table 1 (hard FD sets: exact vs 2-approx)", func() (string, error) { return RunTable1(1, 24) }},
		{"E3", "Example 3.5 + Algorithm 2 (dichotomy traces)", RunEx35},
		{"E4", "Figure 2 + Example 3.8 (five classes)", RunFig2},
		{"E5", "Theorem 3.10 (most probable database)", func() (string, error) { return RunMPD(7, 30) }},
		{"E6", "Theorem 4.10 (vertex-cover update gadget)", func() (string, error) { return RunThm410(11) }},
		{"E7", "Section 4.4 (∆k vs ∆′k approximation ratios)", func() (string, error) { return RunSec44(8) }},
		{"E8", "Corollary 4.5 (S↔U distance sandwich)", func() (string, error) { return RunCor45(13) }},
		{"E9", "Theorem 3.2 (OptSRepair scaling)", func() (string, error) { return RunScaling() }},
		{"E10", "Props 4.9/Cor 4.6/Cor 4.8 (tractable U-repairs)", func() (string, error) { return RunURepair(17) }},
		{"E11", "Lemmas A.11/A.13 + B.6/B.7 (hardness gadgets)", func() (string, error) { return RunGadgets(19) }},
		{"E12", "Section-5 extensions (counting, priorities, restricted & mixed)", func() (string, error) { return RunExtensions(23) }},
	}
}

// RunAll executes every experiment and concatenates the reports.
func RunAll() (string, error) {
	var b strings.Builder
	for _, r := range All() {
		out, err := r.Run()
		if err != nil {
			return "", fmt.Errorf("%s: %w", r.ID, err)
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// IDs returns the sorted experiment ids (for the CLI's usage text).
func IDs() []string {
	var ids []string
	for _, r := range All() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}
