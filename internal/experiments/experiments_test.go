package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every experiment and asserts every check
// line carries ✓ (the reports embed their own pass/fail marks).
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			out, err := r.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", r.ID, r.Artifact, err)
			}
			if strings.Contains(out, "✗") {
				t.Errorf("%s report contains failures:\n%s", r.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Errorf("%s report missing header:\n%s", r.ID, out)
			}
		})
	}
}

func TestRunAllConcatenates(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	out, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range All() {
		if !strings.Contains(out, "== "+r.ID+":") {
			t.Errorf("RunAll output missing %s", r.ID)
		}
	}
}

func TestIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 12 {
		t.Fatalf("ids = %v", ids)
	}
}
