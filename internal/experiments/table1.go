package experiments

import (
	"math/rand"
	"time"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

// abcSchema is the R(A, B, C) schema of Table 1.
var abcSchema = schema.MustNew("R", "A", "B", "C")

// RunTable1 regenerates Table 1's story: for each of the four hard FD
// sets over R(A, B, C), OSRSucceeds fails, OptSRepair fails, and on
// random tables the polynomial 2-approximation stays within factor 2 of
// the exponential exact optimum. The reported ratio is the worst
// observed over the trials.
func RunTable1(seed int64, n int) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	r := newReport("E2", "Table 1 — hard FD sets: OSRSucceeds / exact vs 2-approx")
	r.rowf("FD set\tOSRSucceeds\tworst approx ratio\texact time\tapprox time\tok")

	sets := []struct {
		name  string
		specs []string
	}{
		{"∆A→B→C", []string{"A -> B", "B -> C"}},
		{"∆A→C←B", []string{"A -> C", "B -> C"}},
		{"∆AB→C→B", []string{"A B -> C", "C -> B"}},
		{"∆AB↔AC↔BC", []string{"A B -> C", "A C -> B", "B C -> A"}},
	}
	const trials = 10
	for _, s := range sets {
		set := fd.MustParseSet(abcSchema, s.specs...)
		succeeds := srepair.OSRSucceeds(set)
		worst := 1.0
		var exactDur, approxDur time.Duration
		for i := 0; i < trials; i++ {
			tab := workload.RandomTable(abcSchema, n, 3, rng)
			t0 := time.Now()
			exact, err := srepair.Exact(set, tab)
			if err != nil {
				return "", err
			}
			exactDur += time.Since(t0)
			t1 := time.Now()
			approx, err := srepair.Approx2(set, tab)
			if err != nil {
				return "", err
			}
			approxDur += time.Since(t1)
			ce, ca := table.DistSub(exact, tab), table.DistSub(approx, tab)
			if ce > 0 {
				if ratio := ca / ce; ratio > worst {
					worst = ratio
				}
			}
		}
		ok := !succeeds && worst <= 2.0+1e-9
		r.rowf("%s\t%v\t%.3f\t%v\t%v\t%s",
			s.name, succeeds, worst,
			exactDur/time.Duration(trials), approxDur/time.Duration(trials), boolMark(ok))
	}
	r.notef("paper: all four sets fail OSRSucceeds and are APX-complete; the 2-approximation (Prop 3.3) is the polynomial fallback (n=%d tuples/trial).", n)
	return r.String(), nil
}
