package experiments

import (
	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/reduction"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

// newUnitGraph builds a weighted graph from an edge list.
func newUnitGraph(weights []float64, edges [][2]int) (*graph.Graph, error) {
	g, err := graph.NewGraph(weights)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// exactSubsetRepair wraps srepair.Exact for the experiment runners.
func exactSubsetRepair(ds *fd.Set, t *table.Table) (*table.Table, error) {
	return srepair.Exact(ds, t)
}

// Thin wrappers over internal/reduction keep the runners free of direct
// gadget imports (and give this package a single seam to swap gadgets).
func nonMixedGadget(f workload.CNF) (*fd.Set, *table.Table, error) {
	return reduction.NonMixedSATGadget(f)
}

func triangleGadget(ti workload.TriangleInstance) (*fd.Set, *table.Table) {
	return reduction.TriangleGadget(ti)
}

func liftDeltaK(k int, t *table.Table) (*fd.Set, *table.Table, error) {
	return reduction.LiftToDeltaK(k, t)
}

func liftDeltaPrimeK(k int, t *table.Table) (*fd.Set, *table.Table, error) {
	return reduction.LiftToDeltaPrimeK(k, t)
}
