package experiments

import (
	"repro/internal/workload"
)

// RunSec44 regenerates the approximation-ratio comparison of Section
// 4.4: for ∆k our ratio 2·mlc grows linearly while the
// Kolahi–Lakshmanan ratio (MCI+2)(2·MFS−1) grows quadratically; for
// ∆′k the situation reverses (ours Θ(k), theirs the constant 9). The
// combined approximation takes the min of the two columns.
func RunSec44(maxK int) (string, error) {
	r := newReport("E7", "Section 4.4 — ∆k vs ∆′k approximation ratios")
	r.rowf("k\tΔ\tmlc\tMFS\tMCI\tours 2·mlc\tKL (MCI+2)(2MFS−1)\tcombined\twinner")
	for k := 1; k <= maxK; k++ {
		if err := sec44Row(r, "∆k", k, workload.DeltaK(k)); err != nil {
			return "", err
		}
		if err := sec44Row(r, "∆′k", k, workload.DeltaPrimeK(k)); err != nil {
			return "", err
		}
	}
	r.notef("paper: for ∆k ours is 2(k+2) = Θ(k) vs KL Θ(k²); for ∆′k ours is 2⌈(k+1)/2⌉ = Θ(k) vs KL constant 9. The approximations are incomparable; run both and keep the cheaper repair.")
	return r.String(), nil
}

type measures interface {
	MLC() (int, error)
	MFS() int
	MCI() (int, error)
}

func sec44Row(r *report, name string, k int, set measures) error {
	mlc, err := set.MLC()
	if err != nil {
		return err
	}
	mci, err := set.MCI()
	if err != nil {
		return err
	}
	mfs := set.MFS()
	ours := 2 * mlc
	kl := (mci + 2) * (2*mfs - 1)
	combined := ours
	winner := "ours"
	if kl < combined {
		combined = kl
		winner = "KL"
	} else if kl == combined {
		winner = "tie"
	}
	r.rowf("%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s", k, name, mlc, mfs, mci, ours, kl, combined, winner)
	return nil
}
