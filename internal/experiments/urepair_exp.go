package experiments

import (
	"math/rand"

	"repro/internal/fd"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// RunURepair regenerates the tractable U-repair results (Corollary 4.6,
// Corollary 4.8, Proposition 4.9, Theorem 4.1/4.3): the planner claims
// exactness on each case and matches the brute-force optimum on tiny
// random instances.
func RunURepair(seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	r := newReport("E10", "Tractable U-repairs — planner vs brute force")
	r.rowf("FD set\tcase\ttrials\texact claims\tmatches oracle\tok")
	sets := []struct {
		name  string
		specs []string
		which string
	}{
		{"{A→B}", []string{"A -> B"}, "single FD (Cor 4.6)"},
		{"{A→B, A→C}", []string{"A -> B", "A -> C"}, "common lhs (Cor 4.6)"},
		{"{A→B, AB→C}", []string{"A -> B", "A B -> C"}, "chain (Cor 4.8)"},
		{"{A→B, B→A}", []string{"A -> B", "B -> A"}, "key swap (Prop 4.9)"},
		{"{∅→C, A→B}", []string{"-> C", "A -> B"}, "consensus (Thm 4.3)"},
	}
	const trials = 10
	for _, s := range sets {
		ds := fd.MustParseSet(abcSchema, s.specs...)
		exactClaims, matches := 0, 0
		for i := 0; i < trials; i++ {
			tab := workload.RandomTable(abcSchema, 4, 2, rng)
			res, err := urepair.Repair(ds, tab)
			if err != nil {
				return "", err
			}
			if res.Exact {
				exactClaims++
			}
			_, opt, err := urepair.Exact(ds, tab)
			if err != nil {
				return "", err
			}
			if table.WeightEq(res.Cost, opt) {
				matches++
			}
		}
		ok := exactClaims == trials && matches == trials
		r.rowf("%s\t%s\t%d\t%d\t%d\t%s", s.name, s.which, trials, exactClaims, matches, boolMark(ok))
	}
	r.notef("paper: these FD-set families admit polynomial-time optimal U-repairs; the planner composes them per Theorems 4.1/4.3.")
	return r.String(), nil
}

// RunGadgets regenerates the strict-reduction identities of the
// appendix gadgets (Lemmas A.11 and A.13) and the lifting lemmas (B.6,
// B.7): source optimum = gadget-table optimum on exhaustively solvable
// instances.
func RunGadgets(seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	r := newReport("E11", "Hardness gadgets — strict-reduction identities")
	r.rowf("gadget\ttrials\tidentity holds\tok")

	const trials = 12
	// Lemma A.13: MAX-non-mixed-SAT ↔ ∆AB→C→B.
	holds := 0
	for i := 0; i < trials; i++ {
		f := workload.RandomNonMixedCNF(4, 4+rng.Intn(3), 2, rng)
		ds, tab, err := nonMixedGadget(f)
		if err != nil {
			return "", err
		}
		rep, err := exactSubsetRepair(ds, tab)
		if err != nil {
			return "", err
		}
		maxSat, err := f.MaxSat()
		if err != nil {
			return "", err
		}
		if rep.Len() == maxSat {
			holds++
		}
	}
	r.rowf("MAX-non-mixed-SAT → ∆AB→C→B (A.13)\t%d\t%d\t%s", trials, holds, boolMark(holds == trials))

	// Lemma A.11: triangle packing ↔ ∆AB↔AC↔BC.
	holds = 0
	for i := 0; i < trials; i++ {
		inst := workload.RandomTriangles(3, 3, 3, 5+rng.Intn(7), rng)
		ds, tab := triangleGadget(inst)
		rep, err := exactSubsetRepair(ds, tab)
		if err != nil {
			return "", err
		}
		want, err := inst.MaxEdgeDisjointTriangles()
		if err != nil {
			return "", err
		}
		if rep.Len() == want {
			holds++
		}
	}
	r.rowf("triangle packing → ∆AB↔AC↔BC (A.11)\t%d\t%d\t%s", trials, holds, boolMark(holds == trials))

	// Lemma B.6 lifting: S-repair costs preserved into ∆k.
	holds = 0
	for i := 0; i < trials; i++ {
		tab := workload.RandomTable(abcSchema, 5, 2, rng)
		srcSet := fd.MustParseSet(abcSchema, "A -> B", "B -> C")
		dsK, lifted, err := liftDeltaK(2, tab)
		if err != nil {
			return "", err
		}
		repS, err := exactSubsetRepair(srcSet, tab)
		if err != nil {
			return "", err
		}
		repK, err := exactSubsetRepair(dsK, lifted)
		if err != nil {
			return "", err
		}
		if table.WeightEq(table.DistSub(repS, tab), table.DistSub(repK, lifted)) {
			holds++
		}
	}
	r.rowf("{A→B,B→C} ↪ ∆2 lifting (B.6)\t%d\t%d\t%s", trials, holds, boolMark(holds == trials))

	// Lemma B.7 lifting: S-repair costs preserved from ∆′1 into ∆′3.
	holds = 0
	ds1 := workload.DeltaPrimeK(1)
	for i := 0; i < trials; i++ {
		tab := workload.RandomTable(ds1.Schema(), 5, 2, rng)
		dsK, lifted, err := liftDeltaPrimeK(3, tab)
		if err != nil {
			return "", err
		}
		rep1, err := exactSubsetRepair(ds1, tab)
		if err != nil {
			return "", err
		}
		repK, err := exactSubsetRepair(dsK, lifted)
		if err != nil {
			return "", err
		}
		if table.WeightEq(table.DistSub(rep1, tab), table.DistSub(repK, lifted)) {
			holds++
		}
	}
	r.rowf("∆′1 ↪ ∆′3 lifting (B.7)\t%d\t%d\t%s", trials, holds, boolMark(holds == trials))

	r.notef("paper: each gadget is a strict reduction — the source optimum transfers to the repair optimum exactly; verified with exhaustive solvers on both sides.")
	return r.String(), nil
}
