package experiments

import (
	"math/rand"

	"repro/internal/enumerate"
	"repro/internal/fd"
	"repro/internal/priority"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// RunExtensions reports on the library's Section-5 / related-work
// extensions beyond the paper's core results:
//
//   - subset-repair counting: the polynomial chain counter matches
//     Bron–Kerbosch enumeration (the Livshits–Kimelfeld counting
//     dichotomy referenced in Section 2.2);
//   - prioritized repairing (Staworko et al.): priorities shrink the
//     repair space, down to an unambiguous repair on the running
//     example;
//   - restricted updates: confining updates to the active domain can
//     strictly increase the optimal U-repair cost;
//   - mixed repairs: deletions and updates trade off through the
//     deletion-cost factor.
func RunExtensions(seed int64) (string, error) {
	r := newReport("E12", "Section-5 extensions — counting, priorities, restricted & mixed repairs")
	rng := rand.New(rand.NewSource(seed))

	// Counting: chain counter vs enumeration on random tables.
	chainSet := fd.MustParseSet(abcSchema, "A -> B", "A B -> C")
	agree, trials := 0, 10
	for i := 0; i < trials; i++ {
		tab := workload.RandomTable(abcSchema, 8, 2, rng)
		c, err := enumerate.CountChain(chainSet, tab)
		if err != nil {
			return "", err
		}
		_, n, err := enumerate.SubsetRepairs(chainSet, tab, 1)
		if err != nil {
			return "", err
		}
		if c.Int64() == int64(n) {
			agree++
		}
	}
	r.rowf("repair counting (chain poly vs enumeration)\t%d/%d agree\t%s", agree, trials, boolMark(agree == trials))

	// Priorities: the running example becomes unambiguous.
	_, ds, tab := workload.Office()
	rel := priority.NewRelation()
	rel.Add(1, 2)
	rel.Add(1, 3)
	opt, err := priority.Compute(ds, tab, rel)
	if err != nil {
		return "", err
	}
	unique, err := priority.Unambiguous(ds, tab, rel)
	if err != nil {
		return "", err
	}
	r.rowf("prioritized repairs on Fig. 1 (prefer tuple 1)\t%d repairs → %d Pareto, unambiguous=%v\t%s",
		len(opt.All), len(opt.Pareto), unique, boolMark(unique && len(opt.Pareto) == 1))

	// Restricted updates: the separation instance.
	sep := table.New(abcSchema)
	sep.MustInsert(1, table.Tuple{"a", "b1", "c1"}, 1)
	sep.MustInsert(2, table.Tuple{"a", "b2", "c2"}, 1)
	chain2 := fd.MustParseSet(abcSchema, "A -> B", "B -> C")
	_, free, err := urepair.Exact(chain2, sep)
	if err != nil {
		return "", err
	}
	_, restricted, err := urepair.ExactActiveDomain(chain2, sep)
	if err != nil {
		return "", err
	}
	r.rowf("active-domain restriction (separation instance)\tfree=%g restricted=%g\t%s",
		free, restricted, boolMark(table.WeightEq(free, 1) && table.WeightEq(restricted, 2)))

	// Mixed repairs: the deletion-factor crossover.
	mixTab := table.New(abcSchema)
	mixTab.MustInsert(1, table.Tuple{"a", "x", "0"}, 1)
	mixTab.MustInsert(2, table.Tuple{"a", "y", "0"}, 1)
	mixTab.MustInsert(3, table.Tuple{"a", "y", "0"}, 1)
	keyFD := fd.MustParseSet(abcSchema, "A -> B")
	_, delCheap, cheap, err := urepair.ExactMixed(keyFD, mixTab, 0.5)
	if err != nil {
		return "", err
	}
	_, delExp, exp, err := urepair.ExactMixed(keyFD, mixTab, 3)
	if err != nil {
		return "", err
	}
	ok := table.WeightEq(cheap, 0.5) && len(delCheap) == 1 &&
		table.WeightEq(exp, 1) && len(delExp) == 0
	r.rowf("mixed repairs (delete factor 0.5 vs 3)\tcost %g (1 deletion) vs %g (pure update)\t%s",
		cheap, exp, boolMark(ok))

	r.notef("these are the future-work directions of Section 5 plus the counting connection of Section 2.2, implemented and cross-validated; the paper's core results do not depend on them.")
	return r.String(), nil
}
