package experiments

import (
	"math"
	"math/rand"

	"repro/internal/fd"
	"repro/internal/mpd"
	"repro/internal/table"
	"repro/internal/workload"
)

// RunMPD regenerates the Section 3.4 results: the reduction of Theorem
// 3.10 matches the brute-force most probable database on random
// probabilistic tables, for a tractable set, the Comment-3.11 set
// ∆A↔B→C (polynomial in our dichotomy, claimed NP-hard by Gribkoff et
// al. due to a gap in their proof), and a hard set (via the exact
// fallback).
func RunMPD(seed int64, iters int) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	r := newReport("E5", "Theorem 3.10 — most probable database via S-repairs")
	r.rowf("FD set\tpoly (Thm 3.10)\ttrials\tagree w/ brute force\tok")
	sets := []struct {
		name  string
		specs []string
	}{
		{"{A→B}", []string{"A -> B"}},
		{"∆A↔B→C (Comment 3.11)", []string{"A -> B", "B -> A", "B -> C"}},
		{"{A→B, B→C}", []string{"A -> B", "B -> C"}},
	}
	for _, s := range sets {
		ds := fd.MustParseSet(abcSchema, s.specs...)
		agree := 0
		for i := 0; i < iters; i++ {
			base := workload.RandomTable(abcSchema, 3+rng.Intn(6), 2, rng)
			tab := table.New(abcSchema)
			for _, row := range base.Rows() {
				tab.MustInsert(row.ID, row.Tuple, 0.05+0.9*rng.Float64())
			}
			got, err := mpd.Solve(ds, tab)
			if err != nil {
				return "", err
			}
			_, bestP, err := mpd.BruteForce(ds, tab)
			if err != nil {
				return "", err
			}
			if math.Abs(mpd.Probability(tab, got)-bestP) <= 1e-12*math.Max(1, bestP) {
				agree++
			}
		}
		ok := agree == iters
		r.rowf("%s\t%v\t%d\t%d\t%s", s.name, mpd.IsPolyTime(ds), iters, agree, boolMark(ok))
	}
	r.notef("paper: MPD for Δ is polynomial iff OSRSucceeds(Δ); settles the open problem of Gribkoff et al. for non-unary FDs.")
	return r.String(), nil
}
