package urepair

import (
	"repro/internal/fd"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
)

// isKeySwap reports whether the (consensus-free) component is, in
// canonical form, exactly {A → B, B → A} for two single attributes —
// the tractable U-repair case of Proposition 4.9.
func isKeySwap(comp *fd.Set) bool {
	can := comp.Canonical()
	if can.Len() != 2 {
		return false
	}
	f1, f2 := can.FDs()[0], can.FDs()[1]
	return f1.LHS.Len() == 1 && f2.LHS.Len() == 1 &&
		f1.LHS == f2.RHS && f2.LHS == f1.RHS && f1.LHS != f2.LHS
}

// keySwapRepair implements Proposition 4.9 for Δ = {A → B, B → A}: an
// optimal S-repair S* (computable: the set passes OSRSucceeds via an
// lhs marriage, so the solve runs on the sparse matching engine of
// internal/graph — one edge per observed (A, B) block) is converted
// into a consistent update of equal distance, which is therefore an
// optimal U-repair. For every deleted
// tuple t there is a kept tuple s agreeing with t on A or on B
// (otherwise t could be added to S*, contradicting optimality); the
// other attribute of t is overwritten with s's value, a single-cell
// change.
func keySwapRepair(c *solve.Ctx, comp *fd.Set, t *table.Table) (Result, bool, error) {
	can := comp.Canonical()
	f1 := can.FDs()[0]
	a := f1.LHS.First()
	b := f1.RHS.First()

	s, err := srepair.OptSRepairCtx(c, comp, t)
	if err != nil {
		if cerr := c.Err(); cerr != nil {
			return Result{}, false, cerr
		}
		return Result{}, false, nil
	}
	// Index kept values: A value -> representative B value and vice versa.
	bOfA := map[string]string{}
	aOfB := map[string]string{}
	for _, r := range s.Rows() {
		bOfA[r.Tuple[a]] = r.Tuple[b]
		aOfB[r.Tuple[b]] = r.Tuple[a]
	}
	u := t.Clone()
	var cost float64
	for _, r := range t.Rows() {
		if s.Has(r.ID) {
			continue
		}
		if vb, ok := bOfA[r.Tuple[a]]; ok {
			u.SetCellInPlace(r.ID, b, vb)
			cost += r.Weight
			continue
		}
		if va, ok := aOfB[r.Tuple[b]]; ok {
			u.SetCellInPlace(r.ID, a, va)
			cost += r.Weight
			continue
		}
		// Unreachable for an optimal S-repair: the tuple conflicts with
		// nothing kept and could have been retained.
		return Result{}, false, nil
	}
	if !u.Satisfies(comp) {
		return Result{}, false, nil
	}
	return Result{
		Update:     u,
		Cost:       cost,
		Exact:      true,
		RatioBound: 1,
		Method:     "key-swap (Prop 4.9 via OptSRepair)",
	}, true, nil
}
