package urepair

import (
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestActiveDomainNeverCheaper: restricting updates to the active
// domain can only increase the optimal cost (Section 5 discussion).
func TestActiveDomainNeverCheaper(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> C"),
		fd.MustParseSet(sc, "A -> B", "B -> A"),
	}
	rng := rand.New(rand.NewSource(81))
	for _, ds := range sets {
		for iter := 0; iter < 8; iter++ {
			tab := workload.RandomTable(sc, 4, 2, rng)
			_, free, err := Exact(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			u, restricted, err := ExactActiveDomain(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !u.Satisfies(ds) || !u.IsUpdateOf(tab) {
				t.Fatal("restricted repair invalid")
			}
			// Every cell must hold an active-domain value.
			active := map[int]map[table.Value]bool{}
			for a := 0; a < sc.Arity(); a++ {
				active[a] = map[table.Value]bool{}
				for _, r := range tab.Rows() {
					active[a][r.Tuple[a]] = true
				}
			}
			for _, r := range u.Rows() {
				for a, v := range r.Tuple {
					if !active[a][v] {
						t.Fatalf("restricted repair used non-active value %q", v)
					}
				}
			}
			if table.WeightLess(restricted, free) {
				t.Fatalf("%v: restricted cost %v < unrestricted %v", ds, restricted, free)
			}
		}
	}
}

// TestActiveDomainStrictlyWorse exhibits an instance where the
// restriction strictly increases the optimum (the phenomenon that makes
// Section 5 call the restricted model a genuinely different problem):
// under {A → B, B → C} with rows (a,b1,c1) and (a,b2,c2), moving one
// tuple to a fresh A value costs 1, but the active domain of A is {a},
// so a restricted repair must equalize both B and C at cost 2.
func TestActiveDomainStrictlyWorse(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "b1", "c1"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "b2", "c2"}, 1)
	_, free, err := Exact(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, restricted, err := ExactActiveDomain(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(free, 1) {
		t.Fatalf("unrestricted optimum = %v, want 1", free)
	}
	if !table.WeightEq(restricted, 2) {
		t.Fatalf("restricted optimum = %v, want 2", restricted)
	}
}

// TestMixedUpperBounds: the mixed optimum is never worse than the pure
// deletion optimum (scaled) or the pure update optimum.
func TestMixedUpperBounds(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 8; iter++ {
		tab := workload.RandomTable(sc, 4, 2, rng)
		const factor = 1.5
		_, _, mixed, err := ExactMixed(ds, tab, factor)
		if err != nil {
			t.Fatal(err)
		}
		_, pureU, err := Exact(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if mixed > pureU+1e-9 {
			t.Fatalf("mixed %v > pure update %v", mixed, pureU)
		}
		// Pure deletion: exact S-repair scaled by the factor is a valid
		// mixed repair.
		sOpt, err := exactSRepairForTest(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if mixed > factor*table.DistSub(sOpt, tab)+1e-9 {
			t.Fatalf("mixed %v > deletion bound %v", mixed, factor*table.DistSub(sOpt, tab))
		}
	}
}

// TestMixedSurvivorsConsistent: survivors of a mixed repair satisfy Δ
// and deleted tuples are billed at the factor.
func TestMixedSurvivorsConsistent(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "x"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "y"}, 1)
	tab.MustInsert(3, table.Tuple{"a", "y"}, 1)
	// With a cheap deletion factor, deleting tuple 1 (cost 0.5) beats
	// updating its B cell (cost 1).
	u, deleted, cost, err := ExactMixed(ds, tab, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(cost, 0.5) {
		t.Fatalf("mixed cost = %v, want 0.5", cost)
	}
	if !deleted[1] || len(deleted) != 1 {
		t.Fatalf("deleted = %v, want {1}", deleted)
	}
	var keep []int
	for _, r := range u.Rows() {
		if !deleted[r.ID] {
			keep = append(keep, r.ID)
		}
	}
	if !u.MustSubsetByIDs(keep).Satisfies(ds) {
		t.Fatal("survivors inconsistent")
	}
	// With an expensive deletion factor the update wins.
	_, deleted2, cost2, err := ExactMixed(ds, tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted2) != 0 || !table.WeightEq(cost2, 1) {
		t.Fatalf("expensive deletions: cost %v deleted %v, want 1 / none", cost2, deleted2)
	}
}

func TestMixedRejectsBadFactor(t *testing.T) {
	sc := schema.MustNew("R", "A")
	ds := fd.MustParseSet(sc, "-> A")
	if _, _, _, err := ExactMixed(ds, table.New(sc), 0); err == nil {
		t.Fatal("factor 0 must be rejected")
	}
}

func TestExactEmptyTable(t *testing.T) {
	sc := schema.MustNew("R", "A")
	ds := fd.MustParseSet(sc, "-> A")
	_, cost, err := Exact(ds, table.New(sc))
	if err != nil || cost != 0 {
		t.Fatalf("empty table: cost %v err %v", cost, err)
	}
	_, cost, err = ExactActiveDomain(ds, table.New(sc))
	if err != nil || cost != 0 {
		t.Fatalf("empty table restricted: cost %v err %v", cost, err)
	}
}
