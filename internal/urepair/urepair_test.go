package urepair

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestRepairRunningExample: Figure 1's optimal U-repair has cost 2 (U1
// is optimal, Example 2.3). The running-example Δ has common lhs
// facility and passes OSRSucceeds, so the planner is exact (Cor 4.6,
// Example 4.7).
func TestRepairRunningExample(t *testing.T) {
	_, ds, tab := workload.Office()
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("running example must be exact (method %s)", res.Method)
	}
	if !table.WeightEq(res.Cost, 2) {
		t.Fatalf("optimal U-repair cost = %v, want 2", res.Cost)
	}
	if !res.Update.Satisfies(ds) || !res.Update.IsUpdateOf(tab) {
		t.Fatal("result is not a consistent update")
	}
	if !table.WeightEq(table.DistUpd(res.Update, tab), res.Cost) {
		t.Fatal("reported cost disagrees with dist_upd")
	}
}

func TestRepairTrivial(t *testing.T) {
	_, _, tab := workload.Office()
	ds := fd.MustParseSet(tab.Schema())
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Cost != 0 {
		t.Fatalf("trivial set: cost %v exact %v", res.Cost, res.Exact)
	}
}

func TestRepairSchemaMismatch(t *testing.T) {
	_, ds, _ := workload.Office()
	other := table.New(schema.MustNew("O", "X"))
	if _, err := Repair(ds, other); err == nil {
		t.Fatal("schema mismatch must fail")
	}
}

// TestConsensusMajority: Proposition B.2 — the kept value is the one of
// maximum total weight.
func TestConsensusMajority(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "-> A")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"x", "1"}, 1)
	tab.MustInsert(2, table.Tuple{"x", "2"}, 1)
	tab.MustInsert(3, table.Tuple{"y", "3"}, 5)
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || !table.WeightEq(res.Cost, 2) {
		t.Fatalf("cost = %v exact=%v, want 2/true", res.Cost, res.Exact)
	}
	for _, r := range res.Update.Rows() {
		if r.Tuple[0] != "y" {
			t.Fatalf("all tuples must take the majority value y: %v", res.Update)
		}
	}
}

// TestConsensusMultiAttribute: ∅ → A B decomposes per attribute.
func TestConsensusMultiAttribute(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "-> A B")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"x", "p"}, 1)
	tab.MustInsert(2, table.Tuple{"x", "q"}, 2)
	tab.MustInsert(3, table.Tuple{"y", "q"}, 1)
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	// A: keep x (weight 3 ≥ 1) → change tuple 3 (1). B: keep q (3 ≥ 1) →
	// change tuple 1 (1). Total 2.
	if !res.Exact || !table.WeightEq(res.Cost, 2) {
		t.Fatalf("cost = %v exact=%v, want 2/true", res.Cost, res.Exact)
	}
}

// TestKeySwap: Proposition 4.9 on a crafted instance — dist_upd(U*) =
// dist_sub(S*).
func TestKeySwap(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a1", "b1"}, 1)
	tab.MustInsert(2, table.Tuple{"a1", "b2"}, 1)
	tab.MustInsert(3, table.Tuple{"a2", "b2"}, 1)
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("key-swap must be exact, method %s", res.Method)
	}
	s, err := srepair.OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(res.Cost, table.DistSub(s, tab)) {
		t.Fatalf("dist_upd %v != dist_sub %v (Prop 4.9)", res.Cost, table.DistSub(s, tab))
	}
	if !strings.Contains(res.Method, "key-swap") {
		t.Errorf("method = %q, want key-swap", res.Method)
	}
}

// TestDisjointComposition: Theorem 4.1 / Example 4.2 — the union of
// attribute-disjoint tractable sets stays tractable and costs add up.
func TestDisjointComposition(t *testing.T) {
	sc := schema.MustNew("Purchase", "item", "cost", "buyer", "address")
	ds := fd.MustParseSet(sc, "item -> cost", "buyer -> address")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"pen", "1", "ann", "rome"}, 1)
	tab.MustInsert(2, table.Tuple{"pen", "2", "ann", "rome"}, 1) // item conflict
	tab.MustInsert(3, table.Tuple{"ink", "5", "bob", "oslo"}, 1)
	tab.MustInsert(4, table.Tuple{"ink", "5", "bob", "bern"}, 1) // buyer conflict
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("∆0 of the introduction must be exact for U-repairs, method %s", res.Method)
	}
	if !table.WeightEq(res.Cost, 2) {
		t.Fatalf("cost = %v, want 2 (one cell per component)", res.Cost)
	}
}

// TestChainExact: Corollary 4.8 — chain FD sets are exact, via
// consensus elimination + common lhs.
func TestChainExact(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "A B -> C")
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		tab := workload.RandomTable(sc, 5, 2, rng)
		res, err := Repair(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("chain set must be exact, method %s", res.Method)
		}
		if !res.Update.Satisfies(ds) {
			t.Fatal("inconsistent update")
		}
	}
}

// TestPlannerMatchesExactOracle cross-validates the planner's exact
// cases against the brute-force search on tiny random tables.
func TestPlannerMatchesExactOracle(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	tractable := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B C"),
		fd.MustParseSet(sc, "A -> B", "A -> C"),
		fd.MustParseSet(sc, "A -> B", "A B -> C"),
		fd.MustParseSet(sc, "-> C", "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> A"),
		fd.MustParseSet(sc, "-> A"),
	}
	rng := rand.New(rand.NewSource(63))
	for _, ds := range tractable {
		for iter := 0; iter < 8; iter++ {
			tab := workload.RandomTable(sc, 4, 2, rng)
			res, err := Repair(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatalf("%v should be exact, method %s", ds, res.Method)
			}
			_, optCost, err := Exact(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !table.WeightEq(res.Cost, optCost) {
				t.Fatalf("%v: planner cost %v != exact %v\n%s", ds, res.Cost, optCost, tab)
			}
		}
	}
}

// TestApproxWithinBound: on hard sets the planner stays within its
// declared ratio of the true optimum (tiny instances, brute force).
func TestApproxWithinBound(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	hard := []*fd.Set{
		fd.MustParseSet(sc, "A -> B", "B -> C"),
		fd.MustParseSet(sc, "A -> C", "B -> C"),
		fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C"), // ∆A↔B→C: hard for U (Thm 4.10)
	}
	rng := rand.New(rand.NewSource(17))
	for _, ds := range hard {
		for iter := 0; iter < 6; iter++ {
			tab := workload.RandomTable(sc, 4, 2, rng)
			res, err := Repair(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if res.RatioBound < 1 {
				t.Fatalf("ratio bound %v < 1", res.RatioBound)
			}
			_, optCost, err := Exact(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if table.WeightLess(res.Cost, optCost) {
				t.Fatalf("%v: planner cost %v beats the optimum %v — oracle bug\n%s", ds, res.Cost, optCost, tab)
			}
			if res.Cost > res.RatioBound*optCost+1e-9 {
				t.Fatalf("%v: cost %v exceeds bound %v × opt %v\n%s", ds, res.Cost, res.RatioBound, optCost, tab)
			}
		}
	}
}

// TestCorollary45: dist_sub(S*) ≤ dist_upd(U*) ≤ mlc(Δ)·dist_sub(S*)
// for consensus-free Δ, using exact solvers on tiny instances.
func TestCorollary45(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> C"),
		fd.MustParseSet(sc, "A -> B", "B -> A"),
	}
	rng := rand.New(rand.NewSource(5))
	for _, ds := range sets {
		mlc, err := ds.MLC()
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 6; iter++ {
			tab := workload.RandomTable(sc, 4, 2, rng)
			sOpt, err := srepair.Exact(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			dSub := table.DistSub(sOpt, tab)
			_, dUpd, err := Exact(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if table.WeightLess(dUpd, dSub) {
				t.Fatalf("%v: dist_upd %v < dist_sub %v violates Cor 4.5", ds, dUpd, dSub)
			}
			if dUpd > float64(mlc)*dSub+1e-9 {
				t.Fatalf("%v: dist_upd %v > mlc(%d)·dist_sub %v violates Cor 4.5", ds, dUpd, mlc, dSub)
			}
		}
	}
}

// TestProposition44Constructions: the two transfer constructions
// preserve consistency and respect their cost bounds.
func TestProposition44Constructions(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	rng := rand.New(rand.NewSource(12))
	cover, size, ok := ds.MinLHSCover()
	if !ok {
		t.Fatal("consensus-free set must have a cover")
	}
	for iter := 0; iter < 10; iter++ {
		tab := workload.RandomTable(sc, 6, 2, rng)
		// subset → update
		s, err := srepair.Approx2(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		u := SubsetToUpdate(tab, s, cover)
		if !u.Satisfies(ds) || !u.IsUpdateOf(tab) {
			t.Fatal("SubsetToUpdate produced a bad update")
		}
		if got, bound := table.DistUpd(u, tab), float64(size)*table.DistSub(s, tab); got > bound+1e-9 {
			t.Fatalf("dist_upd %v > mlc·dist_sub %v", got, bound)
		}
		// update → subset
		s2 := UpdateToSubset(tab, u)
		if !s2.IsSubsetOf(tab) || !s2.Satisfies(ds) {
			t.Fatal("UpdateToSubset produced a bad subset")
		}
		if got := table.DistSub(s2, tab); got > table.DistUpd(u, tab)+1e-9 {
			t.Fatalf("dist_sub %v > dist_upd %v", got, table.DistUpd(u, tab))
		}
	}
}

// TestKLHeuristicAlwaysConsistent: the heuristic's output is a
// consistent update on random dirty tables, for easy and hard sets.
func TestKLHeuristicAlwaysConsistent(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B", "B -> C"),
		fd.MustParseSet(sc, "A B -> C", "C -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C"),
	}
	rng := rand.New(rand.NewSource(21))
	for _, ds := range sets {
		for iter := 0; iter < 10; iter++ {
			tab := workload.RandomWeightedTable(sc, 12, 3, 3, rng)
			u, ok := KLHeuristic(ds, tab)
			if !ok {
				t.Fatalf("%v: heuristic refused a consensus-free set", ds)
			}
			if !u.Satisfies(ds) || !u.IsUpdateOf(tab) {
				t.Fatalf("%v: heuristic output invalid", ds)
			}
		}
	}
	// Consensus FDs are refused.
	if _, ok := KLHeuristic(fd.MustParseSet(sc, "-> A"), workload.RandomTable(sc, 4, 2, rng)); ok {
		t.Fatal("heuristic must refuse consensus FDs")
	}
}

// TestDeltaA_B_SwapC_IsApprox: ∆A↔B→C is APX-complete for U-repairs
// (Theorem 4.10), so the planner must not claim exactness.
func TestDeltaABSwapCIsApprox(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C")
	tab := workload.RandomTable(sc, 6, 2, rand.New(rand.NewSource(2)))
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatalf("∆A↔B→C must not be claimed exact (method %s)", res.Method)
	}
}

// TestExactOracleSmallCases pins down hand-checkable optima.
func TestExactOracleSmallCases(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "x"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "y"}, 1)
	_, cost, err := Exact(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(cost, 1) {
		t.Fatalf("cost = %v, want 1 (set one B cell)", cost)
	}
	// Weighted: the heavy tuple's value wins.
	tab2 := table.New(sc)
	tab2.MustInsert(1, table.Tuple{"a", "x"}, 5)
	tab2.MustInsert(2, table.Tuple{"a", "y"}, 1)
	u2, cost2, err := Exact(ds, tab2)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(cost2, 1) {
		t.Fatalf("cost = %v, want 1", cost2)
	}
	// The heavy tuple must be untouched (changing any of its cells
	// already costs 5); the light tuple absorbs the single-cell change.
	r1, _ := u2.Row(1)
	if !r1.Tuple.Equal(table.Tuple{"a", "x"}) {
		t.Fatalf("heavy tuple modified: %v", r1.Tuple)
	}
}

func TestExactGuards(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B")
	big := workload.RandomTable(sc, maxExactRows+1, 2, rand.New(rand.NewSource(1)))
	if _, _, err := Exact(ds, big); err == nil {
		t.Fatal("oversized instance must be refused")
	}
	wide := schema.MustNew("W", "A", "B", "C", "D", "E")
	dsw := fd.MustParseSet(wide, "A -> B")
	tw := workload.RandomTable(wide, 2, 2, rand.New(rand.NewSource(1)))
	if _, _, err := Exact(dsw, tw); err == nil {
		t.Fatal("over-wide instance must be refused")
	}
}
