package urepair

import (
	"repro/internal/fd"
	"repro/internal/srepair"
	"repro/internal/table"
)

// exactSRepairForTest avoids importing srepair in every test file.
func exactSRepairForTest(ds *fd.Set, t *table.Table) (*table.Table, error) {
	return srepair.Exact(ds, t)
}
