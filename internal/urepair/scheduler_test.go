package urepair

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
	"repro/internal/workload"
)

// multiComponentInstance builds an FD set whose consensus-free part
// decomposes into three attribute-disjoint components exercising three
// planner paths — a key swap {A↔B}, a common-lhs set {C→D, C→E}, and a
// two-FD chain-free set {F→G, H→G} that needs the combined
// approximation — over a randomized table large enough that every
// component becomes a scheduler task.
func multiComponentInstance(n int, seed int64) (*fd.Set, *table.Table) {
	sc := schema.MustNew("R", "A", "B", "C", "D", "E", "F", "G", "H")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "C -> D", "C -> E", "F -> G", "H -> G")
	rng := rand.New(rand.NewSource(seed))
	tab := table.New(sc)
	for i := 1; i <= n; i++ {
		tab.MustInsert(i, table.Tuple{
			fmt.Sprintf("a%d", rng.Intn(8)), fmt.Sprintf("b%d", rng.Intn(8)),
			fmt.Sprintf("c%d", rng.Intn(6)), fmt.Sprintf("d%d", rng.Intn(4)),
			fmt.Sprintf("e%d", rng.Intn(4)), fmt.Sprintf("f%d", rng.Intn(6)),
			fmt.Sprintf("g%d", rng.Intn(4)), fmt.Sprintf("h%d", rng.Intn(6)),
		}, float64(1+rng.Intn(3)))
	}
	return ds, tab
}

// sameUpdate asserts two updates are byte-identical: same identifiers
// and same tuple values everywhere.
func sameUpdate(t *testing.T, name string, got, want *table.Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows vs %d", name, got.Len(), want.Len())
	}
	for _, r := range want.Rows() {
		gr, ok := got.Row(r.ID)
		if !ok {
			t.Fatalf("%s: id %d missing", name, r.ID)
		}
		if !gr.Tuple.Equal(r.Tuple) {
			t.Fatalf("%s: id %d tuple %v vs %v", name, r.ID, gr.Tuple, r.Tuple)
		}
	}
}

// TestPlannerParallelDeterminism: the planner's per-component solves
// ride the work-stealing scheduler; the update, cost, exactness and
// method string must be byte-identical to the serial planner at every
// worker count (components merge in index order regardless of
// execution order).
func TestPlannerParallelDeterminism(t *testing.T) {
	ds, tab := multiComponentInstance(400, 9)
	serial, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		res, err := RepairCtx(solve.New(w, nil, nil), ds, tab)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		name := fmt.Sprintf("planner/workers=%d", w)
		sameUpdate(t, name, res.Update, serial.Update)
		if !table.WeightEq(res.Cost, serial.Cost) {
			t.Fatalf("%s: cost %v vs serial %v", name, res.Cost, serial.Cost)
		}
		if res.Exact != serial.Exact || res.RatioBound != serial.RatioBound {
			t.Fatalf("%s: exact/ratio %v/%v vs %v/%v", name,
				res.Exact, res.RatioBound, serial.Exact, serial.RatioBound)
		}
		if res.Method != serial.Method {
			t.Fatalf("%s: method %q vs %q", name, res.Method, serial.Method)
		}
	}
}

// TestPlannerStats: the per-component decisions (which subroutine won,
// component count and sizes) surface in the solve stats.
func TestPlannerStats(t *testing.T) {
	ds, tab := multiComponentInstance(200, 23)
	st := new(solve.Stats)
	res, err := RepairCtx(solve.New(1, nil, st), ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.PlannerComponents != 3 {
		t.Fatalf("planner components = %d, want 3 (stats %+v)", snap.PlannerComponents, snap)
	}
	if snap.PlannerKeySwap != 1 || snap.PlannerCommonLHS != 1 || snap.PlannerApprox != 1 {
		t.Fatalf("planner paths keyswap/commonlhs/approx = %d/%d/%d, want 1/1/1 (method %q)",
			snap.PlannerKeySwap, snap.PlannerCommonLHS, snap.PlannerApprox, res.Method)
	}
	if snap.PlannerMaxCompFDs != 2 {
		t.Fatalf("planner max component FDs = %d, want 2", snap.PlannerMaxCompFDs)
	}
	// Consensus elimination is recorded only when it changes cells.
	cds := fd.MustParseSet(ds.Schema(), "-> A")
	st.Reset()
	if _, err := RepairCtx(solve.New(1, nil, st), cds, tab); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot().PlannerConsensus != 1 {
		t.Fatalf("consensus application not recorded: %+v", st.Snapshot())
	}
}

// TestPlannerParallelRandomized mirrors the srepair determinism
// property test over the planner's tractable catalogue shapes.
func TestPlannerParallelRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B", "B -> A"),
		fd.MustParseSet(sc, "A -> B", "A -> C"),
		fd.MustParseSet(sc, "-> C", "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> C"), // hard side: approximation
	}
	for si, ds := range sets {
		for trial := 0; trial < 3; trial++ {
			tab := workload.RandomWeightedTable(sc, 60+rng.Intn(200), 6, 4, rng)
			serial, err := Repair(ds, tab)
			if err != nil {
				t.Fatalf("set %d: %v", si, err)
			}
			for _, w := range []int{2, 8} {
				res, err := RepairCtx(solve.New(w, nil, nil), ds, tab)
				if err != nil {
					t.Fatalf("set %d workers=%d: %v", si, w, err)
				}
				name := fmt.Sprintf("set=%d/trial=%d/workers=%d", si, trial, w)
				sameUpdate(t, name, res.Update, serial.Update)
				if !table.WeightEq(res.Cost, serial.Cost) {
					t.Fatalf("%s: cost %v vs %v", name, res.Cost, serial.Cost)
				}
				if res.Method != serial.Method {
					t.Fatalf("%s: method %q vs %q", name, res.Method, serial.Method)
				}
			}
		}
	}
}
