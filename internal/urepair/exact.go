package urepair

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/table"
)

// Exact-search guards: the brute-force optimal U-repair is the
// validation oracle for tiny instances only.
const (
	maxExactRows   = 6
	maxExactArity  = 4
	maxExactDomain = 8
)

// searchOptions parameterize the exhaustive repair search, covering the
// paper's Section-5 variations.
type searchOptions struct {
	// allowFresh permits updating cells to fresh constants outside the
	// active domain (the paper's default update model; Section 2.3).
	allowFresh bool
	// deleteFactor, when > 0, additionally allows deleting a tuple at
	// cost deleteFactor · weight (the mixed-repair model of Section 5).
	deleteFactor float64
	// incumbent seeds the branch-and-bound upper bound (nil: none).
	incumbent *table.Table
	// incumbentDeleted lists rows deleted by the incumbent (mixed mode).
	incumbentDeleted map[int]bool
}

// searchResult is the outcome of the exhaustive search.
type searchResult struct {
	update  *table.Table // values of surviving rows (deleted rows keep originals)
	deleted map[int]bool // rows removed (mixed mode only)
	cost    float64
}

// Exact computes an optimal U-repair by exhaustive branch and bound.
// Candidate values for every cell are the attribute's active domain
// plus canonical fresh constants (fresh constants are shareable within
// an attribute; symmetry is broken by only allowing the first unused
// fresh index, which preserves optimality because fresh constants are
// interchangeable). Exponential; refuses instances beyond the guards.
// The initial incumbent comes from the planner, so the search only
// explores improvements.
func Exact(ds *fd.Set, t *table.Table) (*table.Table, float64, error) {
	planned, err := Repair(ds, t)
	if err != nil {
		return nil, 0, err
	}
	res, err := exactSearch(ds, t, searchOptions{
		allowFresh: true,
		incumbent:  planned.Update,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.update, res.cost, nil
}

// ExactActiveDomain computes an optimal U-repair under the Section-5
// restriction that updated cells may only take values from the active
// domain of their attribute (no fresh constants). The restricted
// optimum is never smaller than the unrestricted one and can be
// strictly larger. A repair always exists (e.g. copy one tuple's
// values everywhere).
func ExactActiveDomain(ds *fd.Set, t *table.Table) (*table.Table, float64, error) {
	res, err := exactSearch(ds, t, searchOptions{allowFresh: false})
	if err != nil {
		return nil, 0, err
	}
	return res.update, res.cost, nil
}

// ExactMixed computes an optimal mixed repair (Section 5): every tuple
// may be deleted at cost deleteFactor · weight, or have cells updated
// at cost weight per cell (fresh constants allowed). The result lists
// the deleted tuples and the updated survivors. With deleteFactor ≥
// arity, deletions never help; with deleteFactor ≤ 1, updates of more
// than one cell never beat deletion.
func ExactMixed(ds *fd.Set, t *table.Table, deleteFactor float64) (*table.Table, map[int]bool, float64, error) {
	if deleteFactor <= 0 {
		return nil, nil, 0, fmt.Errorf("urepair: deleteFactor must be positive, got %v", deleteFactor)
	}
	res, err := exactSearch(ds, t, searchOptions{
		allowFresh:   true,
		deleteFactor: deleteFactor,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return res.update, res.deleted, res.cost, nil
}

// exactSearch is the shared exhaustive branch and bound.
func exactSearch(ds *fd.Set, t *table.Table, opts searchOptions) (searchResult, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return searchResult{}, fmt.Errorf("urepair: FD set and table have different schemas")
	}
	k := t.Schema().Arity()
	n := t.Len()
	if n == 0 {
		return searchResult{update: t.Clone(), deleted: map[int]bool{}, cost: 0}, nil
	}
	if n > maxExactRows || k > maxExactArity {
		return searchResult{}, fmt.Errorf("urepair: exact search limited to %d rows × %d attributes",
			maxExactRows, maxExactArity)
	}
	// Active domain per attribute.
	domains := make([][]table.Value, k)
	for a := 0; a < k; a++ {
		seen := map[table.Value]bool{}
		for _, r := range t.Rows() {
			v := r.Tuple[a]
			if !seen[v] {
				seen[v] = true
				domains[a] = append(domains[a], v)
			}
		}
		if len(domains[a]) > maxExactDomain {
			return searchResult{}, fmt.Errorf("urepair: exact search limited to active domains of %d values", maxExactDomain)
		}
	}
	// Fresh constants per attribute, named deterministically.
	freshVals := make([][]table.Value, k)
	for a := 0; a < k; a++ {
		for i := 0; i < n; i++ {
			freshVals[a] = append(freshVals[a], fmt.Sprintf("\x00⊥x%d_%d", a, i))
		}
	}

	rows := t.Rows()
	var best *table.Table
	bestDeleted := map[int]bool{}
	bestCost := upperBoundSeed(t, opts)
	if opts.incumbent != nil {
		best = opts.incumbent
		bestCost = table.DistUpd(opts.incumbent, t)
		for id := range opts.incumbentDeleted {
			bestDeleted[id] = true
		}
	}

	cur := make([]table.Tuple, n)
	curDeleted := make([]bool, n)
	for i, r := range rows {
		cur[i] = r.Tuple.Clone()
	}
	fds := ds.Canonical().FDs()

	// Dictionary-encode candidate values per attribute so the inner
	// consistency check compares int32 codes instead of building
	// length-prefixed string keys at every search node. Every value a
	// cell can take (originals, active domain, fresh constants) gets a
	// code on first sight; curCode mirrors cur.
	valCode := make([]map[table.Value]int32, k)
	for a := 0; a < k; a++ {
		valCode[a] = make(map[table.Value]int32, len(domains[a])+n)
	}
	codeOf := func(a int, v table.Value) int32 {
		m := valCode[a]
		c, ok := m[v]
		if !ok {
			c = int32(len(m))
			m[v] = c
		}
		return c
	}
	curCode := make([][]int32, n)
	for i := range cur {
		curCode[i] = make([]int32, k)
		for a := 0; a < k; a++ {
			curCode[i][a] = codeOf(a, cur[i][a])
		}
	}
	setCell := func(i, a int, v table.Value) {
		cur[i][a] = v
		curCode[i][a] = codeOf(a, v)
	}
	lhsPos := make([][]int, len(fds))
	rhsPos := make([][]int, len(fds))
	for fi, f := range fds {
		lhsPos[fi] = f.LHS.Positions()
		rhsPos[fi] = f.RHS.Positions()
	}
	agreeOn := func(i, j int, pos []int) bool {
		ci, cj := curCode[i], curCode[j]
		for _, a := range pos {
			if ci[a] != cj[a] {
				return false
			}
		}
		return true
	}
	consistentPrefix := func(upto int) bool {
		if curDeleted[upto] {
			return true
		}
		for fi := range fds {
			for j := 0; j < upto; j++ {
				if curDeleted[j] {
					continue
				}
				if agreeOn(upto, j, lhsPos[fi]) && !agreeOn(upto, j, rhsPos[fi]) {
					return false
				}
			}
		}
		return true
	}

	record := func(cost float64) {
		u := t.Clone()
		deleted := map[int]bool{}
		for j, r := range rows {
			if curDeleted[j] {
				deleted[r.ID] = true
				continue
			}
			for a := 0; a < k; a++ {
				if cur[j][a] != r.Tuple[a] {
					u.SetCellInPlace(r.ID, a, cur[j][a])
				}
			}
		}
		best, bestDeleted, bestCost = u, deleted, cost
	}

	usedFresh := make([]int, k)
	var assignRow func(i int, cost float64)
	var assignCell func(i, a int, cost float64)

	assignCell = func(i, a int, cost float64) {
		if cost >= bestCost-1e-12 {
			return
		}
		if a == k {
			if !consistentPrefix(i) {
				return
			}
			assignRow(i+1, cost)
			return
		}
		orig := rows[i].Tuple[a]
		w := rows[i].Weight
		// Keep the original value first (cheapest).
		setCell(i, a, orig)
		assignCell(i, a+1, cost)
		// Other active-domain values.
		for _, v := range domains[a] {
			if v == orig {
				continue
			}
			setCell(i, a, v)
			assignCell(i, a+1, cost+w)
		}
		// Fresh constants: every already-used index plus the first unused
		// one (higher indices are symmetric).
		if opts.allowFresh {
			for fi := 0; fi <= usedFresh[a] && fi < n; fi++ {
				setCell(i, a, freshVals[a][fi])
				if fi == usedFresh[a] {
					usedFresh[a]++
					assignCell(i, a+1, cost+w)
					usedFresh[a]--
				} else {
					assignCell(i, a+1, cost+w)
				}
			}
		}
		setCell(i, a, orig)
	}

	assignRow = func(i int, cost float64) {
		if cost >= bestCost-1e-12 {
			return
		}
		if i == n {
			record(cost)
			return
		}
		assignCell(i, 0, cost)
		if opts.deleteFactor > 0 {
			curDeleted[i] = true
			dcost := cost + opts.deleteFactor*rows[i].Weight
			if dcost < bestCost-1e-12 {
				assignRow(i+1, dcost)
			}
			curDeleted[i] = false
		}
	}
	assignRow(0, 0)

	if best == nil {
		return searchResult{}, fmt.Errorf("urepair: internal error: search found no repair")
	}
	// Verify the survivors satisfy Δ (zero-copy view; no materialization).
	var keepIDs []int
	for _, r := range best.Rows() {
		if !bestDeleted[r.ID] {
			keepIDs = append(keepIDs, r.ID)
		}
	}
	survivors, err := table.ViewOfIDs(best, keepIDs)
	if err != nil || !survivors.Satisfies(ds) {
		return searchResult{}, fmt.Errorf("urepair: internal error: search produced an inconsistent repair")
	}
	return searchResult{update: best, deleted: bestDeleted, cost: bestCost}, nil
}

// upperBoundSeed provides a safe initial bound when no incumbent is
// supplied: unify every tuple with the first one (active-domain only),
// which is always a consistent update; in mixed mode, deleting all but
// one tuple is also valid.
func upperBoundSeed(t *table.Table, opts searchOptions) float64 {
	if t.Len() == 0 {
		return 1e-9
	}
	rows := t.Rows()
	first := rows[0]
	unify := 0.0
	for _, r := range rows[1:] {
		unify += r.Weight * float64(r.Tuple.Hamming(first.Tuple))
	}
	bound := unify + 1
	if opts.deleteFactor > 0 {
		del := 0.0
		for _, r := range rows[1:] {
			del += opts.deleteFactor * r.Weight
		}
		if del+1 < bound {
			bound = del + 1
		}
	}
	return bound
}
