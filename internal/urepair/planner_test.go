package urepair

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestPlannerMethodStrings: the reported method names reflect the cases
// actually used.
func TestPlannerMethodStrings(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	cases := []struct {
		specs []string
		want  string
	}{
		{[]string{"A -> B"}, "common-lhs"},
		{[]string{"A -> B", "B -> A"}, "key-swap"},
		{[]string{"-> C"}, "consensus-majority"},
		{[]string{"A -> B", "B -> C"}, "approx"},
	}
	rng := rand.New(rand.NewSource(141))
	for _, c := range cases {
		// Use a table guaranteed to violate (random small domain).
		tab := workload.RandomTable(sc, 8, 2, rng)
		res, err := Repair(fd.MustParseSet(sc, c.specs...), tab)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Method, c.want) {
			t.Errorf("%v: method = %q, want containing %q", c.specs, res.Method, c.want)
		}
	}
}

// TestPlannerMixedComposition: consensus + two disjoint components, all
// exact, with additive costs.
func TestPlannerMixedComposition(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D", "E")
	// ∅→E (consensus), A→B (component 1), C→D (component 2).
	ds := fd.MustParseSet(sc, "-> E", "A -> B", "C -> D")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "x", "c", "p", "e1"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "y", "c", "q", "e1"}, 1) // B and D conflicts
	tab.MustInsert(3, table.Tuple{"b", "z", "d", "r", "e2"}, 1) // E conflict
	res, err := Repair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("composition should be exact, method %s", res.Method)
	}
	// Costs: E majority (1 cell), A→B (1 cell), C→D (1 cell) = 3.
	if !table.WeightEq(res.Cost, 3) {
		t.Fatalf("cost = %v, want 3 (method %s)", res.Cost, res.Method)
	}
	for _, want := range []string{"consensus-majority", "common-lhs"} {
		if !strings.Contains(res.Method, want) {
			t.Errorf("method %q missing %q", res.Method, want)
		}
	}
}

// TestPlannerUntouchedAttributes: attributes outside attr(Δ) are never
// modified by any planner path.
func TestPlannerUntouchedAttributes(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> A"),
		fd.MustParseSet(sc, "-> B"),
	}
	rng := rand.New(rand.NewSource(143))
	cIdx, _ := sc.AttrIndex("C")
	for _, ds := range sets {
		if ds.AttrsUsed().Contains(cIdx) {
			t.Fatal("fixture bug: C must be outside attr(Δ)")
		}
		for iter := 0; iter < 6; iter++ {
			tab := workload.RandomTable(sc, 6, 2, rng)
			res, err := Repair(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Update.Rows() {
				orig, _ := tab.Row(r.ID)
				if r.Tuple[cIdx] != orig.Tuple[cIdx] {
					t.Fatalf("%v: attribute C modified", ds)
				}
			}
		}
	}
}

// TestSubsetToUpdateMultiAttrCover: the Prop 4.4 construction with a
// two-attribute cover charges two cells per deleted tuple.
func TestSubsetToUpdateMultiAttrCover(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> C", "B -> C")
	cover, size, ok := ds.MinLHSCover()
	if !ok || size != 2 {
		t.Fatalf("cover = %v (%d)", cover, size)
	}
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "b", "c1"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "b", "c2"}, 2)
	s := tab.MustSubsetByIDs([]int{2})
	u := SubsetToUpdate(tab, s, cover)
	if !u.Satisfies(ds) {
		t.Fatal("construction inconsistent")
	}
	if got := table.DistUpd(u, tab); !table.WeightEq(got, 2) { // 2 cells × weight 1
		t.Fatalf("dist = %v, want 2", got)
	}
}

// TestRepairIdempotent: repairing an already-consistent table costs 0
// and changes nothing, on every planner path.
func TestRepairIdempotent(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> A"),
		fd.MustParseSet(sc, "A -> B", "B -> C"),
		fd.MustParseSet(sc, "-> A"),
	}
	for _, ds := range sets {
		tab := table.New(sc)
		tab.MustInsert(1, table.Tuple{"a", "x", "0"}, 1)
		tab.MustInsert(2, table.Tuple{"a", "x", "0"}, 1)
		if !tab.Satisfies(ds) {
			t.Fatalf("fixture inconsistent for %v", ds)
		}
		res, err := Repair(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != 0 {
			t.Fatalf("%v: consistent table repaired at cost %v", ds, res.Cost)
		}
		for _, r := range res.Update.Rows() {
			orig, _ := tab.Row(r.ID)
			if !r.Tuple.Equal(orig.Tuple) {
				t.Fatalf("%v: consistent table modified", ds)
			}
		}
	}
}
