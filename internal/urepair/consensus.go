package urepair

import (
	"repro/internal/schema"
	"repro/internal/table"
)

// consensusRepairInto repairs the consensus FD ∅ → C optimally by the
// weighted-majority rule of Proposition B.2, applied per attribute
// (Theorem 4.1 splits ∅ → C into attribute-disjoint singletons): for
// each consensus attribute, the value kept is the one carried by the
// maximum total weight of tuples; every other tuple has that cell
// overwritten. Mutates u in place and returns the added dist_upd and
// whether anything changed.
func consensusRepairInto(u, t *table.Table, consensus schema.AttrSet) (cost float64, changed bool) {
	for _, a := range consensus.Positions() {
		attr := schema.Singleton(a)
		groups := t.GroupBy(attr)
		if len(groups) <= 1 {
			continue // already agreeing on this attribute
		}
		best := 0
		bestW := groupWeight(t, groups[0].IDs)
		for i := 1; i < len(groups); i++ {
			if w := groupWeight(t, groups[i].IDs); w > bestW {
				best, bestW = i, w
			}
		}
		first, _ := t.Row(groups[best].IDs[0])
		keep := first.Tuple[a]
		for gi, g := range groups {
			if gi == best {
				continue
			}
			for _, id := range g.IDs {
				u.SetCellInPlace(id, a, keep)
				cost += t.Weight(id)
				changed = true
			}
		}
	}
	return cost, changed
}

func groupWeight(t *table.Table, ids []int) float64 {
	var w float64
	for _, id := range ids {
		w += t.Weight(id)
	}
	return w
}
