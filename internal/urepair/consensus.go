package urepair

import (
	"repro/internal/schema"
	"repro/internal/table"
)

// consensusRepairInto repairs the consensus FD ∅ → C optimally by the
// weighted-majority rule of Proposition B.2, applied per attribute
// (Theorem 4.1 splits ∅ → C into attribute-disjoint singletons): for
// each consensus attribute, the value kept is the one carried by the
// maximum total weight of tuples; every other tuple has that cell
// overwritten. One pass per attribute over the dictionary codes (codes
// are assigned by first appearance, so ties break to the first-seen
// value, as before). Mutates u in place and returns the added dist_upd
// and whether anything changed.
func consensusRepairInto(u, t *table.Table, consensus schema.AttrSet) (cost float64, changed bool) {
	rows := t.Rows()
	for _, a := range consensus.Positions() {
		codes, ngroups := t.ProjectionCodes(schema.Singleton(a))
		if ngroups <= 1 {
			continue // already agreeing on this attribute
		}
		wsum := make([]float64, ngroups)
		for ri, r := range rows {
			wsum[codes[ri]] += r.Weight
		}
		best := int32(0)
		for c := int32(1); c < int32(ngroups); c++ {
			if wsum[c] > wsum[best] {
				best = c
			}
		}
		var keep table.Value
		for ri := range rows {
			if codes[ri] == best {
				keep = rows[ri].Tuple[a]
				break
			}
		}
		for ri, r := range rows {
			if codes[ri] != best {
				u.SetCellInPlace(r.ID, a, keep)
				cost += r.Weight
				changed = true
			}
		}
	}
	return cost, changed
}
