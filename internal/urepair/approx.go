package urepair

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
)

// approxComponent computes the combined approximation of Section 4.4 on
// a consensus-free component: run the 2·mlc(Δ) approximation of
// Theorem 4.12 and the KL-style heuristic, keep the cheaper update.
// The guaranteed ratio is the 2·mlc bound (the heuristic can only
// improve the incumbent).
func approxComponent(c *solve.Ctx, comp *fd.Set, t *table.Table) (Result, error) {
	u1, ratio, err := approx2MLCCtx(c, comp, t)
	if err != nil {
		return Result{}, err
	}
	cost1 := table.DistUpd(u1, t)
	best, bestCost := u1, cost1
	method := fmt.Sprintf("approx-2mlc (ratio ≤ %g)", ratio)

	if err := c.Err(); err != nil {
		return Result{}, err
	}
	if u2, ok := KLHeuristic(comp, t); ok {
		if cost2 := table.DistUpd(u2, t); table.WeightLess(cost2, bestCost) {
			best, bestCost = u2, cost2
			method = fmt.Sprintf("approx-kl (guaranteed ratio ≤ %g from 2mlc run)", ratio)
		}
	}
	return Result{
		Update:     best,
		Cost:       bestCost,
		Exact:      false,
		RatioBound: ratio,
		Method:     method,
	}, nil
}

// Approx2MLC is Theorem 4.12: a (2·mlc(Δ))-optimal U-repair for a
// consensus-free FD set, obtained by composing the 2-approximate
// S-repair of Proposition 3.3 with the subset→update construction of
// Proposition 4.4. Returns the update and the guaranteed ratio.
func Approx2MLC(ds *fd.Set, t *table.Table) (*table.Table, float64) {
	u, ratio, err := approx2MLCCtx(solve.Default(), ds, t)
	if err != nil {
		panic(err) // the default context is non-cancellable
	}
	return u, ratio
}

// approx2MLCCtx is Approx2MLC under a solve context; the only error it
// can return is the context's cancellation error.
func approx2MLCCtx(c *solve.Ctx, ds *fd.Set, t *table.Table) (*table.Table, float64, error) {
	cover, size, ok := ds.MinLHSCover()
	if !ok {
		panic("urepair: Approx2MLC requires a consensus-free FD set")
	}
	s, err := srepair.Approx2Ctx(c, ds, t)
	if err != nil {
		if cerr := c.Err(); cerr != nil {
			return nil, 0, cerr
		}
		panic(err) // Approx2 fails only on schema mismatch, checked upstream
	}
	return SubsetToUpdate(t, s, cover), 2 * float64(size), nil
}

// klPassBudgetFactor bounds the number of majority-chase passes.
const klPassBudgetFactor = 3

// KLHeuristic is a Kolahi–Lakshmanan-style update heuristic
// (substitution documented in DESIGN.md §4): it repeatedly resolves
// each violated FD X → Y by overwriting, within every X-group, the
// disagreeing right-hand sides with the group's weighted-majority
// value; if the chase does not converge it falls back to freshening
// the lhs-cover cells of every still-conflicting tuple (the
// Proposition 4.4 construction), which always restores consistency.
// Returns ok=false only for FD sets with consensus FDs.
func KLHeuristic(ds *fd.Set, t *table.Table) (*table.Table, bool) {
	cover, _, ok := ds.MinLHSCover()
	if !ok {
		return nil, false
	}
	can := ds.Canonical()
	u := t.Clone()
	passes := klPassBudgetFactor*can.Len() + 5
	for p := 0; p < passes && !u.Satisfies(can); p++ {
		for _, f := range can.FDs() {
			a := f.RHS.First()
			for _, g := range u.GroupBy(f.LHS) {
				if len(g.IDs) < 2 {
					continue
				}
				// Weighted majority of the rhs value within the group.
				weightOf := map[string]float64{}
				order := []string{}
				for _, id := range g.IDs {
					r, _ := u.Row(id)
					v := r.Tuple[a]
					if _, seen := weightOf[v]; !seen {
						order = append(order, v)
					}
					weightOf[v] += t.Weight(id)
				}
				if len(order) < 2 {
					continue
				}
				best := order[0]
				for _, v := range order[1:] {
					if weightOf[v] > weightOf[best] {
						best = v
					}
				}
				for _, id := range g.IDs {
					if r, _ := u.Row(id); r.Tuple[a] != best {
						u.SetCellInPlace(id, a, best)
					}
				}
			}
		}
	}
	if !u.Satisfies(can) {
		// Fallback: freshen the cover cells of every tuple that still
		// participates in a violation; afterwards conflicting pairs
		// cannot agree on any lhs, so the table is consistent.
		dirty := map[int]bool{}
		for _, v := range u.Violations(can, 0) {
			dirty[v.ID1] = true
			dirty[v.ID2] = true
		}
		for _, r := range u.Rows() {
			if !dirty[r.ID] {
				continue
			}
			for _, a := range cover.Positions() {
				u.SetCellInPlace(r.ID, a, u.Fresh())
			}
		}
	}
	if !u.Satisfies(ds) {
		return nil, false
	}
	return u, true
}
