// Package urepair implements the paper's algorithms for optimal update
// repairs (optimal U-repairs, Section 4):
//
//   - a planner (Repair) that composes the paper's exact cases —
//     consensus elimination (Theorem 4.3, Proposition B.2),
//     attribute-disjoint decomposition (Theorem 4.1), common-lhs FD sets
//     via S-repairs (Corollary 4.6), chain FD sets (Corollary 4.8) and
//     the key-swap set {A→B, B→A} (Proposition 4.9) — and falls back to
//     approximation on components it cannot solve exactly;
//   - the 2·mlc(Δ)-approximation of Theorem 4.12 built from
//     Proposition 4.4's subset↔update transfer constructions;
//   - a Kolahi–Lakshmanan-style heuristic (majority rhs chase with a
//     core freshening fallback) used in the combined approximation of
//     Section 4.4;
//   - an exponential exact baseline for tiny instances (validation).
package urepair

import (
	"fmt"
	"strings"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
)

// Result is the outcome of a U-repair computation.
type Result struct {
	// Update is a consistent update of the input table.
	Update *table.Table
	// Cost is dist_upd(Update, T).
	Cost float64
	// Exact reports whether Update is provably an optimal U-repair.
	Exact bool
	// RatioBound is the guaranteed approximation ratio (1 when Exact).
	RatioBound float64
	// Method describes how the repair was obtained.
	Method string
}

// Repair computes a U-repair of t under ds: exact whenever the FD set
// falls into one of the paper's tractable cases (after consensus
// elimination and attribute-disjoint decomposition), and the best of
// the 2·mlc approximation and the KL-style heuristic otherwise. The
// result is always a consistent update. Runs on the process-default
// solve context; see RepairCtx.
func Repair(ds *fd.Set, t *table.Table) (Result, error) {
	return RepairCtx(solve.Default(), ds, t)
}

// RepairCtx is Repair under an explicit solve context: the S-repair
// solves inside the planner (key swap, common lhs, 2-approximation)
// inherit c's worker budget and arenas, and cancellation is honored
// between planner phases and inside the solves.
func RepairCtx(c *solve.Ctx, ds *fd.Set, t *table.Table) (Result, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return Result{}, fmt.Errorf("urepair: FD set and table have different schemas")
	}
	res, err := repairFull(c, ds, t)
	if err != nil {
		return Result{}, err
	}
	if !res.Update.Satisfies(ds) {
		return Result{}, fmt.Errorf("urepair: internal error: produced an inconsistent update")
	}
	return res, nil
}

// repairFull handles consensus elimination (Theorem 4.3) and then
// decomposes into attribute-disjoint components (Theorem 4.1).
// Components are independent — they touch disjoint attribute sets and
// only read the input table — so they become tasks on the solve
// context's work-stealing scheduler, alongside the S-repair blocks the
// component solves spawn internally. Their cell changes are merged
// serially in component index order after the join, which (together
// with index-ordered cost summation) keeps the result byte-identical
// to the serial planner at any worker count.
func repairFull(c *solve.Ctx, ds *fd.Set, t *table.Table) (Result, error) {
	// One solve = one scope (the inner S-repair solves run over the same
	// table, so their nested BeginSolve records the same shape).
	c = c.BeginSolve()
	// Clamp the estimate to the row count: dictionaries of incrementally
	// mutated tables retain vanished values, so the raw estimate can
	// exceed any projection's live distinct count. Ingested tables
	// refine the bound with their full-tuple cardinality sketch and
	// supply their sketch set as the per-projection cardinality source
	// (see srepair.OptSRepairCtx).
	codes := t.DistinctEstimate()
	if full, ok := t.SketchCardinality(t.Schema().AllAttrs()); ok && full > codes {
		codes = full
	}
	if codes > t.Len() {
		codes = t.Len()
	}
	h := solve.Hints{Rows: t.Len(), Codes: codes}
	if cs := t.CardSource(); cs != nil {
		h.Cards = cs
	}
	c.SetHints(h)
	u := t.Clone()
	var cost float64
	exact := true
	ratio := 1.0
	var methods []string

	consensus := ds.ConsensusAttrs()
	if !consensus.IsEmpty() {
		cc, changed := consensusRepairInto(u, t, consensus)
		cost += cc
		if changed {
			methods = append(methods, "consensus-majority")
			c.Stats().PlannerConsensusApplied()
		}
	}
	rest := ds.Minus(consensus)
	comps := rest.Components()
	// Every Result holds a full-table update, so peak memory is one
	// clone per component until the merge; components have pairwise
	// disjoint attribute sets, so their count is bounded by the schema
	// arity, not the data.
	results := make([]Result, len(comps))
	err := c.ForEachBlock(len(comps),
		// Every component scans the full table, so its cost scales with
		// the row count regardless of its FD count.
		func(int) int { return t.Len() },
		func(wc *solve.Ctx, i int) error {
			r, err := repairComponent(wc, comps[i], t)
			if err != nil {
				return err
			}
			results[i] = r
			return nil
		})
	if err != nil {
		return Result{}, err
	}
	for i, comp := range comps {
		// The merge scans every changed row of a component per
		// iteration; honor cancellation between components.
		if err := c.Err(); err != nil {
			return Result{}, err
		}
		r := results[i]
		// Merge the component's cell changes (its attributes are disjoint
		// from every other component and from the consensus attributes).
		attrs := comp.AttrsUsed()
		for _, row := range r.Update.Rows() {
			orig, _ := t.Row(row.ID)
			for _, a := range attrs.Positions() {
				if row.Tuple[a] != orig.Tuple[a] {
					u.SetCellInPlace(row.ID, a, row.Tuple[a])
				}
			}
		}
		cost += r.Cost
		exact = exact && r.Exact
		if r.RatioBound > ratio {
			ratio = r.RatioBound
		}
		methods = append(methods, r.Method)
	}
	if len(methods) == 0 {
		methods = append(methods, "trivial")
	}
	return Result{
		Update:     u,
		Cost:       cost,
		Exact:      exact,
		RatioBound: ratio,
		Method:     strings.Join(methods, " + "),
	}, nil
}

// repairComponent solves one consensus-free, attribute-connected
// component of the FD set against the full table, recording which
// subroutine won (and the component's FD count) in the solve stats.
func repairComponent(c *solve.Ctx, comp *fd.Set, t *table.Table) (Result, error) {
	if comp.IsTrivialSet() {
		c.Stats().Planner(solve.PlannerPathTrivial, comp.Len())
		return Result{Update: t.Clone(), Exact: true, RatioBound: 1, Method: "trivial"}, nil
	}
	if isKeySwap(comp) {
		r, ok, err := keySwapRepair(c, comp, t)
		if err != nil {
			return Result{}, err
		}
		if ok {
			c.Stats().Planner(solve.PlannerPathKeySwap, comp.Len())
			return r, nil
		}
	}
	if !comp.CommonLHS().IsEmpty() && srepair.OSRSucceeds(comp) {
		r, ok, err := commonLHSRepair(c, comp, t)
		if err != nil {
			return Result{}, err
		}
		if ok {
			c.Stats().Planner(solve.PlannerPathCommonLHS, comp.Len())
			return r, nil
		}
	}
	r, err := approxComponent(c, comp, t)
	if err == nil {
		c.Stats().Planner(solve.PlannerPathApprox, comp.Len())
	}
	return r, err
}

// commonLHSRepair implements Corollary 4.6 for sets with a common lhs
// (mlc = 1) on the tractable side of the S-repair dichotomy: an optimal
// S-repair transfers to an optimal U-repair with identical cost.
func commonLHSRepair(c *solve.Ctx, comp *fd.Set, t *table.Table) (Result, bool, error) {
	s, err := srepair.OptSRepairCtx(c, comp, t)
	if err != nil {
		if cerr := c.Err(); cerr != nil {
			return Result{}, false, cerr
		}
		return Result{}, false, nil
	}
	cover := schema.Singleton(comp.CommonLHS().First())
	u := SubsetToUpdate(t, s, cover)
	return Result{
		Update:     u,
		Cost:       table.DistSub(s, t),
		Exact:      true,
		RatioBound: 1,
		Method:     "common-lhs (Cor 4.6 via OptSRepair)",
	}, true, nil
}

// UpdateToSubset is Proposition 4.4 (1): from a consistent update u of
// t, build a consistent subset by deleting every modified tuple. Its
// dist_sub never exceeds dist_upd(u, t).
func UpdateToSubset(t, u *table.Table) *table.Table {
	var keep []int
	for _, r := range t.Rows() {
		ur, _ := u.Row(r.ID)
		if r.Tuple.Equal(ur.Tuple) {
			keep = append(keep, r.ID)
		}
	}
	return t.MustSubsetByIDs(keep)
}

// SubsetToUpdate is Proposition 4.4 (2): from a consistent subset s of
// t and an lhs cover of the (consensus-free) FD set, build a consistent
// update by overwriting, in every deleted tuple, each cover attribute
// with a fresh constant. dist_upd ≤ |cover| · dist_sub(s, t).
func SubsetToUpdate(t, s *table.Table, cover schema.AttrSet) *table.Table {
	u := t.Clone()
	for _, r := range t.Rows() {
		if s.Has(r.ID) {
			continue
		}
		for _, a := range cover.Positions() {
			u.SetCellInPlace(r.ID, a, u.Fresh())
		}
	}
	return u
}
