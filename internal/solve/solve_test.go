package solve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersClamp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {16, 16}} {
		if got := New(tc.in, nil, nil).Workers(); got != tc.want {
			t.Fatalf("New(%d).Workers() = %d, want %d", tc.in, got, tc.want)
		}
	}
	var nilCtx *Ctx
	if got := nilCtx.Workers(); got != 1 {
		t.Fatalf("nil ctx workers = %d", got)
	}
}

func TestErrCancellation(t *testing.T) {
	if err := New(1, nil, nil).Err(); err != nil {
		t.Fatalf("non-cancellable ctx Err = %v", err)
	}
	var nilCtx *Ctx
	if err := nilCtx.Err(); err != nil {
		t.Fatalf("nil ctx Err = %v", err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	c := New(1, cctx, nil)
	if err := c.Err(); err != nil {
		t.Fatalf("live ctx Err = %v", err)
	}
	cancel()
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx Err = %v", err)
	}
}

func TestForEachBlockSerialAndParallel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := New(workers, nil, nil)
		n := 200
		out := make([]int, n)
		err := c.ForEachBlock(n, func(i int) int { return i }, func(_ *Ctx, i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: block %d = %d", workers, i, v)
			}
		}
	}
}

func TestForEachBlockFirstErrorByIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		c := New(workers, nil, nil)
		var ran atomic.Int64
		err := c.ForEachBlock(50, func(i int) int { return 1000 }, func(_ *Ctx, i int) error {
			ran.Add(1)
			if i == 7 || i == 31 {
				return fmt.Errorf("block %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "block 7 failed" {
			t.Fatalf("workers=%d: err = %v, want block 7 (first by index)", workers, err)
		}
		if workers == 1 {
			// The serial path stops at the first failure.
			if ran.Load() != 8 {
				t.Fatalf("serial: ran %d blocks, want 8", ran.Load())
			}
		} else if ran.Load() != 50 {
			// The parallel path drains every block before reporting.
			t.Fatalf("parallel: all blocks must run to completion, got %d", ran.Load())
		}
	}
}

func TestForEachBlockCancelFailsFast(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(4, cctx, nil)
	ran := false
	err := c.ForEachBlock(10, func(int) int { return 1 }, func(*Ctx, int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("blocks ran despite cancelled context")
	}
}

func TestArenaReuseAndStats(t *testing.T) {
	st := new(Stats)
	c := New(1, nil, st)
	s := c.Int32s(100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	if st.ArenaMisses.Load() == 0 {
		t.Fatal("first Get must be a miss")
	}
	c.PutInt32s(s)
	// sync.Pool is allowed to drop a Put (and does so randomly under
	// the race detector), so assert reuse over a few Put/Get cycles —
	// re-seeding a large buffer each round — rather than on a single
	// pair.
	hit := false
	for i := 0; i < 20 && !hit; i++ {
		hit = cap(c.Int32s(64)) >= 100 && st.ArenaHits.Load() > 0
		c.PutInt32s(make([]int32, 128))
	}
	if !hit {
		t.Fatal("pooled slice never reused across 20 Put/Get cycles")
	}
	// Requesting more than the pooled capacity falls back to a fresh
	// allocation (counted as a miss, not a failure).
	big := c.Int32s(1 << 12)
	if len(big) != 1<<12 {
		t.Fatalf("len = %d", len(big))
	}

	hit = false
	c.PutFloat64s(c.Float64s(10))
	for i := 0; i < 20 && !hit; i++ {
		hit = cap(c.Float64s(5)) >= 10
		c.PutFloat64s(make([]float64, 16))
	}
	if !hit {
		t.Fatal("float64 pool never reused across 20 Put/Get cycles")
	}

	g := c.Int32Slices(5)
	g[3] = []int32{1, 2}
	c.PutInt32Slices(g)
	g2 := c.Int32Slices(4)
	for i, e := range g2 {
		if e != nil {
			t.Fatalf("recycled entry %d not cleared: %v", i, e)
		}
	}
}

func TestArenaNilCtxSafe(t *testing.T) {
	var c *Ctx
	if s := c.Int32s(4); len(s) != 4 {
		t.Fatal("nil ctx Int32s")
	}
	c.PutInt32s(nil)
	c.PutFloat64s(nil)
	c.PutInt32Slices(nil)
	if v := c.GetScratch("k"); v != nil {
		t.Fatal("nil ctx GetScratch")
	}
	c.PutScratch("k", 1)
	if err := c.ForEachBlock(3, func(int) int { return 1 }, func(*Ctx, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestSerialCancelBetweenBlocks: the serial path checks cancellation
// at every block boundary (the same dispatch check the scheduler
// performs), so a deadline stops a serial fan-out even when the block
// bodies carry no internal check.
func TestSerialCancelBetweenBlocks(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	c := New(1, cctx, nil)
	var ran []int
	err := c.ForEachBlock(3, func(int) int { return 1 }, func(_ *Ctx, i int) error {
		ran = append(ran, i)
		cancel() // fires mid-fan-out; later blocks must not run
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ran) != 1 || ran[0] != 0 {
		t.Fatalf("blocks ran after cancellation: %v", ran)
	}
}

// TestScopeIsolatesHints pins the sticky-hints bugfix at the solve
// layer: hints recorded inside one solve scope are invisible to sibling
// and later scopes, so a solver that once saw a huge table no longer
// pre-sizes every later small solve at that table's shape. Within one
// scope the atomic-max behavior is retained (nested entry points).
func TestScopeIsolatesHints(t *testing.T) {
	c := New(1, nil, nil)
	big := c.BeginSolve()
	big.SetHints(Hints{Rows: 102400, Codes: 50000})
	if h := big.Hints(); h.Rows != 102400 {
		t.Fatalf("big scope hints = %+v", h)
	}
	// The root ctx and a later solve scope must not see the big solve.
	if h := c.Hints(); h.Rows != 0 || h.Codes != 0 {
		t.Fatalf("hints leaked to the root ctx: %+v", h)
	}
	small := c.BeginSolve()
	if h := small.Hints(); h.Rows != 0 || h.Codes != 0 {
		t.Fatalf("hints leaked across scopes: %+v", h)
	}
	small.SetHints(Hints{Rows: 10, Codes: 4})
	if h := small.Hints(); h.Rows != 10 || h.Codes != 4 {
		t.Fatalf("small scope hints = %+v", h)
	}
	if h := big.Hints(); h.Rows != 102400 {
		t.Fatalf("sibling scope clobbered: %+v", h)
	}
	// Nil safety.
	var nilCtx *Ctx
	if nilCtx.BeginSolve() != nil {
		t.Fatal("nil ctx BeginSolve")
	}
	if nilCtx.Scoped(nil, nil) != nil {
		t.Fatal("nil ctx Scoped")
	}
}

// TestScopedCancellationAndStats: a Scoped ctx carries its own
// cancellation and stats sink; the parent ctx is unaffected, and a
// cancelled request does not cancel its siblings.
func TestScopedCancellationAndStats(t *testing.T) {
	base := New(4, nil, nil)
	cctx, cancel := context.WithCancel(context.Background())
	st := new(Stats)
	req := base.Scoped(cctx, st)
	if err := req.Err(); err != nil {
		t.Fatalf("live request Err = %v", err)
	}
	if req.Stats() != st {
		t.Fatal("scoped stats sink not honored")
	}
	sibling := base.Scoped(context.Background(), nil)
	cancel()
	if err := req.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request Err = %v", err)
	}
	if err := sibling.Err(); err != nil {
		t.Fatalf("sibling poisoned by cancelled request: %v", err)
	}
	if err := base.Err(); err != nil {
		t.Fatalf("parent poisoned by cancelled request: %v", err)
	}
	// A cancelled request's fan-out fails fast; a sibling's proceeds,
	// and each fan-out's counters land in its own scope's sink.
	if err := req.ForEachBlock(4, func(int) int { return 1000 }, func(*Ctx, int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request fan-out = %v", err)
	}
	if err := sibling.ForEachBlock(4, func(int) int { return 1000 }, func(*Ctx, int) error { return nil }); err != nil {
		t.Fatalf("sibling fan-out = %v", err)
	}
	snap := st.Snapshot()
	if snap.BlocksSerial+snap.BlocksParallel != 0 {
		t.Fatalf("cancelled request ran blocks: %+v", snap)
	}
}

// TestInterleavedScopesOnOneScheduler runs many concurrent requests —
// each under its own scope with its own hints and stats — over one
// shared scheduler, and checks that every request's counters land in
// its own sink and its hints stay its own. This is the admission shape
// SolveBatch uses.
func TestInterleavedScopesOnOneScheduler(t *testing.T) {
	base := New(4, nil, nil)
	const requests = 16
	var wg sync.WaitGroup
	errs := make([]error, requests)
	stats := make([]*Stats, requests)
	for r := 0; r < requests; r++ {
		r := r
		stats[r] = new(Stats)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := base.Scoped(context.Background(), stats[r])
			c.SetHints(Hints{Rows: 100 * (r + 1)})
			blocks := 3 + r%4
			err := c.ForEachBlock(blocks, func(int) int { return 1000 }, func(wc *Ctx, i int) error {
				// The worker-bound ctx handed to the block must carry the
				// request's scope, not a neighbor's.
				if h := wc.Hints(); h.Rows != 100*(r+1) {
					return fmt.Errorf("request %d block %d sees hints %+v", r, i, h)
				}
				return nil
			})
			errs[r] = err
			if err == nil {
				snap := stats[r].Snapshot()
				if got := snap.BlocksSerial + snap.BlocksParallel; got != int64(blocks) {
					errs[r] = fmt.Errorf("request %d counted %d blocks, want %d", r, got, blocks)
				}
			}
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
	}
}

func TestHintsAtomicMaxAndNilSafety(t *testing.T) {
	var nilCtx *Ctx
	nilCtx.SetHints(Hints{Rows: 10, Codes: 10})
	if h := nilCtx.Hints(); h.Rows != 0 || h.Codes != 0 || h.Cards != nil {
		t.Fatalf("nil ctx hints = %+v", h)
	}
	c := New(1, nil, nil)
	if h := c.Hints(); h.Rows != 0 || h.Codes != 0 || h.Cards != nil {
		t.Fatalf("fresh ctx hints = %+v", h)
	}
	c.SetHints(Hints{Rows: 100, Codes: 40})
	c.SetHints(Hints{Rows: 50, Codes: 90}) // max per field, not last-wins
	if h := c.Hints(); h.Rows != 100 || h.Codes != 90 {
		t.Fatalf("hints = %+v, want {100 90}", h)
	}
}

func TestStatsSnapshotAndReset(t *testing.T) {
	st := new(Stats)
	st.Node()
	st.MatcherPath(MatcherFast)
	st.MatcherPath(MatcherDensePath)
	st.MatcherPath(MatcherSparsePath)
	snap := st.Snapshot()
	if snap.Nodes != 1 || snap.MatcherFastPath != 1 || snap.MatcherDense != 1 || snap.MatcherSparse != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	st.Reset()
	if st.Snapshot() != (Snapshot{}) {
		t.Fatalf("reset left %+v", st.Snapshot())
	}
	var nilStats *Stats
	nilStats.Node()
	nilStats.MatcherPath(MatcherFast)
	nilStats.Reset()
	if nilStats.Snapshot() != (Snapshot{}) {
		t.Fatal("nil stats snapshot")
	}
}

func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(1)
	if Default().Workers() != 1 {
		t.Fatalf("default workers = %d", Default().Workers())
	}
	SetDefaultWorkers(6)
	if Default().Workers() != 6 {
		t.Fatalf("default workers = %d", Default().Workers())
	}
	SetDefaultWorkers(0)
	if Default().Workers() != 1 {
		t.Fatalf("default workers = %d", Default().Workers())
	}
}
