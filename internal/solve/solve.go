// Package solve provides the per-solve execution context threaded
// through every layer of the repair engine: the fdrepair public API,
// the OptSRepair recursion and block fan-out (internal/srepair), the
// U-repair planner (internal/urepair) and MPD (internal/mpd), the
// matching engines (internal/graph) and the view grouping scratch
// (internal/table).
//
// A Ctx bundles what used to be process-wide state into one per-solve
// value:
//
//   - the worker budget, executed by a work-stealing task scheduler
//     (sched.go): independent blocks at every recursion depth become
//     tasks on per-worker deques, popped LIFO by their producer and
//     stolen FIFO by idle workers, and a parent awaiting its blocks
//     helps execute pending tasks instead of parking;
//   - scratch arenas recycled across recursion levels and matching
//     components: a private per-worker shard first (so steals do not
//     bounce hot buffers across caches), sync.Pool overflow behind it;
//   - cooperative cancellation: an optional context.Context checked at
//     task dispatch, recursion and component boundaries, so a
//     deadline-exceeded solve returns promptly instead of burning CPU;
//   - size hints from the input table (row count, distinct-code
//     estimate) that pre-size scratch on first use, eliminating the
//     grow-realloc ladder of a cold first solve;
//   - an optional Stats record (recursion nodes, tasks inline /
//     executed / stolen, matcher path hits, U-repair planner
//     decisions, arena reuse).
//
// The package depends only on the standard library so every internal
// package can import it without cycles. All Ctx methods are safe on a
// nil receiver, degrading to serial, arena-less, non-cancellable
// execution.
package solve

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/schema"
)

// Ctx is the per-solve context. The zero value is not useful; construct
// with New (or use Default for the process-default serial context).
// A single Ctx may be shared by many goroutines and many sequential
// solves: the shared state is concurrency-safe and arena reuse improves
// the more solves share it.
//
// A Ctx value is three words: the solver-lifetime shared state, the
// per-request scope (scope.go: hints, cancellation snapshot, optional
// stats override), plus an optional binding to the scheduler worker
// executing the current task. ForEachBlock hands every block a
// worker-bound Ctx carrying the block's scope, so the arena getters
// below transparently hit the executing worker's private shard and
// cancellation/hints stay those of the block's own request; code simply
// threads whatever *Ctx it was given.
type Ctx struct {
	s  *shared
	sc *Scope
	w  *worker
}

// shared is the solver-lifetime state common to every scope and worker
// binding of one Ctx: the worker budget and scheduler, the arena pools
// (which deliberately converge on high-water sizes across solves) and
// the aggregate stats sink. Per-request state lives on Scope.
type shared struct {
	workers int
	sched   *sched // non-nil exactly when workers > 1

	base context.Context // solver-lifetime cancellation source; scopes inherit it

	stats *Stats // aggregate sink; nil = not collected

	// Shared arena overflow: typed pools plus keyed pools for composite
	// per-package scratch structs. The per-worker shards in front of
	// these live on the scheduler workers (sched.go).
	int32s sync.Pool
	slices sync.Pool
	f64s   sync.Pool
	keyed  sync.Map // any (key) -> *sync.Pool
}

// New builds a context with the given worker budget (n ≤ 1 clamps to
// serial), cancellation source (nil means non-cancellable) and stats
// sink (nil means stats are not collected). The returned Ctx carries a
// root scope bound to cctx; the entry points begin a fresh scope per
// solve on top of it (BeginSolve), and batch layers derive per-request
// scopes with Scoped.
func New(workers int, cctx context.Context, stats *Stats) *Ctx {
	sh := &shared{workers: 1, base: cctx, stats: stats}
	if workers > 1 {
		sh.workers = workers
		sh.sched = newSched(sh, workers)
	}
	return &Ctx{s: sh, sc: newScope(cctx, nil)}
}

// Workers returns the configured worker budget (1 = serial).
func (c *Ctx) Workers() int {
	if c == nil || c.s == nil || c.s.workers < 1 {
		return 1
	}
	return c.s.workers
}

// Stats returns the stats sink receiving this Ctx's counters — the
// scope's per-request override when one is set, the solver's aggregate
// sink otherwise — or nil when stats are not collected.
func (c *Ctx) Stats() *Stats {
	if c == nil || c.s == nil {
		return nil
	}
	if c.sc != nil && c.sc.stats != nil {
		return c.sc.stats
	}
	return c.s.stats
}

// Err reports the cancellation state of the current scope: nil while
// the solve may proceed, context.Canceled or context.DeadlineExceeded
// once the request's context is done. The algorithms call it at task
// dispatch, recursion and component boundaries; the fast path is one
// channel poll.
func (c *Ctx) Err() error {
	if c == nil {
		return nil
	}
	return c.sc.err()
}

// defaultCtx is the process-default context: serial, non-cancellable,
// no stats. The deprecated fdrepair.SetParallelism shim reconfigures
// it; everything else receives its Ctx explicitly, so no solve hot path
// consults package state.
var defaultCtx atomic.Pointer[Ctx]

func init() { defaultCtx.Store(New(1, nil, nil)) }

// Default returns the process-default context used by the ctx-less
// convenience wrappers (srepair.OptSRepair, urepair.Repair, ...).
func Default() *Ctx { return defaultCtx.Load() }

// SetDefaultWorkers reconfigures the default context's worker budget.
// It exists only to back the deprecated fdrepair.SetParallelism shim;
// new code should construct a per-solve Ctx instead. Safe to call
// concurrently with running default-context solves: the swap is an
// atomic pointer store, and an in-flight solve keeps (and completes
// on) the context it loaded at entry.
func SetDefaultWorkers(n int) {
	old := defaultCtx.Load()
	defaultCtx.Store(New(n, old.s.base, old.s.stats))
}

// ---- Size hints ----

// Hints carries scratch-presizing estimates for one solve: Rows is the
// input row count (bounds group buckets, block result lists, marriage
// edge lists and CSR edge arrays), Codes the largest distinct-code
// count of any projection (bounds code→local translation tables and
// per-node matching arrays). Zero fields mean "unknown".
//
// Cards, when non-nil, is a per-projection cardinality source — a
// resident session's live dictionary (table.ProjectionCardinality,
// exact) or a streaming ingestion's cardinality sketches
// (table.CardSource, exact below the sketch overflow threshold and
// within a few percent above it) — that refines the single worst-case
// Codes bound with the distinct count of the one projection a consumer
// is about to materialize. The algorithms query it through
// Ctx.ProjectionCard and use the answers only for scratch pre-sizing,
// so an estimate that is off costs one slice growth, never
// correctness.
type Hints struct {
	Rows, Codes int
	Cards       CardSource
}

// CardSource reports a distinct-count estimate for the projection onto
// attrs, when one is available. Answers feed capacity pre-sizing only
// and may be approximate (sketch-derived); implementations must be
// safe for concurrent use and cheap (the solve hot paths consult them
// per block step).
type CardSource func(attrs schema.AttrSet) (int, bool)

// SetHints records size hints on the current scope, keeping the
// maximum of every hint seen within that scope (nested entry points —
// the U-repair planner running S-repair solves — describe the same
// request). The entry points call it with the input table's shape; the
// arenas consult the hints when creating fresh scratch, so the first
// solve allocates at the high-water size instead of climbing a
// grow-realloc ladder.
//
// Because every entry point begins a fresh scope (BeginSolve), hints
// never outlive their request: fresh scratch is capped at the current
// table's shape, never at the largest table the solver ever saw.
func (c *Ctx) SetHints(h Hints) {
	if c == nil || c.sc == nil {
		return
	}
	atomicMax(&c.sc.hintRows, int64(h.Rows))
	atomicMax(&c.sc.hintCodes, int64(h.Codes))
	if h.Cards != nil {
		c.sc.cards.Store(&h.Cards)
	}
}

// Hints returns the current scope's hints (zero when none were set).
func (c *Ctx) Hints() Hints {
	if c == nil || c.sc == nil {
		return Hints{}
	}
	h := Hints{
		Rows:  int(c.sc.hintRows.Load()),
		Codes: int(c.sc.hintCodes.Load()),
	}
	if p := c.sc.cards.Load(); p != nil {
		h.Cards = *p
	}
	return h
}

// ProjectionCard returns the best available bound on the distinct
// count of the projection onto attrs: the scope's exact cardinality
// source when one answers, otherwise the fallback the caller derived
// from the coarse hints. Either way the result is clamped to the
// scope's row-count hint when one is set — no projection of an n-row
// table has more than n distinct values, and a resident session's
// dictionary retains vanished values, so its raw counts can exceed the
// live table.
func (c *Ctx) ProjectionCard(attrs schema.AttrSet, fallback int) int {
	card := fallback
	if c != nil && c.sc != nil {
		if p := c.sc.cards.Load(); p != nil {
			if exact, ok := (*p)(attrs); ok {
				card = exact
			}
		}
		if rows := int(c.sc.hintRows.Load()); rows > 0 && card > rows {
			card = rows
		}
	}
	return card
}

func atomicMax(a *atomic.Int64, v int64) {
	if v <= 0 {
		return
	}
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// ---- Scratch arenas ----
//
// The arena has two tiers. In front: a private shard on the scheduler
// worker executing the current task (wArena in sched.go) — single-
// goroutine, lock-free, so the hot buffers of a worker stay in that
// worker's cache even when the tasks themselves are stolen. Behind it:
// sync.Pools on the shared state, one per caller-chosen key (typed
// getters below use private keys; packages with composite scratch
// structs bring their own). Objects recycle across recursion levels,
// matching components and sequential solves sharing the Ctx.

// GetScratch returns an object previously stored under key, or nil
// when the arena has none (the caller then allocates). Hits and misses
// are counted in Stats. Intended for composite per-package scratch
// structs (one Get/Put per solve unit); the typed slice pools below
// are cheaper for raw slices.
func (c *Ctx) GetScratch(key any) any {
	if c == nil {
		return nil
	}
	if c.w != nil {
		if v := c.w.ar.getKeyed(key); v != nil {
			c.Stats().arena(true)
			return v
		}
	}
	if p, ok := c.s.keyed.Load(key); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			c.Stats().arena(true)
			return v
		}
	}
	c.Stats().arena(false)
	return nil
}

// PutScratch recycles an object under key for a later GetScratch.
func (c *Ctx) PutScratch(key any, v any) {
	if c == nil {
		return
	}
	if c.w != nil && c.w.ar.putKeyed(key, v) {
		return
	}
	p, ok := c.s.keyed.Load(key)
	if !ok {
		p, _ = c.s.keyed.LoadOrStore(key, &sync.Pool{})
	}
	p.(*sync.Pool).Put(v)
}

// ceilPow2 rounds capacities up so recycled slices fit a range of
// request sizes instead of only their exact birth length.
func ceilPow2(n int) int {
	if n <= 8 {
		return 8
	}
	return 1 << bits.Len(uint(n-1))
}

// RoundCap is the arena's capacity-rounding rule (next power of two,
// minimum 8), exported so packages pre-sizing their own scratch from
// Hints allocate the same converged sizes the pools would.
func RoundCap(n int) int { return ceilPow2(n) }

// Grow returns a slice of length n over s's storage, allocating (with
// power-of-two capacity, so pooled buffers converge on a high-water
// size instead of churning) when s is too small. Contents are
// arbitrary; the caller initializes what it reads. The shared helper
// for fields of pooled scratch structs.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n, ceilPow2(n))
	}
	return s[:n]
}

// Int32s returns a []int32 of length n with arbitrary contents, from
// the arena when possible. Release with PutInt32s.
func (c *Ctx) Int32s(n int) []int32 {
	if c != nil {
		if c.w != nil {
			if s, ok := c.w.ar.getInt32s(n); ok {
				c.Stats().arena(true)
				return s[:n]
			}
		}
		if v := c.s.int32s.Get(); v != nil {
			s := *v.(*[]int32)
			if cap(s) >= n {
				c.Stats().arena(true)
				return s[:n]
			}
			// Too small: drop it. Re-putting would park it in the
			// per-P private slot, shadowing larger pooled buffers for
			// every later request on this P — churning small buffers
			// is cheaper than persistently missing on the big ones.
		}
		c.Stats().arena(false)
	}
	return make([]int32, n, ceilPow2(n))
}

// PutInt32s recycles a slice obtained from Int32s. The caller must not
// use the slice afterwards.
func (c *Ctx) PutInt32s(s []int32) {
	if c == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	if c.w != nil && c.w.ar.putInt32s(s) {
		return
	}
	c.s.int32s.Put(&s)
}

// Int32Slices returns a [][]int32 of length n with nil entries, from
// the arena when possible. Release with PutInt32Slices.
func (c *Ctx) Int32Slices(n int) [][]int32 {
	if c != nil {
		if c.w != nil {
			if s, ok := c.w.ar.getSlices(n); ok {
				c.Stats().arena(true)
				return s[:n]
			}
		}
		if v := c.s.slices.Get(); v != nil {
			s := *v.(*[][]int32)
			if cap(s) >= n {
				c.Stats().arena(true)
				// Entries were nilled by PutInt32Slices.
				return s[:n]
			}
			// Too small: drop (see Int32s).
		}
		c.Stats().arena(false)
	}
	return make([][]int32, n, ceilPow2(n))
}

// PutInt32Slices recycles a slice obtained from Int32Slices. The used
// region is nilled here (not on Get) so a parked pool object never
// pins the row-index arrays of a finished solve: every user clears its
// own [0:len) on Put and the tail beyond it is nil by induction (the
// larger earlier user cleared it on its Put, and fresh allocations
// start zeroed), so the whole backing array is reference-free whenever
// it sits in the pool.
func (c *Ctx) PutInt32Slices(s [][]int32) {
	if c == nil || cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = nil
	}
	s = s[:0]
	if c.w != nil && c.w.ar.putSlices(s) {
		return
	}
	c.s.slices.Put(&s)
}

// Float64s returns a []float64 of length n with arbitrary contents,
// from the arena when possible. Release with PutFloat64s.
func (c *Ctx) Float64s(n int) []float64 {
	if c != nil {
		if c.w != nil {
			if s, ok := c.w.ar.getFloat64s(n); ok {
				c.Stats().arena(true)
				return s[:n]
			}
		}
		if v := c.s.f64s.Get(); v != nil {
			s := *v.(*[]float64)
			if cap(s) >= n {
				c.Stats().arena(true)
				return s[:n]
			}
			// Too small: drop (see Int32s).
		}
		c.Stats().arena(false)
	}
	return make([]float64, n, ceilPow2(n))
}

// PutFloat64s recycles a slice obtained from Float64s.
func (c *Ctx) PutFloat64s(s []float64) {
	if c == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	if c.w != nil && c.w.ar.putFloat64s(s) {
		return
	}
	c.s.f64s.Put(&s)
}

// ---- Stats ----

// Stats accumulates solve counters. All fields are atomic so one Stats
// may sink many concurrent solves (per-Solver aggregation); read a
// consistent copy with Snapshot. A nil *Stats is a valid "don't
// collect" sink for every method.
type Stats struct {
	// Nodes counts recursion nodes visited by OptSRepair.
	Nodes atomic.Int64
	// BlocksSerial counts sibling blocks (and matching components, and
	// planner components) run inline — on the serial path, below the
	// task-size threshold, or when the scheduler was saturated.
	// BlocksParallel counts blocks enqueued as scheduler tasks and
	// executed from a deque (by any worker). Steals counts the subset
	// of those executed by a worker other than their producer, i.e.
	// FIFO steals across the task graph; Steals ≤ BlocksParallel.
	BlocksSerial   atomic.Int64
	BlocksParallel atomic.Int64
	Steals         atomic.Int64
	// TasksInlined counts blocks the scheduler chose to run inline
	// because they fell below the task-size threshold
	// (MinParallelBlock) — the granularity decision, as opposed to
	// BlocksSerial which also counts serial-context and saturation
	// fallbacks. Counted only when a scheduler was available to enqueue
	// on; TasksInlined ≤ BlocksSerial.
	TasksInlined atomic.Int64
	// Matcher path counters: singleton/star fast paths, dense Hungarian
	// fallbacks, and sparse Jonker–Volgenant component solves.
	MatcherFastPath atomic.Int64
	MatcherDense    atomic.Int64
	MatcherSparse   atomic.Int64
	// U-repair planner decisions: components seen, which subroutine won
	// each (trivial / key-swap / common-lhs via OptSRepair / combined
	// approximation), whether consensus elimination changed cells, and
	// the largest component's FD count.
	PlannerComponents atomic.Int64
	PlannerTrivial    atomic.Int64
	PlannerKeySwap    atomic.Int64
	PlannerCommonLHS  atomic.Int64
	PlannerApprox     atomic.Int64
	PlannerConsensus  atomic.Int64
	PlannerMaxCompFDs atomic.Int64
	// Constraint-extension counters, one per class ported onto the
	// solver core: CFDPatterns counts pattern tableaux evaluated against
	// the encoded table, DenialPredicates counts compiled denial atoms
	// (per constraint per solve), CQACertain counts certain answers
	// established by the per-component factorization, and PriorityLevels
	// counts the conflict strata (components) admitted independently by
	// the prioritized greedy.
	CFDPatterns      atomic.Int64
	DenialPredicates atomic.Int64
	CQACertain       atomic.Int64
	PriorityLevels   atomic.Int64
	// ArenaHits / ArenaMisses count scratch requests served from the
	// arena vs freshly allocated.
	ArenaHits   atomic.Int64
	ArenaMisses atomic.Int64
	// Panics counts panics recovered at block-dispatch and request
	// boundaries (panic isolation): each one failed a single block or
	// request instead of the process.
	Panics atomic.Int64
}

func (s *Stats) arena(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.ArenaHits.Add(1)
	} else {
		s.ArenaMisses.Add(1)
	}
}

// Node counts one recursion node.
func (s *Stats) Node() {
	if s != nil {
		s.Nodes.Add(1)
	}
}

// MatcherPath counts one component solved by the named matcher path.
func (s *Stats) MatcherPath(kind MatcherKind) {
	if s == nil {
		return
	}
	switch kind {
	case MatcherFast:
		s.MatcherFastPath.Add(1)
	case MatcherDensePath:
		s.MatcherDense.Add(1)
	case MatcherSparsePath:
		s.MatcherSparse.Add(1)
	}
}

// MatcherKind names the component fast paths of the sparse matcher.
type MatcherKind int

const (
	MatcherFast MatcherKind = iota // singleton edge or one-sided star
	MatcherDensePath
	MatcherSparsePath
)

// PlannerPath names the subroutine that won a U-repair planner
// component.
type PlannerPath int

const (
	PlannerPathTrivial PlannerPath = iota
	PlannerPathKeySwap
	PlannerPathCommonLHS
	PlannerPathApprox
)

// Planner counts one planner component solved by the named path; fds
// is the component's FD count (the largest seen is retained).
func (s *Stats) Planner(kind PlannerPath, fds int) {
	if s == nil {
		return
	}
	s.PlannerComponents.Add(1)
	switch kind {
	case PlannerPathTrivial:
		s.PlannerTrivial.Add(1)
	case PlannerPathKeySwap:
		s.PlannerKeySwap.Add(1)
	case PlannerPathCommonLHS:
		s.PlannerCommonLHS.Add(1)
	case PlannerPathApprox:
		s.PlannerApprox.Add(1)
	}
	atomicMax(&s.PlannerMaxCompFDs, int64(fds))
}

// PlannerConsensusApplied counts one consensus-elimination phase that
// changed cells.
func (s *Stats) PlannerConsensusApplied() {
	if s != nil {
		s.PlannerConsensus.Add(1)
	}
}

// CFDPattern counts n pattern tableaux evaluated by the CFD engine.
func (s *Stats) CFDPattern(n int) {
	if s != nil {
		s.CFDPatterns.Add(int64(n))
	}
}

// DenialPredicate counts n compiled denial atoms.
func (s *Stats) DenialPredicate(n int) {
	if s != nil {
		s.DenialPredicates.Add(int64(n))
	}
}

// CQACertainAnswers counts n certain answers established.
func (s *Stats) CQACertainAnswers(n int) {
	if s != nil {
		s.CQACertain.Add(int64(n))
	}
}

// PriorityLevel counts n conflict strata admitted by the prioritized
// greedy.
func (s *Stats) PriorityLevel(n int) {
	if s != nil {
		s.PriorityLevels.Add(int64(n))
	}
}

// Snapshot is a plain-value copy of Stats, JSON-taggable for bench
// snapshots and reports.
type Snapshot struct {
	Nodes int64 `json:"nodes"`
	// Task scheduler: blocks run inline, executed as enqueued tasks,
	// and (of those) stolen by a non-producer worker.
	BlocksSerial   int64 `json:"blocks_serial"`
	BlocksParallel int64 `json:"blocks_parallel"`
	Steals         int64 `json:"task_steals"`
	TasksInlined   int64 `json:"tasks_inlined"`
	// Matcher dispatch paths.
	MatcherFastPath int64 `json:"matcher_fast_path"`
	MatcherDense    int64 `json:"matcher_dense"`
	MatcherSparse   int64 `json:"matcher_sparse"`
	// U-repair planner decisions.
	PlannerComponents int64 `json:"planner_components"`
	PlannerTrivial    int64 `json:"planner_trivial"`
	PlannerKeySwap    int64 `json:"planner_key_swap"`
	PlannerCommonLHS  int64 `json:"planner_common_lhs"`
	PlannerApprox     int64 `json:"planner_approx"`
	PlannerConsensus  int64 `json:"planner_consensus"`
	PlannerMaxCompFDs int64 `json:"planner_max_component_fds"`
	// Constraint-extension engines.
	CFDPatterns      int64 `json:"cfd_patterns"`
	DenialPredicates int64 `json:"denial_predicates"`
	CQACertain       int64 `json:"cqa_certain"`
	PriorityLevels   int64 `json:"priority_levels"`
	// Arena reuse.
	ArenaHits   int64 `json:"arena_hits"`
	ArenaMisses int64 `json:"arena_misses"`
	// Panics recovered and converted into per-block/per-request errors.
	Panics int64 `json:"panics"`
}

// Snapshot returns a consistent-enough copy of the counters (each
// counter is read atomically; the set is not a single atomic cut,
// which is fine for reporting).
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Nodes:             s.Nodes.Load(),
		BlocksSerial:      s.BlocksSerial.Load(),
		BlocksParallel:    s.BlocksParallel.Load(),
		Steals:            s.Steals.Load(),
		TasksInlined:      s.TasksInlined.Load(),
		MatcherFastPath:   s.MatcherFastPath.Load(),
		MatcherDense:      s.MatcherDense.Load(),
		MatcherSparse:     s.MatcherSparse.Load(),
		PlannerComponents: s.PlannerComponents.Load(),
		PlannerTrivial:    s.PlannerTrivial.Load(),
		PlannerKeySwap:    s.PlannerKeySwap.Load(),
		PlannerCommonLHS:  s.PlannerCommonLHS.Load(),
		PlannerApprox:     s.PlannerApprox.Load(),
		PlannerConsensus:  s.PlannerConsensus.Load(),
		PlannerMaxCompFDs: s.PlannerMaxCompFDs.Load(),
		CFDPatterns:       s.CFDPatterns.Load(),
		DenialPredicates:  s.DenialPredicates.Load(),
		CQACertain:        s.CQACertain.Load(),
		PriorityLevels:    s.PriorityLevels.Load(),
		ArenaHits:         s.ArenaHits.Load(),
		ArenaMisses:       s.ArenaMisses.Load(),
		Panics:            s.Panics.Load(),
	}
}

// Merge accumulates a snapshot into s (sum per counter, max for the
// high-water PlannerMaxCompFDs). The batch layer collects each request
// into its own Stats and merges the snapshot into the solver's
// aggregate sink, so per-request slices and the cumulative Solver view
// stay consistent without double-counting on the hot path.
func (s *Stats) Merge(o Snapshot) {
	if s == nil {
		return
	}
	s.Nodes.Add(o.Nodes)
	s.BlocksSerial.Add(o.BlocksSerial)
	s.BlocksParallel.Add(o.BlocksParallel)
	s.Steals.Add(o.Steals)
	s.TasksInlined.Add(o.TasksInlined)
	s.MatcherFastPath.Add(o.MatcherFastPath)
	s.MatcherDense.Add(o.MatcherDense)
	s.MatcherSparse.Add(o.MatcherSparse)
	s.PlannerComponents.Add(o.PlannerComponents)
	s.PlannerTrivial.Add(o.PlannerTrivial)
	s.PlannerKeySwap.Add(o.PlannerKeySwap)
	s.PlannerCommonLHS.Add(o.PlannerCommonLHS)
	s.PlannerApprox.Add(o.PlannerApprox)
	s.PlannerConsensus.Add(o.PlannerConsensus)
	atomicMax(&s.PlannerMaxCompFDs, o.PlannerMaxCompFDs)
	s.CFDPatterns.Add(o.CFDPatterns)
	s.DenialPredicates.Add(o.DenialPredicates)
	s.CQACertain.Add(o.CQACertain)
	s.PriorityLevels.Add(o.PriorityLevels)
	s.ArenaHits.Add(o.ArenaHits)
	s.ArenaMisses.Add(o.ArenaMisses)
	s.Panics.Add(o.Panics)
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.Nodes.Store(0)
	s.BlocksSerial.Store(0)
	s.BlocksParallel.Store(0)
	s.Steals.Store(0)
	s.TasksInlined.Store(0)
	s.MatcherFastPath.Store(0)
	s.MatcherDense.Store(0)
	s.MatcherSparse.Store(0)
	s.PlannerComponents.Store(0)
	s.PlannerTrivial.Store(0)
	s.PlannerKeySwap.Store(0)
	s.PlannerCommonLHS.Store(0)
	s.PlannerApprox.Store(0)
	s.PlannerConsensus.Store(0)
	s.PlannerMaxCompFDs.Store(0)
	s.CFDPatterns.Store(0)
	s.DenialPredicates.Store(0)
	s.CQACertain.Store(0)
	s.PriorityLevels.Store(0)
	s.ArenaHits.Store(0)
	s.ArenaMisses.Store(0)
	s.Panics.Store(0)
}
