// Package solve provides the per-solve execution context threaded
// through every layer of the repair engine: the fdrepair public API,
// the OptSRepair recursion and block pool (internal/srepair), the
// U-repair planner (internal/urepair) and MPD (internal/mpd), the
// matching engines (internal/graph) and the view grouping scratch
// (internal/table).
//
// A Ctx bundles what used to be process-wide state into one per-solve
// value:
//
//   - the worker budget of the opt-in block pool (formerly the
//     srepair.SetWorkers global);
//   - sync.Pool-backed scratch arenas recycled across recursion levels
//     and matching components, so hot paths stop allocating fresh
//     scratch on every call;
//   - cooperative cancellation: an optional context.Context checked at
//     recursion and component boundaries, so a deadline-exceeded solve
//     returns promptly instead of burning CPU;
//   - an optional Stats record (recursion nodes, blocks solved
//     serial/parallel, matcher path hits, arena reuse counts).
//
// The package depends only on the standard library so every internal
// package can import it without cycles. All Ctx methods are safe on a
// nil receiver, degrading to serial, arena-less, non-cancellable
// execution.
package solve

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Ctx is the per-solve context. The zero value is not useful; construct
// with New (or use Default for the process-default serial context).
// A single Ctx may be shared by many goroutines and many sequential
// solves: the arenas are concurrency-safe and reuse improves the more
// solves share them.
type Ctx struct {
	workers int
	slots   chan struct{} // cap workers-1; nil = serial

	done <-chan struct{} // cancellation signal; nil = non-cancellable
	cctx context.Context // source of done, for Err()

	stats *Stats // nil = not collected

	// Typed arenas get dedicated pools (one pointer indirection on the
	// hot path); composite scratch structs of other packages go through
	// the keyed pools map.
	int32s sync.Pool
	slices sync.Pool
	f64s   sync.Pool
	keyed  sync.Map // any (key) -> *sync.Pool
}

// New builds a context with the given worker budget (n ≤ 1 means
// serial), cancellation source (nil means non-cancellable) and stats
// sink (nil means stats are not collected).
func New(workers int, cctx context.Context, stats *Stats) *Ctx {
	c := &Ctx{workers: 1, cctx: cctx, stats: stats}
	if workers > 1 {
		c.workers = workers
		c.slots = make(chan struct{}, workers-1)
	}
	if cctx != nil {
		c.done = cctx.Done()
	}
	return c
}

// Workers returns the configured worker budget (1 = serial).
func (c *Ctx) Workers() int {
	if c == nil || c.workers < 1 {
		return 1
	}
	return c.workers
}

// Stats returns the stats sink, or nil when stats are not collected.
func (c *Ctx) Stats() *Stats {
	if c == nil {
		return nil
	}
	return c.stats
}

// Err reports the cancellation state: nil while the solve may proceed,
// context.Canceled or context.DeadlineExceeded once the solve's context
// is done. The algorithms call it at recursion and component
// boundaries; the fast path is one channel poll.
func (c *Ctx) Err() error {
	if c == nil || c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.cctx.Err()
	default:
		return nil
	}
}

// defaultCtx is the process-default context: serial, non-cancellable,
// no stats. The deprecated fdrepair.SetParallelism /
// srepair.SetWorkers shims reconfigure it; everything else receives
// its Ctx explicitly, so no solve hot path consults package state.
var defaultCtx atomic.Pointer[Ctx]

func init() { defaultCtx.Store(New(1, nil, nil)) }

// Default returns the process-default context used by the ctx-less
// convenience wrappers (srepair.OptSRepair, urepair.Repair, ...).
func Default() *Ctx { return defaultCtx.Load() }

// SetDefaultWorkers reconfigures the default context's worker budget.
// It exists only to back the deprecated SetParallelism/SetWorkers
// shims; new code should construct a per-solve Ctx instead. Do not
// call concurrently with a running default-context solve.
func SetDefaultWorkers(n int) {
	old := defaultCtx.Load()
	defaultCtx.Store(New(n, old.cctx, old.stats))
}

// MinParallelBlock gates goroutine handoff in ForEachBlock: blocks
// below this size (rows, edges, ...) finish faster than the scheduling
// round-trip costs, so they always run inline.
const MinParallelBlock = 96

// ForEachBlock runs fn(0..n-1), handing blocks of at least
// MinParallelBlock units (per the size callback) to pool slots when
// available. The pool uses try-acquire semantics: a block runs in a
// goroutine when a slot is free and inline otherwise, so nested
// recursion can never deadlock on pool slots, and a saturated pool
// degrades to the serial algorithm. Results are collected per block
// index, which keeps every caller deterministic and identical to the
// serial result. The returned error is the first (by block index)
// failure; the serial path stops there, while the parallel path drains
// every started block before reporting. A cancelled Ctx fails fast
// before any block runs.
func (c *Ctx) ForEachBlock(n int, size func(i int) int, fn func(i int) error) error {
	if err := c.Err(); err != nil {
		return err
	}
	var slots chan struct{}
	var stats *Stats
	if c != nil {
		slots, stats = c.slots, c.stats
	}
	if slots == nil || n < 2 {
		// Count blocks actually run (the serial path stops at the first
		// failure), matching the parallel path's semantics.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				if stats != nil {
					stats.BlocksSerial.Add(int64(i + 1))
				}
				return err
			}
		}
		if stats != nil {
			stats.BlocksSerial.Add(int64(n))
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	var inline, handed int64
	for i := 0; i < n; i++ {
		if size(i) < MinParallelBlock {
			inline++
			errs[i] = fn(i)
			continue
		}
		select {
		case slots <- struct{}{}:
			handed++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-slots }()
				errs[i] = fn(i)
			}(i)
		default:
			inline++
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	if stats != nil {
		stats.BlocksSerial.Add(inline)
		stats.BlocksParallel.Add(handed)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- Scratch arenas ----
//
// The arena is a set of sync.Pools owned by the Ctx, one per caller-
// chosen key (typed getters below use private keys; packages with
// composite scratch structs bring their own). Pools are created on
// first Put, so a Get on a fresh Ctx is a counted miss, and objects
// recycle across recursion levels, matching components and sequential
// solves sharing the Ctx. Because sync.Pool is per-P, concurrent block
// workers get and put scratch without contending.

// GetScratch returns an object previously stored under key, or nil
// when the arena has none (the caller then allocates). Hits and misses
// are counted in Stats. Intended for composite per-package scratch
// structs (one Get/Put per solve unit); the typed slice pools below
// are cheaper for raw slices.
func (c *Ctx) GetScratch(key any) any {
	if c == nil {
		return nil
	}
	if p, ok := c.keyed.Load(key); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			c.stats.arena(true)
			return v
		}
	}
	c.stats.arena(false)
	return nil
}

// PutScratch recycles an object under key for a later GetScratch.
func (c *Ctx) PutScratch(key any, v any) {
	if c == nil {
		return
	}
	p, ok := c.keyed.Load(key)
	if !ok {
		p, _ = c.keyed.LoadOrStore(key, &sync.Pool{})
	}
	p.(*sync.Pool).Put(v)
}

// ceilPow2 rounds capacities up so recycled slices fit a range of
// request sizes instead of only their exact birth length.
func ceilPow2(n int) int {
	if n <= 8 {
		return 8
	}
	return 1 << bits.Len(uint(n-1))
}

// Grow returns a slice of length n over s's storage, allocating (with
// power-of-two capacity, so pooled buffers converge on a high-water
// size instead of churning) when s is too small. Contents are
// arbitrary; the caller initializes what it reads. The shared helper
// for fields of pooled scratch structs.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n, ceilPow2(n))
	}
	return s[:n]
}

// Int32s returns a []int32 of length n with arbitrary contents, from
// the arena when possible. Release with PutInt32s.
func (c *Ctx) Int32s(n int) []int32 {
	if c != nil {
		if v := c.int32s.Get(); v != nil {
			s := *v.(*[]int32)
			if cap(s) >= n {
				c.stats.arena(true)
				return s[:n]
			}
			// Too small: drop it. Re-putting would park it in the
			// per-P private slot, shadowing larger pooled buffers for
			// every later request on this P — churning small buffers
			// is cheaper than persistently missing on the big ones.
		}
		c.stats.arena(false)
	}
	return make([]int32, n, ceilPow2(n))
}

// PutInt32s recycles a slice obtained from Int32s. The caller must not
// use the slice afterwards.
func (c *Ctx) PutInt32s(s []int32) {
	if c == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	c.int32s.Put(&s)
}

// Int32Slices returns a [][]int32 of length n with nil entries, from
// the arena when possible. Release with PutInt32Slices.
func (c *Ctx) Int32Slices(n int) [][]int32 {
	if c != nil {
		if v := c.slices.Get(); v != nil {
			s := *v.(*[][]int32)
			if cap(s) >= n {
				c.stats.arena(true)
				// Entries were nilled by PutInt32Slices.
				return s[:n]
			}
			// Too small: drop (see Int32s).
		}
		c.stats.arena(false)
	}
	return make([][]int32, n, ceilPow2(n))
}

// PutInt32Slices recycles a slice obtained from Int32Slices. The used
// region is nilled here (not on Get) so a parked pool object never
// pins the row-index arrays of a finished solve: every user clears its
// own [0:len) on Put and the tail beyond it is nil by induction (the
// larger earlier user cleared it on its Put, and fresh allocations
// start zeroed), so the whole backing array is reference-free whenever
// it sits in the pool.
func (c *Ctx) PutInt32Slices(s [][]int32) {
	if c == nil || cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = nil
	}
	s = s[:0]
	c.slices.Put(&s)
}

// Float64s returns a []float64 of length n with arbitrary contents,
// from the arena when possible. Release with PutFloat64s.
func (c *Ctx) Float64s(n int) []float64 {
	if c != nil {
		if v := c.f64s.Get(); v != nil {
			s := *v.(*[]float64)
			if cap(s) >= n {
				c.stats.arena(true)
				return s[:n]
			}
			// Too small: drop (see Int32s).
		}
		c.stats.arena(false)
	}
	return make([]float64, n, ceilPow2(n))
}

// PutFloat64s recycles a slice obtained from Float64s.
func (c *Ctx) PutFloat64s(s []float64) {
	if c == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	c.f64s.Put(&s)
}

// ---- Stats ----

// Stats accumulates solve counters. All fields are atomic so one Stats
// may sink many concurrent solves (per-Solver aggregation); read a
// consistent copy with Snapshot. A nil *Stats is a valid "don't
// collect" sink for every method.
type Stats struct {
	// Nodes counts recursion nodes visited by OptSRepair.
	Nodes atomic.Int64
	// BlocksSerial / BlocksParallel count sibling blocks (and matching
	// components) solved inline vs handed to a pool worker.
	BlocksSerial   atomic.Int64
	BlocksParallel atomic.Int64
	// Matcher path counters: singleton/star fast paths, dense Hungarian
	// fallbacks, and sparse Jonker–Volgenant component solves.
	MatcherFastPath atomic.Int64
	MatcherDense    atomic.Int64
	MatcherSparse   atomic.Int64
	// ArenaHits / ArenaMisses count scratch requests served from the
	// arena vs freshly allocated.
	ArenaHits   atomic.Int64
	ArenaMisses atomic.Int64
}

func (s *Stats) arena(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.ArenaHits.Add(1)
	} else {
		s.ArenaMisses.Add(1)
	}
}

// Node counts one recursion node.
func (s *Stats) Node() {
	if s != nil {
		s.Nodes.Add(1)
	}
}

// MatcherPath counts one component solved by the named matcher path.
func (s *Stats) MatcherPath(kind MatcherKind) {
	if s == nil {
		return
	}
	switch kind {
	case MatcherFast:
		s.MatcherFastPath.Add(1)
	case MatcherDensePath:
		s.MatcherDense.Add(1)
	case MatcherSparsePath:
		s.MatcherSparse.Add(1)
	}
}

// MatcherKind names the component fast paths of the sparse matcher.
type MatcherKind int

const (
	MatcherFast MatcherKind = iota // singleton edge or one-sided star
	MatcherDensePath
	MatcherSparsePath
)

// Snapshot is a plain-value copy of Stats, JSON-taggable for bench
// snapshots and reports.
type Snapshot struct {
	Nodes           int64 `json:"nodes"`
	BlocksSerial    int64 `json:"blocks_serial"`
	BlocksParallel  int64 `json:"blocks_parallel"`
	MatcherFastPath int64 `json:"matcher_fast_path"`
	MatcherDense    int64 `json:"matcher_dense"`
	MatcherSparse   int64 `json:"matcher_sparse"`
	ArenaHits       int64 `json:"arena_hits"`
	ArenaMisses     int64 `json:"arena_misses"`
}

// Snapshot returns a consistent-enough copy of the counters (each
// counter is read atomically; the set is not a single atomic cut,
// which is fine for reporting).
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Nodes:           s.Nodes.Load(),
		BlocksSerial:    s.BlocksSerial.Load(),
		BlocksParallel:  s.BlocksParallel.Load(),
		MatcherFastPath: s.MatcherFastPath.Load(),
		MatcherDense:    s.MatcherDense.Load(),
		MatcherSparse:   s.MatcherSparse.Load(),
		ArenaHits:       s.ArenaHits.Load(),
		ArenaMisses:     s.ArenaMisses.Load(),
	}
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.Nodes.Store(0)
	s.BlocksSerial.Store(0)
	s.BlocksParallel.Store(0)
	s.MatcherFastPath.Store(0)
	s.MatcherDense.Store(0)
	s.MatcherSparse.Store(0)
	s.ArenaHits.Store(0)
	s.ArenaMisses.Store(0)
}
