// Per-request solve scopes.
//
// A Ctx used to carry one flat bag of state; anything written to it —
// size hints in particular — outlived the solve that wrote it. SetHints
// kept the atomic maximum of every hint ever seen, so a long-lived
// Solver that once repaired a 100k-row table pre-sized group-by,
// edge-list and CSR scratch at 100k rows for every later 10-row solve:
// unbounded memory amplification in exactly the multi-tenant,
// many-table setting the Solver API advertises.
//
// The state is therefore split in two:
//
//   - solver-lifetime state stays on shared (solve.go): the worker
//     budget and scheduler, the arena pools (whose buffers deliberately
//     converge on high-water sizes across solves — reusing a big pooled
//     buffer for a small solve is free; freshly allocating a big buffer
//     for a small solve is the bug), and the solver's aggregate stats
//     sink;
//   - per-request state lives on a Scope: the size hints of the one
//     table being solved, the request's cancellation snapshot (context
//     plus predecoded done channel, typically deadline-derived), and an
//     optional per-request stats override.
//
// Every top-level entry point (srepair.OptSRepairCtx, urepair.RepairCtx)
// calls BeginSolve, so hints can never leak between solves no matter
// how the caller reuses its Ctx. Batch entry points call Scoped to give
// each request its own deadline and stats while running all requests as
// tasks on the one shared scheduler; the scheduler threads the scope
// through its joins and tasks, so concurrently interleaved requests
// keep their own hints, cancellation and counters even when their
// blocks execute on (or are stolen by) the same workers.
package solve

import (
	"context"
	"sync/atomic"
)

// Scope is the per-request half of a Ctx: size hints scoped to one
// solve, the request's cancellation snapshot, and an optional stats
// override. A nil *Scope is valid and means "no hints, non-cancellable,
// no stats override".
type Scope struct {
	// Scratch-presizing hints. Atomic max within one scope (many
	// goroutines of one solve may consult them); a nested entry point
	// (the U-repair planner invoking S-repair solves) begins its own
	// fresh scope via BeginSolve and re-records its own table's shape,
	// so hints never propagate between entry points in either
	// direction.
	hintRows  atomic.Int64
	hintCodes atomic.Int64
	cards     atomic.Pointer[CardSource] // exact per-projection counts; nil = none

	done  <-chan struct{} // cancellation signal; nil = non-cancellable
	cctx  context.Context // source of done, for Err()
	stats *Stats          // per-request sink; nil = use the solver's

	// failErr is an error injected into the scope out of band — the
	// cancel-mid-recursion failpoint poisons the scope through it. It
	// wins over the context snapshot so a poisoned request fails at the
	// next dispatch/recursion check even without a real deadline.
	failErr atomic.Pointer[error]
}

// newScope builds a scope bound to the given cancellation source and
// optional per-request stats sink.
func newScope(cctx context.Context, stats *Stats) *Scope {
	sc := &Scope{cctx: cctx, stats: stats}
	if cctx != nil {
		sc.done = cctx.Done()
	}
	return sc
}

// err reports the scope's cancellation state (nil receiver = never
// cancelled). The fast path is one atomic load and one channel poll.
func (sc *Scope) err() error {
	if sc == nil {
		return nil
	}
	if p := sc.failErr.Load(); p != nil {
		return *p
	}
	if sc.done == nil {
		return nil
	}
	select {
	case <-sc.done:
		return sc.cctx.Err()
	default:
		return nil
	}
}

// fail injects a terminal error into the scope (first writer wins);
// subsequent err() calls return it. Safe on a nil receiver.
func (sc *Scope) fail(err error) {
	if sc == nil || err == nil {
		return
	}
	sc.failErr.CompareAndSwap(nil, &err)
}

// Base returns the solver-lifetime cancellation source the Ctx was
// built with (nil when non-cancellable). Per-request deadlines derive
// from it when the request brings no context of its own.
func (c *Ctx) Base() context.Context {
	if c == nil || c.s == nil {
		return nil
	}
	return c.s.base
}

// Scoped returns a Ctx for one request: the same solver-lifetime state
// (scheduler, arena pools, aggregate stats) under a fresh scope. cctx
// is the request's cancellation source — nil inherits the solver's base
// context; a non-nil cctx replaces it for this request (combine them
// with context.WithTimeout(base, d) if both must apply). stats, when
// non-nil, receives this request's counters instead of the solver's
// aggregate sink (merge a Snapshot back with Stats.Merge if the
// aggregate should still see them).
func (c *Ctx) Scoped(cctx context.Context, stats *Stats) *Ctx {
	if c == nil || c.s == nil {
		return c
	}
	if cctx == nil {
		cctx = c.s.base
	}
	return &Ctx{s: c.s, sc: newScope(cctx, stats), w: c.w}
}

// BeginSolve returns a Ctx for one top-level solve: same solver state,
// same cancellation and stats routing as c, fresh hints. The entry
// points (srepair.OptSRepairCtx, urepair.RepairCtx) call it before
// recording the input table's shape, so hints are scoped to that one
// solve — a Ctx reused across tables of wildly different sizes no
// longer pre-sizes small solves at the largest table ever seen.
func (c *Ctx) BeginSolve() *Ctx {
	if c == nil || c.s == nil {
		return c
	}
	sc := &Scope{}
	if old := c.sc; old != nil {
		sc.done = old.done
		sc.cctx = old.cctx
		sc.stats = old.stats
	}
	return &Ctx{s: c.s, sc: sc, w: c.w}
}
