// Package failpoint provides registry- and environment-driven fault
// injection for the solve engine and the fdrepaird daemon.
//
// A failpoint is a named site in the engine (the block-dispatch hook in
// internal/solve evaluates every point below) armed with a Spec that
// decides when it fires and what it does: panic, sleep, allocate, or —
// for caller-interpreted points — merely report that it fired. The
// chaos suites arm points programmatically; the daemon arms them from
// the FDREPAIR_FAILPOINTS environment variable, so an operator can
// rehearse panics, stalls and memory spikes against a running binary
// without a rebuild.
//
// The disarmed fast path is one atomic load (Active), so instrumented
// sites cost nothing in production.
package failpoint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The failpoints evaluated by the solve engine's block-dispatch hook.
const (
	// PanicInBlock panics when it fires — exercises the scheduler's and
	// batch layer's panic isolation.
	PanicInBlock = "panic-in-block"
	// SlowBlock sleeps Spec.Sleep when it fires — exercises deadlines,
	// load shedding and drain under stalled solves.
	SlowBlock = "slow-block"
	// AllocSpike allocates (and touches) Spec.Bytes when it fires —
	// exercises behavior under transient memory pressure.
	AllocSpike = "alloc-spike"
	// CancelMidRecursion reports firing to the dispatch hook, which
	// injects a context.Canceled into the current request's scope —
	// exercises cancellation landing between recursion levels.
	CancelMidRecursion = "cancel-mid-recursion"
)

// EnvVar is the environment variable EnableFromEnv reads.
const EnvVar = "FDREPAIR_FAILPOINTS"

// Spec configures when an armed failpoint fires and what it does.
// The zero value fires on every evaluation with the effect defaults
// below.
type Spec struct {
	// After skips the first After evaluations.
	After int
	// Every then fires on every Every-th evaluation (≤ 1 = every one).
	Every int
	// Count stops the point after Count fires (0 = unlimited).
	Count int
	// Sleep is SlowBlock's stall per fire (default 2ms).
	Sleep time.Duration
	// Bytes is AllocSpike's allocation per fire (default 8 MiB).
	Bytes int
}

// point is one armed failpoint: its spec plus evaluation/fire counters.
type point struct {
	spec  Spec
	evals atomic.Int64
	fires atomic.Int64
}

var (
	// armed counts enabled points; Active's fast path.
	armed atomic.Int32

	mu     sync.RWMutex
	points = make(map[string]*point)

	// spikeSink keeps the most recent alloc-spike buffer reachable so
	// the allocation cannot be optimized away; each fire replaces it,
	// so at most one spike is live at a time.
	spikeSink atomic.Pointer[[]byte]
)

// Active reports whether any failpoint is armed. Instrumented sites
// gate on it so the disarmed cost is one atomic load.
func Active() bool { return armed.Load() > 0 }

// Enable arms (or re-arms, resetting counters) the named failpoint.
func Enable(name string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{spec: spec}
}

// Disable disarms the named failpoint (no-op when not armed).
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// DisableAll disarms every failpoint. Chaos tests defer it so a failed
// assertion never leaks an armed point into later tests.
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	for name := range points {
		delete(points, name)
		armed.Add(-1)
	}
}

// Fires returns how many times the named failpoint has fired since it
// was armed (0 when not armed).
func Fires(name string) int64 {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.fires.Load()
}

// Eval evaluates the named failpoint: it reports whether the point
// fires at this call and applies the point's intrinsic effect
// (PanicInBlock panics, SlowBlock sleeps, AllocSpike allocates;
// caller-interpreted points like CancelMidRecursion only report).
// Evaluating a disarmed point is cheap and returns false.
func Eval(name string) bool {
	if !Active() {
		return false
	}
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return false
	}
	n := p.evals.Add(1)
	k := n - int64(p.spec.After)
	if k <= 0 {
		return false
	}
	if e := int64(p.spec.Every); e > 1 && (k-1)%e != 0 {
		return false
	}
	fire := p.fires.Add(1)
	if c := int64(p.spec.Count); c > 0 && fire > c {
		p.fires.Add(-1)
		return false
	}
	switch name {
	case PanicInBlock:
		panic(fmt.Sprintf("failpoint: %s fired (fire %d)", name, fire))
	case SlowBlock:
		d := p.spec.Sleep
		if d <= 0 {
			d = 2 * time.Millisecond
		}
		time.Sleep(d)
	case AllocSpike:
		b := p.spec.Bytes
		if b <= 0 {
			b = 8 << 20
		}
		spike := make([]byte, b)
		for i := 0; i < len(spike); i += 4096 {
			spike[i] = 1
		}
		spikeSink.Store(&spike)
	}
	return true
}

// Parse decodes a failpoint arming string of the form
//
//	name[=key:val[,key:val...]][;name2=...]
//
// with keys after, every, count (integers), sleep (time.Duration) and
// bytes (integer). A bare name arms the point with the zero Spec
// (fires on every evaluation). Example:
//
//	panic-in-block=after:100,count:1;slow-block=sleep:5ms,every:8
func Parse(s string) (map[string]Spec, error) {
	out := make(map[string]Spec)
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, args, _ := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("failpoint: empty name in %q", entry)
		}
		var spec Spec
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), ":")
				if !ok {
					return nil, fmt.Errorf("failpoint: %s: bad key:val %q", name, kv)
				}
				switch key {
				case "after", "every", "count", "bytes":
					n, err := strconv.Atoi(val)
					if err != nil || n < 0 {
						return nil, fmt.Errorf("failpoint: %s: bad %s value %q", name, key, val)
					}
					switch key {
					case "after":
						spec.After = n
					case "every":
						spec.Every = n
					case "count":
						spec.Count = n
					case "bytes":
						spec.Bytes = n
					}
				case "sleep":
					d, err := time.ParseDuration(val)
					if err != nil || d < 0 {
						return nil, fmt.Errorf("failpoint: %s: bad sleep value %q", name, val)
					}
					spec.Sleep = d
				default:
					return nil, fmt.Errorf("failpoint: %s: unknown key %q", name, key)
				}
			}
		}
		out[name] = spec
	}
	return out, nil
}

// EnableFromEnv arms every failpoint named by the FDREPAIR_FAILPOINTS
// environment variable (see Parse for the format) and returns the
// armed names in arming order. An empty or unset variable arms
// nothing.
func EnableFromEnv(value string) ([]string, error) {
	specs, err := Parse(value)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(specs))
	for name, spec := range specs {
		Enable(name, spec)
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
