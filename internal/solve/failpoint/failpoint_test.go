package failpoint

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	specs, err := Parse("panic-in-block=after:100,count:1; slow-block=sleep:5ms,every:8 ;alloc-spike")
	if err != nil {
		t.Fatal(err)
	}
	if got := specs[PanicInBlock]; got.After != 100 || got.Count != 1 {
		t.Fatalf("panic-in-block spec = %+v", got)
	}
	if got := specs[SlowBlock]; got.Sleep != 5*time.Millisecond || got.Every != 8 {
		t.Fatalf("slow-block spec = %+v", got)
	}
	if _, ok := specs[AllocSpike]; !ok {
		t.Fatal("bare name did not arm with zero spec")
	}
	for _, bad := range []string{"=after:1", "x=after", "x=after:-1", "x=sleep:zzz", "x=frob:1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	defer DisableAll()
	names, err := EnableFromEnv("slow-block=sleep:1ms;cancel-mid-recursion=count:2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "cancel-mid-recursion,slow-block" {
		t.Fatalf("names = %v", names)
	}
	if !Active() {
		t.Fatal("not active after EnableFromEnv")
	}
	if names, err := EnableFromEnv(""); err != nil || len(names) != 0 {
		t.Fatalf("empty env: %v, %v", names, err)
	}
}

// TestTriggerSchedule pins after/every/count semantics on a
// caller-interpreted point.
func TestTriggerSchedule(t *testing.T) {
	defer DisableAll()
	Enable(CancelMidRecursion, Spec{After: 3, Every: 2, Count: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if Eval(CancelMidRecursion) {
			fired = append(fired, i)
		}
	}
	// Evaluations 1–3 skipped; then every 2nd starting at 4 (4, 6, ...)
	// capped at 2 fires.
	if len(fired) != 2 || fired[0] != 4 || fired[1] != 6 {
		t.Fatalf("fired at %v, want [4 6]", fired)
	}
	if Fires(CancelMidRecursion) != 2 {
		t.Fatalf("Fires = %d, want 2", Fires(CancelMidRecursion))
	}
}

func TestDisarmedFastPath(t *testing.T) {
	DisableAll()
	if Active() {
		t.Fatal("active with no points armed")
	}
	if Eval(PanicInBlock) {
		t.Fatal("disarmed point fired")
	}
	if Fires(PanicInBlock) != 0 {
		t.Fatal("disarmed point counted fires")
	}
}

func TestPanicEffect(t *testing.T) {
	defer DisableAll()
	Enable(PanicInBlock, Spec{})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic-in-block did not panic")
		}
	}()
	Eval(PanicInBlock)
}

// TestConcurrentEval drives one point from many goroutines; the count
// cap must hold exactly under the race detector.
func TestConcurrentEval(t *testing.T) {
	defer DisableAll()
	Enable(CancelMidRecursion, Spec{Count: 7})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Eval(CancelMidRecursion) {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 7 {
		t.Fatalf("fired %d times, want exactly 7", fired)
	}
}
