package solve

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/solve/failpoint"
)

// TestForEachBlockPanicIsolation: a block that panics — at any worker
// count, on the scheduled or the serial path — surfaces as that
// fan-out's *PanicError while sibling blocks run to completion and the
// scheduler survives for the next fan-out.
func TestForEachBlockPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		var stats Stats
		c := New(workers, nil, &stats)
		var ran atomic.Int64
		const n = 16
		err := c.ForEachBlock(n, big, func(c *Ctx, i int) error {
			if i == 5 {
				panic("poisoned block")
			}
			ran.Add(1)
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "poisoned block" {
			t.Fatalf("workers=%d: panic value %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "panic_test.go") {
			t.Fatalf("workers=%d: stack does not include the panic site:\n%s", workers, pe.Stack)
		}
		// Serial semantics stop at the first failure (blocks before the
		// poisoned index); the scheduled path drains every sibling.
		want := int64(n - 1)
		if workers == 1 {
			want = 5
		}
		if got := ran.Load(); got != want {
			t.Fatalf("workers=%d: %d sibling blocks ran, want %d", workers, got, want)
		}
		if got := stats.Panics.Load(); got != 1 {
			t.Fatalf("workers=%d: Panics = %d, want 1", workers, got)
		}
		// The scheduler must be fully usable after the recovered panic.
		ran.Store(0)
		if err := c.ForEachBlock(n, big, func(c *Ctx, i int) error { ran.Add(1); return nil }); err != nil {
			t.Fatalf("workers=%d: fan-out after panic: %v", workers, err)
		}
		if ran.Load() != n {
			t.Fatalf("workers=%d: fan-out after panic ran %d blocks", workers, ran.Load())
		}
	}
}

// TestNestedPanicAtDepth: a task that panics below the root — depth > 1
// of a nested fan-out — is recovered by whichever worker executes it
// and propagates as an error through the enclosing joins, while every
// subtree not on the panicking path completes.
func TestNestedPanicAtDepth(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		c := New(workers, nil, nil)
		var leaves atomic.Int64
		err := c.ForEachBlock(4, big, func(c *Ctx, outer int) error {
			return c.ForEachBlock(4, big, func(c *Ctx, mid int) error {
				return c.ForEachBlock(4, big, func(c *Ctx, inner int) error {
					if outer == 2 && mid == 1 && inner == 3 {
						panic("depth-3 poison")
					}
					leaves.Add(1)
					return nil
				})
			})
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		// Scheduled joins drain all siblings before reporting, at every
		// level; the serial path stops at the poisoned leaf in DFS order
		// (outer 0–1 fully, then mid 0 and inner 0–2 of mid 1).
		want := int64(4*4*4 - 1)
		if workers == 1 {
			want = 2*16 + 4 + 3
		}
		if got := leaves.Load(); got != want {
			t.Fatalf("workers=%d: %d leaves ran, want %d", workers, got, want)
		}
	}
}

// TestFailpointCancelMidRecursion: the cancel-mid-recursion failpoint
// poisons only the scope it fires under; the fan-out reports
// context.Canceled and a fresh scope on the same Ctx is unaffected.
func TestFailpointCancelMidRecursion(t *testing.T) {
	defer failpoint.DisableAll()
	failpoint.Enable(failpoint.CancelMidRecursion, failpoint.Spec{After: 4, Count: 1})
	c := New(4, nil, nil).BeginSolve()
	err := c.ForEachBlock(64, big, func(c *Ctx, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	failpoint.DisableAll()
	if err := c.BeginSolve().ForEachBlock(8, big, func(c *Ctx, i int) error { return nil }); err != nil {
		t.Fatalf("fresh scope after poison: %v", err)
	}
}

// TestFailpointSlowBlock: slow-block stalls dispatches long enough for
// a short deadline to land mid-fan-out, and the fan-out reports the
// deadline instead of hanging.
func TestFailpointSlowBlock(t *testing.T) {
	defer failpoint.DisableAll()
	failpoint.Enable(failpoint.SlowBlock, failpoint.Spec{Sleep: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	c := New(2, ctx, nil)
	err := c.ForEachBlock(256, big, func(c *Ctx, i int) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if failpoint.Fires(failpoint.SlowBlock) == 0 {
		t.Fatal("slow-block never fired")
	}
}
