// Panic isolation and fault injection at the block-dispatch boundary.
//
// Every block body the engine runs — a scheduler task executed from a
// deque (stolen or not), an inline block on the producer's ForEachBlock
// path, or a block of the serial fallback — is dispatched through
// runBlock: failpoints fire first (so chaos suites and operators can
// inject panics, stalls, allocation spikes and mid-recursion
// cancellation at exactly this boundary), then the body runs under a
// recover that converts a panic into a *PanicError carrying the value
// and stack. The error lands in the block's own error slot like any
// other failure, so one poisoned table fails its own request while
// sibling blocks — and sibling requests interleaved on the same
// scheduler — complete untouched, and no worker goroutine ever dies.
package solve

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/solve/failpoint"
)

// PanicError is a panic recovered at a task or request boundary,
// carrying the panic value and the stack of the panicking goroutine.
// The scheduler converts task panics into PanicErrors; the fdrepair
// batch layer does the same for panics escaping a request body.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack (runtime/debug.Stack),
	// captured before unwinding, so it includes the panic site.
	Stack []byte
}

// Error summarizes the panic; the stack is included because the only
// record of an isolated panic is the error that carries it.
func (e *PanicError) Error() string {
	return fmt.Sprintf("solve: recovered panic: %v\n%s", e.Value, e.Stack)
}

// NewPanicError captures the current stack for a value just recovered.
// Call it from inside the deferred recover so the stack still holds the
// panic site's frames.
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// runBlock dispatches one block body with fault isolation. All three
// dispatch paths (scheduler run, producer-inline, serial fallback) go
// through it, so panic recovery and failpoint evaluation behave
// identically wherever a block ends up executing.
func runBlock(c *Ctx, fn func(*Ctx, int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if st := c.Stats(); st != nil {
				st.Panics.Add(1)
			}
			err = NewPanicError(r)
		}
	}()
	if failpoint.Active() {
		c.evalFailpoints()
	}
	return fn(c, i)
}

// evalFailpoints runs the block-dispatch failpoints. PanicInBlock
// panics out of here into runBlock's recover; CancelMidRecursion
// poisons the current request's scope so the cancellation is observed
// at the next dispatch or recursion boundary, exactly like a deadline
// landing mid-solve.
func (c *Ctx) evalFailpoints() {
	failpoint.Eval(failpoint.SlowBlock)
	failpoint.Eval(failpoint.AllocSpike)
	if failpoint.Eval(failpoint.CancelMidRecursion) && c != nil {
		c.sc.fail(context.Canceled)
	}
	failpoint.Eval(failpoint.PanicInBlock)
}
