// Work-stealing task scheduler.
//
// The repair engine is a tree of independent subproblems: OptSRepair
// blocks at every recursion depth, marriage-matching connected
// components, U-repair planner components. The scheduler turns every
// fan-out into tasks on per-worker deques instead of recurse-then-join
// calls:
//
//   - each worker owns a bounded deque; the producer pushes and pops at
//     the bottom (LIFO, depth-first: a freshly pushed block's data is
//     still hot), idle workers steal from the top (FIFO, breadth-first:
//     a stolen task is the oldest and therefore the largest pending
//     subtree, amortizing the steal);
//   - a parent awaiting its blocks never parks while work is pending —
//     it pops its own deque, then scans the other deques, and only
//     sleeps when every deque is empty, woken again by the next push.
//     Nested recursion therefore cannot deadlock on the worker budget
//     and cannot idle a worker the way the old try-acquire pool did
//     (a worker acquired high in the tree used to park in wg.Wait while
//     the subtree below it ran serially);
//   - helper goroutines are spawned on demand, one per free worker
//     slot while tasks are queued, and exit when the deques drain, so
//     an idle Ctx holds no goroutines and needs no Close;
//   - cancellation is checked at dispatch — a cancelled solve drains
//     its queue without running the block bodies — and the dispatcher
//     feeds the inline/executed/stolen counters of Stats.
//
// Determinism: block results are joined by block index, so execution
// order (and who executes what) never changes a solve's result; every
// caller is byte-identical to the serial engine.
package solve

import (
	"sync"
	"sync/atomic"
)

// MinParallelBlock gates task creation in ForEachBlock: blocks below
// this size (rows, edges, ...) finish faster than the enqueue/steal
// round-trip costs, so they always run inline.
const MinParallelBlock = 96

// dequeCap bounds each worker deque (must be a power of two). A full
// deque makes the producer run the block inline, so the bound only
// caps memory and steal-scan cost, never correctness.
const dequeCap = 256

// task is one enqueued block: the join it belongs to and its block
// index (the join's fn closure carries everything else).
type task struct {
	j *join
	i int32
}

// join tracks one ForEachBlock fan-out: the block function, the
// per-index error slots, the producing request's scope and stats sink,
// and the count of blocks not yet finished. done closes when pending
// reaches zero; the atomic decrement orders every task's writes before
// the parent's reads.
//
// The scope rides the join (not the worker) because one scheduler
// serves every request of a Solver concurrently: tasks from different
// batch requests interleave on the same deques, and each must be
// dispatched under — and report its counters to — its own request's
// scope, whichever worker ends up executing or stealing it.
type join struct {
	fn      func(*Ctx, int) error
	errs    []error
	sc      *Scope
	stats   *Stats
	pending atomic.Int32
	done    chan struct{}
}

// finish retires k blocks (or the producer's guard).
func (j *join) finish(k int32) {
	if j.pending.Add(-k) == 0 {
		close(j.done)
	}
}

// deque is a bounded work-stealing deque. A mutex per operation is
// cheap at task granularity (every task is a ≥MinParallelBlock block);
// the LIFO/FIFO discipline, not lock-freedom, is what the scheduler's
// behavior comes from.
type deque struct {
	mu         sync.Mutex
	head, tail uint32 // monotonic; size = tail - head
	buf        [dequeCap]task
}

// push appends at the bottom (producer side); false when full.
func (d *deque) push(t task) bool {
	d.mu.Lock()
	if d.tail-d.head == dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[d.tail&(dequeCap-1)] = t
	d.tail++
	d.mu.Unlock()
	return true
}

// pop removes the most recently pushed task (producer side, LIFO).
func (d *deque) pop() (task, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return task{}, false
	}
	d.tail--
	i := d.tail & (dequeCap - 1)
	t := d.buf[i]
	d.buf[i] = task{}
	d.mu.Unlock()
	return t, true
}

// steal removes the oldest task (thief side, FIFO).
func (d *deque) steal() (task, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return task{}, false
	}
	i := d.head & (dequeCap - 1)
	t := d.buf[i]
	d.buf[i] = task{}
	d.head++
	d.mu.Unlock()
	return t, true
}

// worker is one scheduler slot: a deque, a worker-bound Ctx handed to
// the tasks it executes, and a private arena shard. A worker is owned
// by exactly one goroutine at a time (ownership passes through the
// free channel, which orders shard accesses), so the shard needs no
// locks.
type worker struct {
	id   int32
	sh   *shared
	dq   deque
	bctx Ctx // = Ctx{s: sh, w: this}; tasks receive &w.bctx
	ar   wArena
}

// sched is the per-Ctx work-stealing scheduler.
type sched struct {
	sh      *shared
	workers []*worker
	free    chan int32 // free worker slot ids
	queued  atomic.Int64
	wake    chan struct{} // capacity 1: pokes parked parents
}

func newSched(sh *shared, n int) *sched {
	s := &sched{
		sh:   sh,
		free: make(chan int32, n),
		wake: make(chan struct{}, 1),
	}
	s.workers = make([]*worker, n)
	for i := range s.workers {
		w := &worker{id: int32(i), sh: sh}
		w.bctx = Ctx{s: sh, w: w}
		s.workers[i] = w
		s.free <- int32(i)
	}
	return s
}

// tryAcquire takes a free worker slot without blocking.
func (s *sched) tryAcquire() *worker {
	select {
	case id := <-s.free:
		return s.workers[id]
	default:
		return nil
	}
}

func (s *sched) release(w *worker) { s.free <- w.id }

// poke wakes one parked parent (no-op when a wakeup is already
// pending). Parents re-poke while work remains queued, chaining the
// wakeup to every parked worker that can help.
func (s *sched) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// signal announces freshly queued work: wake a parked parent and, if a
// worker slot is idle, spawn a helper onto it.
func (s *sched) signal() {
	s.poke()
	if s.queued.Load() > 0 {
		if w := s.tryAcquire(); w != nil {
			go s.helper(w)
		}
	}
}

// helper drains tasks until the deques are empty, then releases its
// slot and exits — the scheduler holds no goroutines at idle.
func (s *sched) helper(w *worker) {
	for {
		t, ok := s.findTask(w)
		if !ok {
			s.release(w)
			// A task pushed between the final scan and the release saw
			// no free slot to spawn into; re-signal on its behalf.
			if s.queued.Load() > 0 {
				s.signal()
			}
			return
		}
		s.run(w, t)
	}
}

// findTask pops the worker's own deque (LIFO) and otherwise steals
// from the other workers (FIFO), scanning round-robin from the
// worker's right-hand neighbor.
func (s *sched) findTask(w *worker) (task, bool) {
	if t, ok := w.dq.pop(); ok {
		s.queued.Add(-1)
		return t, true
	}
	n := len(s.workers)
	for off := 1; off < n; off++ {
		v := s.workers[(int(w.id)+off)%n]
		if t, ok := v.dq.steal(); ok {
			s.queued.Add(-1)
			if st := t.j.stats; st != nil {
				st.Steals.Add(1)
			}
			return t, true
		}
	}
	return task{}, false
}

// run executes one dispatched task on w under the task's own scope: the
// worker's bound Ctx is re-pointed at the join's scope for the duration
// of the body (and restored afterwards, so a parent that helped on a
// foreign request's task resumes under its own scope). A cancelled
// request records its context error without running the block body, so
// its queued work drains promptly after the deadline — without
// poisoning tasks of other requests sharing the scheduler.
func (s *sched) run(w *worker, t task) {
	prev := w.bctx.sc
	w.bctx.sc = t.j.sc
	err := t.j.sc.err()
	if err == nil {
		err = runBlock(&w.bctx, t.j.fn, int(t.i))
	}
	w.bctx.sc = prev
	if err != nil {
		t.j.errs[t.i] = err
	}
	if st := t.j.stats; st != nil {
		st.BlocksParallel.Add(1)
	}
	t.j.finish(1)
}

// helpUntil runs the blocked-parent protocol: while j has unfinished
// blocks, execute pending tasks (own deque first, then steals — they
// may belong to any join, which is exactly what keeps deep nested
// fan-outs saturated); park only when every deque is empty, woken by
// the next push or by j completing.
func (s *sched) helpUntil(w *worker, j *join) {
	for {
		if j.pending.Load() == 0 {
			return
		}
		if t, ok := s.findTask(w); ok {
			s.run(w, t)
			continue
		}
		if j.pending.Load() == 0 {
			return
		}
		select {
		case <-j.done:
			return
		case <-s.wake:
			// Pass the wakeup on if there is still queued work (we may
			// have raced another parent for it, or our join may finish
			// before we reach it).
			if s.queued.Load() > 0 {
				s.poke()
			}
		}
	}
}

// ForEachBlock runs fn(_, 0..n-1) and joins the results by block
// index. Blocks of at least MinParallelBlock units (per the size
// callback) become tasks on the work-stealing scheduler; smaller
// blocks, serial contexts and saturated budgets run inline. fn
// receives the executing worker's bound Ctx — thread it into the
// block's recursion so nested fan-outs enqueue on that worker's deque
// and scratch comes from its arena shard.
//
// Error semantics match the serial algorithm: the returned error is
// the first (by block index) failure; the serial path stops there,
// while the scheduled path drains every block before reporting. A
// cancelled Ctx fails fast before any block runs, and tasks dispatched
// after cancellation are not executed.
func (c *Ctx) ForEachBlock(n int, size func(i int) int, fn func(c *Ctx, i int) error) error {
	if err := c.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	var sh *shared
	if c != nil {
		sh = c.s
	}
	if sh == nil || sh.sched == nil || n < 2 {
		return serialBlocks(c, n, fn)
	}
	// Tiny fan-out pre-pass: when no block reaches the task-size
	// threshold, the scheduled path below would enqueue nothing and run
	// every block inline anyway — while paying for a worker slot, the
	// join allocation, and the help protocol. Detect that up front and
	// run the plain serial loop; TasksInlined records the granularity
	// decision. The scan stops at the first large block, so fan-outs
	// with real parallel work pay O(prefix), not O(n).
	allTiny := true
	for i := 0; i < n; i++ {
		if size(i) >= MinParallelBlock {
			allTiny = false
			break
		}
	}
	if allTiny {
		if st := c.Stats(); st != nil {
			st.TasksInlined.Add(int64(n))
		}
		return serialBlocks(c, n, fn)
	}
	s := sh.sched
	w := c.w
	acquired := false
	if w == nil {
		// An unbound goroutine (a top-level solve) claims a worker slot
		// for the duration of the fan-out; when the budget is already
		// saturated by other solves on this Ctx, degrade to the serial
		// algorithm exactly like a full deque would.
		if w = s.tryAcquire(); w == nil {
			return serialBlocks(c, n, fn)
		}
		acquired = true
	}
	// Bind the worker to this fan-out's scope for the inline calls below
	// (c may be a freshly scoped Ctx riding a worker whose bound Ctx
	// still points at an enclosing request's scope), and restore on the
	// way out so an enclosing fan-out resumes under its own scope.
	prevScope := w.bctx.sc
	w.bctx.sc = c.sc
	j := &join{fn: fn, errs: make([]error, n), sc: c.sc, stats: c.Stats(), done: make(chan struct{})}
	j.pending.Store(1) // producer guard: keeps done from closing mid-enqueue
	var inline, tiny int64
	//lint:ignore fdlint/cancelcheck the fan-out polls through j.sc.err() before every inline dispatch; workers poll per dequeued task
	for i := 0; i < n; i++ {
		if size(i) >= MinParallelBlock {
			j.pending.Add(1)
			if w.dq.push(task{j: j, i: int32(i)}) {
				s.queued.Add(1)
				s.signal()
				continue
			}
			j.pending.Add(-1) // deque full: run inline below
		} else {
			tiny++ // below-threshold block: inline by granularity choice
		}
		inline++
		err := j.sc.err()
		if err == nil {
			err = runBlock(&w.bctx, fn, i)
		}
		if err != nil {
			j.errs[i] = err
		}
	}
	j.finish(1) // drop the producer guard
	s.helpUntil(w, j)
	w.bctx.sc = prevScope
	if acquired {
		s.release(w)
	}
	if st := j.stats; st != nil && inline > 0 {
		st.BlocksSerial.Add(inline)
		if tiny > 0 {
			st.TasksInlined.Add(tiny)
		}
	}
	for _, err := range j.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serialBlocks is the non-scheduled path: run blocks in order, stop at
// the first failure (counting only blocks actually run, matching the
// scheduled path's accounting). Cancellation is checked before every
// block — the same dispatch check the scheduler's run() performs — so
// serial solves stop at block boundaries after a deadline even when
// the block bodies carry no internal check.
func serialBlocks(c *Ctx, n int, fn func(*Ctx, int) error) error {
	st := c.Stats()
	for i := 0; i < n; i++ {
		err := c.Err()
		if err == nil {
			err = runBlock(c, fn, i)
		}
		if err != nil {
			if st != nil {
				st.BlocksSerial.Add(int64(i + 1))
			}
			return err
		}
	}
	if st != nil {
		st.BlocksSerial.Add(int64(n))
	}
	return nil
}

// ---- Per-worker arena shards ----

// wArenaSlots bounds each shard's per-type buffer count; overflow goes
// to the shared sync.Pools. Small on purpose: the shard exists to keep
// a worker's hottest buffers local, not to replace the pools.
const wArenaSlots = 8

// wArena is a worker-private scratch cache consulted before the shared
// pools. It is touched only by the goroutine owning the worker (slot
// ownership passes through the scheduler's free channel, which
// provides the happens-before edge), so access is lock-free, and
// buffers a worker recycles stay in that worker's cache even when the
// tasks producing them were stolen from another deque.
type wArena struct {
	int32s [][]int32
	f64s   [][]float64
	slices [][][]int32
	keyed  map[any][]any
}

// shardGet scans the shard stack newest-first for a buffer with
// capacity ≥ n, removing it by swap-with-last.
func shardGet[T any](store *[][]T, n int) ([]T, bool) {
	st := *store
	for k := len(st) - 1; k >= 0; k-- {
		if s := st[k]; cap(s) >= n {
			last := len(st) - 1
			st[k] = st[last]
			st[last] = nil
			*store = st[:last]
			return s[:n], true
		}
	}
	return nil, false
}

// shardPut parks a buffer on the shard stack; false when the shard is
// full (the caller then overflows to the shared pools).
func shardPut[T any](store *[][]T, s []T) bool {
	if len(*store) >= wArenaSlots {
		return false
	}
	*store = append(*store, s)
	return true
}

func (a *wArena) getInt32s(n int) ([]int32, bool)     { return shardGet(&a.int32s, n) }
func (a *wArena) putInt32s(s []int32) bool            { return shardPut(&a.int32s, s) }
func (a *wArena) getFloat64s(n int) ([]float64, bool) { return shardGet(&a.f64s, n) }
func (a *wArena) putFloat64s(s []float64) bool        { return shardPut(&a.f64s, s) }
func (a *wArena) getSlices(n int) ([][]int32, bool)   { return shardGet(&a.slices, n) }
func (a *wArena) putSlices(s [][]int32) bool          { return shardPut(&a.slices, s) }

func (a *wArena) getKeyed(key any) any {
	st := a.keyed[key]
	if len(st) == 0 {
		return nil
	}
	v := st[len(st)-1]
	st[len(st)-1] = nil
	a.keyed[key] = st[:len(st)-1]
	return v
}

func (a *wArena) putKeyed(key any, v any) bool {
	st := a.keyed[key]
	if len(st) >= wArenaSlots/2 {
		return false
	}
	if a.keyed == nil {
		a.keyed = make(map[any][]any, 4)
	}
	a.keyed[key] = append(st, v)
	return true
}
