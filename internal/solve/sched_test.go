package solve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// big is a size callback that makes every block a scheduler task.
func big(int) int { return MinParallelBlock }

func TestDequeLIFOPopFIFOSteal(t *testing.T) {
	var d deque
	j := &join{}
	for i := 0; i < 5; i++ {
		if !d.push(task{j: j, i: int32(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	// Owner pops the most recently pushed task.
	if tk, ok := d.pop(); !ok || tk.i != 4 {
		t.Fatalf("pop = %v, want i=4 (LIFO)", tk.i)
	}
	// Thieves take the oldest.
	if tk, ok := d.steal(); !ok || tk.i != 0 {
		t.Fatalf("steal = %v, want i=0 (FIFO)", tk.i)
	}
	if tk, ok := d.steal(); !ok || tk.i != 1 {
		t.Fatalf("steal = %v, want i=1", tk.i)
	}
	if tk, ok := d.pop(); !ok || tk.i != 3 {
		t.Fatalf("pop = %v, want i=3", tk.i)
	}
	if tk, ok := d.pop(); !ok || tk.i != 2 {
		t.Fatalf("pop = %v, want i=2", tk.i)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque")
	}
}

func TestDequeBoundedOverflow(t *testing.T) {
	var d deque
	j := &join{}
	for i := 0; i < dequeCap; i++ {
		if !d.push(task{j: j, i: int32(i)}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.push(task{j: j}) {
		t.Fatal("push beyond capacity succeeded")
	}
	if _, ok := d.steal(); !ok {
		t.Fatal("steal from full deque")
	}
	if !d.push(task{j: j, i: 999}) {
		t.Fatal("push after drain failed")
	}
}

// TestNestedFanOutCompletes drives deep nested fan-outs through a tiny
// worker budget: every level enqueues scheduler tasks, so a parent
// that parked instead of helping would deadlock (the budget is far
// smaller than the number of simultaneously blocked parents).
func TestNestedFanOutCompletes(t *testing.T) {
	for _, workers := range []int{2, 4} {
		c := New(workers, nil, nil)
		var leaves atomic.Int64
		var recurse func(wc *Ctx, depth int) error
		recurse = func(wc *Ctx, depth int) error {
			if depth == 0 {
				leaves.Add(1)
				return nil
			}
			return wc.ForEachBlock(3, big, func(cc *Ctx, _ int) error {
				return recurse(cc, depth-1)
			})
		}
		done := make(chan error, 1)
		go func() { done <- recurse(c, 6) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: nested fan-out deadlocked", workers)
		}
		if got := leaves.Load(); got != 729 {
			t.Fatalf("workers=%d: %d leaves, want 729", workers, got)
		}
		leaves.Store(0)
	}
}

// TestBlockedParentHelps pins the core scheduler property the old
// try-acquire pool lacked: a parent blocked on its join executes other
// pending tasks. One root task fans out below the root while the
// other root task blocks until a deep child has run — with the old
// pool (parent parks in wg.Wait, nested fan-out finds the budget
// saturated and serializes) this shape cannot finish.
func TestBlockedParentHelps(t *testing.T) {
	c := New(2, nil, nil)
	deepRan := make(chan struct{})
	err := c.ForEachBlock(2, big, func(wc *Ctx, i int) error {
		if i == 1 {
			// Blocks until the other branch's *nested* task has run.
			// Only a helping (not parking) executor can run it: both
			// worker slots are occupied by the two root blocks.
			select {
			case <-deepRan:
				return nil
			case <-time.After(30 * time.Second):
				return fmt.Errorf("deep task never ran: executor parked instead of helping")
			}
		}
		return wc.ForEachBlock(2, big, func(_ *Ctx, k int) error {
			if k == 1 {
				close(deepRan)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStealCounters: with a deep chain whose fan-out happens below the
// root, idle workers must steal across recursion levels (the executed
// and stolen counters prove tasks moved between workers).
func TestStealCounters(t *testing.T) {
	st := new(Stats)
	c := New(4, nil, st)
	var recurse func(wc *Ctx, depth int) error
	recurse = func(wc *Ctx, depth int) error {
		if depth == 0 {
			time.Sleep(100 * time.Microsecond) // keep tasks alive long enough to be stolen
			return nil
		}
		return wc.ForEachBlock(4, big, func(cc *Ctx, _ int) error {
			return recurse(cc, depth-1)
		})
	}
	if err := recurse(c, 4); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.BlocksParallel == 0 {
		t.Fatalf("no tasks executed from deques: %+v", snap)
	}
	if snap.Steals == 0 {
		t.Fatalf("no steals on a 4-level fan-out with 4 workers: %+v", snap)
	}
	if snap.Steals > snap.BlocksParallel {
		t.Fatalf("steals %d > executed %d", snap.Steals, snap.BlocksParallel)
	}
}

// TestSaturatedBudgetDegradesSerial: more concurrent top-level solves
// than worker slots must degrade the extras to the serial path, never
// block them.
func TestSaturatedBudgetDegradesSerial(t *testing.T) {
	c := New(2, nil, nil)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = c.ForEachBlock(16, big, func(_ *Ctx, i int) error {
				time.Sleep(10 * time.Microsecond)
				return nil
			})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("solve %d: %v", g, err)
		}
	}
}

// TestWorkerArenaShard: scratch released on a worker-bound Ctx is
// served back from the worker's private shard, and the shard never
// leaks buffers across worker identities unsafely (exercised under
// -race by the scheduler tests above; here we pin the hit behavior).
func TestWorkerArenaShard(t *testing.T) {
	c := New(2, nil, nil)
	err := c.ForEachBlock(2, big, func(wc *Ctx, i int) error {
		if wc.w == nil {
			return fmt.Errorf("block %d: fn received an unbound Ctx", i)
		}
		s := wc.Int32s(64)
		wc.PutInt32s(s)
		s2 := wc.Int32s(32)
		if cap(s2) < 64 {
			return fmt.Errorf("block %d: shard lost the pooled buffer (cap %d)", i, cap(s2))
		}
		got, ok := wc.w.ar.getInt32s(1)
		if ok {
			// s2 is still checked out; the shard should be empty now.
			return fmt.Errorf("block %d: unexpected extra shard buffer %v", i, got)
		}
		wc.PutInt32s(s2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerIdleNoGoroutines: helpers exit once the deques drain, so
// an idle Ctx needs no Close. We can't count goroutines portably, but
// we can assert all worker slots return to the free list.
func TestSchedulerIdleNoGoroutines(t *testing.T) {
	c := New(4, nil, nil)
	err := c.ForEachBlock(32, big, func(*Ctx, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	s := c.s.sched
	deadline := time.After(10 * time.Second)
	for got := 0; got < 4; got++ {
		select {
		case <-s.free:
		case <-deadline:
			t.Fatalf("only %d of 4 worker slots returned to the free list", got)
		}
	}
	if q := s.queued.Load(); q != 0 {
		t.Fatalf("queued = %d after drain", q)
	}
}
