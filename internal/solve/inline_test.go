package solve

import "testing"

// TestForEachBlockTinyInline pins the tiny-solve granularity decision:
// blocks below MinParallelBlock run inline in the producing worker
// instead of being enqueued as steal-able tasks, and the decision is
// visible in SolveStats as tasks_inlined.
func TestForEachBlockTinyInline(t *testing.T) {
	// All-tiny fan-out on a scheduled context: the pre-pass must skip
	// the scheduler wholesale and count every block.
	st := new(Stats)
	c := New(2, nil, st)
	n := 8
	out := make([]int, n)
	err := c.ForEachBlock(n, func(int) int { return 1 }, func(_ *Ctx, i int) error {
		out[i] = i + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("block %d = %d", i, v)
		}
	}
	snap := st.Snapshot()
	if snap.TasksInlined != int64(n) {
		t.Fatalf("tasks_inlined = %d, want %d", snap.TasksInlined, n)
	}
	if snap.BlocksParallel != 0 {
		t.Fatalf("blocks_parallel = %d, want 0 (nothing reached the threshold)", snap.BlocksParallel)
	}
	if snap.BlocksSerial != int64(n) {
		t.Fatalf("blocks_serial = %d, want %d", snap.BlocksSerial, n)
	}

	// Mixed fan-out: only the below-threshold block counts as inlined;
	// the large ones are enqueued (or run inline on deque pressure, but
	// never counted as a granularity decision).
	st.Reset()
	sizes := []int{MinParallelBlock * 2, 1, MinParallelBlock * 2}
	err = c.ForEachBlock(len(sizes), func(i int) int { return sizes[i] }, func(_ *Ctx, i int) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap = st.Snapshot()
	if snap.TasksInlined != 1 {
		t.Fatalf("mixed fan-out tasks_inlined = %d, want 1", snap.TasksInlined)
	}
	if snap.BlocksSerial+snap.BlocksParallel != int64(len(sizes)) {
		t.Fatalf("blocks accounted %d+%d, want %d", snap.BlocksSerial, snap.BlocksParallel, len(sizes))
	}

	// Serial context: no scheduler, no granularity decision to record.
	st2 := new(Stats)
	cs := New(1, nil, st2)
	if err := cs.ForEachBlock(4, func(int) int { return 1 }, func(*Ctx, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := st2.TasksInlined.Load(); got != 0 {
		t.Fatalf("serial context tasks_inlined = %d, want 0", got)
	}

	// The counter survives Snapshot/Merge/Reset round trips.
	agg := new(Stats)
	agg.Merge(snap)
	if agg.TasksInlined.Load() != snap.TasksInlined {
		t.Fatalf("merge lost tasks_inlined: %d vs %d", agg.TasksInlined.Load(), snap.TasksInlined)
	}
	agg.Reset()
	if agg.Snapshot() != (Snapshot{}) {
		t.Fatalf("reset left %+v", agg.Snapshot())
	}
}
