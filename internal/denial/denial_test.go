package denial

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

var emp = schema.MustNew("Emp", "name", "rank", "salary")

func TestParseAndString(t *testing.T) {
	c, err := Parse(emp, "t1.rank < t2.rank & t1.salary > t2.salary")
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	if !strings.Contains(s, "t1.rank < t2.rank") || !strings.Contains(s, "t1.salary > t2.salary") {
		t.Errorf("String = %q", s)
	}
	for _, bad := range []string{
		"", "t1.rank", "t3.rank < t2.rank", "t1.bogus < t2.rank",
		"t1.rank ~ t2.rank", "t1rank < t2.rank",
	} {
		if _, err := Parse(emp, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestOrderConstraint(t *testing.T) {
	// "A higher rank never earns less": forbid rank1 < rank2 while
	// salary1 > salary2.
	c, err := Parse(emp, "t1.rank < t2.rank & t1.salary > t2.salary")
	if err != nil {
		t.Fatal(err)
	}
	ok1 := table.Tuple{"ann", "1", "100"}
	ok2 := table.Tuple{"bob", "2", "150"}
	bad := table.Tuple{"eve", "3", "120"} // outranks bob but earns less
	if c.Violates(ok1, ok2) {
		t.Error("monotone pair should not violate")
	}
	if !c.Violates(ok2, bad) || !c.Violates(bad, ok2) {
		t.Error("inversion must violate in either argument order")
	}
}

func TestNumericVsLexicographic(t *testing.T) {
	c, err := Parse(emp, "t1.salary > t2.salary & t1.rank = t2.rank")
	if err != nil {
		t.Fatal(err)
	}
	// Numeric comparison: "9" < "10" numerically though "9" > "10"
	// lexicographically.
	low := table.Tuple{"a", "1", "9"}
	high := table.Tuple{"b", "1", "10"}
	if !c.Violates(low, high) {
		t.Error("9 vs 10 must compare numerically (violation via t1=high)")
	}
	// Non-numeric falls back to lexicographic.
	s1 := table.Tuple{"a", "1", "apple"}
	s2 := table.Tuple{"b", "1", "banana"}
	if !c.Violates(s2, s1) && !c.Violates(s1, s2) {
		t.Error("lexicographic fallback should order apple < banana")
	}
}

// TestFDTranslationAgrees: the FD→DC translation produces exactly the
// FD conflict graph on random tables.
func TestFDTranslationAgrees(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	cs, err := FromFDSet(ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(111))
	for iter := 0; iter < 20; iter++ {
		tab := workload.RandomTable(sc, 8, 2, rng)
		want := map[table.ConflictEdge]bool{}
		for _, e := range tab.ConflictGraph(ds) {
			want[e] = true
		}
		got := ConflictGraph(cs, tab)
		if len(got) != len(want) {
			t.Fatalf("edge counts differ: %d vs %d", len(got), len(want))
		}
		for _, e := range got {
			if !want[e] {
				t.Fatalf("extra edge %v", e)
			}
		}
		if Satisfies(cs, tab) != tab.Satisfies(ds) {
			t.Fatal("satisfaction disagrees")
		}
	}
}

// TestExactMatchesFDExact: the DC exact repair agrees with the FD exact
// repair cost on translated FD sets.
func TestExactMatchesFDExact(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	cs, err := FromFDSet(ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(113))
	for iter := 0; iter < 10; iter++ {
		tab := workload.RandomWeightedTable(sc, 8, 2, 3, rng)
		viaDC, err := ExactSRepair(cs, tab)
		if err != nil {
			t.Fatal(err)
		}
		viaFD, err := srepair.Exact(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !table.WeightEq(table.DistSub(viaDC, tab), table.DistSub(viaFD, tab)) {
			t.Fatalf("costs differ: %v vs %v", table.DistSub(viaDC, tab), table.DistSub(viaFD, tab))
		}
	}
}

// TestApprox2Guarantee: the 2-approximation carries over to DCs.
func TestApprox2Guarantee(t *testing.T) {
	c, err := Parse(emp, "t1.rank < t2.rank & t1.salary > t2.salary")
	if err != nil {
		t.Fatal(err)
	}
	cs := []*Constraint{c}
	rng := rand.New(rand.NewSource(115))
	for iter := 0; iter < 15; iter++ {
		tab := table.New(emp)
		for i := 1; i <= 10; i++ {
			tab.MustInsert(i, table.Tuple{
				"p" + string(rune('a'+i)),
				itoa(rng.Intn(4)),
				itoa(50 + rng.Intn(50)),
			}, float64(1+rng.Intn(3)))
		}
		ap, err := Approx2SRepair(cs, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !Satisfies(cs, ap) {
			t.Fatal("approx repair violates the constraint")
		}
		ex, err := ExactSRepair(cs, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !Satisfies(cs, ex) {
			t.Fatal("exact repair violates the constraint")
		}
		ca, ce := table.DistSub(ap, tab), table.DistSub(ex, tab)
		if ca > 2*ce+1e-9 {
			t.Fatalf("approx %v exceeds 2×opt %v", ca, ce)
		}
	}
}

func TestConstraintValidation(t *testing.T) {
	if _, err := New(emp); err == nil {
		t.Error("empty constraint must be rejected")
	}
	if _, err := New(nil, Atom{}); err == nil {
		t.Error("nil schema must be rejected")
	}
	if _, err := New(emp, Atom{Left: Ref{Var: 2}}); err == nil {
		t.Error("bad variable must be rejected")
	}
	if _, err := New(emp, Atom{Left: Ref{Attr: 9}}); err == nil {
		t.Error("bad attribute must be rejected")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}
