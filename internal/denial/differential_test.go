package denial

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
	"repro/internal/workload"
)

// The encoded engine must reproduce the seed implementation
// byte-identically — same conflict edges, same repair rows in the same
// order — at every worker count, across equality-only constraints
// (FD translations), order constraints over numeric columns, and
// mixed numeric/string tables that stress the value-comparison rules.

var diffWorkers = []int{1, 2, 4, 8}

func sameTables(t *testing.T, label string, want, got *table.Table) {
	t.Helper()
	wr, gr := want.Rows(), got.Rows()
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d rows, oracle has %d", label, len(gr), len(wr))
	}
	for i := range wr {
		if wr[i].ID != gr[i].ID || wr[i].Weight != gr[i].Weight ||
			!reflect.DeepEqual(wr[i].Tuple, gr[i].Tuple) {
			t.Fatalf("%s: row %d diverges: got %+v, oracle %+v", label, i, gr[i], wr[i])
		}
	}
}

// mixedTable draws cells that are randomly numeric or plain strings, so
// comparisons exercise both the numeric and the lexicographic path of
// the value ordering.
func mixedTable(sc *schema.Schema, n int, rng *rand.Rand) *table.Table {
	tuples := make([]table.Tuple, n)
	weights := make([]float64, n)
	for i := range tuples {
		tup := make(table.Tuple, sc.Arity())
		for c := range tup {
			if rng.Intn(2) == 0 {
				tup[c] = fmt.Sprintf("%d", rng.Intn(12))
			} else {
				tup[c] = fmt.Sprintf("s%d", rng.Intn(4))
			}
		}
		tuples[i] = tup
		weights[i] = float64(1 + rng.Intn(4))
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, weights)
	return t
}

func randomConstraints(t *testing.T, sc *schema.Schema, rng *rand.Rand) []*Constraint {
	t.Helper()
	var cs []*Constraint
	switch rng.Intn(3) {
	case 0:
		ds := fd.MustParseSet(sc, "A -> B")
		if rng.Intn(2) == 0 {
			ds = fd.MustParseSet(sc, "A -> B", "B -> C")
		}
		fds, err := FromFDSet(ds)
		if err != nil {
			t.Fatalf("FD translation: %v", err)
		}
		cs = fds
	case 1:
		c, err := Parse(sc, "t1.A = t2.A & t1.B < t2.B & t1.C > t2.C")
		if err != nil {
			t.Fatalf("parsing order constraint: %v", err)
		}
		cs = []*Constraint{c}
	default:
		c1, err := Parse(sc, "t1.B < t2.B & t1.C > t2.C")
		if err != nil {
			t.Fatalf("parsing join-free constraint: %v", err)
		}
		c2, err := Parse(sc, "t1.A = t2.A & t1.C != t2.C")
		if err != nil {
			t.Fatalf("parsing inequation constraint: %v", err)
		}
		cs = []*Constraint{c1, c2}
	}
	return cs
}

func randomDenialTable(sc *schema.Schema, maxN int, rng *rand.Rand) *table.Table {
	n := rng.Intn(maxN + 1)
	switch rng.Intn(3) {
	case 0:
		return workload.RankedTable(sc, n, 1+rng.Intn(5), 1+rng.Intn(8), rng)
	case 1:
		return workload.RandomTable(sc, n, 1+rng.Intn(4), rng)
	default:
		return mixedTable(sc, n, rng)
	}
}

func TestDifferentialDenialConflictGraph(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		tab := randomDenialTable(sc, 160, rng)
		cs := randomConstraints(t, sc, rng)
		want := ConflictGraph(cs, tab)
		for _, w := range diffWorkers {
			got, err := ConflictGraphCtx(solve.New(w, nil, nil), cs, tab)
			if err != nil {
				t.Fatalf("trial %d workers=%d: encoded conflict graph: %v", trial, w, err)
			}
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("trial %d workers=%d: %d edges, oracle %d: got %v, oracle %v",
					trial, w, len(got), len(want), got, want)
			}
		}
	}
}

func TestDifferentialDenialApprox(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		tab := randomDenialTable(sc, 160, rng)
		cs := randomConstraints(t, sc, rng)
		want, err := Approx2SRepair(cs, tab)
		if err != nil {
			t.Fatalf("trial %d: seed approx: %v", trial, err)
		}
		for _, w := range diffWorkers {
			got, err := Approx2SRepairCtx(solve.New(w, nil, nil), cs, tab)
			if err != nil {
				t.Fatalf("trial %d workers=%d: encoded approx: %v", trial, w, err)
			}
			sameTables(t, "approx repair", want, got)
		}
	}
}

func TestDifferentialDenialExact(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		tab := randomDenialTable(sc, 40, rng)
		cs := randomConstraints(t, sc, rng)
		want, wantErr := ExactSRepair(cs, tab)
		for _, w := range diffWorkers {
			got, err := ExactSRepairCtx(solve.New(w, nil, nil), cs, tab)
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("trial %d workers=%d: error mismatch: got %v, oracle %v",
					trial, w, err, wantErr)
			}
			if wantErr != nil {
				continue
			}
			sameTables(t, "exact repair", want, got)
		}
	}
}
