// Package denial extends subset repairing from FDs to binary denial
// constraints — the first future-work direction of Section 5. A binary
// denial constraint forbids the coexistence of two tuples matching a
// conjunction of comparison atoms:
//
//	¬∃ t1, t2 : t1 ≠ t2 ∧ atom1 ∧ atom2 ∧ ...
//
// where each atom compares an attribute of t1 or t2 with an attribute
// of the other (or the same) tuple under {=, ≠, <, ≤, >, ≥}. Every FD
// X → A is the denial constraint ¬∃ t1,t2: t1[X]=t2[X] ∧ t1[A]≠t2[A],
// and order atoms express constraints FDs cannot (e.g. "a higher rank
// never earns less").
//
// Because the constraints are binary, a consistent subset is still an
// independent set of a conflict graph, so the vertex-cover machinery of
// Proposition 3.3 carries over verbatim: exact optimal S-repairs via
// branch and bound and a 2-approximation via Bar-Yehuda–Even. (The
// dichotomy of Theorem 3.4 does not: its simplifications are
// FD-specific, and the paper leaves denial constraints open.)
package denial

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/table"
)

// Op is a comparison operator of an atom.
type Op int

const (
	OpEq Op = iota
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
)

var opNames = map[Op]string{
	OpEq: "=", OpNeq: "!=", OpLt: "<", OpLeq: "<=", OpGt: ">", OpGeq: ">=",
}

func (o Op) String() string { return opNames[o] }

// Ref addresses one side of an atom: attribute Attr of tuple variable
// Var (0 for t1, 1 for t2).
type Ref struct {
	Var  int
	Attr int
}

// Atom is a comparison Left op Right between tuple attributes.
type Atom struct {
	Left  Ref
	Op    Op
	Right Ref
}

// Constraint is a binary denial constraint: a conjunction of atoms that
// no pair of distinct tuples may satisfy.
type Constraint struct {
	sc    *schema.Schema
	atoms []Atom
}

// New builds a constraint over the schema, validating attribute
// positions and tuple variables.
func New(sc *schema.Schema, atoms ...Atom) (*Constraint, error) {
	if sc == nil {
		return nil, fmt.Errorf("denial: nil schema")
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("denial: constraint needs at least one atom")
	}
	for i, a := range atoms {
		for _, ref := range []Ref{a.Left, a.Right} {
			if ref.Var != 0 && ref.Var != 1 {
				return nil, fmt.Errorf("denial: atom %d uses tuple variable t%d", i, ref.Var+1)
			}
			if ref.Attr < 0 || ref.Attr >= sc.Arity() {
				return nil, fmt.Errorf("denial: atom %d addresses attribute %d outside %s", i, ref.Attr, sc)
			}
		}
		if _, ok := opNames[a.Op]; !ok {
			return nil, fmt.Errorf("denial: atom %d has unknown operator", i)
		}
	}
	return &Constraint{sc: sc, atoms: atoms}, nil
}

// Schema returns the constraint's schema.
func (c *Constraint) Schema() *schema.Schema { return c.sc }

// String renders the constraint in the parser's syntax.
func (c *Constraint) String() string {
	parts := make([]string, len(c.atoms))
	for i, a := range c.atoms {
		parts[i] = fmt.Sprintf("t%d.%s %s t%d.%s",
			a.Left.Var+1, c.sc.AttrName(a.Left.Attr), a.Op,
			a.Right.Var+1, c.sc.AttrName(a.Right.Attr))
	}
	return strings.Join(parts, " & ")
}

// compare orders two values numerically when both parse as floats,
// lexicographically otherwise; returns -1, 0, or 1.
func compare(a, b table.Value) int {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// holds evaluates an atom against an assignment (t1, t2).
func (a Atom) holds(t1, t2 table.Tuple) bool {
	pick := func(r Ref) table.Value {
		if r.Var == 0 {
			return t1[r.Attr]
		}
		return t2[r.Attr]
	}
	cmp := compare(pick(a.Left), pick(a.Right))
	switch a.Op {
	case OpEq:
		return cmp == 0
	case OpNeq:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLeq:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGeq:
		return cmp >= 0
	default:
		return false
	}
}

// Violates reports whether the (unordered) tuple pair violates the
// constraint under either assignment of (t1, t2).
func (c *Constraint) Violates(u, v table.Tuple) bool {
	return c.violatesOrdered(u, v) || c.violatesOrdered(v, u)
}

func (c *Constraint) violatesOrdered(t1, t2 table.Tuple) bool {
	for _, a := range c.atoms {
		if !a.holds(t1, t2) {
			return false
		}
	}
	return true
}

// FromFD translates an FD X → Y into the equivalent set of denial
// constraints (one per rhs attribute in canonical form):
// ¬∃t1,t2: t1[X]=t2[X] ∧ t1[A]≠t2[A].
func FromFD(sc *schema.Schema, f fd.FD) ([]*Constraint, error) {
	var out []*Constraint
	for _, rhs := range f.RHS.Diff(f.LHS).Positions() {
		var atoms []Atom
		for _, x := range f.LHS.Positions() {
			atoms = append(atoms, Atom{Left: Ref{0, x}, Op: OpEq, Right: Ref{1, x}})
		}
		atoms = append(atoms, Atom{Left: Ref{0, rhs}, Op: OpNeq, Right: Ref{1, rhs}})
		c, err := New(sc, atoms...)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// FromFDSet translates a whole FD set.
func FromFDSet(ds *fd.Set) ([]*Constraint, error) {
	var out []*Constraint
	for _, f := range ds.Canonical().FDs() {
		cs, err := FromFD(ds.Schema(), f)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}

// Parse reads a constraint from the textual form
// "t1.A = t2.A & t1.B != t2.B" with operators =, !=, <, <=, >, >=.
func Parse(sc *schema.Schema, spec string) (*Constraint, error) {
	var atoms []Atom
	for _, part := range strings.Split(spec, "&") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 3 {
			return nil, fmt.Errorf("denial: atom %q is not of the form \"tI.Attr op tJ.Attr\"", part)
		}
		left, err := parseRef(sc, fields[0])
		if err != nil {
			return nil, err
		}
		op, err := parseOp(fields[1])
		if err != nil {
			return nil, err
		}
		right, err := parseRef(sc, fields[2])
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, Atom{Left: left, Op: op, Right: right})
	}
	return New(sc, atoms...)
}

func parseRef(sc *schema.Schema, s string) (Ref, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return Ref{}, fmt.Errorf("denial: reference %q lacks a dot", s)
	}
	varPart, attrPart := s[:dot], s[dot+1:]
	var v int
	switch varPart {
	case "t1":
		v = 0
	case "t2":
		v = 1
	default:
		return Ref{}, fmt.Errorf("denial: unknown tuple variable %q", varPart)
	}
	i, ok := sc.AttrIndex(attrPart)
	if !ok {
		return Ref{}, fmt.Errorf("denial: unknown attribute %q", attrPart)
	}
	return Ref{Var: v, Attr: i}, nil
}

func parseOp(s string) (Op, error) {
	for op, name := range opNames {
		if s == name {
			return op, nil
		}
	}
	return 0, fmt.Errorf("denial: unknown operator %q", s)
}

// ConflictGraph returns the pairs of tuple ids violating at least one
// constraint. Quadratic (denial constraints have no lhs to group by).
func ConflictGraph(cs []*Constraint, t *table.Table) []table.ConflictEdge {
	rows := t.Rows()
	var out []table.ConflictEdge
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			for _, c := range cs {
				if c.Violates(rows[i].Tuple, rows[j].Tuple) {
					out = append(out, table.ConflictEdge{ID1: rows[i].ID, ID2: rows[j].ID})
					break
				}
			}
		}
	}
	return out
}

// Satisfies reports whether the table violates none of the constraints.
func Satisfies(cs []*Constraint, t *table.Table) bool {
	return len(ConflictGraph(cs, t)) == 0
}

// repairProblem builds the vertex-cover instance.
func repairProblem(cs []*Constraint, t *table.Table) (*graph.Graph, []int) {
	ids := t.IDs()
	index := make(map[int]int, len(ids))
	weights := make([]float64, len(ids))
	for i, id := range ids {
		index[id] = i
		weights[i] = t.Weight(id)
	}
	g := graph.MustNewGraph(weights)
	for _, e := range ConflictGraph(cs, t) {
		if err := g.AddEdge(index[e.ID1], index[e.ID2]); err != nil {
			panic(err)
		}
	}
	return g, ids
}

func coverToSubset(t *table.Table, ids []int, cover map[int]bool) *table.Table {
	var keep []int
	for i, id := range ids {
		if !cover[i] {
			keep = append(keep, id)
		}
	}
	return t.MustSubsetByIDs(keep)
}

// ExactSRepair computes an optimal S-repair under binary denial
// constraints via exact minimum-weight vertex cover (exponential,
// size-guarded — the problem is APX-hard already for FDs).
func ExactSRepair(cs []*Constraint, t *table.Table) (*table.Table, error) {
	g, ids := repairProblem(cs, t)
	cover, err := g.ExactMinVertexCover()
	if err != nil {
		return nil, err
	}
	return coverToSubset(t, ids, cover), nil
}

// Approx2SRepair computes a 2-optimal S-repair in polynomial time
// (Proposition 3.3 carries over to binary denial constraints).
func Approx2SRepair(cs []*Constraint, t *table.Table) (*table.Table, error) {
	g, ids := repairProblem(cs, t)
	return coverToSubset(t, ids, g.ApproxVertexCoverBE()), nil
}
