package denial

// The encoded denial engine: conflict detection over precompiled
// comparison keys instead of per-pair string parsing. The seed path
// re-parses both values as floats on every compare — O(n²·|atoms|)
// ParseFloat calls; here every column referenced by an atom is compiled
// once into (isNumeric, float64) keys, equality atoms joining the two
// tuple variables on one attribute become group-by keys (a violating
// pair must agree on them under the seed's compare, so conflicts only
// live inside groups), and the residual atoms are evaluated pairwise on
// the keys. Constraints with no such equality atom fall back to a
// chunk-parallel pairwise scan — still with compiled keys. Units fan
// out on the solve context's scheduler; the merged edge list is sorted
// and deduplicated, reproducing the seed's conflict graph exactly, so
// the unchanged vertex-cover solvers return byte-identical repairs.

import (
	"slices"
	"strconv"

	"repro/internal/graph"
	"repro/internal/solve"
	"repro/internal/table"
)

// denialChunkRows is the first-index chunk width of the ungrouped
// pairwise scan; each chunk is one scheduler task.
const denialChunkRows = 256

// colKeys is one column compiled for comparison: per row, whether the
// value parses as a float and its numeric value. The seed's compare
// semantics — numeric when both sides parse, lexicographic otherwise —
// are evaluated on these keys plus the original strings.
type colKeys struct {
	isNum []bool
	num   []float64
}

// keySet lazily compiles the columns a constraint set references.
type keySet struct {
	rows []table.Row
	cols []*colKeys // indexed by attribute
}

func newKeySet(rows []table.Row, arity int) *keySet {
	return &keySet{rows: rows, cols: make([]*colKeys, arity)}
}

func (k *keySet) col(a int) *colKeys {
	if k.cols[a] == nil {
		ck := &colKeys{isNum: make([]bool, len(k.rows)), num: make([]float64, len(k.rows))}
		for ri := range k.rows {
			if f, err := strconv.ParseFloat(k.rows[ri].Tuple[a], 64); err == nil {
				ck.isNum[ri], ck.num[ri] = true, f
			}
		}
		k.cols[a] = ck
	}
	return k.cols[a]
}

// cmpKeys reproduces compare on compiled keys: numeric when both sides
// parsed, lexicographic on the original strings otherwise.
func (k *keySet) cmpKeys(ri int32, la int, rj int32, ra int) int {
	cl, cr := k.col(la), k.col(ra)
	if cl.isNum[ri] && cr.isNum[rj] {
		switch {
		case cl.num[ri] < cr.num[rj]:
			return -1
		case cl.num[ri] > cr.num[rj]:
			return 1
		default:
			return 0
		}
	}
	a, b := k.rows[ri].Tuple[la], k.rows[rj].Tuple[ra]
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// violatesKeys is Constraint.Violates on compiled keys: the unordered
// pair (u, v) of row indices violates when every atom holds under
// either assignment of (t1, t2).
func (cn *Constraint) violatesKeys(k *keySet, u, v int32) bool {
	return cn.orderedKeys(k, u, v) || cn.orderedKeys(k, v, u)
}

func (cn *Constraint) orderedKeys(k *keySet, t1, t2 int32) bool {
	for _, a := range cn.atoms {
		ru, rv := t1, t1
		if a.Left.Var == 1 {
			ru = t2
		}
		if a.Right.Var == 1 {
			rv = t2
		}
		cmp := k.cmpKeys(ru, a.Left.Attr, rv, a.Right.Attr)
		var ok bool
		switch a.Op {
		case OpEq:
			ok = cmp == 0
		case OpNeq:
			ok = cmp != 0
		case OpLt:
			ok = cmp < 0
		case OpLeq:
			ok = cmp <= 0
		case OpGt:
			ok = cmp > 0
		case OpGeq:
			ok = cmp >= 0
		}
		if !ok {
			return false
		}
	}
	return true
}

// joinAttrs returns the attributes on which any violating pair must
// agree under compare: the atoms t1.A = t2.A joining the two tuple
// variables on one attribute. (Equality is symmetric, so the atom holds
// under either assignment exactly when the pair agrees on A.)
func (cn *Constraint) joinAttrs() []int {
	var out []int
	for _, a := range cn.atoms {
		if a.Op == OpEq && a.Left.Var != a.Right.Var && a.Left.Attr == a.Right.Attr {
			out = append(out, a.Left.Attr)
		}
	}
	return out
}

// eqClasses assigns each row an equality-class id for one attribute
// under the seed's compare: numeric values sharing a float (e.g. "1"
// and "1.0") share a class, non-numeric values class by string.
func (k *keySet) eqClasses(a int) []int32 {
	ck := k.col(a)
	out := make([]int32, len(k.rows))
	nums := make(map[float64]int32)
	strs := make(map[string]int32)
	next := int32(0)
	for ri := range k.rows {
		var id int32
		if ck.isNum[ri] {
			v, ok := nums[ck.num[ri]]
			if !ok {
				v = next
				next++
				nums[ck.num[ri]] = v
			}
			id = v
		} else {
			v, ok := strs[k.rows[ri].Tuple[a]]
			if !ok {
				v = next
				next++
				strs[k.rows[ri].Tuple[a]] = v
			}
			id = v
		}
		out[ri] = id
	}
	return out
}

// denialUnit is one scheduler task of the conflict scan: either one
// join group of a grouped constraint (members) or one first-index chunk
// [lo, hi) of an ungrouped constraint's pairwise scan.
type denialUnit struct {
	cn      *Constraint
	members []int32 // grouped: row indices, ascending; nil when chunked
	lo, hi  int32   // chunked: first-index range over all rows
	n       int32
}

func (u denialUnit) size() int {
	if u.members != nil {
		return len(u.members)
	}
	return int(u.hi - u.lo)
}

func (u denialUnit) scan(k *keySet, buf [][2]int32) [][2]int32 {
	if u.members != nil {
		for i := 0; i < len(u.members); i++ {
			for j := i + 1; j < len(u.members); j++ {
				if u.cn.violatesKeys(k, u.members[i], u.members[j]) {
					buf = append(buf, [2]int32{u.members[i], u.members[j]})
				}
			}
		}
		return buf
	}
	for i := u.lo; i < u.hi; i++ {
		for j := i + 1; j < u.n; j++ {
			if u.cn.violatesKeys(k, i, j) {
				buf = append(buf, [2]int32{i, j})
			}
		}
	}
	return buf
}

// conflictPairs computes the sorted, deduplicated row-index pairs
// violating at least one constraint — the seed ConflictGraph's edge set
// in the seed's order (ascending (i, j)).
func conflictPairs(c *solve.Ctx, cs []*Constraint, t *table.Table) ([][2]int32, error) {
	rows := t.Rows()
	n := len(rows)
	if n == 0 || len(cs) == 0 {
		return nil, nil
	}
	atoms := 0
	for _, cn := range cs {
		atoms += len(cn.atoms)
	}
	c.Stats().DenialPredicate(atoms)
	keys := newKeySet(rows, t.Schema().Arity())
	var units []denialUnit
	classCache := make(map[int][]int32)
	for _, cn := range cs {
		if err := c.Err(); err != nil {
			return nil, err
		}
		join := cn.joinAttrs()
		if len(join) == 0 {
			for lo := int32(0); lo < int32(n); lo += denialChunkRows {
				hi := lo + denialChunkRows
				if hi > int32(n) {
					hi = int32(n)
				}
				units = append(units, denialUnit{cn: cn, lo: lo, hi: hi, n: int32(n)})
			}
			continue
		}
		// Composite grouping: refine row classes attribute by attribute.
		combined := make([]int32, n)
		for gi, a := range join {
			cls, ok := classCache[a]
			if !ok {
				cls = keys.eqClasses(a)
				classCache[a] = cls
			}
			if gi == 0 {
				copy(combined, cls)
				continue
			}
			merge := make(map[[2]int32]int32, n)
			for ri := range combined {
				key := [2]int32{combined[ri], cls[ri]}
				id, ok := merge[key]
				if !ok {
					id = int32(len(merge))
					merge[key] = id
				}
				combined[ri] = id
			}
		}
		buckets := make(map[int32][]int32, n/2+1)
		var order []int32
		for ri := 0; ri < n; ri++ {
			g := combined[ri]
			if _, ok := buckets[g]; !ok {
				order = append(order, g)
			}
			buckets[g] = append(buckets[g], int32(ri))
		}
		for _, g := range order {
			if members := buckets[g]; len(members) >= 2 {
				units = append(units, denialUnit{cn: cn, members: members})
			}
		}
	}
	// Pre-touch every referenced column so the lazily compiled keySet is
	// read-only inside the parallel scan.
	for _, cn := range cs {
		for _, a := range cn.atoms {
			keys.col(a.Left.Attr)
			keys.col(a.Right.Attr)
		}
	}
	unitEdges := make([][][2]int32, len(units))
	err := c.ForEachBlock(len(units),
		func(i int) int { return units[i].size() },
		func(wc *solve.Ctx, i int) error {
			if err := wc.Err(); err != nil {
				return err
			}
			unitEdges[i] = units[i].scan(keys, nil)
			return nil
		})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, es := range unitEdges {
		total += len(es)
	}
	all := make([][2]int32, 0, total)
	for _, es := range unitEdges {
		all = append(all, es...)
	}
	slices.SortFunc(all, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
	out := all[:0]
	prev := [2]int32{-1, -1}
	for _, e := range all {
		if e == prev {
			continue
		}
		prev = e
		out = append(out, e)
	}
	return out, nil
}

// ConflictGraphCtx is ConflictGraph on the encoded core under a solve
// context: compiled comparison keys, join-attribute grouping and a
// chunk-parallel fallback replace the seed's quadratic parse-per-pair
// scan. The edge list is identical to ConflictGraph's.
func ConflictGraphCtx(c *solve.Ctx, cs []*Constraint, t *table.Table) ([]table.ConflictEdge, error) {
	c = c.BeginSolve()
	c.SetHints(solve.Hints{Rows: t.Len()})
	pairs, err := conflictPairs(c, cs, t)
	if err != nil {
		return nil, err
	}
	rows := t.Rows()
	out := make([]table.ConflictEdge, len(pairs))
	for i, e := range pairs {
		out[i] = table.ConflictEdge{ID1: rows[e[0]].ID, ID2: rows[e[1]].ID}
	}
	return out, nil
}

// repairProblemCtx builds the same vertex-cover instance as
// repairProblem (vertices are row positions, edges the sorted conflict
// pairs) from the encoded conflict scan.
func repairProblemCtx(c *solve.Ctx, cs []*Constraint, t *table.Table) (*graph.Graph, []int, error) {
	c = c.BeginSolve()
	c.SetHints(solve.Hints{Rows: t.Len()})
	pairs, err := conflictPairs(c, cs, t)
	if err != nil {
		return nil, nil, err
	}
	ids := t.IDs()
	rows := t.Rows()
	weights := make([]float64, len(rows))
	for i := range rows {
		weights[i] = rows[i].Weight
	}
	g := graph.MustNewGraph(weights)
	for _, e := range pairs {
		g.AddEdgeUnchecked(int(e[0]), int(e[1]))
	}
	return g, ids, nil
}

// ExactSRepairCtx is ExactSRepair on the encoded core under a solve
// context; the cover search honors the context's cancellation. Results
// are byte-identical to ExactSRepair.
func ExactSRepairCtx(c *solve.Ctx, cs []*Constraint, t *table.Table) (*table.Table, error) {
	g, ids, err := repairProblemCtx(c, cs, t)
	if err != nil {
		return nil, err
	}
	cover, err := g.ExactMinVertexCoverCtx(c)
	if err != nil {
		return nil, err
	}
	return coverToSubset(t, ids, cover), nil
}

// Approx2SRepairCtx is Approx2SRepair on the encoded core: polynomial,
// and near-linear when every constraint has a join attribute with small
// groups. Results are byte-identical to Approx2SRepair.
func Approx2SRepairCtx(c *solve.Ctx, cs []*Constraint, t *table.Table) (*table.Table, error) {
	g, ids, err := repairProblemCtx(c, cs, t)
	if err != nil {
		return nil, err
	}
	return coverToSubset(t, ids, g.ApproxVertexCoverBE()), nil
}
