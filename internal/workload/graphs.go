package workload

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// SimpleGraph is an undirected simple graph given by an edge list over
// vertices 0..N-1; the input shape for the vertex-cover reductions.
type SimpleGraph struct {
	N     int
	Edges [][2]int
}

// RandomGNP samples an Erdős–Rényi G(n, p) graph.
func RandomGNP(n int, p float64, rng *rand.Rand) *SimpleGraph {
	g := &SimpleGraph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return g
}

// RandomBoundedDegree samples a graph with maximum degree at most
// maxDeg by random edge insertion with degree rejection. Bounded-degree
// graphs are the hard instances used by the APX-hardness arguments
// (vertex cover on cubic graphs).
func RandomBoundedDegree(n, maxDeg, attempts int, rng *rand.Rand) *SimpleGraph {
	g := &SimpleGraph{N: n}
	deg := make([]int, n)
	seen := map[[2]int]bool{}
	for a := 0; a < attempts; a++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] || deg[u] >= maxDeg || deg[v] >= maxDeg {
			continue
		}
		seen[[2]int{u, v}] = true
		deg[u]++
		deg[v]++
		g.Edges = append(g.Edges, [2]int{u, v})
	}
	return g
}

// MaxDegree returns the maximum vertex degree.
func (g *SimpleGraph) MaxDegree() int {
	deg := make([]int, g.N)
	max := 0
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
		if deg[e[0]] > max {
			max = deg[e[0]]
		}
		if deg[e[1]] > max {
			max = deg[e[1]]
		}
	}
	return max
}

// MinVertexCoverSize computes vc(G) exactly via the branch-and-bound
// solver with unit weights. Intended for the small graphs of the
// reduction experiments.
func (g *SimpleGraph) MinVertexCoverSize() (int, error) {
	weights := make([]float64, g.N)
	for i := range weights {
		weights[i] = 1
	}
	wg, err := graph.NewGraph(weights)
	if err != nil {
		return 0, err
	}
	for _, e := range g.Edges {
		if err := wg.AddEdge(e[0], e[1]); err != nil {
			return 0, err
		}
	}
	cover, err := wg.ExactMinVertexCover()
	if err != nil {
		return 0, err
	}
	return len(graph.CoverIDs(cover)), nil
}

// SparseMatchingInstance draws the random bipartite matching instance
// the bench suites race the dense and sparse engines on: n nodes per
// side, perLeft edges per left node with uniform random right endpoints
// (so parallel edges occur) and integer weights in 1..maxW. It returns
// the edge list for the sparse engine together with the equivalent
// dense weight function for the Hungarian oracle (math.Inf(-1) marks a
// missing pair; parallel edges collapse to the heaviest, as a matrix
// forces). Both views describe the same instance by construction, so
// numbers quoted from either suite stay comparable.
func SparseMatchingInstance(n, perLeft, maxW int, rng *rand.Rand) ([]graph.Edge, func(i, j int) float64) {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for k := 0; k < perLeft; k++ {
			edges = append(edges, graph.Edge{I: i, J: rng.Intn(n), W: float64(1 + rng.Intn(maxW))})
		}
	}
	present := make(map[[2]int]float64, len(edges))
	for _, e := range edges {
		if w, ok := present[[2]int{e.I, e.J}]; !ok || e.W > w {
			present[[2]int{e.I, e.J}] = e.W
		}
	}
	weight := func(i, j int) float64 {
		if w, ok := present[[2]int{i, j}]; ok {
			return w
		}
		return math.Inf(-1)
	}
	return edges, weight
}
