package workload

import (
	"fmt"
	"math/rand"
)

// Lit is a propositional literal: variable index with an optional
// negation.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause struct {
	Lits []Lit
}

// IsNonMixed reports whether the clause contains only positive or only
// negative literals (the MAX-non-mixed-SAT restriction of Lemma A.13).
func (c Clause) IsNonMixed() bool {
	if len(c.Lits) == 0 {
		return true
	}
	neg := c.Lits[0].Neg
	for _, l := range c.Lits[1:] {
		if l.Neg != neg {
			return false
		}
	}
	return true
}

// Satisfied reports whether the assignment satisfies the clause.
func (c Clause) Satisfied(assign []bool) bool {
	for _, l := range c.Lits {
		if assign[l.Var] != l.Neg {
			return true
		}
	}
	return false
}

// CNF is a conjunction of clauses over variables 0..NumVars-1.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// IsNonMixed reports whether every clause is non-mixed.
func (f CNF) IsNonMixed() bool {
	for _, c := range f.Clauses {
		if !c.IsNonMixed() {
			return false
		}
	}
	return true
}

// CountSatisfied returns the number of clauses the assignment satisfies.
func (f CNF) CountSatisfied(assign []bool) int {
	n := 0
	for _, c := range f.Clauses {
		if c.Satisfied(assign) {
			n++
		}
	}
	return n
}

// MaxSat computes the maximum number of simultaneously satisfiable
// clauses by exhaustive search; requires NumVars ≤ 22.
func (f CNF) MaxSat() (int, error) {
	if f.NumVars > 22 {
		return 0, fmt.Errorf("workload: exhaustive MaxSat limited to 22 variables, got %d", f.NumVars)
	}
	best := 0
	assign := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		for v := 0; v < f.NumVars; v++ {
			assign[v] = mask&(1<<uint(v)) != 0
		}
		if n := f.CountSatisfied(assign); n > best {
			best = n
		}
	}
	return best, nil
}

// RandomNonMixedCNF samples m clauses over n variables; each clause has
// 1..maxLen literals of a single polarity over distinct variables.
func RandomNonMixedCNF(n, m, maxLen int, rng *rand.Rand) CNF {
	f := CNF{NumVars: n}
	for i := 0; i < m; i++ {
		neg := rng.Intn(2) == 1
		l := 1 + rng.Intn(maxLen)
		if l > n {
			l = n
		}
		perm := rng.Perm(n)[:l]
		var lits []Lit
		for _, v := range perm {
			lits = append(lits, Lit{Var: v, Neg: neg})
		}
		f.Clauses = append(f.Clauses, Clause{Lits: lits})
	}
	return f
}

// TriangleInstance is a collection of triangles of a tripartite graph:
// each triangle names one vertex from each of the three sides. Two
// triangles are edge-disjoint when they share at most one vertex (a
// shared pair of vertices on different sides is a shared edge).
type TriangleInstance struct {
	Triangles [][3]string
}

// RandomTriangles samples m distinct triangles over side sizes
// (na, nb, nc).
func RandomTriangles(na, nb, nc, m int, rng *rand.Rand) TriangleInstance {
	seen := map[[3]string]bool{}
	var inst TriangleInstance
	for len(inst.Triangles) < m && len(seen) < na*nb*nc {
		tr := [3]string{
			fmt.Sprintf("a%d", rng.Intn(na)),
			fmt.Sprintf("b%d", rng.Intn(nb)),
			fmt.Sprintf("c%d", rng.Intn(nc)),
		}
		if seen[tr] {
			continue
		}
		seen[tr] = true
		inst.Triangles = append(inst.Triangles, tr)
	}
	return inst
}

// shareEdge reports whether two triangles share an edge (two vertices on
// two distinct sides).
func shareEdge(a, b [3]string) bool {
	ab := a[0] == b[0] && a[1] == b[1]
	ac := a[0] == b[0] && a[2] == b[2]
	bc := a[1] == b[1] && a[2] == b[2]
	return ab || ac || bc
}

// MaxEdgeDisjointTriangles computes the maximum number of pairwise
// edge-disjoint triangles by exhaustive branch and bound; requires at
// most 24 triangles.
func (ti TriangleInstance) MaxEdgeDisjointTriangles() (int, error) {
	n := len(ti.Triangles)
	if n > 24 {
		return 0, fmt.Errorf("workload: exhaustive triangle packing limited to 24 triangles, got %d", n)
	}
	best := 0
	var chosen []int
	var rec func(i int)
	rec = func(i int) {
		if len(chosen)+(n-i) <= best {
			return
		}
		if i == n {
			if len(chosen) > best {
				best = len(chosen)
			}
			return
		}
		// Take triangle i if edge-disjoint from the chosen ones.
		ok := true
		for _, j := range chosen {
			if shareEdge(ti.Triangles[i], ti.Triangles[j]) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, i)
			rec(i + 1)
			chosen = chosen[:len(chosen)-1]
		}
		rec(i + 1)
	}
	rec(0)
	return best, nil
}
