package workload

import (
	"fmt"
	"io"
)

// IngestCSVInput returns a fresh deterministic CSV stream with n data
// rows over three attributes A, B, C and no id or weight columns —
// the shape the out-of-core ingestion benchmarks and memory smokes
// consume. Every cell is exactly width bytes, drawn from a per-column
// domain of the given size, so the raw stream weighs about
// n·(3·width+3) bytes while the dictionary encoding weighs about
// 3·domain·width bytes plus the int32 columns. Rows are produced on
// demand: the reader itself holds one small buffer regardless of n,
// so even a multi-gigabyte stream never materializes. Two readers
// with the same parameters yield byte-identical streams.
func IngestCSVInput(n, domain, width int) io.Reader {
	if n < 0 || domain < 1 {
		panic("workload: IngestCSVInput needs n ≥ 0 and domain ≥ 1")
	}
	if width < 10 {
		panic("workload: IngestCSVInput needs width ≥ 10 (cell prefix alone is up to 8 bytes)")
	}
	return &csvStream{n: n, domain: domain, width: width, state: 0x9E3779B97F4A7C15}
}

// IngestCSVInputSize is the exact byte length of the stream
// IngestCSVInput(n, domain, width) produces (domain does not affect
// the size: every cell is width bytes).
func IngestCSVInputSize(n, width int) int64 {
	return int64(len(ingestHeader)) + int64(n)*int64(3*width+3)
}

const ingestHeader = "A,B,C\n"

// csvStream generates the IngestCSVInput rows lazily from a 64-bit
// LCG (MMIX constants) with a splitmix-style output mix, refilling an
// internal buffer a few hundred rows at a time.
type csvStream struct {
	n, domain, width int
	row              int
	state            uint64
	buf              []byte
	off              int
	started          bool
}

func (s *csvStream) next() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	x := s.state
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (s *csvStream) Read(p []byte) (int, error) {
	if s.off == len(s.buf) {
		s.buf = s.buf[:0]
		s.off = 0
		if !s.started {
			s.buf = append(s.buf, ingestHeader...)
			s.started = true
		}
		for r := 0; r < 256 && s.row < s.n; r++ {
			for c := 0; c < 3; c++ {
				if c > 0 {
					s.buf = append(s.buf, ',')
				}
				s.buf = s.appendCell(s.buf, c, int(s.next()%uint64(s.domain)))
			}
			s.buf = append(s.buf, '\n')
			s.row++
		}
		if len(s.buf) == 0 {
			return 0, io.EOF
		}
	}
	n := copy(p, s.buf[s.off:])
	s.off += n
	return n, nil
}

// appendCell renders value v of column c as exactly s.width bytes:
// a "<col><decimal>" prefix padded with filler that is a pure function
// of (c, v), so equal draws are byte-identical (a requirement for the
// dictionary encoding to see `domain` distinct values per column, no
// more).
func (s *csvStream) appendCell(dst []byte, c, v int) []byte {
	start := len(dst)
	dst = fmt.Appendf(dst, "%c%d", 'a'+c, v)
	for len(dst)-start < s.width {
		dst = append(dst, byte('f'+(v+len(dst)-start)%20))
	}
	return dst
}
