package workload

// Generators for the constraint-extension benches and differential
// suites: CFD pattern workloads, order-constraint (denial) workloads,
// bounded-component CQA workloads and priority orientations. They
// return plain tables and identifier pairs — never constraint objects —
// so the package stays importable from every engine's tests.

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/table"
)

// CFDTable generates the shape the encoded CFD engine targets: n rows
// over sc (arity ≥ 3) where attribute 0 is a pattern column drawing
// from patterns values ("p0".."p{patterns-1}"), attribute 1 is a block
// key with ~blockRows rows per block, and the remaining attributes draw
// from rhsDomain values so blocks are internally dirty. A CFD such as
// "cond key -> val | p0,_ -> _" then applies to roughly 1/patterns of
// the rows, with conflict groups of ~blockRows tuples. Weights are
// integers in 1..4.
func CFDTable(sc *schema.Schema, n, blockRows, rhsDomain, patterns int, rng *rand.Rand) *table.Table {
	if sc.Arity() < 3 {
		panic("workload: CFD table needs arity ≥ 3")
	}
	if blockRows < 1 || rhsDomain < 1 || patterns < 1 {
		panic("workload: blockRows, rhsDomain and patterns must be ≥ 1")
	}
	blocks := (n + blockRows - 1) / blockRows
	tuples := make([]table.Tuple, 0, n)
	weights := make([]float64, 0, n)
	for b := 0; b < blocks && len(tuples) < n; b++ {
		key := fmt.Sprintf("k%d", b)
		for r := 0; r < blockRows && len(tuples) < n; r++ {
			tup := make(table.Tuple, sc.Arity())
			tup[0] = fmt.Sprintf("p%d", rng.Intn(patterns))
			tup[1] = key
			for c := 2; c < len(tup); c++ {
				tup[c] = fmt.Sprintf("v%d", rng.Intn(rhsDomain))
			}
			tuples = append(tuples, tup)
			weights = append(weights, float64(1+rng.Intn(4)))
		}
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, weights)
	return t
}

// RankedTable generates an order-constraint workload over sc (arity
// ≥ 3): attribute 0 is a department key with ~blockRows rows each,
// attribute 1 a numeric rank within the department, and attribute 2 a
// numeric salary from salaryDomain values. A denial constraint such as
// "t1.dept = t2.dept & t1.rank < t2.rank & t1.salary > t2.salary"
// (higher rank must not earn less) is then violated within departments
// at a rate controlled by salaryDomain. Numeric cells exercise the
// engines' numeric comparison path. Weights are integers in 1..4.
func RankedTable(sc *schema.Schema, n, blockRows, salaryDomain int, rng *rand.Rand) *table.Table {
	if sc.Arity() < 3 {
		panic("workload: ranked table needs arity ≥ 3")
	}
	if blockRows < 1 || salaryDomain < 1 {
		panic("workload: blockRows and salaryDomain must be ≥ 1")
	}
	blocks := (n + blockRows - 1) / blockRows
	tuples := make([]table.Tuple, 0, n)
	weights := make([]float64, 0, n)
	for b := 0; b < blocks && len(tuples) < n; b++ {
		dept := fmt.Sprintf("d%d", b)
		for r := 0; r < blockRows && len(tuples) < n; r++ {
			tup := make(table.Tuple, sc.Arity())
			tup[0] = dept
			tup[1] = fmt.Sprintf("%d", r)
			tup[2] = fmt.Sprintf("%d", 100+rng.Intn(salaryDomain))
			for c := 3; c < len(tup); c++ {
				tup[c] = fmt.Sprintf("x%d", rng.Intn(4))
			}
			tuples = append(tuples, tup)
			weights = append(weights, float64(1+rng.Intn(4)))
		}
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, weights)
	return t
}

// SmallComponentTable generates a CQA/priority workload whose conflict
// components are guaranteed small: attribute 0 is a unique block key
// per block (never reused, unlike MarriageSparseTable's sampled keys),
// so under an FD keyed on it every conflict component has at most
// blockRows tuples — within the per-component enumeration bound of the
// encoded CQA engine at any table size. Remaining attributes draw from
// rhsDomain values. Weights are integers in 1..4.
func SmallComponentTable(sc *schema.Schema, n, blockRows, rhsDomain int, rng *rand.Rand) *table.Table {
	if sc.Arity() < 2 {
		panic("workload: small-component table needs arity ≥ 2")
	}
	if blockRows < 1 || rhsDomain < 1 {
		panic("workload: blockRows and rhsDomain must be ≥ 1")
	}
	blocks := (n + blockRows - 1) / blockRows
	tuples := make([]table.Tuple, 0, n)
	weights := make([]float64, 0, n)
	for b := 0; b < blocks && len(tuples) < n; b++ {
		key := fmt.Sprintf("k%d", b)
		for r := 0; r < blockRows && len(tuples) < n; r++ {
			tup := make(table.Tuple, sc.Arity())
			tup[0] = key
			for c := 1; c < len(tup); c++ {
				tup[c] = fmt.Sprintf("v%d", rng.Intn(rhsDomain))
			}
			tuples = append(tuples, tup)
			weights = append(weights, float64(1+rng.Intn(4)))
		}
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, weights)
	return t
}

// PriorityPairs orients a sample of the table's conflict edges into an
// acyclic preference: each edge is kept with probability p and oriented
// lower identifier ≻ higher identifier, so the resulting relation is
// acyclic by construction and relates only conflicting tuples — valid
// input for the priority engines at any scale. Pairs are returned as
// (preferred, inferior) identifier pairs in edge order.
func PriorityPairs(edges []table.ConflictEdge, p float64, rng *rand.Rand) [][2]int {
	var out [][2]int
	for _, e := range edges {
		if rng.Float64() >= p {
			continue
		}
		a, b := e.ID1, e.ID2
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]int{a, b})
	}
	return out
}
