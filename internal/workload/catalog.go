package workload

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/schema"
)

// NamedFDSet is a catalogue entry: an FD set from the paper together
// with the paper's classification of its two repair problems.
type NamedFDSet struct {
	// Name as used in the paper.
	Name string
	// Where the set appears.
	Source string
	Set    *fd.Set
	// SRepairPoly: optimal S-repairs computable in polynomial time
	// (OSRSucceeds, Theorem 3.4).
	SRepairPoly bool
	// URepairKnownPoly: the paper proves optimal U-repairs polynomial.
	URepairKnownPoly bool
	// URepairKnownHard: the paper proves optimal U-repairs APX-hard.
	URepairKnownHard bool
}

// Catalogue returns the named FD sets that appear in the paper, with
// the complexity statuses the paper assigns to them. It is the fixture
// driving the dichotomy experiments (E3) and the CLI's demo mode.
func Catalogue() []NamedFDSet {
	office := schema.MustNew("Office", "facility", "room", "floor", "city")
	abc := schema.MustNew("R", "A", "B", "C")
	abcd := schema.MustNew("R", "A", "B", "C", "D")
	abcde := schema.MustNew("R", "A", "B", "C", "D", "E")
	person := schema.MustNew("Person", "ssn", "first", "last", "address", "office", "phone", "fax")
	purchase := schema.MustNew("Purchase", "product", "price", "buyer", "email", "address")
	passport := schema.MustNew("P", "id", "country", "passport")
	zips := schema.MustNew("Z", "state", "city", "zip", "country")

	return []NamedFDSet{
		{
			Name: "Δ (running example)", Source: "Example 2.2",
			Set:         fd.MustParseSet(office, "facility -> city", "facility room -> floor"),
			SRepairPoly: true, URepairKnownPoly: true, // chain, common lhs (Ex. 4.7)
		},
		{
			Name: "∆A↔B→C", Source: "Example 3.1 (1)",
			Set:         fd.MustParseSet(abc, "A -> B", "B -> A", "B -> C"),
			SRepairPoly: true, URepairKnownHard: true, // Thm 4.10
		},
		{
			Name: "∆1 (ssn)", Source: "Example 3.1",
			Set: fd.MustParseSet(person, "ssn -> first", "ssn -> last", "first last -> ssn",
				"ssn -> address", "ssn office -> phone", "ssn office -> fax"),
			SRepairPoly: true,
		},
		{
			Name: "∆0 (purchase)", Source: "Introduction",
			Set:         fd.MustParseSet(purchase, "product -> price", "buyer -> email"),
			SRepairPoly: false, URepairKnownPoly: true, // Ex. 4.2 / Cor 4.11(2)
		},
		{
			Name: "∆3 (email)", Source: "Introduction",
			Set:         fd.MustParseSet(purchase, "email -> buyer", "buyer -> address"),
			SRepairPoly: false, URepairKnownHard: true, // Kolahi–Lakshmanan
		},
		{
			Name: "∆4 (buyer)", Source: "Introduction",
			Set:         fd.MustParseSet(purchase, "buyer -> email", "email -> buyer", "buyer -> address"),
			SRepairPoly: true, URepairKnownHard: true,
		},
		{
			Name: "∆A→B→C", Source: "Table 1",
			Set:         fd.MustParseSet(abc, "A -> B", "B -> C"),
			SRepairPoly: false, URepairKnownHard: true,
		},
		{
			Name: "∆A→C←B", Source: "Table 1",
			Set:         fd.MustParseSet(abc, "A -> C", "B -> C"),
			SRepairPoly: false,
		},
		{
			Name: "∆AB→C→B", Source: "Table 1",
			Set:         fd.MustParseSet(abc, "A B -> C", "C -> B"),
			SRepairPoly: false,
		},
		{
			Name: "∆AB↔AC↔BC", Source: "Table 1",
			Set:         fd.MustParseSet(abc, "A B -> C", "A C -> B", "B C -> A"),
			SRepairPoly: false,
		},
		{
			Name: "{A→B, C→D}", Source: "Example 3.5 / 3.8 class 1",
			Set:         fd.MustParseSet(abcd, "A -> B", "C -> D"),
			SRepairPoly: false, URepairKnownPoly: true, // Thm 4.1 + single FDs
		},
		{
			Name: "{A→CD, B→CE}", Source: "Example 3.8 class 2",
			Set:         fd.MustParseSet(abcde, "A -> C D", "B -> C E"),
			SRepairPoly: false,
		},
		{
			Name: "{A→BC, B→D}", Source: "Example 3.8 class 3",
			Set:         fd.MustParseSet(abcd, "A -> B C", "B -> D"),
			SRepairPoly: false,
		},
		{
			Name: "{AB→C, C→AD}", Source: "Example 3.8 class 5",
			Set:         fd.MustParseSet(abcd, "A B -> C", "C -> A D"),
			SRepairPoly: false,
		},
		{
			Name: "∆1 (passport)", Source: "Example 4.7",
			Set:         fd.MustParseSet(passport, "id country -> passport", "id passport -> country"),
			SRepairPoly: true, URepairKnownPoly: true, // common lhs
		},
		{
			Name: "∆2 (zip)", Source: "Example 4.7",
			Set:         fd.MustParseSet(zips, "state city -> zip", "state zip -> country"),
			SRepairPoly: false, URepairKnownHard: true,
		},
		{
			Name: "{A→B, B→A}", Source: "Proposition 4.9",
			Set:         fd.MustParseSet(abc, "A -> B", "B -> A"),
			SRepairPoly: true, URepairKnownPoly: true,
		},
	}
}

// DeltaK builds ∆k of Section 4.4 over R(A0..Ak, B0..Bk, C):
// {A0⋯Ak → B0, B0 → C, B1 → A0, ..., Bk → A0}.
func DeltaK(k int) *fd.Set {
	attrs := make([]string, 0, 2*k+3)
	for i := 0; i <= k; i++ {
		attrs = append(attrs, fmt.Sprintf("A%d", i))
	}
	for i := 0; i <= k; i++ {
		attrs = append(attrs, fmt.Sprintf("B%d", i))
	}
	attrs = append(attrs, "C")
	sc := schema.MustNew("R", attrs...)
	specs := make([]string, 0, k+2)
	lhs := ""
	for i := 0; i <= k; i++ {
		lhs += fmt.Sprintf("A%d ", i)
	}
	specs = append(specs, lhs+"-> B0", "B0 -> C")
	for i := 1; i <= k; i++ {
		specs = append(specs, fmt.Sprintf("B%d -> A0", i))
	}
	return fd.MustParseSet(sc, specs...)
}

// DeltaPrimeK builds ∆′k of Section 4.4 over R(A0..Ak+1, B0..Bk):
// {A0A1 → B0, A1A2 → B1, ..., AkAk+1 → Bk}.
func DeltaPrimeK(k int) *fd.Set {
	attrs := make([]string, 0, 2*k+3)
	for i := 0; i <= k+1; i++ {
		attrs = append(attrs, fmt.Sprintf("A%d", i))
	}
	for i := 0; i <= k; i++ {
		attrs = append(attrs, fmt.Sprintf("B%d", i))
	}
	sc := schema.MustNew("R", attrs...)
	specs := make([]string, 0, k+1)
	for i := 0; i <= k; i++ {
		specs = append(specs, fmt.Sprintf("A%d A%d -> B%d", i, i+1, i))
	}
	return fd.MustParseSet(sc, specs...)
}
