// Package workload generates the synthetic inputs used by the tests,
// examples and the bench harness: random weighted tables with controlled
// dirtiness, the running example of Figure 1, random graphs for the
// vertex-cover reductions, non-mixed CNF formulas, and tripartite
// triangle instances. All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
)

// Office returns the running example of the paper: the schema
// Office(facility, room, floor, city), the FD set of Example 2.2, and
// table T of Figure 1(a).
func Office() (*schema.Schema, *fd.Set, *table.Table) {
	sc := schema.MustNew("Office", "facility", "room", "floor", "city")
	ds := fd.MustParseSet(sc, "facility -> city", "facility room -> floor")
	t := table.New(sc)
	t.MustInsert(1, table.Tuple{"HQ", "322", "3", "Paris"}, 2)
	t.MustInsert(2, table.Tuple{"HQ", "322", "30", "Madrid"}, 1)
	t.MustInsert(3, table.Tuple{"HQ", "122", "1", "Madrid"}, 1)
	t.MustInsert(4, table.Tuple{"Lab1", "B35", "3", "London"}, 2)
	return sc, ds, t
}

// RandomTable generates n tuples over sc with each attribute drawn
// uniformly from a domain of the given size (values "v0".."v{d-1}").
// All weights are 1. Smaller domains produce denser FD violations.
func RandomTable(sc *schema.Schema, n, domain int, rng *rand.Rand) *table.Table {
	return RandomWeightedTable(sc, n, domain, 1, rng)
}

// RandomWeightedTable is RandomTable with integer weights drawn
// uniformly from 1..maxWeight. Rows are generated into a batch and
// appended in one AppendRows call (same RNG draw order as the
// historical per-row inserts, so seeds reproduce identical tables).
func RandomWeightedTable(sc *schema.Schema, n, domain, maxWeight int, rng *rand.Rand) *table.Table {
	if domain < 1 {
		panic("workload: domain must be ≥ 1")
	}
	tuples := make([]table.Tuple, n)
	weights := make([]float64, n)
	for i := range tuples {
		tup := make(table.Tuple, sc.Arity())
		for a := range tup {
			tup[a] = fmt.Sprintf("v%d", rng.Intn(domain))
		}
		w := 1.0
		if maxWeight > 1 {
			w = float64(1 + rng.Intn(maxWeight))
		}
		tuples[i], weights[i] = tup, w
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, weights)
	return t
}

// DirtyTable builds a table that starts consistent with respect to ds
// and then corrupts a fraction of the cells, which yields realistic
// "mostly clean" cleaning workloads. The clean table assigns, per
// group key, FD-consistent values (every attribute is a function of the
// first attribute); dirtyFrac of the cells are then overwritten with
// random domain values.
func DirtyTable(sc *schema.Schema, ds *fd.Set, n, domain int, dirtyFrac float64, rng *rand.Rand) *table.Table {
	k := sc.Arity()
	tuples := make([]table.Tuple, n)
	for i := range tuples {
		// Derive every attribute deterministically from a group id: any
		// such table satisfies every FD (all attributes are functions of
		// the group id and of each other within a group).
		g := rng.Intn(domain)
		tup := make(table.Tuple, k)
		for a := 0; a < k; a++ {
			tup[a] = fmt.Sprintf("g%d_a%d", g, a)
		}
		tuples[i] = tup
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, nil)
	// Corrupt cells.
	for _, r := range t.Rows() {
		for a := 0; a < k; a++ {
			if rng.Float64() < dirtyFrac {
				t.SetCellInPlace(r.ID, a, fmt.Sprintf("dirty%d", rng.Intn(domain)))
			}
		}
	}
	_ = ds // the construction is consistent for every FD set by design
	return t
}

// ZipfTable generates n tuples whose attribute values follow an
// approximate Zipf distribution over the domain (rank r gets
// probability ∝ 1/r), producing skewed group sizes as in real dirty
// data.
func ZipfTable(sc *schema.Schema, n, domain int, rng *rand.Rand) *table.Table {
	if domain < 1 {
		panic("workload: domain must be ≥ 1")
	}
	// Precompute cumulative 1/r weights.
	cum := make([]float64, domain)
	total := 0.0
	for r := 0; r < domain; r++ {
		total += 1.0 / float64(r+1)
		cum[r] = total
	}
	draw := func() int {
		x := rng.Float64() * total
		for r := 0; r < domain; r++ {
			if x <= cum[r] {
				return r
			}
		}
		return domain - 1
	}
	tuples := make([]table.Tuple, n)
	for i := range tuples {
		tup := make(table.Tuple, sc.Arity())
		for a := range tup {
			tup[a] = fmt.Sprintf("z%d", draw())
		}
		tuples[i] = tup
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, nil)
	return t
}

// MarriageSparseTable generates the shape the sparse matching engine
// targets: n rows over sc whose first two attributes (the married pair
// X1, X2 under e.g. {A→B, B→A, B→C}) range over ~n/blockRows distinct
// values each, with ~blockRows rows per observed (X1, X2) block. The
// marriage graph then has many nodes but only about n/blockRows edges —
// a dense matcher would pad it to a quadratic matrix of slack entries.
// Remaining attributes draw from a small domain of rhsDomain values so
// blocks are internally dirty. Weights are integers in 1..4.
func MarriageSparseTable(sc *schema.Schema, n, blockRows, rhsDomain int, rng *rand.Rand) *table.Table {
	if sc.Arity() < 2 {
		panic("workload: marriage-sparse needs arity ≥ 2")
	}
	if blockRows < 1 || rhsDomain < 1 {
		panic("workload: blockRows and rhsDomain must be ≥ 1")
	}
	blocks := (n + blockRows - 1) / blockRows
	tuples := make([]table.Tuple, 0, n)
	weights := make([]float64, 0, n)
	for b := 0; b < blocks && len(tuples) < n; b++ {
		a := fmt.Sprintf("a%d", rng.Intn(blocks))
		bv := fmt.Sprintf("b%d", rng.Intn(blocks))
		for r := 0; r < blockRows && len(tuples) < n; r++ {
			tup := make(table.Tuple, sc.Arity())
			tup[0], tup[1] = a, bv
			for c := 2; c < len(tup); c++ {
				tup[c] = fmt.Sprintf("c%d", rng.Intn(rhsDomain))
			}
			tuples = append(tuples, tup)
			weights = append(weights, float64(1+rng.Intn(4)))
		}
	}
	t := table.New(sc)
	t.MustAppendRows(tuples, weights)
	return t
}

// HardSets returns the four APX-hard FD sets of Table 1 over the
// schema R(A, B, C), keyed by their display names. These are the
// standard instances for exercising Exact and Approx2 (OptSRepair
// fails on all of them).
func HardSets() map[string]*fd.Set {
	sc := schema.MustNew("R", "A", "B", "C")
	return map[string]*fd.Set{
		"ΔA→B→C":    fd.MustParseSet(sc, "A -> B", "B -> C"),
		"ΔA→C←B":    fd.MustParseSet(sc, "A -> C", "B -> C"),
		"ΔAB→C→B":   fd.MustParseSet(sc, "A B -> C", "C -> B"),
		"ΔAB↔AC↔BC": fd.MustParseSet(sc, "A B -> C", "A C -> B", "B C -> A"),
	}
}

// TractableSets returns FD sets over R(A, B, C) on the polynomial side
// of the dichotomy, covering all three simplification kinds (common
// lhs, consensus, lhs marriage) and their compositions.
func TractableSets() map[string]*fd.Set {
	sc := schema.MustNew("R", "A", "B", "C")
	return map[string]*fd.Set{
		"chain":      fd.MustParseSet(sc, "A -> B", "A B -> C"),
		"common-lhs": fd.MustParseSet(sc, "A -> B", "A -> C"),
		"consensus":  fd.MustParseSet(sc, "-> C", "A -> B"),
		"marriage":   fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C"),
		"key-swap":   fd.MustParseSet(sc, "A -> B", "B -> A"),
	}
}
