package workload

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/table"
)

func TestOfficeFixture(t *testing.T) {
	sc, ds, tab := Office()
	if sc.Arity() != 4 || ds.Len() != 2 || tab.Len() != 4 {
		t.Fatalf("unexpected fixture shape: %d/%d/%d", sc.Arity(), ds.Len(), tab.Len())
	}
	if tab.Satisfies(ds) {
		t.Error("Figure 1 table T must violate Δ")
	}
	if !table.WeightEq(tab.TotalWeight(), 6) {
		t.Errorf("total weight = %v", tab.TotalWeight())
	}
}

func TestRandomTableDeterministic(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	t1 := RandomTable(sc, 20, 3, rand.New(rand.NewSource(9)))
	t2 := RandomTable(sc, 20, 3, rand.New(rand.NewSource(9)))
	for _, r := range t1.Rows() {
		r2, ok := t2.Row(r.ID)
		if !ok || !r2.Tuple.Equal(r.Tuple) {
			t.Fatal("same seed must reproduce the same table")
		}
	}
	if t1.Len() != 20 || !t1.IsUnweighted() {
		t.Error("unexpected table shape")
	}
}

func TestRandomWeightedTable(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	tab := RandomWeightedTable(sc, 50, 4, 5, rand.New(rand.NewSource(3)))
	for _, r := range tab.Rows() {
		if r.Weight < 1 || r.Weight > 5 {
			t.Fatalf("weight %v out of range", r.Weight)
		}
	}
}

func TestDirtyTableCleanWhenFracZero(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := mustSet(t, sc, "A -> B", "B -> C")
	tab := DirtyTable(sc, ds, 40, 5, 0, rand.New(rand.NewSource(4)))
	if !tab.Satisfies(ds) {
		t.Fatal("dirtyFrac=0 must produce a consistent table")
	}
	dirty := DirtyTable(sc, ds, 40, 5, 0.4, rand.New(rand.NewSource(4)))
	if dirty.Satisfies(ds) {
		t.Log("note: corrupted table happened to stay consistent (possible but unlikely)")
	}
}

func TestZipfTableSkew(t *testing.T) {
	sc := schema.MustNew("R", "A")
	tab := ZipfTable(sc, 500, 10, rand.New(rand.NewSource(5)))
	counts := map[string]int{}
	for _, r := range tab.Rows() {
		counts[r.Tuple[0]]++
	}
	if counts["z0"] <= counts["z9"] {
		t.Errorf("Zipf skew missing: z0=%d z9=%d", counts["z0"], counts["z9"])
	}
}

func TestRandomGNP(t *testing.T) {
	g := RandomGNP(10, 1.0, rand.New(rand.NewSource(6)))
	if len(g.Edges) != 45 {
		t.Fatalf("complete graph should have 45 edges, got %d", len(g.Edges))
	}
	empty := RandomGNP(10, 0.0, rand.New(rand.NewSource(6)))
	if len(empty.Edges) != 0 {
		t.Fatal("p=0 should produce no edges")
	}
}

func TestRandomBoundedDegree(t *testing.T) {
	g := RandomBoundedDegree(20, 3, 500, rand.New(rand.NewSource(7)))
	if g.MaxDegree() > 3 {
		t.Fatalf("degree bound violated: %d", g.MaxDegree())
	}
	if len(g.Edges) == 0 {
		t.Fatal("expected some edges")
	}
}

func TestMinVertexCoverSize(t *testing.T) {
	// Triangle: vc = 2. Star: vc = 1.
	tri := &SimpleGraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	if vc, err := tri.MinVertexCoverSize(); err != nil || vc != 2 {
		t.Fatalf("triangle vc = %d, %v", vc, err)
	}
	star := &SimpleGraph{N: 5, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}}
	if vc, err := star.MinVertexCoverSize(); err != nil || vc != 1 {
		t.Fatalf("star vc = %d, %v", vc, err)
	}
}

func TestCNFBasics(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0) over 2 vars: max sat = 2 via x0=false, x1=true.
	f := CNF{NumVars: 2, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}, {Var: 1}}},
		{Lits: []Lit{{Var: 0, Neg: true}}},
	}}
	if !f.IsNonMixed() {
		t.Fatal("both clauses are single-polarity")
	}
	got, err := f.MaxSat()
	if err != nil || got != 2 {
		t.Fatalf("MaxSat = %d, %v", got, err)
	}
	if n := f.CountSatisfied([]bool{true, false}); n != 1 {
		t.Fatalf("CountSatisfied = %d, want 1", n)
	}
	mixed := CNF{NumVars: 2, Clauses: []Clause{{Lits: []Lit{{Var: 0}, {Var: 1, Neg: true}}}}}
	if mixed.IsNonMixed() {
		t.Fatal("mixed clause detected as non-mixed")
	}
}

func TestRandomNonMixedCNF(t *testing.T) {
	f := RandomNonMixedCNF(6, 20, 3, rand.New(rand.NewSource(8)))
	if !f.IsNonMixed() {
		t.Fatal("generator must emit non-mixed clauses")
	}
	if len(f.Clauses) != 20 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
	for _, c := range f.Clauses {
		seen := map[int]bool{}
		for _, l := range c.Lits {
			if seen[l.Var] {
				t.Fatal("clause repeats a variable")
			}
			seen[l.Var] = true
		}
	}
}

func TestMaxSatTooLarge(t *testing.T) {
	f := CNF{NumVars: 30}
	if _, err := f.MaxSat(); err == nil {
		t.Fatal("oversized MaxSat must refuse")
	}
}

func TestTrianglePacking(t *testing.T) {
	// Two triangles sharing an edge: packing = 1.
	ti := TriangleInstance{Triangles: [][3]string{
		{"a0", "b0", "c0"},
		{"a0", "b0", "c1"},
	}}
	if got, err := ti.MaxEdgeDisjointTriangles(); err != nil || got != 1 {
		t.Fatalf("packing = %d, %v", got, err)
	}
	// Sharing a single vertex is fine: packing = 2.
	ti2 := TriangleInstance{Triangles: [][3]string{
		{"a0", "b0", "c0"},
		{"a0", "b1", "c1"},
	}}
	if got, err := ti2.MaxEdgeDisjointTriangles(); err != nil || got != 2 {
		t.Fatalf("packing = %d, %v", got, err)
	}
}

func TestRandomTrianglesDistinct(t *testing.T) {
	inst := RandomTriangles(3, 3, 3, 15, rand.New(rand.NewSource(10)))
	seen := map[[3]string]bool{}
	for _, tr := range inst.Triangles {
		if seen[tr] {
			t.Fatal("duplicate triangle")
		}
		seen[tr] = true
	}
	if len(inst.Triangles) != 15 {
		t.Fatalf("triangles = %d, want 15", len(inst.Triangles))
	}
}

// TestMarriageSparseTable checks the sparse-marriage shape: many
// distinct X1/X2 values relative to the row count, small blocks, and
// deterministic generation.
func TestMarriageSparseTable(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	const n, blockRows = 600, 3
	tab := MarriageSparseTable(sc, n, blockRows, 3, rand.New(rand.NewSource(5)))
	if tab.Len() != n {
		t.Fatalf("generated %d rows, want %d", tab.Len(), n)
	}
	distinct := func(attr int) int {
		seen := map[string]bool{}
		for _, r := range tab.Rows() {
			seen[r.Tuple[attr]] = true
		}
		return len(seen)
	}
	// Each side must have on the order of n/blockRows distinct values —
	// the many-nodes/few-edges-per-node shape. With blocks = n/blockRows
	// draws from blocks values, the expected coverage is ≈ 63%.
	minDistinct := n / blockRows / 3
	if d := distinct(0); d < minDistinct {
		t.Fatalf("only %d distinct X1 values, want ≥ %d", d, minDistinct)
	}
	if d := distinct(1); d < minDistinct {
		t.Fatalf("only %d distinct X2 values, want ≥ %d", d, minDistinct)
	}
	again := MarriageSparseTable(sc, n, blockRows, 3, rand.New(rand.NewSource(5)))
	for _, r := range tab.Rows() {
		r2, ok := again.Row(r.ID)
		if !ok || r2.Tuple[0] != r.Tuple[0] || r2.Tuple[1] != r.Tuple[1] || r2.Tuple[2] != r.Tuple[2] {
			t.Fatal("generator must be deterministic for a fixed seed")
		}
	}
}
