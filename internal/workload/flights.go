package workload

import (
	"strings"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
)

// flightsCSV is a small dirty flight-status dataset in the style of the
// data-cleaning literature (conflicting sources reporting gates and
// times for the same flight). Weights encode per-source trust.
const flightsCSV = `id,flight,date,origin,gate,departure,w
1,UA100,2026-06-01,SFO,G12,09:15,3
2,UA100,2026-06-01,SFO,G12,09:15,1
3,UA100,2026-06-01,SFO,G14,09:15,1
4,UA100,2026-06-01,SFO,G12,09:45,1
5,DL200,2026-06-01,ATL,B03,11:00,2
6,DL200,2026-06-01,ATL,B03,11:10,1
7,DL200,2026-06-02,ATL,B07,11:00,2
8,AA300,2026-06-01,JFK,C22,15:30,2
9,AA300,2026-06-01,LGA,C22,15:30,1
10,AA300,2026-06-02,JFK,C25,16:00,2
11,WN400,2026-06-01,DAL,E05,08:00,1
12,WN400,2026-06-01,DAL,E05,08:00,1
`

// Flights returns the embedded flight-status dataset: its schema, the
// natural FDs — a flight on a date has one origin, gate, and departure
// time — and the (dirty) table. The FD set has a common lhs
// {flight, date}, so it sits on the tractable side of both repair
// problems.
func Flights() (*schema.Schema, *fd.Set, *table.Table) {
	t, err := table.ReadCSV(strings.NewReader(flightsCSV), "Flights")
	if err != nil {
		panic(err) // embedded fixture; cannot fail
	}
	sc := t.Schema()
	ds := fd.MustParseSet(sc,
		"flight date -> origin",
		"flight date -> gate",
		"flight date -> departure",
	)
	return sc, ds, t
}
