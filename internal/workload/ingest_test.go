package workload

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/schema"
	"repro/internal/table"
)

func TestIngestCSVInputDeterministicAndSized(t *testing.T) {
	const n, domain, width = 500, 37, 24
	a, err := io.ReadAll(IngestCSVInput(n, domain, width))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(IngestCSVInput(n, domain, width))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two streams with the same parameters differ")
	}
	if got, want := int64(len(a)), IngestCSVInputSize(n, width); got != want {
		t.Fatalf("stream length %d, want %d", got, want)
	}

	tab, err := table.IngestCSV(bytes.NewReader(a), "W")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != n {
		t.Fatalf("ingested %d rows, want %d", tab.Len(), n)
	}
	if got := tab.Schema().Arity(); got != 3 {
		t.Fatalf("arity %d, want 3", got)
	}
	// Every column must see at most `domain` distinct values, and with
	// 500 draws over 37 values, almost surely all of them.
	for a := 0; a < 3; a++ {
		_, groups := tab.ProjectionCodes(schema.Singleton(a))
		if groups > domain || groups < domain/2 {
			t.Fatalf("column %d has %d distinct values, want ≈%d", a, groups, domain)
		}
	}
	// Cells are fixed-width.
	for _, r := range tab.Rows()[:5] {
		for _, v := range r.Tuple {
			if len(v) != width {
				t.Fatalf("cell %q has length %d, want %d", v, len(v), width)
			}
		}
	}
}
