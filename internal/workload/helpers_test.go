package workload

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
)

// mustSet parses an FD set or fails the test.
func mustSet(t testing.TB, sc *schema.Schema, specs ...string) *fd.Set {
	t.Helper()
	set, err := fd.ParseSet(sc, specs...)
	if err != nil {
		t.Fatal(err)
	}
	return set
}
