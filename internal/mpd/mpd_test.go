package mpd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

var rAB = schema.MustNew("R", "A", "B")

func probTable(t testing.TB, probs []float64, tuples []table.Tuple) *table.Table {
	tab := table.New(rAB)
	for i := range probs {
		tab.MustInsert(i+1, tuples[i], probs[i])
	}
	return tab
}

func TestValidate(t *testing.T) {
	tab := table.New(rAB)
	tab.MustInsert(1, table.Tuple{"a", "b"}, 1.5)
	if err := Validate(tab); err == nil {
		t.Fatal("probability > 1 must be rejected")
	}
	ok := probTable(t, []float64{0.9, 1}, []table.Tuple{{"a", "b"}, {"c", "d"}})
	if err := Validate(ok); err != nil {
		t.Fatal(err)
	}
}

func TestProbability(t *testing.T) {
	tab := probTable(t, []float64{0.5, 0.5}, []table.Tuple{{"a", "b"}, {"c", "d"}})
	full := tab.MustSubsetByIDs([]int{1, 2})
	if p := Probability(tab, full); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("P(full) = %v, want 0.25", p)
	}
	empty := tab.MustSubsetByIDs(nil)
	if p := Probability(tab, empty); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("P(empty) = %v, want 0.25", p)
	}
	// A deleted certain tuple zeroes the probability.
	cert := probTable(t, []float64{1, 0.9}, []table.Tuple{{"a", "b"}, {"c", "d"}})
	if p := Probability(cert, cert.MustSubsetByIDs([]int{2})); p != 0 {
		t.Fatalf("P = %v, want 0", p)
	}
}

// TestSolveSimpleKey: under A → B, two conflicting tuples; the more
// probable one survives.
func TestSolveSimpleKey(t *testing.T) {
	ds := fd.MustParseSet(rAB, "A -> B")
	tab := probTable(t, []float64{0.9, 0.6}, []table.Tuple{{"a", "x"}, {"a", "y"}})
	got, err := Solve(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(1) {
		t.Fatalf("MPD should keep tuple 1, got %v", got.IDs())
	}
}

// TestSolveDropsLowProbability: tuples with p ≤ 0.5 never belong to a
// most probable database.
func TestSolveDropsLowProbability(t *testing.T) {
	ds := fd.MustParseSet(rAB, "A -> B")
	tab := probTable(t, []float64{0.4, 0.6}, []table.Tuple{{"a", "x"}, {"b", "y"}})
	got, err := Solve(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if got.Has(1) || !got.Has(2) {
		t.Fatalf("MPD = %v, want only tuple 2", got.IDs())
	}
	// Against brute force.
	bf, _, err := BruteForce(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(Probability(tab, got)-Probability(tab, bf)) > 1e-12 {
		t.Fatalf("Solve %v vs brute force %v", Probability(tab, got), Probability(tab, bf))
	}
}

// TestSolveCertainTuplesPinned: certain tuples always stay, forcing
// conflicting probable tuples out.
func TestSolveCertainTuplesPinned(t *testing.T) {
	ds := fd.MustParseSet(rAB, "A -> B")
	tab := probTable(t, []float64{1, 0.99}, []table.Tuple{{"a", "x"}, {"a", "y"}})
	got, err := Solve(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has(1) || got.Has(2) {
		t.Fatalf("MPD = %v, want the certain tuple only", got.IDs())
	}
}

// TestSolveInconsistentCertain: when certain tuples conflict, every
// consistent subset has probability zero; the empty subset is allowed.
func TestSolveInconsistentCertain(t *testing.T) {
	ds := fd.MustParseSet(rAB, "A -> B")
	tab := probTable(t, []float64{1, 1}, []table.Tuple{{"a", "x"}, {"a", "y"}})
	got, err := Solve(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("MPD = %v, want empty", got.IDs())
	}
}

// TestSolveMatchesBruteForce cross-validates the reduction on random
// probabilistic tables for tractable and hard FD sets.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C"), // ∆A↔B→C (Comment 3.11: poly here)
		fd.MustParseSet(sc, "A -> B", "B -> C"),           // hard side, exact fallback
	}
	for _, ds := range sets {
		for iter := 0; iter < 12; iter++ {
			base := workload.RandomTable(sc, 3+rng.Intn(6), 2, rng)
			tab := table.New(sc)
			for _, r := range base.Rows() {
				p := 0.05 + 0.95*rng.Float64()
				if p > 1 {
					p = 1
				}
				tab.MustInsert(r.ID, r.Tuple, p)
			}
			got, err := Solve(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Satisfies(ds) {
				t.Fatalf("%v: MPD result inconsistent", ds)
			}
			bf, bestP, err := BruteForce(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(Probability(tab, got)-bestP) > 1e-12*math.Max(1, bestP) {
				t.Fatalf("%v: Solve P=%v, brute force P=%v (bf keeps %v, solve keeps %v)\n%s",
					ds, Probability(tab, got), bestP, bf.IDs(), got.IDs(), tab)
			}
		}
	}
}

// TestComment311: ∆A↔B→C is polynomial-time in our dichotomy (the
// disagreement with Gribkoff et al. was a gap in their proof).
func TestComment311(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C")
	if !IsPolyTime(ds) {
		t.Fatal("∆A↔B→C must classify as polynomial time (Comment 3.11)")
	}
	hard := fd.MustParseSet(sc, "A -> B", "B -> C")
	if IsPolyTime(hard) {
		t.Fatal("{A→B, B→C} must classify as NP-hard")
	}
}

// TestUnweightedToMPD: the reverse reduction preserves optima — a most
// probable subset is a maximum-cardinality consistent subset.
func TestUnweightedToMPD(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B")
	base := workload.RandomTable(sc, 6, 2, rand.New(rand.NewSource(3)))
	prob, err := UnweightedToMPD(base, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(ds, prob)
	if err != nil {
		t.Fatal(err)
	}
	// Compare cardinality against brute force on the probabilistic table.
	bf, _, err := BruteForce(ds, prob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != bf.Len() {
		t.Fatalf("cardinality %d != brute force %d", got.Len(), bf.Len())
	}
	if _, err := UnweightedToMPD(base, 0.5); err == nil {
		t.Fatal("p = 0.5 must be rejected")
	}
}

func TestBruteForceLimit(t *testing.T) {
	sc := schema.MustNew("R", "A")
	ds := fd.MustParseSet(sc, "-> A")
	tab := table.New(sc)
	for i := 1; i <= BruteForceLimit+1; i++ {
		tab.MustInsert(i, table.Tuple{"v"}, 0.9)
	}
	if _, _, err := BruteForce(ds, tab); err == nil {
		t.Fatal("oversized brute force must refuse")
	}
}

// TestBruteForceGrayCodeExact pins the incremental Gray-code product to
// a from-scratch recomputation: the reported probability must equal
// Probability() of the returned subset, including certain tuples (whose
// drop-factor is exactly zero and is counted, not divided) and tables
// large enough to cross the drift-resync period.
func TestBruteForceGrayCodeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B")
	for iter := 0; iter < 6; iter++ {
		n := 13 + rng.Intn(3) // ≥ 2¹³ masks: crosses the resync period
		base := workload.RandomTable(sc, n, 2, rng)
		tab := table.New(sc)
		for i, r := range base.Rows() {
			p := 0.05 + 0.95*rng.Float64()
			if i%5 == 0 {
				p = 1 // certain tuple: exercises the zero-factor path
			}
			tab.MustInsert(r.ID, r.Tuple, p)
		}
		bf, bestP, err := BruteForce(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if bf == nil {
			t.Fatal("consistent subsets always exist (the empty one)")
		}
		if want := Probability(tab, bf); math.Abs(bestP-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("iter %d: reported P=%v, recomputed P=%v", iter, bestP, want)
		}
		if !bf.Satisfies(ds) {
			t.Fatal("brute-force winner inconsistent")
		}
	}
}
