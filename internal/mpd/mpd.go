// Package mpd implements the Most Probable Database problem of
// Section 3.4: given a tuple-independent probabilistic table (tuple
// weights in (0,1] read as probabilities) and a set of FDs, find the
// most probable consistent subset. Theorem 3.10's reduction maps the
// problem to optimal S-repairs over log-odds weights, which settles the
// dichotomy of Gribkoff, Van den Broeck and Suciu for arbitrary FDs:
// MPD is in polynomial time iff OSRSucceeds(Δ).
package mpd

import (
	"fmt"
	"math"

	"repro/internal/fd"
	"repro/internal/srepair"
	"repro/internal/table"
)

// Validate checks that the table is a probabilistic table: every weight
// lies in (0, 1].
func Validate(t *table.Table) error {
	for _, r := range t.Rows() {
		if r.Weight <= 0 || r.Weight > 1 {
			return fmt.Errorf("mpd: tuple %d has probability %v outside (0,1]", r.ID, r.Weight)
		}
	}
	return nil
}

// Probability returns Pr_T(S) of equation (2): the probability of
// drawing exactly the subset s from the tuple-independent table t.
func Probability(t, s *table.Table) float64 {
	p := 1.0
	for _, r := range t.Rows() {
		if s.Has(r.ID) {
			p *= r.Weight
		} else {
			p *= 1 - r.Weight
		}
	}
	return p
}

// IsPolyTime reports whether MPD for the FD set is solvable in
// polynomial time (Theorem 3.10: exactly when OSRSucceeds holds).
func IsPolyTime(ds *fd.Set) bool { return srepair.OSRSucceeds(ds) }

// Solve computes a most probable consistent subset via the reduction of
// Theorem 3.10: certain tuples (p = 1) are pinned with a dominating
// weight, tuples with p ≤ 0.5 are dropped (never harmful), and the rest
// get log-odds weights log(p/(1−p)); an optimal S-repair of the
// reweighted table is a most probable database. OptSRepair is used when
// the FD set is tractable, the exact vertex-cover baseline otherwise
// (subject to its size limits).
func Solve(ds *fd.Set, t *table.Table) (*table.Table, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("mpd: FD set and table have different schemas")
	}
	// Certain tuples must be jointly consistent; otherwise every subset
	// containing them is inconsistent and every consistent subset has
	// probability zero — the paper then allows any answer (we return
	// the empty subset).
	var certainIDs []int
	var certainRows []int32
	for ri, r := range t.Rows() {
		if r.Weight == 1 {
			certainIDs = append(certainIDs, r.ID)
			certainRows = append(certainRows, int32(ri))
		}
	}
	if !table.ViewOfRows(t, certainRows).Satisfies(ds) {
		return t.MustSubsetByIDs(nil), nil
	}
	// Keep certain tuples and tuples with p > 0.5.
	weighted := table.New(t.Schema())
	var logOddsSum float64
	type pending struct {
		id   int
		odds float64
	}
	var pendings []pending
	for _, r := range t.Rows() {
		if r.Weight == 1 {
			continue // inserted after the dominating weight is known
		}
		if r.Weight <= 0.5 {
			continue // never helps the probability
		}
		odds := math.Log(r.Weight / (1 - r.Weight))
		pendings = append(pendings, pending{r.ID, odds})
		logOddsSum += odds
	}
	bigM := logOddsSum + 1
	for _, id := range certainIDs {
		r, _ := t.Row(id)
		weighted.MustInsert(id, r.Tuple, bigM)
	}
	for _, p := range pendings {
		r, _ := t.Row(p.id)
		weighted.MustInsert(p.id, r.Tuple, p.odds)
	}
	var rep *table.Table
	var err error
	if srepair.OSRSucceeds(ds) {
		rep, err = srepair.OptSRepair(ds, weighted)
	} else {
		rep, err = srepair.Exact(ds, weighted)
	}
	if err != nil {
		return nil, err
	}
	// Sanity: the dominating weight must have kept every certain tuple.
	for _, id := range certainIDs {
		if !rep.Has(id) {
			return nil, fmt.Errorf("mpd: internal error: certain tuple %d deleted", id)
		}
	}
	return t.MustSubsetByIDs(rep.IDs()), nil
}

// BruteForceLimit bounds the subset enumeration of BruteForce.
const BruteForceLimit = 20

// BruteForce computes a most probable consistent subset by enumerating
// all subsets; the validation oracle for Solve. Subsets are checked as
// zero-copy views; only the winner is materialized.
func BruteForce(ds *fd.Set, t *table.Table) (*table.Table, float64, error) {
	if err := Validate(t); err != nil {
		return nil, 0, err
	}
	n := t.Len()
	if n > BruteForceLimit {
		return nil, 0, fmt.Errorf("mpd: brute force limited to %d tuples, got %d", BruteForceLimit, n)
	}
	rows := t.Rows()
	bestMask := -1
	bestP := math.Inf(-1)
	keep := make([]int32, 0, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		keep = keep[:0]
		p := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				keep = append(keep, int32(i))
				p *= rows[i].Weight
			} else {
				p *= 1 - rows[i].Weight
			}
		}
		if p <= bestP {
			continue // cannot win; skip the consistency check
		}
		if !table.ViewOfRows(t, keep).Satisfies(ds) {
			continue
		}
		bestMask, bestP = mask, p
	}
	if bestMask < 0 {
		return nil, bestP, nil
	}
	var keepIDs []int
	for i := 0; i < n; i++ {
		if bestMask&(1<<uint(i)) != 0 {
			keepIDs = append(keepIDs, rows[i].ID)
		}
	}
	return t.MustSubsetByIDs(keepIDs), bestP, nil
}

// UnweightedToMPD is the reverse reduction in the proof of Theorem 3.10:
// an unweighted table becomes a probabilistic table with a fixed
// probability p ∈ (0.5, 1) per tuple, so that a most probable subset is
// exactly a maximum-cardinality consistent subset.
func UnweightedToMPD(t *table.Table, p float64) (*table.Table, error) {
	if p <= 0.5 || p >= 1 {
		return nil, fmt.Errorf("mpd: reverse reduction needs p in (0.5, 1), got %v", p)
	}
	out := table.New(t.Schema())
	for _, r := range t.Rows() {
		out.MustInsert(r.ID, r.Tuple, p)
	}
	return out, nil
}
