// Package mpd implements the Most Probable Database problem of
// Section 3.4: given a tuple-independent probabilistic table (tuple
// weights in (0,1] read as probabilities) and a set of FDs, find the
// most probable consistent subset. Theorem 3.10's reduction maps the
// problem to optimal S-repairs over log-odds weights, which settles the
// dichotomy of Gribkoff, Van den Broeck and Suciu for arbitrary FDs:
// MPD is in polynomial time iff OSRSucceeds(Δ).
package mpd

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/fd"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
)

// Validate checks that the table is a probabilistic table: every weight
// lies in (0, 1].
func Validate(t *table.Table) error {
	for _, r := range t.Rows() {
		if r.Weight <= 0 || r.Weight > 1 {
			return fmt.Errorf("mpd: tuple %d has probability %v outside (0,1]", r.ID, r.Weight)
		}
	}
	return nil
}

// Probability returns Pr_T(S) of equation (2): the probability of
// drawing exactly the subset s from the tuple-independent table t.
func Probability(t, s *table.Table) float64 {
	rows := t.Rows()
	p := 1.0
	for i := range rows {
		if s.Has(rows[i].ID) {
			p *= rows[i].Weight
		} else {
			p *= 1 - rows[i].Weight
		}
	}
	return p
}

// IsPolyTime reports whether MPD for the FD set is solvable in
// polynomial time (Theorem 3.10: exactly when OSRSucceeds holds).
func IsPolyTime(ds *fd.Set) bool { return srepair.OSRSucceeds(ds) }

// Solve computes a most probable consistent subset via the reduction of
// Theorem 3.10: certain tuples (p = 1) are pinned with a dominating
// weight, tuples with p ≤ 0.5 are dropped (never harmful), and the rest
// get log-odds weights log(p/(1−p)); an optimal S-repair of the
// reweighted table is a most probable database. OptSRepair is used when
// the FD set is tractable, the exact vertex-cover baseline otherwise
// (subject to its size limits). Runs on the process-default solve
// context; see SolveCtx.
func Solve(ds *fd.Set, t *table.Table) (*table.Table, error) {
	return SolveCtx(solve.Default(), ds, t)
}

// SolveCtx is Solve under an explicit solve context: the underlying
// S-repair (OptSRepair on the tractable side, the exact vertex-cover
// baseline otherwise) inherits c's worker budget, arenas, stats and
// cancellation.
func SolveCtx(c *solve.Ctx, ds *fd.Set, t *table.Table) (*table.Table, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("mpd: FD set and table have different schemas")
	}
	// Certain tuples must be jointly consistent; otherwise every subset
	// containing them is inconsistent and every consistent subset has
	// probability zero — the paper then allows any answer (we return
	// the empty subset).
	var certainIDs []int
	var certainRows []int32
	for ri, r := range t.Rows() {
		if r.Weight == 1 {
			certainIDs = append(certainIDs, r.ID)
			certainRows = append(certainRows, int32(ri))
		}
	}
	if !table.ViewOfRows(t, certainRows).Satisfies(ds) {
		return t.MustSubsetByIDs(nil), nil
	}
	// Keep certain tuples and tuples with p > 0.5.
	weighted := table.New(t.Schema())
	var logOddsSum float64
	type pending struct {
		id   int
		odds float64
	}
	var pendings []pending
	for _, r := range t.Rows() {
		if r.Weight == 1 {
			continue // inserted after the dominating weight is known
		}
		if r.Weight <= 0.5 {
			continue // never helps the probability
		}
		odds := math.Log(r.Weight / (1 - r.Weight))
		pendings = append(pendings, pending{r.ID, odds})
		logOddsSum += odds
	}
	bigM := logOddsSum + 1
	for _, id := range certainIDs {
		r, _ := t.Row(id)
		weighted.MustInsert(id, r.Tuple, bigM)
	}
	for _, p := range pendings {
		r, _ := t.Row(p.id)
		weighted.MustInsert(p.id, r.Tuple, p.odds)
	}
	var rep *table.Table
	var err error
	if srepair.OSRSucceeds(ds) {
		rep, err = srepair.OptSRepairCtx(c, ds, weighted)
	} else {
		rep, err = srepair.ExactCtx(c, ds, weighted)
	}
	if err != nil {
		return nil, err
	}
	// Sanity: the dominating weight must have kept every certain tuple.
	for _, id := range certainIDs {
		if !rep.Has(id) {
			return nil, fmt.Errorf("mpd: internal error: certain tuple %d deleted", id)
		}
	}
	return t.MustSubsetByIDs(rep.IDs()), nil
}

// BruteForceLimit bounds the subset enumeration of BruteForce.
const BruteForceLimit = 20

// BruteForce computes a most probable consistent subset by enumerating
// all subsets; the validation oracle for Solve. Subsets are checked as
// zero-copy views; only the winner is materialized.
//
// The per-row factors (p when kept, 1−p when dropped) are cached in two
// flat slices up front, and the 2ⁿ masks are visited in Gray-code order
// so consecutive subsets differ in one row: the probability is updated
// incrementally (divide out the old factor, multiply in the new one)
// instead of re-reading every row weight per mask. Zero factors
// (certain tuples dropped) cannot be divided out, so they are counted
// separately; the running product covers the nonzero factors only, and
// it is recomputed from scratch periodically to bound float drift.
func BruteForce(ds *fd.Set, t *table.Table) (*table.Table, float64, error) {
	if err := Validate(t); err != nil {
		return nil, 0, err
	}
	n := t.Len()
	if n > BruteForceLimit {
		return nil, 0, fmt.Errorf("mpd: brute force limited to %d tuples, got %d", BruteForceLimit, n)
	}
	rows := t.Rows()
	in := make([]float64, n)  // factor when row i is kept
	out := make([]float64, n) // factor when row i is dropped
	for i := range rows {
		in[i] = rows[i].Weight
		out[i] = 1 - rows[i].Weight
	}
	factors := func(mask int) (prod float64, zeros int) {
		prod = 1.0
		for i := 0; i < n; i++ {
			f := out[i]
			if mask&(1<<uint(i)) != 0 {
				f = in[i]
			}
			if f == 0 {
				zeros++
			} else {
				prod *= f
			}
		}
		return prod, zeros
	}
	const resyncPeriod = 1 << 12
	mask := 0
	prod, zeros := factors(0)
	bestMask := -1
	bestP := math.Inf(-1)
	keep := make([]int32, 0, n)
	steps := 1 << uint(n)
	for k := 0; ; k++ {
		p := prod
		if zeros > 0 {
			p = 0
		}
		if p > bestP {
			keep = keep[:0]
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					keep = append(keep, int32(i))
				}
			}
			if table.ViewOfRows(t, keep).Satisfies(ds) {
				bestMask, bestP = mask, p
			}
		}
		if k+1 == steps {
			break
		}
		// gray(k) and gray(k+1) differ exactly in the lowest set bit of
		// k+1; flipping it swaps the row between kept and dropped.
		bit := bits.TrailingZeros(uint(k + 1))
		flip := 1 << uint(bit)
		rm, add := out[bit], in[bit]
		if mask&flip != 0 {
			rm, add = in[bit], out[bit]
		}
		mask ^= flip
		if (k+1)%resyncPeriod == 0 {
			prod, zeros = factors(mask)
			continue
		}
		if rm == 0 {
			zeros--
		} else {
			prod /= rm
		}
		if add == 0 {
			zeros++
		} else {
			prod *= add
		}
	}
	if bestMask < 0 {
		return nil, bestP, nil
	}
	// Report the winner's probability exactly, not the drifted running
	// value.
	if prod, zeros := factors(bestMask); zeros > 0 {
		bestP = 0
	} else {
		bestP = prod
	}
	var keepIDs []int
	for i := 0; i < n; i++ {
		if bestMask&(1<<uint(i)) != 0 {
			keepIDs = append(keepIDs, rows[i].ID)
		}
	}
	return t.MustSubsetByIDs(keepIDs), bestP, nil
}

// UnweightedToMPD is the reverse reduction in the proof of Theorem 3.10:
// an unweighted table becomes a probabilistic table with a fixed
// probability p ∈ (0.5, 1) per tuple, so that a most probable subset is
// exactly a maximum-cardinality consistent subset.
func UnweightedToMPD(t *table.Table, p float64) (*table.Table, error) {
	if p <= 0.5 || p >= 1 {
		return nil, fmt.Errorf("mpd: reverse reduction needs p in (0.5, 1), got %v", p)
	}
	out := table.New(t.Schema())
	for _, r := range t.Rows() {
		out.MustInsert(r.ID, r.Tuple, p)
	}
	return out, nil
}
