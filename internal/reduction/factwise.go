// Package reduction makes the paper's hardness machinery executable:
//
//   - the fact-wise reductions of Lemmas A.14–A.18, which map tuples
//     over the hard base schemas of Table 1 into tuples over an
//     arbitrary non-simplifiable FD set while preserving consistency of
//     pairs (the property the APX-hardness proofs rest on); the tests
//     verify injectivity and consistency preservation empirically;
//   - the gadget reductions used for the base sets: vertex cover →
//     ∆A↔B→C updates (Theorem 4.10), vertex cover → {A→B, B→C} subsets
//     (a verified substitution for the unspecified MAX-2-SAT reduction
//     of Gribkoff et al., see DESIGN.md), MAX-non-mixed-SAT → ∆AB→C→B
//     (Lemma A.13), triangle packing → ∆AB↔AC↔BC (Lemma A.11), and the
//     ∆k / ∆′k liftings of Lemmas B.6 and B.7.
package reduction

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
)

// SourceABC is the source schema R(A, B, C) of the fact-wise reductions.
var SourceABC = schema.MustNew("R", "A", "B", "C")

// bullet is the constant ⊙ used by the reductions.
const bullet = "⊙"

// pair encodes the composite value ⟨parts...⟩ injectively
// (length-prefixed concatenation).
func pair(parts ...table.Value) table.Value {
	var b strings.Builder
	b.WriteString("⟨")
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	b.WriteString("⟩")
	return b.String()
}

// FactWise is a tuple mapping Π from (SourceABC, base FD set) to a
// target schema and FD set. Map must be injective and preserve pairwise
// consistency; the tests check both.
type FactWise struct {
	// Name identifies the lemma that defines the mapping.
	Name string
	// Base is the hard FD set over SourceABC being reduced from.
	Base *fd.Set
	// Target is the FD set being reduced to.
	Target *fd.Set
	// Map maps a tuple (a, b, c) over SourceABC to a target tuple.
	Map func(t table.Tuple) table.Tuple
}

// MapTable applies Π tuple-wise, preserving ids and weights.
func (fw FactWise) MapTable(t *table.Table) (*table.Table, error) {
	if !t.Schema().SameAs(SourceABC) {
		return nil, fmt.Errorf("reduction: table is not over %s", SourceABC)
	}
	out := table.New(fw.Target.Schema())
	for _, r := range t.Rows() {
		if err := out.Insert(r.ID, fw.Map(r.Tuple), r.Weight); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForClassification builds the fact-wise reduction of the lemma
// matching the classification of a non-simplifiable FD set (Lemmas
// A.14–A.17). The target set must be the set that produced the
// classification.
func ForClassification(target *fd.Set, cl fd.Classification) (FactWise, error) {
	can := target.Canonical()
	x1, x2 := cl.X1, cl.X2
	cl1 := can.Closure(x1)
	cl2 := can.Closure(x2)
	h1 := cl1.Diff(x1)
	h2 := cl2.Diff(x2)
	k := target.Schema().Arity()

	mapWith := func(cases func(attr int, a, b, c table.Value) table.Value) func(table.Tuple) table.Tuple {
		return func(t table.Tuple) table.Tuple {
			a, b, c := t[0], t[1], t[2]
			out := make(table.Tuple, k)
			for i := 0; i < k; i++ {
				out[i] = cases(i, a, b, c)
			}
			return out
		}
	}

	switch cl.Class {
	case fd.Class1:
		// Lemma A.14, base ∆A→C←B = {A → C, B → C}.
		base := fd.MustParseSet(SourceABC, "A -> C", "B -> C")
		return FactWise{
			Name:   "Lemma A.14 (class 1)",
			Base:   base,
			Target: target,
			Map: mapWith(func(i int, a, b, c table.Value) table.Value {
				switch {
				case x1.Contains(i) && x2.Contains(i):
					return bullet
				case x1.Contains(i):
					return a
				case x2.Contains(i):
					return b
				case h1.Contains(i):
					return pair(a, c)
				case h2.Contains(i):
					return pair(b, c)
				default:
					return pair(a, b)
				}
			}),
		}, nil
	case fd.Class2, fd.Class3:
		// Lemma A.15, base ∆A→B→C = {A → B, B → C}.
		base := fd.MustParseSet(SourceABC, "A -> B", "B -> C")
		return FactWise{
			Name:   fmt.Sprintf("Lemma A.15 (%v)", cl.Class),
			Base:   base,
			Target: target,
			Map: mapWith(func(i int, a, b, c table.Value) table.Value {
				switch {
				case x1.Contains(i) && x2.Contains(i):
					return bullet
				case x1.Contains(i):
					return a
				case x2.Contains(i):
					return b
				case h1.Contains(i) && !cl2.Contains(i):
					return pair(a, c)
				case h2.Contains(i):
					return pair(b, c)
				default:
					return a
				}
			}),
		}, nil
	case fd.Class4:
		// Lemma A.16, base ∆AB↔AC↔BC = {AB → C, AC → B, BC → A}.
		base := fd.MustParseSet(SourceABC, "A B -> C", "A C -> B", "B C -> A")
		x3 := cl.X3
		return FactWise{
			Name:   "Lemma A.16 (class 4)",
			Base:   base,
			Target: target,
			Map: mapWith(func(i int, a, b, c table.Value) table.Value {
				in1, in2, in3 := x1.Contains(i), x2.Contains(i), x3.Contains(i)
				switch {
				case in1 && in2 && in3:
					return bullet
				case in1 && in2:
					return a
				case in1 && in3:
					return b
				case in2 && in3:
					return c
				case in1:
					return pair(a, b)
				case in2:
					return pair(a, c)
				case in3:
					return pair(b, c)
				default:
					return pair(a, b, c)
				}
			}),
		}, nil
	case fd.Class5:
		// Lemma A.17, base ∆AB→C→B = {AB → C, C → B}.
		base := fd.MustParseSet(SourceABC, "A B -> C", "C -> B")
		return FactWise{
			Name:   "Lemma A.17 (class 5)",
			Base:   base,
			Target: target,
			Map: mapWith(func(i int, a, b, c table.Value) table.Value {
				in1, in2, inH1 := x1.Contains(i), x2.Contains(i), h1.Contains(i)
				switch {
				case in1 && in2:
					return bullet
				case in1:
					return c
				case in2 && inH1:
					return b
				case in2:
					return pair(a, b)
				case inH1:
					return pair(b, c)
				default:
					return pair(a, b, c)
				}
			}),
		}, nil
	default:
		return FactWise{}, fmt.Errorf("reduction: no fact-wise reduction for %v", cl.Class)
	}
}

// AttributeRemoval is Lemma A.18: the fact-wise reduction from
// (R, Δ − X) to (R, Δ) that pads the removed attributes with ⊙. It maps
// tuples of R to tuples of R (same schema).
func AttributeRemoval(target *fd.Set, x schema.AttrSet) func(table.Tuple) table.Tuple {
	return func(t table.Tuple) table.Tuple {
		out := t.Clone()
		for _, p := range x.Positions() {
			out[p] = bullet
		}
		return out
	}
}
