package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

// TestVCSubsetGadgetIdentity: on random small graphs, the optimal
// S-repair of the ∆A→B→C gadget deletes exactly |E| + vc(G) tuples.
func TestVCSubsetGadgetIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 25; iter++ {
		g := workload.RandomGNP(3+rng.Intn(4), 0.5, rng)
		ds, tab := VCSubsetGadget(g)
		if !tab.IsUnweighted() || !tab.IsDuplicateFree() {
			t.Fatal("gadget must be unweighted and duplicate free")
		}
		rep, err := srepair.Exact(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		vc, err := g.MinVertexCoverSize()
		if err != nil {
			t.Fatal(err)
		}
		want := float64(len(g.Edges) + vc)
		if got := table.DistSub(rep, tab); !table.WeightEq(got, want) {
			t.Fatalf("iter %d: deletions = %v, want |E|+vc = %v (|E|=%d, vc=%d)",
				iter, got, want, len(g.Edges), vc)
		}
	}
}

// TestVCUpdateGadgetUpperBound: Theorem 4.10's constructed update is
// consistent and costs exactly 2|E| + |cover|.
func TestVCUpdateGadgetUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 20; iter++ {
		g := workload.RandomBoundedDegree(4+rng.Intn(5), 3, 60, rng)
		ds, tab := VCUpdateGadget(g)
		// Exact cover via the unit-weight solver.
		vcSize, err := g.MinVertexCoverSize()
		if err != nil {
			t.Fatal(err)
		}
		// Build some cover: take all endpoints of edges greedily.
		cover := map[int]bool{}
		for _, e := range g.Edges {
			if !cover[e[0]] && !cover[e[1]] {
				cover[e[0]] = true
			}
		}
		u, err := VCUpdateFromCover(g, tab, cover)
		if err != nil {
			t.Fatal(err)
		}
		if !u.Satisfies(ds) || !u.IsUpdateOf(tab) {
			t.Fatalf("iter %d: constructed update invalid", iter)
		}
		nCover := 0
		for _, in := range cover {
			if in {
				nCover++
			}
		}
		want := float64(2*len(g.Edges) + nCover)
		if got := table.DistUpd(u, tab); !table.WeightEq(got, want) {
			t.Fatalf("iter %d: dist = %v, want 2|E|+|C| = %v", iter, got, want)
		}
		_ = vcSize
	}
}

// TestVCUpdateGadgetExactSingleEdge verifies the full identity of
// Theorem 4.10 on the single-edge graph, where the brute-force optimal
// U-repair is feasible: cost = 2·1 + 1 = 3.
func TestVCUpdateGadgetExactSingleEdge(t *testing.T) {
	g := &workload.SimpleGraph{N: 2, Edges: [][2]int{{0, 1}}}
	ds, tab := VCUpdateGadget(g)
	if tab.Len() != 4 {
		t.Fatalf("gadget rows = %d, want 4", tab.Len())
	}
	_, cost, err := urepair.Exact(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(cost, 3) {
		t.Fatalf("optimal U-repair cost = %v, want 2|E|+vc = 3", cost)
	}
}

// TestVCUpdateFromCoverRejectsNonCover: a non-cover is rejected.
func TestVCUpdateFromCoverRejectsNonCover(t *testing.T) {
	g := &workload.SimpleGraph{N: 2, Edges: [][2]int{{0, 1}}}
	_, tab := VCUpdateGadget(g)
	if _, err := VCUpdateFromCover(g, tab, map[int]bool{}); err == nil {
		t.Fatal("empty set is not a cover")
	}
}

// TestNonMixedSATGadgetIdentity: Lemma A.13 — max satisfiable clauses
// equals the maximum consistent-subset size.
func TestNonMixedSATGadgetIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 25; iter++ {
		f := workload.RandomNonMixedCNF(3+rng.Intn(3), 3+rng.Intn(4), 2, rng)
		ds, tab, err := NonMixedSATGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := srepair.Exact(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		maxSat, err := f.MaxSat()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Len() != maxSat {
			t.Fatalf("iter %d: consistent subset size %d, MaxSat %d\n%s", iter, rep.Len(), maxSat, tab)
		}
	}
	// Mixed formulas are rejected.
	mixed := workload.CNF{NumVars: 2, Clauses: []workload.Clause{
		{Lits: []workload.Lit{{Var: 0}, {Var: 1, Neg: true}}},
	}}
	if _, _, err := NonMixedSATGadget(mixed); err == nil {
		t.Fatal("mixed formula must be rejected")
	}
}

// TestTriangleGadgetIdentity: Lemma A.11 — maximum edge-disjoint
// triangles equals the maximum consistent-subset size.
func TestTriangleGadgetIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 25; iter++ {
		inst := workload.RandomTriangles(3, 3, 3, 4+rng.Intn(8), rng)
		ds, tab := TriangleGadget(inst)
		rep, err := srepair.Exact(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		want, err := inst.MaxEdgeDisjointTriangles()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Len() != want {
			t.Fatalf("iter %d: consistent subset %d, packing %d", iter, rep.Len(), want)
		}
	}
}

// TestLiftToDeltaK: Lemma B.6 — the embedding into ∆k preserves
// pairwise consistency and the exact S-repair cost.
func TestLiftToDeltaK(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	src := workload.Catalogue()[6] // ∆A→B→C
	for _, k := range []int{1, 2, 3} {
		for iter := 0; iter < 10; iter++ {
			tab := workload.RandomTable(SourceABC, 5, 2, rng)
			dsK, lifted, err := LiftToDeltaK(k, tab)
			if err != nil {
				t.Fatal(err)
			}
			if tab.Satisfies(src.Set) != lifted.Satisfies(dsK) {
				t.Fatalf("k=%d: consistency not preserved", k)
			}
			repS, err := srepair.Exact(src.Set, tab)
			if err != nil {
				t.Fatal(err)
			}
			repK, err := srepair.Exact(dsK, lifted)
			if err != nil {
				t.Fatal(err)
			}
			if !table.WeightEq(table.DistSub(repS, tab), table.DistSub(repK, lifted)) {
				t.Fatalf("k=%d: S-repair cost changed under lifting: %v vs %v",
					k, table.DistSub(repS, tab), table.DistSub(repK, lifted))
			}
		}
	}
	// Wrong schema rejected.
	if _, _, err := LiftToDeltaK(2, table.New(workload.DeltaPrimeK(1).Schema())); err == nil {
		t.Fatal("LiftToDeltaK must reject non-ABC tables")
	}
}

// TestLiftToDeltaPrimeK: Lemma B.7 — the embedding into ∆′k preserves
// pairwise consistency and the exact S-repair cost.
func TestLiftToDeltaPrimeK(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ds1 := workload.DeltaPrimeK(1)
	for _, k := range []int{2, 3} {
		for iter := 0; iter < 10; iter++ {
			tab := workload.RandomTable(ds1.Schema(), 5, 2, rng)
			dsK, lifted, err := LiftToDeltaPrimeK(k, tab)
			if err != nil {
				t.Fatal(err)
			}
			if tab.Satisfies(ds1) != lifted.Satisfies(dsK) {
				t.Fatalf("k=%d: consistency not preserved", k)
			}
			rep1, err := srepair.Exact(ds1, tab)
			if err != nil {
				t.Fatal(err)
			}
			repK, err := srepair.Exact(dsK, lifted)
			if err != nil {
				t.Fatal(err)
			}
			if !table.WeightEq(table.DistSub(rep1, tab), table.DistSub(repK, lifted)) {
				t.Fatalf("k=%d: S-repair cost changed under lifting", k)
			}
		}
	}
	if _, _, err := LiftToDeltaPrimeK(2, table.New(SourceABC)); err == nil {
		t.Fatal("LiftToDeltaPrimeK must reject ABC tables")
	}
}
