package reduction

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
)

// randTuple draws a random (a, b, c) tuple over SourceABC from a small
// domain (small domains maximize agreement, stressing the FDs).
func randTuple(rng *rand.Rand) table.Tuple {
	return table.Tuple{
		fmt.Sprintf("a%d", rng.Intn(3)),
		fmt.Sprintf("b%d", rng.Intn(3)),
		fmt.Sprintf("c%d", rng.Intn(3)),
	}
}

// pairConsistent checks whether the two tuples jointly satisfy the set.
func pairConsistent(ds *fd.Set, t1, t2 table.Tuple) bool {
	tab := table.New(ds.Schema())
	tab.MustInsert(1, t1, 1)
	tab.MustInsert(2, t2, 1)
	return tab.Satisfies(ds)
}

// hardTargets returns non-simplifiable FD sets covering all five
// classes, including the paper's Example 3.8 witnesses.
func hardTargets() map[string]*fd.Set {
	abc := SourceABC
	abcd := schema.MustNew("R", "A", "B", "C", "D")
	abcde := schema.MustNew("R", "A", "B", "C", "D", "E")
	return map[string]*fd.Set{
		"class1 {A→B,C→D}":   fd.MustParseSet(abcd, "A -> B", "C -> D"),
		"class2 {A→CD,B→CE}": fd.MustParseSet(abcde, "A -> C D", "B -> C E"),
		"class2 {A→C,B→C}":   fd.MustParseSet(abc, "A -> C", "B -> C"),
		"class3 {A→BC,B→D}":  fd.MustParseSet(abcd, "A -> B C", "B -> D"),
		"class3 {A→B,B→C}":   fd.MustParseSet(abc, "A -> B", "B -> C"),
		"class4 {AB↔AC↔BC}":  fd.MustParseSet(abc, "A B -> C", "A C -> B", "B C -> A"),
		"class5 {AB→C,C→AD}": fd.MustParseSet(abcd, "A B -> C", "C -> A D"),
		"class5 {AB→C,C→B}":  fd.MustParseSet(abc, "A B -> C", "C -> B"),
		// Note: ∆2 (zip) of Example 4.7 simplifies once via its common
		// lhs "state" before getting stuck, so it is exercised through
		// Lemma A.18 (attribute removal) rather than here.
	}
}

// TestFactWiseProperties verifies, for every hard target, the three
// defining properties of a fact-wise reduction (Section 3.3): the map
// is well defined, injective, and preserves pairwise consistency and
// inconsistency against the base FD set of the matching lemma.
func TestFactWiseProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for name, target := range hardTargets() {
		cl, err := target.ClassifyNonSimplifiable()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fw, err := ForClassification(target, cl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Injectivity.
		seen := map[string]string{}
		for i := 0; i < 300; i++ {
			tp := randTuple(rng)
			img := table.KeyOf(fw.Map(tp), target.Schema().AllAttrs())
			src := table.KeyOf(tp, SourceABC.AllAttrs())
			if prev, ok := seen[img]; ok && prev != src {
				t.Fatalf("%s (%s): Π not injective: %v and %v map together", name, fw.Name, prev, src)
			}
			seen[img] = src
		}
		// Consistency preservation on random pairs.
		agreeChecked, disagreeChecked := 0, 0
		for i := 0; i < 500; i++ {
			t1, t2 := randTuple(rng), randTuple(rng)
			srcOK := pairConsistent(fw.Base, t1, t2)
			dstOK := pairConsistent(target, fw.Map(t1), fw.Map(t2))
			if srcOK != dstOK {
				t.Fatalf("%s (%s): consistency not preserved for %v, %v: src %v dst %v",
					name, fw.Name, t1, t2, srcOK, dstOK)
			}
			if srcOK {
				agreeChecked++
			} else {
				disagreeChecked++
			}
		}
		if agreeChecked == 0 || disagreeChecked == 0 {
			t.Fatalf("%s: test vacuous (consistent %d, inconsistent %d)", name, agreeChecked, disagreeChecked)
		}
	}
}

// TestFactWiseMapTable maps whole tables and checks that table-level
// consistency transfers.
func TestFactWiseMapTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	target := fd.MustParseSet(schema.MustNew("R", "A", "B", "C", "D"), "A -> B C", "B -> D")
	cl, err := target.ClassifyNonSimplifiable()
	if err != nil {
		t.Fatal(err)
	}
	fw, err := ForClassification(target, cl)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 30; iter++ {
		src := table.New(SourceABC)
		for i := 1; i <= 5; i++ {
			src.MustInsert(i, randTuple(rng), 1)
		}
		dst, err := fw.MapTable(src)
		if err != nil {
			t.Fatal(err)
		}
		if src.Satisfies(fw.Base) != dst.Satisfies(target) {
			t.Fatalf("table-level consistency not preserved:\n%s\n%s", src, dst)
		}
	}
	// Wrong source schema is rejected.
	bad := table.New(schema.MustNew("X", "P"))
	if _, err := fw.MapTable(bad); err == nil {
		t.Fatal("MapTable must reject non-ABC tables")
	}
}

// TestAttributeRemoval is Lemma A.18: padding removed attributes with ⊙
// preserves pairwise consistency between Δ−X and Δ.
func TestAttributeRemoval(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D")
	ds := fd.MustParseSet(sc, "A B -> C", "C -> D", "D -> A")
	rng := rand.New(rand.NewSource(55))
	for _, drop := range []schema.AttrSet{
		sc.MustSet("A"), sc.MustSet("C"), sc.MustSet("A", "D"),
	} {
		reduced := ds.Minus(drop)
		pi := AttributeRemoval(ds, drop)
		for i := 0; i < 300; i++ {
			t1 := table.Tuple{
				fmt.Sprintf("a%d", rng.Intn(2)), fmt.Sprintf("b%d", rng.Intn(2)),
				fmt.Sprintf("c%d", rng.Intn(2)), fmt.Sprintf("d%d", rng.Intn(2)),
			}
			t2 := table.Tuple{
				fmt.Sprintf("a%d", rng.Intn(2)), fmt.Sprintf("b%d", rng.Intn(2)),
				fmt.Sprintf("c%d", rng.Intn(2)), fmt.Sprintf("d%d", rng.Intn(2)),
			}
			srcOK := pairConsistent(reduced, t1, t2)
			dstOK := pairConsistent(ds, pi(t1), pi(t2))
			if srcOK != dstOK {
				t.Fatalf("drop %s: consistency not preserved for %v, %v (src %v dst %v)",
					sc.SetString(drop), t1, t2, srcOK, dstOK)
			}
		}
	}
}
