package reduction

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/table"
	"repro/internal/workload"
)

// LiftToDeltaK is the embedding of Lemma B.6: a table over S(A, B, C)
// for {A → B, B → C} maps to a table over R(A0..Ak, B0..Bk, C) for ∆k,
// placing A at A1, B at B0, C at C and zero everywhere else. Consistent
// updates of one correspond to consistent updates of the other at the
// same distance.
func LiftToDeltaK(k int, t *table.Table) (*fd.Set, *table.Table, error) {
	if !t.Schema().SameAs(SourceABC) {
		return nil, nil, fmt.Errorf("reduction: table is not over %s", SourceABC)
	}
	ds := workload.DeltaK(k)
	sc := ds.Schema()
	a1, _ := sc.AttrIndex("A1")
	b0, _ := sc.AttrIndex("B0")
	c, _ := sc.AttrIndex("C")
	out := table.New(sc)
	for _, r := range t.Rows() {
		tup := make(table.Tuple, sc.Arity())
		for i := range tup {
			tup[i] = "0"
		}
		tup[a1], tup[b0], tup[c] = r.Tuple[0], r.Tuple[1], r.Tuple[2]
		if err := out.Insert(r.ID, tup, r.Weight); err != nil {
			return nil, nil, err
		}
	}
	return ds, out, nil
}

// LiftToDeltaPrimeK is the embedding of Lemma B.7: a table over
// R(A0, A1, A2, B0, B1) for ∆′1 maps to a table over
// R(A0..Ak+1, B0..Bk) for ∆′k (k > 1), keeping the five source
// attributes and padding the rest with ⊙.
func LiftToDeltaPrimeK(k int, t *table.Table) (*fd.Set, *table.Table, error) {
	src := workload.DeltaPrimeK(1).Schema()
	if !t.Schema().SameAs(src) {
		return nil, nil, fmt.Errorf("reduction: table is not over %s", src)
	}
	ds := workload.DeltaPrimeK(k)
	sc := ds.Schema()
	out := table.New(sc)
	srcAttrs := []string{"A0", "A1", "A2", "B0", "B1"}
	for _, r := range t.Rows() {
		tup := make(table.Tuple, sc.Arity())
		for i := range tup {
			tup[i] = bullet
		}
		for si, name := range srcAttrs {
			di, _ := sc.AttrIndex(name)
			tup[di] = r.Tuple[si]
		}
		if err := out.Insert(r.ID, tup, r.Weight); err != nil {
			return nil, nil, err
		}
	}
	return ds, out, nil
}
