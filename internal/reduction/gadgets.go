package reduction

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/table"
	"repro/internal/workload"
)

// VCUpdateGadget is the construction in the proof of Theorem 4.10: a
// graph G becomes a table over R(A, B, C) under ∆A↔B→C =
// {A → B, B → A, B → C} such that G has a vertex cover of size k iff
// the table has a consistent update of distance 2|E| + k. All tuples
// have unit weight and the table is duplicate free.
func VCUpdateGadget(g *workload.SimpleGraph) (*fd.Set, *table.Table) {
	ds := fd.MustParseSet(SourceABC, "A -> B", "B -> A", "B -> C")
	t := table.New(SourceABC)
	id := 1
	for _, e := range g.Edges {
		u, v := vertexName(e[0]), vertexName(e[1])
		t.MustInsert(id, table.Tuple{u, v, "0"}, 1)
		id++
		t.MustInsert(id, table.Tuple{v, u, "0"}, 1)
		id++
	}
	for v := 0; v < g.N; v++ {
		t.MustInsert(id, table.Tuple{vertexName(v), vertexName(v), "1"}, 1)
		id++
	}
	return ds, t
}

// VCUpdateFromCover realizes the upper-bound direction of Theorem 4.10:
// given a vertex cover, it builds a consistent update of the gadget
// table with distance exactly 2|E| + |cover|.
func VCUpdateFromCover(g *workload.SimpleGraph, t *table.Table, cover map[int]bool) (*table.Table, error) {
	for _, e := range g.Edges {
		if !cover[e[0]] && !cover[e[1]] {
			return nil, fmt.Errorf("reduction: edge (%d,%d) uncovered", e[0], e[1])
		}
	}
	u := t.Clone()
	id := 1
	for _, e := range g.Edges {
		cu, cv := e[0], e[1]
		picked := cu
		if !cover[cu] {
			picked = cv
		}
		name := vertexName(picked)
		// Both edge tuples become (picked, picked, 0), one cell change
		// each: the tuple whose A already equals picked changes its B,
		// the other changes its A.
		if picked == cu {
			u.SetCellInPlace(id, 1, name)   // (u, v, 0) → (u, u, 0)
			u.SetCellInPlace(id+1, 0, name) // (v, u, 0) → (u, u, 0)
		} else {
			u.SetCellInPlace(id, 0, name)   // (u, v, 0) → (v, v, 0)
			u.SetCellInPlace(id+1, 1, name) // (v, u, 0) → (v, v, 0)
		}
		id += 2
	}
	// Vertex tuples of cover members become (v, v, 0).
	for v := 0; v < g.N; v++ {
		if cover[v] {
			u.SetCellInPlace(id, 2, "0")
		}
		id++
	}
	return u, nil
}

func vertexName(v int) string { return fmt.Sprintf("n%d", v) }

// VCSubsetGadget reduces vertex cover to optimal S-repairs under
// ∆A→B→C = {A → B, B → C}. This construction is ours (the MAX-2-SAT
// reduction of Gribkoff et al. is cited but not spelled out in the
// paper; see DESIGN.md §4): every vertex v yields a tuple (v, v, 1);
// every edge e = {u, v} yields gadget tuples (g_e, u, 0) and
// (g_e, v, 0). The two gadget tuples of an edge conflict with each
// other (A → B), and the gadget tuple pointing at a vertex conflicts
// with that vertex tuple (B → C). The minimum number of deletions is
// exactly |E| + vc(G) on unweighted, duplicate-free tables.
func VCSubsetGadget(g *workload.SimpleGraph) (*fd.Set, *table.Table) {
	ds := fd.MustParseSet(SourceABC, "A -> B", "B -> C")
	t := table.New(SourceABC)
	id := 1
	for v := 0; v < g.N; v++ {
		t.MustInsert(id, table.Tuple{vertexName(v), vertexName(v), "1"}, 1)
		id++
	}
	for ei, e := range g.Edges {
		ge := fmt.Sprintf("e%d", ei)
		t.MustInsert(id, table.Tuple{ge, vertexName(e[0]), "0"}, 1)
		id++
		t.MustInsert(id, table.Tuple{ge, vertexName(e[1]), "0"}, 1)
		id++
	}
	return ds, t
}

// NonMixedSATGadget is the reduction of Lemma A.13: a non-mixed CNF
// becomes a table over R(A, B, C) under ∆AB→C→B = {AB → C, C → B},
// with a tuple (c_j, polarity, x_i) per occurrence of variable x_i in
// clause c_j. The maximum number of simultaneously satisfiable clauses
// equals the maximum size of a consistent subset.
func NonMixedSATGadget(f workload.CNF) (*fd.Set, *table.Table, error) {
	if !f.IsNonMixed() {
		return nil, nil, fmt.Errorf("reduction: formula is not non-mixed")
	}
	ds := fd.MustParseSet(SourceABC, "A B -> C", "C -> B")
	t := table.New(SourceABC)
	id := 1
	for j, c := range f.Clauses {
		for _, l := range c.Lits {
			b := "1"
			if l.Neg {
				b = "0"
			}
			t.MustInsert(id, table.Tuple{fmt.Sprintf("c%d", j), b, fmt.Sprintf("x%d", l.Var)}, 1)
			id++
		}
	}
	return ds, t, nil
}

// TriangleGadget is the reduction of Lemma A.11: a tripartite triangle
// instance becomes a table over R(A, B, C) under ∆AB↔AC↔BC =
// {AB → C, AC → B, BC → A}, one tuple per triangle. The maximum number
// of edge-disjoint triangles equals the maximum size of a consistent
// subset.
func TriangleGadget(ti workload.TriangleInstance) (*fd.Set, *table.Table) {
	ds := fd.MustParseSet(SourceABC, "A B -> C", "A C -> B", "B C -> A")
	t := table.New(SourceABC)
	for i, tr := range ti.Triangles {
		t.MustInsert(i+1, table.Tuple{tr[0], tr[1], tr[2]}, 1)
	}
	return ds, t
}
