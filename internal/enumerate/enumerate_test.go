package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

var rABC = schema.MustNew("R", "A", "B", "C")

// bruteForceRepairs counts maximal consistent subsets by filtering all
// 2^n subsets (tiny n only) — the oracle for the enumerator.
func bruteForceRepairs(t *testing.T, ds *fd.Set, tab *table.Table) int {
	t.Helper()
	n := tab.Len()
	if n > 15 {
		t.Fatal("oracle limited to 15 tuples")
	}
	ids := tab.IDs()
	var consistent []uint64
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		var keep []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				keep = append(keep, ids[i])
			}
		}
		if tab.MustSubsetByIDs(keep).Satisfies(ds) {
			consistent = append(consistent, mask)
		}
	}
	count := 0
	for _, m := range consistent {
		maximal := true
		for _, m2 := range consistent {
			if m != m2 && m&m2 == m {
				maximal = false
				break
			}
		}
		if maximal {
			count++
		}
	}
	return count
}

func TestSubsetRepairsRunningExample(t *testing.T) {
	_, ds, tab := workload.Office()
	reps, count, err := SubsetRepairs(ds, tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(reps) {
		t.Fatalf("count %d != returned %d", count, len(reps))
	}
	want := bruteForceRepairs(t, ds, tab)
	if count != want {
		t.Fatalf("count = %d, oracle = %d", count, want)
	}
	seen := map[string]bool{}
	for _, r := range reps {
		if !r.Satisfies(ds) || !r.IsSubsetOf(tab) {
			t.Fatal("enumerated repair invalid")
		}
		// Maximality: no deleted tuple can come back.
		for _, id := range tab.IDs() {
			if r.Has(id) {
				continue
			}
			row, _ := tab.Row(id)
			trial := r.Clone()
			trial.MustInsert(row.ID, row.Tuple, row.Weight)
			if trial.Satisfies(ds) {
				t.Fatalf("repair %v is not maximal (can re-add %d)", r.IDs(), id)
			}
		}
		key := ""
		for _, id := range r.IDs() {
			key += string(rune(id)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate repair enumerated")
		}
		seen[key] = true
	}
}

func TestSubsetRepairsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sets := []*fd.Set{
		fd.MustParseSet(rABC, "A -> B"),
		fd.MustParseSet(rABC, "A -> B", "B -> C"),
		fd.MustParseSet(rABC, "-> A"),
		fd.MustParseSet(rABC, "A -> B", "B -> A", "B -> C"),
	}
	for _, ds := range sets {
		for iter := 0; iter < 10; iter++ {
			tab := workload.RandomTable(rABC, 3+rng.Intn(6), 2, rng)
			_, count, err := SubsetRepairs(ds, tab, 0)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteForceRepairs(t, ds, tab); count != want {
				t.Fatalf("%v: count %d, oracle %d\n%s", ds, count, want, tab)
			}
		}
	}
}

func TestSubsetRepairsLimit(t *testing.T) {
	_, ds, tab := workload.Office()
	reps, count, err := SubsetRepairs(ds, tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || count < 1 {
		t.Fatalf("limit ignored: %d returned, %d counted", len(reps), count)
	}
}

func TestSubsetRepairsEmptyTable(t *testing.T) {
	ds := fd.MustParseSet(rABC, "A -> B")
	reps, count, err := SubsetRepairs(ds, table.New(rABC), 0)
	if err != nil || count != 1 || len(reps) != 1 {
		t.Fatalf("empty table: %v %d %v", reps, count, err)
	}
}

func TestSubsetRepairsTooLarge(t *testing.T) {
	ds := fd.MustParseSet(rABC, "A -> B")
	tab := workload.RandomTable(rABC, MaxEnumVertices+1, 3, rand.New(rand.NewSource(1)))
	if _, _, err := SubsetRepairs(ds, tab, 0); err == nil {
		t.Fatal("oversized enumeration must refuse")
	}
}

// TestCountChainMatchesEnumeration cross-validates the polynomial chain
// counter against Bron–Kerbosch on random tables.
func TestCountChainMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	chains := []*fd.Set{
		fd.MustParseSet(rABC, "A -> B"),
		fd.MustParseSet(rABC, "A -> B", "A B -> C"),
		fd.MustParseSet(rABC, "-> A", "A -> B C"),
		fd.MustParseSet(rABC, "A -> B C"),
	}
	for _, ds := range chains {
		for iter := 0; iter < 12; iter++ {
			tab := workload.RandomTable(rABC, 3+rng.Intn(9), 2, rng)
			got, err := CountChain(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			_, want, err := SubsetRepairs(ds, tab, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got.Int64() != int64(want) {
				t.Fatalf("%v: chain count %v, enumeration %d\n%s", ds, got, want, tab)
			}
		}
	}
}

func TestCountChainRejectsNonChain(t *testing.T) {
	ds := fd.MustParseSet(rABC, "A -> B", "B -> C")
	if _, err := CountChain(ds, workload.RandomTable(rABC, 3, 2, rand.New(rand.NewSource(2)))); err == nil {
		t.Fatal("non-chain must be rejected")
	}
}

// TestCountRunningExample: the running-example Δ is a chain; Count uses
// the polynomial path and agrees with enumeration.
func TestCountRunningExample(t *testing.T) {
	_, ds, tab := workload.Office()
	c, err := Count(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := SubsetRepairs(ds, tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Int64() != int64(want) {
		t.Fatalf("Count = %v, enumeration = %d", c, want)
	}
}

// TestCountFallsBackOnHardSets: non-chain sets go through enumeration.
func TestCountFallsBack(t *testing.T) {
	ds := fd.MustParseSet(rABC, "A -> B", "B -> C")
	tab := workload.RandomTable(rABC, 6, 2, rand.New(rand.NewSource(3)))
	c, err := Count(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := SubsetRepairs(ds, tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Int64() != int64(want) {
		t.Fatalf("Count = %v, enumeration = %d", c, want)
	}
}

// TestCountChainScales: the chain counter handles instances far beyond
// enumeration limits (repair counts grow exponentially, hence big.Int).
func TestCountChainScales(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B")
	tab := table.New(sc)
	// 40 groups of 3 mutually conflicting tuples: 3^40 repairs.
	id := 1
	for g := 0; g < 40; g++ {
		for v := 0; v < 3; v++ {
			tab.MustInsert(id, table.Tuple{itoa(g), itoa(v)}, 1)
			id++
		}
	}
	c, err := CountChain(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.BitLen() < 60 { // 3^40 ≈ 2^63.4
		t.Fatalf("count %v suspiciously small", c)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}
