// Package enumerate implements subset-repair enumeration and counting.
//
// A subset repair (S-repair proper, Section 2.3) is a maximal
// consistent subset, i.e. a maximal independent set of the conflict
// graph. The package provides:
//
//   - Enumeration of all subset repairs via Bron–Kerbosch with pivoting
//     on the complement of the conflict graph (bounded output);
//   - Counting: brute-force via the enumerator for any FD set, and the
//     polynomial counter for chain FD sets — the exact class for which
//     Livshits & Kimelfeld (PODS 2017, cited in Section 2.2) show
//     counting is in polynomial time; outside that class counting is
//     #P-complete, so Count falls back to enumeration on small inputs.
//
// The chain counter exploits the same structure as OptSRepair: under a
// common lhs the blocks are independent (counts multiply), and under a
// consensus FD every repair lives in exactly one block (counts add).
package enumerate

import (
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/fd"
	"repro/internal/table"
)

// MaxEnumVertices bounds the conflict-graph size for enumeration (the
// bitset implementation uses one word).
const MaxEnumVertices = 64

// SubsetRepairs enumerates the subset repairs of t under ds (maximal
// consistent subsets). At most limit repairs are returned (limit ≤ 0
// means unbounded); the total count is returned alongside. Requires at
// most MaxEnumVertices tuples.
func SubsetRepairs(ds *fd.Set, t *table.Table, limit int) ([]*table.Table, int, error) {
	n := t.Len()
	if n > MaxEnumVertices {
		return nil, 0, fmt.Errorf("enumerate: limited to %d tuples, got %d", MaxEnumVertices, n)
	}
	if n == 0 {
		return []*table.Table{t.Clone()}, 1, nil
	}
	ids := t.IDs()
	index := make(map[int]int, n)
	for i, id := range ids {
		index[id] = i
	}
	// Complement-of-conflict adjacency: bit j set in compat[i] iff i and
	// j do NOT conflict (i ≠ j).
	full := uint64(1)<<uint(n) - 1
	if n == 64 {
		full = ^uint64(0)
	}
	compat := make([]uint64, n)
	for i := range compat {
		compat[i] = full &^ (1 << uint(i))
	}
	for _, e := range t.ConflictGraph(ds) {
		i, j := index[e.ID1], index[e.ID2]
		compat[i] &^= 1 << uint(j)
		compat[j] &^= 1 << uint(i)
	}
	// Bron–Kerbosch with pivoting over the compatibility graph: maximal
	// cliques of compat = maximal independent sets of the conflict graph
	// = subset repairs.
	var out []*table.Table
	count := 0
	var bk func(r, p, x uint64)
	bk = func(r, p, x uint64) {
		if p == 0 && x == 0 {
			count++
			if limit <= 0 || len(out) < limit {
				var keep []int
				for m := r; m != 0; m &= m - 1 {
					keep = append(keep, ids[bits.TrailingZeros64(m)])
				}
				out = append(out, t.MustSubsetByIDs(keep))
			}
			return
		}
		// Pivot: vertex of p∪x with most neighbours in p.
		pivot, best := -1, -1
		for m := p | x; m != 0; m &= m - 1 {
			v := bits.TrailingZeros64(m)
			if d := bits.OnesCount64(p & compat[v]); d > best {
				pivot, best = v, d
			}
		}
		cand := p
		if pivot >= 0 {
			cand = p &^ compat[pivot]
		}
		for m := cand; m != 0; m &= m - 1 {
			v := bits.TrailingZeros64(m)
			vb := uint64(1) << uint(v)
			bk(r|vb, p&compat[v], x&compat[v])
			p &^= vb
			x |= vb
		}
	}
	bk(0, full, 0)
	return out, count, nil
}

// CountChain counts the subset repairs of t under a chain FD set in
// polynomial time, following the common-lhs/consensus recursion (blocks
// multiply under a common lhs, add under a consensus FD). Returns an
// error if the set is not a chain.
func CountChain(ds *fd.Set, t *table.Table) (*big.Int, error) {
	can := ds.Canonical()
	if !can.IsChain() {
		return nil, fmt.Errorf("enumerate: %v is not a chain FD set; counting is #P-complete outside chains", ds)
	}
	return countChain(can, t), nil
}

func countChain(ds *fd.Set, t *table.Table) *big.Int {
	nt := ds.RemoveTrivial()
	if nt.Len() == 0 || t.Len() == 0 {
		return big.NewInt(1)
	}
	st, ok := nt.NextSimplification()
	if !ok {
		// Unreachable for chains (Corollary 3.6 argument).
		panic("enumerate: chain set failed to simplify")
	}
	switch st.Kind {
	case fd.KindCommonLHS, fd.KindConsensus:
		groups := t.GroupBy(st.Removed)
		total := big.NewInt(1)
		if st.Kind == fd.KindConsensus {
			total = big.NewInt(0)
		}
		for _, g := range groups {
			block := t.MustSubsetByIDs(g.IDs)
			c := countChain(st.After, block)
			if st.Kind == fd.KindCommonLHS {
				total.Mul(total, c)
			} else {
				total.Add(total, c)
			}
		}
		return total
	default:
		panic("enumerate: chain simplification used a marriage")
	}
}

// Count counts subset repairs: polynomial for chain FD sets, falling
// back to Bron–Kerbosch enumeration otherwise (subject to the size
// limit).
func Count(ds *fd.Set, t *table.Table) (*big.Int, error) {
	if c, err := CountChain(ds, t); err == nil {
		return c, nil
	}
	_, n, err := SubsetRepairs(ds, t, 1)
	if err != nil {
		return nil, err
	}
	return big.NewInt(int64(n)), nil
}
