package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatchingEmpty(t *testing.T) {
	match, total, err := MaxWeightBipartiteMatching(0, 0, nil)
	if err != nil || total != 0 || len(match) != 0 {
		t.Fatalf("empty: %v %v %v", match, total, err)
	}
}

func TestMatchingSingleEdge(t *testing.T) {
	w := func(i, j int) float64 { return 5 }
	match, total, err := MaxWeightBipartiteMatching(1, 1, w)
	if err != nil {
		t.Fatal(err)
	}
	if match[0] != 0 || total != 5 {
		t.Fatalf("match=%v total=%v", match, total)
	}
}

func TestMatchingPrefersHeavy(t *testing.T) {
	// 2x2: diagonal weights 10+10 beat off-diagonal 12+1.
	weights := [][]float64{{10, 12}, {1, 10}}
	w := func(i, j int) float64 { return weights[i][j] }
	match, total, err := MaxWeightBipartiteMatching(2, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 {
		t.Fatalf("total = %v, want 20 (match %v)", total, match)
	}
	if match[0] != 0 || match[1] != 1 {
		t.Fatalf("match = %v, want [0 1]", match)
	}
}

func TestMatchingMissingEdges(t *testing.T) {
	// Left 0 connects only to right 1; left 1 connects only to right 1.
	neg := math.Inf(-1)
	weights := [][]float64{{neg, 3}, {neg, 7}}
	w := func(i, j int) float64 { return weights[i][j] }
	match, total, err := MaxWeightBipartiteMatching(2, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Fatalf("total = %v, want 7", total)
	}
	if match[1] != 1 || match[0] != -1 {
		t.Fatalf("match = %v, want [-1 1]", match)
	}
}

func TestMatchingRectangular(t *testing.T) {
	// 3 left, 2 right: at most 2 matches.
	weights := [][]float64{{1, 9}, {8, 2}, {7, 7}}
	w := func(i, j int) float64 { return weights[i][j] }
	_, total, err := MaxWeightBipartiteMatching(3, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 17 { // 9 (0->1) + 8 (1->0); or 9+8 beats 7+8=15, 9+7=16
		t.Fatalf("total = %v, want 17", total)
	}
}

func TestMatchingRejectsNegative(t *testing.T) {
	w := func(i, j int) float64 { return -1 }
	if _, _, err := MaxWeightBipartiteMatching(1, 1, w); err == nil {
		t.Fatal("negative weights must be rejected")
	}
}

func TestMatchingIsActuallyAMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n, m := 1+rng.Intn(6), 1+rng.Intn(6)
		weights := make([][]float64, n)
		for i := range weights {
			weights[i] = make([]float64, m)
			for j := range weights[i] {
				if rng.Float64() < 0.3 {
					weights[i][j] = math.Inf(-1)
				} else {
					weights[i][j] = float64(rng.Intn(20))
				}
			}
		}
		w := func(i, j int) float64 { return weights[i][j] }
		match, total, err := MaxWeightBipartiteMatching(n, m, w)
		if err != nil {
			t.Fatal(err)
		}
		usedRight := map[int]bool{}
		var sum float64
		for i, j := range match {
			if j == -1 {
				continue
			}
			if usedRight[j] {
				t.Fatalf("right node %d matched twice", j)
			}
			usedRight[j] = true
			if math.IsInf(weights[i][j], -1) {
				t.Fatalf("matched missing edge (%d,%d)", i, j)
			}
			sum += weights[i][j]
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("reported total %v != recomputed %v", total, sum)
		}
	}
}

// Property: Hungarian equals brute force on random small instances.
func TestMatchingAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 120; iter++ {
		n, m := 1+rng.Intn(5), 1+rng.Intn(5)
		weights := make([][]float64, n)
		for i := range weights {
			weights[i] = make([]float64, m)
			for j := range weights[i] {
				if rng.Float64() < 0.25 {
					weights[i][j] = math.Inf(-1)
				} else {
					weights[i][j] = float64(rng.Intn(15))
				}
			}
		}
		w := func(i, j int) float64 { return weights[i][j] }
		_, total, err := MaxWeightBipartiteMatching(n, m, w)
		if err != nil {
			t.Fatal(err)
		}
		want := ExhaustiveMaxWeightMatching(n, m, w)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("iter %d (n=%d m=%d): hungarian %v, exhaustive %v", iter, n, m, total, want)
		}
	}
}
