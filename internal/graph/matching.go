// Package graph provides the graph-algorithm substrate the repair
// algorithms need and that the Go ecosystem only thinly covers:
// maximum-weight bipartite matching (for MarriageRep, Subroutine 3) and
// weighted vertex cover — an exact branch-and-bound solver (the
// exponential baseline for optimal S-repairs on arbitrary FD sets) and
// the Bar-Yehuda–Even linear-time 2-approximation (Proposition 3.3).
// Matching comes in two engines: the dense O(size³) Hungarian solver
// (MaxWeightBipartiteMatching, the differential oracle) and the sparse
// edge-list engine (SparseMatcher) that decomposes the graph into
// connected components and runs shortest augmenting paths over
// adjacency lists, which is what the repair engine uses. Everything is
// implemented from scratch on the standard library.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/solve"
)

// MaxWeightBipartiteMatching computes a maximum-weight matching of a
// bipartite graph with n left nodes and m right nodes. weight[i][j] is
// the weight of edge (i, j); math.Inf(-1) marks a missing edge. All
// present edge weights must be ≥ 0 (matching weight-0 edges is
// harmless, so the algorithm pads the instance to a square matrix with
// zero-weight slack edges and runs the O(n³) Hungarian algorithm with
// potentials). The result maps each left node to its matched right node
// or -1, together with the total matched weight.
func MaxWeightBipartiteMatching(n, m int, weight func(i, j int) float64) (match []int, total float64, err error) {
	return MaxWeightBipartiteMatchingCtx(nil, n, m, weight)
}

// MaxWeightBipartiteMatchingCtx is MaxWeightBipartiteMatching drawing
// the padded cost matrix and the Hungarian working arrays from the
// solve context's arena — the sparse matcher dispatches thousands of
// tiny components here, and pooling turns each into an allocation-free
// solve. A nil context allocates fresh (identical results).
func MaxWeightBipartiteMatchingCtx(c *solve.Ctx, n, m int, weight func(i, j int) float64) (match []int, total float64, err error) {
	size := n
	if m > size {
		size = m
	}
	if size == 0 {
		return nil, 0, nil
	}
	// Build a square cost matrix for minimization:
	// cost = maxW - w, slack edges cost maxW (i.e. weight 0).
	maxW := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			w := weight(i, j)
			if math.IsInf(w, -1) {
				continue
			}
			if w < 0 {
				return nil, 0, fmt.Errorf("graph: negative edge weight %v on (%d,%d)", w, i, j)
			}
			if w > maxW {
				maxW = w
			}
		}
	}
	scr, _ := c.GetScratch(hungKey{}).(*hungScratch)
	if scr == nil {
		scr = new(hungScratch)
	}
	cost := scr.matrix(size)
	for i := range cost {
		for j := range cost[i] {
			w := 0.0
			if i < n && j < m {
				if e := weight(i, j); !math.IsInf(e, -1) {
					w = e
				}
			}
			cost[i][j] = maxW - w
		}
	}
	assignment := hungarianMin(cost, scr)
	match = make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for i := 0; i < n; i++ {
		j := assignment[i]
		if j < m {
			w := weight(i, j)
			if !math.IsInf(w, -1) && w > 0 {
				match[i] = j
				total += w
			}
		}
	}
	c.PutScratch(hungKey{}, scr)
	return match, total, nil
}

// hungScratch is the pooled working set of the dense Hungarian solver:
// the padded square cost matrix (one flat backing array re-sliced into
// rows) and the five per-solve arrays of hungarianMin.
type hungScratch struct {
	flat   []float64
	rows   [][]float64
	u, v   []float64
	minv   []float64
	p, way []int
	used   []bool
	assign []int
}

// hungKey pools hungScratch values on the solve context.
type hungKey struct{}

// matrix returns a size×size cost matrix over the pooled flat array
// (power-of-two growth, like every pooled buffer, so slowly growing
// component sizes converge on a high-water capacity).
func (s *hungScratch) matrix(size int) [][]float64 {
	s.flat = solve.Grow(s.flat, size*size)
	s.rows = solve.Grow(s.rows, size)
	for i := 0; i < size; i++ {
		s.rows[i] = s.flat[i*size : (i+1)*size]
	}
	return s.rows
}

// hungarianMin solves the square assignment problem (minimization) with
// the O(n³) shortest-augmenting-path formulation using potentials
// (Jonker–Volgenant style). cost must be a square matrix; scr provides
// the working arrays (grown as needed, fully re-initialized here).
// Returns the column assigned to each row (valid until the scratch is
// reused).
func hungarianMin(cost [][]float64, scr *hungScratch) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	// 1-based arrays per the classical presentation.
	u := solve.Grow(scr.u, n+1)
	v := solve.Grow(scr.v, n+1)
	p := solve.Grow(scr.p, n+1) // p[j] = row matched to column j
	way := solve.Grow(scr.way, n+1)
	minv := solve.Grow(scr.minv, n+1)
	used := solve.Grow(scr.used, n+1)
	scr.u, scr.v, scr.p, scr.way, scr.minv, scr.used = u, v, p, way, minv, used
	for j := 0; j <= n; j++ {
		u[j], v[j], p[j], way[j] = 0, 0, 0, 0
	}
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	assignment := solve.Grow(scr.assign, n)
	scr.assign = assignment
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	return assignment
}

// GreedyMatching computes a maximal (not maximum) weight matching by
// scanning the edge list in decreasing weight order (ties broken by
// input position, keeping the result deterministic). Used as the
// ablation baseline for MarriageRep: it is faster than the optimal
// matchers but forfeits optimality, turning OptSRepair's marriage case
// into a heuristic. Non-positive edges are ignored. O(E log E).
func GreedyMatching(n, m int, edges []Edge) (match []int, total float64) {
	order := make([]int, 0, len(edges))
	for ei, e := range edges {
		if e.W > 0 {
			order = append(order, ei)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := edges[order[a]], edges[order[b]]
		if ea.W != eb.W {
			return ea.W > eb.W
		}
		return order[a] < order[b]
	})
	match = make([]int, n)
	for i := range match {
		match[i] = -1
	}
	usedRight := make([]bool, m)
	for _, ei := range order {
		e := edges[ei]
		if match[e.I] != -1 || usedRight[e.J] {
			continue
		}
		match[e.I] = e.J
		usedRight[e.J] = true
		total += e.W
	}
	return match, total
}

// EdgesOf collects the present edges of a dense weight function into
// the shared Edge list (math.Inf(-1) marks a missing edge, as in
// MaxWeightBipartiteMatching). A bridge for callers and benches that
// still think in matrices.
func EdgesOf(n, m int, weight func(i, j int) float64) []Edge {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if w := weight(i, j); !math.IsInf(w, -1) {
				edges = append(edges, Edge{I: i, J: j, W: w})
			}
		}
	}
	return edges
}

// ExhaustiveMaxWeightMatching computes a maximum-weight bipartite
// matching by brute force; a test oracle for small instances
// (n·m permutation search).
func ExhaustiveMaxWeightMatching(n, m int, weight func(i, j int) float64) float64 {
	usedRight := make([]bool, m)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == n {
			return 0
		}
		best := rec(i + 1) // leave i unmatched
		for j := 0; j < m; j++ {
			if usedRight[j] {
				continue
			}
			w := weight(i, j)
			if math.IsInf(w, -1) {
				continue
			}
			usedRight[j] = true
			if cand := w + rec(i+1); cand > best {
				best = cand
			}
			usedRight[j] = false
		}
		return best
	}
	return rec(0)
}
