package graph

import (
	"fmt"
	"sort"

	"repro/internal/solve"
)

// Graph is an undirected graph with float64 vertex weights, used for the
// vertex-cover view of optimal S-repairs: vertices are tuple
// identifiers, edges are FD conflicts, and a minimum-weight vertex cover
// is exactly the set of tuples deleted by an optimal S-repair.
type Graph struct {
	n       int
	weights []float64
	adj     [][]int
	edges   [][2]int
	edgeSet map[[2]int]bool
}

// NewGraph creates a graph with n vertices of the given weights
// (len(weights) must equal n; weights must be positive).
func NewGraph(weights []float64) (*Graph, error) {
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("graph: vertex %d has non-positive weight %v", i, w)
		}
	}
	return &Graph{
		n:       len(weights),
		weights: append([]float64(nil), weights...),
		adj:     make([][]int, len(weights)),
		edgeSet: map[[2]int]bool{},
	}, nil
}

// MustNewGraph is NewGraph that panics on error.
func MustNewGraph(weights []float64) *Graph {
	g, err := NewGraph(weights)
	if err != nil {
		panic(err)
	}
	return g
}

// AddEdge inserts an undirected edge; self-loops and out-of-range
// vertices are rejected, duplicates are ignored.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on %d", u)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if g.edgeSet[key] {
		return nil
	}
	g.edgeSet[key] = true
	g.edges = append(g.edges, key)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// AddEdgeUnchecked inserts an undirected edge the caller guarantees is
// valid (in range, no self-loop) and not yet present; it skips the
// duplicate-detection map. Mixing with AddEdge afterwards is the
// caller's responsibility.
func (g *Graph) AddEdgeUnchecked(u, v int) {
	if u > v {
		u, v = v, u
	}
	g.edges = append(g.edges, [2]int{u, v})
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Weight returns the weight of vertex v.
func (g *Graph) Weight(v int) float64 { return g.weights[v] }

// Edges returns the edge list (shared; do not mutate).
func (g *Graph) Edges() [][2]int { return g.edges }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// IsVertexCover reports whether the vertex set covers all edges.
func (g *Graph) IsVertexCover(cover map[int]bool) bool {
	for _, e := range g.edges {
		if !cover[e[0]] && !cover[e[1]] {
			return false
		}
	}
	return true
}

// CoverWeight returns the total weight of the vertex set.
func (g *Graph) CoverWeight(cover map[int]bool) float64 {
	var sum float64
	for v := range cover {
		if cover[v] {
			sum += g.weights[v]
		}
	}
	return sum
}

// ApproxVertexCoverBE computes a vertex cover of weight at most twice
// the minimum using the Bar-Yehuda–Even local-ratio algorithm: walk the
// edges, and for each still-uncovered edge transfer min residual weight
// between its endpoints; vertices whose residual reaches zero enter the
// cover. Linear in edges.
func (g *Graph) ApproxVertexCoverBE() map[int]bool {
	res := append([]float64(nil), g.weights...)
	cover := map[int]bool{}
	for _, e := range g.edges {
		u, v := e[0], e[1]
		if cover[u] || cover[v] {
			continue
		}
		d := res[u]
		if res[v] < d {
			d = res[v]
		}
		res[u] -= d
		res[v] -= d
		if res[u] <= 0 {
			cover[u] = true
		}
		if res[v] <= 0 {
			cover[v] = true
		}
	}
	return cover
}

// GreedyVertexCover computes a cover by repeatedly taking the vertex
// with maximum degree/weight ratio among vertices with uncovered
// incident edges. A baseline for the bench harness; no worst-case
// guarantee for weighted instances.
func (g *Graph) GreedyVertexCover() map[int]bool {
	covered := make([]bool, len(g.edges))
	cover := map[int]bool{}
	remaining := len(g.edges)
	edgesAt := make([][]int, g.n)
	for i, e := range g.edges {
		edgesAt[e[0]] = append(edgesAt[e[0]], i)
		edgesAt[e[1]] = append(edgesAt[e[1]], i)
	}
	for remaining > 0 {
		best, bestScore := -1, 0.0
		for v := 0; v < g.n; v++ {
			if cover[v] {
				continue
			}
			deg := 0
			for _, ei := range edgesAt[v] {
				if !covered[ei] {
					deg++
				}
			}
			if deg == 0 {
				continue
			}
			score := float64(deg) / g.weights[v]
			if best == -1 || score > bestScore {
				best, bestScore = v, score
			}
		}
		if best == -1 {
			break
		}
		cover[best] = true
		for _, ei := range edgesAt[best] {
			if !covered[ei] {
				covered[ei] = true
				remaining--
			}
		}
	}
	return cover
}

// ExactVertexCoverLimit bounds the instance size the exact solver
// accepts (it is a deliberately exponential baseline).
const ExactVertexCoverLimit = 512

// ExactMinVertexCover computes a minimum-weight vertex cover by branch
// and bound on the highest-degree uncovered vertex, with the
// 2-approximation as the initial incumbent and a simple matching-based
// lower bound for pruning. Exponential worst case; refuses instances
// with more than ExactVertexCoverLimit vertices.
func (g *Graph) ExactMinVertexCover() (map[int]bool, error) {
	return g.ExactMinVertexCoverCtx(nil)
}

// exactCancelCheckMask gates how often the branch-and-bound polls the
// solve context for cancellation: every 1024 search nodes, cheap
// relative to the per-node edge scans.
const exactCancelCheckMask = 1<<10 - 1

// ExactMinVertexCoverCtx is ExactMinVertexCover under a solve context:
// the search polls for cancellation periodically, so a deadline bounds
// the exponential worst case instead of burning CPU to completion.
func (g *Graph) ExactMinVertexCoverCtx(c *solve.Ctx) (map[int]bool, error) {
	if g.n > ExactVertexCoverLimit {
		return nil, fmt.Errorf("graph: exact vertex cover limited to %d vertices, got %d", ExactVertexCoverLimit, g.n)
	}
	// Incumbent from the 2-approximation.
	best := g.ApproxVertexCoverBE()
	bestW := g.CoverWeight(best)

	inCover := make([]int8, g.n) // 0 undecided, 1 in, -1 out
	addedStack := make([]int, 0, g.n)
	var cur float64

	uncoveredEdge := func() ([2]int, bool) {
		for _, e := range g.edges {
			if inCover[e[0]] != 1 && inCover[e[1]] != 1 {
				return e, true
			}
		}
		return [2]int{}, false
	}

	// lowerBound: greedy disjoint uncovered edges; each needs one
	// endpoint, costing at least min weight of its free endpoints.
	// Epoch-stamped scratch avoids allocating a set per search node.
	usedStamp := make([]uint32, g.n)
	var usedEpoch uint32
	lowerBound := func() float64 {
		usedEpoch++
		var lb float64
		for _, e := range g.edges {
			u, v := e[0], e[1]
			if inCover[u] == 1 || inCover[v] == 1 {
				continue
			}
			if usedStamp[u] == usedEpoch || usedStamp[v] == usedEpoch {
				continue
			}
			usedStamp[u], usedStamp[v] = usedEpoch, usedEpoch
			wu, wv := g.weights[u], g.weights[v]
			switch {
			case inCover[u] == -1 && inCover[v] == -1:
				// Both endpoints excluded: infeasible branch.
				return bestW + 1
			case inCover[u] == -1:
				lb += wv
			case inCover[v] == -1:
				lb += wu
			default:
				if wu < wv {
					lb += wu
				} else {
					lb += wv
				}
			}
		}
		return lb
	}

	var searched int
	var stopErr error
	var rec func()
	rec = func() {
		if stopErr != nil {
			return
		}
		searched++
		if searched&exactCancelCheckMask == 0 {
			if err := c.Err(); err != nil {
				stopErr = err
				return
			}
		}
		if cur+lowerBound() >= bestW-1e-12 {
			return
		}
		e, found := uncoveredEdge()
		if !found {
			// All edges covered: record incumbent.
			cover := map[int]bool{}
			for v := 0; v < g.n; v++ {
				if inCover[v] == 1 {
					cover[v] = true
				}
			}
			best, bestW = cover, cur
			return
		}
		u, v := e[0], e[1]
		// Branch: u in cover, or u out (forcing every neighbour of u
		// along uncovered edges — in particular v — into the cover).
		if inCover[u] == 0 {
			inCover[u] = 1
			cur += g.weights[u]
			rec()
			cur -= g.weights[u]
			inCover[u] = 0

			if inCover[v] != -1 {
				inCover[u] = -1
				mark := len(addedStack)
				feasible := true
				for _, w := range g.adj[u] {
					if inCover[w] == -1 {
						feasible = false
						break
					}
					if inCover[w] == 0 {
						inCover[w] = 1
						cur += g.weights[w]
						addedStack = append(addedStack, w)
					}
				}
				if feasible {
					rec()
				}
				for _, w := range addedStack[mark:] {
					inCover[w] = 0
					cur -= g.weights[w]
				}
				addedStack = addedStack[:mark]
				inCover[u] = 0
			}
			return
		}
		// u already excluded: v must be in the cover.
		if inCover[v] == 0 {
			inCover[v] = 1
			cur += g.weights[v]
			rec()
			cur -= g.weights[v]
			inCover[v] = 0
		}
		// If v is also excluded, the edge cannot be covered: dead branch.
	}
	rec()
	if stopErr != nil {
		return nil, stopErr
	}
	return best, nil
}

// CoverIDs returns the sorted vertex list of a cover (deterministic
// reporting helper).
func CoverIDs(cover map[int]bool) []int {
	out := make([]int, 0, len(cover))
	for v, in := range cover {
		if in {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
