package graph

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/solve"
)

// Edge is one weighted edge of a bipartite graph, given by its left
// endpoint I, right endpoint J and weight W. It is the shared edge-list
// currency of the matching engines: SparseMatcher, GreedyMatching and
// the benches all consume []Edge, so callers build the (sparse) edge
// set once instead of padding dense weight matrices.
type Edge struct {
	I, J int
	W    float64
}

// MatchResult is the outcome of a SparseMatcher solve.
type MatchResult struct {
	// Match maps each left node to its matched right node, or -1.
	Match []int
	// Picked lists the indices (into the input edge list) of the
	// matched edges, ascending. When parallel edges join the same pair,
	// the heaviest (first among ties) is the one reported.
	Picked []int
	// Total is the matched weight.
	Total float64
}

// SparseMatcher computes maximum-weight bipartite matchings over an
// explicit edge list. Where MaxWeightBipartiteMatching pads the
// instance to a dense size×size matrix and pays O(size³) regardless of
// how many edges exist, SparseMatcher works on the real edge set: it
// splits the graph into connected components (solved independently,
// optionally in parallel on the Ctx worker budget) and runs a
// shortest-augmenting-path solver with potentials (Jonker–Volgenant
// over adjacency lists, heap-based Dijkstra) per component,
// O(V·E·log V) on the component's edges. Degenerate shapes short-circuit: single-edge components and
// one-sided stars are solved by a max scan, and components whose dense
// matrix is tiny go to the dense Hungarian solver, which wins there.
//
// All weights must be ≥ 0. A maximum-weight matching never benefits
// from a weight-0 edge, so zero-weight edges are never reported
// matched — the same convention as MaxWeightBipartiteMatching, whose
// padded slack edges have weight 0. Results are deterministic for a
// fixed input, serial or parallel, arena or no arena.
type SparseMatcher struct {
	n, m  int
	edges []Edge

	// Ctx, when non-nil, is the per-solve context: components fan out
	// on its worker budget (the same pool as the repair blocks when the
	// repair engine is the caller), per-component scratch recycles
	// through its arena, path counters feed its stats, and
	// cancellation is honored at component boundaries. A nil Ctx runs
	// serial with fresh allocations.
	Ctx *solve.Ctx

	// Memo, when non-nil, caches per-component results across solves
	// (see MatchMemo). The caller owns the memo and must not share it
	// across concurrent Solve calls.
	Memo *MatchMemo
}

// MatchMemo caches matching results per connected component, keyed by
// the component's full localized content. solveComponent is a
// deterministic function of the localized edge list — per-component
// node ids in first-appearance order, weights, and nothing else — so
// two components with identical (li, rj, w) sequences pick edges at
// identical positions of their edge lists, regardless of how global
// node numbering shifted between solves. A resident session exploits
// this: after a small mutation, only components containing a re-solved
// block's edge have new weights; every other component hits the memo
// and skips its Dijkstra entirely. Lookups verify full content
// equality (the hash only buckets), so a collision can never smuggle
// in a wrong matching.
type MatchMemo struct {
	entries map[uint64][]memoEntry
	edges   int // total edges retained, for the eviction cap

	// Structure cache: the previous solve's component decomposition,
	// keyed by the full edge structure (endpoints and zero-weight
	// pattern). See SparseMatcher.decompose.
	structN, structM int
	structKeys       []uint64
	structCounts     []int32
	structShapes     []compShape
	structLoc        []locStruct
	structMisses     int
}

// compShape is the cached bipartition size of one component.
type compShape struct{ nL, nR int32 }

// locStruct is the weight-free part of one localized edge.
type locStruct struct{ li, rj, ei int32 }

// edgeKey packs an edge's structural identity: endpoints plus whether
// the weight is zero (zero-weight edges are dropped by the
// decomposition, so a weight moving to or from zero changes structure).
// Endpoints here are dictionary-code indices, well inside 31 bits.
func edgeKey(e Edge) uint64 {
	k := uint64(uint32(e.I))<<32 | uint64(uint32(e.J))
	if e.W == 0 {
		k |= 1 << 63
	}
	return k
}

// structHit reports whether the cached decomposition applies to this
// edge structure.
func (m *MatchMemo) structHit(n, mm int, edges []Edge) bool {
	if m.structN != n || m.structM != mm || len(m.structKeys) != len(edges) {
		return false
	}
	for i, e := range edges {
		if m.structKeys[i] != edgeKey(e) {
			return false
		}
	}
	return true
}

// storeStruct caches the decomposition's structure for the next solve.
func (m *MatchMemo) storeStruct(n, mm int, edges []Edge, comps []component) {
	m.structN, m.structM = n, mm
	m.structKeys = m.structKeys[:0]
	if cap(m.structKeys) < len(edges) {
		m.structKeys = make([]uint64, 0, len(edges))
	}
	for _, e := range edges {
		m.structKeys = append(m.structKeys, edgeKey(e))
	}
	total := 0
	for _, c := range comps {
		total += len(c.edges)
	}
	m.structCounts = m.structCounts[:0]
	m.structShapes = m.structShapes[:0]
	m.structLoc = m.structLoc[:0]
	if cap(m.structCounts) < len(comps) {
		m.structCounts = make([]int32, 0, len(comps))
		m.structShapes = make([]compShape, 0, len(comps))
	}
	if cap(m.structLoc) < total {
		m.structLoc = make([]locStruct, 0, total)
	}
	for _, c := range comps {
		m.structCounts = append(m.structCounts, int32(len(c.edges)))
		m.structShapes = append(m.structShapes, compShape{nL: int32(c.nL), nR: int32(c.nR)})
		for _, e := range c.edges {
			m.structLoc = append(m.structLoc, locStruct{li: e.li, rj: e.rj, ei: e.ei})
		}
	}
}

// rebuild reconstitutes the cached decomposition against the current
// weights: identical components in identical order — the structure was
// verified edge for edge — with each localized edge's weight refreshed
// from the input list.
func (m *MatchMemo) rebuild(scr *compScratch, edges []Edge) []component {
	ncomp := len(m.structCounts)
	if ncomp == 0 {
		return nil
	}
	comps := solve.Grow(scr.comps, ncomp)
	scr.comps = comps
	flat := solve.Grow(scr.flat, len(m.structLoc))
	scr.flat = flat
	start := int32(0)
	for c := range comps {
		cnt := m.structCounts[c]
		sh := m.structShapes[c]
		comps[c] = component{edges: flat[start : start+cnt : start+cnt], nL: int(sh.nL), nR: int(sh.nR)}
		start += cnt
	}
	for i, l := range m.structLoc {
		flat[i] = locEdge{li: l.li, rj: l.rj, ei: l.ei, w: edges[l.ei].W}
	}
	return comps
}

// memoEdge is one localized edge of a cached component (no global
// edge index: positions substitute for identity).
type memoEdge struct {
	li, rj int32
	w      float64
}

// memoEntry is one cached component: its shape, localized edges in
// order, and the positions (into that edge list) of the picked edges.
type memoEntry struct {
	nL, nR int
	edges  []memoEdge
	picked []int32
}

// memoCapEdges bounds the total edges a memo retains; past it the memo
// resets wholesale (the next solve re-populates it), which keeps a
// long-lived session's memory bounded while costing one full re-solve
// every many rounds.
const memoCapEdges = 1 << 18

// NewMatchMemo returns an empty component cache.
func NewMatchMemo() *MatchMemo {
	return &MatchMemo{entries: map[uint64][]memoEntry{}}
}

// hashComponent buckets a component by FNV-1a over its full content.
func hashComponent(c component) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(c.nL))
	mix(uint64(c.nR))
	for _, e := range c.edges {
		mix(uint64(uint32(e.li))<<32 | uint64(uint32(e.rj)))
		mix(math.Float64bits(e.w))
	}
	return h
}

// lookup returns the cached picked positions for a component with
// exactly this content.
func (m *MatchMemo) lookup(h uint64, c component) ([]int32, bool) {
	for _, ent := range m.entries[h] {
		if ent.nL != c.nL || ent.nR != c.nR || len(ent.edges) != len(c.edges) {
			continue
		}
		same := true
		for k, e := range c.edges {
			if me := ent.edges[k]; me.li != e.li || me.rj != e.rj || me.w != e.w {
				same = false
				break
			}
		}
		if same {
			return ent.picked, true
		}
	}
	return nil, false
}

// store caches a solved component. picked holds positions into
// c.edges, ascending.
func (m *MatchMemo) store(h uint64, c component, picked []int32) {
	if m.edges+len(c.edges) > memoCapEdges {
		clear(m.entries)
		m.edges = 0
		if len(c.edges) > memoCapEdges {
			return
		}
	}
	edges := make([]memoEdge, len(c.edges))
	for k, e := range c.edges {
		edges[k] = memoEdge{li: e.li, rj: e.rj, w: e.w}
	}
	m.entries[h] = append(m.entries[h], memoEntry{nL: c.nL, nR: c.nR, edges: edges, picked: picked})
	m.edges += len(c.edges)
}

// NewSparseMatcher validates the instance: endpoints in range and
// weights ≥ 0 (and not NaN). Missing edges are simply not listed —
// there is no -Inf sentinel in the edge-list representation.
func NewSparseMatcher(n, m int, edges []Edge) (*SparseMatcher, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative node count (%d,%d)", n, m)
	}
	for _, e := range edges {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= m {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside bipartition %d×%d", e.I, e.J, n, m)
		}
		if e.W < 0 || math.IsNaN(e.W) {
			return nil, fmt.Errorf("graph: negative edge weight %v on (%d,%d)", e.W, e.I, e.J)
		}
	}
	return &SparseMatcher{n: n, m: m, edges: edges}, nil
}

// locEdge is an edge localized to its component: li and rj are dense
// per-component node ids, ei the index into the original edge list.
type locEdge struct {
	li, rj int32
	ei     int32
	w      float64
}

// component is one connected component of the positive-weight edges.
type component struct {
	edges  []locEdge
	nL, nR int
}

// Solve computes a maximum-weight matching.
func (sm *SparseMatcher) Solve() (MatchResult, error) {
	res := MatchResult{Match: make([]int, sm.n)}
	for i := range res.Match {
		res.Match[i] = -1
	}
	scr, _ := sm.Ctx.GetScratch(compKey{}).(*compScratch)
	if scr == nil {
		scr = new(compScratch)
	}
	// The components alias the scratch's flat edge array; nothing below
	// retains them past Solve (the memo stores copies), so the scratch
	// recycles on return.
	defer sm.Ctx.PutScratch(compKey{}, scr)
	comps := sm.decompose(scr)
	if len(comps) == 0 {
		return res, nil
	}
	// Matched edges collect into a bitmap over the input edge list and
	// emit ascending in one pass at the end — cheaper than sorting the
	// per-component concatenation, and the float order of res.Total
	// becomes the input edge order regardless of which components came
	// from the memo.
	mark := solve.Grow(scr.mark, len(sm.edges))
	scr.mark = mark
	clear(mark)
	total := 0
	// With a memo, resolve cached components serially up front and fan
	// out only the misses; the stored positions translate back to the
	// current solve's edge indices through the component's edge list.
	miss := make([]int, 0, len(comps))
	var hashes []uint64
	if sm.Memo != nil {
		hashes = solve.Grow(scr.hashes, len(comps))
		scr.hashes = hashes
		for ci, c := range comps {
			hashes[ci] = hashComponent(c)
			if pos, ok := sm.Memo.lookup(hashes[ci], c); ok {
				for _, j := range pos {
					mark[c.edges[j].ei] = true
				}
				total += len(pos)
				continue
			}
			miss = append(miss, ci)
		}
	} else {
		for ci := range comps {
			miss = append(miss, ci)
		}
	}
	// Components become tasks on the same work-stealing scheduler as
	// the repair blocks; each runs on the Ctx of whichever worker
	// executes it, so its scratch comes from that worker's arena shard.
	picked := make([][]int32, len(miss))
	one := func(wc *solve.Ctx, i int) error {
		if err := wc.Err(); err != nil {
			return err
		}
		p, err := solveComponent(comps[miss[i]], wc)
		if err != nil {
			return err
		}
		picked[i] = p
		return nil
	}
	if err := sm.Ctx.ForEachBlock(len(miss), func(i int) int { return len(comps[miss[i]].edges) }, one); err != nil {
		return MatchResult{}, err
	}
	for i, ci := range miss {
		c := comps[ci]
		if sm.Memo != nil {
			// Translate the picked global edge indices into positions of
			// the component's (ei-ascending) edge list.
			pos := make([]int32, len(picked[i]))
			for k, ei := range picked[i] {
				pos[k] = int32(sort.Search(len(c.edges), func(j int) bool { return c.edges[j].ei >= ei }))
			}
			sm.Memo.store(hashes[ci], c, pos)
		}
		for _, ei := range picked[i] {
			mark[ei] = true
		}
		total += len(picked[i])
	}
	res.Picked = make([]int, 0, total)
	for ei, e := range sm.edges {
		if !mark[ei] {
			continue
		}
		res.Match[e.I] = e.J
		res.Total += e.W
		res.Picked = append(res.Picked, ei)
	}
	return res, nil
}

// decompose returns the connected-component decomposition, skipping the
// union-find pass when the memo's structure cache matches: in a
// resident session's mutate/repair loop the block partition — and with
// it the matcher's edge structure — is stable round to round, only the
// weights move, so the previous decomposition is rebuilt by copying the
// cached localization and refreshing each edge's weight.
func (sm *SparseMatcher) decompose(scr *compScratch) []component {
	if sm.Memo == nil {
		return sm.components(scr)
	}
	if sm.Memo.structHit(sm.n, sm.m, sm.edges) {
		sm.Memo.structMisses = 0
		return sm.Memo.rebuild(scr, sm.edges)
	}
	comps := sm.components(scr)
	// A workload that keeps re-shaping the graph (fresh values splitting
	// blocks) would pay the store's O(E) copy every round for nothing,
	// so persistent misses back off to occasional re-probes. A stale
	// cache stays correct: the keys fully determine the decomposition,
	// so any future hit — whenever the structure recurs — is exact.
	sm.Memo.structMisses++
	if n := sm.Memo.structMisses; n <= 2 || n&(n-1) == 0 {
		sm.Memo.storeStruct(sm.n, sm.m, sm.edges, comps)
	}
	return comps
}

// compScratch is the pooled working set of one components() call: the
// union-find forest, the node→component and node→local translation
// arrays, the per-component edge cursors, the flat localized edge
// array and the component headers. The result returned by components
// aliases flat and comps, so the scratch is recycled only when Solve
// is done with it.
type compScratch struct {
	parent []int32
	comp   []int32
	local  []int32
	starts []int32
	flat   []locEdge
	comps  []component
	mark   []bool
	hashes []uint64
}

// compKey pools compScratch values on the solve context.
type compKey struct{}

// components partitions the positive-weight edges into connected
// components (union-find over both node sides) and localizes each
// component's edges to dense per-component node ids, everything in
// first-appearance order. Zero-weight edges never affect the optimum
// and are dropped here, which also keeps components as small as the
// data allows. Every node belongs to at most one component, so shared
// dense arrays provide component and local ids without per-component
// maps; the edges bucket into one flat array by a counting pass, so
// the whole decomposition is allocation-free when the scratch is warm.
// Within each component the edges keep their global order, so ei is
// ascending per component (the memo's position translation and the
// first-appearance localization both rely on this).
func (sm *SparseMatcher) components(scr *compScratch) []component {
	nm := sm.n + sm.m
	parent := solve.Grow(scr.parent, nm)
	scr.parent = parent
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	npos := 0
	for _, e := range sm.edges {
		if e.W == 0 {
			continue
		}
		npos++
		a, b := find(int32(e.I)), find(int32(sm.n+e.J))
		if a != b {
			parent[a] = b
		}
	}
	if npos == 0 {
		return nil
	}
	// Assign dense component ids by first appearance in edge order and
	// count each component's edges.
	comp := solve.Grow(scr.comp, nm)
	scr.comp = comp
	for i := range comp {
		comp[i] = -1
	}
	counts := scr.starts[:0]
	for _, e := range sm.edges {
		if e.W == 0 {
			continue
		}
		root := find(int32(e.I))
		c := comp[root]
		if c < 0 {
			c = int32(len(counts))
			comp[root] = c
			counts = append(counts, 0)
		}
		counts[c]++
	}
	ncomp := len(counts)
	scr.starts = counts
	comps := solve.Grow(scr.comps, ncomp)
	scr.comps = comps
	flat := solve.Grow(scr.flat, npos)
	scr.flat = flat
	start := int32(0)
	for c := 0; c < ncomp; c++ {
		cnt := counts[c]
		comps[c] = component{edges: flat[start : start : start+cnt]}
		start += cnt
	}
	// Fill the buckets in global edge order, localizing node ids per
	// component as they first appear.
	local := solve.Grow(scr.local, nm)
	scr.local = local
	for i := range local {
		local[i] = -1
	}
	for ei, e := range sm.edges {
		if e.W == 0 {
			continue
		}
		c := comp[find(int32(e.I))]
		cp := &comps[c]
		if local[e.I] < 0 {
			local[e.I] = int32(cp.nL)
			cp.nL++
		}
		if local[sm.n+e.J] < 0 {
			local[sm.n+e.J] = int32(cp.nR)
			cp.nR++
		}
		cp.edges = append(cp.edges, locEdge{
			li: local[e.I],
			rj: local[sm.n+e.J],
			ei: int32(ei),
			w:  e.W,
		})
	}
	return comps
}

// denseComponentLimit bounds nL·nR below which a component is handed to
// the dense Hungarian solver: at that size the padded O(size³) matrix
// beats the sparse solver's heap and adjacency bookkeeping.
const denseComponentLimit = 64

// solveComponent solves one connected component and returns the matched
// edge indices (into the original edge list). The error is always the
// context's cancellation error, surfaced from inside the sparse
// solver's phase loop.
func solveComponent(c component, ctx *solve.Ctx) ([]int32, error) {
	if len(c.edges) == 1 {
		ctx.Stats().MatcherPath(solve.MatcherFast)
		return []int32{c.edges[0].ei}, nil // a single positive edge is always matched
	}
	if c.nL == 1 || c.nR == 1 {
		// One-sided star: every edge shares a node, so a matching picks
		// exactly one — the heaviest (first among ties).
		ctx.Stats().MatcherPath(solve.MatcherFast)
		best := c.edges[0]
		for _, e := range c.edges[1:] {
			if e.w > best.w {
				best = e
			}
		}
		return []int32{best.ei}, nil
	}
	if c.nL*c.nR <= denseComponentLimit {
		ctx.Stats().MatcherPath(solve.MatcherDensePath)
		return solveDense(c, ctx), nil
	}
	ctx.Stats().MatcherPath(solve.MatcherSparsePath)
	return solveSparse(c, ctx)
}

// solveDense pads the component into a dense matrix and reuses the
// Hungarian solver. Parallel edges collapse to the heaviest.
func solveDense(c component, ctx *solve.Ctx) []int32 {
	eidx := ctx.Int32s(c.nL * c.nR)
	for i := range eidx {
		eidx[i] = -1
	}
	w := ctx.Float64s(c.nL * c.nR)
	for i := range w {
		w[i] = 0
	}
	for _, e := range c.edges {
		cell := int(e.li)*c.nR + int(e.rj)
		if eidx[cell] < 0 || e.w > w[cell] {
			eidx[cell], w[cell] = e.ei, e.w
		}
	}
	weight := func(i, j int) float64 {
		if eidx[i*c.nR+j] < 0 {
			return math.Inf(-1)
		}
		return w[i*c.nR+j]
	}
	// Weights were validated by the constructor, so the dense solver
	// cannot fail.
	match, _, err := MaxWeightBipartiteMatchingCtx(ctx, c.nL, c.nR, weight)
	if err != nil {
		panic(err)
	}
	var picked []int32
	for i, j := range match {
		if j >= 0 {
			picked = append(picked, eidx[i*c.nR+j])
		}
	}
	ctx.PutInt32s(eidx)
	ctx.PutFloat64s(w)
	return picked
}

// jvScratch is the pooled per-component scratch of the sparse solver:
// CSR arrays, potentials, distances, matching state and the Dijkstra
// heap, recycled through the solve context's arena so a solve with
// many components (or many sequential solves sharing a Ctx) allocates
// each buffer once instead of per component.
type jvScratch struct {
	flip                   []locEdge
	adj                    []locEdge
	deg, fill              []int32
	pL, pR, pV, dL, dR, dV []float64
	mL, mR, eL, parentR    []int32
	doneL, doneR, doneV    []bool
	heap                   []nodeDist
}

// jvKey pools jvScratch values on the solve context.
type jvKey struct{}

// newJVScratch builds a fresh scratch set, pre-sizing the CSR edge
// arrays and per-node buffers from the context's size hints so the
// first large component allocates at the high-water size instead of
// climbing a grow-realloc ladder (subsequent components recycle the
// grown buffers through the arena either way). The hints are scoped to
// the current solve, so the pre-size is capped at the table actually
// being repaired, not at the largest table the Ctx ever saw.
func newJVScratch(ctx *solve.Ctx) *jvScratch {
	scr := new(jvScratch)
	h := ctx.Hints()
	if h.Rows > 0 {
		// Edge-indexed arrays: edges ≤ marriage blocks ≤ rows.
		ecap := solve.RoundCap(h.Rows)
		scr.adj = make([]locEdge, 0, ecap)
		scr.flip = make([]locEdge, 0, ecap)
	}
	if h.Codes > 0 {
		// Node-indexed arrays: component sides ≤ distinct codes.
		ncap := solve.RoundCap(h.Codes + 1)
		scr.deg = make([]int32, 0, ncap)
		scr.fill = make([]int32, 0, ncap)
		scr.pL = make([]float64, 0, ncap)
		scr.pR = make([]float64, 0, ncap)
		scr.pV = make([]float64, 0, ncap)
		scr.dL = make([]float64, 0, ncap)
		scr.dR = make([]float64, 0, ncap)
		scr.dV = make([]float64, 0, ncap)
		scr.mL = make([]int32, 0, ncap)
		scr.mR = make([]int32, 0, ncap)
		scr.eL = make([]int32, 0, ncap)
		scr.parentR = make([]int32, 0, ncap)
		scr.doneL = make([]bool, 0, ncap)
		scr.doneR = make([]bool, 0, ncap)
		scr.doneV = make([]bool, 0, ncap)
	}
	return scr
}

// jvCancelInterval is how many augmenting phases run between
// cooperative cancellation checks inside the sparse solver, so one
// very large component no longer runs to completion after the
// deadline. A phase is one Dijkstra over the component; checking every
// phase would be nearly free too, but batching keeps the check out of
// profiles entirely.
const jvCancelInterval = 32

// solveSparse is the sparse Jonker–Volgenant solver: shortest
// augmenting paths with potentials over CSR adjacency lists, one row
// inserted per phase, Dijkstra with a 4-ary heap over pooled storage.
//
// Maximum-weight (partial) matching reduces to a minimum-cost
// assignment that is perfect on the rows: costs are maxW−w (≥ 0), and
// every row gets a private virtual slack column of cost maxW (weight
// 0), the "stay unmatched" option — exactly the padding the dense
// solver materializes, kept implicit here. Each phase runs Dijkstra
// over reduced costs from the new row and stops at the first free
// column popped; that column is the cheapest because free columns all
// carry potential 0 (a free column is finalized only as the target, so
// it is never updated). The standard potential update then keeps every
// reduced cost ≥ 0 with matched edges tight. O(V·E·log V) per
// component worst case, with phases that in practice stay local to the
// inserted row. The smaller side always plays the rows, so phase count
// is min(nL, nR). Cancellation is checked every jvCancelInterval
// phases; a cancelled solve returns the context error with the
// matching state abandoned.
func solveSparse(c component, ctx *solve.Ctx) ([]int32, error) {
	scr, _ := ctx.GetScratch(jvKey{}).(*jvScratch)
	if scr == nil {
		scr = newJVScratch(ctx)
	}
	defer ctx.PutScratch(jvKey{}, scr)
	if c.nR < c.nL {
		// Transpose: matched edge indices are side-agnostic.
		scr.flip = solve.Grow(scr.flip, len(c.edges))
		for k, e := range c.edges {
			scr.flip[k] = locEdge{li: e.rj, rj: e.li, ei: e.ei, w: e.w}
		}
		c = component{nL: c.nR, nR: c.nL, edges: scr.flip}
	}
	nL, nR := c.nL, c.nR
	// CSR adjacency, rows in left-node order, each row sorted by right
	// node with parallel edges collapsed to the heaviest (first among
	// ties): a lighter parallel edge could never be matched — once the
	// heavier one tightens, the lighter one's reduced cost would go
	// negative, breaking the potential invariant — so it is dropped.
	deg := solve.Grow(scr.deg, nL+1)
	for i := range deg {
		deg[i] = 0
	}
	for _, e := range c.edges {
		deg[e.li+1]++
	}
	for i := 0; i < nL; i++ {
		deg[i+1] += deg[i]
	}
	adj := solve.Grow(scr.adj, len(c.edges))
	fill := solve.Grow(scr.fill, nL)
	copy(fill, deg[:nL])
	for _, e := range c.edges {
		adj[fill[e.li]] = e
		fill[e.li]++
	}
	pos := 0
	for i := 0; i < nL; i++ {
		row := adj[deg[i]:deg[i+1]]
		slices.SortStableFunc(row, func(a, b locEdge) int {
			if a.rj != b.rj {
				return cmp.Compare(a.rj, b.rj)
			}
			return cmp.Compare(b.w, a.w)
		})
		start := pos
		for k, e := range row {
			if k > 0 && e.rj == row[k-1].rj {
				continue
			}
			adj[pos] = e
			pos++
		}
		deg[i] = int32(start)
	}
	deg[nL] = int32(pos)
	adj = adj[:pos]

	maxW := 0.0
	for _, e := range c.edges {
		if e.w > maxW {
			maxW = e.w
		}
	}

	const inf = math.MaxFloat64
	// Column j of the virtual slack block is nR+i for row i; node ids in
	// the heap are: rows [0,nL), real columns [nL,nL+nR), virtual
	// columns [nL+nR, nL+nR+nL).
	pL := solve.Grow(scr.pL, nL)
	pR := solve.Grow(scr.pR, nR)
	pV := solve.Grow(scr.pV, nL)
	for i := range pL {
		pL[i], pV[i] = 0, 0
	}
	for j := range pR {
		pR[j] = 0
	}
	mL := solve.Grow(scr.mL, nL) // row -> matched column (real j, or nR+i for the slack), -1 free
	mR := solve.Grow(scr.mR, nR) // real column -> matched row, -1 free
	eL := solve.Grow(scr.eL, nL) // row -> matched edge index into the edge list, -1 on slack
	for i := range mL {
		mL[i], eL[i] = -1, -1
	}
	for j := range mR {
		mR[j] = -1
	}
	dL := solve.Grow(scr.dL, nL)
	dR := solve.Grow(scr.dR, nR)
	dV := solve.Grow(scr.dV, nL)
	doneL := solve.Grow(scr.doneL, nL)
	doneR := solve.Grow(scr.doneR, nR)
	doneV := solve.Grow(scr.doneV, nL)
	parentR := solve.Grow(scr.parentR, nR) // arc index into adj reaching each real column
	// Persist the grown buffers so the pooled scratch keeps its
	// high-water capacities across components.
	scr.deg, scr.fill, scr.adj = deg, fill, adj[:cap(adj)]
	scr.pL, scr.pR, scr.pV = pL, pR, pV
	scr.mL, scr.mR, scr.eL, scr.parentR = mL, mR, eL, parentR
	scr.dL, scr.dR, scr.dV = dL, dR, dV
	scr.doneL, scr.doneR, scr.doneV = doneL, doneR, doneV
	// Re-slice every per-node array to its side's length so the
	// bounds-check prover sees the equalities the fused loops below
	// rely on (the grow helpers hide them, costing ~15% on
	// matching-dominated benches otherwise).
	dL, dV, doneL, doneV = dL[:nL], dV[:nL], doneL[:nL], doneV[:nL]
	pL, pV, mL, eL = pL[:nL], pV[:nL], mL[:nL], eL[:nL]
	dR, doneR, pR, mR, parentR = dR[:nR], doneR[:nR], pR[:nR], mR[:nR], parentR[:nR]

	pq := nodeHeap{s: scr.heap[:0]}
	for row := 0; row < nL; row++ {
		if row%jvCancelInterval == jvCancelInterval-1 {
			if err := ctx.Err(); err != nil {
				scr.heap = pq.s[:0]
				return nil, err
			}
		}
		// Per-phase reinit as single-purpose loops: the bool resets
		// compile to memclr and the constant fills stay tight, where a
		// fused multi-slice loop pays interleaved-store stalls.
		for i := range dL {
			dL[i] = inf
		}
		for i := range dV {
			dV[i] = inf
		}
		for j := range dR {
			dR[j] = inf
		}
		clear(doneL)
		clear(doneV)
		clear(doneR)
		for j := range parentR {
			parentR[j] = -1
		}
		pq.s = pq.s[:0]
		dL[row] = 0
		pq.push(nodeDist{node: int32(row)})
		target := int32(-1) // column node id (real or virtual)
		dT := inf
		for len(pq.s) > 0 {
			cur := pq.pop()
			switch {
			case cur.node < int32(nL): // row
				li := cur.node
				if doneL[li] || cur.d > dL[li] {
					continue
				}
				doneL[li] = true
				for k := deg[li]; k < deg[li+1]; k++ {
					a := adj[k]
					if mL[li] == a.rj {
						continue // the matched edge is traversed backward only
					}
					nd := cur.d + (maxW - a.w - pL[li] - pR[a.rj])
					if nd < dR[a.rj] {
						dR[a.rj] = nd
						parentR[a.rj] = k
						pq.push(nodeDist{d: nd, node: int32(nL) + a.rj})
					}
				}
				if mL[li] != int32(nR)+li {
					// The row's private slack column (stay unmatched).
					if nd := cur.d + (maxW - pL[li] - pV[li]); nd < dV[li] {
						dV[li] = nd
						pq.push(nodeDist{d: nd, node: int32(nL) + int32(nR) + li})
					}
				}
			case cur.node < int32(nL)+int32(nR): // real column
				rj := cur.node - int32(nL)
				if doneR[rj] || cur.d > dR[rj] {
					continue
				}
				if mR[rj] == -1 {
					target, dT = cur.node, cur.d
				} else {
					doneR[rj] = true
					li := mR[rj]
					if cur.d < dL[li] {
						// The matched edge is tight, so the row is
						// reached at the same distance.
						dL[li] = cur.d
						pq.push(nodeDist{d: cur.d, node: li})
					}
				}
			default: // virtual column of row cur.node - nL - nR
				li := cur.node - int32(nL) - int32(nR)
				if doneV[li] || cur.d > dV[li] {
					continue
				}
				if mL[li] != int32(nR)+li {
					target, dT = cur.node, cur.d
				} else {
					// Matched slack columns relay back to their row; with
					// the slack edge tight this cannot happen before the
					// row itself was popped, so nothing to do.
					doneV[li] = true
				}
			}
			if target >= 0 {
				break
			}
		}
		// A target always exists: the inserted row's own slack column is
		// free and reachable. Update the potentials of the finalized
		// nodes (pL[i] += dT - dL[i], column potentials mirrored), which
		// keeps all reduced costs ≥ 0 and matched edges tight; free
		// columns are never finalized before becoming the target, so
		// they keep potential 0 and "first free column popped" is the
		// cheapest augmenting path.
		for i, done := range doneL {
			if done {
				pL[i] += dT - dL[i]
			}
		}
		for i, done := range doneV {
			if done {
				pV[i] -= dT - dV[i]
			}
		}
		for j, done := range doneR {
			if done {
				pR[j] -= dT - dR[j]
			}
		}
		// Augment: flip the path from the target column back to the
		// inserted (free) row. Columns are tracked in mL as local ids
		// (real j, or nR+i for row i's slack); heap node c is nL + that.
		for t := target; ; {
			var li int32
			col := t - int32(nL)
			if col < int32(nR) {
				li = adj[parentR[col]].li
			} else {
				li = col - int32(nR)
			}
			prev := mL[li]
			if col < int32(nR) {
				mL[li], eL[li], mR[col] = col, adj[parentR[col]].ei, li
			} else {
				mL[li], eL[li] = col, -1
			}
			if prev == -1 {
				break // reached the freshly inserted row
			}
			t = int32(nL) + prev
		}
	}
	scr.heap = pq.s[:0]
	var picked []int32
	for i := 0; i < nL; i++ {
		if eL[i] >= 0 {
			picked = append(picked, eL[i])
		}
	}
	return picked, nil
}

// nodeDist is a Dijkstra heap entry; nodes < nL are left, the rest
// right (shifted by nL).
type nodeDist struct {
	d    float64
	node int32
}

// nodeHeap is a 4-ary min-heap on d over pooled storage. container/heap
// would box every entry through an interface; an explicit slice keeps
// the inner loop allocation-free, and the 4-ary layout halves the tree
// depth, trading cheap in-cache sibling comparisons on pop for fewer
// levels on push — a measurable constant-factor win on the
// matching-dominated workloads (see ROADMAP.md for the before/after).
type nodeHeap struct{ s []nodeDist }

func (h *nodeHeap) push(x nodeDist) {
	h.s = append(h.s, x)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h.s[p].d <= h.s[i].d {
			break
		}
		h.s[p], h.s[i] = h.s[i], h.s[p]
		i = p
	}
}

func (h *nodeHeap) pop() nodeDist {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		first := i<<2 + 1
		if first >= len(h.s) {
			break
		}
		end := first + 4
		if end > len(h.s) {
			end = len(h.s)
		}
		small := i
		for k := first; k < end; k++ {
			if h.s[k].d < h.s[small].d {
				small = k
			}
		}
		if small == i {
			break
		}
		h.s[i], h.s[small] = h.s[small], h.s[i]
		i = small
	}
	return top
}
