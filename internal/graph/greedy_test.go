package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreedyMatchingIsMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		n, m := 1+rng.Intn(8), 1+rng.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				if rng.Float64() < 0.3 {
					w[i][j] = math.Inf(-1)
				} else {
					w[i][j] = float64(rng.Intn(30))
				}
			}
		}
		weight := func(i, j int) float64 { return w[i][j] }
		match, total := GreedyMatching(n, m, EdgesOf(n, m, weight))
		usedRight := map[int]bool{}
		var sum float64
		for i, j := range match {
			if j == -1 {
				continue
			}
			if usedRight[j] {
				t.Fatal("right node matched twice")
			}
			usedRight[j] = true
			if math.IsInf(w[i][j], -1) {
				t.Fatal("matched missing edge")
			}
			sum += w[i][j]
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("reported %v, recomputed %v", total, sum)
		}
		// Greedy never beats the optimum, and reaches at least half of
		// it (classic maximal-matching bound for weights).
		_, opt, err := MaxWeightBipartiteMatching(n, m, weight)
		if err != nil {
			t.Fatal(err)
		}
		if total > opt+1e-9 {
			t.Fatalf("greedy %v exceeds optimum %v", total, opt)
		}
		if total < opt/2-1e-9 {
			t.Fatalf("greedy %v below half the optimum %v", total, opt)
		}
	}
}

func TestGreedyMatchingPicksHeaviestFirst(t *testing.T) {
	// Greedy takes the weight-10 edge (0,0), which blocks both weight-6
	// edges — the 6+6 pairing is optimal (12), greedy stops at 10.
	w := [][]float64{{10, 6}, {6, math.Inf(-1)}}
	weight := func(i, j int) float64 { return w[i][j] }
	match, greedy := GreedyMatching(2, 2, EdgesOf(2, 2, weight))
	if greedy != 10 || match[0] != 0 || match[1] != -1 {
		t.Fatalf("greedy = %v, match %v; want 10 via (0,0)", greedy, match)
	}
	_, opt, err := MaxWeightBipartiteMatching(2, 2, weight)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 12 {
		t.Fatalf("optimum = %v, want 12", opt)
	}
	if greedy >= opt {
		t.Fatal("this instance must show a strict greedy gap")
	}
}
