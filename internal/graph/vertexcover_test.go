package graph

import (
	"math"
	"math/rand"
	"testing"
)

func unitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestGraphConstruction(t *testing.T) {
	if _, err := NewGraph([]float64{1, 0}); err == nil {
		t.Error("non-positive weight must be rejected")
	}
	g := MustNewGraph(unitWeights(3))
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop must be rejected")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge must be rejected")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil { // duplicate (reversed) ignored
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.N() != 3 || g.Degree(0) != 1 || g.MaxDegree() != 1 {
		t.Error("basic accessors wrong")
	}
}

func TestVertexCoverTriangle(t *testing.T) {
	g := MustNewGraph(unitWeights(3))
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	exact, err := g.ExactMinVertexCover()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsVertexCover(exact) {
		t.Fatal("exact result is not a cover")
	}
	if w := g.CoverWeight(exact); w != 2 {
		t.Fatalf("triangle min VC weight = %v, want 2", w)
	}
}

func TestVertexCoverStar(t *testing.T) {
	g := MustNewGraph(unitWeights(6))
	for v := 1; v < 6; v++ {
		g.AddEdge(0, v)
	}
	exact, _ := g.ExactMinVertexCover()
	if w := g.CoverWeight(exact); w != 1 {
		t.Fatalf("star min VC weight = %v, want 1 (center)", w)
	}
	if !exact[0] {
		t.Fatal("star cover should be the center")
	}
}

func TestWeightedVertexCoverPrefersLight(t *testing.T) {
	// Path 0-1-2 where the middle vertex is heavy: cover = {0, 2}.
	g := MustNewGraph([]float64{1, 10, 1})
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	exact, _ := g.ExactMinVertexCover()
	if w := g.CoverWeight(exact); w != 2 {
		t.Fatalf("min weight = %v, want 2", w)
	}
	if exact[1] {
		t.Fatal("heavy middle vertex should be avoided")
	}
}

func TestApproxVertexCoverGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(10)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1 + float64(rng.Intn(9))
		}
		g := MustNewGraph(weights)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(i, j)
				}
			}
		}
		approx := g.ApproxVertexCoverBE()
		if !g.IsVertexCover(approx) {
			t.Fatal("BE result is not a cover")
		}
		exact, err := g.ExactMinVertexCover()
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsVertexCover(exact) {
			t.Fatal("exact result is not a cover")
		}
		wa, we := g.CoverWeight(approx), g.CoverWeight(exact)
		if wa > 2*we+1e-9 {
			t.Fatalf("BE weight %v exceeds 2×OPT (%v)", wa, we)
		}
		if we > wa+1e-9 {
			t.Fatalf("exact weight %v exceeds approx weight %v", we, wa)
		}
	}
}

func TestExactVertexCoverAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(9)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1 + float64(rng.Intn(5))
		}
		g := MustNewGraph(weights)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(i, j)
				}
			}
		}
		exact, err := g.ExactMinVertexCover()
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all subsets.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			cover := map[int]bool{}
			var w float64
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					cover[v] = true
					w += weights[v]
				}
			}
			if g.IsVertexCover(cover) && w < best {
				best = w
			}
		}
		if math.Abs(g.CoverWeight(exact)-best) > 1e-9 {
			t.Fatalf("iter %d: exact %v, brute force %v", iter, g.CoverWeight(exact), best)
		}
	}
}

func TestGreedyVertexCoverIsACover(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(12)
		g := MustNewGraph(unitWeights(n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		if !g.IsVertexCover(g.GreedyVertexCover()) {
			t.Fatal("greedy result is not a cover")
		}
	}
}

func TestExactVertexCoverLimit(t *testing.T) {
	g := MustNewGraph(unitWeights(ExactVertexCoverLimit + 1))
	if _, err := g.ExactMinVertexCover(); err == nil {
		t.Fatal("oversized instance must be refused")
	}
}

func TestCoverIDsSorted(t *testing.T) {
	ids := CoverIDs(map[int]bool{5: true, 1: true, 3: false, 2: true})
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 5 {
		t.Fatalf("CoverIDs = %v", ids)
	}
}

func TestEmptyGraphCover(t *testing.T) {
	g := MustNewGraph(unitWeights(4))
	exact, err := g.ExactMinVertexCover()
	if err != nil {
		t.Fatal(err)
	}
	if g.CoverWeight(exact) != 0 {
		t.Fatalf("edgeless graph cover weight = %v, want 0", g.CoverWeight(exact))
	}
}
