package graph

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/solve"
)

// checkMatchResult validates the structural invariants of a solve: the
// match is a matching over listed edges, Picked and Match agree, and
// Total is the recomputed matched weight.
func checkMatchResult(t *testing.T, n, m int, edges []Edge, res MatchResult) {
	t.Helper()
	if len(res.Match) != n {
		t.Fatalf("match has %d entries, want %d", len(res.Match), n)
	}
	usedRight := make([]bool, m)
	fromPicked := make(map[int]int, len(res.Picked))
	var sum float64
	for _, ei := range res.Picked {
		if ei < 0 || ei >= len(edges) {
			t.Fatalf("picked edge index %d out of range", ei)
		}
		e := edges[ei]
		if e.W <= 0 {
			t.Fatalf("picked non-positive edge %v", e)
		}
		if _, dup := fromPicked[e.I]; dup {
			t.Fatalf("left node %d matched twice", e.I)
		}
		if usedRight[e.J] {
			t.Fatalf("right node %d matched twice", e.J)
		}
		fromPicked[e.I] = e.J
		usedRight[e.J] = true
		sum += e.W
	}
	if math.Abs(sum-res.Total) > 1e-9 {
		t.Fatalf("total %v != recomputed %v", res.Total, sum)
	}
	for i, j := range res.Match {
		if want, ok := fromPicked[i]; ok {
			if j != want {
				t.Fatalf("Match[%d] = %d, Picked says %d", i, j, want)
			}
		} else if j != -1 {
			t.Fatalf("Match[%d] = %d, but no picked edge covers it", i, j)
		}
	}
}

func solveSparseInstance(t *testing.T, n, m int, edges []Edge) MatchResult {
	t.Helper()
	sm, err := NewSparseMatcher(n, m, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkMatchResult(t, n, m, edges, res)
	return res
}

// denseTotal runs the dense Hungarian oracle over the same edge set
// (parallel edges collapsed to the heaviest, as the matrix forces).
func denseTotal(t *testing.T, n, m int, edges []Edge) float64 {
	t.Helper()
	w := make(map[[2]int]float64, len(edges))
	for _, e := range edges {
		if cur, ok := w[[2]int{e.I, e.J}]; !ok || e.W > cur {
			w[[2]int{e.I, e.J}] = e.W
		}
	}
	weight := func(i, j int) float64 {
		if v, ok := w[[2]int{i, j}]; ok {
			return v
		}
		return math.Inf(-1)
	}
	_, total, err := MaxWeightBipartiteMatching(n, m, weight)
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// randomEdges draws an instance with the given expected edges per left
// node; integer weights force ties, the interesting case.
func randomEdges(rng *rand.Rand, n, m int, perLeft float64, maxW int) []Edge {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < perLeft/float64(m) {
				edges = append(edges, Edge{I: i, J: j, W: float64(rng.Intn(maxW + 1))})
			}
		}
	}
	return edges
}

// TestSparseMatcherAgainstHungarian pins the sparse engine to the dense
// oracle on randomized sparse, dense, rectangular and tie-heavy
// instances: the matched weight must be identical.
func TestSparseMatcherAgainstHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	shapes := []struct {
		name    string
		n, m    int
		perLeft float64
		maxW    int
	}{
		{"sparse", 30, 30, 2.5, 50},
		{"dense", 12, 12, 12, 50},
		{"rect-wide", 8, 40, 6, 20},
		{"rect-tall", 40, 8, 2, 20},
		{"ties", 20, 20, 3, 2}, // weights in {0,1,2}: many equal-weight optima
	}
	for _, sh := range shapes {
		for iter := 0; iter < 40; iter++ {
			edges := randomEdges(rng, sh.n, sh.m, sh.perLeft, sh.maxW)
			res := solveSparseInstance(t, sh.n, sh.m, edges)
			want := denseTotal(t, sh.n, sh.m, edges)
			if math.Abs(res.Total-want) > 1e-9 {
				t.Fatalf("%s iter %d: sparse total %v, hungarian %v", sh.name, iter, res.Total, want)
			}
		}
	}
}

// TestSparseMatcherAgainstExhaustive pins the sparse engine to the
// brute-force oracle on small instances.
func TestSparseMatcherAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 200; iter++ {
		n, m := 1+rng.Intn(6), 1+rng.Intn(6)
		edges := randomEdges(rng, n, m, 1+3*rng.Float64(), 12)
		res := solveSparseInstance(t, n, m, edges)
		w := make(map[[2]int]float64)
		for _, e := range edges {
			if cur, ok := w[[2]int{e.I, e.J}]; !ok || e.W > cur {
				w[[2]int{e.I, e.J}] = e.W
			}
		}
		want := ExhaustiveMaxWeightMatching(n, m, func(i, j int) float64 {
			if v, ok := w[[2]int{i, j}]; ok {
				return v
			}
			return math.Inf(-1)
		})
		if math.Abs(res.Total-want) > 1e-9 {
			t.Fatalf("iter %d (n=%d m=%d): sparse %v, exhaustive %v", iter, n, m, res.Total, want)
		}
	}
}

// TestSparseMatcherDisconnected builds many node-disjoint blocks —
// isolated edges, stars, squares — and checks the component
// decomposition recombines their optima exactly.
func TestSparseMatcherDisconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for iter := 0; iter < 30; iter++ {
		var edges []Edge
		baseL, baseR := 0, 0
		wantTotal := 0.0
		blocks := 2 + rng.Intn(6)
		for b := 0; b < blocks; b++ {
			switch rng.Intn(3) {
			case 0: // isolated edge
				w := float64(1 + rng.Intn(9))
				edges = append(edges, Edge{baseL, baseR, w})
				wantTotal += w
				baseL, baseR = baseL+1, baseR+1
			case 1: // star: one left, several rights — max wins
				k := 2 + rng.Intn(4)
				best := 0.0
				for j := 0; j < k; j++ {
					w := float64(1 + rng.Intn(9))
					edges = append(edges, Edge{baseL, baseR + j, w})
					if w > best {
						best = w
					}
				}
				wantTotal += best
				baseL, baseR = baseL+1, baseR+k
			default: // 2×2 square: diagonal vs anti-diagonal
				a, b2, c, d := float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), float64(1+rng.Intn(9))
				edges = append(edges,
					Edge{baseL, baseR, a}, Edge{baseL, baseR + 1, b2},
					Edge{baseL + 1, baseR, c}, Edge{baseL + 1, baseR + 1, d})
				if a+d > b2+c {
					wantTotal += a + d
				} else {
					wantTotal += b2 + c
				}
				baseL, baseR = baseL+2, baseR+2
			}
		}
		res := solveSparseInstance(t, baseL, baseR, edges)
		if math.Abs(res.Total-wantTotal) > 1e-9 {
			t.Fatalf("iter %d: total %v, want %v", iter, res.Total, wantTotal)
		}
	}
}

// TestSparseMatcherDegenerate covers the edge cases of the API.
func TestSparseMatcherDegenerate(t *testing.T) {
	// Empty instance.
	res := solveSparseInstance(t, 0, 0, nil)
	if res.Total != 0 || len(res.Picked) != 0 {
		t.Fatalf("empty: %+v", res)
	}
	// Nodes but no edges.
	res = solveSparseInstance(t, 3, 4, nil)
	for _, j := range res.Match {
		if j != -1 {
			t.Fatalf("no edges must leave everything unmatched: %v", res.Match)
		}
	}
	// Zero-weight edges are never matched (same as dense slack edges).
	res = solveSparseInstance(t, 2, 2, []Edge{{0, 0, 0}, {1, 1, 0}})
	if res.Total != 0 || len(res.Picked) != 0 {
		t.Fatalf("zero edges matched: %+v", res)
	}
	// Parallel edges: the heaviest is picked and reported.
	edges := []Edge{{0, 0, 2}, {0, 0, 7}, {0, 0, 5}}
	res = solveSparseInstance(t, 1, 1, edges)
	if res.Total != 7 || len(res.Picked) != 1 || res.Picked[0] != 1 {
		t.Fatalf("parallel edges: %+v", res)
	}
}

func TestSparseMatcherRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n, m  int
		edges []Edge
	}{
		{"negative-weight", 2, 2, []Edge{{0, 0, -1}}},
		{"nan-weight", 2, 2, []Edge{{0, 0, math.NaN()}}},
		{"neg-inf-weight", 2, 2, []Edge{{0, 0, math.Inf(-1)}}},
		{"left-out-of-range", 2, 2, []Edge{{2, 0, 1}}},
		{"right-out-of-range", 2, 2, []Edge{{0, 2, 1}}},
		{"negative-endpoint", 2, 2, []Edge{{-1, 0, 1}}},
	} {
		if _, err := NewSparseMatcher(tc.n, tc.m, tc.edges); err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
	}
}

// clusteredEdges builds an instance of k disjoint dense-ish clusters,
// each with at least minEdges edges, so every component crosses the
// ForEachBlock handoff threshold and the parallel path actually spawns
// goroutines (a single random blob would mostly solve inline).
func clusteredEdges(rng *rand.Rand, k, side, minEdges int) (n, m int, edges []Edge) {
	n, m = k*side, k*side
	for c := 0; c < k; c++ {
		base := c * side
		for e := 0; e < minEdges; e++ {
			edges = append(edges, Edge{
				I: base + rng.Intn(side),
				J: base + rng.Intn(side),
				W: float64(1 + rng.Intn(50)),
			})
		}
	}
	return n, m, edges
}

// TestSparseMatcherParallelDeterministic solves the same instances with
// and without a multi-worker solve context (whose arena also recycles
// component scratch across goroutines): results must be byte-identical.
// The instances are built as several disjoint components, each above
// solve.MinParallelBlock edges, so under -race this genuinely exercises
// concurrent component solves sharing one arena.
func TestSparseMatcherParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ctx := solve.New(8, nil, nil)
	for iter := 0; iter < 12; iter++ {
		n, m, edges := clusteredEdges(rng, 4+rng.Intn(3), 30, solve.MinParallelBlock+20)
		serial := solveSparseInstance(t, n, m, edges)

		sm, err := NewSparseMatcher(n, m, edges)
		if err != nil {
			t.Fatal(err)
		}
		sm.Ctx = ctx
		par, err := sm.Solve()
		if err != nil {
			t.Fatal(err)
		}
		checkMatchResult(t, n, m, edges, par)
		if par.Total != serial.Total {
			t.Fatalf("parallel total %v != serial %v", par.Total, serial.Total)
		}
		if len(par.Picked) != len(serial.Picked) {
			t.Fatalf("parallel picked %v != serial %v", par.Picked, serial.Picked)
		}
		for k := range par.Picked {
			if par.Picked[k] != serial.Picked[k] {
				t.Fatalf("parallel picked %v != serial %v", par.Picked, serial.Picked)
			}
		}
	}
}

// TestSparseMatcherLargeSparse is a scale smoke: a big, very sparse
// instance must solve fast and agree with greedy's lower bound / dense
// upper structure is too slow here, so only invariants are checked.
func TestSparseMatcherLargeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	const n, m = 3000, 3000
	var edges []Edge
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			edges = append(edges, Edge{I: i, J: rng.Intn(m), W: float64(1 + rng.Intn(100))})
		}
	}
	res := solveSparseInstance(t, n, m, edges)
	_, greedy := GreedyMatching(n, m, edges)
	if res.Total < greedy-1e-9 {
		t.Fatalf("optimal %v below greedy %v", res.Total, greedy)
	}
}

// TestSparseSolverCancelMidComponent: the Jonker–Volgenant phase loop
// checks cancellation every jvCancelInterval augmenting phases, so one
// very large component stops promptly after the deadline instead of
// running to completion. We call the component solver directly with an
// already-cancelled context: the entry-point checks (Solve,
// ForEachBlock) are bypassed, proving the check inside the inner loop
// fires.
func TestSparseSolverCancelMidComponent(t *testing.T) {
	// One connected component, both sides ≥ 2·jvCancelInterval so the
	// phase loop runs past the first check.
	n := 4 * jvCancelInterval
	var edges []Edge
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{I: i, J: i, W: 2})
		edges = append(edges, Edge{I: i, J: (i + 1) % n, W: 1})
	}
	sm, err := NewSparseMatcher(n, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	comps := sm.components(new(compScratch))
	if len(comps) != 1 {
		t.Fatalf("expected one component, got %d", len(comps))
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := solve.New(1, cctx, nil)
	if _, err := solveSparse(comps[0], ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("solveSparse under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := solveComponent(comps[0], ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("solveComponent under cancelled ctx: err = %v, want context.Canceled", err)
	}
	// And end to end: a Solve started after cancellation fails fast.
	sm.Ctx = ctx
	if _, err := sm.Solve(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve under cancelled ctx: err = %v", err)
	}
}
