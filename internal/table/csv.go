package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/schema"
)

// ReadCSV reads a table from CSV. The header row names the attributes;
// the optional columns "id" (integer identifier) and "w" (positive
// float weight) may appear anywhere and are stripped from the schema.
// Missing ids are assigned sequentially; missing weights default to 1.
//
// ReadCSV streams: it is IngestCSV, kept under its original name. The
// input is encoded chunk-by-chunk straight into dictionary codes, so
// peak memory is O(chunk + dictionary + encoded table), not O(raw
// strings) — see IngestCSV.
func ReadCSV(r io.Reader, relationName string) (*Table, error) {
	return IngestCSV(r, relationName)
}

// IngestCSV reads a table from CSV by streaming it through a
// ChunkedBuilder: every cell is interned into the per-attribute
// dictionary as it is scanned (one string allocation per distinct
// value, a map lookup per repeated one), column codes accumulate in
// fixed-size chunks, and the finished table is published with its
// dictionary encoding and ingestion cardinality sketches already
// built. The output is identical to the buffered seed path
// (ReadCSVBuffered) on every input, error cases included; only the
// allocation profile differs.
//
// Line numbers in errors are physical 1-based input lines (the header
// is line 1), correct even across quoted fields containing newlines
// and skipped blank lines.
func IngestCSV(r io.Reader, relationName string) (*Table, error) {
	s := newCSVScanner(r)
	if !s.Scan() {
		err := s.err
		if err == nil {
			// Cannot happen: Scan only returns false with s.err set.
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	idCol, wCol := -1, -1
	var attrs []string
	var attrCols []int
	for i := 0; i < s.NumFields(); i++ {
		switch h := string(s.Field(i)); h {
		case "id":
			idCol = i
		case "w":
			wCol = i
		default:
			attrs = append(attrs, h)
			attrCols = append(attrCols, i)
		}
	}
	sc, err := schema.New(relationName, attrs...)
	if err != nil {
		return nil, err
	}
	b := NewChunkedBuilder(sc)
	cells := make([][]byte, len(attrCols))
	for s.Scan() {
		for i, c := range attrCols {
			cells[i] = s.Field(c)
		}
		w := 1.0
		if wCol >= 0 {
			wb := s.Field(wCol)
			if len(wb) == 1 && wb[0] == '1' {
				w = 1.0
			} else if w, err = strconv.ParseFloat(string(wb), 64); err != nil {
				return nil, fmt.Errorf("table: CSV line %d: bad weight %q", s.FieldLine(wCol), wb)
			}
		}
		if idCol >= 0 {
			id, ok := parseID(s.Field(idCol))
			if !ok {
				return nil, fmt.Errorf("table: CSV line %d: bad id %q", s.FieldLine(idCol), s.Field(idCol))
			}
			if err := b.Append(id, cells, w); err != nil {
				return nil, err
			}
		} else if err := b.AppendAuto(cells, w); err != nil {
			return nil, err
		}
	}
	if err := s.Err(); err != nil {
		return nil, fmt.Errorf("table: reading CSV line %d: %w", errLine(err, s), err)
	}
	return b.Flush(), nil
}

// errLine extracts the physical line a scan error occurred on: parse
// errors carry it, anything else (I/O) happened on the line being
// read.
func errLine(err error, s *csvScanner) int {
	if pe, ok := err.(*csv.ParseError); ok {
		return pe.Line
	}
	return s.numLine
}

// parseID parses a tuple identifier from raw bytes without allocating:
// an optional sign followed by 1–18 digits (always within int64 range)
// is handled inline; anything longer or stranger falls back to
// strconv.Atoi semantics via a string copy.
func parseID(b []byte) (int, bool) {
	d := b
	neg := false
	if len(d) > 0 && (d[0] == '-' || d[0] == '+') {
		neg = d[0] == '-'
		d = d[1:]
	}
	if len(d) == 0 || len(d) > 18 {
		return parseIDSlow(b)
	}
	v := 0
	for _, c := range d {
		if c < '0' || c > '9' {
			return parseIDSlow(b)
		}
		v = v*10 + int(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

func parseIDSlow(b []byte) (int, bool) {
	id, err := strconv.Atoi(string(b))
	return id, err == nil
}

// ReadCSVBuffered is the seed (pre-streaming) CSV reader, retained
// verbatim as the differential oracle for IngestCSV and as the
// allocation baseline in paperbench: it materializes one freshly
// allocated string per cell via encoding/csv and inserts row by row.
// Its error line numbers keep the seed's record-based counting (off by
// the number of blank lines and embedded newlines skipped so far);
// ReadCSV/IngestCSV report exact physical lines.
func ReadCSVBuffered(r io.Reader, relationName string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	idCol, wCol := -1, -1
	var attrs []string
	var attrCols []int
	for i, h := range header {
		switch h {
		case "id":
			idCol = i
		case "w":
			wCol = i
		default:
			attrs = append(attrs, h)
			attrCols = append(attrCols, i)
		}
	}
	sc, err := schema.New(relationName, attrs...)
	if err != nil {
		return nil, err
	}
	t := New(sc)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line+1, err)
		}
		line++
		tup := make(Tuple, len(attrCols))
		for i, c := range attrCols {
			tup[i] = rec[c]
		}
		w := 1.0
		if wCol >= 0 {
			w, err = strconv.ParseFloat(rec[wCol], 64)
			if err != nil {
				return nil, fmt.Errorf("table: CSV line %d: bad weight %q", line, rec[wCol])
			}
		}
		if idCol >= 0 {
			id, err := strconv.Atoi(rec[idCol])
			if err != nil {
				return nil, fmt.Errorf("table: CSV line %d: bad id %q", line, rec[idCol])
			}
			if err := t.Insert(id, tup, w); err != nil {
				return nil, err
			}
		} else if _, err := t.Append(tup, w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table with an "id" column first and a "w" column
// last, so that ReadCSV round-trips it.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, t.sc.Attrs()...)
	header = append(header, "w")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.rows {
		rec := make([]string, 0, len(header))
		rec = append(rec, strconv.Itoa(r.ID))
		rec = append(rec, r.Tuple...)
		rec = append(rec, strconv.FormatFloat(r.Weight, 'g', -1, 64))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
