package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/schema"
)

// ReadCSV reads a table from CSV. The header row names the attributes;
// the optional columns "id" (integer identifier) and "w" (positive
// float weight) may appear anywhere and are stripped from the schema.
// Missing ids are assigned sequentially; missing weights default to 1.
func ReadCSV(r io.Reader, relationName string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	idCol, wCol := -1, -1
	var attrs []string
	var attrCols []int
	for i, h := range header {
		switch h {
		case "id":
			idCol = i
		case "w":
			wCol = i
		default:
			attrs = append(attrs, h)
			attrCols = append(attrCols, i)
		}
	}
	sc, err := schema.New(relationName, attrs...)
	if err != nil {
		return nil, err
	}
	t := New(sc)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line+1, err)
		}
		line++
		tup := make(Tuple, len(attrCols))
		for i, c := range attrCols {
			tup[i] = rec[c]
		}
		w := 1.0
		if wCol >= 0 {
			w, err = strconv.ParseFloat(rec[wCol], 64)
			if err != nil {
				return nil, fmt.Errorf("table: CSV line %d: bad weight %q", line, rec[wCol])
			}
		}
		if idCol >= 0 {
			id, err := strconv.Atoi(rec[idCol])
			if err != nil {
				return nil, fmt.Errorf("table: CSV line %d: bad id %q", line, rec[idCol])
			}
			if err := t.Insert(id, tup, w); err != nil {
				return nil, err
			}
		} else if _, err := t.Append(tup, w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table with an "id" column first and a "w" column
// last, so that ReadCSV round-trips it.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, t.sc.Attrs()...)
	header = append(header, "w")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.rows {
		rec := make([]string, 0, len(header))
		rec = append(rec, strconv.Itoa(r.ID))
		rec = append(rec, r.Tuple...)
		rec = append(rec, strconv.FormatFloat(r.Weight, 'g', -1, 64))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
