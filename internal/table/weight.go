package table

import "math"

// weightEps is the tolerance used when comparing float64 tuple weights
// and repair distances. All weight arithmetic in the library is sums and
// differences of user-supplied weights, so a fixed absolute-plus-relative
// tolerance is adequate.
const weightEps = 1e-9

// weightEq reports whether two weights are equal up to tolerance.
func weightEq(a, b float64) bool {
	d := math.Abs(a - b)
	if d <= weightEps {
		return true
	}
	return d <= weightEps*math.Max(math.Abs(a), math.Abs(b))
}

// WeightEq is the exported comparator for packages that compare repair
// costs (tests, benches, the CLI).
func WeightEq(a, b float64) bool { return weightEq(a, b) }

// WeightLess reports a < b beyond tolerance.
func WeightLess(a, b float64) bool { return a < b && !weightEq(a, b) }

// WeightLeq reports a ≤ b up to tolerance.
func WeightLeq(a, b float64) bool { return a < b || weightEq(a, b) }
