package table

import (
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
)

var office = schema.MustNew("Office", "facility", "room", "floor", "city")

func officeFDs(t testing.TB) *fd.Set {
	set, err := fd.ParseSet(office, "facility -> city", "facility room -> floor")
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// fig1T builds table T of Figure 1(a).
func fig1T(t testing.TB) *Table {
	tab := New(office)
	tab.MustInsert(1, Tuple{"HQ", "322", "3", "Paris"}, 2)
	tab.MustInsert(2, Tuple{"HQ", "322", "30", "Madrid"}, 1)
	tab.MustInsert(3, Tuple{"HQ", "122", "1", "Madrid"}, 1)
	tab.MustInsert(4, Tuple{"Lab1", "B35", "3", "London"}, 2)
	return tab
}

func TestInsertValidation(t *testing.T) {
	tab := New(office)
	if err := tab.Insert(1, Tuple{"a"}, 1); err == nil {
		t.Error("wrong arity must be rejected")
	}
	if err := tab.Insert(1, Tuple{"a", "b", "c", "d"}, 0); err == nil {
		t.Error("zero weight must be rejected")
	}
	if err := tab.Insert(1, Tuple{"a", "b", "c", "d"}, -1); err == nil {
		t.Error("negative weight must be rejected")
	}
	tab.MustInsert(1, Tuple{"a", "b", "c", "d"}, 1)
	if err := tab.Insert(1, Tuple{"x", "y", "z", "w"}, 1); err == nil {
		t.Error("duplicate id must be rejected")
	}
	if err := tab.Insert(2, Tuple{"\x00evil", "b", "c", "d"}, 1); err == nil {
		t.Error("reserved value must be rejected")
	}
}

func TestAppendAssignsFreshIDs(t *testing.T) {
	tab := New(office)
	id1, err := tab.Append(Tuple{"a", "b", "c", "d"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab.MustInsert(id1+1, Tuple{"e", "f", "g", "h"}, 1)
	id3, err := tab.Append(Tuple{"i", "j", "k", "l"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 || id3 == id1+1 {
		t.Fatalf("Append reused an id: %d", id3)
	}
}

func TestFig1Properties(t *testing.T) {
	tab := fig1T(t)
	if tab.Len() != 4 {
		t.Fatalf("|T| = %d", tab.Len())
	}
	if !WeightEq(tab.TotalWeight(), 6) {
		t.Errorf("total weight = %v", tab.TotalWeight())
	}
	if !tab.IsDuplicateFree() {
		t.Error("T is duplicate free")
	}
	if tab.IsUnweighted() {
		t.Error("T is weighted")
	}
	set := officeFDs(t)
	if tab.Satisfies(set) {
		t.Error("T violates Δ (Example 2.2)")
	}
}

// TestFig1Subsets reproduces the consistent subsets S1, S2, S3 of
// Figure 1 and their distances from Example 2.3.
func TestFig1Subsets(t *testing.T) {
	tab := fig1T(t)
	set := officeFDs(t)
	cases := []struct {
		name string
		ids  []int
		dist float64
	}{
		{"S1", []int{2, 3, 4}, 2},
		{"S2", []int{1, 4}, 2},
		{"S3", []int{3, 4}, 3},
	}
	for _, c := range cases {
		s := tab.MustSubsetByIDs(c.ids)
		if !s.Satisfies(set) {
			t.Errorf("%s should be consistent", c.name)
		}
		if !s.IsSubsetOf(tab) {
			t.Errorf("%s should be a subset of T", c.name)
		}
		if got := DistSub(s, tab); !WeightEq(got, c.dist) {
			t.Errorf("dist_sub(%s, T) = %v, want %v", c.name, got, c.dist)
		}
	}
}

// TestFig1Updates reproduces the consistent updates U1, U2, U3 of
// Figure 1 and their distances from Example 2.3.
func TestFig1Updates(t *testing.T) {
	tab := fig1T(t)
	set := officeFDs(t)
	facility, _ := office.AttrIndex("facility")
	floor, _ := office.AttrIndex("floor")
	city, _ := office.AttrIndex("city")

	u1 := tab.Clone()
	u1.SetCellInPlace(1, facility, "F01")
	u2 := tab.Clone()
	u2.SetCellInPlace(2, floor, "3")
	u2.SetCellInPlace(2, city, "Paris")
	u2.SetCellInPlace(3, city, "Paris")
	u3 := tab.Clone()
	u3.SetCellInPlace(1, floor, "30")
	u3.SetCellInPlace(1, city, "Madrid")

	cases := []struct {
		name string
		u    *Table
		dist float64
	}{{"U1", u1, 2}, {"U2", u2, 3}, {"U3", u3, 4}}
	for _, c := range cases {
		if !c.u.Satisfies(set) {
			t.Errorf("%s should be consistent", c.name)
		}
		if !c.u.IsUpdateOf(tab) {
			t.Errorf("%s should be an update of T", c.name)
		}
		if got := DistUpd(c.u, tab); !WeightEq(got, c.dist) {
			t.Errorf("dist_upd(%s, T) = %v, want %v", c.name, got, c.dist)
		}
	}
}

func TestGroupByDeterministic(t *testing.T) {
	tab := fig1T(t)
	groups := tab.GroupBy(office.MustSet("facility"))
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0].IDs) != 3 || groups[0].IDs[0] != 1 {
		t.Errorf("first group = %v, want HQ tuples 1,2,3", groups[0].IDs)
	}
	if len(groups[1].IDs) != 1 || groups[1].IDs[0] != 4 {
		t.Errorf("second group = %v, want Lab1 tuple 4", groups[1].IDs)
	}
}

func TestKeyOfCollisionFree(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	all := sc.AllAttrs()
	// "ab"+"c" vs "a"+"bc" must produce different keys.
	k1 := KeyOf(Tuple{"ab", "c"}, all)
	k2 := KeyOf(Tuple{"a", "bc"}, all)
	if k1 == k2 {
		t.Fatal("KeyOf collided on ab|c vs a|bc")
	}
	// Numeric-ish values.
	k3 := KeyOf(Tuple{"1", "11"}, all)
	k4 := KeyOf(Tuple{"11", "1"}, all)
	if k3 == k4 {
		t.Fatal("KeyOf collided on 1|11 vs 11|1")
	}
}

func TestViolationsAndConflictGraph(t *testing.T) {
	tab := fig1T(t)
	set := officeFDs(t)
	vs := tab.Violations(set, 0)
	if len(vs) == 0 {
		t.Fatal("expected violations")
	}
	// In T, tuple 1 conflicts with 2 (floor and city) and with 3 (city).
	edges := tab.ConflictGraph(set)
	want := map[ConflictEdge]bool{{1, 2}: true, {1, 3}: true}
	if len(edges) != len(want) {
		t.Fatalf("conflict edges = %v, want %v", edges, want)
	}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected conflict edge %v", e)
		}
	}
	// Violations with a cap.
	if got := tab.Violations(set, 1); len(got) != 1 {
		t.Errorf("capped violations = %d, want 1", len(got))
	}
}

func TestFreshNeverCollides(t *testing.T) {
	tab := fig1T(t)
	seen := map[Value]bool{}
	for _, r := range tab.Rows() {
		for _, v := range r.Tuple {
			seen[v] = true
		}
	}
	for i := 0; i < 100; i++ {
		f := tab.Fresh()
		if seen[f] {
			t.Fatalf("fresh value %q collides", f)
		}
		seen[f] = true
	}
}

func TestCloneIndependence(t *testing.T) {
	tab := fig1T(t)
	c := tab.Clone()
	c.SetCellInPlace(1, 0, "CHANGED")
	r, _ := tab.Row(1)
	if r.Tuple[0] != "HQ" {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSetCellImmutability(t *testing.T) {
	tab := fig1T(t)
	u, err := tab.SetCell(1, 3, "Rome")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := tab.Row(1)
	if r.Tuple[3] != "Paris" {
		t.Fatal("SetCell mutated the receiver")
	}
	ur, _ := u.Row(1)
	if ur.Tuple[3] != "Rome" {
		t.Fatal("SetCell did not change the copy")
	}
	if _, err := tab.SetCell(99, 0, "x"); err == nil {
		t.Error("SetCell with unknown id should fail")
	}
	if _, err := tab.SetCell(1, 9, "x"); err == nil {
		t.Error("SetCell with bad attribute should fail")
	}
}

func TestSetCellsBatch(t *testing.T) {
	tab := fig1T(t)
	u, err := tab.SetCells([]CellUpdate{
		{ID: 1, Attr: 3, Val: "Rome"},
		{ID: 2, Attr: 3, Val: "Rome"},
		{ID: 1, Attr: 2, Val: "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := tab.Row(1)
	if r.Tuple[3] != "Paris" || r.Tuple[2] != "3" {
		t.Fatal("SetCells mutated the receiver")
	}
	u1, _ := u.Row(1)
	u2, _ := u.Row(2)
	if u1.Tuple[3] != "Rome" || u1.Tuple[2] != "5" || u2.Tuple[3] != "Rome" {
		t.Fatalf("SetCells did not apply all updates: %v %v", u1.Tuple, u2.Tuple)
	}
	if _, err := tab.SetCells([]CellUpdate{{ID: 99, Attr: 0, Val: "x"}}); err == nil {
		t.Error("SetCells with unknown id should fail")
	}
	if _, err := tab.SetCells([]CellUpdate{{ID: 1, Attr: 9, Val: "x"}}); err == nil {
		t.Error("SetCells with bad attribute should fail")
	}
}

func TestSubsetByIDsErrors(t *testing.T) {
	tab := fig1T(t)
	if _, err := tab.SubsetByIDs([]int{1, 99}); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestDistPanics(t *testing.T) {
	tab := fig1T(t)
	other := New(office)
	other.MustInsert(99, Tuple{"x", "y", "z", "w"}, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DistSub of non-subset should panic")
			}
		}()
		DistSub(other, tab)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DistUpd of non-update should panic")
			}
		}()
		DistUpd(other, tab)
	}()
}

func TestStringRendersFresh(t *testing.T) {
	tab := New(office)
	tab.MustInsert(1, Tuple{"HQ", "322", "3", "Paris"}, 2)
	f := tab.Fresh()
	tab.MustInsert(2, Tuple{f, "322", "3", "Paris"}, 1)
	s := tab.String()
	if !strings.Contains(s, "⊥") {
		t.Errorf("String() should render fresh constants with ⊥: %q", s)
	}
	if strings.Contains(s, "\x00") {
		t.Error("String() leaked the reserved prefix")
	}
}

func TestSatisfiesEmptySetAndConsensus(t *testing.T) {
	tab := fig1T(t)
	empty, _ := fd.ParseSet(office)
	if !tab.Satisfies(empty) {
		t.Error("every table satisfies the empty set")
	}
	cons, _ := fd.ParseSet(office, "-> city")
	if tab.Satisfies(cons) {
		t.Error("T has two cities; must violate ∅ → city")
	}
	oneCity := tab.MustSubsetByIDs([]int{2, 3})
	if !oneCity.Satisfies(cons) {
		t.Error("Madrid-only subset satisfies ∅ → city")
	}
}
