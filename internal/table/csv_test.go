package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tab := fig1T(t)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "Office")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), tab.Len())
	}
	for _, r := range tab.Rows() {
		br, ok := back.Row(r.ID)
		if !ok {
			t.Fatalf("id %d missing after round trip", r.ID)
		}
		if !br.Tuple.Equal(r.Tuple) || !WeightEq(br.Weight, r.Weight) {
			t.Fatalf("row %d changed: %v/%v vs %v/%v", r.ID, br.Tuple, br.Weight, r.Tuple, r.Weight)
		}
	}
}

func TestReadCSVDefaults(t *testing.T) {
	in := "A,B\nx,y\nz,w\n"
	tab, err := ReadCSV(strings.NewReader(in), "R")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("rows = %d", tab.Len())
	}
	if !tab.IsUnweighted() {
		t.Error("default weights should be uniform")
	}
	ids := tab.IDs()
	if ids[0] == ids[1] {
		t.Error("ids must be distinct")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"id,A,w\nnope,x,1\n",     // bad id
		"id,A,w\n1,x,zero\n",     // bad weight
		"id,A,w\n1,x,0\n",        // non-positive weight
		"id,A,w\n1,x,1\n1,y,1\n", // duplicate id
		"A,A\nx,y\n",             // duplicate attribute
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "R"); err == nil {
			t.Errorf("ReadCSV(%q) should fail", in)
		}
	}
}
