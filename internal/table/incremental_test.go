package table

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
)

// checkEncodingCanonical asserts the incrementally maintained encoding
// is observably identical to a from-scratch build: same GroupBy output
// (keys and ids, canonical order) and same RowGroups for every tested
// attribute set, and agreeing duplicate-freeness.
func checkEncodingCanonical(t *testing.T, tab *Table, sets []schema.AttrSet, step string) {
	t.Helper()
	fresh := tab.Clone() // drops the encoding; rebuilds canonically
	for _, attrs := range sets {
		if got, want := tab.GroupBy(attrs), fresh.GroupBy(attrs); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: GroupBy(%v) diverged from fresh build\ngot  %v\nwant %v", step, attrs, got, want)
		}
		if got, want := tab.RowGroups(attrs), fresh.RowGroups(attrs); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: RowGroups(%v) diverged from fresh build\ngot  %v\nwant %v", step, attrs, got, want)
		}
	}
	if got, want := tab.IsDuplicateFree(), fresh.IsDuplicateFree(); got != want {
		t.Fatalf("%s: IsDuplicateFree = %v, fresh build says %v", step, got, want)
	}
}

func incrementalTestSets(sc *schema.Schema) []schema.AttrSet {
	return []schema.AttrSet{
		schema.Singleton(0),
		schema.Singleton(1),
		schema.Singleton(0).Add(1),
		schema.Singleton(1).Add(2),
		sc.AllAttrs(),
	}
}

// TestIncrementalAppendMatchesFreshBuild drives random append batches
// through AppendRowsIncremental with the encoding alive and checks it
// against from-scratch builds after every batch — including brand-new
// dictionary values that force packed key widths to overflow.
func TestIncrementalAppendMatchesFreshBuild(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	tab := New(sc)
	rng := rand.New(rand.NewSource(11))
	sets := incrementalTestSets(sc)
	domain := 3 // small start: few codes, narrow packed widths
	tab.MustAppendRows([]Tuple{{"v0", "v0", "v1"}, {"v1", "v2", "v0"}}, nil)
	for step := 0; step < 25; step++ {
		// Touch the encoding so there is something to extend.
		for _, attrs := range sets {
			tab.RowGroups(attrs)
		}
		k := 1 + rng.Intn(6)
		tuples := make([]Tuple, k)
		for i := range tuples {
			tup := make(Tuple, 3)
			for a := range tup {
				// Growing domain: every few steps new values appear, doubling
				// dictionaries until packed key widths overflow and the
				// projection rebuild path runs.
				tup[a] = fmt.Sprintf("v%d", rng.Intn(domain))
			}
			tuples[i] = tup
		}
		domain += 2
		if _, err := tab.AppendRowsIncremental(tuples, nil); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkEncodingCanonical(t, tab, sets, fmt.Sprintf("step %d", step))
	}
}

// TestIncrementalSetCellsMatchesFreshBuild drives random cell-update
// batches through SetCellsIncremental: codes go stale (holes, order
// divergence) while RowGroups must stay canonical.
func TestIncrementalSetCellsMatchesFreshBuild(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	tab := New(sc)
	rng := rand.New(rand.NewSource(5))
	sets := incrementalTestSets(sc)
	tuples := make([]Tuple, 60)
	for i := range tuples {
		tuples[i] = Tuple{
			fmt.Sprintf("v%d", rng.Intn(5)),
			fmt.Sprintf("v%d", rng.Intn(5)),
			fmt.Sprintf("v%d", rng.Intn(5)),
		}
	}
	tab.MustAppendRows(tuples, nil)
	ids := tab.IDs()
	for step := 0; step < 25; step++ {
		for _, attrs := range sets {
			tab.RowGroups(attrs)
		}
		k := 1 + rng.Intn(5)
		updates := make([]CellUpdate, k)
		for i := range updates {
			updates[i] = CellUpdate{
				ID:   ids[rng.Intn(len(ids))],
				Attr: rng.Intn(3),
				Val:  fmt.Sprintf("v%d", rng.Intn(5+step)), // occasionally new
			}
		}
		if err := tab.SetCellsIncremental(updates); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkEncodingCanonical(t, tab, sets, fmt.Sprintf("step %d", step))
	}
}

// TestIncrementalMutatorsValidate pins the all-or-nothing error paths.
func TestIncrementalMutatorsValidate(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	tab := New(sc)
	tab.MustAppendRows([]Tuple{{"x", "y"}}, nil)
	tab.RowGroups(sc.AllAttrs())
	if _, err := tab.AppendRowsIncremental([]Tuple{{"only-one-attr"}}, nil); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if err := tab.SetCellsIncremental([]CellUpdate{{ID: 99, Attr: 0, Val: "z"}}); err == nil {
		t.Fatal("unknown id must fail")
	}
	if err := tab.SetCellsIncremental([]CellUpdate{{ID: 1, Attr: 5, Val: "z"}}); err == nil {
		t.Fatal("attr out of range must fail")
	}
	if tab.Len() != 1 || tab.Rows()[0].Tuple[0] != "x" {
		t.Fatalf("failed mutations must leave the table unchanged: %v", tab.String())
	}
	checkEncodingCanonical(t, tab, incrementalTestSets(sc)[:3], "after-errors")
}

// TestIncrementalColdEncoding: incremental mutators on a table whose
// encoding was never built degrade to the plain mutators (encoding
// builds canonically on first use afterwards).
func TestIncrementalColdEncoding(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	tab := New(sc)
	if _, err := tab.AppendRowsIncremental([]Tuple{{"a", "b"}, {"a", "c"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tab.SetCellsIncremental([]CellUpdate{{ID: 2, Attr: 1, Val: "b"}}); err != nil {
		t.Fatal(err)
	}
	checkEncodingCanonical(t, tab, incrementalTestSets(sc)[:3], "cold")
	if tab.IsDuplicateFree() {
		t.Fatal("rows 1 and 2 are now duplicates")
	}
}

// TestDirtyDictionaryEstimateAndCardinality: after updates erase a
// value's last carrier, the dictionary retains it — DistinctEstimate
// may exceed live counts (callers clamp), while ProjectionCardinality
// reports the snapshot's exact bound without forcing builds.
func TestDirtyDictionaryEstimateAndCardinality(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	tab := New(sc)
	tab.MustAppendRows([]Tuple{{"a1", "b1"}, {"a2", "b2"}, {"a3", "b3"}}, nil)

	if _, ok := tab.ProjectionCardinality(schema.Singleton(0)); ok {
		t.Fatal("cold encoding must not report a cardinality")
	}
	tab.RowGroups(schema.Singleton(0))
	if card, ok := tab.ProjectionCardinality(schema.Singleton(0)); !ok || card != 3 {
		t.Fatalf("cardinality of A = %d,%v; want 3", card, ok)
	}

	// Collapse every A value onto a fresh one: dictionary now holds 4
	// codes, but only one is live.
	var updates []CellUpdate
	for _, id := range tab.IDs() {
		updates = append(updates, CellUpdate{ID: id, Attr: 0, Val: "a9"})
	}
	if err := tab.SetCellsIncremental(updates); err != nil {
		t.Fatal(err)
	}
	if card, _ := tab.ProjectionCardinality(schema.Singleton(0)); card != 4 {
		t.Fatalf("retained dictionary bound = %d; want 4", card)
	}
	if est := tab.DistinctEstimate(); est < 4 {
		t.Fatalf("estimate %d must reflect the retained dictionary", est)
	}
	if got := len(tab.RowGroups(schema.Singleton(0))); got != 1 {
		t.Fatalf("live groups = %d; want 1", got)
	}
	checkEncodingCanonical(t, tab, incrementalTestSets(sc)[:3], "collapsed")
}

// TestImpactViolationTuples pins FDViolationTuples on a hand-checked
// instance: tuples in lhs groups carrying ≥ 2 distinct rhs values.
func TestImpactViolationTuples(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	f := fd.MustParseSet(sc, "A -> B").FDAt(0)
	tab := New(sc)
	tab.MustAppendRows([]Tuple{
		{"a1", "b1"}, {"a1", "b2"}, {"a1", "b1"}, // violating group: 3 tuples
		{"a2", "b1"}, {"a2", "b1"}, // consistent group
		{"a3", "b9"}, // singleton
	}, nil)
	if got := tab.FDViolationTuples(f); got != 3 {
		t.Fatalf("violation tuples = %d; want 3", got)
	}
	// Repairing the violating group clears it.
	if err := tab.SetCellsIncremental([]CellUpdate{{ID: 2, Attr: 1, Val: "b1"}}); err != nil {
		t.Fatal(err)
	}
	if got := tab.FDViolationTuples(f); got != 0 {
		t.Fatalf("violation tuples after fix = %d; want 0", got)
	}
}
