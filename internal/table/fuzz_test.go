package table

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/schema"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV reader
// and that every successfully read table round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("A,B\nx,y\n")
	f.Add("id,A,w\n1,x,2\n")
	f.Add("id,A,w\n1,x,0\n")
	f.Add("A\n\"quoted, value\"\n")
	f.Add("")
	f.Add("id,id\n1,2\n")
	f.Add("A,B\nx\n")
	f.Fuzz(func(t *testing.T, in string) {
		tab, err := ReadCSV(strings.NewReader(in), "F")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV failed on read table: %v", err)
		}
		back, err := ReadCSV(&buf, "F")
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q", err, in)
		}
		if back.Len() != tab.Len() {
			t.Fatalf("round trip changed row count: %d vs %d", back.Len(), tab.Len())
		}
		for _, r := range tab.Rows() {
			br, ok := back.Row(r.ID)
			if !ok || !br.Tuple.Equal(r.Tuple) || !weightEq(br.Weight, r.Weight) {
				t.Fatalf("round trip changed row %d", r.ID)
			}
		}
	})
}

// FuzzKeyOf checks the injectivity contract of the projection key
// encoding on two-attribute tuples.
func FuzzKeyOf(f *testing.F) {
	f.Add("a", "b", "a", "bc")
	f.Add("1", "11", "11", "1")
	f.Add("", "", "", "x")
	f.Fuzz(func(t *testing.T, a1, b1, a2, b2 string) {
		sc := fuzzSchema
		all := sc.AllAttrs()
		t1 := Tuple{a1, b1}
		t2 := Tuple{a2, b2}
		same := a1 == a2 && b1 == b2
		if (KeyOf(t1, all) == KeyOf(t2, all)) != same {
			t.Fatalf("KeyOf injectivity violated: %q/%q vs %q/%q", a1, b1, a2, b2)
		}
	})
}

// fuzzSchema is the fixed two-attribute schema used by FuzzKeyOf.
var fuzzSchema = schema.MustNew("FZ", "A", "B")
