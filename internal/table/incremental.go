package table

// Incremental encoding maintenance for resident sessions
// (fdrepair.Session): the mutators here apply the same row/cell
// changes as AppendRows and SetCellInPlace, but instead of dropping
// the cached dictionary encoding they extend the published snapshot
// under encMu. New rows are interned against the retained per-column
// dictionaries and per-projection key maps — columns already encoded
// are never re-interned — and every affected projection's row grouping
// is rebuilt in canonical first-appearance order, so downstream
// consumers (GroupBy, view grouping, FD checks, the block solver) see
// exactly the state a from-scratch rebuild would produce.
//
// Invariants after an incremental mutation:
//
//   - codes remain valid equality labels in [0, groups); after cell
//     updates, codes may have holes (a value whose last carrier was
//     overwritten) and their numeric order may diverge from
//     first-appearance order — groups is a bound, not a count;
//   - rowGroups is always the canonical grouping: no empty buckets,
//     buckets ordered by first row index, rows ascending within each;
//   - dictionaries only grow; vanished values keep their codes, so the
//     code space (and DistinctEstimate) can exceed the live distinct
//     count — consumers use rowGroups for live counts and groups only
//     as an array bound.

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/schema"
)

// AppendRowsIncremental is AppendRows for mutating resident tables:
// the same bulk append (consecutive fresh identifiers, all-or-nothing
// validation, first assigned identifier returned), but the cached
// encoding is chunk-extended instead of invalidated — only the new
// rows are interned. On a table whose encoding is cold this degrades
// to plain AppendRows (the encoding builds canonically on demand).
func (t *Table) AppendRowsIncremental(tuples []Tuple, weights []float64) (int, error) {
	oldN := len(t.rows)
	first, err := t.appendRows(tuples, weights)
	if err != nil {
		return 0, err
	}
	t.extendEncodingAppend(oldN)
	return first, nil
}

// SetCellsIncremental applies the cell updates in place (in order;
// later updates to the same cell win) and extends the cached encoding:
// final cell values are interned into the retained dictionaries, the
// touched rows are re-coded in every cached projection that mentions
// an updated attribute, and those projections' row groupings are
// rebuilt canonically. Validation is all-or-nothing: on error the
// table is unchanged.
func (t *Table) SetCellsIncremental(updates []CellUpdate) error {
	idx := t.index()
	for _, u := range updates {
		if _, ok := idx[u.ID]; !ok {
			return fmt.Errorf("table: identifier %d not in table", u.ID)
		}
		if u.Attr < 0 || u.Attr >= t.sc.Arity() {
			return fmt.Errorf("table: attribute position %d out of range", u.Attr)
		}
	}
	for _, u := range updates {
		t.rows[idx[u.ID]].Tuple[u.Attr] = u.Val
	}
	t.extendEncodingCells(updates)
	return nil
}

// extendEncodingAppend extends the published encoding (when one
// exists) with the codes of rows [oldN, len(t.rows)).
func (t *Table) extendEncodingAppend(oldN int) {
	if t.enc.Load() == nil {
		return
	}
	t.encMu.Lock()
	defer t.encMu.Unlock()
	e := t.enc.Load()
	if e == nil {
		return
	}
	n := len(t.rows)
	if e.n != oldN {
		// The snapshot does not cover exactly the pre-append rows;
		// nothing to extend from — rebuild lazily.
		t.enc.Store(nil)
		return
	}
	next := e.clone(t.sc.Arity())
	next.n = n
	// Intern the new rows into every built column. Appending within
	// capacity mutates storage beyond the old snapshot's length only,
	// so a reader of the old snapshot (already undefined during a
	// mutation) still sees its own consistent prefix.
	for a := range next.cols {
		col := next.cols[a]
		if col == nil {
			continue
		}
		dict := next.dicts[a]
		for ri := oldN; ri < n; ri++ {
			v := t.rows[ri].Tuple[a]
			c, ok := dict[v]
			if !ok {
				c = int32(len(dict))
				dict[v] = c
			}
			col = append(col, c)
		}
		next.cols[a] = col
		next.card[a] = len(dict)
	}
	for attrs, p := range e.proj {
		next.proj[attrs] = t.extendProjectionAppend(next, p, attrs, oldN)
	}
	t.enc.Store(next)
}

// extendProjectionAppend returns the projection extended with codes
// for rows [oldN, n). Caller holds encMu and owns next (columns
// already extended).
func (t *Table) extendProjectionAppend(next *encoding, p *projection, attrs schema.AttrSet, oldN int) *projection {
	n := len(t.rows)
	pos := attrs.Positions()
	var np *projection
	switch {
	case len(pos) == 0:
		np = &projection{codes: make([]int32, n), groups: 1, dense: true}
	case len(pos) == 1:
		// Single attribute: the projection is the column itself (built
		// above when it existed, from scratch when the projection was
		// cached over an empty table). Appends preserve density (new
		// codes are sequential, old codes keep their carriers), so
		// dense carries over from the pre-append projection.
		col := t.column(next, pos[0])
		np = &projection{codes: col, groups: next.card[pos[0]], dense: p.dense}
	case p.seen == nil && p.sseen == nil:
		// Cached over an empty table: no retained key state to extend.
		return t.buildProjection(next, attrs)
	case p.sseen != nil:
		codes := p.codes
		for ri := oldN; ri < n; ri++ {
			k := KeyOf(t.rows[ri].Tuple, attrs)
			c, ok := p.sseen[k]
			if !ok {
				c = int32(len(p.sseen))
				p.sseen[k] = c
			}
			codes = append(codes, c)
		}
		np = &projection{codes: codes, groups: len(p.sseen), sseen: p.sseen, dense: p.dense}
	default:
		// Packed keys: when a dictionary outgrew its bit width the packed
		// keys change meaning, so the projection rebuilds from scratch —
		// rare (a width grows only when that column's dictionary doubles),
		// so the O(n) rebuild amortizes over the appends that caused it.
		for i, a := range pos {
			if uint(bits.Len(uint(next.card[a]-1))) > p.width[i] {
				return t.buildProjection(next, attrs)
			}
		}
		codes := p.codes
		for ri := oldN; ri < n; ri++ {
			var key uint64
			for i, a := range pos {
				key = key<<p.width[i] | uint64(next.cols[a][ri])
			}
			c, ok := p.seen[key]
			if !ok {
				c = int32(len(p.seen))
				p.seen[key] = c
			}
			codes = append(codes, c)
		}
		np = &projection{codes: codes, groups: len(p.seen), width: p.width, seen: p.seen, dense: p.dense}
	}
	if g := p.rg.Load(); g != nil && g.aligned {
		// Pure appends keep an aligned grouping canonical by
		// construction: an existing code's rows extend its bucket (row
		// indices ascending), and new codes are assigned sequentially so
		// their buckets land at the end in first-appearance order.
		// Extend by direct bucket indexing instead of rebuilding O(n).
		// A grouping that was never materialized (or lost alignment to a
		// cell recode) stays lazy — the next consumer rebuilds it.
		np.rg.Store(&rowGrouping{buckets: extendGroupsAppend(g.buckets, np.codes, oldN), aligned: true})
	}
	return np
}

// extendGroupsAppend extends an aligned grouping (bucket index == code)
// with rows [oldN, len(codes)). The bucket headers are copied — the old
// snapshot keeps its own — but bucket storage is shared: every bucket
// is full-cap sliced, so appending reallocates rather than growing into
// a sibling, and an older snapshot's shorter header never sees rows
// appended past its length.
func extendGroupsAppend(old [][]int32, codes []int32, oldN int) [][]int32 {
	groups := slices.Clone(old)
	for ri := oldN; ri < len(codes); ri++ {
		c := codes[ri]
		if int(c) < len(groups) {
			groups[c] = append(groups[c], int32(ri))
		} else {
			// New codes are assigned sequentially from len(groups), so a
			// first-seen code always lands exactly one past the end.
			groups = append(groups, []int32{int32(ri)})
		}
	}
	return groups
}

// extendEncodingCells re-codes the touched cells in the published
// encoding (when one exists): columns first, then every cached
// projection mentioning an updated attribute.
func (t *Table) extendEncodingCells(updates []CellUpdate) {
	if len(updates) == 0 || t.enc.Load() == nil {
		return
	}
	t.encMu.Lock()
	defer t.encMu.Unlock()
	e := t.enc.Load()
	if e == nil {
		return
	}
	next := e.clone(t.sc.Arity())
	idx := t.index()
	// Intern the final value of every touched cell. Duplicate
	// (row, attr) pairs are idempotent: the code comes from the tuple's
	// current value, not the update record, so later-wins is automatic.
	var touchedAttrs schema.AttrSet
	rowSet := make(map[int32]struct{}, len(updates))
	for _, u := range updates {
		ri := int32(idx[u.ID])
		rowSet[ri] = struct{}{}
		touchedAttrs = touchedAttrs.Add(u.Attr)
		col := next.cols[u.Attr]
		if col == nil {
			continue // column never encoded; builds canonically on demand
		}
		dict := next.dicts[u.Attr]
		v := t.rows[ri].Tuple[u.Attr]
		c, ok := dict[v]
		if !ok {
			c = int32(len(dict))
			dict[v] = c
		}
		col[ri] = c
		next.card[u.Attr] = len(dict)
		next.recoded = next.recoded.Add(u.Attr)
	}
	rows := make([]int32, 0, len(rowSet))
	for ri := range rowSet {
		rows = append(rows, ri)
	}
	slices.Sort(rows)
	for attrs, p := range e.proj {
		if !attrs.Intersects(touchedAttrs) {
			continue // codes and grouping unaffected
		}
		next.proj[attrs] = t.recodeProjectionRows(next, p, attrs, rows)
	}
	t.enc.Store(next)
}

// recodeProjectionRows recomputes the projection codes of the given
// rows from the (already updated) columns and rebuilds the canonical
// row grouping. Caller holds encMu and owns next.
func (t *Table) recodeProjectionRows(next *encoding, p *projection, attrs schema.AttrSet, rows []int32) *projection {
	pos := attrs.Positions()
	var np *projection
	switch {
	case len(pos) == 1:
		if next.cols[pos[0]] == nil {
			return t.buildProjection(next, attrs)
		}
		np = &projection{codes: next.cols[pos[0]], groups: next.card[pos[0]]}
	case p.sseen != nil:
		for _, ri := range rows {
			k := KeyOf(t.rows[ri].Tuple, attrs)
			c, ok := p.sseen[k]
			if !ok {
				c = int32(len(p.sseen))
				p.sseen[k] = c
			}
			p.codes[ri] = c
		}
		np = &projection{codes: p.codes, groups: len(p.sseen), sseen: p.sseen}
	case p.seen == nil:
		// No retained key state (cached over an empty table).
		return t.buildProjection(next, attrs)
	default:
		for i, a := range pos {
			if uint(bits.Len(uint(next.card[a]-1))) > p.width[i] {
				return t.buildProjection(next, attrs)
			}
		}
		for _, ri := range rows {
			var key uint64
			for i, a := range pos {
				key = key<<p.width[i] | uint64(next.cols[a][ri])
			}
			c, ok := p.seen[key]
			if !ok {
				c = int32(len(p.seen))
				p.seen[key] = c
			}
			p.codes[ri] = c
		}
		np = &projection{codes: p.codes, groups: len(p.seen), width: p.width, seen: p.seen}
	}
	// Cell recodes can orphan a code or break first-appearance order, so
	// the grouping is dropped back to lazy and dense stays false (the
	// struct literals above leave it unset); the next consumer rebuilds
	// the grouping — and re-derives alignment — from the recoded labels.
	return np
}
