package table

import (
	"reflect"
	"testing"

	"repro/internal/schema"
)

// Regression test: a single-attribute projection built for the first
// time AFTER SetCellsIncremental has recoded that column must not be
// marked dense. The recode rewrites column codes in place, which can
// orphan a code (no remaining carrier) and break first-appearance
// order; a projection that still claims density sends grouping through
// denseGroups, which panics on the orphaned code's empty bucket and
// would return buckets out of canonical order even when it survives.
// The encoding records recoded columns (encoding.recoded) and builds
// their projections non-dense, so canonicalGroups re-derives the true
// shape. Pinned against a from-scratch table as the oracle.
func TestGroupByAfterIncrementalColumnRecode(t *testing.T) {
	sc, _ := schema.New("T", "A", "B")
	tab := New(sc)
	tab.MustInsert(1, Tuple{"x", "p"}, 1)
	tab.MustInsert(2, Tuple{"y", "q"}, 1)
	tab.MustInsert(3, Tuple{"x", "r"}, 1)

	// Cache the multi-attribute projection {A,B}: this encodes column A
	// (codes x=0, y=1) without caching the single-attribute {A}
	// projection, so the {A} build below is the column's first.
	ab := schema.Singleton(0).Union(schema.Singleton(1))
	tab.ProjectionCodes(ab)

	// Recode every "x" to "y": code 0 ("x") loses its last carrier —
	// column A's codes become [1,1,1], with code 0 orphaned and code 1
	// first-appearing before it.
	if err := tab.SetCellsIncremental([]CellUpdate{{ID: 1, Attr: 0, Val: "y"}, {ID: 3, Attr: 0, Val: "y"}}); err != nil {
		t.Fatal(err)
	}

	// First-ever request of the single-attribute {A} grouping.
	got := tab.GroupBy(schema.Singleton(0))

	// A from-scratch table with the same final rows is the oracle.
	fresh := New(sc)
	fresh.MustInsert(1, Tuple{"y", "p"}, 1)
	fresh.MustInsert(2, Tuple{"y", "q"}, 1)
	fresh.MustInsert(3, Tuple{"y", "r"}, 1)
	want := fresh.GroupBy(schema.Singleton(0))

	if len(got) != len(want) {
		t.Fatalf("group count diverges: incremental %d vs from-scratch %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].IDs, want[i].IDs) {
			t.Fatalf("group %d diverges: %v vs %v", i, got[i].IDs, want[i].IDs)
		}
	}
}
