package table

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

func TestDiffSubset(t *testing.T) {
	tab := fig1T(t)
	sub := tab.MustSubsetByIDs([]int{1, 4})
	d, err := DiffTables(tab, sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Deleted) != 2 || d.Deleted[0] != 2 || d.Deleted[1] != 3 {
		t.Fatalf("deleted = %v", d.Deleted)
	}
	if len(d.Changed) != 0 {
		t.Fatalf("changed = %v", d.Changed)
	}
	out := d.Render(office)
	if !strings.Contains(out, "- delete tuple 2") {
		t.Errorf("render = %q", out)
	}
}

func TestDiffUpdate(t *testing.T) {
	tab := fig1T(t)
	u := tab.Clone()
	u.SetCellInPlace(1, 3, "Rome")
	fresh := u.Fresh()
	u.SetCellInPlace(2, 0, fresh)
	d, err := DiffTables(tab, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Deleted) != 0 || len(d.Changed) != 2 {
		t.Fatalf("diff = %+v", d)
	}
	out := d.Render(office)
	if !strings.Contains(out, "city: Paris → Rome") {
		t.Errorf("render = %q", out)
	}
	if !strings.Contains(out, "⊥") || strings.Contains(out, "\x00") {
		t.Errorf("fresh value rendering wrong: %q", out)
	}
}

func TestDiffEmptyAndErrors(t *testing.T) {
	tab := fig1T(t)
	d, err := DiffTables(tab, tab.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEmpty() || d.Render(office) != "(no changes)\n" {
		t.Fatalf("identity diff = %+v", d)
	}
	// Unknown id in the repair.
	other := New(office)
	other.MustInsert(99, Tuple{"x", "y", "z", "w"}, 1)
	if _, err := DiffTables(tab, other); err == nil {
		t.Error("unknown id must be rejected")
	}
	// Schema mismatch.
	alt := New(schema.MustNew("X", "P"))
	if _, err := DiffTables(tab, alt); err == nil {
		t.Error("schema mismatch must be rejected")
	}
}
