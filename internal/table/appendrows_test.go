package table

import (
	"fmt"
	"testing"

	"repro/internal/schema"
)

// TestAppendRowsMatchesInsertLoop: the bulk path is observationally
// identical to a loop of Append calls — same identifiers, rows,
// weights and grouping behavior.
func TestAppendRowsMatchesInsertLoop(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	tuples := make([]Tuple, 100)
	weights := make([]float64, 100)
	for i := range tuples {
		tuples[i] = Tuple{fmt.Sprintf("a%d", i%7), fmt.Sprintf("b%d", i%3)}
		weights[i] = float64(1 + i%5)
	}

	loop := New(sc)
	for i, tup := range tuples {
		if _, err := loop.Append(tup, weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	bulk := New(sc)
	first, err := bulk.AppendRows(tuples, weights)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first id = %d, want 1", first)
	}
	if !bulk.IsSubsetOf(loop) || !loop.IsSubsetOf(bulk) {
		t.Fatal("bulk and loop tables differ")
	}
	// The watermark must be advanced past the batch.
	id, err := bulk.Append(Tuple{"x", "y"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id != 101 {
		t.Fatalf("post-batch Append id = %d, want 101", id)
	}
	// Mixed usage: a second batch lands after everything else.
	if first := bulk.MustAppendRows(tuples[:3], nil); first != 102 {
		t.Fatalf("second batch first id = %d, want 102", first)
	}
	if w := bulk.Weight(102); w != 1 {
		t.Fatalf("nil-weights batch weight = %v, want 1", w)
	}
}

// TestAppendRowsValidation: errors leave the table untouched.
func TestAppendRowsValidation(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	base := New(sc)
	base.MustInsert(1, Tuple{"a", "b"}, 2)

	for name, tc := range map[string]struct {
		tuples  []Tuple
		weights []float64
	}{
		"arity":           {[]Tuple{{"a"}}, nil},
		"weight-count":    {[]Tuple{{"a", "b"}}, []float64{1, 2}},
		"non-positive":    {[]Tuple{{"a", "b"}}, []float64{0}},
		"reserved-value":  {[]Tuple{{"\x00zz", "b"}}, nil},
		"later-entry-bad": {[]Tuple{{"a", "b"}, {"c"}}, nil},
	} {
		if _, err := base.AppendRows(tc.tuples, tc.weights); err == nil {
			t.Fatalf("%s: want error", name)
		}
		if base.Len() != 1 {
			t.Fatalf("%s: failed AppendRows mutated the table to %d rows", name, base.Len())
		}
	}
}
