package table

// Cardinality sketches for streaming ingestion. The chunked builder
// feeds every row's projection keys through one CardSketch per tracked
// attribute set (attribute pairs and the full tuple; single attributes
// are exact from the interning dictionaries), so an ingested table can
// answer "how many distinct projections will this group-by produce?"
// before any projection is materialized. The estimates drive scratch
// pre-sizing only — solve.Hints / solve.Ctx.ProjectionCard — never
// correctness: an off-by-some estimate costs one slice growth, not a
// wrong repair.

import (
	"math"
	"math/bits"

	"repro/internal/schema"
)

const (
	// sketchExactMax is the distinct-key count up to which a sketch
	// stays exact (a small hash set). Most attribute pairs of real
	// tables land here and report exact counts.
	sketchExactMax = 4096
	// sketchP is the HLL precision: 2^sketchP registers once a sketch
	// overflows the exact stage (4 KiB per overflowed sketch).
	sketchP = 12
	// sketchMaxArity bounds the attribute count for which pair sketches
	// are built: C(k,2)+1 sketches per table stays small for k ≤ 8.
	sketchMaxArity = 8
)

// CardSketch estimates the number of distinct 64-bit keys offered to
// Add. It is exact (a small set of the hashed keys) up to
// sketchExactMax distinct keys and degrades to an HLL-style register
// estimator beyond that, so tracking a 10M-distinct column costs 4 KiB,
// not a 10M-entry map. Add must be called with well-mixed hashes
// (mix64); the zero value is not ready — use newCardSketch.
//
// Not safe for concurrent use while being built; read-only Estimate
// calls after building are safe to share.
type CardSketch struct {
	exact map[uint64]struct{}
	regs  []uint8
}

func newCardSketch() *CardSketch {
	return &CardSketch{exact: make(map[uint64]struct{}, 64)}
}

// Add offers one hashed key to the sketch.
func (s *CardSketch) Add(h uint64) {
	if s.regs == nil {
		if _, ok := s.exact[h]; ok {
			return
		}
		if len(s.exact) < sketchExactMax {
			s.exact[h] = struct{}{}
			return
		}
		// Overflow: fold the exact stage into registers and continue
		// as an HLL estimator.
		s.regs = make([]uint8, 1<<sketchP)
		for k := range s.exact {
			s.addReg(k)
		}
		s.exact = nil
	}
	s.addReg(h)
}

func (s *CardSketch) addReg(h uint64) {
	idx := h >> (64 - sketchP)
	// Rank of the first set bit in the remaining stream, 1-based and
	// capped so it fits a register.
	rho := uint8(bits.LeadingZeros64(h<<sketchP|1<<(sketchP-1))) + 1
	if rho > s.regs[idx] {
		s.regs[idx] = rho
	}
}

// Estimate returns the estimated distinct-key count: exact while the
// sketch has not overflowed, the standard HLL estimate (with
// linear-counting correction for the sparse range) afterwards.
func (s *CardSketch) Estimate() int {
	if s.regs == nil {
		return len(s.exact)
	}
	m := float64(len(s.regs))
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	// alpha_m for m = 4096.
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return int(est + 0.5)
}

// Exact reports whether Estimate is an exact count (the sketch never
// overflowed its exact stage).
func (s *CardSketch) Exact() bool { return s.regs == nil }

// mix64 is a splitmix64 finalizer: a cheap, deterministic 64-bit mixer
// turning structured projection keys (packed dictionary codes) into
// uniformly distributed hashes for the sketches.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// tableSketches is the per-table sketch set an ingestion attaches: one
// CardSketch per tracked multi-attribute set. Immutable once attached.
type tableSketches struct {
	bySet map[schema.AttrSet]*CardSketch
}

// SketchCardinality returns the sketch estimate of the distinct count
// of the projection onto attrs, when the table carries an ingestion
// sketch for exactly that attribute set. Estimates are for scratch
// pre-sizing; they are exact below the sketch's overflow threshold and
// within a few percent beyond it.
func (t *Table) SketchCardinality(attrs schema.AttrSet) (card int, ok bool) {
	sk := t.sk.Load()
	if sk == nil {
		return 0, false
	}
	s, ok := sk.bySet[attrs]
	if !ok {
		return 0, false
	}
	return s.Estimate(), true
}

// CardSource returns a per-projection cardinality source for
// solve.Hints, or nil when the table carries no ingestion sketches.
// Resolution order per queried attribute set: the live encoding's
// exact dictionary/projection counts (ProjectionCardinality), then the
// ingestion sketch for that exact set, then the saturating product of
// the single-attribute dictionary sizes (a hard upper bound on any
// projection). Estimates feed capacity pre-sizing only, and
// solve.Ctx.ProjectionCard additionally clamps every answer to the
// scope's row count.
func (t *Table) CardSource() func(schema.AttrSet) (int, bool) {
	if t.sk.Load() == nil {
		return nil
	}
	return func(attrs schema.AttrSet) (int, bool) {
		if card, ok := t.ProjectionCardinality(attrs); ok {
			return card, true
		}
		if card, ok := t.SketchCardinality(attrs); ok {
			return card, true
		}
		// Product of single-attribute cardinalities: an upper bound on
		// the projection's distinct count, saturating well past any
		// useful pre-size (the caller clamps to the row count).
		e := t.enc.Load()
		if e == nil {
			return 0, false
		}
		prod := 1
		for _, a := range attrs.Positions() {
			if e.cols[a] == nil {
				return 0, false
			}
			if prod *= e.card[a]; prod > 1<<31 || prod < 0 {
				return 1 << 31, true
			}
		}
		return prod, true
	}
}
