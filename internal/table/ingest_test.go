package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
)

// ingestTablesEqual fails the test unless the two tables are
// byte-identical in everything observable: schema, row ids, tuples,
// weights, the id watermark, and — when both encodings are forced —
// the dictionary codes of every singleton and the full attribute set.
func ingestTablesEqual(t *testing.T, got, want *Table, in string) {
	t.Helper()
	if gs, ws := got.Schema().String(), want.Schema().String(); gs != ws {
		t.Fatalf("schema mismatch: %s vs %s\ninput: %q", gs, ws, in)
	}
	if got.Len() != want.Len() {
		t.Fatalf("row count mismatch: %d vs %d\ninput: %q", got.Len(), want.Len(), in)
	}
	for i := range want.rows {
		g, w := got.rows[i], want.rows[i]
		if g.ID != w.ID || g.Weight != w.Weight || !g.Tuple.Equal(w.Tuple) {
			t.Fatalf("row %d mismatch: %+v vs %+v\ninput: %q", i, g, w, in)
		}
	}
	if got.nextID != want.nextID {
		t.Fatalf("nextID mismatch: %d vs %d\ninput: %q", got.nextID, want.nextID, in)
	}
	// The ingested table publishes its encoding eagerly; it must agree
	// code-for-code with the lazily built one.
	var all schema.AttrSet
	for a := 0; a < want.Schema().Arity(); a++ {
		all = all.Union(schema.Singleton(a))
		checkCodesEqual(t, got, want, schema.Singleton(a), in)
	}
	if want.Schema().Arity() > 1 {
		checkCodesEqual(t, got, want, all, in)
	}
}

func checkCodesEqual(t *testing.T, got, want *Table, attrs schema.AttrSet, in string) {
	t.Helper()
	gc, gg := got.ProjectionCodes(attrs)
	wc, wg := want.ProjectionCodes(attrs)
	if gg != wg {
		t.Fatalf("projection %v group count mismatch: %d vs %d\ninput: %q", attrs, gg, wg, in)
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("projection %v code mismatch at row %d: %d vs %d\ninput: %q", attrs, i, gc[i], wc[i], in)
		}
	}
}

// TestIngestCSVMatchesBufferedFixed pins IngestCSV against the seed
// reader on the corner cases the streaming scanner must replicate:
// quoted fields with embedded commas/newlines/quotes, id/w columns in
// odd positions, blank and all-space lines, CRLF endings, leading
// space before quoted and unquoted fields, and missing id/w columns.
func TestIngestCSVMatchesBufferedFixed(t *testing.T) {
	inputs := []string{
		"A,B\nx,y\nz,w\n",
		"id,A,w\n1,x,2\n2,y,0.5\n",
		"w,A,id\n1,x,10\n2,y,3\n",                       // odd column order
		"A,id,B\nx,5,y\nz,2,q\n",                        // id in the middle, no w
		"A,B\n\"a,b\",\"c\nd\"\n\"say \"\"hi\"\"\",z\n", // commas, newlines, quotes
		"A,B\n\nx,y\n\n\nz,w\n\n",                       // blank lines everywhere
		"A,B\r\nx,y\r\nz,w\r\n",                         // CRLF
		"A,B\n  x,  \"y\"\n\" z\",q\n",                  // leading space, quoted & not
		"A\n\"multi\nline\nvalue\"\nplain\n",            // record spanning 3 lines
		"id,A,w\n3,x,1\n1,y,1\n2,z,1\n",                 // out-of-order ids
		"id,A,w\n-5,x,1\n0,y,1\n7,z,1\n",                // negative and zero ids
		"A,B\nx,y",                                      // no trailing newline
		"A,B\n\"x\",\"y\"",                              // quoted, no trailing newline
		"id,w\n1,2\n2,3\n",                              // zero attributes
		"A\n\n\n",                                       // header only plus blanks
		"A, B\nx, y\n",                                  // space after comma (trimmed)
		"héllo,wörld\nä,ö\n",                            // non-ASCII
	}
	for _, in := range inputs {
		want, werr := ReadCSVBuffered(strings.NewReader(in), "R")
		got, gerr := IngestCSV(strings.NewReader(in), "R")
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("outcome mismatch: buffered=%v ingest=%v\ninput: %q", werr, gerr, in)
		}
		if werr != nil {
			continue
		}
		ingestTablesEqual(t, got, want, in)
	}
}

// csvGenValues is the value pool for the randomized differential test:
// plain values, quote-requiring values, and whitespace edge cases.
var csvGenValues = []string{
	"", "x", "hello", "v1", "v2", "v3",
	"a,b", "line1\nline2", `say "hi"`, "a\r\nb",
	" lead", "trail ", "  ", "héllo", "0", "-1", "nope",
}

// writeCSVField appends one field, quoting when the value demands it
// and randomly quoting (valid) plain values.
func writeCSVField(sb *strings.Builder, v string, r *rand.Rand) {
	must := strings.ContainsAny(v, ",\"\n\r") || strings.HasPrefix(v, " ")
	if must || r.Intn(5) == 0 {
		sb.WriteByte('"')
		sb.WriteString(strings.ReplaceAll(v, `"`, `""`))
		sb.WriteByte('"')
		return
	}
	sb.WriteString(v)
}

// TestIngestCSVDifferentialRandom generates randomized CSVs — shuffled
// id/w column positions, quoted fields with embedded separators, blank
// lines, occasional bad ids/weights/duplicates — and requires
// IngestCSV and the seed ReadCSVBuffered to agree: identical tables on
// success, failure on both sides otherwise.
func TestIngestCSVDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(181))
	for iter := 0; iter < 400; iter++ {
		nattr := 1 + r.Intn(4)
		cols := make([]string, nattr)
		for i := range cols {
			cols[i] = string(rune('A' + i))
		}
		if r.Intn(2) == 0 {
			cols = append(cols[:r.Intn(len(cols)+1)], append([]string{"id"}, cols[r.Intn(len(cols)+1):]...)...)
		}
		if r.Intn(2) == 0 {
			cols = append(cols[:r.Intn(len(cols)+1)], append([]string{"w"}, cols[r.Intn(len(cols)+1):]...)...)
		}
		var sb strings.Builder
		for i, c := range cols {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
		nrows := r.Intn(30)
		nextID := 1 + r.Intn(3)
		for row := 0; row < nrows; row++ {
			if r.Intn(10) == 0 {
				sb.WriteByte('\n') // blank line
			}
			for i, c := range cols {
				if i > 0 {
					sb.WriteByte(',')
				}
				switch c {
				case "id":
					switch r.Intn(12) {
					case 0:
						sb.WriteString("bad-id")
					case 1:
						sb.WriteString(fmt.Sprint(1 + r.Intn(nextID))) // likely duplicate
					default:
						sb.WriteString(fmt.Sprint(nextID))
						nextID += 1 + r.Intn(3)
					}
				case "w":
					switch r.Intn(12) {
					case 0:
						sb.WriteString("zero")
					case 1:
						sb.WriteString("0")
					default:
						sb.WriteString([]string{"1", "2", "0.5", "1e2", "3.25"}[r.Intn(5)])
					}
				default:
					writeCSVField(&sb, csvGenValues[r.Intn(len(csvGenValues))], r)
				}
			}
			if row < nrows-1 || r.Intn(2) == 0 {
				sb.WriteByte('\n')
			}
		}
		if r.Intn(5) == 0 {
			sb.WriteByte('\n') // trailing blank line
		}
		in := sb.String()
		want, werr := ReadCSVBuffered(strings.NewReader(in), "R")
		got, gerr := IngestCSV(strings.NewReader(in), "R")
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("outcome mismatch: buffered=%v ingest=%v\ninput: %q", werr, gerr, in)
		}
		if werr != nil {
			continue
		}
		ingestTablesEqual(t, got, want, in)
	}
}

// TestIngestCSVLineNumbers pins the physical line numbers in ReadCSV
// error messages — including across quoted fields containing newlines
// and skipped blank lines, where the seed's record-based counting was
// off.
func TestIngestCSVLineNumbers(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{
			"bad weight, simple",
			"id,A,w\n1,x,zero\n",
			`table: CSV line 2: bad weight "zero"`,
		},
		{
			"bad id, simple",
			"id,A,w\n1,x,1\nnope,y,1\n",
			`table: CSV line 3: bad id "nope"`,
		},
		{
			"bad weight after multi-line quoted record",
			"id,A,w\n1,\"x\ny\",1\n2,b,zero\n",
			`table: CSV line 4: bad weight "zero"`,
		},
		{
			"bad id after blank lines",
			"id,A,w\n\n\n1,a,1\nx,b,1\n",
			`table: CSV line 5: bad id "x"`,
		},
		{
			// The bad field physically sits on line 4 even though its
			// record starts on line 2: the message points at the field.
			"bad id inside multi-line record",
			"A,id,w\n\"x\nyy\nzz\",nope,1\n",
			`table: CSV line 4: bad id "nope"`,
		},
		{
			"field count, after blank line",
			"A,B\n\nx\n",
			"table: reading CSV line 3: ",
		},
		{
			"bare quote",
			"A,B\nx,y\nbad\"q,z\n",
			"table: reading CSV line 3: ",
		},
	}
	for _, tc := range cases {
		_, err := ReadCSV(strings.NewReader(tc.in), "R")
		if err == nil {
			t.Errorf("%s: ReadCSV(%q) should fail", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}

	// The streaming scanner reuses encoding/csv's sentinel errors, so
	// errors.Is keeps working across both paths.
	if _, err := ReadCSV(strings.NewReader("A,B\nx\n"), "R"); !errors.Is(err, csv.ErrFieldCount) {
		t.Errorf("field-count error not errors.Is(csv.ErrFieldCount): %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("A\n\"open\n"), "R"); !errors.Is(err, csv.ErrQuote) {
		t.Errorf("unterminated quote not errors.Is(csv.ErrQuote): %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("A\nx\"y\n"), "R"); !errors.Is(err, csv.ErrBareQuote) {
		t.Errorf("bare quote not errors.Is(csv.ErrBareQuote): %v", err)
	}
}

// TestIngestSketches checks the cardinality sketches an ingestion
// attaches: exact counts below the overflow threshold, close estimates
// above it, and invalidation on mutation.
func TestIngestSketches(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("A,B,C\n")
	n := 6000
	for i := 0; i < n; i++ {
		// |A| = 50, |B| = 120, |AB| = 6000 distinct pairs (> overflow),
		// |AC|, |BC| and |ABC| small.
		fmt.Fprintf(&sb, "a%d,b%d,c%d\n", i%50, i/50, i%7)
	}
	tab, err := IngestCSV(strings.NewReader(sb.String()), "R")
	if err != nil {
		t.Fatal(err)
	}
	ab := schema.Singleton(0).Union(schema.Singleton(1))
	ac := schema.Singleton(0).Union(schema.Singleton(2))
	abc := ab.Union(schema.Singleton(2))

	if est, ok := tab.SketchCardinality(ac); !ok || est != 50*7 {
		t.Errorf("AC sketch = %d, %v; want exact %d", est, ok, 50*7)
	}
	if est, ok := tab.SketchCardinality(ab); !ok {
		t.Error("AB sketch missing")
	} else if ratio := float64(est) / float64(n); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("AB sketch estimate %d for true %d (off by more than 10%%)", est, n)
	}
	cs := tab.CardSource()
	if cs == nil {
		t.Fatal("CardSource nil after ingestion")
	}
	if card, ok := cs(abc); !ok || card <= 0 {
		t.Errorf("CardSource(ABC) = %d, %v", card, ok)
	}
	// Singles resolve exactly through the published encoding.
	if card, ok := cs(schema.Singleton(1)); !ok || card != 120 {
		t.Errorf("CardSource(B) = %d, %v; want 120", card, ok)
	}

	// Plain mutation drops the sketches with the encoding.
	if err := tab.Insert(100000, Tuple{"zz", "zz", "zz"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.SketchCardinality(ab); ok {
		t.Error("sketch survived mutation")
	}
	if tab.CardSource() != nil {
		t.Error("CardSource survived mutation")
	}
}

// TestChunkedBuilderBoundaries drives the builder across chunk
// boundaries and through the duplicate-id fallback.
func TestChunkedBuilderBoundaries(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	b := NewChunkedBuilder(sc)
	n := chunkRows*2 + 137
	for i := 0; i < n; i++ {
		cells := [][]byte{[]byte(fmt.Sprintf("a%d", i%97)), []byte(fmt.Sprintf("b%d", i%31))}
		if err := b.AppendAuto(cells, 1); err != nil {
			t.Fatal(err)
		}
	}
	tab := b.Flush()
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i, r := range tab.Rows() {
		if r.ID != i+1 {
			t.Fatalf("row %d has id %d", i, r.ID)
		}
		if want := fmt.Sprintf("a%d", i%97); r.Tuple[0] != want {
			t.Fatalf("row %d A = %q, want %q", i, r.Tuple[0], want)
		}
	}
	codes, groups := tab.ProjectionCodes(schema.Singleton(0))
	if groups != 97 || len(codes) != n {
		t.Fatalf("A projection: %d groups, %d codes", groups, len(codes))
	}

	// Out-of-order ids trip the map fallback; duplicates are rejected
	// with Insert's message.
	b2 := NewChunkedBuilder(sc)
	for _, id := range []int{10, 20, 5, 7, 30} {
		if err := b2.Append(id, [][]byte{[]byte("x"), []byte("y")}, 1); err != nil {
			t.Fatal(err)
		}
	}
	err := b2.Append(20, [][]byte{[]byte("x"), []byte("y")}, 1)
	if err == nil || !strings.Contains(err.Error(), "duplicate tuple identifier 20") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
	tab2 := b2.Flush()
	if tab2.nextID != 31 {
		t.Fatalf("nextID = %d, want 31", tab2.nextID)
	}
}

// FuzzChunkedBuilder is the differential fuzz target for the streaming
// ingestion path: on arbitrary input, IngestCSV must agree with the
// seed ReadCSVBuffered — same accept/reject outcome, identical tables
// on accept — and never panic.
func FuzzChunkedBuilder(f *testing.F) {
	f.Add("A,B\nx,y\n")
	f.Add("id,A,w\n1,x,2\n")
	f.Add("w,id,A\n2,1,x\n")
	f.Add("A,B\n\"a,b\",\"c\nd\"\n")
	f.Add("A\n\"say \"\"hi\"\"\"\n")
	f.Add("A,B\r\nx,y\r\n")
	f.Add("id,A\n3,x\n1,y\n3,z\n")
	f.Add("A\n\n\nx\n\n")
	f.Add("A,B\nx\n")
	f.Add("A\n\"open\n")
	f.Add("id,w\n1,2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		want, werr := ReadCSVBuffered(strings.NewReader(in), "F")
		got, gerr := IngestCSV(strings.NewReader(in), "F")
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("outcome mismatch: buffered=%v ingest=%v\ninput: %q", werr, gerr, in)
		}
		if werr != nil {
			return
		}
		if got.Len() != want.Len() {
			t.Fatalf("row count mismatch: %d vs %d\ninput: %q", got.Len(), want.Len(), in)
		}
		for i := range want.rows {
			g, w := got.rows[i], want.rows[i]
			if g.ID != w.ID || g.Weight != w.Weight || !g.Tuple.Equal(w.Tuple) {
				t.Fatalf("row %d mismatch: %+v vs %+v\ninput: %q", i, g, w, in)
			}
		}
		if got.nextID != want.nextID {
			t.Fatalf("nextID mismatch: %d vs %d\ninput: %q", got.nextID, want.nextID, in)
		}
	})
}
