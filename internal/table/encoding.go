package table

import (
	"math/bits"

	"repro/internal/schema"
)

// The dictionary encoding turns every column into a dense []int32 of
// value codes (assigned by first appearance), and every projection onto
// an attribute set into a dense []int32 of group codes. Two rows get
// equal projection codes iff their projections are equal, so the repair
// algorithms compare and hash fixed-width integers instead of building
// length-prefixed strings per row (KeyOf) on every GroupBy /
// Violations / ConflictGraph call.
//
// The encoding is built lazily and published copy-on-write through an
// atomic pointer: lookups are lock-free (the parallel block solver hits
// this path constantly), builds take the table's encMu and publish a
// fresh immutable snapshot, and any table mutation drops the snapshot.

// projection is the dictionary code of one attribute-set projection:
// codes[rowIndex] identifies the row's projection, codes are dense in
// [0, groups) and assigned in order of first appearance, so iterating
// rows in insertion order visits group codes in increasing order of
// first occurrence. rowGroups buckets the row indices by code, in code
// order; all buckets share one backing array. Immutable after build.
type projection struct {
	codes     []int32
	groups    int
	rowGroups [][]int32
}

// encoding holds the per-column dictionaries and the cached projections
// of one table snapshot. A published *encoding is immutable; builds
// replace it wholesale.
type encoding struct {
	cols [][]int32 // per attribute: value code per row (nil until needed)
	card []int     // per attribute: dictionary size
	proj map[schema.AttrSet]*projection
}

// invalidate drops the cached encoding; called by every mutation.
func (t *Table) invalidate() {
	t.enc.Store(nil)
}

// projection returns the cached projection for attrs, building (and
// publishing) encoding state as needed. Lock-free on cache hits; safe
// for concurrent use. The returned projection is immutable.
func (t *Table) projection(attrs schema.AttrSet) *projection {
	if e := t.enc.Load(); e != nil {
		if p, ok := e.proj[attrs]; ok {
			return p
		}
	}
	t.encMu.Lock()
	defer t.encMu.Unlock()
	old := t.enc.Load()
	if old != nil {
		if p, ok := old.proj[attrs]; ok {
			return p
		}
	}
	// Copy-on-write: extend the snapshot without mutating the published
	// one. Column slices are themselves immutable once built, so the
	// copies share them.
	k := t.sc.Arity()
	next := &encoding{
		cols: make([][]int32, k),
		card: make([]int, k),
		proj: make(map[schema.AttrSet]*projection),
	}
	if old != nil {
		copy(next.cols, old.cols)
		copy(next.card, old.card)
		for a, p := range old.proj {
			next.proj[a] = p
		}
	}
	p := t.buildProjection(next, attrs)
	next.proj[attrs] = p
	t.enc.Store(next)
	return p
}

// column builds (once) and returns the value codes of one attribute.
// Caller must hold encMu and own e (not yet published).
func (t *Table) column(e *encoding, a int) []int32 {
	if e.cols[a] != nil {
		return e.cols[a]
	}
	col := make([]int32, len(t.rows))
	dict := make(map[Value]int32, len(t.rows))
	for ri := range t.rows {
		v := t.rows[ri].Tuple[a]
		c, ok := dict[v]
		if !ok {
			c = int32(len(dict))
			dict[v] = c
		}
		col[ri] = c
	}
	e.cols[a] = col
	e.card[a] = len(dict)
	return col
}

// buildProjection computes the dense group codes of the projection onto
// attrs, plus the whole-table row grouping. Caller must hold encMu and
// own e.
func (t *Table) buildProjection(e *encoding, attrs schema.AttrSet) *projection {
	n := len(t.rows)
	if n == 0 {
		return &projection{}
	}
	pos := attrs.Positions()
	var p *projection
	switch len(pos) {
	case 0:
		p = &projection{codes: make([]int32, n), groups: 1}
	case 1:
		col := t.column(e, pos[0])
		p = &projection{codes: col, groups: e.card[pos[0]]}
	default:
		p = t.buildMultiProjection(e, attrs, pos)
	}
	p.rowGroups = bucketByCode(p.codes, p.groups)
	return p
}

// buildMultiProjection packs the per-column codes of a multi-attribute
// projection into one uint64 key when the dictionary widths fit (they
// essentially always do), assigning dense group codes by first
// appearance; pathologically wide projections fall back to string keys.
func (t *Table) buildMultiProjection(e *encoding, attrs schema.AttrSet, pos []int) *projection {
	n := len(t.rows)
	width := make([]uint, len(pos))
	total := uint(0)
	for i, a := range pos {
		t.column(e, a)
		w := uint(bits.Len(uint(e.card[a] - 1)))
		width[i] = w
		total += w
	}
	p := &projection{codes: make([]int32, n)}
	if total <= 64 {
		seen := make(map[uint64]int32, n)
		for ri := 0; ri < n; ri++ {
			var key uint64
			for i, a := range pos {
				key = key<<width[i] | uint64(e.cols[a][ri])
			}
			c, ok := seen[key]
			if !ok {
				c = int32(len(seen))
				seen[key] = c
			}
			p.codes[ri] = c
		}
		p.groups = len(seen)
		return p
	}
	seen := make(map[string]int32, n)
	for ri := 0; ri < n; ri++ {
		k := KeyOf(t.rows[ri].Tuple, attrs)
		c, ok := seen[k]
		if !ok {
			c = int32(len(seen))
			seen[k] = c
		}
		p.codes[ri] = c
	}
	p.groups = len(seen)
	return p
}

// bucketByCode partitions row indices by their dense code, in code
// order (= first-appearance order). All buckets share one backing array.
func bucketByCode(codes []int32, groups int) [][]int32 {
	counts := make([]int32, groups)
	for _, c := range codes {
		counts[c]++
	}
	starts := make([]int32, groups+1)
	for g := 0; g < groups; g++ {
		starts[g+1] = starts[g] + counts[g]
	}
	flat := make([]int32, len(codes))
	next := counts // reuse as cursors
	copy(next, starts[:groups])
	for ri, c := range codes {
		flat[next[c]] = int32(ri)
		next[c]++
	}
	out := make([][]int32, groups)
	for g := 0; g < groups; g++ {
		out[g] = flat[starts[g]:starts[g+1]:starts[g+1]]
	}
	return out
}

// ProjectionCodes returns one dense int32 code per row (in insertion
// order) such that two rows receive equal codes iff their projections
// onto attrs are equal. Codes lie in [0, groups) and are assigned in
// order of first appearance. The returned slice is shared and must not
// be mutated; it is invalidated by any table mutation.
func (t *Table) ProjectionCodes(attrs schema.AttrSet) (codes []int32, groups int) {
	p := t.projection(attrs)
	return p.codes, p.groups
}

// DistinctEstimate estimates the largest distinct-code count any
// projection of the table will produce, for pre-sizing solve scratch
// (solve.Hints). It reads the already-built encoding snapshot — the
// max over built column dictionaries and projection group counts —
// and falls back to the row count (a hard upper bound on any distinct
// count) when the encoding is cold. Never forces an encoding build.
func (t *Table) DistinctEstimate() int {
	e := t.enc.Load()
	if e == nil {
		return len(t.rows)
	}
	best := 0
	for _, card := range e.card {
		if card > best {
			best = card
		}
	}
	for _, p := range e.proj {
		if p.groups > best {
			best = p.groups
		}
	}
	if best == 0 {
		return len(t.rows)
	}
	return best
}

// IndexOf returns the position of the identifier in insertion order
// (the row index used by ProjectionCodes and View).
func (t *Table) IndexOf(id int) (int, bool) {
	i, ok := t.byID[id]
	return i, ok
}
