package table

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/schema"
)

// The dictionary encoding turns every column into a dense []int32 of
// value codes (assigned by first appearance), and every projection onto
// an attribute set into a dense []int32 of group codes. Two rows get
// equal projection codes iff their projections are equal, so the repair
// algorithms compare and hash fixed-width integers instead of building
// length-prefixed strings per row (KeyOf) on every GroupBy /
// Violations / ConflictGraph call.
//
// The encoding is built lazily and published copy-on-write through an
// atomic pointer: lookups are lock-free (the parallel block solver hits
// this path constantly), builds take the table's encMu and publish a
// fresh immutable snapshot, and any plain table mutation drops the
// snapshot. The incremental mutators (incremental.go) instead extend
// the snapshot in place under encMu — the per-column dictionaries and
// per-projection key maps are retained for exactly that purpose — so a
// resident session never re-interns columns it already encoded.

// projection is the dictionary code of one attribute-set projection:
// codes[rowIndex] identifies the row's projection; equal codes iff
// equal projections. On a fresh build, codes are dense in [0, groups)
// and assigned in order of first appearance. After incremental cell
// updates, groups remains only an exclusive upper bound on the codes —
// a code whose last carrier was overwritten leaves a hole — and code
// numeric order may diverge from first-appearance order. Nothing
// downstream depends on density or numeric order: algorithms use codes
// as equality labels, groups as an array bound, and the lazily
// materialized rowGrouping (always canonical first-appearance order
// with no empty buckets) for ordered iteration.
//
// width/seen/sseen are the retained state of incremental extension for
// multi-attribute projections (nil for single-attribute and empty
// projections, whose codes derive from the column dictionaries). They
// are touched only under the table's encMu.
type projection struct {
	codes  []int32
	groups int

	// dense records that codes are exactly canonical: every code in
	// [0, groups) has at least one carrier and codes are numbered in
	// first-appearance order. True for every fresh build (codes are
	// assigned by first appearance) and preserved by pure appends (new
	// codes are sequential); cleared by cell recodes, which can orphan
	// codes and reorder first appearances. A dense projection's
	// grouping skips canonicalGroups' rank detection pass and its
	// O(bound) rank array — the allocation that triples the footprint
	// of a 10M-row group-by.
	dense bool

	// rg is the lazily materialized whole-table row grouping. Most
	// projections are only ever read for their codes (equality labels),
	// so the grouping builds on first demand — under encMu, published
	// through the atomic pointer for later lock-free readers — and a
	// projection nobody groups by never pays for bucketing at all. An
	// incremental append extends an aligned materialized grouping in
	// place of a rebuild; cell recodes drop it back to lazy.
	rg atomic.Pointer[rowGrouping]

	width []uint           // packed-key bit widths (multi-attr, packed)
	seen  map[uint64]int32 // packed key -> code (multi-attr, packed)
	sseen map[string]int32 // string key -> code (multi-attr, wide fallback)
}

// rowGrouping is one projection's whole-table row grouping: one bucket
// of ascending row indices per live code, buckets ordered by first
// appearance, no empty buckets. aligned records that buckets[c] is
// exactly the bucket of code c — codes dense in [0, groups) and
// numbered in first-appearance order — which holds after a fresh build,
// is preserved by pure appends (new codes are assigned sequentially, so
// new buckets land at the end in canonical order), and is broken by
// cell recodes, which can orphan codes and reorder first appearances.
type rowGrouping struct {
	buckets [][]int32
	aligned bool
}

// encoding holds the per-column dictionaries and the cached projections
// of one table snapshot covering rows [0, n). A published *encoding is
// immutable for readers; builds and incremental extensions replace it
// wholesale under encMu (the dictionary maps are shared across
// snapshots and mutated only under that lock — readers never touch
// them).
type encoding struct {
	n     int
	cols  [][]int32         // per attribute: value code per row (nil until needed)
	card  []int             // per attribute: dictionary size
	dicts []map[Value]int32 // per attribute: value -> code (encMu only)
	proj  map[schema.AttrSet]*projection

	// recoded marks attributes whose column codes were rewritten in
	// place by a cell update: the codes may have orphans or sit out of
	// first-appearance order, so a single-attribute projection built
	// over them afterwards must not claim density (canonicalGroups
	// re-derives the true shape). The zero value — no column recoded —
	// is correct for every fresh build.
	recoded schema.AttrSet
}

// clone returns a shallow working copy for copy-on-write extension:
// fresh headers and a fresh projection map, shared column storage and
// dictionaries.
func (e *encoding) clone(arity int) *encoding {
	next := &encoding{
		n:       e.n,
		cols:    make([][]int32, arity),
		card:    make([]int, arity),
		dicts:   make([]map[Value]int32, arity),
		proj:    make(map[schema.AttrSet]*projection, len(e.proj)+1),
		recoded: e.recoded,
	}
	copy(next.cols, e.cols)
	copy(next.card, e.card)
	copy(next.dicts, e.dicts)
	for a, p := range e.proj {
		next.proj[a] = p
	}
	return next
}

// invalidate drops the cached encoding; called by every plain mutation.
// Ingestion sketches go with it — they describe the pre-mutation rows.
func (t *Table) invalidate() {
	t.enc.Store(nil)
	t.sk.Store(nil)
}

// projection returns the cached projection for attrs, building (and
// publishing) encoding state as needed. Lock-free on cache hits; safe
// for concurrent use. The returned projection is immutable.
func (t *Table) projection(attrs schema.AttrSet) *projection {
	if e := t.enc.Load(); e != nil {
		if p, ok := e.proj[attrs]; ok {
			return p
		}
	}
	t.encMu.Lock()
	defer t.encMu.Unlock()
	old := t.enc.Load()
	if old != nil {
		if p, ok := old.proj[attrs]; ok {
			return p
		}
	}
	// Copy-on-write: extend the snapshot without mutating the published
	// one. Column slices are themselves immutable once built, so the
	// copies share them.
	k := t.sc.Arity()
	var next *encoding
	if old != nil {
		next = old.clone(k)
	} else {
		next = &encoding{
			n:     len(t.rows),
			cols:  make([][]int32, k),
			card:  make([]int, k),
			dicts: make([]map[Value]int32, k),
			proj:  make(map[schema.AttrSet]*projection),
		}
	}
	p := t.buildProjection(next, attrs)
	next.proj[attrs] = p
	t.enc.Store(next)
	return p
}

// column builds (once) and returns the value codes of one attribute.
// Caller must hold encMu and own e (not yet published).
func (t *Table) column(e *encoding, a int) []int32 {
	if e.cols[a] != nil {
		return e.cols[a]
	}
	col := make([]int32, len(t.rows))
	dict := make(map[Value]int32, len(t.rows))
	for ri := range t.rows {
		v := t.rows[ri].Tuple[a]
		c, ok := dict[v]
		if !ok {
			c = int32(len(dict))
			dict[v] = c
		}
		col[ri] = c
	}
	e.cols[a] = col
	e.card[a] = len(dict)
	e.dicts[a] = dict
	return col
}

// buildProjection computes the group codes of the projection onto
// attrs. The whole-table row grouping is not built here — it
// materializes on first demand (see grouping). Caller must hold encMu
// and own e.
func (t *Table) buildProjection(e *encoding, attrs schema.AttrSet) *projection {
	n := len(t.rows)
	if n == 0 {
		return &projection{}
	}
	pos := attrs.Positions()
	var p *projection
	switch len(pos) {
	case 0:
		p = &projection{codes: make([]int32, n), groups: 1, dense: true}
	case 1:
		col := t.column(e, pos[0])
		p = &projection{codes: col, groups: e.card[pos[0]], dense: !e.recoded.Contains(pos[0])}
	default:
		p = t.buildMultiProjection(e, attrs, pos)
	}
	return p
}

// grouping returns the projection's whole-table row grouping,
// materializing it on first demand. Lock-free once built.
func (t *Table) grouping(p *projection) *rowGrouping {
	if g := p.rg.Load(); g != nil {
		return g
	}
	t.encMu.Lock()
	defer t.encMu.Unlock()
	if g := p.rg.Load(); g != nil {
		return g
	}
	var g *rowGrouping
	if p.dense {
		g = &rowGrouping{buckets: denseGroups(p.codes, p.groups), aligned: true}
	} else {
		buckets, aligned := canonicalGroups(p.codes, p.groups)
		g = &rowGrouping{buckets: buckets, aligned: aligned}
	}
	p.rg.Store(g)
	return g
}

// denseGroups is canonicalGroups for a projection known to be dense
// (codes canonical: no holes in [0, bound), first-appearance order —
// see projection.dense). Bucket index equals code by construction, so
// the rank array and its detection pass are skipped: two passes over
// the codes, counts + flat + headers allocated, nothing else. On a
// 10M-row table this is the difference between two n-sized scratch
// arrays and three.
func denseGroups(codes []int32, bound int) [][]int32 {
	if len(codes) == 0 {
		return nil
	}
	counts := make([]int32, bound)
	for _, c := range codes {
		counts[c]++
	}
	starts := make([]int32, bound+1)
	for g := 0; g < bound; g++ {
		starts[g+1] = starts[g] + counts[g]
	}
	flat := make([]int32, len(codes))
	next := counts // reuse as cursors
	copy(next, starts[:bound])
	for ri, c := range codes {
		flat[next[c]] = int32(ri)
		next[c]++
	}
	out := make([][]int32, bound)
	for g := 0; g < bound; g++ {
		out[g] = flat[starts[g]:starts[g+1]:starts[g+1]]
	}
	return out
}

// buildMultiProjection packs the per-column codes of a multi-attribute
// projection into one uint64 key when the dictionary widths fit (they
// essentially always do), assigning dense group codes by first
// appearance; pathologically wide projections fall back to string keys.
// The key map and bit widths are retained on the projection so an
// incremental append extends the codes instead of re-interning.
func (t *Table) buildMultiProjection(e *encoding, attrs schema.AttrSet, pos []int) *projection {
	n := len(t.rows)
	width := make([]uint, len(pos))
	total := uint(0)
	for i, a := range pos {
		t.column(e, a)
		w := uint(bits.Len(uint(e.card[a] - 1)))
		width[i] = w
		total += w
	}
	p := &projection{codes: make([]int32, n), dense: true}
	if total <= 64 {
		seen := make(map[uint64]int32, n)
		for ri := 0; ri < n; ri++ {
			var key uint64
			for i, a := range pos {
				key = key<<width[i] | uint64(e.cols[a][ri])
			}
			c, ok := seen[key]
			if !ok {
				c = int32(len(seen))
				seen[key] = c
			}
			p.codes[ri] = c
		}
		p.groups = len(seen)
		p.width = width
		p.seen = seen
		return p
	}
	sseen := make(map[string]int32, n)
	for ri := 0; ri < n; ri++ {
		k := KeyOf(t.rows[ri].Tuple, attrs)
		c, ok := sseen[k]
		if !ok {
			c = int32(len(sseen))
			sseen[k] = c
		}
		p.codes[ri] = c
	}
	p.groups = len(sseen)
	p.sseen = sseen
	return p
}

// canonicalGroups buckets row indices by code (ascending within each
// bucket), drops codes no row carries, and orders the buckets by their
// first row index — exactly the grouping a cold first-appearance build
// produces. On a fresh encoding codes are dense and already in
// first-appearance order, so nothing is dropped and the sort check is
// one linear no-op pass; after incremental cell updates codes may have
// holes and sit out of first-appearance order, and this restores the
// canonical grouping so every order-sensitive consumer (GroupBy,
// identity-view GroupByArena, block enumeration) stays byte-identical
// to a from-scratch rebuild. All buckets share one backing array.
//
// aligned reports whether bucket index equals code throughout: no code
// in [0, bound) was dropped and the buckets are already in code order.
func canonicalGroups(codes []int32, bound int) (groups [][]int32, aligned bool) {
	if len(codes) == 0 {
		return nil, true
	}
	// Rank codes by first appearance, then counting-sort on the rank:
	// the buckets come out in canonical order directly, with no
	// comparison sort even when cell recodes have left the code values
	// out of first-appearance order or with holes.
	rank := make([]int32, bound)
	for i := range rank {
		rank[i] = -1
	}
	live := int32(0)
	aligned = true
	for _, c := range codes {
		if rank[c] < 0 {
			if c != live {
				aligned = false
			}
			rank[c] = live
			live++
		}
	}
	counts := make([]int32, live)
	for _, c := range codes {
		counts[rank[c]]++
	}
	starts := make([]int32, live+1)
	for g := int32(0); g < live; g++ {
		starts[g+1] = starts[g] + counts[g]
	}
	flat := make([]int32, len(codes))
	next := counts // reuse as cursors
	copy(next, starts[:live])
	for ri, c := range codes {
		r := rank[c]
		flat[next[r]] = int32(ri)
		next[r]++
	}
	out := make([][]int32, live)
	for g := int32(0); g < live; g++ {
		out[g] = flat[starts[g]:starts[g+1]:starts[g+1]]
	}
	return out, aligned && int(live) == bound
}

// ProjectionCodes returns one int32 code per row (in insertion order)
// such that two rows receive equal codes iff their projections onto
// attrs are equal. Codes lie in [0, groups); on a freshly built table
// they are dense and assigned in order of first appearance, while after
// incremental cell updates groups is only an exclusive bound (see
// projection). The returned slice is shared and must not be mutated; it
// is invalidated by any table mutation.
func (t *Table) ProjectionCodes(attrs schema.AttrSet) (codes []int32, groups int) {
	p := t.projection(attrs)
	return p.codes, p.groups
}

// RowGroups returns the whole-table grouping of rows by their
// projection onto attrs: one bucket of ascending row indices per
// distinct projection value, buckets ordered by first appearance. This
// is the canonical block partition Session.Repair classifies into clean
// and dirty blocks. The buckets share one backing array, must be
// treated as read-only, and are invalidated by any table mutation.
func (t *Table) RowGroups(attrs schema.AttrSet) [][]int32 {
	return t.grouping(t.projection(attrs)).buckets
}

// ProjectionCardinality returns the exact code-space bound of the
// projection onto attrs from the live encoding snapshot, without
// forcing a build: the dictionary size for a single attribute, the
// group bound for a cached projection, 1 for the empty set. ok is false
// when the snapshot has not encoded attrs yet. Resident sessions feed
// this to solve.Hints as the cardinality source, replacing the
// DistinctEstimate guess with the dictionary's real counts.
func (t *Table) ProjectionCardinality(attrs schema.AttrSet) (card int, ok bool) {
	e := t.enc.Load()
	if e == nil {
		return 0, false
	}
	if p, okp := e.proj[attrs]; okp {
		return p.groups, true
	}
	pos := attrs.Positions()
	switch len(pos) {
	case 0:
		return 1, true
	case 1:
		if e.cols[pos[0]] != nil {
			return e.card[pos[0]], true
		}
	}
	return 0, false
}

// DistinctEstimate estimates the largest distinct-code count any
// projection of the table will produce, for pre-sizing solve scratch
// (solve.Hints). It reads the already-built encoding snapshot — the
// max over built column dictionaries and projection group counts —
// and falls back to the row count (a hard upper bound on any distinct
// count) when the encoding is cold. Never forces an encoding build.
// Dictionaries of an incrementally mutated table retain vanished
// values, so the estimate can exceed the row count; entry points clamp
// it to the current table's length when recording hints.
func (t *Table) DistinctEstimate() int {
	e := t.enc.Load()
	if e == nil {
		return len(t.rows)
	}
	best := 0
	for _, card := range e.card {
		if card > best {
			best = card
		}
	}
	for _, p := range e.proj {
		if p.groups > best {
			best = p.groups
		}
	}
	if best == 0 {
		return len(t.rows)
	}
	return best
}

// IndexOf returns the position of the identifier in insertion order
// (the row index used by ProjectionCodes and View).
func (t *Table) IndexOf(id int) (int, bool) {
	i, ok := t.index()[id]
	return i, ok
}
