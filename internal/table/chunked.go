package table

// ChunkedBuilder is the streaming construction path behind IngestCSV:
// it encodes rows straight into dictionary codes as they arrive, in
// fixed-size column chunks, and never holds a raw (un-interned) string
// form of the table. Each distinct value is allocated exactly once —
// the interned copy lives in the per-attribute dictionary and is
// shared by every tuple that carries the value — so transient memory
// is O(chunk + dictionary) instead of O(table). Flush concatenates
// the chunks into an exact-size row store and publishes the finished
// dictionary encoding (and the cardinality sketches fed during the
// stream) on the returned Table, so the first solve starts from a hot
// encoding instead of re-interning every column.
//
// Validation matches Insert row for row — arity, then positive weight,
// then duplicate identifier, then the reserved-value check, with
// identical error messages — so a CSV rejected by the seed ReadCSV
// path is rejected with the same error here. Duplicate detection is
// O(1) without an id map while identifiers arrive in increasing order
// (the common case: WriteCSV output and generated streams); the first
// out-of-order identifier materializes the map once.

import (
	"bytes"
	"fmt"

	"repro/internal/schema"
)

// freshPrefixBytes is freshPrefix for []byte prefix checks.
var freshPrefixBytes = []byte(freshPrefix)

// chunkRows is the row granularity of the builder's segmented storage:
// row structs, tuple backing, and column codes are allocated in chunks
// of this many rows, then concatenated exactly-sized at Flush. Big
// enough to amortize allocation, small enough that a partly filled
// tail chunk is noise.
const chunkRows = 1 << 16

// pairSketch tracks one multi-attribute cardinality sketch fed during
// the stream.
type pairSketch struct {
	i, j int // attribute positions
	set  schema.AttrSet
	s    *CardSketch
}

// ChunkedBuilder streams rows into a dictionary-encoded Table.
// Not safe for concurrent use. Sealed by Flush.
type ChunkedBuilder struct {
	sc    *schema.Schema
	arity int

	// Per-attribute interning state.
	dicts []map[Value]int32 // value -> code
	revs  [][]Value         // code -> interned value (the single copy)

	// Segmented storage: full chunks plus the currently filling one.
	colChunks [][][]int32 // per attribute: completed chunks
	colCur    [][]int32   // per attribute: current chunk
	rowChunks [][]Row     // completed row chunks
	rowCur    []Row       // current row chunk
	tupCur    []Value     // current chunk's tuple backing (arity*chunkRows)

	n      int              // rows accepted so far
	nextID int              // watermark, same rule as Table.nextID
	lastID int              // largest id seen; fast-path duplicate guard
	idSeen map[int]struct{} // materialized on first out-of-order id

	// Cardinality sketches fed per row: every attribute pair, plus the
	// full attribute set when arity ≥ 3 (for arity 2 the pair is the
	// full set). Singles are exact from the dictionaries.
	pairs    []pairSketch
	full     *CardSketch
	fullSet  schema.AttrSet
	codesScr []int32 // per-row scratch: this row's code per attribute

	sealed bool
}

// NewChunkedBuilder returns a streaming builder for tables over sc.
func NewChunkedBuilder(sc *schema.Schema) *ChunkedBuilder {
	if sc == nil {
		panic("table: nil schema")
	}
	k := sc.Arity()
	b := &ChunkedBuilder{
		sc:        sc,
		arity:     k,
		dicts:     make([]map[Value]int32, k),
		revs:      make([][]Value, k),
		colChunks: make([][][]int32, k),
		colCur:    make([][]int32, k),
		nextID:    1,
		lastID:    -1 << 62,
		codesScr:  make([]int32, k),
	}
	for a := 0; a < k; a++ {
		b.dicts[a] = make(map[Value]int32, 256)
	}
	if k >= 2 && k <= sketchMaxArity {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.pairs = append(b.pairs, pairSketch{
					i: i, j: j,
					set: schema.Singleton(i).Union(schema.Singleton(j)),
					s:   newCardSketch(),
				})
			}
		}
		if k >= 3 {
			b.full = newCardSketch()
			for i := 0; i < k; i++ {
				b.fullSet = b.fullSet.Union(schema.Singleton(i))
			}
		}
	}
	return b
}

// Len returns the number of rows accepted so far.
func (b *ChunkedBuilder) Len() int { return b.n }

// AppendAuto adds a row under the next watermark identifier, like
// Table.Append. cells are the attribute values in schema order; they
// are interned, never retained.
func (b *ChunkedBuilder) AppendAuto(cells [][]byte, weight float64) error {
	return b.Append(b.nextID, cells, weight)
}

// Append adds a row with an explicit identifier, like Table.Insert.
// cells are the attribute values in schema order; they are interned,
// never retained — callers may reuse the backing buffers.
func (b *ChunkedBuilder) Append(id int, cells [][]byte, weight float64) error {
	if b.sealed {
		panic("table: ChunkedBuilder used after Flush")
	}
	if len(cells) != b.arity {
		return fmt.Errorf("table: tuple arity %d does not match schema %s", len(cells), b.sc)
	}
	if weight <= 0 {
		return fmt.Errorf("table: tuple %d has non-positive weight %v", id, weight)
	}
	if id <= b.lastID {
		// Out-of-order identifier: fall back to the materialized set.
		if b.idSeen == nil {
			b.idSeen = make(map[int]struct{}, b.n)
			for _, ch := range b.rowChunks {
				for _, r := range ch {
					b.idSeen[r.ID] = struct{}{}
				}
			}
			for _, r := range b.rowCur {
				b.idSeen[r.ID] = struct{}{}
			}
		}
		if _, dup := b.idSeen[id]; dup {
			return fmt.Errorf("table: duplicate tuple identifier %d", id)
		}
	}
	for _, v := range cells {
		if len(v) > 0 && v[0] == '\x00' && !bytes.HasPrefix(v, freshPrefixBytes) {
			return fmt.Errorf("table: tuple %d uses a reserved value", id)
		}
	}

	// Row accepted: intern cells and encode.
	if b.rowCur == nil {
		b.rowCur = make([]Row, 0, chunkRows)
		if b.arity > 0 {
			b.tupCur = make([]Value, 0, chunkRows*b.arity)
		}
	}
	var tup Tuple
	if b.arity > 0 {
		start := len(b.tupCur)
		for a, cell := range cells {
			dict := b.dicts[a]
			// The compiler elides the []byte→string conversion in the
			// map lookup; a string is allocated only on a miss.
			c, ok := dict[string(cell)]
			if !ok {
				v := Value(cell) // the single interned copy
				c = int32(len(b.revs[a]))
				dict[v] = c
				b.revs[a] = append(b.revs[a], v)
			}
			b.codesScr[a] = c
			b.tupCur = append(b.tupCur, b.revs[a][c])
			if b.colCur[a] == nil {
				b.colCur[a] = make([]int32, 0, chunkRows)
			}
			b.colCur[a] = append(b.colCur[a], c)
		}
		tup = Tuple(b.tupCur[start:len(b.tupCur):len(b.tupCur)])
	}
	b.rowCur = append(b.rowCur, Row{ID: id, Tuple: tup, Weight: weight})
	b.n++
	if id >= b.nextID {
		b.nextID = id + 1
	}
	if id > b.lastID {
		b.lastID = id
	}
	if b.idSeen != nil {
		b.idSeen[id] = struct{}{}
	}

	// Feed the multi-attribute sketches from this row's codes.
	for i := range b.pairs {
		ps := &b.pairs[i]
		ps.s.Add(mix64(uint64(uint32(b.codesScr[ps.i]))<<32 | uint64(uint32(b.codesScr[ps.j]))))
	}
	if b.full != nil {
		h := uint64(0xcbf29ce484222325)
		for _, c := range b.codesScr {
			h ^= uint64(uint32(c))
			h *= 0x100000001b3
		}
		b.full.Add(mix64(h))
	}

	if len(b.rowCur) == chunkRows {
		b.flushChunk()
	}
	return nil
}

// flushChunk seals the current chunk. The tuple backing stays alive —
// the rows reference it — only the chunk headers move.
func (b *ChunkedBuilder) flushChunk() {
	b.rowChunks = append(b.rowChunks, b.rowCur)
	b.rowCur = nil
	b.tupCur = nil
	for a := 0; a < b.arity; a++ {
		b.colChunks[a] = append(b.colChunks[a], b.colCur[a])
		b.colCur[a] = nil
	}
}

// Flush concatenates the chunks into an exact-size table, publishes
// the dictionary encoding built during the stream, attaches the
// cardinality sketches, and seals the builder.
func (b *ChunkedBuilder) Flush() *Table {
	if b.sealed {
		panic("table: ChunkedBuilder used after Flush")
	}
	b.sealed = true
	if len(b.rowCur) > 0 || b.colCurNonEmpty() {
		b.flushChunk()
	}
	t := New(b.sc)
	t.nextID = b.nextID
	if b.n == 0 {
		return t
	}

	rows := make([]Row, 0, b.n)
	for ci, ch := range b.rowChunks {
		rows = append(rows, ch...)
		b.rowChunks[ci] = nil // free as we go: bound peak memory
	}
	t.rows = rows

	e := &encoding{
		n:     b.n,
		cols:  make([][]int32, b.arity),
		card:  make([]int, b.arity),
		dicts: b.dicts,
		proj:  make(map[schema.AttrSet]*projection),
	}
	for a := 0; a < b.arity; a++ {
		col := make([]int32, 0, b.n)
		for ci, ch := range b.colChunks[a] {
			col = append(col, ch...)
			b.colChunks[a][ci] = nil
		}
		e.cols[a] = col
		e.card[a] = len(b.revs[a])
	}
	t.enc.Store(e)

	if len(b.pairs) > 0 || b.full != nil {
		sk := &tableSketches{bySet: make(map[schema.AttrSet]*CardSketch, len(b.pairs)+1)}
		for i := range b.pairs {
			sk.bySet[b.pairs[i].set] = b.pairs[i].s
		}
		if b.full != nil {
			sk.bySet[b.fullSet] = b.full
		}
		t.sk.Store(sk)
	}
	return t
}

func (b *ChunkedBuilder) colCurNonEmpty() bool {
	for a := 0; a < b.arity; a++ {
		if len(b.colCur[a]) > 0 {
			return true
		}
	}
	return false
}
