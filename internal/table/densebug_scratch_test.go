package table

import (
	"reflect"
	"testing"

	"repro/internal/schema"
)

// Scratch repro: after SetCellsIncremental recodes a column in place, a
// single-attribute projection built for the first time afterwards is
// marked dense even though the column may have orphaned codes or codes
// out of first-appearance order.
func TestScratchDenseAfterIncrementalRecode(t *testing.T) {
	sc, _ := schema.New("T", "A", "B")
	tab := New(sc)
	tab.MustInsert(1, Tuple{"x", "p"}, 1)
	tab.MustInsert(2, Tuple{"y", "q"}, 1)
	tab.MustInsert(3, Tuple{"x", "r"}, 1)

	// Cache the multi-attribute projection {A,B}: this builds column A
	// (codes x=0, y=1) without caching the single-attr {A} projection.
	ab := schema.Singleton(0).Union(schema.Singleton(1))
	tab.ProjectionCodes(ab)

	// Recode row 0's A cell from "x" to "y": code 0 ("x") keeps one
	// carrier (row 2), but row order of codes becomes [1,1,0] — no
	// longer first-appearance order. Also orphan test: change row 2 too.
	if err := tab.SetCellsIncremental([]CellUpdate{{ID: 1, Attr: 0, Val: "y"}, {ID: 3, Attr: 0, Val: "y"}}); err != nil {
		t.Fatal(err)
	}
	// Now column A codes are [1,1,1]; code 0 ("x") is orphaned.

	// First-ever request of the single-attribute {A} grouping.
	got := tab.GroupBy(schema.Singleton(0))

	// A from-scratch table with the same final rows is the oracle.
	fresh := New(sc)
	fresh.MustInsert(1, Tuple{"y", "p"}, 1)
	fresh.MustInsert(2, Tuple{"y", "q"}, 1)
	fresh.MustInsert(3, Tuple{"y", "r"}, 1)
	want := fresh.GroupBy(schema.Singleton(0))

	t.Logf("incremental: %d groups", len(got))
	for i, g := range got {
		t.Logf("  group %d: ids=%v", i, g.IDs)
	}
	t.Logf("from-scratch: %d groups", len(want))
	for i, g := range want {
		t.Logf("  group %d: ids=%v", i, g.IDs)
	}
	if len(got) != len(want) {
		t.Fatalf("group count diverges: incremental %d vs from-scratch %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].IDs, want[i].IDs) {
			t.Fatalf("group %d diverges: %v vs %v", i, got[i].IDs, want[i].IDs)
		}
	}
}
