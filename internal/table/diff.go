package table

import (
	"fmt"
	"sort"
	"strings"
)

// CellChange describes one updated cell between a table and an update
// of it.
type CellChange struct {
	ID   int
	Attr int
	From Value
	To   Value
}

// Diff summarizes how a repair differs from the original table:
// deleted tuple identifiers (subset repairs) and changed cells (update
// repairs). Exactly one of the two is nonempty for the paper's pure
// repair models; mixed repairs populate both.
type Diff struct {
	Deleted []int
	Changed []CellChange
}

// DiffTables computes the difference from the original table t to a
// repaired table r. Tuples of t missing from r are reported as deleted;
// tuples present in both have their cells compared. Tuples of r that do
// not exist in t are rejected (a repair never invents identifiers).
func DiffTables(t, r *Table) (*Diff, error) {
	if !t.sc.SameAs(r.sc) {
		return nil, fmt.Errorf("table: diff across different schemas")
	}
	for _, row := range r.rows {
		if !t.Has(row.ID) {
			return nil, fmt.Errorf("table: repaired table has unknown tuple id %d", row.ID)
		}
	}
	d := &Diff{}
	for _, row := range t.rows {
		rr, ok := r.Row(row.ID)
		if !ok {
			d.Deleted = append(d.Deleted, row.ID)
			continue
		}
		for a := range row.Tuple {
			if row.Tuple[a] != rr.Tuple[a] {
				d.Changed = append(d.Changed, CellChange{
					ID: row.ID, Attr: a, From: row.Tuple[a], To: rr.Tuple[a],
				})
			}
		}
	}
	sort.Ints(d.Deleted)
	return d, nil
}

// IsEmpty reports whether the repair changed nothing.
func (d *Diff) IsEmpty() bool { return len(d.Deleted) == 0 && len(d.Changed) == 0 }

// Render writes the diff in a human-readable form using the schema's
// attribute names; fresh constants render as ⊥n.
func (d *Diff) Render(sc interface{ AttrName(int) string }) string {
	if d.IsEmpty() {
		return "(no changes)\n"
	}
	var b strings.Builder
	for _, id := range d.Deleted {
		fmt.Fprintf(&b, "- delete tuple %d\n", id)
	}
	for _, c := range d.Changed {
		fmt.Fprintf(&b, "~ tuple %d: %s: %s → %s\n",
			c.ID, sc.AttrName(c.Attr), renderValue(c.From), renderValue(c.To))
	}
	return b.String()
}

func renderValue(v Value) string {
	if strings.HasPrefix(v, freshPrefix) {
		return "⊥" + strings.TrimPrefix(v, freshPrefix)
	}
	return v
}
