package table

import (
	"fmt"
	"sort"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
)

// View is a zero-copy selection of a table's rows: the backing table
// plus a slice of row indices (positions in insertion order). The
// repair algorithms recurse over views — grouping, sub-selecting and
// weighing without materializing intermediate tables — and only the
// final repair is materialized. Views share the backing table's
// dictionary encoding, so grouping and FD checks compare cached int32
// codes instead of building string keys.
//
// View is a small value type; pass it by value. A view is invalidated
// by any mutation of the backing table.
type View struct {
	t    *Table
	rows []int32
}

// NewView returns the view of all rows of t, in insertion order.
func NewView(t *Table) View {
	rows := make([]int32, len(t.rows))
	for i := range rows {
		rows[i] = int32(i)
	}
	return View{t: t, rows: rows}
}

// ViewOfRows returns the view of t holding the given row indices. The
// slice is owned by the view afterwards.
func ViewOfRows(t *Table, rows []int32) View { return View{t: t, rows: rows} }

// ViewOfIDs returns the view of t holding the given identifiers (which
// must exist), in table insertion order (ascending row index).
func ViewOfIDs(t *Table, ids []int) (View, error) {
	rows := make([]int32, 0, len(ids))
	for _, id := range ids {
		i, ok := t.index()[id]
		if !ok {
			return View{}, fmt.Errorf("table: identifier %d not in table", id)
		}
		rows = append(rows, int32(i))
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
	return View{t: t, rows: rows}, nil
}

// Table returns the backing table.
func (v View) Table() *Table { return v.t }

// isWholeTable reports whether the view is exactly the identity
// selection 0..n-1 (length alone is not enough: a full-length view may
// be permuted or carry duplicates).
func (v View) isWholeTable() bool {
	if len(v.rows) != len(v.t.rows) {
		return false
	}
	for i, ri := range v.rows {
		if ri != int32(i) {
			return false
		}
	}
	return true
}

// Rows returns the view's row indices. The slice is shared; callers
// must not mutate it.
func (v View) Rows() []int32 { return v.rows }

// Len returns the number of rows selected by the view.
func (v View) Len() int { return len(v.rows) }

// Subview returns the zero-copy view of a subset of rows (indices into
// the backing table, typically one group of GroupBy).
func (v View) Subview(rows []int32) View { return View{t: v.t, rows: rows} }

// RowAt returns the i-th selected row.
func (v View) RowAt(i int) Row { return v.t.rows[v.rows[i]] }

// IDs returns the identifiers selected by the view, in view order.
func (v View) IDs() []int {
	out := make([]int, len(v.rows))
	for i, ri := range v.rows {
		out[i] = v.t.rows[ri].ID
	}
	return out
}

// TotalWeight returns the sum of the selected rows' weights.
func (v View) TotalWeight() float64 {
	var sum float64
	for _, ri := range v.rows {
		sum += v.t.rows[ri].Weight
	}
	return sum
}

// GroupBy partitions the view's rows by their projection onto attrs and
// returns one row-index slice per group, in order of first appearance
// (matching Table.GroupBy). All group slices share one backing array;
// treat them as read-only.
func (v View) GroupBy(attrs schema.AttrSet) [][]int32 {
	return v.GroupByArena(nil, attrs).Groups
}

// groupScratch is the pooled working set of one GroupByArena call: the
// dense code→local translation table, the count/start cursors, the
// flat bucket array and the group-header slice. It recycles as one
// object (a single arena Get/Put per recursion node of the repair
// engine, which visits one grouping per node).
type groupScratch struct {
	codeToLocal []int32
	counts      []int32
	starts      []int32
	flat        []int32
	out         [][]int32
}

// groupKey pools groupScratch values on the solve context.
type groupKey struct{}

// Grouping is a GroupBy result whose backing storage may come from a
// solve arena. Groups holds one row-index slice per group, in order of
// first appearance; all group slices share one backing array and must
// be treated as read-only. Release recycles the storage — after it,
// every group slice is invalid.
type Grouping struct {
	Groups [][]int32
	scr    *groupScratch // arena-owned storage; nil when not pooled
}

// Release returns the grouping's backing storage to the context arena.
// A grouping built over the cached whole-table buckets (or with a nil
// context) owns nothing and Release is a no-op. Callers returning a
// group bucket upward (or retaining one) must copy it out first.
func (g Grouping) Release(c *solve.Ctx) {
	if g.scr != nil {
		c.PutScratch(groupKey{}, g.scr)
	}
}

// GroupByArena is GroupBy drawing its scratch and result storage from
// the solve context's arena (a nil context degrades to plain
// allocation, with Release a no-op). The grouping algorithms run once
// per recursion node of the repair engine, so recycling the flat
// bucket array and the group-header slice is the difference between
// O(depth) and O(nodes) garbage on deep recursions.
func (v View) GroupByArena(c *solve.Ctx, attrs schema.AttrSet) Grouping {
	n := len(v.rows)
	if n == 0 {
		return Grouping{}
	}
	p := v.t.projection(attrs)
	if v.isWholeTable() {
		// Identity view: projection codes are already dense and in
		// first-appearance order; reuse the cached whole-table grouping
		// (shared with every other caller — never released).
		return Grouping{Groups: v.t.groupRowIndexes(p)}
	}
	if n == 1 || p.groups == 1 {
		return Grouping{Groups: [][]int32{v.rows}}
	}
	scr, _ := c.GetScratch(groupKey{}).(*groupScratch)
	if scr == nil {
		scr = new(groupScratch)
	}
	// Map whole-table codes to local group indices in first-appearance
	// order. Dense scratch when the code space is comparable to the
	// view, a map when the view selects a sliver of a huge table (the
	// dense fill would cost O(table cardinality) per block otherwise).
	var lookup func(int32) int32
	var assign func(int32, int32)
	if p.groups <= 4*n+64 {
		codeToLocal := solve.Grow(scr.codeToLocal, p.groups)
		scr.codeToLocal = codeToLocal
		for i := range codeToLocal {
			codeToLocal[i] = -1
		}
		lookup = func(c int32) int32 { return codeToLocal[c] }
		assign = func(c, l int32) { codeToLocal[c] = l }
	} else {
		codeToLocal := make(map[int32]int32, n)
		lookup = func(c int32) int32 {
			if l, ok := codeToLocal[c]; ok {
				return l
			}
			return -1
		}
		assign = func(c, l int32) { codeToLocal[c] = l }
	}
	// Pre-size the per-group counters from the projection's group bound
	// (clamped to the view: a view can't have more groups than rows) so
	// the append loop below never re-grows mid-pass on large blocks.
	bound := p.groups
	if bound > n {
		bound = n
	}
	counts := solve.Grow(scr.counts, bound)[:0]
	for _, ri := range v.rows {
		cd := p.codes[ri]
		l := lookup(cd)
		if l < 0 {
			l = int32(len(counts))
			assign(cd, l)
			counts = append(counts, 0)
		}
		counts[l]++
	}
	scr.counts = counts
	ng := len(counts)
	starts := solve.Grow(scr.starts, ng+1)
	scr.starts = starts
	starts[0] = 0
	for l := 0; l < ng; l++ {
		starts[l+1] = starts[l] + counts[l]
	}
	copy(counts, starts[:ng]) // reuse counts as fill cursors
	flat := solve.Grow(scr.flat, n)
	scr.flat = flat
	for _, ri := range v.rows {
		l := lookup(p.codes[ri])
		flat[counts[l]] = ri
		counts[l]++
	}
	out := solve.Grow(scr.out, ng)
	scr.out = out
	for l := 0; l < ng; l++ {
		out[l] = flat[starts[l]:starts[l+1]:starts[l+1]]
	}
	if c == nil {
		return Grouping{Groups: out}
	}
	return Grouping{Groups: out, scr: scr}
}

// Satisfies reports whether the selected rows satisfy every FD of the
// set, comparing cached projection codes.
func (v View) Satisfies(ds *fd.Set) bool {
	for i := 0; i < ds.Len(); i++ {
		if !v.SatisfiesFD(ds.FDAt(i)) {
			return false
		}
	}
	return true
}

// SatisfiesFD reports whether the selected rows satisfy one FD.
func (v View) SatisfiesFD(f fd.FD) bool {
	if len(v.rows) == 0 {
		return true
	}
	lhs := v.t.projection(f.LHS)
	rhs := v.t.projection(f.RHS)
	rhsOf := make([]int32, lhs.groups)
	for i := range rhsOf {
		rhsOf[i] = -1
	}
	for _, ri := range v.rows {
		l, r := lhs.codes[ri], rhs.codes[ri]
		if prev := rhsOf[l]; prev < 0 {
			rhsOf[l] = r
		} else if prev != r {
			return false
		}
	}
	return true
}

// Materialize builds the *Table holding exactly the selected rows (in
// ascending identifier order, like SubsetByIDs). The row store is
// built in bulk — one backing array for all tuple values, the id index
// left to build lazily on first lookup, no per-row validation (every
// selected row is already a valid row of the backing table) — so
// materializing a large repair result costs a copy, not n inserts.
func (v View) Materialize() *Table {
	src := v.t.rows
	ordered := v.rows
	for k := 1; k < len(ordered); k++ {
		if src[ordered[k]].ID < src[ordered[k-1]].ID {
			ordered = append([]int32(nil), v.rows...)
			sort.Slice(ordered, func(a, b int) bool { return src[ordered[a]].ID < src[ordered[b]].ID })
			break
		}
	}
	out := New(v.t.sc)
	out.fresh = v.t.fresh
	out.rows = make([]Row, len(ordered))
	arity := v.t.sc.Arity()
	vals := make([]Value, len(ordered)*arity)
	for k, ri := range ordered {
		r := src[ri]
		tup := Tuple(vals[k*arity : (k+1)*arity : (k+1)*arity])
		copy(tup, r.Tuple)
		out.rows[k] = Row{ID: r.ID, Tuple: tup, Weight: r.Weight}
		if r.ID >= out.nextID {
			out.nextID = r.ID + 1
		}
	}
	return out
}
