package table

// csvScanner is a streaming CSV record scanner with the exact parsing
// semantics of encoding/csv (Go 1.24) configured the way ReadCSV has
// always configured it: Comma=',', TrimLeadingSpace=true, no comments,
// LazyQuotes=false. The one difference is the output contract: fields
// are returned as []byte slices into an internal buffer that is valid
// only until the next Scan call, instead of freshly allocated strings.
// That is what lets IngestCSV intern each cell with a map lookup
// (dict[string(bytes)] compiles without allocation) and allocate a
// string only on a dictionary miss — the whole point of the chunked
// ingestion path.
//
// Errors are reported with encoding/csv's own types (*csv.ParseError
// wrapping csv.ErrQuote / csv.ErrBareQuote / csv.ErrFieldCount), so
// errors.Is works identically across the buffered and streaming paths,
// and line/column numbers count physical input lines exactly as the
// stdlib's do.
//
// The port is deliberately line-for-line close to encoding/csv's
// readRecord/readLine; when in doubt about a behavior (blank-line
// skipping, \r\n normalization, trailing-\r-before-EOF, the
// TrimLeadingSpace interaction with all-space remainders), match the
// stdlib, which the differential tests enforce against real
// csv.Reader output.

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"io"
	"unicode"
)

type csvScanner struct {
	r *bufio.Reader

	// numLine is the current physical line in the input (1-based after
	// the first readLine).
	numLine int

	// fieldsPerRecord mirrors csv.Reader.FieldsPerRecord in its 0 form:
	// inferred from the first record, then enforced.
	fieldsPerRecord int

	// rawBuffer accumulates lines longer than the bufio buffer.
	rawBuffer []byte

	// recordBuffer holds the unescaped fields of the current record,
	// one after another; fieldIndexes[i] is the end offset of field i.
	recordBuffer []byte
	fieldIndexes []int

	// fieldLines[i] is the physical line the i'th field starts on —
	// what the ingestion error messages report for a bad id/weight.
	fieldLines []int

	// recLine is the physical line the current record starts on.
	recLine int

	err error
}

func newCSVScanner(r io.Reader) *csvScanner {
	return &csvScanner{r: bufio.NewReaderSize(r, 64<<10)}
}

// readLine reads the next physical line including its trailing newline
// (omitted at EOF), normalizing \r\n to \n and dropping a trailing \r
// before EOF, exactly like encoding/csv. The result is only valid
// until the next call.
func (s *csvScanner) readLine() ([]byte, error) {
	line, err := s.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		s.rawBuffer = append(s.rawBuffer[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = s.r.ReadSlice('\n')
			s.rawBuffer = append(s.rawBuffer, line...)
		}
		line = s.rawBuffer
	}
	if len(line) > 0 && err == io.EOF {
		err = nil
		// For backwards compatibility, drop trailing \r before EOF.
		if line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
	}
	s.numLine++
	// Normalize \r\n to \n on all input lines.
	if n := len(line); n >= 2 && line[n-2] == '\r' && line[n-1] == '\n' {
		line[n-2] = '\n'
		line = line[:n-1]
	}
	return line, err
}

// lengthNL reports the number of bytes for the trailing \n.
func lengthNL(b []byte) int {
	if len(b) > 0 && b[len(b)-1] == '\n' {
		return 1
	}
	return 0
}

// Scan reads the next record. It returns false at EOF or on error;
// Err distinguishes the two. After a true return, the record's fields
// are available via NumFields/Field/FieldLine until the next call.
func (s *csvScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	err := s.readRecord()
	if err != nil {
		s.err = err
		return false
	}
	return true
}

// Err returns the terminal error, or nil after a clean EOF.
func (s *csvScanner) Err() error {
	if s.err == io.EOF {
		return nil
	}
	return s.err
}

// NumFields returns the field count of the current record.
func (s *csvScanner) NumFields() int { return len(s.fieldIndexes) }

// Field returns the i'th field of the current record as a byte slice
// into the scanner's buffer — valid only until the next Scan.
func (s *csvScanner) Field(i int) []byte {
	start := 0
	if i > 0 {
		start = s.fieldIndexes[i-1]
	}
	return s.recordBuffer[start:s.fieldIndexes[i]]
}

// FieldLine returns the physical 1-based input line the i'th field of
// the current record starts on.
func (s *csvScanner) FieldLine(i int) int { return s.fieldLines[i] }

// RecordLine returns the physical 1-based input line the current
// record starts on.
func (s *csvScanner) RecordLine() int { return s.recLine }

func (s *csvScanner) readRecord() error {
	// Read line, automatically skipping past empty lines.
	var line []byte
	var errRead error
	for errRead == nil {
		line, errRead = s.readLine()
		if errRead == nil && len(line) == lengthNL(line) {
			line = nil
			continue // Skip empty lines
		}
		break
	}
	if errRead == io.EOF {
		return errRead
	}

	// Parse each field in the record.
	var err error
	const quoteLen = len(`"`)
	const commaLen = len(`,`)
	recLine := s.numLine // Starting line for record
	s.recLine = recLine
	s.recordBuffer = s.recordBuffer[:0]
	s.fieldIndexes = s.fieldIndexes[:0]
	s.fieldLines = s.fieldLines[:0]
	pos := struct{ line, col int }{line: s.numLine, col: 1}
parseField:
	for {
		// TrimLeadingSpace, as ReadCSV has always set it.
		i := bytes.IndexFunc(line, func(r rune) bool {
			return !unicode.IsSpace(r)
		})
		if i < 0 {
			i = len(line)
			pos.col -= lengthNL(line)
		}
		line = line[i:]
		pos.col += i
		if len(line) == 0 || line[0] != '"' {
			// Non-quoted string field
			i := bytes.IndexByte(line, ',')
			field := line
			if i >= 0 {
				field = field[:i]
			} else {
				field = field[:len(field)-lengthNL(field)]
			}
			// Check to make sure a quote does not appear in field.
			if j := bytes.IndexByte(field, '"'); j >= 0 {
				col := pos.col + j
				err = &csv.ParseError{StartLine: recLine, Line: s.numLine, Column: col, Err: csv.ErrBareQuote}
				break parseField
			}
			s.recordBuffer = append(s.recordBuffer, field...)
			s.fieldIndexes = append(s.fieldIndexes, len(s.recordBuffer))
			s.fieldLines = append(s.fieldLines, pos.line)
			if i >= 0 {
				line = line[i+commaLen:]
				pos.col += i + commaLen
				continue parseField
			}
			break parseField
		} else {
			// Quoted string field
			fieldLine := pos.line
			line = line[quoteLen:]
			pos.col += quoteLen
			for {
				i := bytes.IndexByte(line, '"')
				if i >= 0 {
					// Hit next quote.
					s.recordBuffer = append(s.recordBuffer, line[:i]...)
					line = line[i+quoteLen:]
					pos.col += i + quoteLen
					switch {
					case len(line) > 0 && line[0] == '"':
						// `""` sequence (append quote).
						s.recordBuffer = append(s.recordBuffer, '"')
						line = line[quoteLen:]
						pos.col += quoteLen
					case len(line) > 0 && line[0] == ',':
						// `",` sequence (end of field).
						line = line[commaLen:]
						pos.col += commaLen
						s.fieldIndexes = append(s.fieldIndexes, len(s.recordBuffer))
						s.fieldLines = append(s.fieldLines, fieldLine)
						continue parseField
					case lengthNL(line) == len(line):
						// `"\n` sequence (end of line).
						s.fieldIndexes = append(s.fieldIndexes, len(s.recordBuffer))
						s.fieldLines = append(s.fieldLines, fieldLine)
						break parseField
					default:
						// `"*` sequence (invalid non-escaped quote).
						err = &csv.ParseError{StartLine: recLine, Line: s.numLine, Column: pos.col - quoteLen, Err: csv.ErrQuote}
						break parseField
					}
				} else if len(line) > 0 {
					// Hit end of line (copy all data so far).
					s.recordBuffer = append(s.recordBuffer, line...)
					if errRead != nil {
						break parseField
					}
					pos.col += len(line)
					line, errRead = s.readLine()
					if len(line) > 0 {
						pos.line++
						pos.col = 1
					}
					if errRead == io.EOF {
						errRead = nil
					}
				} else {
					// Abrupt end of file (EOF or error).
					if errRead == nil {
						err = &csv.ParseError{StartLine: recLine, Line: pos.line, Column: pos.col, Err: csv.ErrQuote}
						break parseField
					}
					s.fieldIndexes = append(s.fieldIndexes, len(s.recordBuffer))
					s.fieldLines = append(s.fieldLines, fieldLine)
					break parseField
				}
			}
		}
	}
	if err == nil {
		err = errRead
	}
	if err != nil {
		return err
	}

	// Check or update the expected fields per record.
	if s.fieldsPerRecord > 0 {
		if len(s.fieldIndexes) != s.fieldsPerRecord {
			return &csv.ParseError{
				StartLine: recLine,
				Line:      recLine,
				Column:    1,
				Err:       csv.ErrFieldCount,
			}
		}
	} else {
		s.fieldsPerRecord = len(s.fieldIndexes)
	}
	return nil
}
