package table

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fd"
	"repro/internal/schema"
)

var quickSchema = schema.MustNew("Q", "A", "B", "C")

// genTable builds a table from raw byte seeds (3 values per tuple from
// a domain of 4, weight from 1..4).
func genTable(seeds []byte) *Table {
	t := New(quickSchema)
	for i := 0; i+3 < len(seeds); i += 4 {
		tup := Tuple{
			fmt.Sprintf("v%d", seeds[i]%4),
			fmt.Sprintf("v%d", seeds[i+1]%4),
			fmt.Sprintf("v%d", seeds[i+2]%4),
		}
		t.MustInsert(i/4+1, tup, float64(seeds[i+3]%4)+1)
	}
	return t
}

// Property: KeyOf is injective on projections — two tuples get the same
// key for an attribute set iff they agree on it.
func TestQuickKeyOfInjective(t *testing.T) {
	f := func(a1, b1, c1, a2, b2, c2 byte, attrRaw uint8) bool {
		attrs := schema.AttrSet(attrRaw) & quickSchema.AllAttrs()
		t1 := Tuple{fmt.Sprintf("x%d", a1%3), fmt.Sprintf("x%d", b1%3), fmt.Sprintf("x%d", c1%3)}
		t2 := Tuple{fmt.Sprintf("x%d", a2%3), fmt.Sprintf("x%d", b2%3), fmt.Sprintf("x%d", c2%3)}
		same := true
		for _, p := range attrs.Positions() {
			if t1[p] != t2[p] {
				same = false
			}
		}
		return (KeyOf(t1, attrs) == KeyOf(t2, attrs)) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(201))}); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupBy partitions the identifiers: disjoint groups whose
// union is ids(T), and members agree exactly on the grouping key.
func TestQuickGroupByPartition(t *testing.T) {
	f := func(seeds []byte, attrRaw uint8) bool {
		tab := genTable(seeds)
		attrs := schema.AttrSet(attrRaw) & quickSchema.AllAttrs()
		groups := tab.GroupBy(attrs)
		seen := map[int]bool{}
		for _, g := range groups {
			if len(g.IDs) == 0 {
				return false
			}
			first, _ := tab.Row(g.IDs[0])
			for _, id := range g.IDs {
				if seen[id] {
					return false
				}
				seen[id] = true
				r, _ := tab.Row(id)
				if KeyOf(r.Tuple, attrs) != KeyOf(first.Tuple, attrs) {
					return false
				}
			}
		}
		return len(seen) == tab.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(202))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hamming distance is a metric on tuples (identity,
// symmetry, triangle inequality).
func TestQuickHammingMetric(t *testing.T) {
	mk := func(a, b, c byte) Tuple {
		return Tuple{fmt.Sprintf("h%d", a%3), fmt.Sprintf("h%d", b%3), fmt.Sprintf("h%d", c%3)}
	}
	f := func(a1, b1, c1, a2, b2, c2, a3, b3, c3 byte) bool {
		t1, t2, t3 := mk(a1, b1, c1), mk(a2, b2, c2), mk(a3, b3, c3)
		if t1.Hamming(t1) != 0 {
			return false
		}
		if t1.Hamming(t2) != t2.Hamming(t1) {
			return false
		}
		if (t1.Hamming(t2) == 0) != t1.Equal(t2) {
			return false
		}
		return t1.Hamming(t3) <= t1.Hamming(t2)+t2.Hamming(t3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(203))}); err != nil {
		t.Fatal(err)
	}
}

// Property: SatisfiesFD agrees with the quadratic definition (every
// agreeing pair agrees on the rhs).
func TestQuickSatisfiesFDDefinition(t *testing.T) {
	f := func(seeds []byte, lhsRaw, rhsRaw uint8) bool {
		tab := genTable(seeds)
		lhs := schema.AttrSet(lhsRaw) & quickSchema.AllAttrs()
		rhs := schema.AttrSet(rhsRaw) & quickSchema.AllAttrs()
		fdd := fd.FD{LHS: lhs, RHS: rhs}
		want := true
		rows := tab.Rows()
		for i := 0; i < len(rows) && want; i++ {
			for j := i + 1; j < len(rows); j++ {
				if KeyOf(rows[i].Tuple, lhs) == KeyOf(rows[j].Tuple, lhs) &&
					KeyOf(rows[i].Tuple, rhs) != KeyOf(rows[j].Tuple, rhs) {
					want = false
					break
				}
			}
		}
		return tab.SatisfiesFD(fdd) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(204))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the conflict graph is sound and complete — {i, j} is an
// edge iff the two-row subtable violates the set.
func TestQuickConflictGraphDefinition(t *testing.T) {
	ds := fd.MustParseSet(quickSchema, "A -> B", "B -> C")
	f := func(seeds []byte) bool {
		tab := genTable(seeds)
		edges := map[ConflictEdge]bool{}
		for _, e := range tab.ConflictGraph(ds) {
			edges[e] = true
		}
		ids := tab.IDs()
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				pair := tab.MustSubsetByIDs([]int{ids[i], ids[j]})
				conflict := !pair.Satisfies(ds)
				e := ConflictEdge{ID1: ids[i], ID2: ids[j]}
				if e.ID1 > e.ID2 {
					e.ID1, e.ID2 = e.ID2, e.ID1
				}
				if edges[e] != conflict {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(205))}); err != nil {
		t.Fatal(err)
	}
}

// Property: dist_sub is additive over deleted tuples and dist_upd over
// changed cells; both vanish exactly on identity.
func TestQuickDistanceIdentities(t *testing.T) {
	f := func(seeds []byte, dropMask uint16) bool {
		tab := genTable(seeds)
		ids := tab.IDs()
		var keep []int
		var dropped float64
		for i, id := range ids {
			if dropMask&(1<<uint(i%16)) != 0 && i < 16 {
				dropped += tab.Weight(id)
				continue
			}
			keep = append(keep, id)
		}
		sub := tab.MustSubsetByIDs(keep)
		if !WeightEq(DistSub(sub, tab), dropped) {
			return false
		}
		if DistSub(tab, tab) != 0 {
			return false
		}
		return DistUpd(tab.Clone(), tab) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(206))}); err != nil {
		t.Fatal(err)
	}
}
