package cfd

// The encoded CFD engine: the same repair problem as repairProblem, but
// built over the table's cached int32 projection codes instead of
// string-typed tuple scans. Pattern matching touches strings once per
// row (to test the constant entries of the tableau); everything pairwise
// — agreement on X, disagreement on A — happens on codes, and the
// per-pattern conflict groups fan out on the solve context's
// work-stealing scheduler. The seed path stays as the differential
// oracle: both construct the identical vertex-cover instance (same
// vertex order, same lexicographically sorted deduplicated edge list),
// so the unchanged cover solvers return byte-identical repairs.

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
)

// cfdUnit is one independent conflict unit of the encoded engine: the
// survivors matching one CFD's pattern that agree on its lhs projection,
// plus that CFD's rhs code column. Units are scanned for conflicting
// pairs independently, so they become scheduler tasks.
type cfdUnit struct {
	members  []int32 // survivor ordinals, ascending
	rhsCodes []int32 // whole-table rhs codes, indexed by row index
	rows     []int32 // survivor ordinal -> row index
}

// edgesOf enumerates the unit's conflict edges (pairs of survivor
// ordinals with differing rhs codes) in output-proportional time:
// members are bucketed by rhs code, and edges are the cross pairs of
// distinct buckets — never the O(g²) scan of a clean group.
func (u cfdUnit) edgesOf(buf [][2]int32) [][2]int32 {
	// Bucket by rhs code in first-appearance order, preserving the
	// ascending ordinal order within buckets.
	type bucket struct {
		code    int32
		members []int32
	}
	var buckets []bucket
	idx := make(map[int32]int, 4)
	for _, m := range u.members {
		code := u.rhsCodes[u.rows[m]]
		b, ok := idx[code]
		if !ok {
			b = len(buckets)
			idx[code] = b
			buckets = append(buckets, bucket{code: code})
		}
		buckets[b].members = append(buckets[b].members, m)
	}
	if len(buckets) < 2 {
		return buf
	}
	for a := 0; a < len(buckets); a++ {
		for b := a + 1; b < len(buckets); b++ {
			for _, u1 := range buckets[a].members {
				for _, u2 := range buckets[b].members {
					lo, hi := u1, u2
					if lo > hi {
						lo, hi = hi, lo
					}
					buf = append(buf, [2]int32{lo, hi})
				}
			}
		}
	}
	return buf
}

// repairProblemCtx is repairProblem over the encoded core: forced
// deletions from a linear unary-violation pass, survivors grouped per
// CFD by cached lhs projection codes, conflict edges collected per
// (CFD, group) unit on the scheduler, then sorted and deduplicated into
// the exact graph repairProblem builds — same vertex order (survivors in
// row order), same edge order (lexicographic by endpoint pair), so the
// cover solvers behave identically.
func repairProblemCtx(c *solve.Ctx, cs []*CFD, t *table.Table) (forced []int, g *graph.Graph, ids []int, err error) {
	c = c.BeginSolve()
	rows := t.Rows()
	n := len(rows)
	codes := t.DistinctEstimate()
	if codes > n {
		codes = n
	}
	c.SetHints(solve.Hints{Rows: n, Codes: codes})
	c.Stats().CFDPattern(len(cs))

	// Forced deletions: unary violators, in row order (matching the seed
	// scan). Constants are the only string comparisons in the engine.
	forcedMask := make([]bool, n)
	for ri := range rows {
		for _, cf := range cs {
			if cf.UnaryViolation(rows[ri].Tuple) {
				forcedMask[ri] = true
				forced = append(forced, rows[ri].ID)
				break
			}
		}
	}
	// Survivors in row order; graph vertices are survivor ordinals.
	surv := make([]int32, 0, n-len(forced))
	ids = make([]int, 0, n-len(forced))
	weights := make([]float64, 0, n-len(forced))
	for ri := range rows {
		if !forcedMask[ri] {
			surv = append(surv, int32(ri))
			ids = append(ids, rows[ri].ID)
			weights = append(weights, rows[ri].Weight)
		}
	}
	g = graph.MustNewGraph(weights)

	// One grouping pass per CFD: survivors matching the lhs pattern,
	// bucketed by lhs projection code. Groups with ≥ 2 members become
	// conflict units.
	var units []cfdUnit
	for _, cf := range cs {
		if err := c.Err(); err != nil {
			return nil, nil, nil, err
		}
		var lhsSet schema.AttrSet
		for _, p := range cf.lhs {
			lhsSet = lhsSet.Add(p)
		}
		lhsCodes, lhsGroups := t.ProjectionCodes(lhsSet)
		rhsCodes, _ := t.ProjectionCodes(schema.Singleton(cf.rhs))
		codeToLocal := c.Int32s(lhsGroups)
		for i := range codeToLocal {
			codeToLocal[i] = -1
		}
		var groups [][]int32 // survivor ordinals per lhs code
		for ord, ri := range surv {
			if !cf.matchesLHS(rows[ri].Tuple) {
				continue
			}
			l := codeToLocal[lhsCodes[ri]]
			if l < 0 {
				l = int32(len(groups))
				codeToLocal[lhsCodes[ri]] = l
				groups = append(groups, nil)
			}
			groups[l] = append(groups[l], int32(ord))
		}
		c.PutInt32s(codeToLocal)
		for _, members := range groups {
			if len(members) >= 2 {
				units = append(units, cfdUnit{members: members, rhsCodes: rhsCodes, rows: surv})
			}
		}
	}

	// Fan the units onto the scheduler, one edge buffer per unit; the
	// deterministic merge below makes the collection order irrelevant.
	unitEdges := make([][][2]int32, len(units))
	err = c.ForEachBlock(len(units),
		func(i int) int { return len(units[i].members) },
		func(wc *solve.Ctx, i int) error {
			if err := wc.Err(); err != nil {
				return err
			}
			unitEdges[i] = units[i].edgesOf(nil)
			return nil
		})
	if err != nil {
		return nil, nil, nil, err
	}
	total := 0
	for _, es := range unitEdges {
		total += len(es)
	}
	all := make([][2]int32, 0, total)
	for _, es := range unitEdges {
		all = append(all, es...)
	}
	slices.SortFunc(all, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range all {
		if e == prev {
			continue
		}
		prev = e
		g.AddEdgeUnchecked(int(e[0]), int(e[1]))
	}
	return forced, g, ids, nil
}

// ExactSRepairCtx is ExactSRepair on the encoded core under a solve
// context: the conflict instance is built from cached projection codes
// with per-pattern groups fanned onto the context's scheduler, and the
// branch-and-bound cover search honors the context's cancellation.
// Results are byte-identical to ExactSRepair.
func ExactSRepairCtx(c *solve.Ctx, cs []*CFD, t *table.Table) (Result, error) {
	forced, g, ids, err := repairProblemCtx(c, cs, t)
	if err != nil {
		return Result{}, err
	}
	cover, err := g.ExactMinVertexCoverCtx(c)
	if err != nil {
		return Result{}, err
	}
	return assemble(t, forced, ids, cover), nil
}

// Approx2SRepairCtx is Approx2SRepair on the encoded core: the
// polynomial path, linear in rows and conflict edges instead of
// quadratic in rows. Results are byte-identical to Approx2SRepair.
func Approx2SRepairCtx(c *solve.Ctx, cs []*CFD, t *table.Table) (Result, error) {
	forced, g, ids, err := repairProblemCtx(c, cs, t)
	if err != nil {
		return Result{}, err
	}
	return assemble(t, forced, ids, g.ApproxVertexCoverBE()), nil
}
