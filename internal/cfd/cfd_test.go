package cfd

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

var cust = schema.MustNew("Cust", "country", "areaCode", "city")

func mustCFD(t testing.TB, sc *schema.Schema, spec string, lhsPat []table.Value, rhsPat table.Value) *CFD {
	t.Helper()
	f, err := fd.Parse(sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(sc, f, lhsPat, rhsPat)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	f, _ := fd.Parse(cust, "country areaCode -> city")
	if _, err := New(nil, f, []table.Value{"_", "_"}, "_"); err == nil {
		t.Error("nil schema must be rejected")
	}
	if _, err := New(cust, f, []table.Value{"_"}, "_"); err == nil {
		t.Error("pattern arity mismatch must be rejected")
	}
	wide, _ := fd.Parse(cust, "country -> areaCode city")
	if _, err := New(cust, wide, []table.Value{"_"}, "_"); err == nil {
		t.Error("multi-attribute rhs must be rejected")
	}
}

// TestClassicCFD: the textbook example — within country 44 (UK), area
// code 131 determines city Edinburgh. The constant rhs creates unary
// violations; the wildcard-free lhs limits scope.
func TestClassicCFD(t *testing.T) {
	c := mustCFD(t, cust, "country areaCode -> city", []table.Value{"44", "131"}, "EDI")
	if !strings.Contains(c.String(), "44, 131 ‖ EDI") {
		t.Errorf("String = %q", c.String())
	}
	ok := table.Tuple{"44", "131", "EDI"}
	bad := table.Tuple{"44", "131", "LON"}
	other := table.Tuple{"01", "131", "NYC"} // different country: out of scope
	if c.UnaryViolation(ok) || !c.UnaryViolation(bad) || c.UnaryViolation(other) {
		t.Fatal("unary violation detection wrong")
	}
	tab := table.New(cust)
	tab.MustInsert(1, ok, 1)
	tab.MustInsert(2, bad, 1)
	tab.MustInsert(3, other, 1)
	if Satisfies([]*CFD{c}, tab) {
		t.Fatal("table must violate the CFD")
	}
	res, err := ExactSRepair([]*CFD{c}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forced) != 1 || res.Forced[0] != 2 {
		t.Fatalf("forced = %v, want [2]", res.Forced)
	}
	if !table.WeightEq(res.TotalCost, 1) || !res.Repair.Has(1) || !res.Repair.Has(3) {
		t.Fatalf("repair = %v cost %v", res.Repair.IDs(), res.TotalCost)
	}
	if !Satisfies([]*CFD{c}, res.Repair) {
		t.Fatal("repair still violates")
	}
}

// TestWildcardCFDEqualsFD: a CFD with all-wildcard pattern behaves
// exactly like its embedded FD — same optimal repair cost on random
// tables.
func TestWildcardCFDEqualsFD(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	var cs []*CFD
	for _, f := range ds.Canonical().FDs() {
		c, err := FromFD(sc, f)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	rng := rand.New(rand.NewSource(151))
	for iter := 0; iter < 12; iter++ {
		tab := workload.RandomWeightedTable(sc, 8, 2, 3, rng)
		if Satisfies(cs, tab) != tab.Satisfies(ds) {
			t.Fatal("satisfaction disagrees with the embedded FDs")
		}
		res, err := ExactSRepair(cs, tab)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Forced) != 0 {
			t.Fatal("wildcard CFDs cannot force deletions")
		}
		viaFD, err := srepair.Exact(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !table.WeightEq(res.TotalCost, table.DistSub(viaFD, tab)) {
			t.Fatalf("CFD cost %v != FD cost %v", res.TotalCost, table.DistSub(viaFD, tab))
		}
	}
}

// TestBinaryViolationScoped: the lhs pattern restricts which pairs
// conflict.
func TestBinaryViolationScoped(t *testing.T) {
	// Within country 44 only, areaCode determines city.
	c := mustCFD(t, cust, "country areaCode -> city", []table.Value{"44", "_"}, "_")
	inUK1 := table.Tuple{"44", "20", "LON"}
	inUK2 := table.Tuple{"44", "20", "MAN"}
	inUS1 := table.Tuple{"01", "20", "NYC"}
	inUS2 := table.Tuple{"01", "20", "LAX"}
	if !c.BinaryViolation(inUK1, inUK2) {
		t.Fatal("UK pair must conflict")
	}
	if c.BinaryViolation(inUS1, inUS2) {
		t.Fatal("US pair is out of the CFD's scope")
	}
}

// TestExactAgainstBruteForce validates the forced+cover decomposition
// against subset enumeration on tiny random instances with random
// patterns.
func TestExactAgainstBruteForce(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	rng := rand.New(rand.NewSource(153))
	f, _ := fd.Parse(sc, "A -> B")
	for iter := 0; iter < 20; iter++ {
		lhsPat := table.Value(Wildcard)
		if rng.Intn(2) == 0 {
			lhsPat = "v0"
		}
		rhsPat := table.Value(Wildcard)
		if rng.Intn(2) == 0 {
			rhsPat = "v1"
		}
		c, err := New(sc, f, []table.Value{lhsPat}, rhsPat)
		if err != nil {
			t.Fatal(err)
		}
		cs := []*CFD{c}
		tab := workload.RandomWeightedTable(sc, 6, 2, 2, rng)
		res, err := ExactSRepair(cs, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !Satisfies(cs, res.Repair) {
			t.Fatal("exact repair violates")
		}
		// Brute force over all subsets.
		ids := tab.IDs()
		best := math.Inf(1)
		for mask := 0; mask < 1<<uint(len(ids)); mask++ {
			var keep []int
			for i := range ids {
				if mask&(1<<uint(i)) != 0 {
					keep = append(keep, ids[i])
				}
			}
			sub := tab.MustSubsetByIDs(keep)
			if Satisfies(cs, sub) {
				if d := table.DistSub(sub, tab); d < best {
					best = d
				}
			}
		}
		if !table.WeightEq(res.TotalCost, best) {
			t.Fatalf("iter %d: exact %v, brute force %v (cfd %s)\n%s",
				iter, res.TotalCost, best, c, tab)
		}
		// The 2-approximation respects its bound and forced deletions.
		ap, err := Approx2SRepair(cs, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !Satisfies(cs, ap.Repair) {
			t.Fatal("approx repair violates")
		}
		if ap.TotalCost > 2*best+1e-9 {
			t.Fatalf("approx %v > 2×opt %v", ap.TotalCost, best)
		}
	}
}

// TestForcedCostAccounting: ForcedCost sums the weights of unary
// violators.
func TestForcedCostAccounting(t *testing.T) {
	c := mustCFD(t, cust, "country -> city", []table.Value{"44"}, "LON")
	tab := table.New(cust)
	tab.MustInsert(1, table.Tuple{"44", "20", "LON"}, 1)
	tab.MustInsert(2, table.Tuple{"44", "131", "EDI"}, 3) // unary violation
	res, err := ExactSRepair([]*CFD{c}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(res.ForcedCost, 3) || !table.WeightEq(res.TotalCost, 3) {
		t.Fatalf("forced %v total %v, want 3/3", res.ForcedCost, res.TotalCost)
	}
}
