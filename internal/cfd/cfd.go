// Package cfd implements conditional functional dependencies (CFDs,
// Bohannon et al., cited as [10] and raised as future work in Section 5
// of the paper) and optimal subset repairs under them.
//
// A CFD (X → A, tp) is an FD that applies only to tuples matching a
// pattern: tp assigns to each attribute of X and to A either a constant
// or the wildcard "_". Two tuples violate the CFD when they agree on X,
// match the X-pattern, and disagree on A or fail the A-pattern. Unlike
// plain FDs, CFDs also have single-tuple violations: when tp[A] is a
// constant, a tuple matching the X-pattern must carry that constant.
//
// For subset repairs this changes the picture only slightly: tuples
// with a unary violation are forced deletions (they violate the CFD on
// their own and belong to no consistent subset), and the remaining
// conflicts are pairwise, so the vertex-cover machinery of Proposition
// 3.3 — exact branch and bound and the Bar-Yehuda–Even 2-approximation
// — carries over on the residual table. The FD dichotomy itself does
// not transfer (the paper leaves richer constraint classes open).
package cfd

import (
	"fmt"
	"strings"

	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/table"
)

// Wildcard is the pattern entry matching any value.
const Wildcard = "_"

// CFD is a conditional functional dependency (X → A, tp).
type CFD struct {
	sc *schema.Schema
	// lhs attribute positions in schema order, rhs position.
	lhs []int
	rhs int
	// lhsPat[i] conditions lhs[i]; rhsPat conditions rhs. Entries are
	// constants or Wildcard.
	lhsPat []table.Value
	rhsPat table.Value
}

// New builds a CFD from an embedded FD X → A (single-attribute rhs),
// the lhs pattern (one entry per attribute of X in schema order) and
// the rhs pattern entry.
func New(sc *schema.Schema, embedded fd.FD, lhsPattern []table.Value, rhsPattern table.Value) (*CFD, error) {
	if sc == nil {
		return nil, fmt.Errorf("cfd: nil schema")
	}
	if embedded.RHS.Len() != 1 {
		return nil, fmt.Errorf("cfd: embedded FD must have a single rhs attribute")
	}
	if !embedded.LHS.IsSubsetOf(sc.AllAttrs()) || !embedded.RHS.IsSubsetOf(sc.AllAttrs()) {
		return nil, fmt.Errorf("cfd: embedded FD outside schema %s", sc)
	}
	lhs := embedded.LHS.Positions()
	if len(lhsPattern) != len(lhs) {
		return nil, fmt.Errorf("cfd: lhs pattern has %d entries for %d attributes", len(lhsPattern), len(lhs))
	}
	return &CFD{
		sc:     sc,
		lhs:    lhs,
		rhs:    embedded.RHS.First(),
		lhsPat: append([]table.Value(nil), lhsPattern...),
		rhsPat: rhsPattern,
	}, nil
}

// FromFD embeds a plain FD X → A as the CFD with all-wildcard pattern.
func FromFD(sc *schema.Schema, embedded fd.FD) (*CFD, error) {
	pat := make([]table.Value, embedded.LHS.Len())
	for i := range pat {
		pat[i] = Wildcard
	}
	return New(sc, embedded, pat, Wildcard)
}

// String renders the CFD as "X → A | (p1, ..., pk ‖ pA)".
func (c *CFD) String() string {
	names := make([]string, len(c.lhs))
	for i, p := range c.lhs {
		names[i] = c.sc.AttrName(p)
	}
	return fmt.Sprintf("%s → %s | (%s ‖ %s)",
		strings.Join(names, " "), c.sc.AttrName(c.rhs),
		strings.Join(c.lhsPat, ", "), c.rhsPat)
}

// matchesLHS reports whether the tuple matches every constant of the
// lhs pattern.
func (c *CFD) matchesLHS(t table.Tuple) bool {
	for i, p := range c.lhs {
		if c.lhsPat[i] != Wildcard && t[p] != c.lhsPat[i] {
			return false
		}
	}
	return true
}

// UnaryViolation reports whether the tuple violates the CFD on its own:
// it matches the lhs pattern but fails a constant rhs pattern.
func (c *CFD) UnaryViolation(t table.Tuple) bool {
	return c.rhsPat != Wildcard && c.matchesLHS(t) && t[c.rhs] != c.rhsPat
}

// BinaryViolation reports whether two tuples jointly violate the CFD:
// both match the lhs pattern, agree on X, and disagree on A. (Failing
// rhs patterns are unary violations, reported separately.)
func (c *CFD) BinaryViolation(t1, t2 table.Tuple) bool {
	if !c.matchesLHS(t1) || !c.matchesLHS(t2) {
		return false
	}
	for _, p := range c.lhs {
		if t1[p] != t2[p] {
			return false
		}
	}
	return t1[c.rhs] != t2[c.rhs]
}

// Satisfies reports whether the table satisfies every CFD.
func Satisfies(cs []*CFD, t *table.Table) bool {
	rows := t.Rows()
	for _, c := range cs {
		for i := range rows {
			if c.UnaryViolation(rows[i].Tuple) {
				return false
			}
			for j := i + 1; j < len(rows); j++ {
				if c.BinaryViolation(rows[i].Tuple, rows[j].Tuple) {
					return false
				}
			}
		}
	}
	return true
}

// repairProblem splits the instance: forced deletions (unary violators)
// and the vertex-cover instance over the survivors.
func repairProblem(cs []*CFD, t *table.Table) (forced []int, g *graph.Graph, ids []int) {
	forcedSet := map[int]bool{}
	for _, r := range t.Rows() {
		for _, c := range cs {
			if c.UnaryViolation(r.Tuple) {
				forcedSet[r.ID] = true
				forced = append(forced, r.ID)
				break
			}
		}
	}
	for _, r := range t.Rows() {
		if !forcedSet[r.ID] {
			ids = append(ids, r.ID)
		}
	}
	weights := make([]float64, len(ids))
	index := map[int]int{}
	for i, id := range ids {
		index[id] = i
		weights[i] = t.Weight(id)
	}
	g = graph.MustNewGraph(weights)
	for i := 0; i < len(ids); i++ {
		ri, _ := t.Row(ids[i])
		for j := i + 1; j < len(ids); j++ {
			rj, _ := t.Row(ids[j])
			for _, c := range cs {
				if c.BinaryViolation(ri.Tuple, rj.Tuple) {
					if err := g.AddEdge(i, j); err != nil {
						panic(err)
					}
					break
				}
			}
		}
	}
	return forced, g, ids
}

// Result is a subset repair under CFDs with its cost split into forced
// deletions (unary violations) and chosen deletions (conflict cover).
type Result struct {
	Repair     *table.Table
	Forced     []int
	ForcedCost float64
	TotalCost  float64
}

func assemble(t *table.Table, forced, ids []int, cover map[int]bool) Result {
	var keep []int
	for i, id := range ids {
		if !cover[i] {
			keep = append(keep, id)
		}
	}
	rep := t.MustSubsetByIDs(keep)
	res := Result{Repair: rep, Forced: forced}
	for _, id := range forced {
		res.ForcedCost += t.Weight(id)
	}
	res.TotalCost = table.DistSub(rep, t)
	return res
}

// ExactSRepair computes an optimal subset repair under the CFDs:
// unary violators are deleted outright (no consistent subset contains
// them), and a minimum-weight vertex cover resolves the remaining
// pairwise conflicts. Exponential in the worst case; size-guarded.
func ExactSRepair(cs []*CFD, t *table.Table) (Result, error) {
	forced, g, ids := repairProblem(cs, t)
	cover, err := g.ExactMinVertexCover()
	if err != nil {
		return Result{}, err
	}
	return assemble(t, forced, ids, cover), nil
}

// Approx2SRepair is the polynomial counterpart: forced deletions plus
// the Bar-Yehuda–Even cover. Because forced deletions belong to every
// consistent subset, the overall cost is still within twice the
// optimum.
func Approx2SRepair(cs []*CFD, t *table.Table) (Result, error) {
	forced, g, ids := repairProblem(cs, t)
	return assemble(t, forced, ids, g.ApproxVertexCoverBE()), nil
}
