package cfd

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
	"repro/internal/workload"
)

// The encoded engine must reproduce the seed implementation
// byte-identically: same repair rows in the same order, same forced
// list, same costs — at every worker count. The seed path stays in the
// tree exactly to serve as this oracle.

var diffWorkers = []int{1, 2, 4, 8}

func sameTables(t *testing.T, label string, want, got *table.Table) {
	t.Helper()
	wr, gr := want.Rows(), got.Rows()
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d rows, oracle has %d", label, len(gr), len(wr))
	}
	for i := range wr {
		if wr[i].ID != gr[i].ID || wr[i].Weight != gr[i].Weight ||
			!reflect.DeepEqual(wr[i].Tuple, gr[i].Tuple) {
			t.Fatalf("%s: row %d diverges: got %+v, oracle %+v", label, i, gr[i], wr[i])
		}
	}
}

// randomCFDs draws 1..3 CFDs over sc whose pattern constants are
// sampled from the table's own cells, so patterns actually select rows.
func randomCFDs(t *testing.T, sc *schema.Schema, tab *table.Table, rng *rand.Rand) []*CFD {
	t.Helper()
	pick := func(attr int) table.Value {
		rows := tab.Rows()
		if len(rows) == 0 {
			return "z"
		}
		return rows[rng.Intn(len(rows))].Tuple[attr]
	}
	n := 1 + rng.Intn(3)
	cs := make([]*CFD, 0, n)
	for i := 0; i < n; i++ {
		var lhs schema.AttrSet
		lhs = lhs.Add(rng.Intn(sc.Arity() - 1))
		if rng.Intn(2) == 0 {
			lhs = lhs.Add(rng.Intn(sc.Arity() - 1))
		}
		rhsAttr := sc.Arity() - 1
		f := fd.FD{LHS: lhs, RHS: schema.AttrSet(0).Add(rhsAttr)}
		lhsPat := make([]table.Value, 0, lhs.Len())
		for _, p := range lhs.Positions() {
			if rng.Intn(2) == 0 {
				lhsPat = append(lhsPat, Wildcard)
			} else {
				lhsPat = append(lhsPat, pick(p))
			}
		}
		rhsPat := table.Value(Wildcard)
		if rng.Intn(3) == 0 {
			rhsPat = pick(rhsAttr)
		}
		c, err := New(sc, f, lhsPat, rhsPat)
		if err != nil {
			t.Fatalf("building CFD: %v", err)
		}
		cs = append(cs, c)
	}
	return cs
}

func randomCFDTable(sc *schema.Schema, maxN int, rng *rand.Rand) *table.Table {
	n := rng.Intn(maxN + 1)
	if rng.Intn(2) == 0 {
		return workload.CFDTable(sc, n, 1+rng.Intn(5), 1+rng.Intn(3), 1+rng.Intn(3), rng)
	}
	return workload.RandomTable(sc, n, 1+rng.Intn(4), rng)
}

func TestDifferentialCFDApprox(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		tab := randomCFDTable(sc, 240, rng)
		cs := randomCFDs(t, sc, tab, rng)
		want, err := Approx2SRepair(cs, tab)
		if err != nil {
			t.Fatalf("trial %d: seed approx: %v", trial, err)
		}
		for _, w := range diffWorkers {
			got, err := Approx2SRepairCtx(solve.New(w, nil, nil), cs, tab)
			if err != nil {
				t.Fatalf("trial %d workers=%d: encoded approx: %v", trial, w, err)
			}
			if !reflect.DeepEqual(got.Forced, want.Forced) ||
				got.ForcedCost != want.ForcedCost || got.TotalCost != want.TotalCost {
				t.Fatalf("trial %d workers=%d: accounting diverges: got %+v, oracle %+v",
					trial, w, got, want)
			}
			sameTables(t, "approx repair", want.Repair, got.Repair)
		}
	}
}

func TestDifferentialCFDExact(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		tab := randomCFDTable(sc, 48, rng)
		cs := randomCFDs(t, sc, tab, rng)
		want, wantErr := ExactSRepair(cs, tab)
		for _, w := range diffWorkers {
			got, err := ExactSRepairCtx(solve.New(w, nil, nil), cs, tab)
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("trial %d workers=%d: error mismatch: got %v, oracle %v",
					trial, w, err, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !reflect.DeepEqual(got.Forced, want.Forced) ||
				got.ForcedCost != want.ForcedCost || got.TotalCost != want.TotalCost {
				t.Fatalf("trial %d workers=%d: accounting diverges: got %+v, oracle %+v",
					trial, w, got, want)
			}
			sameTables(t, "exact repair", want.Repair, got.Repair)
		}
	}
}
