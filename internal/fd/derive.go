package fd

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// DerivationStep is one application of an FD during a closure
// computation: firing FD added the attributes Added to the closure.
type DerivationStep struct {
	FD    FD
	Added schema.AttrSet
}

// Explain determines whether Δ ⊧ X → Y and, when it does, returns a
// derivation: the sequence of FDs fired by the closure computation,
// pruned to those actually needed to reach Y. An entailed trivial FD
// yields an empty derivation.
func (s *Set) Explain(target FD) ([]DerivationStep, bool) {
	cl := target.LHS
	var fired []DerivationStep
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			if f.LHS.IsSubsetOf(cl) && !f.RHS.IsSubsetOf(cl) {
				added := f.RHS.Diff(cl)
				cl = cl.Union(f.RHS)
				fired = append(fired, DerivationStep{FD: f, Added: added})
				changed = true
			}
		}
	}
	if !target.RHS.IsSubsetOf(cl) {
		return nil, false
	}
	// Backward pruning: keep only the steps whose contributions are
	// (transitively) needed for the target rhs.
	needed := target.RHS.Diff(target.LHS)
	keep := make([]bool, len(fired))
	for i := len(fired) - 1; i >= 0; i-- {
		if fired[i].Added.Intersects(needed) {
			keep[i] = true
			needed = needed.Diff(fired[i].Added).Union(fired[i].FD.LHS.Diff(target.LHS))
		}
	}
	var out []DerivationStep
	for i, st := range fired {
		if keep[i] {
			out = append(out, st)
		}
	}
	return out, true
}

// RenderDerivation formats a derivation in the style of a textbook
// Armstrong-axioms proof:
//
//	given facility; fire facility → city (adds city); ...
func (s *Set) RenderDerivation(target FD, steps []DerivationStep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "prove %s:\n", s.FDString(target))
	fmt.Fprintf(&b, "  start with %s\n", s.sc.SetString(target.LHS))
	for _, st := range steps {
		fmt.Fprintf(&b, "  fire %s (adds %s)\n", s.FDString(st.FD), s.sc.SetString(st.Added))
	}
	fmt.Fprintf(&b, "  ⊢ %s reached\n", s.sc.SetString(target.RHS))
	return b.String()
}
