package fd

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

var rABC = schema.MustNew("R", "A", "B", "C")

func TestParse(t *testing.T) {
	f, err := Parse(rABC, "A B -> C")
	if err != nil {
		t.Fatal(err)
	}
	if f.LHS != rABC.MustSet("A", "B") || f.RHS != rABC.MustSet("C") {
		t.Fatalf("Parse gave %v", f)
	}
	// Unicode arrow and consensus lhs.
	f, err = Parse(rABC, "∅ → C")
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsConsensus() {
		t.Fatal("∅ → C should be consensus")
	}
	f, err = Parse(rABC, " -> B")
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsConsensus() {
		t.Fatal("-> B should be consensus")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"A B C", "A -> Z", "Z -> A", "A -> "} {
		if _, err := Parse(rABC, spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestNewSetValidation(t *testing.T) {
	bad := FD{LHS: schema.Singleton(10), RHS: schema.Singleton(0)}
	if _, err := NewSet(rABC, bad); err == nil {
		t.Error("FD outside schema should be rejected")
	}
	if _, err := NewSet(nil); err == nil {
		t.Error("nil schema should be rejected")
	}
}

func TestTrivialAndConsensus(t *testing.T) {
	set := MustParseSet(rABC, "A -> A", "A B -> B", "-> C", "A -> B")
	if set.IsTrivialSet() {
		t.Error("set has nontrivial FDs")
	}
	nt := set.RemoveTrivial()
	if nt.Len() != 2 {
		t.Fatalf("RemoveTrivial kept %d FDs, want 2", nt.Len())
	}
	cf, ok := nt.ConsensusFD()
	if !ok || cf.RHS != rABC.MustSet("C") {
		t.Fatalf("ConsensusFD = %v, %v", cf, ok)
	}
	triv := MustParseSet(rABC, "A -> A", "A B -> A")
	if !triv.IsTrivialSet() {
		t.Error("all-trivial set should be trivial")
	}
	if !MustParseSet(rABC).IsTrivialSet() {
		t.Error("empty set should be trivial")
	}
}

func TestClosure(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> C")
	if got := set.Closure(rABC.MustSet("A")); got != rABC.AllAttrs() {
		t.Errorf("cl(A) = %v, want all", rABC.SetString(got))
	}
	if got := set.Closure(rABC.MustSet("B")); got != rABC.MustSet("B", "C") {
		t.Errorf("cl(B) = %v", rABC.SetString(got))
	}
	if got := set.Closure(rABC.MustSet("C")); got != rABC.MustSet("C") {
		t.Errorf("cl(C) = %v", rABC.SetString(got))
	}
	if got := set.ConsensusAttrs(); !got.IsEmpty() {
		t.Errorf("cl(∅) = %v, want ∅", rABC.SetString(got))
	}
	withCons := MustParseSet(rABC, "-> A", "A -> B")
	if got := withCons.ConsensusAttrs(); got != rABC.MustSet("A", "B") {
		t.Errorf("cl(∅) = %v, want A B", rABC.SetString(got))
	}
	if withCons.IsConsensusFree() {
		t.Error("set with consensus FD is not consensus free")
	}
}

func TestEntailsAndEquivalence(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> C")
	mustFD := func(spec string) FD {
		f, err := Parse(rABC, spec)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if !set.Entails(mustFD("A -> C")) {
		t.Error("A → C should be entailed")
	}
	if set.Entails(mustFD("C -> A")) {
		t.Error("C → A should not be entailed")
	}
	if !set.Entails(mustFD("A B -> A")) {
		t.Error("trivial FDs are always entailed")
	}
	eq := MustParseSet(rABC, "A -> B C", "B -> C")
	if !set.EquivalentTo(eq) {
		t.Error("sets should be equivalent")
	}
	neq := MustParseSet(rABC, "A -> B")
	if set.EquivalentTo(neq) {
		t.Error("sets should differ")
	}
}

func TestCanonical(t *testing.T) {
	set := MustParseSet(rABC, "A -> B C", "A -> B", "A -> A", "B -> B C")
	can := set.Canonical()
	if can.Len() != 3 { // A→B, A→C, B→C
		t.Fatalf("Canonical has %d FDs: %v", can.Len(), can)
	}
	for _, f := range can.FDs() {
		if f.RHS.Len() != 1 {
			t.Errorf("canonical FD has multi-attribute rhs: %v", can.FDString(f))
		}
		if f.IsTrivial() {
			t.Errorf("canonical FD is trivial: %v", can.FDString(f))
		}
	}
	if !can.EquivalentTo(set) {
		t.Error("Canonical must preserve equivalence")
	}
}

func TestMinus(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D")
	set := MustParseSet(sc, "A B -> C", "A -> D", "C -> A")
	m := set.Minus(sc.MustSet("A"))
	// A B -> C becomes B -> C; A -> D becomes ∅ -> D; C -> A becomes trivial.
	if m.Len() != 2 {
		t.Fatalf("Minus(A) = %v", m)
	}
	if m.AttrsUsed().Intersects(sc.MustSet("A")) {
		t.Error("Minus(A) still mentions A")
	}
	cf, ok := m.ConsensusFD()
	if !ok || cf.RHS != sc.MustSet("D") {
		t.Errorf("expected consensus ∅ → D, got %v %v", cf, ok)
	}
}

func TestMinimalCover(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> C", "A -> C", "A B -> C")
	mc := set.MinimalCover()
	if !mc.EquivalentTo(set) {
		t.Fatal("minimal cover must be equivalent")
	}
	if mc.Len() != 2 {
		t.Errorf("minimal cover has %d FDs (%v), want 2", mc.Len(), mc)
	}
}

func TestStringRendering(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "-> C")
	s := set.String()
	if !strings.Contains(s, "A → B") || !strings.Contains(s, "∅ → C") {
		t.Errorf("String() = %q", s)
	}
}
