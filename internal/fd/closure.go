package fd

import "repro/internal/schema"

// Closure returns cl_Δ(X): the set of all attributes A such that X → A
// is entailed by Δ. Runs the standard fixpoint computation; with bitset
// attribute sets each pass is O(|Δ|).
func (s *Set) Closure(x schema.AttrSet) schema.AttrSet {
	cl := x
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			if f.LHS.IsSubsetOf(cl) && !f.RHS.IsSubsetOf(cl) {
				cl = cl.Union(f.RHS)
				changed = true
			}
		}
	}
	return cl
}

// Entails reports whether Δ ⊧ X → Y.
func (s *Set) Entails(f FD) bool {
	return f.RHS.IsSubsetOf(s.Closure(f.LHS))
}

// EquivalentTo reports whether the two FD sets (over the same schema)
// have the same closure: each FD of one is entailed by the other.
func (s *Set) EquivalentTo(t *Set) bool {
	if !s.sc.SameAs(t.sc) {
		return false
	}
	for _, f := range s.fds {
		if !t.Entails(f) {
			return false
		}
	}
	for _, f := range t.fds {
		if !s.Entails(f) {
			return false
		}
	}
	return true
}

// ConsensusAttrs returns cl_Δ(∅): the set of consensus attributes.
func (s *Set) ConsensusAttrs() schema.AttrSet {
	return s.Closure(schema.EmptySet)
}

// IsConsensusFree reports whether Δ has no consensus attributes.
func (s *Set) IsConsensusFree() bool { return s.ConsensusAttrs().IsEmpty() }

// RemoveTrivial returns the set with every trivial FD (RHS ⊆ LHS)
// removed, as in line 3 of OptSRepair.
func (s *Set) RemoveTrivial() *Set {
	out := make([]FD, 0, len(s.fds))
	for _, f := range s.fds {
		if !f.IsTrivial() {
			out = append(out, f)
		}
	}
	return s.with(out)
}

// Canonical returns an equivalent FD set in which every FD has a single
// attribute on the right-hand side, trivial FDs are removed, and exact
// duplicates are merged. This is the normal form assumed throughout
// Section 3 of the paper ("every FD has the form X → A").
func (s *Set) Canonical() *Set {
	seen := make(map[FD]bool)
	out := make([]FD, 0, len(s.fds))
	for _, f := range s.fds {
		for _, a := range f.RHS.Diff(f.LHS).Positions() {
			g := FD{LHS: f.LHS, RHS: schema.Singleton(a)}
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	return s.with(out)
}

// Minus returns Δ − X: the set obtained by removing every attribute of x
// from the lhs and rhs of every FD. FDs whose projection becomes trivial
// (including those whose rhs becomes empty) are dropped, matching the
// trivial-FD removal that OptSRepair performs right after each
// simplification step.
func (s *Set) Minus(x schema.AttrSet) *Set {
	out := make([]FD, 0, len(s.fds))
	for _, f := range s.fds {
		g := FD{LHS: f.LHS.Diff(x), RHS: f.RHS.Diff(x)}
		if !g.IsTrivial() {
			out = append(out, g)
		}
	}
	return s.with(out)
}

// MinimalCover returns an equivalent canonical set with (a) redundant
// FDs removed and (b) each lhs reduced to a set-minimal one. It is not
// required by the repair algorithms (which work on any equivalent set)
// but is exposed for analysis and the CLI's explain mode.
func (s *Set) MinimalCover() *Set {
	can := s.Canonical()
	fds := can.FDs()
	// Left-reduce each FD.
	for i, f := range fds {
		lhs := f.LHS
		for _, a := range f.LHS.Positions() {
			cand := lhs.Remove(a)
			if f.RHS.IsSubsetOf(can.with(fds).Closure(cand)) {
				lhs = cand
			}
		}
		fds[i] = FD{LHS: lhs, RHS: f.RHS}
	}
	// Remove redundant FDs.
	for i := 0; i < len(fds); {
		rest := make([]FD, 0, len(fds)-1)
		rest = append(rest, fds[:i]...)
		rest = append(rest, fds[i+1:]...)
		if can.with(rest).Entails(fds[i]) {
			fds = rest
		} else {
			i++
		}
	}
	// Deduplicate (left-reduction may have created duplicates).
	seen := make(map[FD]bool, len(fds))
	out := fds[:0]
	for _, f := range fds {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return can.with(out)
}
