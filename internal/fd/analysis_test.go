package fd

import (
	"fmt"
	"testing"

	"repro/internal/schema"
)

func TestLocalMinima(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "A B -> C", "B -> C")
	minima := set.LocalMinima()
	if len(minima) != 2 {
		t.Fatalf("LocalMinima = %v, want 2", minima)
	}
	want := map[schema.AttrSet]bool{rABC.MustSet("A"): true, rABC.MustSet("B"): true}
	for _, m := range minima {
		if !want[m] {
			t.Errorf("unexpected local minimum %v", rABC.SetString(m))
		}
	}
	// Triple-key set has three local minima.
	set3 := MustParseSet(rABC, "A B -> C", "A C -> B", "B C -> A")
	if got := len(set3.LocalMinima()); got != 3 {
		t.Errorf("∆AB↔AC↔BC has %d local minima, want 3", got)
	}
}

func TestMinLHSCover(t *testing.T) {
	cases := []struct {
		specs []string
		want  int
	}{
		{[]string{"A -> B", "A C -> B"}, 1},   // common lhs A
		{[]string{"A -> B", "B -> C"}, 2},     // must hit both
		{[]string{"A -> B", "C -> B"}, 2},     // disjoint lhs
		{[]string{"A B -> C", "B C -> A"}, 1}, // B hits both
		{[]string{}, 0},                       // empty set
		{[]string{"A -> A"}, 0},               // only trivial
	}
	for _, c := range cases {
		set := MustParseSet(rABC, c.specs...)
		cover, size, ok := set.MinLHSCover()
		if !ok {
			t.Fatalf("%v: no cover found", c.specs)
		}
		if size != c.want {
			t.Errorf("%v: mlc = %d, want %d", c.specs, size, c.want)
		}
		if !set.LHSCover(cover) {
			t.Errorf("%v: returned cover %v does not cover", c.specs, rABC.SetString(cover))
		}
	}
	// Consensus FDs have no cover.
	if _, _, ok := MustParseSet(rABC, "-> A").MinLHSCover(); ok {
		t.Error("consensus FD should have no lhs cover")
	}
	if _, err := MustParseSet(rABC, "-> A").MLC(); err == nil {
		t.Error("MLC should error on a consensus FD")
	}
}

// deltaK builds ∆k of Section 4.4:
// {A0⋯Ak → B0, B0 → C, B1 → A0, ..., Bk → A0} over
// R(A0..Ak, B0..Bk, C).
func deltaK(k int) *Set {
	attrs := []string{}
	for i := 0; i <= k; i++ {
		attrs = append(attrs, fmt.Sprintf("A%d", i))
	}
	for i := 0; i <= k; i++ {
		attrs = append(attrs, fmt.Sprintf("B%d", i))
	}
	attrs = append(attrs, "C")
	sc := schema.MustNew("R", attrs...)
	specs := []string{}
	lhs := ""
	for i := 0; i <= k; i++ {
		lhs += fmt.Sprintf("A%d ", i)
	}
	specs = append(specs, lhs+"-> B0", "B0 -> C")
	for i := 1; i <= k; i++ {
		specs = append(specs, fmt.Sprintf("B%d -> A0", i))
	}
	return MustParseSet(sc, specs...)
}

// deltaPrimeK builds ∆′k of Section 4.4:
// {A0A1 → B0, A1A2 → B1, ..., AkAk+1 → Bk} over R(A0..Ak+1, B0..Bk).
func deltaPrimeK(k int) *Set {
	attrs := []string{}
	for i := 0; i <= k+1; i++ {
		attrs = append(attrs, fmt.Sprintf("A%d", i))
	}
	for i := 0; i <= k; i++ {
		attrs = append(attrs, fmt.Sprintf("B%d", i))
	}
	sc := schema.MustNew("R", attrs...)
	specs := []string{}
	for i := 0; i <= k; i++ {
		specs = append(specs, fmt.Sprintf("A%d A%d -> B%d", i, i+1, i))
	}
	return MustParseSet(sc, specs...)
}

// TestSection44Measures checks the paper's closed forms:
// MFS(∆k) = k+1, MCI(∆k) = k, mlc(∆k) = k+2 is wrong — the paper says
// the ratio of Thm 4.12 for ∆k is 2(k+2), i.e. mlc(∆k) = k+2? No:
// the lhs's of ∆k are {A0..Ak}, {B0}, {B1}, ..., {Bk}; a cover must hit
// B0, each Bi, and the big lhs — B1..Bk hit their own lhs only, so the
// minimum cover is {B0, B1, ..., Bk, one Ai} of size k+2.
func TestSection44Measures(t *testing.T) {
	for k := 1; k <= 4; k++ {
		dk := deltaK(k)
		if got := dk.MFS(); got != k+1 {
			t.Errorf("MFS(∆%d) = %d, want %d", k, got, k+1)
		}
		mci, err := dk.MCI()
		if err != nil {
			t.Fatal(err)
		}
		// The paper states MCI(∆k) = k via the core implicant {B1..Bk} of
		// A0. For k = 1 the attribute C dominates with a size-2 minimum
		// core implicant {B0, Aj}, so the exact value is max(k, 2); the
		// Θ(k) growth the paper uses is unaffected.
		wantMCI := k
		if wantMCI < 2 {
			wantMCI = 2
		}
		if mci != wantMCI {
			t.Errorf("MCI(∆%d) = %d, want %d", k, mci, wantMCI)
		}
		mlc, err := dk.MLC()
		if err != nil {
			t.Fatal(err)
		}
		if mlc != k+2 {
			t.Errorf("mlc(∆%d) = %d, want %d", k, mlc, k+2)
		}
		kl, err := dk.KLRatio()
		if err != nil {
			t.Fatal(err)
		}
		if want := (wantMCI + 2) * (2*(k+1) - 1); kl != want {
			t.Errorf("KLRatio(∆%d) = %d, want %d", k, kl, want)
		}
	}
	for k := 1; k <= 4; k++ {
		dpk := deltaPrimeK(k)
		if got := dpk.MFS(); got != 2 {
			t.Errorf("MFS(∆′%d) = %d, want 2", k, got)
		}
		mci, err := dpk.MCI()
		if err != nil {
			t.Fatal(err)
		}
		if mci != 1 {
			t.Errorf("MCI(∆′%d) = %d, want 1", k, mci)
		}
		mlc, err := dpk.MLC()
		if err != nil {
			t.Fatal(err)
		}
		if want := (k + 2) / 2; mlc != want { // ⌈(k+1)/2⌉
			t.Errorf("mlc(∆′%d) = %d, want %d", k, mlc, want)
		}
		kl, err := dpk.KLRatio()
		if err != nil {
			t.Fatal(err)
		}
		if kl != 9 { // (1+2)·(2·2−1)
			t.Errorf("KLRatio(∆′%d) = %d, want 9", k, kl)
		}
	}
}

func TestMinimalImplicants(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> C")
	cIdx, _ := rABC.AttrIndex("C")
	imps, err := set.MinimalImplicants(cIdx)
	if err != nil {
		t.Fatal(err)
	}
	// Minimal implicants of C: {A} and {B}.
	if len(imps) != 2 {
		t.Fatalf("implicants of C = %v, want 2", imps)
	}
	aIdx, _ := rABC.AttrIndex("A")
	imps, err = set.MinimalImplicants(aIdx)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 0 {
		t.Fatalf("A has no nontrivial implicants, got %v", imps)
	}
	core, err := set.MinCoreImplicant(cIdx)
	if err != nil {
		t.Fatal(err)
	}
	if core.Len() != 2 { // must hit both {A} and {B}
		t.Errorf("core implicant of C = %v, want size 2", rABC.SetString(core))
	}
}

func TestComponents(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D", "E", "F", "G")
	set := MustParseSet(sc, "A -> B C", "C -> D", "E -> F G")
	comps := set.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %d sets, want 2", len(comps))
	}
	// Components must be attribute disjoint and cover all FDs.
	total := 0
	for i, c := range comps {
		total += c.Len()
		for j := i + 1; j < len(comps); j++ {
			if c.AttrsUsed().Intersects(comps[j].AttrsUsed()) {
				t.Errorf("components %d and %d share attributes", i, j)
			}
		}
	}
	if total != 3 {
		t.Errorf("components cover %d FDs, want 3", total)
	}
	// A single connected set yields one component.
	one := MustParseSet(rABC, "A -> B", "B -> C")
	if got := len(one.Components()); got != 1 {
		t.Errorf("connected set gave %d components", got)
	}
	// Empty and trivial sets yield none.
	if got := len(MustParseSet(rABC, "A -> A").Components()); got != 0 {
		t.Errorf("trivial set gave %d components", got)
	}
}

func TestExample42Decomposition(t *testing.T) {
	// ∆ = {item → cost, buyer → address} decomposes into two components.
	sc := schema.MustNew("Purchase", "item", "cost", "buyer", "address", "state")
	set := MustParseSet(sc, "item -> cost", "buyer -> address")
	if got := len(set.Components()); got != 2 {
		t.Fatalf("Example 4.2 set should have 2 components, got %d", got)
	}
	// ∆′ adds address → state, merging the buyer component.
	set2 := MustParseSet(sc, "item -> cost", "buyer -> address", "address -> state")
	comps := set2.Components()
	if len(comps) != 2 {
		t.Fatalf("∆′ should have 2 components, got %d", len(comps))
	}
	sizes := map[int]bool{comps[0].Len(): true, comps[1].Len(): true}
	if !sizes[1] || !sizes[2] {
		t.Errorf("∆′ component sizes wrong: %d and %d", comps[0].Len(), comps[1].Len())
	}
}
