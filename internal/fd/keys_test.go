package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

func TestCandidateKeysClassic(t *testing.T) {
	// R(A,B,C) with A→B, B→C: the only key is A.
	set := MustParseSet(rABC, "A -> B", "B -> C")
	keys, err := set.CandidateKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != rABC.MustSet("A") {
		t.Fatalf("keys = %v", keys)
	}
	if !set.IsCandidateKey(rABC.MustSet("A")) {
		t.Error("A should be a candidate key")
	}
	if set.IsCandidateKey(rABC.MustSet("A", "B")) {
		t.Error("AB is a superkey but not minimal")
	}
	if !set.IsSuperkey(rABC.MustSet("A", "B")) {
		t.Error("AB is a superkey")
	}
}

func TestCandidateKeysMultiple(t *testing.T) {
	// A↔B: both A C and B C are keys (C underivable).
	set := MustParseSet(rABC, "A -> B", "B -> A")
	keys, err := set.CandidateKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want 2", keys)
	}
	want := map[schema.AttrSet]bool{
		rABC.MustSet("A", "C"): true,
		rABC.MustSet("B", "C"): true,
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %v", rABC.SetString(k))
		}
	}
}

func TestCandidateKeysEmptySet(t *testing.T) {
	set := MustParseSet(rABC)
	keys, err := set.CandidateKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != rABC.AllAttrs() {
		t.Fatalf("keys of the empty set = %v, want all attributes", keys)
	}
}

func TestBCNFAnd3NF(t *testing.T) {
	// A→B, B→C over R(A,B,C): not BCNF (B is not a superkey), not 3NF
	// (C is not prime).
	set := MustParseSet(rABC, "A -> B", "B -> C")
	if set.IsBCNF() {
		t.Error("should not be BCNF")
	}
	if ok, err := set.Is3NF(); err != nil || ok {
		t.Errorf("should not be 3NF: %v %v", ok, err)
	}
	// A key-only schema is BCNF: A→BC.
	bcnf := MustParseSet(rABC, "A -> B C")
	if !bcnf.IsBCNF() {
		t.Error("A→BC should be BCNF")
	}
	if ok, _ := bcnf.Is3NF(); !ok {
		t.Error("BCNF implies 3NF")
	}
	// The classic 3NF-not-BCNF case: R(A,B,C), AB→C, C→B.
	nf3 := MustParseSet(rABC, "A B -> C", "C -> B")
	if nf3.IsBCNF() {
		t.Error("AB→C, C→B is not BCNF")
	}
	if ok, err := nf3.Is3NF(); err != nil || !ok {
		t.Errorf("AB→C, C→B is 3NF: %v %v", ok, err)
	}
}

// Property: every enumerated key is a candidate key, keys are pairwise
// incomparable, and every superkey contains some key.
func TestQuickCandidateKeys(t *testing.T) {
	f := func(seeds []uint64) bool {
		sc := schema.MustNew("R", "A", "B", "C", "D", "E")
		all := sc.AllAttrs()
		var fds []FD
		for i := 0; i+1 < len(seeds) && len(fds) < 4; i += 2 {
			lhs := schema.AttrSet(seeds[i]) & all
			rhs := schema.AttrSet(seeds[i+1]) & all
			if rhs.IsEmpty() {
				continue
			}
			fds = append(fds, FD{LHS: lhs, RHS: rhs})
		}
		set := MustNewSet(sc, fds...)
		keys, err := set.CandidateKeys()
		if err != nil || len(keys) == 0 {
			return false
		}
		for i, k := range keys {
			if !set.IsCandidateKey(k) {
				return false
			}
			for j := i + 1; j < len(keys); j++ {
				if k.IsSubsetOf(keys[j]) || keys[j].IsSubsetOf(k) {
					return false
				}
			}
		}
		// Random superkey check: the full set contains a key.
		contained := false
		for _, k := range keys {
			if k.IsSubsetOf(all) {
				contained = true
			}
		}
		return contained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(107))}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimeAttrs(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> A")
	prime, err := set.PrimeAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if prime != rABC.AllAttrs() {
		t.Fatalf("prime = %v, want all (keys AC and BC)", rABC.SetString(prime))
	}
}
