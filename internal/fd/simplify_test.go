package fd

import (
	"testing"

	"repro/internal/schema"
)

// office is the running-example schema of Figure 1.
var office = schema.MustNew("Office", "facility", "room", "floor", "city")

// officeFDs is the running-example FD set of Example 2.2.
func officeFDs() *Set {
	return MustParseSet(office,
		"facility -> city",
		"facility room -> floor",
	)
}

func TestCommonLHSRunningExample(t *testing.T) {
	set := officeFDs()
	common := set.CommonLHS()
	if common != office.MustSet("facility") {
		t.Fatalf("common lhs = %v, want facility", office.SetString(common))
	}
}

func TestCommonLHSNone(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> C")
	if !set.CommonLHS().IsEmpty() {
		t.Fatal("A→B, B→C has no common lhs")
	}
	// A consensus FD kills any common lhs.
	set2 := MustParseSet(rABC, "A -> B", "-> C")
	if !set2.CommonLHS().IsEmpty() {
		t.Fatal("a set with a consensus FD has no common lhs")
	}
}

func TestCommonLHSIgnoresTrivial(t *testing.T) {
	// The trivial FD B → B must not destroy the common lhs A.
	set := MustParseSet(rABC, "A -> B", "A C -> B", "B -> B")
	if got := set.CommonLHS(); got != rABC.MustSet("A") {
		t.Fatalf("common lhs = %v, want A", rABC.SetString(got))
	}
}

func TestLHSMarriageSimple(t *testing.T) {
	// ∆A↔B→C of Example 3.1: marriage ({A}, {B}).
	set := MustParseSet(rABC, "A -> B", "B -> A", "B -> C")
	x1, x2, ok := set.LHSMarriage()
	if !ok {
		t.Fatal("expected an lhs marriage")
	}
	got := map[schema.AttrSet]bool{x1: true, x2: true}
	if !got[rABC.MustSet("A")] || !got[rABC.MustSet("B")] {
		t.Fatalf("marriage = (%v, %v)", rABC.SetString(x1), rABC.SetString(x2))
	}
}

func TestLHSMarriageSSNExample(t *testing.T) {
	// ∆1 of Example 3.1: ({ssn}, {first, last}) is an lhs marriage.
	sc := schema.MustNew("Person", "ssn", "first", "last", "address", "office", "phone", "fax")
	set := MustParseSet(sc,
		"ssn -> first", "ssn -> last", "first last -> ssn",
		"ssn -> address", "ssn office -> phone", "ssn office -> fax")
	x1, x2, ok := set.LHSMarriage()
	if !ok {
		t.Fatal("expected an lhs marriage")
	}
	want1, want2 := sc.MustSet("ssn"), sc.MustSet("first", "last")
	if !(x1 == want1 && x2 == want2 || x1 == want2 && x2 == want1) {
		t.Fatalf("marriage = (%v, %v)", sc.SetString(x1), sc.SetString(x2))
	}
}

func TestLHSMarriageAbsent(t *testing.T) {
	for _, specs := range [][]string{
		{"A -> B", "B -> C"},   // closures differ
		{"A -> B", "C -> B"},   // closures differ (cl(A)={A,B}, cl(C)={C,B})
		{"A -> C", "B -> C"},   // same: closures differ
		{"A B -> C", "C -> B"}, // no pair with equal closures
	} {
		set := MustParseSet(rABC, specs...)
		if _, _, ok := set.LHSMarriage(); ok {
			t.Errorf("%v should have no lhs marriage", set)
		}
	}
}

func TestLHSMarriageNeedsCoverage(t *testing.T) {
	// cl(A)=cl(B) but a third FD's lhs contains neither A nor B.
	sc := schema.MustNew("R", "A", "B", "C", "D")
	set := MustParseSet(sc, "A -> B", "B -> A", "C -> D")
	if _, _, ok := set.LHSMarriage(); ok {
		t.Fatal("marriage requires every lhs to contain X1 or X2")
	}
}

// TestNextSimplificationRunningExample reproduces the trace of
// Example 3.5 for the running-example FD set:
// common lhs facility ⇛ consensus city ⇛ common lhs room ⇛ consensus floor ⇛ {}.
func TestNextSimplificationRunningExample(t *testing.T) {
	set := officeFDs()
	wantKinds := []SimplificationKind{KindCommonLHS, KindConsensus, KindCommonLHS, KindConsensus}
	for i, want := range wantKinds {
		st, ok := set.NextSimplification()
		if !ok {
			t.Fatalf("step %d: no simplification for %v", i, set)
		}
		if st.Kind != want {
			t.Fatalf("step %d: kind = %v, want %v (set %v)", i, st.Kind, want, set)
		}
		set = st.After
	}
	if !set.IsTrivialSet() {
		t.Fatalf("after all steps set = %v, want trivial", set)
	}
}

// TestNextSimplificationMarriageExample reproduces the ∆A↔B→C trace:
// lhs marriage ⇛ consensus ⇛ {}.
func TestNextSimplificationMarriageExample(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> A", "B -> C")
	st, ok := set.NextSimplification()
	if !ok || st.Kind != KindMarriage {
		t.Fatalf("first step = %+v, %v; want marriage", st, ok)
	}
	st2, ok := st.After.NextSimplification()
	if !ok || st2.Kind != KindConsensus {
		t.Fatalf("second step = %+v, %v; want consensus", st2, ok)
	}
	if !st2.After.IsTrivialSet() {
		t.Fatalf("after = %v, want trivial", st2.After)
	}
}

// TestNextSimplificationSSNExample reproduces the ∆1 trace of Example 3.5:
// lhs marriage ⇛ consensus ⇛ common lhs ⇛ consensus* ⇛ {}.
func TestNextSimplificationSSNExample(t *testing.T) {
	sc := schema.MustNew("Person", "ssn", "first", "last", "address", "office", "phone", "fax")
	set := MustParseSet(sc,
		"ssn -> first", "ssn -> last", "first last -> ssn",
		"ssn -> address", "ssn office -> phone", "ssn office -> fax")
	var kinds []SimplificationKind
	for {
		st, ok := set.NextSimplification()
		if !ok {
			break
		}
		kinds = append(kinds, st.Kind)
		set = st.After
	}
	if !set.IsTrivialSet() {
		t.Fatalf("∆1 should fully simplify; stuck at %v", set)
	}
	if kinds[0] != KindMarriage {
		t.Fatalf("first step = %v, want marriage (trace: %v)", kinds[0], kinds)
	}
}

func TestNextSimplificationFails(t *testing.T) {
	for _, specs := range [][]string{
		{"A -> B", "B -> C"},
		{"A -> C", "B -> C"},
		{"A B -> C", "C -> B"},
		{"A B -> C", "A C -> B", "B C -> A"},
	} {
		set := MustParseSet(rABC, specs...)
		if st, ok := set.NextSimplification(); ok {
			t.Errorf("%v should not simplify; got %v", set, st.Describe())
		}
	}
	// {A→B, C→D} over a 4-ary schema also fails (Example 3.5).
	sc := schema.MustNew("R", "A", "B", "C", "D")
	set := MustParseSet(sc, "A -> B", "C -> D")
	if _, ok := set.NextSimplification(); ok {
		t.Error("{A→B, C→D} should not simplify")
	}
}

func TestIsChain(t *testing.T) {
	if !officeFDs().IsChain() {
		t.Error("running-example set is a chain")
	}
	if MustParseSet(rABC, "A -> B", "B -> C").IsChain() {
		t.Error("{A→B, B→C} is not a chain")
	}
	if !MustParseSet(rABC, "A -> B", "A B -> C", "-> A").IsChain() {
		t.Error("∅ ⊆ A ⊆ AB should be a chain")
	}
	if !MustParseSet(rABC).IsChain() {
		t.Error("empty set is a chain")
	}
}

// Chains always fully simplify (Corollary 3.6).
func TestChainsAlwaysSimplify(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D", "E")
	chains := [][]string{
		{"A -> B", "A B -> C", "A B C -> D"},
		{"-> A", "A -> B", "A B -> C D E"},
		{"A -> B C D E"},
	}
	for _, specs := range chains {
		set := MustParseSet(sc, specs...)
		for steps := 0; !set.IsTrivialSet(); steps++ {
			if steps > 20 {
				t.Fatalf("chain %v did not terminate", specs)
			}
			st, ok := set.NextSimplification()
			if !ok {
				t.Fatalf("chain %v got stuck at %v", specs, set)
			}
			if st.Kind == KindMarriage {
				t.Fatalf("chain simplification should use only common lhs and consensus, got %v", st.Describe())
			}
			set = st.After
		}
	}
}

func TestSimplificationDescribe(t *testing.T) {
	set := officeFDs()
	st, _ := set.NextSimplification()
	if got := st.Describe(); got != "common lhs facility" {
		t.Errorf("Describe = %q", got)
	}
}
