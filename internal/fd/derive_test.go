package fd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

func mustFD(t testing.TB, spec string) FD {
	t.Helper()
	f, err := Parse(rABC, spec)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExplainTransitivity(t *testing.T) {
	set := MustParseSet(rABC, "A -> B", "B -> C")
	steps, ok := set.Explain(mustFD(t, "A -> C"))
	if !ok {
		t.Fatal("A → C is entailed")
	}
	if len(steps) != 2 {
		t.Fatalf("derivation = %v, want 2 steps", steps)
	}
	out := set.RenderDerivation(mustFD(t, "A -> C"), steps)
	if !strings.Contains(out, "fire A → B") || !strings.Contains(out, "fire B → C") {
		t.Errorf("rendering = %q", out)
	}
}

func TestExplainPrunesIrrelevant(t *testing.T) {
	// D's derivation does not need B → C.
	sc := schema.MustNew("R", "A", "B", "C", "D")
	set := MustParseSet(sc, "A -> B", "B -> C", "A -> D")
	f, err := Parse(sc, "A -> D")
	if err != nil {
		t.Fatal(err)
	}
	steps, ok := set.Explain(f)
	if !ok {
		t.Fatal("A → D is entailed")
	}
	if len(steps) != 1 {
		t.Fatalf("derivation should be pruned to one step, got %v", steps)
	}
}

func TestExplainNotEntailed(t *testing.T) {
	set := MustParseSet(rABC, "A -> B")
	if _, ok := set.Explain(mustFD(t, "B -> A")); ok {
		t.Fatal("B → A is not entailed")
	}
}

func TestExplainTrivial(t *testing.T) {
	set := MustParseSet(rABC, "A -> B")
	steps, ok := set.Explain(mustFD(t, "A B -> A"))
	if !ok || len(steps) != 0 {
		t.Fatalf("trivial FD: steps %v, ok %v", steps, ok)
	}
}

// Property: Explain agrees with Entails, and replaying the derivation
// from the target lhs reaches the target rhs.
func TestQuickExplainSoundComplete(t *testing.T) {
	f := func(seeds []uint64, lhsRaw, rhsRaw uint64) bool {
		set := genSet(t, seeds)
		all := set.Schema().AllAttrs()
		target := FD{LHS: schema.AttrSet(lhsRaw) & all, RHS: schema.AttrSet(rhsRaw) & all}
		if target.RHS.IsEmpty() {
			return true
		}
		steps, ok := set.Explain(target)
		if ok != set.Entails(target) {
			return false
		}
		if !ok {
			return true
		}
		// Replay: every fired FD's lhs must already be available, and
		// the rhs must be reached at the end.
		have := target.LHS
		for _, st := range steps {
			if !st.FD.LHS.IsSubsetOf(have) {
				return false
			}
			have = have.Union(st.FD.RHS)
		}
		return target.RHS.IsSubsetOf(have)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(108))}); err != nil {
		t.Fatal(err)
	}
}
