package fd

import (
	"fmt"
	"sort"

	"repro/internal/schema"
)

// LocalMinima returns the distinct lhs sets X of nontrivial FDs in Δ
// such that no FD Z → W in Δ has Z ⊂ X ("an FD with a set-minimal lhs",
// Section 3.3). The result is sorted for determinism.
func (s *Set) LocalMinima() []schema.AttrSet {
	nt := s.RemoveTrivial()
	lhss := nt.distinctLHS()
	var out []schema.AttrSet
	for _, x := range lhss {
		minimal := true
		for _, z := range lhss {
			if z.IsStrictSubsetOf(x) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, x)
		}
	}
	return out
}

// LHSCover reports whether c hits the lhs of every nontrivial FD:
// X ∩ c ≠ ∅ for every X → Y in Δ. A consensus FD (empty lhs) can never
// be hit, so any set with a consensus FD has no lhs cover.
func (s *Set) LHSCover(c schema.AttrSet) bool {
	for _, f := range s.fds {
		if f.IsTrivial() {
			continue
		}
		if !f.LHS.Intersects(c) {
			return false
		}
	}
	return true
}

// MinLHSCover returns an lhs cover of minimum cardinality mlc(Δ) and its
// size. If Δ has no nontrivial FDs, the empty set (size 0) is returned.
// If Δ contains a consensus FD, no lhs cover exists and ok is false.
// The search is exponential in the number of attributes occurring in
// lhs's, which is fixed under data complexity.
func (s *Set) MinLHSCover() (cover schema.AttrSet, size int, ok bool) {
	nt := s.RemoveTrivial()
	if nt.Len() == 0 {
		return schema.EmptySet, 0, true
	}
	for _, f := range nt.fds {
		if f.IsConsensus() {
			return 0, 0, false
		}
	}
	universe := schema.EmptySet
	for _, f := range nt.fds {
		universe = universe.Union(f.LHS)
	}
	best := universe // the whole universe is always a cover
	bestSize := best.Len()
	// Branch and bound: branch on the attributes of the first uncovered
	// lhs, which prunes far better than blind inclusion/exclusion.
	var rec func(cur schema.AttrSet, curSize int)
	rec = func(cur schema.AttrSet, curSize int) {
		if curSize >= bestSize {
			return
		}
		if nt.LHSCover(cur) {
			best, bestSize = cur, curSize
			return
		}
		var uncovered schema.AttrSet
		for _, f := range nt.fds {
			if !f.LHS.Intersects(cur) {
				uncovered = f.LHS
				break
			}
		}
		for _, a := range uncovered.Positions() {
			rec(cur.Add(a), curSize+1)
		}
	}
	rec(schema.EmptySet, 0)
	return best, bestSize, true
}

// MLC returns mlc(Δ): the minimum cardinality of an lhs cover, or an
// error if Δ contains a consensus FD (no cover exists).
func (s *Set) MLC() (int, error) {
	_, size, ok := s.MinLHSCover()
	if !ok {
		return 0, fmt.Errorf("fd: set has a consensus FD; no lhs cover exists")
	}
	return size, nil
}

// MFS returns MFS(Δ): the maximum number of attributes in the lhs of any
// FD, computed on the canonical (single-attribute rhs) form as in
// Kolahi & Lakshmanan.
func (s *Set) MFS() int {
	max := 0
	for _, f := range s.Canonical().fds {
		if n := f.LHS.Len(); n > max {
			max = n
		}
	}
	return max
}

// MinimalImplicants returns the minimal nontrivial implicants of
// attribute a: the inclusion-minimal sets X with a ∉ X and X → a
// entailed by Δ. Results are sorted for determinism. The enumeration is
// exponential in |attr(Δ)|, fixed under data complexity; it refuses to
// run on more than MaxImplicantAttrs attributes.
func (s *Set) MinimalImplicants(a int) ([]schema.AttrSet, error) {
	universe := s.AttrsUsed().Remove(a)
	if universe.Len() > MaxImplicantAttrs {
		return nil, fmt.Errorf("fd: implicant enumeration over %d attributes exceeds limit %d",
			universe.Len(), MaxImplicantAttrs)
	}
	// BFS by subset size; a set is skipped if it contains an already
	// found (smaller) implicant, so only minimal ones are collected.
	var minimal []schema.AttrSet
	positions := universe.Positions()
	n := len(positions)
	for size := 0; size <= n; size++ {
		combinations(n, size, func(idxs []int) {
			x := schema.EmptySet
			for _, i := range idxs {
				x = x.Add(positions[i])
			}
			for _, m := range minimal {
				if m.IsSubsetOf(x) {
					return
				}
			}
			if s.Closure(x).Contains(a) {
				minimal = append(minimal, x)
			}
		})
	}
	sort.Slice(minimal, func(i, j int) bool { return minimal[i] < minimal[j] })
	return minimal, nil
}

// MaxImplicantAttrs bounds the attribute universe for implicant
// enumeration (2^22 closure calls in the worst case).
const MaxImplicantAttrs = 22

// combinations calls fn with each size-k index combination out of [0,n).
func combinations(n, k int, fn func([]int)) {
	if k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// advance
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// MinCoreImplicant returns a minimum core implicant of attribute a: a
// smallest set of attributes hitting every (nontrivial) implicant of a.
// Since every implicant contains a minimal implicant, it suffices to hit
// the minimal implicants. An attribute with no nontrivial implicants has
// the empty set as its core implicant.
func (s *Set) MinCoreImplicant(a int) (schema.AttrSet, error) {
	implicants, err := s.MinimalImplicants(a)
	if err != nil {
		return 0, err
	}
	if len(implicants) == 0 {
		return schema.EmptySet, nil
	}
	universe := schema.EmptySet
	for _, im := range implicants {
		universe = universe.Union(im)
	}
	best := universe
	bestSize := best.Len()
	var rec func(cur schema.AttrSet, curSize int)
	rec = func(cur schema.AttrSet, curSize int) {
		if curSize >= bestSize {
			return
		}
		var unhit schema.AttrSet
		hitAll := true
		for _, im := range implicants {
			if !im.Intersects(cur) {
				unhit = im
				hitAll = false
				break
			}
		}
		if hitAll {
			best, bestSize = cur, curSize
			return
		}
		for _, p := range unhit.Positions() {
			rec(cur.Add(p), curSize+1)
		}
	}
	rec(schema.EmptySet, 0)
	return best, nil
}

// MCI returns MCI(Δ): the size of the largest minimum core implicant
// over all attributes occurring in Δ (Kolahi & Lakshmanan; Section 4.4).
func (s *Set) MCI() (int, error) {
	max := 0
	for _, a := range s.AttrsUsed().Positions() {
		core, err := s.MinCoreImplicant(a)
		if err != nil {
			return 0, err
		}
		if n := core.Len(); n > max {
			max = n
		}
	}
	return max, nil
}

// KLRatio returns the Kolahi–Lakshmanan approximation ratio
// (MCI(Δ) + 2) · (2·MFS(Δ) − 1) of Theorem 4.13.
func (s *Set) KLRatio() (int, error) {
	mci, err := s.MCI()
	if err != nil {
		return 0, err
	}
	return (mci + 2) * (2*s.MFS() - 1), nil
}

// Components partitions Δ into maximal attribute-disjoint sub-sets
// (Theorem 4.1): two FDs are in the same component when their attribute
// sets are connected through shared attributes. Trivial FDs are dropped.
// The components are returned in a deterministic order.
func (s *Set) Components() []*Set {
	nt := s.RemoveTrivial()
	n := nt.Len()
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(i, j int) { parent[find(i)] = find(j) }
	attrs := make([]schema.AttrSet, n)
	for i, f := range nt.fds {
		attrs[i] = f.LHS.Union(f.RHS)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if attrs[i].Intersects(attrs[j]) {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]FD)
	var order []int
	for i, f := range nt.fds {
		r := find(i)
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], f)
	}
	out := make([]*Set, 0, len(order))
	for _, r := range order {
		out = append(out, nt.with(groups[r]))
	}
	return out
}
