package fd

import (
	"testing"

	"repro/internal/schema"
)

// TestClassifyExample38 reproduces Example 3.8: each ∆i belongs to
// class i.
func TestClassifyExample38(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D", "E")
	cases := []struct {
		name  string
		specs []string
		want  Class
	}{
		{"∆1={A→B,C→D}", []string{"A -> B", "C -> D"}, Class1},
		{"∆2={A→CD,B→CE}", []string{"A -> C D", "B -> C E"}, Class2},
		{"∆3={A→BC,B→D}", []string{"A -> B C", "B -> D"}, Class3},
		{"∆4={AB→C,AC→B,BC→A}", []string{"A B -> C", "A C -> B", "B C -> A"}, Class4},
		{"∆5={AB→C,C→AD}", []string{"A B -> C", "C -> A D"}, Class5},
	}
	for _, c := range cases {
		set := MustParseSet(sc, c.specs...)
		got, err := set.ClassifyNonSimplifiable()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got.Class != c.want {
			t.Errorf("%s: class = %v, want %v", c.name, got.Class, c.want)
		}
		if got.Class == Class4 && got.X3.IsEmpty() {
			t.Errorf("%s: class 4 must report a third local minimum", c.name)
		}
	}
}

// TestClassifyTable1 classifies the four hard base sets of Table 1.
func TestClassifyTable1(t *testing.T) {
	cases := []struct {
		name  string
		specs []string
		want  Class
	}{
		{"∆A→B→C", []string{"A -> B", "B -> C"}, Class3},
		{"∆A→C←B", []string{"A -> C", "B -> C"}, Class2},
		{"∆AB→C→B", []string{"A B -> C", "C -> B"}, Class5},
		{"∆AB↔AC↔BC", []string{"A B -> C", "A C -> B", "B C -> A"}, Class4},
	}
	for _, c := range cases {
		set := MustParseSet(rABC, c.specs...)
		got, err := set.ClassifyNonSimplifiable()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got.Class != c.want {
			t.Errorf("%s: class = %v, want %v", c.name, got.Class, c.want)
		}
		if got.Class.BaseSet() == "" {
			t.Errorf("%s: missing base set name", c.name)
		}
	}
}

func TestClassifyRejectsSimplifiable(t *testing.T) {
	// The running example simplifies, so classification must refuse.
	if _, err := officeFDs().ClassifyNonSimplifiable(); err == nil {
		t.Error("simplifiable set must not classify")
	}
	// A trivial set must refuse too.
	if _, err := MustParseSet(rABC, "A -> A").ClassifyNonSimplifiable(); err == nil {
		t.Error("trivial set must not classify")
	}
	// ∆A↔B→C has an lhs marriage, hence simplifiable.
	if _, err := MustParseSet(rABC, "A -> B", "B -> A", "B -> C").ClassifyNonSimplifiable(); err == nil {
		t.Error("∆A↔B→C must not classify (it is simplifiable)")
	}
}

// TestClassifyTotal checks, over a brute-force enumeration of small FD
// sets, that every non-simplifiable set is classified (Lemma A.22's
// exhaustiveness) and every simplifiable one is rejected.
func TestClassifyTotal(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D")
	all := sc.AllAttrs()
	// Enumerate all single-attribute-rhs FDs over 4 attributes.
	var fds []FD
	all.Subsets(func(lhs schema.AttrSet) bool {
		for _, a := range all.Diff(lhs).Positions() {
			fds = append(fds, FD{LHS: lhs, RHS: schema.Singleton(a)})
		}
		return true
	})
	// Check all 2- and 3-element FD sets.
	checked, classified := 0, 0
	try := func(set *Set) {
		checked++
		_, simplifiable := set.NextSimplification()
		cl, err := set.ClassifyNonSimplifiable()
		if set.IsTrivialSet() || simplifiable {
			if err == nil {
				t.Fatalf("set %v is simplifiable but classified as %v", set, cl.Class)
			}
			return
		}
		if err != nil {
			t.Fatalf("non-simplifiable set %v failed to classify: %v", set, err)
		}
		classified++
	}
	for i := 0; i < len(fds); i++ {
		for j := i + 1; j < len(fds); j++ {
			try(MustNewSet(sc, fds[i], fds[j]))
		}
	}
	for i := 0; i < len(fds); i += 3 {
		for j := i + 1; j < len(fds); j += 5 {
			for k := j + 1; k < len(fds); k += 7 {
				try(MustNewSet(sc, fds[i], fds[j], fds[k]))
			}
		}
	}
	if classified == 0 {
		t.Fatal("enumeration classified nothing; test is vacuous")
	}
	t.Logf("checked %d sets, classified %d as hard", checked, classified)
}

func TestClassStrings(t *testing.T) {
	if Class3.String() != "class 3" {
		t.Errorf("Class3.String() = %q", Class3.String())
	}
	if ClassSimplifiable.String() != "simplifiable" {
		t.Errorf("ClassSimplifiable.String() = %q", ClassSimplifiable.String())
	}
	if ClassSimplifiable.BaseSet() != "" {
		t.Error("simplifiable class has no base set")
	}
}
