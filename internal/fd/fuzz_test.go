package fd

import (
	"testing"

	"repro/internal/schema"
)

// FuzzParse checks that the FD parser never panics and that every
// successfully parsed FD round-trips through the schema renderer.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"A -> B", "A B -> C", "-> C", "∅ → B", "A→B", " A  B ->  C ",
		"Z -> A", "A -> ", "->", "A B C", "A -> B -> C", "",
	} {
		f.Add(seed)
	}
	sc := schema.MustNew("R", "A", "B", "C")
	f.Fuzz(func(t *testing.T, spec string) {
		fdd, err := Parse(sc, spec)
		if err != nil {
			return
		}
		if fdd.RHS.IsEmpty() {
			t.Fatalf("parsed FD with empty rhs from %q", spec)
		}
		all := sc.AllAttrs()
		if !fdd.LHS.IsSubsetOf(all) || !fdd.RHS.IsSubsetOf(all) {
			t.Fatalf("parsed FD outside schema from %q", spec)
		}
		// Rendering and reparsing preserves the FD.
		set := MustNewSet(sc, fdd)
		back, err := Parse(sc, set.FDString(fdd))
		if err != nil {
			t.Fatalf("rendered FD %q did not reparse: %v", set.FDString(fdd), err)
		}
		if back != fdd {
			t.Fatalf("round trip changed FD: %v vs %v", back, fdd)
		}
	})
}
