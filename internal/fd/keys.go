package fd

import (
	"fmt"
	"sort"

	"repro/internal/schema"
)

// IsSuperkey reports whether X determines every attribute of the
// schema: cl(X) = all attributes.
func (s *Set) IsSuperkey(x schema.AttrSet) bool {
	return s.Closure(x) == s.sc.AllAttrs()
}

// IsCandidateKey reports whether X is a minimal superkey.
func (s *Set) IsCandidateKey(x schema.AttrSet) bool {
	if !s.IsSuperkey(x) {
		return false
	}
	for _, a := range x.Positions() {
		if s.IsSuperkey(x.Remove(a)) {
			return false
		}
	}
	return true
}

// CandidateKeys enumerates all candidate keys of the schema under Δ,
// in increasing size then bitset order. The enumeration prunes
// supersets of found keys; it starts from the attributes that can never
// be derived (they belong to every key). Exponential in the schema
// arity, which is fixed under data complexity; refuses schemas wider
// than MaxImplicantAttrs.
func (s *Set) CandidateKeys() ([]schema.AttrSet, error) {
	all := s.sc.AllAttrs()
	if all.Len() > MaxImplicantAttrs {
		return nil, fmt.Errorf("fd: candidate-key enumeration over %d attributes exceeds limit %d",
			all.Len(), MaxImplicantAttrs)
	}
	// Attributes not derivable from anything else must be in every key:
	// those not occurring in any rhs of the canonical set.
	can := s.Canonical()
	derivable := schema.EmptySet
	for _, f := range can.fds {
		derivable = derivable.Union(f.RHS)
	}
	core := all.Diff(derivable)
	free := all.Diff(core)
	positions := free.Positions()
	n := len(positions)
	var keys []schema.AttrSet
	for size := 0; size <= n; size++ {
		combinations(n, size, func(idxs []int) {
			x := core
			for _, i := range idxs {
				x = x.Add(positions[i])
			}
			for _, k := range keys {
				if k.IsSubsetOf(x) {
					return
				}
			}
			if s.IsSuperkey(x) {
				keys = append(keys, x)
			}
		})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Len() != keys[j].Len() {
			return keys[i].Len() < keys[j].Len()
		}
		return keys[i] < keys[j]
	})
	return keys, nil
}

// PrimeAttrs returns the attributes occurring in some candidate key.
func (s *Set) PrimeAttrs() (schema.AttrSet, error) {
	keys, err := s.CandidateKeys()
	if err != nil {
		return 0, err
	}
	out := schema.EmptySet
	for _, k := range keys {
		out = out.Union(k)
	}
	return out, nil
}

// IsBCNF reports whether the schema is in Boyce–Codd normal form under
// Δ: the lhs of every nontrivial FD in the closure is a superkey. It
// suffices to check the given FDs.
func (s *Set) IsBCNF() bool {
	for _, f := range s.fds {
		if f.IsTrivial() {
			continue
		}
		if !s.IsSuperkey(f.LHS) {
			return false
		}
	}
	return true
}

// Is3NF reports whether the schema is in third normal form under Δ:
// for every nontrivial FD X → A, X is a superkey or A is prime.
func (s *Set) Is3NF() (bool, error) {
	prime, err := s.PrimeAttrs()
	if err != nil {
		return false, err
	}
	for _, f := range s.Canonical().fds {
		if s.IsSuperkey(f.LHS) {
			continue
		}
		if !f.RHS.IsSubsetOf(prime) {
			return false, nil
		}
	}
	return true, nil
}
