package fd

import (
	"fmt"

	"repro/internal/schema"
)

// Class identifies which of the five classes of Figure 2 a
// non-simplifiable FD set belongs to. Each class comes with a fact-wise
// reduction from one of the four hard FD sets of Table 1 (implemented in
// internal/reduction), which is what makes computing an optimal S-repair
// APX-hard for the set.
type Class int

const (
	// ClassSimplifiable means the set is not classified because a
	// simplification (common lhs / consensus / lhs marriage) applies,
	// or the set is trivial.
	ClassSimplifiable Class = iota
	// Class1: X̂1 ∩ cl(X2) = ∅ and X̂2 ∩ cl(X1) = ∅ (reduce from ∆A→C←B).
	Class1
	// Class2: X̂1 ∩ X̂2 ≠ ∅, X̂1 ∩ X2 = ∅, X̂2 ∩ X1 = ∅ (reduce from ∆A→B→C).
	Class2
	// Class3: X̂1 ∩ X2 ≠ ∅ and X̂2 ∩ X1 = ∅ (reduce from ∆A→B→C).
	Class3
	// Class4: X̂1 ∩ X2 ≠ ∅, X̂2 ∩ X1 ≠ ∅, (X1∖X2) ⊆ X̂2 and (X2∖X1) ⊆ X̂1
	// (three local minima; reduce from ∆AB↔AC↔BC).
	Class4
	// Class5: X̂1 ∩ X2 ≠ ∅, X̂2 ∩ X1 ≠ ∅ and (X2∖X1) ⊄ X̂1
	// (reduce from ∆AB→C→B).
	Class5
)

func (c Class) String() string {
	switch c {
	case ClassSimplifiable:
		return "simplifiable"
	case Class1, Class2, Class3, Class4, Class5:
		return fmt.Sprintf("class %d", int(c))
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// BaseSet names the hard FD set of Table 1 that fact-wise reduces to a
// set of this class.
func (c Class) BaseSet() string {
	switch c {
	case Class1:
		return "∆A→C←B"
	case Class2, Class3:
		return "∆A→B→C"
	case Class4:
		return "∆AB↔AC↔BC"
	case Class5:
		return "∆AB→C→B"
	default:
		return ""
	}
}

// Classification is the outcome of classifying a non-simplifiable FD
// set: the class and the witnessing local minima, ordered per the
// convention of the corresponding lemma (X1 first).
type Classification struct {
	Class  Class
	X1, X2 schema.AttrSet
	// X3 is a third local minimum, set only for Class4.
	X3 schema.AttrSet
}

// ClassifyNonSimplifiable assigns a non-simplifiable FD set to one of
// the five classes of Figure 2, following the case analysis of Lemma
// A.22. The set must be nontrivial and admit no simplification;
// otherwise an error is returned. Per the lemma, classification is
// always possible for such sets.
func (s *Set) ClassifyNonSimplifiable() (Classification, error) {
	nt := s.Canonical()
	if nt.IsTrivialSet() {
		return Classification{}, fmt.Errorf("fd: set is trivial; nothing to classify")
	}
	if _, ok := nt.NextSimplification(); ok {
		return Classification{}, fmt.Errorf("fd: set is simplifiable; classification applies only to non-simplifiable sets")
	}
	minima := nt.LocalMinima()
	if len(minima) < 2 {
		// A non-simplifiable, nontrivial set is not a chain, hence has at
		// least two local minima (Lemma A.22). Reaching here indicates a
		// bug or an unexpected input.
		return Classification{}, fmt.Errorf("fd: expected ≥2 local minima, found %d", len(minima))
	}
	for i := 0; i < len(minima); i++ {
		for j := 0; j < len(minima); j++ {
			if i == j {
				continue
			}
			if cl, ok := nt.classifyPair(minima[i], minima[j]); ok {
				if cl.Class == Class4 {
					if len(minima) < 3 {
						return Classification{}, fmt.Errorf("fd: class-4 conditions with only %d local minima; set should have been simplifiable", len(minima))
					}
					for _, m := range minima {
						if m != cl.X1 && m != cl.X2 {
							cl.X3 = m
							break
						}
					}
				}
				return cl, nil
			}
		}
	}
	return Classification{}, fmt.Errorf("fd: no class matched; case analysis of Lemma A.22 should be exhaustive")
}

// classifyPair applies the case analysis to the ordered pair of local
// minima (x1, x2).
func (nt *Set) classifyPair(x1, x2 schema.AttrSet) (Classification, bool) {
	cl1, cl2 := nt.Closure(x1), nt.Closure(x2)
	h1, h2 := cl1.Diff(x1), cl2.Diff(x2) // X̂1, X̂2
	if !h2.Intersects(x1) {
		switch {
		case !h1.Intersects(cl2):
			return Classification{Class: Class1, X1: x1, X2: x2}, true
		case h1.Intersects(h2) && !h1.Intersects(x2):
			return Classification{Class: Class2, X1: x1, X2: x2}, true
		case h1.Intersects(x2):
			return Classification{Class: Class3, X1: x1, X2: x2}, true
		}
		return Classification{}, false
	}
	// X̂2 ∩ X1 ≠ ∅.
	if !h1.Intersects(x2) {
		// Symmetric to the first case with roles swapped; the caller
		// iterates over ordered pairs, so the swapped order is tried too.
		return Classification{}, false
	}
	// Both X̂1 ∩ X2 ≠ ∅ and X̂2 ∩ X1 ≠ ∅.
	if x1.Diff(x2).IsSubsetOf(h2) && x2.Diff(x1).IsSubsetOf(h1) {
		return Classification{Class: Class4, X1: x1, X2: x2}, true
	}
	if !x2.Diff(x1).IsSubsetOf(h1) {
		return Classification{Class: Class5, X1: x1, X2: x2}, true
	}
	// (X2∖X1) ⊆ X̂1 but (X1∖X2) ⊄ X̂2: the swapped order matches Class 5.
	return Classification{}, false
}
