package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

// genSet draws a random FD set over a 6-attribute schema from raw
// uint64 seeds (each FD: lhs/rhs masks within the 6 attributes).
func genSet(t *testing.T, seeds []uint64) *Set {
	t.Helper()
	sc := schema.MustNew("R", "A", "B", "C", "D", "E", "F")
	all := sc.AllAttrs()
	var fds []FD
	for i := 0; i+1 < len(seeds); i += 2 {
		lhs := schema.AttrSet(seeds[i]) & all
		rhs := schema.AttrSet(seeds[i+1]) & all
		if rhs.IsEmpty() {
			continue
		}
		fds = append(fds, FD{LHS: lhs, RHS: rhs})
	}
	return MustNewSet(sc, fds...)
}

// Property: the closure is extensive, monotone, and idempotent.
func TestQuickClosureProperties(t *testing.T) {
	f := func(seeds []uint64, xRaw uint64) bool {
		set := genSet(t, seeds)
		all := set.Schema().AllAttrs()
		x := schema.AttrSet(xRaw) & all
		cl := set.Closure(x)
		if !x.IsSubsetOf(cl) { // extensive
			return false
		}
		if set.Closure(cl) != cl { // idempotent
			return false
		}
		// monotone: closure of a subset is contained in closure of x
		sub := x & (x >> 1) // some subset of x
		return set.Closure(sub&x).IsSubsetOf(cl) || !(sub & x).IsSubsetOf(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Canonical preserves equivalence and emits only nontrivial
// single-attribute-rhs FDs.
func TestQuickCanonicalEquivalence(t *testing.T) {
	f := func(seeds []uint64) bool {
		set := genSet(t, seeds)
		can := set.Canonical()
		for _, fdd := range can.FDs() {
			if fdd.RHS.Len() != 1 || fdd.IsTrivial() {
				return false
			}
		}
		return can.EquivalentTo(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(102))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Δ − X never mentions X and is implied by Δ on the remaining
// attributes' closure behaviour for sets containing X.
func TestQuickMinusProjection(t *testing.T) {
	f := func(seeds []uint64, xRaw uint64) bool {
		set := genSet(t, seeds)
		all := set.Schema().AllAttrs()
		x := schema.AttrSet(xRaw) & all
		m := set.Minus(x)
		if m.AttrsUsed().Intersects(x) {
			return false
		}
		// For any attribute set Y ⊇ X, cl_Δ(Y) ∖ X ⊇ cl_{Δ−X}(Y∖X):
		// removing X only weakens derivations.
		y := (schema.AttrSet(seeds2(xRaw)) & all).Union(x)
		return m.Closure(y.Diff(x)).IsSubsetOf(set.Closure(y).Diff(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(103))}); err != nil {
		t.Fatal(err)
	}
}

func seeds2(x uint64) uint64 { return x*2654435761 + 11 }

// Property: a minimal cover is equivalent to the original set and never
// larger than the canonical form.
func TestQuickMinimalCover(t *testing.T) {
	f := func(seeds []uint64) bool {
		set := genSet(t, seeds)
		mc := set.MinimalCover()
		return mc.EquivalentTo(set) && mc.Len() <= set.Canonical().Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(104))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the OSR simplification loop terminates and removes
// attributes monotonically.
func TestQuickSimplificationTerminates(t *testing.T) {
	f := func(seeds []uint64) bool {
		set := genSet(t, seeds)
		cur := set
		for steps := 0; ; steps++ {
			if steps > 3*schema.MaxAttrs {
				return false // cannot take more steps than attributes
			}
			st, ok := cur.NextSimplification()
			if !ok {
				return true
			}
			// The step must actually remove at least one attribute from use.
			if st.After.AttrsUsed().Intersects(st.Removed) {
				return false
			}
			cur = st.After
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(105))}); err != nil {
		t.Fatal(err)
	}
}

// Property: every lhs cover returned by MinLHSCover covers, and no
// smaller cover exists (checked against subset enumeration on the lhs
// universe).
func TestQuickMinLHSCover(t *testing.T) {
	f := func(seeds []uint64) bool {
		set := genSet(t, seeds).RemoveTrivial()
		cover, size, ok := set.MinLHSCover()
		if !ok {
			_, hasConsensus := set.ConsensusFD()
			return hasConsensus
		}
		if !set.LHSCover(cover) || cover.Len() != size {
			return false
		}
		universe := schema.EmptySet
		for _, fdd := range set.FDs() {
			universe = universe.Union(fdd.LHS)
		}
		best := universe.Len()
		universe.Subsets(func(c schema.AttrSet) bool {
			if set.LHSCover(c) && c.Len() < best {
				best = c.Len()
			}
			return true
		})
		return best == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(106))}); err != nil {
		t.Fatal(err)
	}
}
