package fd

import (
	"fmt"
	"sort"

	"repro/internal/schema"
)

// SimplificationKind identifies which of the paper's simplification
// opportunities applies to an FD set.
type SimplificationKind int

const (
	// KindCommonLHS — an attribute occurs in the lhs of every FD
	// (Subroutine 1, CommonLHSRep).
	KindCommonLHS SimplificationKind = iota
	// KindConsensus — a consensus FD ∅ → X exists
	// (Subroutine 2, ConsensusRep).
	KindConsensus
	// KindMarriage — an lhs marriage (X1, X2) exists
	// (Subroutine 3, MarriageRep).
	KindMarriage
)

func (k SimplificationKind) String() string {
	switch k {
	case KindCommonLHS:
		return "common lhs"
	case KindConsensus:
		return "consensus"
	case KindMarriage:
		return "lhs marriage"
	default:
		return fmt.Sprintf("SimplificationKind(%d)", int(k))
	}
}

// Simplification records one simplification step applied to an FD set:
// which rule fired, which attributes it removes, and the set after
// removal (with trivial FDs dropped).
type Simplification struct {
	Kind SimplificationKind
	// Attr is the chosen common-lhs attribute (valid for KindCommonLHS).
	Attr int
	// Consensus is the chosen consensus FD (valid for KindConsensus).
	Consensus FD
	// X1, X2 are the married lhs pair (valid for KindMarriage).
	X1, X2 schema.AttrSet
	// Removed is the set of attributes removed from the FDs.
	Removed schema.AttrSet
	// After is Δ − Removed.
	After *Set
}

// Describe renders the step for the schema of the given set, in the
// style of Example 3.5 in the paper.
func (st Simplification) Describe() string {
	sc := st.After.Schema()
	switch st.Kind {
	case KindCommonLHS:
		return fmt.Sprintf("common lhs %s", sc.AttrName(st.Attr))
	case KindConsensus:
		return fmt.Sprintf("consensus ∅ → %s", sc.SetString(st.Consensus.RHS))
	case KindMarriage:
		return fmt.Sprintf("lhs marriage (%s, %s)", sc.SetString(st.X1), sc.SetString(st.X2))
	default:
		return st.Kind.String()
	}
}

// CommonLHS returns the set of attributes that occur in the lhs of every
// FD of the (trivial-FD-free view of the) set. The paper's "common lhs"
// is any single attribute of this set. If the set has no FDs, the result
// is empty (there is nothing to simplify).
func (s *Set) CommonLHS() schema.AttrSet {
	nt := s.RemoveTrivial()
	if nt.Len() == 0 {
		return schema.EmptySet
	}
	common := nt.fds[0].LHS
	for _, f := range nt.fds[1:] {
		common = common.Intersect(f.LHS)
	}
	return common
}

// ConsensusFD returns the first consensus FD (∅ → X) among the
// nontrivial FDs of the set, if any.
func (s *Set) ConsensusFD() (FD, bool) {
	for _, f := range s.fds {
		if f.IsConsensus() && !f.IsTrivial() {
			return f, true
		}
	}
	return FD{}, false
}

// distinctLHS returns the distinct lhs sets of nontrivial FDs, sorted
// for determinism.
func (s *Set) distinctLHS() []schema.AttrSet {
	seen := make(map[schema.AttrSet]bool)
	var out []schema.AttrSet
	for _, f := range s.fds {
		if f.IsTrivial() {
			continue
		}
		if !seen[f.LHS] {
			seen[f.LHS] = true
			out = append(out, f.LHS)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LHSMarriage returns an lhs marriage (X1, X2) of the set if one exists:
// a pair of distinct lhs of FDs in Δ with cl(X1) = cl(X2) such that the
// lhs of every FD in Δ contains X1 or X2. Trivial FDs are ignored. The
// lexicographically smallest qualifying pair is returned, which keeps
// traces deterministic.
func (s *Set) LHSMarriage() (x1, x2 schema.AttrSet, ok bool) {
	nt := s.RemoveTrivial()
	lhss := nt.distinctLHS()
	for i := 0; i < len(lhss); i++ {
		for j := i + 1; j < len(lhss); j++ {
			a, b := lhss[i], lhss[j]
			if nt.Closure(a) != nt.Closure(b) {
				continue
			}
			covered := true
			for _, f := range nt.fds {
				if !a.IsSubsetOf(f.LHS) && !b.IsSubsetOf(f.LHS) {
					covered = false
					break
				}
			}
			if covered {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}

// NextSimplification applies the case analysis of OptSRepair /
// OSRSucceeds to the set: after removing trivial FDs it looks for, in
// order, a common lhs, a consensus FD, and an lhs marriage. It returns
// the step taken, or ok=false if the (nontrivial) set admits no
// simplification. If the set is trivial, it returns ok=false as well;
// use IsTrivialSet to distinguish success from failure.
func (s *Set) NextSimplification() (Simplification, bool) {
	nt := s.RemoveTrivial()
	if nt.Len() == 0 {
		return Simplification{}, false
	}
	if common := nt.CommonLHS(); !common.IsEmpty() {
		a := common.First()
		rm := schema.Singleton(a)
		return Simplification{
			Kind:    KindCommonLHS,
			Attr:    a,
			Removed: rm,
			After:   nt.Minus(rm),
		}, true
	}
	if cf, ok := nt.ConsensusFD(); ok {
		return Simplification{
			Kind:      KindConsensus,
			Consensus: cf,
			Removed:   cf.RHS,
			After:     nt.Minus(cf.RHS),
		}, true
	}
	if x1, x2, ok := nt.LHSMarriage(); ok {
		rm := x1.Union(x2)
		return Simplification{
			Kind:    KindMarriage,
			X1:      x1,
			X2:      x2,
			Removed: rm,
			After:   nt.Minus(rm),
		}, true
	}
	return Simplification{}, false
}

// SimplificationChain runs NextSimplification to a fixpoint and returns
// the full ⇛-chain, with success reporting whether the chain ends in a
// trivial set (the tractable side of the dichotomy). The chain depends
// only on the set, so it is computed once and cached; the repair
// algorithms call this on every invocation without re-deriving the
// case analysis per recursion node.
func (s *Set) SimplificationChain() (steps []Simplification, success bool) {
	s.chainOnce.Do(func() {
		cur := s
		for {
			nt := cur.RemoveTrivial()
			if nt.Len() == 0 {
				s.chainOK = true
				return
			}
			st, ok := nt.NextSimplification()
			if !ok {
				s.chainOK = false
				return
			}
			s.chain = append(s.chain, st)
			cur = st.After
		}
	})
	return s.chain, s.chainOK
}

// IsChain reports whether the set is a chain FD set: for every two FDs
// X1 → Y1 and X2 → Y2, X1 ⊆ X2 or X2 ⊆ X1 (Livshits & Kimelfeld 2017).
// Trivial FDs participate in the definition; callers who want the usual
// behaviour should canonicalize first.
func (s *Set) IsChain() bool {
	for i := 0; i < len(s.fds); i++ {
		for j := i + 1; j < len(s.fds); j++ {
			a, b := s.fds[i].LHS, s.fds[j].LHS
			if !a.IsSubsetOf(b) && !b.IsSubsetOf(a) {
				return false
			}
		}
	}
	return true
}
