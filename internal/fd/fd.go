// Package fd implements functional dependencies (FDs) and FD sets over a
// relation schema, together with all of the structural analysis the
// paper's algorithms need: attribute closures, entailment, equivalence,
// canonicalization, the Δ−X projection, the three simplifications of
// OptSRepair (common lhs, consensus FD, lhs marriage), chain detection,
// local minima, the five-class taxonomy of non-simplifiable FD sets
// (Fig. 2 of the paper), minimum lhs covers (mlc), and the
// Kolahi–Lakshmanan measures MFS and MCI.
package fd

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/schema"
)

// FD is a functional dependency X → Y over a schema, with X = LHS and
// Y = RHS given as attribute sets. An FD with an empty LHS is a
// consensus FD (written ∅ → Y in the paper).
type FD struct {
	LHS schema.AttrSet
	RHS schema.AttrSet
}

// IsTrivial reports whether the FD is trivial, i.e. RHS ⊆ LHS.
func (f FD) IsTrivial() bool { return f.RHS.IsSubsetOf(f.LHS) }

// IsConsensus reports whether the FD has an empty left-hand side.
func (f FD) IsConsensus() bool { return f.LHS.IsEmpty() }

// Set is an FD set Δ over a fixed schema. Sets are immutable: all
// operations return new sets. The zero value is not usable; construct
// with NewSet or Parse.
type Set struct {
	sc  *schema.Schema
	fds []FD

	// Lazily-computed simplification chain (SimplificationChain);
	// immutability makes the cache safe.
	chainOnce sync.Once
	chain     []Simplification
	chainOK   bool
}

// NewSet builds an FD set over the given schema. Every FD must mention
// only attributes of the schema.
func NewSet(sc *schema.Schema, fds ...FD) (*Set, error) {
	if sc == nil {
		return nil, fmt.Errorf("fd: nil schema")
	}
	all := sc.AllAttrs()
	out := make([]FD, 0, len(fds))
	for i, f := range fds {
		if !f.LHS.IsSubsetOf(all) || !f.RHS.IsSubsetOf(all) {
			return nil, fmt.Errorf("fd: FD #%d mentions attributes outside schema %s", i, sc)
		}
		out = append(out, f)
	}
	return &Set{sc: sc, fds: out}, nil
}

// MustNewSet is like NewSet but panics on error.
func MustNewSet(sc *schema.Schema, fds ...FD) *Set {
	s, err := NewSet(sc, fds...)
	if err != nil {
		panic(err)
	}
	return s
}

// Schema returns the schema the set is defined over.
func (s *Set) Schema() *schema.Schema { return s.sc }

// FDs returns a copy of the FDs in the set.
func (s *Set) FDs() []FD { return append([]FD(nil), s.fds...) }

// FDAt returns the i-th FD without copying the set (hot-path accessor;
// pair with Len).
func (s *Set) FDAt(i int) FD { return s.fds[i] }

// Len returns the number of FDs in the set.
func (s *Set) Len() int { return len(s.fds) }

// IsEmpty reports whether the set contains no FDs at all.
func (s *Set) IsEmpty() bool { return len(s.fds) == 0 }

// IsTrivialSet reports whether the set contains no nontrivial FD (the
// paper's "Δ is trivial"); an empty set is trivial.
func (s *Set) IsTrivialSet() bool {
	for _, f := range s.fds {
		if !f.IsTrivial() {
			return false
		}
	}
	return true
}

// EqualTo reports whether two sets hold the same FD sequence over the
// same schema (syntactic equality, order-sensitive — the cheap check a
// resident session uses to detect an FD-set change and drop its cached
// block repairs, whose partition derives from the chain).
func (s *Set) EqualTo(o *Set) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || !s.sc.SameAs(o.sc) || len(s.fds) != len(o.fds) {
		return false
	}
	for i, f := range s.fds {
		if f != o.fds[i] {
			return false
		}
	}
	return true
}

// AttrsUsed returns attr(Δ): the union of lhs and rhs over all FDs.
func (s *Set) AttrsUsed() schema.AttrSet {
	var out schema.AttrSet
	for _, f := range s.fds {
		out = out.Union(f.LHS).Union(f.RHS)
	}
	return out
}

// with returns a new set over the same schema with the given FDs
// (no validation: internal use only, attribute sets already checked).
func (s *Set) with(fds []FD) *Set { return &Set{sc: s.sc, fds: fds} }

// FDString renders a single FD with the schema's attribute names,
// e.g. "facility room → floor" or "∅ → city".
func (s *Set) FDString(f FD) string {
	return s.sc.SetString(f.LHS) + " → " + s.sc.SetString(f.RHS)
}

// String renders the set as {fd1, fd2, ...} with FDs in a deterministic
// order (sorted by rendered text).
func (s *Set) String() string {
	parts := make([]string, len(s.fds))
	for i, f := range s.fds {
		parts[i] = s.FDString(f)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Parse parses an FD of the form "A B -> C D" (or with the arrow "→").
// The empty LHS can be written as "" or "∅" (e.g. "-> A").
func Parse(sc *schema.Schema, spec string) (FD, error) {
	arrow := "->"
	if strings.Contains(spec, "→") {
		arrow = "→"
	}
	parts := strings.SplitN(spec, arrow, 2)
	if len(parts) != 2 {
		return FD{}, fmt.Errorf("fd: %q is not of the form \"X -> Y\"", spec)
	}
	lhs, err := parseSide(sc, parts[0])
	if err != nil {
		return FD{}, fmt.Errorf("fd: bad lhs in %q: %w", spec, err)
	}
	rhs, err := parseSide(sc, parts[1])
	if err != nil {
		return FD{}, fmt.Errorf("fd: bad rhs in %q: %w", spec, err)
	}
	if rhs.IsEmpty() {
		return FD{}, fmt.Errorf("fd: %q has an empty rhs", spec)
	}
	return FD{LHS: lhs, RHS: rhs}, nil
}

func parseSide(sc *schema.Schema, side string) (schema.AttrSet, error) {
	side = strings.TrimSpace(side)
	if side == "" || side == "∅" {
		return schema.EmptySet, nil
	}
	return sc.Set(strings.Fields(side)...)
}

// ParseSet parses a set of FDs, one spec per argument.
func ParseSet(sc *schema.Schema, specs ...string) (*Set, error) {
	fds := make([]FD, 0, len(specs))
	for _, spec := range specs {
		f, err := Parse(sc, spec)
		if err != nil {
			return nil, err
		}
		fds = append(fds, f)
	}
	return NewSet(sc, fds...)
}

// MustParseSet is like ParseSet but panics on error. Intended for tests,
// examples, and fixed benchmark catalogues.
func MustParseSet(sc *schema.Schema, specs ...string) *Set {
	s, err := ParseSet(sc, specs...)
	if err != nil {
		panic(err)
	}
	return s
}
