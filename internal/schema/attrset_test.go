package schema

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletonAndContains(t *testing.T) {
	for i := 0; i < MaxAttrs; i++ {
		s := Singleton(i)
		if !s.Contains(i) {
			t.Fatalf("Singleton(%d) does not contain %d", i, i)
		}
		if s.Len() != 1 {
			t.Fatalf("Singleton(%d).Len() = %d, want 1", i, s.Len())
		}
		for j := 0; j < MaxAttrs; j++ {
			if j != i && s.Contains(j) {
				t.Fatalf("Singleton(%d) contains %d", i, j)
			}
		}
	}
}

func TestSingletonPanicsOutOfRange(t *testing.T) {
	for _, i := range []int{-1, MaxAttrs, MaxAttrs + 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Singleton(%d) did not panic", i)
				}
			}()
			Singleton(i)
		}()
	}
}

func TestAddRemove(t *testing.T) {
	s := EmptySet.Add(3).Add(7).Add(3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s = s.Remove(3)
	if s.Contains(3) || !s.Contains(7) {
		t.Fatalf("Remove(3) failed: %v", s)
	}
	s = s.Remove(3) // removing twice is a no-op
	if s.Len() != 1 {
		t.Fatalf("double remove changed set: %v", s)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := EmptySet.Add(0).Add(1).Add(2)
	b := EmptySet.Add(2).Add(3)
	if got := a.Union(b).Len(); got != 4 {
		t.Errorf("Union len = %d, want 4", got)
	}
	if got := a.Intersect(b); got != Singleton(2) {
		t.Errorf("Intersect = %v, want {2}", got)
	}
	if got := a.Diff(b); got != EmptySet.Add(0).Add(1) {
		t.Errorf("Diff = %v, want {0,1}", got)
	}
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(Singleton(5)) {
		t.Error("a should not intersect {5}")
	}
}

func TestSubsetRelations(t *testing.T) {
	a := EmptySet.Add(1).Add(2)
	b := EmptySet.Add(1).Add(2).Add(3)
	if !a.IsSubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if !a.IsStrictSubsetOf(b) {
		t.Error("a ⊂ b expected")
	}
	if a.IsStrictSubsetOf(a) {
		t.Error("a ⊂ a must be false")
	}
	if b.IsSubsetOf(a) {
		t.Error("b ⊆ a must be false")
	}
	if !EmptySet.IsSubsetOf(a) {
		t.Error("∅ ⊆ a expected")
	}
}

func TestPositionsAndFirst(t *testing.T) {
	s := EmptySet.Add(5).Add(0).Add(63)
	got := s.Positions()
	want := []int{0, 5, 63}
	if len(got) != len(want) {
		t.Fatalf("Positions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Positions = %v, want %v", got, want)
		}
	}
	if s.First() != 0 {
		t.Errorf("First = %d, want 0", s.First())
	}
	if EmptySet.First() != -1 {
		t.Errorf("EmptySet.First() = %d, want -1", EmptySet.First())
	}
}

func TestSubsetsEnumeratesAll(t *testing.T) {
	s := EmptySet.Add(1).Add(4).Add(9)
	seen := map[AttrSet]bool{}
	s.Subsets(func(sub AttrSet) bool {
		if !sub.IsSubsetOf(s) {
			t.Fatalf("enumerated non-subset %v of %v", sub, s)
		}
		if seen[sub] {
			t.Fatalf("duplicate subset %v", sub)
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 8 {
		t.Fatalf("enumerated %d subsets, want 8", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := EmptySet.Add(0).Add(1).Add(2)
	n := 0
	s.Subsets(func(AttrSet) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d subsets, want 3", n)
	}
}

func TestAttrSetString(t *testing.T) {
	if got := EmptySet.String(); got != "∅" {
		t.Errorf("EmptySet.String() = %q", got)
	}
	if got := EmptySet.Add(0).Add(12).String(); got != "#0,#12" {
		t.Errorf("String() = %q, want #0,#12", got)
	}
}

// Property: union/intersection/difference agree with a map-based model.
func TestQuickSetAlgebraModel(t *testing.T) {
	f := func(av, bv uint64) bool {
		a, b := AttrSet(av), AttrSet(bv)
		model := func(s AttrSet) map[int]bool {
			m := map[int]bool{}
			for _, p := range s.Positions() {
				m[p] = true
			}
			return m
		}
		ma, mb := model(a), model(b)
		// union
		for _, p := range a.Union(b).Positions() {
			if !ma[p] && !mb[p] {
				return false
			}
		}
		if a.Union(b).Len() != len(union(ma, mb)) {
			return false
		}
		// intersect
		for _, p := range a.Intersect(b).Positions() {
			if !ma[p] || !mb[p] {
				return false
			}
		}
		// diff
		for _, p := range a.Diff(b).Positions() {
			if !ma[p] || mb[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func union(a, b map[int]bool) map[int]bool {
	m := map[int]bool{}
	for k := range a {
		m[k] = true
	}
	for k := range b {
		m[k] = true
	}
	return m
}

// Property: Subsets enumerates exactly 2^|s| distinct subsets for small s.
func TestQuickSubsetsCount(t *testing.T) {
	f := func(v uint16) bool {
		s := AttrSet(v) // at most 16 bits => at most 65536 subsets
		if s.Len() > 10 {
			return true // keep the test fast
		}
		n := 0
		s.Subsets(func(AttrSet) bool { n++; return true })
		return n == 1<<uint(s.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
