package schema

import "testing"

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []string
		ok    bool
	}{
		{"R", []string{"A", "B"}, true},
		{"", []string{"A"}, false},
		{"R", nil, false},
		{"R", []string{"A", "A"}, false},
		{"R", []string{"A", ""}, false},
	}
	for _, c := range cases {
		_, err := New(c.name, c.attrs...)
		if (err == nil) != c.ok {
			t.Errorf("New(%q, %v): err = %v, want ok=%v", c.name, c.attrs, err, c.ok)
		}
	}
}

func TestNewTooManyAttrs(t *testing.T) {
	attrs := make([]string, MaxAttrs+1)
	for i := range attrs {
		attrs[i] = string(rune('A')) + string(itoa(i))
	}
	if _, err := New("R", attrs...); err == nil {
		t.Fatal("expected error for >64 attributes")
	}
	// Exactly 64 is allowed.
	if _, err := New("R", attrs[:MaxAttrs]...); err != nil {
		t.Fatalf("64 attributes should be allowed: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	s := MustNew("Office", "facility", "room", "floor", "city")
	if s.Name() != "Office" || s.Arity() != 4 {
		t.Fatalf("bad name/arity: %s/%d", s.Name(), s.Arity())
	}
	if s.AttrName(2) != "floor" {
		t.Errorf("AttrName(2) = %q", s.AttrName(2))
	}
	if i, ok := s.AttrIndex("city"); !ok || i != 3 {
		t.Errorf("AttrIndex(city) = %d,%v", i, ok)
	}
	if _, ok := s.AttrIndex("nope"); ok {
		t.Error("AttrIndex(nope) should not exist")
	}
	if got := s.String(); got != "Office(facility, room, floor, city)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSetAndSetString(t *testing.T) {
	s := MustNew("R", "A", "B", "C")
	set, err := s.Set("C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 || !set.Contains(0) || !set.Contains(2) {
		t.Fatalf("Set(C,A) = %v", set)
	}
	if got := s.SetString(set); got != "A C" {
		t.Errorf("SetString = %q, want \"A C\"", got)
	}
	if got := s.SetString(EmptySet); got != "∅" {
		t.Errorf("SetString(∅) = %q", got)
	}
	if _, err := s.Set("Z"); err == nil {
		t.Error("Set(Z) should fail")
	}
}

func TestAllAttrs(t *testing.T) {
	s := MustNew("R", "A", "B", "C")
	if s.AllAttrs().Len() != 3 {
		t.Fatalf("AllAttrs len = %d", s.AllAttrs().Len())
	}
	attrs := make([]string, MaxAttrs)
	for i := range attrs {
		attrs[i] = "a" + string(itoa(i))
	}
	full := MustNew("Full", attrs...)
	if full.AllAttrs().Len() != MaxAttrs {
		t.Fatalf("AllAttrs len for 64-ary schema = %d", full.AllAttrs().Len())
	}
}

func TestSameAs(t *testing.T) {
	a := MustNew("R", "A", "B")
	b := MustNew("R", "A", "B")
	c := MustNew("R", "B", "A")
	d := MustNew("S", "A", "B")
	if !a.SameAs(b) {
		t.Error("a should equal b")
	}
	if a.SameAs(c) || a.SameAs(d) || a.SameAs(nil) {
		t.Error("a should not equal c, d, or nil")
	}
}

func TestSetNamesOrder(t *testing.T) {
	s := MustNew("R", "C", "A", "B")
	set := s.MustSet("B", "C")
	names := s.SetNames(set)
	if len(names) != 2 || names[0] != "C" || names[1] != "B" {
		t.Fatalf("SetNames = %v, want schema order [C B]", names)
	}
	sorted := s.SortedNames()
	if sorted[0] != "A" || sorted[1] != "B" || sorted[2] != "C" {
		t.Fatalf("SortedNames = %v", sorted)
	}
}

func TestMustSetPanics(t *testing.T) {
	s := MustNew("R", "A")
	defer func() {
		if recover() == nil {
			t.Error("MustSet with unknown attribute should panic")
		}
	}()
	s.MustSet("Z")
}
