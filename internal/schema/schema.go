package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is a relation schema R(A1, ..., Ak): a relation name and an
// ordered list of distinct attribute names. Schemas are immutable after
// construction.
type Schema struct {
	name  string
	attrs []string
	index map[string]int
}

// New constructs a schema. The relation name must be nonempty, attribute
// names must be nonempty and pairwise distinct, and there must be between
// 1 and MaxAttrs attributes.
func New(name string, attrs ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation name must be nonempty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: relation %s must have at least one attribute", name)
	}
	if len(attrs) > MaxAttrs {
		return nil, fmt.Errorf("schema: relation %s has %d attributes; max is %d", name, len(attrs), MaxAttrs)
	}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("schema: relation %s has an empty attribute name at position %d", name, i)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("schema: relation %s has duplicate attribute %q", name, a)
		}
		idx[a] = i
	}
	return &Schema{name: name, attrs: append([]string(nil), attrs...), index: idx}, nil
}

// MustNew is like New but panics on error. Intended for tests, examples,
// and compile-time-fixed schemas.
func MustNew(name string, attrs ...string) *Schema {
	s, err := New(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attrs returns a copy of the attribute names in schema order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// AttrName returns the name of the attribute at position i.
func (s *Schema) AttrName(i int) string {
	if i < 0 || i >= len(s.attrs) {
		panic(fmt.Sprintf("schema: attribute position %d out of range for %s", i, s.name))
	}
	return s.attrs[i]
}

// AttrIndex returns the position of the named attribute and whether it
// exists.
func (s *Schema) AttrIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Set builds an AttrSet from attribute names. It returns an error if any
// name is unknown.
func (s *Schema) Set(names ...string) (AttrSet, error) {
	var out AttrSet
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return 0, fmt.Errorf("schema: relation %s has no attribute %q", s.name, n)
		}
		out = out.Add(i)
	}
	return out, nil
}

// MustSet is like Set but panics on unknown names.
func (s *Schema) MustSet(names ...string) AttrSet {
	set, err := s.Set(names...)
	if err != nil {
		panic(err)
	}
	return set
}

// AllAttrs returns the set of every attribute position in the schema.
func (s *Schema) AllAttrs() AttrSet {
	if len(s.attrs) == MaxAttrs {
		return ^AttrSet(0)
	}
	return (AttrSet(1) << uint(len(s.attrs))) - 1
}

// SetNames returns the attribute names of set in schema order.
func (s *Schema) SetNames(set AttrSet) []string {
	ps := set.Positions()
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, s.AttrName(p))
	}
	return out
}

// SetString renders an AttrSet with attribute names in schema order, in
// the paper's convention (no braces, space separated); the empty set is
// rendered as ∅.
func (s *Schema) SetString(set AttrSet) string {
	if set.IsEmpty() {
		return "∅"
	}
	return strings.Join(s.SetNames(set), " ")
}

// String renders the schema as R(A1, ..., Ak).
func (s *Schema) String() string {
	return s.name + "(" + strings.Join(s.attrs, ", ") + ")"
}

// SameAs reports whether the two schemas have the same name and the same
// attributes in the same order.
func (s *Schema) SameAs(t *Schema) bool {
	if s == t {
		return true
	}
	if t == nil || s.name != t.name || len(s.attrs) != len(t.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// SortedNames returns the attribute names sorted lexicographically; a
// convenience for deterministic reporting.
func (s *Schema) SortedNames() []string {
	out := s.Attrs()
	sort.Strings(out)
	return out
}
