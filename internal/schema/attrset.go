// Package schema defines relation schemas and attribute sets for the
// FD-repair library. Attribute sets are represented as 64-bit bitsets,
// which keeps closure computation and the simplification tests of
// OptSRepair/OSRSucceeds allocation-free. A schema is therefore limited
// to 64 attributes; the paper's data-complexity setting fixes the schema,
// so this is not a practical limitation.
package schema

import (
	"math/bits"
	"strings"
)

// AttrSet is a set of attribute positions (0-based) in a Schema,
// represented as a bitset. The zero value is the empty set.
type AttrSet uint64

// EmptySet is the empty attribute set.
const EmptySet AttrSet = 0

// MaxAttrs is the maximum number of attributes in a schema.
const MaxAttrs = 64

// Singleton returns the set containing only attribute position i.
func Singleton(i int) AttrSet {
	if i < 0 || i >= MaxAttrs {
		panic("schema: attribute position out of range")
	}
	return AttrSet(1) << uint(i)
}

// Add returns s with attribute position i added.
func (s AttrSet) Add(i int) AttrSet { return s | Singleton(i) }

// Remove returns s with attribute position i removed.
func (s AttrSet) Remove(i int) AttrSet { return s &^ Singleton(i) }

// Contains reports whether attribute position i is in s.
func (s AttrSet) Contains(i int) bool { return s&Singleton(i) != 0 }

// Union returns the union of s and t.
func (s AttrSet) Union(t AttrSet) AttrSet { return s | t }

// Intersect returns the intersection of s and t.
func (s AttrSet) Intersect(t AttrSet) AttrSet { return s & t }

// Diff returns the set difference s \ t.
func (s AttrSet) Diff(t AttrSet) AttrSet { return s &^ t }

// IsEmpty reports whether s is the empty set.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// IsSubsetOf reports whether every attribute of s is in t.
func (s AttrSet) IsSubsetOf(t AttrSet) bool { return s&^t == 0 }

// IsStrictSubsetOf reports whether s ⊂ t.
func (s AttrSet) IsStrictSubsetOf(t AttrSet) bool { return s != t && s.IsSubsetOf(t) }

// Intersects reports whether s and t share at least one attribute.
func (s AttrSet) Intersects(t AttrSet) bool { return s&t != 0 }

// Len returns the number of attributes in s.
func (s AttrSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Positions returns the attribute positions of s in increasing order.
func (s AttrSet) Positions() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &= v - 1
	}
	return out
}

// First returns the smallest attribute position in s, or -1 if s is empty.
func (s AttrSet) First() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Subsets calls fn for every subset of s (including the empty set and s
// itself). Iteration stops early if fn returns false. The number of calls
// is 2^|s|; callers must bound |s|.
func (s AttrSet) Subsets(fn func(AttrSet) bool) {
	// Standard subset-enumeration trick: iterate sub = (sub-1)&s.
	sub := s
	for {
		if !fn(sub) {
			return
		}
		if sub == 0 {
			return
		}
		sub = (sub - 1) & s
	}
}

// String renders s using positional names #0, #1, ... It is meant for
// debugging; use Schema.SetString for named rendering.
func (s AttrSet) String() string {
	if s == 0 {
		return "∅"
	}
	var b strings.Builder
	for i, p := range s.Positions() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('#')
		for _, d := range itoa(p) {
			b.WriteByte(d)
		}
	}
	return b.String()
}

func itoa(n int) []byte {
	if n == 0 {
		return []byte{'0'}
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return buf[i:]
}
