package cqa

// The encoded CQA engine: instead of materializing every subset repair
// and evaluating the query on each (the seed path — exponential in the
// number of conflict components), answers are computed by factorizing
// the repairs over the conflict graph's components. Subset repairs are
// exactly: every conflict-free tuple, plus one maximal independent set
// per conflict component, chosen independently. Hence
//
//   - possible answers = the query's answers on t itself (every tuple
//     belongs to some repair);
//   - an answer is certain iff a conflict-free tuple produces it, or
//     some component's every maximal independent set contains a
//     producer;
//   - the repair count is the product of per-component counts.
//
// Components enumerate independently (Bron–Kerbosch with pivoting, one
// 64-bit set per component) and fan out on the solve context's
// scheduler, so the enumeration bound applies per component instead of
// per table: tables with thousands of small conflict components answer
// in linear time where the seed path needs 2^components repairs.

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/fd"
	"repro/internal/solve"
	"repro/internal/table"
)

// maxComponentVertices bounds one conflict component's size for
// enumeration (the bitset Bron–Kerbosch uses one word), mirroring
// enumerate.MaxEnumVertices — but per component, not per table.
const maxComponentVertices = 64

// matches reports whether the row passes every filter.
func (q *Query) matches(tup table.Tuple) bool {
	for _, f := range q.filters {
		if tup[f.Attr] != f.Value {
			return false
		}
	}
	return true
}

// componentAnswers enumerates one component's maximal independent sets
// and returns the projection keys produced by every one of them (the
// component's certain contribution) plus the set count. members are row
// positions; adj[i] is a bitset over member ordinals; produced[i] is
// the member's answer key ("" when the member fails the filters).
func componentAnswers(members []int32, adj []uint64, produced []string) (certain map[string]bool, count int) {
	n := len(members)
	full := uint64(1)<<uint(n) - 1
	if n == 64 {
		full = ^uint64(0)
	}
	compat := make([]uint64, n)
	for i := range compat {
		compat[i] = full &^ (1 << uint(i)) &^ adj[i]
	}
	var bk func(r, p, x uint64)
	bk = func(r, p, x uint64) {
		if p == 0 && x == 0 {
			count++
			keys := map[string]bool{}
			for m := r; m != 0; m &= m - 1 {
				if k := produced[bits.TrailingZeros64(m)]; k != "" {
					keys[k] = true
				}
			}
			if certain == nil {
				certain = keys
				return
			}
			for k := range certain {
				if !keys[k] {
					delete(certain, k)
				}
			}
			return
		}
		pivot, best := -1, -1
		for m := p | x; m != 0; m &= m - 1 {
			v := bits.TrailingZeros64(m)
			if d := bits.OnesCount64(p & compat[v]); d > best {
				pivot, best = v, d
			}
		}
		cand := p
		if pivot >= 0 {
			cand = p &^ compat[pivot]
		}
		for m := cand; m != 0; m &= m - 1 {
			v := bits.TrailingZeros64(m)
			vb := uint64(1) << uint(v)
			bk(r|vb, p&compat[v], x&compat[v])
			p &^= vb
			x |= vb
		}
	}
	bk(0, full, 0)
	return certain, count
}

// ConsistentAnswersCtx is ConsistentAnswers on the encoded core under a
// solve context: the conflict graph is factorized into components, each
// component's maximal independent sets enumerate as one scheduler task,
// and certain/possible answers assemble from per-component
// intersections instead of whole-table repair enumeration. The
// enumeration bound (64 tuples) applies per conflict component rather
// than per table. Answers are identical to ConsistentAnswers wherever
// the seed path can run.
func ConsistentAnswersCtx(c *solve.Ctx, ds *fd.Set, t *table.Table, q *Query) (*Answers, error) {
	if q == nil {
		return nil, fmt.Errorf("cqa: nil query")
	}
	c = c.BeginSolve()
	rows := t.Rows()
	n := len(rows)
	c.SetHints(solve.Hints{Rows: n})

	// Per-row query evaluation, once: filter match and projection key.
	produced := make([]string, n) // "" = row fails the filters
	proj := map[string]table.Tuple{}
	for ri := range rows {
		if !q.matches(rows[ri].Tuple) {
			continue
		}
		k := table.KeyOf(rows[ri].Tuple, q.project)
		produced[ri] = k
		if _, ok := proj[k]; !ok {
			out := make(table.Tuple, 0, q.project.Len())
			for _, p := range q.project.Positions() {
				out = append(out, rows[ri].Tuple[p])
			}
			proj[k] = out
		}
	}

	// Conflict components via union-find over row positions.
	edges := t.ConflictGraph(ds)
	idx := make(map[int]int32, n)
	for ri := range rows {
		idx[rows[ri].ID] = int32(ri)
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	conflicted := make([]bool, n)
	type edge struct{ u, v int32 }
	posEdges := make([]edge, len(edges))
	for i, e := range edges {
		u, v := idx[e.ID1], idx[e.ID2]
		posEdges[i] = edge{u, v}
		conflicted[u], conflicted[v] = true, true
		ru, rv := find(u), find(v)
		if ru != rv {
			parent[ru] = rv
		}
	}

	// Certain answers from conflict-free rows (present in every repair).
	certain := map[string]bool{}
	for ri := range rows {
		if !conflicted[ri] && produced[ri] != "" {
			certain[produced[ri]] = true
		}
	}

	// Bucket conflicted rows by component root, in row order.
	compOf := make(map[int32]int32)
	var comps [][]int32
	for ri := int32(0); ri < int32(n); ri++ {
		if !conflicted[ri] {
			continue
		}
		root := find(ri)
		ci, ok := compOf[root]
		if !ok {
			ci = int32(len(comps))
			compOf[root] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], ri)
	}
	for _, comp := range comps {
		if len(comp) > maxComponentVertices {
			return nil, fmt.Errorf("cqa: conflict component with %d tuples exceeds the %d-tuple enumeration bound", len(comp), maxComponentVertices)
		}
	}
	// Per-component adjacency bitsets over member ordinals.
	ordinal := make([]int32, n)
	for _, comp := range comps {
		for o, ri := range comp {
			ordinal[ri] = int32(o)
		}
	}
	adjs := make([][]uint64, len(comps))
	for ci, comp := range comps {
		adjs[ci] = make([]uint64, len(comp))
	}
	for _, e := range posEdges {
		ci := compOf[find(e.u)]
		ou, ov := ordinal[e.u], ordinal[e.v]
		adjs[ci][ou] |= 1 << uint(ov)
		adjs[ci][ov] |= 1 << uint(ou)
	}

	// Enumerate each component's maximal independent sets independently.
	type compResult struct {
		certain map[string]bool
		count   int
	}
	results := make([]compResult, len(comps))
	err := c.ForEachBlock(len(comps),
		func(i int) int { return len(comps[i]) },
		func(wc *solve.Ctx, i int) error {
			if err := wc.Err(); err != nil {
				return err
			}
			keys := make([]string, len(comps[i]))
			for o, ri := range comps[i] {
				keys[o] = produced[ri]
			}
			cert, count := componentAnswers(comps[i], adjs[i], keys)
			results[i] = compResult{certain: cert, count: count}
			return nil
		})
	if err != nil {
		return nil, err
	}
	repairs := 1
	for _, res := range results {
		for k := range res.certain {
			certain[k] = true
		}
		if res.count > 0 {
			if repairs > math.MaxInt/res.count {
				repairs = math.MaxInt
			} else {
				repairs *= res.count
			}
		}
	}
	c.Stats().CQACertainAnswers(len(certain))

	certTuples := make(map[string]table.Tuple, len(certain))
	for k := range certain {
		certTuples[k] = proj[k]
	}
	return &Answers{
		Certain:  sortedTuples(certTuples),
		Possible: sortedTuples(proj),
		Repairs:  repairs,
	}, nil
}
