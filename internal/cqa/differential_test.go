package cqa

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
	"repro/internal/workload"
)

// The factorized engine must agree with the seed full enumeration on
// every instance the seed can handle (≤ 64 tuples): same certain and
// possible answers, same repair count — at every worker count. Beyond
// the seed's reach, the per-component bound is pinned by a structural
// check on a table no full enumeration could touch.

var diffWorkers = []int{1, 2, 4, 8}

func randomQuery(t *testing.T, sc *schema.Schema, tab *table.Table, rng *rand.Rand) *Query {
	t.Helper()
	var project schema.AttrSet
	for _, p := range rng.Perm(sc.Arity())[:1+rng.Intn(sc.Arity())] {
		project = project.Add(p)
	}
	var filters []Filter
	for rng.Intn(3) == 0 {
		attr := rng.Intn(sc.Arity())
		val := table.Value("miss")
		if rows := tab.Rows(); len(rows) > 0 && rng.Intn(4) > 0 {
			val = rows[rng.Intn(len(rows))].Tuple[attr]
		}
		filters = append(filters, Filter{Attr: attr, Value: val})
	}
	q, err := NewQuery(sc, project, filters...)
	if err != nil {
		t.Fatalf("building query: %v", err)
	}
	return q
}

func TestDifferentialCQA(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "A -> C")
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		var tab *table.Table
		if rng.Intn(2) == 0 {
			tab = workload.SmallComponentTable(sc, rng.Intn(49), 1+rng.Intn(4), 1+rng.Intn(3), rng)
		} else {
			tab = workload.RandomTable(sc, rng.Intn(33), 1+rng.Intn(4), rng)
		}
		q := randomQuery(t, sc, tab, rng)
		want, err := ConsistentAnswers(ds, tab, q)
		if err != nil {
			t.Fatalf("trial %d: seed enumeration: %v", trial, err)
		}
		for _, w := range diffWorkers {
			got, err := ConsistentAnswersCtx(solve.New(w, nil, nil), ds, tab, q)
			if err != nil {
				t.Fatalf("trial %d workers=%d: encoded answers: %v", trial, w, err)
			}
			if !reflect.DeepEqual(got.Certain, want.Certain) {
				t.Fatalf("trial %d workers=%d: certain diverges: got %v, oracle %v",
					trial, w, got.Certain, want.Certain)
			}
			if !reflect.DeepEqual(got.Possible, want.Possible) {
				t.Fatalf("trial %d workers=%d: possible diverges: got %v, oracle %v",
					trial, w, got.Possible, want.Possible)
			}
			if got.Repairs != want.Repairs {
				t.Fatalf("trial %d workers=%d: %d repairs, oracle %d",
					trial, w, got.Repairs, want.Repairs)
			}
		}
	}
}

// TestDifferentialCQABeyondSeedBound pins the factorization's whole
// point: a 600-tuple table (far past the enumerator's 64-tuple limit)
// with ≤3-tuple components answers exactly, and projecting the block
// key makes every one of the 200 keys a certain answer because every
// repair keeps at least one tuple per component.
func TestDifferentialCQABeyondSeedBound(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "A -> C")
	tab := workload.SmallComponentTable(sc, 600, 3, 2, rand.New(rand.NewSource(67)))
	if _, err := ConsistentAnswers(ds, tab, mustKeyQuery(t, sc)); err == nil {
		t.Fatal("seed enumeration unexpectedly handled 600 tuples")
	}
	for _, w := range diffWorkers {
		got, err := ConsistentAnswersCtx(solve.New(w, nil, nil), ds, tab, mustKeyQuery(t, sc))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got.Certain) != 200 || len(got.Possible) != 200 {
			t.Fatalf("workers=%d: %d certain / %d possible block keys, want 200/200",
				w, len(got.Certain), len(got.Possible))
		}
		if got.Repairs < 1 {
			t.Fatalf("workers=%d: repair count %d", w, got.Repairs)
		}
	}
}

func mustKeyQuery(t *testing.T, sc *schema.Schema) *Query {
	t.Helper()
	q, err := NewQuery(sc, schema.AttrSet(0).Add(0))
	if err != nil {
		t.Fatal(err)
	}
	return q
}
