// Package cqa implements consistent query answering over subset
// repairs — the framework of Arenas, Bertossi and Chomicki that the
// paper's introduction builds on: the *consistent* (certain) answers to
// a query are those returned in every subset repair, and the *possible*
// answers those returned in at least one.
//
// Queries are selection–projection over the single relation: a
// conjunction of attribute = constant filters followed by a projection.
// Answers are computed by enumerating subset repairs (internal/
// enumerate), so the package is bounded to small instances; it is
// intended as the semantic companion of the repair algorithms, not as a
// scalable CQA engine (first-order rewritability is out of scope).
package cqa

import (
	"fmt"
	"sort"

	"repro/internal/enumerate"
	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
)

// Filter is an equality selection on one attribute.
type Filter struct {
	Attr  int
	Value table.Value
}

// Query is a selection–projection query over the relation.
type Query struct {
	sc      *schema.Schema
	filters []Filter
	project schema.AttrSet
}

// NewQuery builds a query; project must be nonempty and filters must
// address schema attributes.
func NewQuery(sc *schema.Schema, project schema.AttrSet, filters ...Filter) (*Query, error) {
	if sc == nil {
		return nil, fmt.Errorf("cqa: nil schema")
	}
	if project.IsEmpty() || !project.IsSubsetOf(sc.AllAttrs()) {
		return nil, fmt.Errorf("cqa: projection must be a nonempty subset of %s", sc)
	}
	for _, f := range filters {
		if f.Attr < 0 || f.Attr >= sc.Arity() {
			return nil, fmt.Errorf("cqa: filter attribute %d outside %s", f.Attr, sc)
		}
	}
	return &Query{sc: sc, filters: filters, project: project}, nil
}

// Eval returns the (set-semantics) answers of the query on one table,
// as projection keys mapped to representative tuples.
func (q *Query) Eval(t *table.Table) map[string]table.Tuple {
	out := map[string]table.Tuple{}
	for _, r := range t.Rows() {
		ok := true
		for _, f := range q.filters {
			if r.Tuple[f.Attr] != f.Value {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		proj := make(table.Tuple, 0, q.project.Len())
		for _, p := range q.project.Positions() {
			proj = append(proj, r.Tuple[p])
		}
		out[table.KeyOf(r.Tuple, q.project)] = proj
	}
	return out
}

// Answers is the outcome of consistent query answering.
type Answers struct {
	// Certain are the answers present in every subset repair.
	Certain []table.Tuple
	// Possible are the answers present in at least one subset repair.
	Possible []table.Tuple
	// Repairs is the number of subset repairs inspected.
	Repairs int
}

// ConsistentAnswers computes the certain and possible answers of q on t
// under ds by enumerating all subset repairs.
func ConsistentAnswers(ds *fd.Set, t *table.Table, q *Query) (*Answers, error) {
	reps, count, err := enumerate.SubsetRepairs(ds, t, 0)
	if err != nil {
		return nil, err
	}
	if count != len(reps) {
		return nil, fmt.Errorf("cqa: enumeration truncated")
	}
	certain := map[string]table.Tuple{}
	possible := map[string]table.Tuple{}
	for i, rep := range reps {
		ans := q.Eval(rep)
		for k, v := range ans {
			possible[k] = v
		}
		if i == 0 {
			for k, v := range ans {
				certain[k] = v
			}
			continue
		}
		for k := range certain {
			if _, ok := ans[k]; !ok {
				delete(certain, k)
			}
		}
	}
	return &Answers{
		Certain:  sortedTuples(certain),
		Possible: sortedTuples(possible),
		Repairs:  len(reps),
	}, nil
}

func sortedTuples(m map[string]table.Tuple) []table.Tuple {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]table.Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
