package cqa

import (
	"math/rand"
	"testing"

	"repro/internal/enumerate"
	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

func TestQueryValidation(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	if _, err := NewQuery(nil, sc.MustSet("A")); err == nil {
		t.Error("nil schema must be rejected")
	}
	if _, err := NewQuery(sc, schema.EmptySet); err == nil {
		t.Error("empty projection must be rejected")
	}
	if _, err := NewQuery(sc, sc.MustSet("A"), Filter{Attr: 5}); err == nil {
		t.Error("bad filter attribute must be rejected")
	}
}

func TestEvalSelectionProjection(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "x", "1"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "y", "2"}, 1)
	tab.MustInsert(3, table.Tuple{"b", "x", "3"}, 1)
	bIdx, _ := sc.AttrIndex("B")
	q, err := NewQuery(sc, sc.MustSet("A"), Filter{Attr: bIdx, Value: "x"})
	if err != nil {
		t.Fatal(err)
	}
	ans := q.Eval(tab)
	if len(ans) != 2 { // projections "a" and "b"
		t.Fatalf("answers = %v", ans)
	}
}

// TestConsistentAnswersRunningExample: on Figure 1 under Δ, the query
// "which city is HQ in?" has no certain answer (Paris in S2, Madrid in
// S1) while "which city is Lab1 in?" certainly answers London.
func TestConsistentAnswersRunningExample(t *testing.T) {
	sc, ds, tab := workload.Office()
	fac, _ := sc.AttrIndex("facility")
	city := sc.MustSet("city")

	qHQ, err := NewQuery(sc, city, Filter{Attr: fac, Value: "HQ"})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ConsistentAnswers(ds, tab, qHQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 0 {
		t.Fatalf("HQ city certain answers = %v, want none", ans.Certain)
	}
	if len(ans.Possible) != 2 {
		t.Fatalf("HQ city possible answers = %v, want Paris and Madrid", ans.Possible)
	}

	qLab, err := NewQuery(sc, city, Filter{Attr: fac, Value: "Lab1"})
	if err != nil {
		t.Fatal(err)
	}
	ans, err = ConsistentAnswers(ds, tab, qLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 1 || ans.Certain[0][0] != "London" {
		t.Fatalf("Lab1 certain answers = %v, want [London]", ans.Certain)
	}
}

// TestCertainSubsetOfPossible and both bounded by the dirty table's own
// answers, on random instances.
func TestCertainSubsetOfPossible(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	rng := rand.New(rand.NewSource(121))
	for iter := 0; iter < 15; iter++ {
		tab := workload.RandomTable(sc, 7, 2, rng)
		q, err := NewQuery(sc, sc.MustSet("A", "B"))
		if err != nil {
			t.Fatal(err)
		}
		ans, err := ConsistentAnswers(ds, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Repairs < 1 {
			t.Fatal("no repairs inspected")
		}
		if len(ans.Certain) > len(ans.Possible) {
			t.Fatal("certain answers exceed possible answers")
		}
		possible := map[string]bool{}
		for _, p := range ans.Possible {
			possible[tupleKey(p)] = true
		}
		for _, c := range ans.Certain {
			if !possible[tupleKey(c)] {
				t.Fatal("certain answer not among possible answers")
			}
		}
		// Direct verification: every certain answer appears in every
		// repair; every possible answer appears in some repair.
		reps, _, err := enumerate.SubsetRepairs(ds, tab, 0)
		if err != nil {
			t.Fatal(err)
		}
		perRepair := make([]map[string]bool, len(reps))
		for i, rep := range reps {
			perRepair[i] = map[string]bool{}
			for _, v := range q.Eval(rep) {
				perRepair[i][tupleKey(v)] = true
			}
		}
		for _, c := range ans.Certain {
			for i := range perRepair {
				if !perRepair[i][tupleKey(c)] {
					t.Fatalf("certain answer %v missing from repair %d", c, i)
				}
			}
		}
		for _, p := range ans.Possible {
			found := false
			for i := range perRepair {
				if perRepair[i][tupleKey(p)] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("possible answer %v not in any repair", p)
			}
		}
	}
}

func tupleKey(t table.Tuple) string {
	k := ""
	for _, v := range t {
		k += v + "\x01"
	}
	return k
}

// TestConsistentTableAllCertain: on a consistent table the unique
// repair is the table itself, so certain = possible = plain answers.
func TestConsistentTableAllCertain(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "x"}, 1)
	tab.MustInsert(2, table.Tuple{"b", "y"}, 1)
	q, err := NewQuery(sc, sc.MustSet("B"))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ConsistentAnswers(ds, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Repairs != 1 || len(ans.Certain) != 2 || len(ans.Possible) != 2 {
		t.Fatalf("answers = %+v", ans)
	}
}
