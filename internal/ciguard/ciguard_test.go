// Package ciguard is a meta-test over .github/workflows/ci.yml: the
// solver-lifecycle and chaos jobs select their suites with
// hand-maintained `-run` regexes, which can silently drift as suites
// are added or renamed. These tests extract the regexes from the
// workflow and cross-check them against the Test functions that
// actually exist in the covered packages.
package ciguard

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// selector is one extracted `-run` regex together with the package
// trees its `go test` invocation covers.
type selector struct {
	re   *regexp.Regexp
	dirs []string
}

// sentinels are invariant families that must never drop out of the CI
// regexes: each maps to a suite the optimality or robustness contract
// depends on.
var sentinels = []string{
	"Cancel", "Scope", "Sticky", "Stream", "Batch", "Steal", // lifecycle
	"Panic", "Failpoint", "Close", "Drain", "Shed", "Deadline", // chaos
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// runSelectors extracts every alternation-style `-run '...'` regex from
// the workflow file, paired with the package patterns of its go test
// line (`./...` means the whole module).
func runSelectors(t *testing.T) []selector {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(repoRoot(t), ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatalf("read workflow: %v", err)
	}
	lineRe := regexp.MustCompile(`-run '([^']+)'((?: \./\S+)*)`)
	var out []selector
	for _, m := range lineRe.FindAllStringSubmatch(string(data), -1) {
		if !strings.Contains(m[1], "|") {
			continue // single-suite selectors (DaemonE2E, ^$) are not drift-prone
		}
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("workflow -run regex %q does not compile: %v", m[1], err)
		}
		var dirs []string
		for _, pat := range strings.Fields(m[2]) {
			pat = strings.TrimPrefix(pat, "./")
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "..." || pat == "" {
				pat = "."
			}
			dirs = append(dirs, pat)
		}
		if len(dirs) == 0 {
			dirs = []string{"."} // bare `./...` or no explicit packages
		}
		out = append(out, selector{re: re, dirs: dirs})
	}
	if len(out) < 2 {
		t.Fatalf("expected the solver-lifecycle and chaos -run regexes in ci.yml, found %d alternation regexes", len(out))
	}
	return out
}

// testNames parses the _test.go files under the given repo-relative
// trees and returns every Test function name.
func testNames(t *testing.T, dirs []string) []string {
	t.Helper()
	root := repoRoot(t)
	fset := token.NewFileSet()
	var names []string
	for _, dir := range dirs {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case "testdata", "vendor", ".git":
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if ok && fn.Recv == nil && strings.HasPrefix(fn.Name.Name, "Test") {
					names = append(names, fn.Name.Name)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", dir, err)
		}
	}
	if len(names) == 0 {
		t.Fatalf("no Test functions found under %v", dirs)
	}
	return names
}

// TestSentinelFamiliesPresent fails if a load-bearing suite family is
// removed from every CI regex.
func TestSentinelFamiliesPresent(t *testing.T) {
	selectors := runSelectors(t)
	for _, fam := range sentinels {
		present := false
		for _, s := range selectors {
			for _, alt := range strings.Split(s.re.String(), "|") {
				if alt == fam {
					present = true
				}
			}
		}
		if !present {
			t.Errorf("invariant family %q is in no CI -run regex: its suites would only run in the plain test job", fam)
		}
	}
}

// TestNoDeadAlternatives fails when a regex alternative matches no
// existing test in the packages its job runs: the suite it selected was
// renamed or deleted, and the regex is silently stale.
func TestNoDeadAlternatives(t *testing.T) {
	for _, s := range runSelectors(t) {
		names := testNames(t, s.dirs)
		for _, alt := range strings.Split(s.re.String(), "|") {
			altRe, err := regexp.Compile(alt)
			if err != nil {
				t.Fatalf("alternative %q does not compile: %v", alt, err)
			}
			alive := false
			for _, n := range names {
				if altRe.MatchString(n) {
					alive = true
					break
				}
			}
			if !alive {
				t.Errorf("CI -run alternative %q matches no Test function in %v: stale after a rename?", alt, s.dirs)
			}
		}
	}
}

// TestFamilyTestsMatchRegex asserts that every Test function whose name
// contains one of a regex's family keywords is matched by that full
// regex — anchoring or escaping mistakes in the hand-edited pattern
// would silently drop suites from the race jobs.
func TestFamilyTestsMatchRegex(t *testing.T) {
	for _, s := range runSelectors(t) {
		names := testNames(t, s.dirs)
		for _, alt := range strings.Split(s.re.String(), "|") {
			for _, n := range names {
				if strings.Contains(n, alt) && !s.re.MatchString(n) {
					t.Errorf("test %s contains family %q but does not match CI regex %q", n, alt, s.re)
				}
			}
		}
	}
}
