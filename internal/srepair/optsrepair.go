// Package srepair implements the paper's algorithms for optimal subset
// repairs (optimal S-repairs):
//
//   - OptSRepair (Algorithm 1) with its three subroutines CommonLHSRep,
//     ConsensusRep and MarriageRep (Subroutines 1–3), a polynomial-time
//     exact algorithm that succeeds exactly when OSRSucceeds does;
//   - OSRSucceeds (Algorithm 2) and a human-readable simplification
//     trace in the style of Example 3.5;
//   - Exact: an exponential-time baseline for arbitrary FD sets via
//     minimum-weight vertex cover of the conflict graph;
//   - Approx2: the polynomial 2-approximation of Proposition 3.3
//     (Bar-Yehuda–Even on the conflict graph).
package srepair

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/solve"
	"repro/internal/table"
)

// ErrNoSimplification is returned by OptSRepair when the FD set cannot
// be reduced to a trivial set by the three simplifications; by the
// dichotomy (Theorem 3.4) computing an optimal S-repair is then
// APX-complete, and the caller should fall back to Exact (small
// instances) or Approx2.
var ErrNoSimplification = errors.New("srepair: FD set admits no simplification (hard side of the dichotomy)")

// OptSRepair is Algorithm 1: it computes an optimal S-repair of t under
// ds in polynomial time, or fails with ErrNoSimplification when the FD
// set is on the hard side of the dichotomy. The returned table is a
// consistent subset of t minimizing dist_sub.
//
// The simplification chain is data-independent, so it is computed once
// (Trace); the recursion then runs over zero-copy views of t
// (row-index slices sharing t's dictionary encoding). Blocks are never
// materialized as intermediate tables — only the final repair builds a
// *Table.
//
// OptSRepair runs on the process-default solve context (serial, no
// stats); OptSRepairCtx threads an explicit per-solve context carrying
// the worker budget, scratch arenas, cancellation and stats.
func OptSRepair(ds *fd.Set, t *table.Table) (*table.Table, error) {
	return OptSRepairCtx(solve.Default(), ds, t)
}

// OptSRepairCtx is OptSRepair under an explicit solve context: sibling
// blocks fan out on c's worker budget, per-node scratch (group-by
// buffers, block result slices, matcher arenas) recycles through c's
// arena, and cancellation is honored at recursion and component
// boundaries (a cancelled solve returns c's context error). Results
// are byte-identical to the serial default-context solve.
func OptSRepairCtx(c *solve.Ctx, ds *fd.Set, t *table.Table) (*table.Table, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("srepair: FD set and table have different schemas")
	}
	steps, ok := Trace(ds)
	if !ok {
		return nil, ErrNoSimplification
	}
	if len(steps) == 0 {
		// Line 1–2: Δ is trivial, T is its own optimal S-repair.
		return t, nil
	}
	// One solve = one scope: the hints below describe this table only,
	// so a Ctx reused across tables of different sizes never pre-sizes a
	// small solve's fresh scratch at a bigger table's shape.
	c = c.BeginSolve()
	// Clamp the distinct-count estimate to the table's length: no
	// projection has more distinct values than rows, but the dictionary
	// of an incrementally mutated table retains vanished values, so the
	// estimate can exceed the live row count. An ingested table refines
	// the estimate with its full-tuple cardinality sketch (per-column
	// maxima undercount multi-attribute projections) and threads its
	// sketch set through as the per-projection cardinality source, so
	// arena preheating sizes from measured distinct counts instead of
	// the upper-bound guess.
	codes := t.DistinctEstimate()
	if full, ok := t.SketchCardinality(t.Schema().AllAttrs()); ok && full > codes {
		codes = full
	}
	if codes > t.Len() {
		codes = t.Len()
	}
	h := solve.Hints{Rows: t.Len(), Codes: codes}
	if cs := t.CardSource(); cs != nil {
		h.Cards = cs
	}
	c.SetHints(h)
	sv := solver{steps: steps, c: c}
	keep, err := sv.solve(table.NewView(t), 0)
	if err != nil {
		return nil, err
	}
	return table.ViewOfRows(t, keep).Materialize(), nil
}

// solver carries the precomputed simplification chain and the solve
// context through the view recursion: every node at depth d applies
// steps[d], so no FD-set reasoning happens per block, and every node
// draws scratch from (and checks cancellation on) the same per-solve
// context.
type solver struct {
	steps []fd.Simplification
	c     *solve.Ctx
}

// solve returns the row indices (into the view's backing table) of an
// optimal S-repair of the view.
func (s solver) solve(v table.View, depth int) ([]int32, error) {
	s.c.Stats().Node()
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	if depth == len(s.steps) || v.Len() <= 1 {
		// Chain exhausted, or a singleton/empty block: always consistent,
		// so the block is its own optimal S-repair.
		return v.Rows(), nil
	}
	st := s.steps[depth]
	switch st.Kind {
	case fd.KindCommonLHS:
		return s.commonLHSRep(st, v, depth)
	case fd.KindConsensus:
		return s.consensusRep(st, v, depth)
	case fd.KindMarriage:
		return s.marriageRep(st, v, depth)
	default:
		return nil, fmt.Errorf("srepair: unknown simplification %v", st.Kind)
	}
}

// solveBlocks solves every group at depth+1, enqueuing independent
// blocks as tasks on the context's work-stealing scheduler — blocks at
// every recursion depth land on the same deques, so a deep chain whose
// fan-out happens far below the root still saturates the worker
// budget. Each block's recursion continues on the Ctx of whichever
// worker executes it (its deque, its arena shard). The returned
// block-result slice comes from the context arena; the caller releases
// it with PutInt32Slices after combining (the entries themselves may
// alias group storage and are copied out before any release).
func (s solver) solveBlocks(v table.View, groups [][]int32, depth int) ([][]int32, error) {
	reps := s.c.Int32Slices(len(groups))
	err := s.c.ForEachBlock(len(groups), func(i int) int { return len(groups[i]) }, func(wc *solve.Ctx, i int) error {
		rep, err := solver{steps: s.steps, c: wc}.solve(v.Subview(groups[i]), depth+1)
		if err != nil {
			return err
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		// The entries are only slice headers (their storage belongs to
		// the per-node groupings, recycled by those nodes' defers), so
		// the header slice itself can be pooled on the error path too.
		s.c.PutInt32Slices(reps)
		return nil, err
	}
	return reps, nil
}

// commonLHSRep is Subroutine 1: partition by the common-lhs attribute,
// solve each block under Δ − A, return the union.
func (s solver) commonLHSRep(st fd.Simplification, v table.View, depth int) ([]int32, error) {
	g := v.GroupByArena(s.c, st.Removed)
	// Deferred so cancelled solves recycle their scratch too; the
	// return value is always a fresh slice, copied out before the
	// deferred release runs.
	defer g.Release(s.c)
	reps, err := s.solveBlocks(v, g.Groups, depth)
	if err != nil {
		return nil, err
	}
	defer s.c.PutInt32Slices(reps)
	total := 0
	for _, rep := range reps {
		total += len(rep)
	}
	keep := make([]int32, 0, total)
	for _, rep := range reps {
		keep = append(keep, rep...)
	}
	sortRows(keep)
	return keep, nil
}

// consensusRep is Subroutine 2: partition by the consensus attributes,
// solve each block under Δ − X, return the heaviest block repair.
func (s solver) consensusRep(st fd.Simplification, v table.View, depth int) ([]int32, error) {
	if v.Len() == 0 {
		return v.Rows(), nil
	}
	g := v.GroupByArena(s.c, st.Removed)
	defer g.Release(s.c)
	reps, err := s.solveBlocks(v, g.Groups, depth)
	if err != nil {
		return nil, err
	}
	defer s.c.PutInt32Slices(reps)
	var best []int32
	bestW := math.Inf(-1)
	for _, rep := range reps {
		if w := v.Subview(rep).TotalWeight(); w > bestW {
			best, bestW = rep, w
		}
	}
	// best may alias a shared group bucket (a block that bottomed out
	// returns its rows verbatim), which the deferred release recycles —
	// copy it out before returning, and sort the copy (never the
	// bucket).
	best = slices.Clone(best)
	if !slices.IsSorted(best) {
		sortRows(best)
	}
	return best, nil
}

// marriageRep is Subroutine 3: group by the married pair (X1, X2),
// solve each group under Δ − X1X2, and combine the groups through a
// maximum-weight bipartite matching between the X1-values and the
// X2-values.
//
// The matching graph has exactly one edge per observed (a1, a2) block,
// so the edge list goes straight to the sparse engine — cost scales
// with the number of blocks the data contains, not with the product of
// distinct-value counts a dense matrix would pad to. Connected
// components of the marriage graph become tasks on the same
// work-stealing scheduler as the repair blocks.
func (s solver) marriageRep(st fd.Simplification, v table.View, depth int) ([]int32, error) {
	if v.Len() == 0 {
		return v.Rows(), nil
	}
	t := v.Table()
	// Node sets: distinct X1 and X2 projections, indexed by their
	// dictionary codes in order of first appearance within the view.
	codes1, n1 := t.ProjectionCodes(st.X1)
	codes2, n2 := t.ProjectionCodes(st.X2)
	v1Index := newCodeIndex(s.c, n1, v.Len())
	defer v1Index.release(s.c)
	v2Index := newCodeIndex(s.c, n2, v.Len())
	defer v2Index.release(s.c)
	for _, ri := range v.Rows() {
		v1Index.add(codes1[ri])
		v2Index.add(codes2[ri])
	}
	g := v.GroupByArena(s.c, st.X1.Union(st.X2))
	defer g.Release(s.c)
	reps, err := s.solveBlocks(v, g.Groups, depth)
	if err != nil {
		return nil, err
	}
	defer s.c.PutInt32Slices(reps)
	// Edge gi joins the block's X1-node to its X2-node, weighted by the
	// block's optimal S-repair; distinct blocks have distinct endpoint
	// pairs, so edge indices and group indices coincide. A session's
	// exact cardinality source bounds fresh edge scratch at the real
	// block count instead of the row count.
	edges := getEdges(s.c, len(g.Groups), s.c.ProjectionCard(st.X1.Union(st.X2), s.c.Hints().Rows))
	defer putEdges(s.c, edges)
	for gi, grp := range g.Groups {
		first := grp[0]
		edges[gi] = graph.Edge{
			I: v1Index.of(codes1[first]),
			J: v2Index.of(codes2[first]),
			W: v.Subview(reps[gi]).TotalWeight(),
		}
	}
	sm, err := graph.NewSparseMatcher(v1Index.len(), v2Index.len(), edges)
	if err != nil {
		return nil, err
	}
	sm.Ctx = s.c
	res, err := sm.Solve()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, gi := range res.Picked {
		total += len(reps[gi])
	}
	keep := make([]int32, 0, total)
	for _, gi := range res.Picked {
		keep = append(keep, reps[gi]...)
	}
	sortRows(keep)
	return keep, nil
}

// edgeKey pools marriage edge lists on the solve context, one list per
// recursion node actually running Subroutine 3.
type edgeKey struct{}

func getEdges(c *solve.Ctx, n, capHint int) []graph.Edge {
	if v := c.GetScratch(edgeKey{}); v != nil {
		return solve.Grow(*v.(*[]graph.Edge), n)
	}
	// Fresh list: pre-size at the caller's cardinality bound (edges ≤
	// blocks, and blocks ≤ rows when nothing better is known), so the
	// first solve skips the grow-realloc ladder. The bound comes from
	// the per-solve scope, so it reflects this table only — never the
	// sticky maximum of a previous, larger solve.
	if capHint > n {
		return make([]graph.Edge, n, solve.RoundCap(capHint))
	}
	return solve.Grow[graph.Edge](nil, n)
}

func putEdges(c *solve.Ctx, s []graph.Edge) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	c.PutScratch(edgeKey{}, &s)
}

// codeIndex maps dense projection codes to local node indices assigned
// by first appearance (the matching's node numbering). Dense scratch
// (drawn from the solve arena) when the table-wide code space is
// comparable to the view, a map when the view is a sliver of a huge
// table (so per-block cost stays O(block size), not O(table
// cardinality)).
type codeIndex struct {
	local []int32
	m     map[int32]int32
	n     int
}

func newCodeIndex(c *solve.Ctx, codes, viewLen int) *codeIndex {
	if codes > 4*viewLen+64 {
		return &codeIndex{m: make(map[int32]int32, viewLen)}
	}
	local := c.Int32s(codes)
	for i := range local {
		local[i] = -1
	}
	return &codeIndex{local: local}
}

// release recycles the dense scratch; the index is dead afterwards.
func (ci *codeIndex) release(c *solve.Ctx) {
	if ci.local != nil {
		c.PutInt32s(ci.local)
		ci.local = nil
	}
}

func (ci *codeIndex) add(code int32) {
	if ci.m != nil {
		if _, ok := ci.m[code]; !ok {
			ci.m[code] = int32(ci.n)
			ci.n++
		}
		return
	}
	if ci.local[code] < 0 {
		ci.local[code] = int32(ci.n)
		ci.n++
	}
}

func (ci *codeIndex) of(code int32) int {
	if ci.m != nil {
		return int(ci.m[code])
	}
	return int(ci.local[code])
}
func (ci *codeIndex) len() int { return ci.n }

// sortRows orders row indices ascending (= insertion order), keeping
// results deterministic regardless of block solve order.
func sortRows(rows []int32) { slices.Sort(rows) }

// OSRSucceeds is Algorithm 2: it reports whether OptSRepair succeeds on
// the FD set, i.e. whether the set simplifies to a trivial set. By
// Theorem 3.4 this is exactly the polynomial-time side of the dichotomy.
func OSRSucceeds(ds *fd.Set) bool {
	_, success := Trace(ds)
	return success
}

// Trace runs the simplification loop of OSRSucceeds and records each
// step, reproducing the ⇛-chains of Example 3.5. success is true iff
// the final set is trivial. The chain is cached on the (immutable) FD
// set, so repeated solves pay for it once.
func Trace(ds *fd.Set) (steps []fd.Simplification, success bool) {
	return ds.SimplificationChain()
}

// IsConsistentSubset verifies that s is a subset of t satisfying ds.
func IsConsistentSubset(ds *fd.Set, t, s *table.Table) bool {
	return s.IsSubsetOf(t) && s.Satisfies(ds)
}

// Cost returns dist_sub(s, t), the weight of the deleted tuples.
func Cost(t, s *table.Table) float64 { return table.DistSub(s, t) }

// conflictProblem builds the weighted vertex-cover view of the table:
// tuple ids become vertices, FD conflicts become edges.
func conflictProblem(ds *fd.Set, t *table.Table) (*graph.Graph, []int) {
	rows := t.Rows()
	ids := make([]int, len(rows))
	index := make(map[int]int, len(rows))
	weights := make([]float64, len(rows))
	for i, r := range rows {
		ids[i] = r.ID
		index[r.ID] = i
		weights[i] = r.Weight
	}
	g := graph.MustNewGraph(weights)
	for _, e := range t.ConflictGraph(ds) {
		// ConflictGraph already deduplicates and orients edges.
		g.AddEdgeUnchecked(index[e.ID1], index[e.ID2])
	}
	return g, ids
}

// coverToSubset deletes the covered vertices from t.
func coverToSubset(t *table.Table, ids []int, cover map[int]bool) *table.Table {
	var keep []int
	for i, id := range ids {
		if !cover[i] {
			keep = append(keep, id)
		}
	}
	return t.MustSubsetByIDs(keep)
}

// Exact computes an optimal S-repair for any FD set by solving minimum-
// weight vertex cover on the conflict graph exactly. Exponential in the
// worst case; it is the validation baseline for the hard side of the
// dichotomy and refuses very large instances. Runs on the process-
// default solve context; see ExactCtx.
func Exact(ds *fd.Set, t *table.Table) (*table.Table, error) {
	return ExactCtx(solve.Default(), ds, t)
}

// ExactCtx is Exact under an explicit solve context: the branch-and-
// bound cover search honors cancellation, so a deadline bounds the
// exponential worst case.
func ExactCtx(c *solve.Ctx, ds *fd.Set, t *table.Table) (*table.Table, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("srepair: FD set and table have different schemas")
	}
	// Fresh per-solve scope: without it the cover search would pre-size
	// its scratch from whatever solve this Ctx ran last.
	c = c.BeginSolve()
	if err := c.Err(); err != nil {
		return nil, err
	}
	g, ids := conflictProblem(ds, t)
	cover, err := g.ExactMinVertexCoverCtx(c)
	if err != nil {
		return nil, err
	}
	return coverToSubset(t, ids, cover), nil
}

// Approx2 computes a 2-optimal S-repair in polynomial time for any FD
// set (Proposition 3.3): Bar-Yehuda–Even weighted vertex cover on the
// conflict graph. The result is always a consistent subset with
// dist_sub at most twice the optimum. Runs on the process-default
// solve context; see Approx2Ctx.
func Approx2(ds *fd.Set, t *table.Table) (*table.Table, error) {
	return Approx2Ctx(solve.Default(), ds, t)
}

// Approx2Ctx is Approx2 under an explicit solve context (cancellation
// checked before the conflict graph is built).
func Approx2Ctx(c *solve.Ctx, ds *fd.Set, t *table.Table) (*table.Table, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("srepair: FD set and table have different schemas")
	}
	// Fresh per-solve scope, as in OptSRepairCtx and ExactCtx.
	c = c.BeginSolve()
	if err := c.Err(); err != nil {
		return nil, err
	}
	g, ids := conflictProblem(ds, t)
	cover := g.ApproxVertexCoverBE()
	return coverToSubset(t, ids, cover), nil
}

// MakeMaximal extends a consistent subset s of t to a subset repair in
// the local-minimality sense: restoring any deleted tuple breaks
// consistency. Deleted tuples are re-inserted greedily by decreasing
// weight (stable in insertion order), never increasing dist_sub.
//
// The greedy loop is near-linear: instead of cloning the table and
// re-checking all FDs per candidate, it keeps one lhs-code → rhs-code
// map per FD over the rows kept so far (a consistent set determines the
// rhs of every lhs group), so each candidate is admitted or rejected in
// O(|Δ|) map lookups against t's dictionary encoding.
func MakeMaximal(ds *fd.Set, t, s *table.Table) (*table.Table, error) {
	if !IsConsistentSubset(ds, t, s) {
		return nil, fmt.Errorf("srepair: input is not a consistent subset")
	}
	fds := ds.FDs()
	type fdCodes struct {
		lhs, rhs []int32
		rhsOf    map[int32]int32
	}
	codes := make([]fdCodes, len(fds))
	for i, f := range fds {
		lhs, _ := t.ProjectionCodes(f.LHS)
		rhs, _ := t.ProjectionCodes(f.RHS)
		codes[i] = fdCodes{lhs: lhs, rhs: rhs, rhsOf: make(map[int32]int32, s.Len())}
	}
	// Seed the per-FD group maps with the rows of s (a subset of t, so
	// t's codes apply to its rows).
	keep := make([]int, 0, t.Len())
	for _, id := range s.IDs() {
		ri, _ := t.IndexOf(id)
		keep = append(keep, id)
		for i := range codes {
			codes[i].rhsOf[codes[i].lhs[ri]] = codes[i].rhs[ri]
		}
	}
	// Candidates: deleted ids ordered by decreasing weight (stable).
	type cand struct {
		id, ri int
		w      float64
	}
	var cands []cand
	for ri, r := range t.Rows() {
		if !s.Has(r.ID) {
			cands = append(cands, cand{r.ID, ri, r.Weight})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].w > cands[j].w })
	for _, c := range cands {
		ok := true
		for i := range codes {
			if rhs, seen := codes[i].rhsOf[codes[i].lhs[c.ri]]; seen && rhs != codes[i].rhs[c.ri] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		keep = append(keep, c.id)
		for i := range codes {
			codes[i].rhsOf[codes[i].lhs[c.ri]] = codes[i].rhs[c.ri]
		}
	}
	return t.SubsetByIDs(keep)
}
