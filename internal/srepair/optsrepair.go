// Package srepair implements the paper's algorithms for optimal subset
// repairs (optimal S-repairs):
//
//   - OptSRepair (Algorithm 1) with its three subroutines CommonLHSRep,
//     ConsensusRep and MarriageRep (Subroutines 1–3), a polynomial-time
//     exact algorithm that succeeds exactly when OSRSucceeds does;
//   - OSRSucceeds (Algorithm 2) and a human-readable simplification
//     trace in the style of Example 3.5;
//   - Exact: an exponential-time baseline for arbitrary FD sets via
//     minimum-weight vertex cover of the conflict graph;
//   - Approx2: the polynomial 2-approximation of Proposition 3.3
//     (Bar-Yehuda–Even on the conflict graph).
package srepair

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/table"
)

// ErrNoSimplification is returned by OptSRepair when the FD set cannot
// be reduced to a trivial set by the three simplifications; by the
// dichotomy (Theorem 3.4) computing an optimal S-repair is then
// APX-complete, and the caller should fall back to Exact (small
// instances) or Approx2.
var ErrNoSimplification = errors.New("srepair: FD set admits no simplification (hard side of the dichotomy)")

// OptSRepair is Algorithm 1: it computes an optimal S-repair of t under
// ds in polynomial time, or fails with ErrNoSimplification when the FD
// set is on the hard side of the dichotomy. The returned table is a
// consistent subset of t minimizing dist_sub.
func OptSRepair(ds *fd.Set, t *table.Table) (*table.Table, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("srepair: FD set and table have different schemas")
	}
	return optSRepair(ds, t)
}

func optSRepair(ds *fd.Set, t *table.Table) (*table.Table, error) {
	nt := ds.RemoveTrivial()
	if nt.Len() == 0 {
		// Line 1–2: Δ is trivial, T is its own optimal S-repair.
		return t, nil
	}
	st, ok := nt.NextSimplification()
	if !ok {
		return nil, ErrNoSimplification
	}
	switch st.Kind {
	case fd.KindCommonLHS:
		return commonLHSRep(st, t)
	case fd.KindConsensus:
		return consensusRep(st, t)
	case fd.KindMarriage:
		return marriageRep(st, t)
	default:
		return nil, fmt.Errorf("srepair: unknown simplification %v", st.Kind)
	}
}

// commonLHSRep is Subroutine 1: partition by the common-lhs attribute,
// solve each block under Δ − A, return the union.
func commonLHSRep(st fd.Simplification, t *table.Table) (*table.Table, error) {
	var keep []int
	for _, g := range t.GroupBy(st.Removed) {
		block := t.MustSubsetByIDs(g.IDs)
		rep, err := optSRepair(st.After, block)
		if err != nil {
			return nil, err
		}
		keep = append(keep, rep.IDs()...)
	}
	return t.SubsetByIDs(keep)
}

// consensusRep is Subroutine 2: partition by the consensus attributes,
// solve each block under Δ − X, return the heaviest block repair.
func consensusRep(st fd.Simplification, t *table.Table) (*table.Table, error) {
	if t.Len() == 0 {
		return t, nil
	}
	var best *table.Table
	bestW := math.Inf(-1)
	for _, g := range t.GroupBy(st.Removed) {
		block := t.MustSubsetByIDs(g.IDs)
		rep, err := optSRepair(st.After, block)
		if err != nil {
			return nil, err
		}
		if w := rep.TotalWeight(); w > bestW {
			best, bestW = rep, w
		}
	}
	return best, nil
}

// marriageRep is Subroutine 3: group by the married pair (X1, X2),
// solve each group under Δ − X1X2, and combine the groups through a
// maximum-weight bipartite matching between the X1-values and the
// X2-values.
func marriageRep(st fd.Simplification, t *table.Table) (*table.Table, error) {
	if t.Len() == 0 {
		return t, nil
	}
	// Node sets: distinct X1 and X2 projections.
	v1Index := map[string]int{}
	v2Index := map[string]int{}
	for _, r := range t.Rows() {
		k1 := table.KeyOf(r.Tuple, st.X1)
		if _, ok := v1Index[k1]; !ok {
			v1Index[k1] = len(v1Index)
		}
		k2 := table.KeyOf(r.Tuple, st.X2)
		if _, ok := v2Index[k2]; !ok {
			v2Index[k2] = len(v2Index)
		}
	}
	// One edge per observed (a1, a2) pair, weighted by the optimal
	// S-repair of the pair's block.
	type edge struct {
		i, j int
		rep  *table.Table
		w    float64
	}
	edges := map[[2]int]edge{}
	for _, g := range t.GroupBy(st.X1.Union(st.X2)) {
		block := t.MustSubsetByIDs(g.IDs)
		rep, err := optSRepair(st.After, block)
		if err != nil {
			return nil, err
		}
		first, _ := block.Row(block.IDs()[0])
		i := v1Index[table.KeyOf(first.Tuple, st.X1)]
		j := v2Index[table.KeyOf(first.Tuple, st.X2)]
		edges[[2]int{i, j}] = edge{i: i, j: j, rep: rep, w: rep.TotalWeight()}
	}
	weight := func(i, j int) float64 {
		if e, ok := edges[[2]int{i, j}]; ok {
			return e.w
		}
		return math.Inf(-1)
	}
	match, _, err := graph.MaxWeightBipartiteMatching(len(v1Index), len(v2Index), weight)
	if err != nil {
		return nil, err
	}
	var keep []int
	for i, j := range match {
		if j < 0 {
			continue
		}
		if e, ok := edges[[2]int{i, j}]; ok {
			keep = append(keep, e.rep.IDs()...)
		}
	}
	return t.SubsetByIDs(keep)
}

// OSRSucceeds is Algorithm 2: it reports whether OptSRepair succeeds on
// the FD set, i.e. whether the set simplifies to a trivial set. By
// Theorem 3.4 this is exactly the polynomial-time side of the dichotomy.
func OSRSucceeds(ds *fd.Set) bool {
	_, success := Trace(ds)
	return success
}

// Trace runs the simplification loop of OSRSucceeds and records each
// step, reproducing the ⇛-chains of Example 3.5. success is true iff
// the final set is trivial.
func Trace(ds *fd.Set) (steps []fd.Simplification, success bool) {
	cur := ds
	for {
		nt := cur.RemoveTrivial()
		if nt.Len() == 0 {
			return steps, true
		}
		st, ok := nt.NextSimplification()
		if !ok {
			return steps, false
		}
		steps = append(steps, st)
		cur = st.After
	}
}

// IsConsistentSubset verifies that s is a subset of t satisfying ds.
func IsConsistentSubset(ds *fd.Set, t, s *table.Table) bool {
	return s.IsSubsetOf(t) && s.Satisfies(ds)
}

// Cost returns dist_sub(s, t), the weight of the deleted tuples.
func Cost(t, s *table.Table) float64 { return table.DistSub(s, t) }

// conflictProblem builds the weighted vertex-cover view of the table:
// tuple ids become vertices, FD conflicts become edges.
func conflictProblem(ds *fd.Set, t *table.Table) (*graph.Graph, []int) {
	ids := t.IDs()
	index := make(map[int]int, len(ids))
	weights := make([]float64, len(ids))
	for i, id := range ids {
		index[id] = i
		weights[i] = t.Weight(id)
	}
	g := graph.MustNewGraph(weights)
	for _, e := range t.ConflictGraph(ds) {
		if err := g.AddEdge(index[e.ID1], index[e.ID2]); err != nil {
			panic(err) // ids came from the table; cannot happen
		}
	}
	return g, ids
}

// coverToSubset deletes the covered vertices from t.
func coverToSubset(t *table.Table, ids []int, cover map[int]bool) *table.Table {
	var keep []int
	for i, id := range ids {
		if !cover[i] {
			keep = append(keep, id)
		}
	}
	return t.MustSubsetByIDs(keep)
}

// Exact computes an optimal S-repair for any FD set by solving minimum-
// weight vertex cover on the conflict graph exactly. Exponential in the
// worst case; it is the validation baseline for the hard side of the
// dichotomy and refuses very large instances.
func Exact(ds *fd.Set, t *table.Table) (*table.Table, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("srepair: FD set and table have different schemas")
	}
	g, ids := conflictProblem(ds, t)
	cover, err := g.ExactMinVertexCover()
	if err != nil {
		return nil, err
	}
	return coverToSubset(t, ids, cover), nil
}

// Approx2 computes a 2-optimal S-repair in polynomial time for any FD
// set (Proposition 3.3): Bar-Yehuda–Even weighted vertex cover on the
// conflict graph. The result is always a consistent subset with
// dist_sub at most twice the optimum.
func Approx2(ds *fd.Set, t *table.Table) (*table.Table, error) {
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("srepair: FD set and table have different schemas")
	}
	g, ids := conflictProblem(ds, t)
	cover := g.ApproxVertexCoverBE()
	return coverToSubset(t, ids, cover), nil
}

// MakeMaximal extends a consistent subset s of t to a subset repair in
// the local-minimality sense: restoring any deleted tuple breaks
// consistency. Deleted tuples are re-inserted greedily by decreasing
// weight, never increasing dist_sub.
func MakeMaximal(ds *fd.Set, t, s *table.Table) (*table.Table, error) {
	if !IsConsistentSubset(ds, t, s) {
		return nil, fmt.Errorf("srepair: input is not a consistent subset")
	}
	cur := s.Clone()
	// Candidates: deleted ids ordered by decreasing weight (stable).
	type cand struct {
		id int
		w  float64
	}
	var cands []cand
	for _, id := range t.IDs() {
		if !cur.Has(id) {
			cands = append(cands, cand{id, t.Weight(id)})
		}
	}
	for swapped := true; swapped; {
		swapped = false
		for i := 1; i < len(cands); i++ {
			if cands[i].w > cands[i-1].w {
				cands[i], cands[i-1] = cands[i-1], cands[i]
				swapped = true
			}
		}
	}
	for _, c := range cands {
		r, _ := t.Row(c.id)
		trial := cur.Clone()
		trial.MustInsert(r.ID, r.Tuple, r.Weight)
		if trial.Satisfies(ds) {
			cur = trial
		}
	}
	return cur, nil
}
