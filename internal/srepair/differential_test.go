package srepair

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
	"repro/internal/workload"
)

// This file pins the dictionary-encoded, view-recursive implementation
// to the seed implementation: the reference functions below are the
// seed's string-keyed, materializing algorithms, copied verbatim (only
// renamed). The differential tests assert byte-identical repairs (same
// identifiers, hence same tuples, and same cost) on randomized tables
// across the tractable sets and all four hard sets of Table 1.

func refOptSRepair(ds *fd.Set, t *table.Table) (*table.Table, error) {
	nt := ds.RemoveTrivial()
	if nt.Len() == 0 {
		return t, nil
	}
	st, ok := nt.NextSimplification()
	if !ok {
		return nil, ErrNoSimplification
	}
	switch st.Kind {
	case fd.KindCommonLHS:
		return refCommonLHSRep(st, t)
	case fd.KindConsensus:
		return refConsensusRep(st, t)
	default:
		return refMarriageRep(st, t)
	}
}

func refCommonLHSRep(st fd.Simplification, t *table.Table) (*table.Table, error) {
	var keep []int
	for _, g := range refGroupBy(t, st.Removed) {
		block := t.MustSubsetByIDs(g.ids)
		rep, err := refOptSRepair(st.After, block)
		if err != nil {
			return nil, err
		}
		keep = append(keep, rep.IDs()...)
	}
	return t.SubsetByIDs(keep)
}

func refConsensusRep(st fd.Simplification, t *table.Table) (*table.Table, error) {
	if t.Len() == 0 {
		return t, nil
	}
	var best *table.Table
	bestW := math.Inf(-1)
	for _, g := range refGroupBy(t, st.Removed) {
		block := t.MustSubsetByIDs(g.ids)
		rep, err := refOptSRepair(st.After, block)
		if err != nil {
			return nil, err
		}
		if w := rep.TotalWeight(); w > bestW {
			best, bestW = rep, w
		}
	}
	return best, nil
}

func refMarriageRep(st fd.Simplification, t *table.Table) (*table.Table, error) {
	if t.Len() == 0 {
		return t, nil
	}
	v1Index := map[string]int{}
	v2Index := map[string]int{}
	for _, r := range t.Rows() {
		k1 := table.KeyOf(r.Tuple, st.X1)
		if _, ok := v1Index[k1]; !ok {
			v1Index[k1] = len(v1Index)
		}
		k2 := table.KeyOf(r.Tuple, st.X2)
		if _, ok := v2Index[k2]; !ok {
			v2Index[k2] = len(v2Index)
		}
	}
	type edge struct {
		rep *table.Table
		w   float64
	}
	edges := map[[2]int]edge{}
	for _, g := range refGroupBy(t, st.X1.Union(st.X2)) {
		block := t.MustSubsetByIDs(g.ids)
		rep, err := refOptSRepair(st.After, block)
		if err != nil {
			return nil, err
		}
		first, _ := block.Row(block.IDs()[0])
		i := v1Index[table.KeyOf(first.Tuple, st.X1)]
		j := v2Index[table.KeyOf(first.Tuple, st.X2)]
		edges[[2]int{i, j}] = edge{rep: rep, w: rep.TotalWeight()}
	}
	weight := func(i, j int) float64 {
		if e, ok := edges[[2]int{i, j}]; ok {
			return e.w
		}
		return math.Inf(-1)
	}
	match, _, err := graph.MaxWeightBipartiteMatching(len(v1Index), len(v2Index), weight)
	if err != nil {
		return nil, err
	}
	var keep []int
	for i, j := range match {
		if j < 0 {
			continue
		}
		if e, ok := edges[[2]int{i, j}]; ok {
			keep = append(keep, e.rep.IDs()...)
		}
	}
	return t.SubsetByIDs(keep)
}

type refGroup struct{ ids []int }

// refGroupBy is the seed's string-keyed GroupBy.
func refGroupBy(t *table.Table, attrs schema.AttrSet) []refGroup {
	idx := map[string]int{}
	var out []refGroup
	for _, r := range t.Rows() {
		k := table.KeyOf(r.Tuple, attrs)
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, refGroup{})
		}
		out[i].ids = append(out[i].ids, r.ID)
	}
	return out
}

func refExact(ds *fd.Set, t *table.Table) (*table.Table, error) {
	g, ids := refConflictProblem(ds, t)
	cover, err := g.ExactMinVertexCover()
	if err != nil {
		return nil, err
	}
	return refCoverToSubset(t, ids, cover), nil
}

func refApprox2(ds *fd.Set, t *table.Table) (*table.Table, error) {
	g, ids := refConflictProblem(ds, t)
	cover := g.ApproxVertexCoverBE()
	return refCoverToSubset(t, ids, cover), nil
}

// refConflictProblem builds the vertex-cover instance from the seed's
// string-keyed conflict enumeration.
func refConflictProblem(ds *fd.Set, t *table.Table) (*graph.Graph, []int) {
	ids := t.IDs()
	index := make(map[int]int, len(ids))
	weights := make([]float64, len(ids))
	for i, id := range ids {
		index[id] = i
		weights[i] = t.Weight(id)
	}
	g := graph.MustNewGraph(weights)
	seen := map[[2]int]bool{}
	for _, f := range ds.FDs() {
		byLHS := map[string][]int{}
		var order []string
		for _, r := range t.Rows() {
			k := table.KeyOf(r.Tuple, f.LHS)
			if _, ok := byLHS[k]; !ok {
				order = append(order, k)
			}
			byLHS[k] = append(byLHS[k], r.ID)
		}
		for _, k := range order {
			members := byLHS[k]
			for i := 0; i < len(members); i++ {
				ri, _ := t.Row(members[i])
				for j := i + 1; j < len(members); j++ {
					rj, _ := t.Row(members[j])
					if table.KeyOf(ri.Tuple, f.RHS) != table.KeyOf(rj.Tuple, f.RHS) {
						a, b := members[i], members[j]
						if a > b {
							a, b = b, a
						}
						if !seen[[2]int{a, b}] {
							seen[[2]int{a, b}] = true
							if err := g.AddEdge(index[a], index[b]); err != nil {
								panic(err)
							}
						}
					}
				}
			}
		}
	}
	return g, ids
}

func refCoverToSubset(t *table.Table, ids []int, cover map[int]bool) *table.Table {
	var keep []int
	for i, id := range ids {
		if !cover[i] {
			keep = append(keep, id)
		}
	}
	return t.MustSubsetByIDs(keep)
}

// refMakeMaximal is the seed's clone-per-candidate greedy extension.
func refMakeMaximal(ds *fd.Set, t, s *table.Table) (*table.Table, error) {
	cur := s.Clone()
	type cand struct {
		id int
		w  float64
	}
	var cands []cand
	for _, id := range t.IDs() {
		if !cur.Has(id) {
			cands = append(cands, cand{id, t.Weight(id)})
		}
	}
	for swapped := true; swapped; {
		swapped = false
		for i := 1; i < len(cands); i++ {
			if cands[i].w > cands[i-1].w {
				cands[i], cands[i-1] = cands[i-1], cands[i]
				swapped = true
			}
		}
	}
	for _, c := range cands {
		r, _ := t.Row(c.id)
		trial := cur.Clone()
		trial.MustInsert(r.ID, r.Tuple, r.Weight)
		if trial.Satisfies(ds) {
			cur = trial
		}
	}
	return cur, nil
}

func sameRepair(t *testing.T, name string, base, got, want *table.Table) {
	t.Helper()
	if got == nil || want == nil {
		if got != want {
			t.Fatalf("%s: got %v, want %v", name, got, want)
		}
		return
	}
	if !slices.Equal(got.IDs(), want.IDs()) {
		t.Fatalf("%s: kept %v, seed kept %v", name, got.IDs(), want.IDs())
	}
	if !table.WeightEq(Cost(base, got), Cost(base, want)) {
		t.Fatalf("%s: cost %v, seed cost %v", name, Cost(base, got), Cost(base, want))
	}
}

// TestDifferentialOptSRepair pins the view-based OptSRepair to the seed
// recursion on randomized weighted tables for every tractable FD set.
func TestDifferentialOptSRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, ds := range workload.TractableSets() {
		sc := ds.Schema()
		for iter := 0; iter < 60; iter++ {
			n := rng.Intn(40)
			dom := 2 + rng.Intn(5)
			tab := workload.RandomWeightedTable(sc, n, dom, 4, rng)
			got, err := OptSRepair(ds, tab)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, err := refOptSRepair(ds, tab)
			if err != nil {
				t.Fatalf("%s ref: %v", name, err)
			}
			sameRepair(t, name, tab, got, want)
			if !IsConsistentSubset(ds, tab, got) {
				t.Fatalf("%s: result is not a consistent subset", name)
			}
		}
	}
}

// TestDifferentialExactApprox2 pins the code-based conflict graph and
// the scratch-allocated vertex-cover search to the seed behavior on all
// four hard FD sets of Table 1.
func TestDifferentialExactApprox2(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for name, ds := range workload.HardSets() {
		sc := ds.Schema()
		for iter := 0; iter < 15; iter++ {
			n := 2 + rng.Intn(18)
			dom := 2 + rng.Intn(3)
			tab := workload.RandomWeightedTable(sc, n, dom, 3, rng)
			gotE, err := Exact(ds, tab)
			if err != nil {
				t.Fatalf("%s exact: %v", name, err)
			}
			wantE, err := refExact(ds, tab)
			if err != nil {
				t.Fatalf("%s ref exact: %v", name, err)
			}
			sameRepair(t, name+"/exact", tab, gotE, wantE)

			gotA, err := Approx2(ds, tab)
			if err != nil {
				t.Fatalf("%s approx2: %v", name, err)
			}
			wantA, err := refApprox2(ds, tab)
			if err != nil {
				t.Fatalf("%s ref approx2: %v", name, err)
			}
			sameRepair(t, name+"/approx2", tab, gotA, wantA)
		}
	}
}

// TestDifferentialMakeMaximal pins the incremental group-membership
// extension to the seed's clone-per-candidate loop.
func TestDifferentialMakeMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for name, ds := range workload.HardSets() {
		sc := ds.Schema()
		for iter := 0; iter < 15; iter++ {
			tab := workload.RandomWeightedTable(sc, 2+rng.Intn(20), 2+rng.Intn(3), 3, rng)
			s, err := Approx2(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MakeMaximal(ds, tab, s)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refMakeMaximal(ds, tab, s)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got.IDs(), slices.Sorted(slices.Values(want.IDs()))) {
				t.Fatalf("%s: kept %v, seed kept %v", name, got.IDs(), want.IDs())
			}
		}
	}
}

// TestParallelMatchesSerial runs the block solver on a work-stealing
// scheduler context and asserts repairs identical to the serial solve.
// Under -race this doubles as the race-detector test for the shared
// dictionary encoding and the scheduler (many goroutines sharing one
// scheduled Ctx exercises slot acquisition, stealing and the worker
// arena shards).
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for name, ds := range workload.TractableSets() {
		sc := ds.Schema()
		for _, n := range []int{50, 400} {
			tab := workload.RandomWeightedTable(sc, n, n/8+2, 4, rng)
			serial, err := OptSRepair(ds, tab)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// Solve concurrently from several goroutines sharing one
			// scheduled context too: the lazy encoding build and
			// projection cache must be race-free.
			sched := solve.New(8, nil, nil)
			var wg sync.WaitGroup
			results := make([]*table.Table, 4)
			errs := make([]error, 4)
			for i := range results {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = OptSRepairCtx(sched, ds, tab.Clone())
				}(i)
			}
			wg.Wait()
			for i := range results {
				if errs[i] != nil {
					t.Fatalf("%s parallel: %v", name, errs[i])
				}
				sameRepair(t, name+"/parallel", tab, results[i], serial)
			}
		}
	}
}
