package srepair

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestSchedulerDeterminism is the randomized-shape property test for
// the work-stealing scheduler: across every tractable FD set and
// random tables of varying size, domain (block granularity) and weight
// skew, the repair must be byte-identical for workers ∈ {1, 2, 4, 8}.
// Each worker count reuses one Ctx across all shapes, so arena
// recycling and worker shards are in play; under -race this is the
// scheduler's main data-race gate.
func TestSchedulerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1918))
	ctxs := map[int]*solve.Ctx{}
	for _, w := range []int{1, 2, 4, 8} {
		ctxs[w] = solve.New(w, nil, nil)
	}
	for name, ds := range workload.TractableSets() {
		sc := ds.Schema()
		for trial := 0; trial < 6; trial++ {
			n := 40 + rng.Intn(500)
			domain := 2 + rng.Intn(n/4+2) // few huge blocks .. many tiny ones
			tab := workload.RandomWeightedTable(sc, n, domain, 5, rng)
			serial, err := OptSRepairCtx(ctxs[1], ds, tab)
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			for _, w := range []int{2, 4, 8} {
				got, err := OptSRepairCtx(ctxs[w], ds, tab)
				if err != nil {
					t.Fatalf("%s trial %d workers=%d: %v", name, trial, w, err)
				}
				sameRepair(t, fmt.Sprintf("%s/trial=%d/workers=%d", name, trial, w), tab, got, serial)
			}
		}
	}
}

// deepChainTable builds the regression shape the old try-acquire pool
// serialized: a chain of two common-lhs levels whose top level has only
// two (large) blocks, with the real fan-out — eight sub-blocks, each an
// lhs marriage over many components — buried beneath them. A pool
// worker acquired at the top used to park in the join while its
// subtree, finding the budget saturated, ran serially; the scheduler's
// steal/help protocol keeps every worker executing, which the steal
// counters below prove.
func deepChainTable(t *testing.T) (*fd.Set, *table.Table) {
	t.Helper()
	sc := schema.MustNew("R", "D1", "D2", "A", "B", "C")
	ds := fd.MustParseSet(sc, "D1 D2 A -> B", "D1 D2 B -> A", "D1 D2 B -> C")
	rng := rand.New(rand.NewSource(77))
	tab := table.New(sc)
	for i := 1; i <= 2400; i++ {
		tab.MustInsert(i, table.Tuple{
			fmt.Sprintf("d%d", rng.Intn(2)),
			fmt.Sprintf("e%d", rng.Intn(4)),
			fmt.Sprintf("a%d", rng.Intn(40)),
			fmt.Sprintf("b%d", rng.Intn(40)),
			fmt.Sprintf("c%d", rng.Intn(4)),
		}, float64(1+rng.Intn(4)))
	}
	return ds, tab
}

// TestSchedulerDeepChainLateFanOut: the deep-chain shape must (a) stay
// byte-identical to the serial engine at every worker count and (b)
// actually move tasks between workers — queued blocks executed from
// deques, some of them stolen across recursion levels — rather than
// degenerating to one worker walking the tree. The steal assertion
// needs real parallelism (on GOMAXPROCS=1 the producing worker never
// yields and correctly runs its whole subtree itself), so it is
// enforced only on multi-core runs — CI pins GOMAXPROCS=4 for this
// test — and retried a few times to absorb goroutine scheduling noise.
func TestSchedulerDeepChainLateFanOut(t *testing.T) {
	ds, tab := deepChainTable(t)
	serial, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		var snap solve.Snapshot
		for attempt := 0; attempt < 5; attempt++ {
			st := new(solve.Stats)
			c := solve.New(w, nil, st)
			got, err := OptSRepairCtx(c, ds, tab)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			sameRepair(t, fmt.Sprintf("deep-chain/workers=%d", w), tab, got, serial)
			snap = st.Snapshot()
			if snap.BlocksParallel == 0 {
				t.Fatalf("workers=%d: no blocks executed as scheduler tasks: %+v", w, snap)
			}
			if snap.Steals > 0 {
				break
			}
		}
		if runtime.GOMAXPROCS(0) > 1 && snap.Steals == 0 {
			t.Fatalf("workers=%d: no cross-worker steals on the late-fan-out shape: %+v", w, snap)
		}
		if snap.Steals == 0 {
			t.Logf("workers=%d: GOMAXPROCS=1, steal assertion skipped (stats %+v)", w, snap)
		}
	}
}
