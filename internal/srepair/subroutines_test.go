package srepair

import (
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestMarriageSharedValueAcrossSides exercises footnote 1 of the paper:
// the same value may occur as both an X1-projection and an
// X2-projection; the two occurrences are distinct matching nodes.
func TestMarriageSharedValueAcrossSides(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C")
	tab := table.New(sc)
	// The value "v" appears on both the A side and the B side.
	tab.MustInsert(1, table.Tuple{"v", "w", "c"}, 1)
	tab.MustInsert(2, table.Tuple{"u", "v", "c"}, 1)
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	// The pairs (v,w) and (u,v) are compatible: v-as-A and v-as-B are
	// different nodes, so both tuples survive.
	if rep.Len() != 2 {
		t.Fatalf("kept %v, want both tuples", rep.IDs())
	}
}

// TestMarriageInsideCommonLHS: the passport set of Example 4.7 applies
// common lhs (id) and then a marriage inside each block.
func TestMarriageInsideCommonLHS(t *testing.T) {
	sc := schema.MustNew("P", "id", "country", "passport")
	ds := fd.MustParseSet(sc, "id country -> passport", "id passport -> country")
	tab := table.New(sc)
	// Within id=1: country FR pairs with passports p1/p2 — conflicting.
	tab.MustInsert(1, table.Tuple{"1", "FR", "p1"}, 2)
	tab.MustInsert(2, table.Tuple{"1", "FR", "p2"}, 1)
	tab.MustInsert(3, table.Tuple{"1", "DE", "p2"}, 1)
	tab.MustInsert(4, table.Tuple{"2", "FR", "p1"}, 1) // other id: no conflict
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(Cost(tab, rep), Cost(tab, exact)) {
		t.Fatalf("marriage-in-block cost %v != exact %v", Cost(tab, rep), Cost(tab, exact))
	}
	if !rep.Has(4) {
		t.Fatal("the isolated id=2 tuple must survive")
	}
}

// TestConsensusDeterministicTieBreak: equal-weight blocks resolve to
// the first-seen block, keeping the algorithm deterministic.
func TestConsensusDeterministicTieBreak(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "-> A")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"x", "1"}, 1)
	tab.MustInsert(2, table.Tuple{"y", "2"}, 1)
	for i := 0; i < 5; i++ {
		rep, err := OptSRepair(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Has(1) || rep.Len() != 1 {
			t.Fatalf("tie break changed: kept %v", rep.IDs())
		}
	}
}

// TestEquivalentSetsGiveEqualCosts: OptSRepair depends only on the
// closure of Δ, not its presentation.
func TestEquivalentSetsGiveEqualCosts(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	a := fd.MustParseSet(sc, "A -> B C")
	b := fd.MustParseSet(sc, "A -> B", "A -> C", "A B -> C")
	if !a.EquivalentTo(b) {
		t.Fatal("test sets must be equivalent")
	}
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 10; iter++ {
		tab := workload.RandomWeightedTable(sc, 8, 2, 3, rng)
		ra, err := OptSRepair(a, tab)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := OptSRepair(b, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !table.WeightEq(Cost(tab, ra), Cost(tab, rb)) {
			t.Fatalf("equivalent sets gave costs %v and %v", Cost(tab, ra), Cost(tab, rb))
		}
	}
}

// TestWeightedDuplicatesThroughMarriage: duplicates with different
// weights aggregate correctly inside marriage blocks.
func TestWeightedDuplicatesThroughMarriage(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C")
	tab := table.New(sc)
	// Duplicates of (a1,b1,c): total weight 3 beats the (a1,b2,c)+(a2,b1,c)
	// pairing of weight 1+1.
	tab.MustInsert(1, table.Tuple{"a1", "b1", "c"}, 2)
	tab.MustInsert(2, table.Tuple{"a1", "b1", "c"}, 1)
	tab.MustInsert(3, table.Tuple{"a1", "b2", "c"}, 1)
	tab.MustInsert(4, table.Tuple{"a2", "b1", "c"}, 1)
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Has(1) || !rep.Has(2) || rep.Has(3) || rep.Has(4) {
		t.Fatalf("kept %v, want the duplicate pair", rep.IDs())
	}
	exact, err := Exact(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(Cost(tab, rep), Cost(tab, exact)) {
		t.Fatal("weighted duplicates broke optimality")
	}
}

// TestOptSRepairConsistentInputUntouched: a consistent table is its own
// optimal repair under every tractable set.
func TestOptSRepairConsistentInputUntouched(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "A B -> C")
	tab := workload.DirtyTable(sc, nil, 30, 5, 0, rand.New(rand.NewSource(133)))
	if !tab.Satisfies(ds) {
		t.Fatal("fixture should be consistent")
	}
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != tab.Len() {
		t.Fatalf("consistent table lost %d tuples", tab.Len()-rep.Len())
	}
}

// TestTraceStopsAtFirstFailure: the trace of a set that simplifies
// partway records the successful prefix.
func TestTraceStopsAtFirstFailure(t *testing.T) {
	z := schema.MustNew("Z", "state", "city", "zip", "country")
	ds := fd.MustParseSet(z, "state city -> zip", "state zip -> country")
	steps, ok := Trace(ds)
	if ok {
		t.Fatal("∆2 (zip) must fail")
	}
	if len(steps) != 1 || steps[0].Kind != fd.KindCommonLHS {
		t.Fatalf("trace = %v, want a single common-lhs step", steps)
	}
}
