package srepair

import (
	"sync"
	"sync/atomic"
)

// The opt-in worker pool parallelizes the independent blocks of
// Subroutines 1–3. Blocks within one recursion node never share state:
// they read disjoint row sets of the (immutable during a solve) backing
// table, whose dictionary encoding is built under a mutex, so the only
// coordination needed is bounding the number of goroutines.
//
// The pool uses try-acquire semantics: a block runs in a goroutine when
// a slot is free and inline otherwise, so nested recursion can never
// deadlock on pool slots, and a saturated pool degrades to the serial
// algorithm. Results are collected per block index, which keeps the
// combined repair deterministic and identical to the serial result.

// extraWorkers holds the pool, sized workers-1 (the calling goroutine
// is the first worker). nil means serial (the default).
var extraWorkers atomic.Pointer[chan struct{}]

// SetWorkers configures the block-solver parallelism: n ≤ 1 restores
// the serial default. Do not call concurrently with a running solve.
func SetWorkers(n int) {
	if n <= 1 {
		extraWorkers.Store(nil)
		return
	}
	ch := make(chan struct{}, n-1)
	extraWorkers.Store(&ch)
}

// Workers returns the configured parallelism (1 = serial).
func Workers() int {
	if p := extraWorkers.Load(); p != nil {
		return cap(*p) + 1
	}
	return 1
}

// parallelMinBlockRows gates goroutine handoff: blocks below this size
// finish faster than the scheduling round-trip costs, so they always
// run inline.
const parallelMinBlockRows = 96

// forEachBlock runs fn(0..n-1), handing blocks of at least
// parallelMinBlockRows rows (per the size callback) to pool slots when
// available. The returned error is the first (by block index) failure;
// all blocks run to completion either way.
func forEachBlock(n int, size func(i int) int, fn func(i int) error) error {
	p := extraWorkers.Load()
	if p == nil || n < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	slots := *p
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if size(i) < parallelMinBlockRows {
			errs[i] = fn(i)
			continue
		}
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-slots }()
				errs[i] = fn(i)
			}(i)
		default:
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
