package srepair

import "repro/internal/solve"

// The block worker pool lives in internal/solve since the Solver
// refactor: every solve carries its own solve.Ctx owning the worker
// budget, scratch arenas, cancellation and stats, and sibling blocks
// of Subroutines 1–3 are fanned out through Ctx.ForEachBlock. The
// functions below remain as deprecated shims over the process-default
// context for callers that predate per-solve configuration.

// SetWorkers configures the worker budget of the process-default solve
// context used by the ctx-less entry points (OptSRepair, Exact,
// Approx2); n ≤ 1 restores the serial default. Do not call
// concurrently with a running default-context solve.
//
// Deprecated: construct a per-solve context instead (fdrepair.NewSolver
// with WithParallelism, or solve.New for internal callers). This shim
// only reconfigures the default context; no solve hot path reads
// package-level pool state.
func SetWorkers(n int) { solve.SetDefaultWorkers(n) }

// Workers returns the default context's worker budget (1 = serial).
//
// Deprecated: ask the Solver (or solve.Ctx) you configured instead.
func Workers() int { return solve.Default().Workers() }
