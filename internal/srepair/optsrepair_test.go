package srepair

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestOptSRepairRunningExample: on Figure 1's table the optimal
// S-repair has cost 2 (S1 and S2 are both optimal, Example 2.3).
func TestOptSRepairRunningExample(t *testing.T) {
	_, ds, tab := workload.Office()
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConsistentSubset(ds, tab, rep) {
		t.Fatal("result is not a consistent subset")
	}
	if got := Cost(tab, rep); !table.WeightEq(got, 2) {
		t.Fatalf("optimal cost = %v, want 2", got)
	}
}

func TestOptSRepairTrivialSet(t *testing.T) {
	_, _, tab := workload.Office()
	empty := fd.MustParseSet(tab.Schema())
	rep, err := OptSRepair(empty, tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != tab.Len() {
		t.Fatal("trivial Δ must keep the whole table")
	}
}

func TestOptSRepairSchemaMismatch(t *testing.T) {
	_, ds, _ := workload.Office()
	other := table.New(schema.MustNew("Other", "X"))
	if _, err := OptSRepair(ds, other); err == nil {
		t.Fatal("schema mismatch must fail")
	}
}

// TestOptSRepairConsensus checks Subroutine 2 directly: under ∅ → A the
// optimal S-repair keeps the heaviest A-group.
func TestOptSRepairConsensus(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "-> A")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"x", "1"}, 1)
	tab.MustInsert(2, table.Tuple{"x", "2"}, 1)
	tab.MustInsert(3, table.Tuple{"y", "3"}, 5)
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 1 || !rep.Has(3) {
		t.Fatalf("should keep only the heavy y-group, got ids %v", rep.IDs())
	}
}

// TestOptSRepairMarriage checks Subroutine 3 on ∆A↔B→C (Example 3.1):
// the bipartite matching must pick compatible A↔B pairings maximizing
// kept weight.
func TestOptSRepairMarriage(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C")
	tab := table.New(sc)
	// a1 pairs with b1 (weight 3 total), but a1-b2 (weight 2) and
	// a2-b1 (weight 2) together weigh 4; the matching must choose the
	// pairing maximizing total weight = 4.
	tab.MustInsert(1, table.Tuple{"a1", "b1", "c"}, 3)
	tab.MustInsert(2, table.Tuple{"a1", "b2", "c"}, 2)
	tab.MustInsert(3, table.Tuple{"a2", "b1", "c"}, 2)
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConsistentSubset(ds, tab, rep) {
		t.Fatal("marriage repair inconsistent")
	}
	if got := rep.TotalWeight(); !table.WeightEq(got, 4) {
		t.Fatalf("kept weight = %v, want 4 (ids %v)", got, rep.IDs())
	}
}

// TestOptSRepairMarriageRhsMatters: the married pair determines a
// residual problem (Δ − X1X2) that must itself be solved optimally.
func TestOptSRepairMarriageRhsMatters(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a1", "b1", "c1"}, 1)
	tab.MustInsert(2, table.Tuple{"a1", "b1", "c2"}, 1)
	tab.MustInsert(3, table.Tuple{"a1", "b1", "c2"}, 1)
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the (a1,b1) block, ∅ → C forces one C value; keep the two
	// c2 tuples.
	if rep.Len() != 2 || rep.Has(1) {
		t.Fatalf("want tuples 2,3 kept, got %v", rep.IDs())
	}
}

func TestOptSRepairFailsOnHardSets(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	for _, specs := range [][]string{
		{"A -> B", "B -> C"},
		{"A -> C", "B -> C"},
		{"A B -> C", "C -> B"},
		{"A B -> C", "A C -> B", "B C -> A"},
	} {
		ds := fd.MustParseSet(sc, specs...)
		tab := workload.RandomTable(sc, 6, 2, rand.New(rand.NewSource(1)))
		if _, err := OptSRepair(ds, tab); !errors.Is(err, ErrNoSimplification) {
			t.Errorf("%v: err = %v, want ErrNoSimplification", specs, err)
		}
		if OSRSucceeds(ds) {
			t.Errorf("OSRSucceeds(%v) = true, want false", specs)
		}
	}
}

// TestOSRSucceedsExamples reproduces the classifications of Example 3.5
// and Example 4.7.
func TestOSRSucceedsExamples(t *testing.T) {
	office := schema.MustNew("Office", "facility", "room", "floor", "city")
	person := schema.MustNew("Person", "ssn", "first", "last", "address", "office", "phone", "fax")
	passport := schema.MustNew("P", "id", "country", "passport")
	zipsc := schema.MustNew("Z", "state", "city", "zip", "country")
	abc := schema.MustNew("R", "A", "B", "C")

	good := []*fd.Set{
		fd.MustParseSet(office, "facility -> city", "facility room -> floor"),
		fd.MustParseSet(abc, "A -> B", "B -> A", "B -> C"), // ∆A↔B→C
		fd.MustParseSet(person, "ssn -> first", "ssn -> last", "first last -> ssn",
			"ssn -> address", "ssn office -> phone", "ssn office -> fax"),
		fd.MustParseSet(passport, "id country -> passport", "id passport -> country"),
	}
	for _, ds := range good {
		if !OSRSucceeds(ds) {
			t.Errorf("OSRSucceeds(%v) = false, want true", ds)
		}
	}
	bad := []*fd.Set{
		fd.MustParseSet(zipsc, "state city -> zip", "state zip -> country"),
		fd.MustParseSet(abc, "A -> B", "B -> C"),
	}
	for _, ds := range bad {
		if OSRSucceeds(ds) {
			t.Errorf("OSRSucceeds(%v) = true, want false", ds)
		}
	}
}

// TestTraceRunningExample checks the exact ⇛-chain of Example 3.5.
func TestTraceRunningExample(t *testing.T) {
	_, ds, _ := workload.Office()
	steps, ok := Trace(ds)
	if !ok {
		t.Fatal("running example must succeed")
	}
	want := []fd.SimplificationKind{fd.KindCommonLHS, fd.KindConsensus, fd.KindCommonLHS, fd.KindConsensus}
	if len(steps) != len(want) {
		t.Fatalf("trace has %d steps, want %d", len(steps), len(want))
	}
	for i, st := range steps {
		if st.Kind != want[i] {
			t.Errorf("step %d = %v, want %v", i, st.Kind, want[i])
		}
	}
}

// TestOptSRepairMatchesExact cross-validates Algorithm 1 against the
// exponential vertex-cover baseline on random tables, for a catalogue
// of tractable FD sets (soundness, Theorem 3.2).
func TestOptSRepairMatchesExact(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C", "D")
	tractable := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B", "A -> C"),
		fd.MustParseSet(sc, "A -> B", "A B -> C"),         // chain
		fd.MustParseSet(sc, "-> A", "B -> C"),             // consensus + single
		fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C"), // marriage
		fd.MustParseSet(sc, "A -> B C D"),                 // wide rhs
		fd.MustParseSet(sc, "A B -> C", "A B -> D"),       // common lhs pair
		fd.MustParseSet(sc, "A -> B", "B -> A", "A -> C", "B -> D"),
	}
	rng := rand.New(rand.NewSource(77))
	for _, ds := range tractable {
		if !OSRSucceeds(ds) {
			t.Fatalf("catalogue set %v should succeed", ds)
		}
		for iter := 0; iter < 12; iter++ {
			tab := workload.RandomWeightedTable(sc, 4+rng.Intn(8), 2, 3, rng)
			rep, err := OptSRepair(ds, tab)
			if err != nil {
				t.Fatalf("%v: %v", ds, err)
			}
			if !IsConsistentSubset(ds, tab, rep) {
				t.Fatalf("%v: inconsistent result", ds)
			}
			exact, err := Exact(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !table.WeightEq(Cost(tab, rep), Cost(tab, exact)) {
				t.Fatalf("%v: OptSRepair cost %v != exact %v\n%s",
					ds, Cost(tab, rep), Cost(tab, exact), tab)
			}
		}
	}
}

// TestApprox2Guarantee: the 2-approximation is consistent and within
// factor 2 of the exact optimum (Proposition 3.3), on both tractable
// and hard FD sets.
func TestApprox2Guarantee(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B"),
		fd.MustParseSet(sc, "A -> B", "B -> C"),                 // hard
		fd.MustParseSet(sc, "A -> C", "B -> C"),                 // hard
		fd.MustParseSet(sc, "A B -> C", "C -> B"),               // hard
		fd.MustParseSet(sc, "A B -> C", "A C -> B", "B C -> A"), // hard
	}
	rng := rand.New(rand.NewSource(99))
	for _, ds := range sets {
		for iter := 0; iter < 10; iter++ {
			tab := workload.RandomWeightedTable(sc, 4+rng.Intn(8), 2, 4, rng)
			ap, err := Approx2(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !IsConsistentSubset(ds, tab, ap) {
				t.Fatalf("%v: approx result inconsistent", ds)
			}
			exact, err := Exact(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			ca, ce := Cost(tab, ap), Cost(tab, exact)
			if ca > 2*ce+1e-9 {
				t.Fatalf("%v: approx cost %v > 2× optimal %v", ds, ca, ce)
			}
		}
	}
}

// TestExactOnHardSet sanity-checks the exponential baseline on a tiny
// crafted instance of ∆A→B→C.
func TestExactOnHardSet(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "b", "c1"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "b", "c2"}, 1)
	tab.MustInsert(3, table.Tuple{"a", "b2", "c3"}, 1)
	rep, err := Exact(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	// Tuples 1,2 conflict (B → C); 3 conflicts with both (A → B).
	// Optimal: keep one of {1,2}; cost 2.
	if got := Cost(tab, rep); !table.WeightEq(got, 2) {
		t.Fatalf("exact cost = %v, want 2", got)
	}
}

// TestMakeMaximal: extending a consistent subset never increases
// dist_sub and yields a subset repair (no deleted tuple can return).
func TestMakeMaximal(t *testing.T) {
	_, ds, tab := workload.Office()
	empty := tab.MustSubsetByIDs(nil)
	rep, err := MakeMaximal(ds, tab, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConsistentSubset(ds, tab, rep) {
		t.Fatal("MakeMaximal result inconsistent")
	}
	// Local minimality: adding back any deleted tuple breaks consistency.
	for _, id := range tab.IDs() {
		if rep.Has(id) {
			continue
		}
		r, _ := tab.Row(id)
		trial := rep.Clone()
		trial.MustInsert(r.ID, r.Tuple, r.Weight)
		if trial.Satisfies(ds) {
			t.Fatalf("tuple %d can be restored; not maximal", id)
		}
	}
	if _, err := MakeMaximal(ds, tab, tab); err == nil {
		t.Fatal("MakeMaximal must reject an inconsistent 'subset'")
	}
}

// TestOptSRepairWeightedVsUnweighted: heavy tuples survive when cheaper
// deletions exist (weight sensitivity of the common-lhs case).
func TestOptSRepairWeightSensitivity(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "x"}, 10)
	tab.MustInsert(2, table.Tuple{"a", "y"}, 1)
	tab.MustInsert(3, table.Tuple{"a", "y"}, 1)
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	// Keeping the weight-10 tuple costs 2; keeping the two y-tuples
	// costs 10. The repair must keep tuple 1.
	if !rep.Has(1) || rep.Len() != 1 {
		t.Fatalf("want only tuple 1 kept, got %v", rep.IDs())
	}
}

// TestOptSRepairDuplicates: duplicate tuples are kept together (they
// never conflict with each other).
func TestOptSRepairDuplicates(t *testing.T) {
	sc := schema.MustNew("R", "A", "B")
	ds := fd.MustParseSet(sc, "A -> B")
	tab := table.New(sc)
	tab.MustInsert(1, table.Tuple{"a", "x"}, 1)
	tab.MustInsert(2, table.Tuple{"a", "x"}, 1)
	tab.MustInsert(3, table.Tuple{"a", "y"}, 1)
	rep, err := OptSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 2 || !rep.Has(1) || !rep.Has(2) {
		t.Fatalf("duplicates should both survive: %v", rep.IDs())
	}
}

func TestOptSRepairEmptyTable(t *testing.T) {
	sc := schema.MustNew("R", "A", "B", "C")
	for _, specs := range [][]string{{"A -> B"}, {"-> A"}, {"A -> B", "B -> A", "B -> C"}} {
		ds := fd.MustParseSet(sc, specs...)
		rep, err := OptSRepair(ds, table.New(sc))
		if err != nil {
			t.Fatalf("%v: %v", specs, err)
		}
		if rep.Len() != 0 {
			t.Fatalf("%v: repair of empty table must be empty", specs)
		}
	}
}
