package srepair

// Block-level entry points into OptSRepair for resident sessions
// (fdrepair.Session). The simplification chain is data-independent, so
// the first step's block partition is a pure function of the table: the
// projection onto TopStepAttrs splits the rows into blocks that are
// solved independently and then combined by that step's rule. A session
// exploits this to localize mutations — after an append or cell update
// only blocks containing touched rows can change, so it re-runs
// SolveBlock for exactly those and replays the root combine (Combine)
// over a mix of cached and fresh block repairs. Everything here is
// byte-identical to the corresponding pieces of OptSRepairCtx:
// SolveBlock is the depth-1 recursion the root fan-out performs per
// group, and Combine is the root subroutine's combine with the block
// solves factored out.

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/table"
)

// MatchMemo caches marriage-matching results per connected component
// across solves; see graph.MatchMemo. A resident session owns one so
// that the root combine's matching re-runs only the components whose
// block weights actually changed.
type MatchMemo = graph.MatchMemo

// NewMatchMemo returns an empty component cache for Combine.
func NewMatchMemo() *MatchMemo { return graph.NewMatchMemo() }

// BlockSolver holds the simplification chain of one FD set, computed
// once, so a session solving thousands of small blocks per repair does
// not re-derive the (data-independent) chain per block.
type BlockSolver struct {
	steps []fd.Simplification

	// unionBuf backs Combine's result row set, recycled across calls —
	// a session combines once per Repair, and an O(rows) allocation per
	// round was measurable GC pressure. Combine's result is therefore
	// only valid until the next Combine on the same BlockSolver.
	unionBuf []int32
}

// NewBlockSolver computes the chain. ok is false when the FD set does
// not simplify to a trivial set — the APX-hard side of the dichotomy —
// in which case block-level solving is unavailable.
func NewBlockSolver(ds *fd.Set) (*BlockSolver, bool) {
	steps, success := Trace(ds)
	if !success {
		return nil, false
	}
	return &BlockSolver{steps: steps}, true
}

// TopStepAttrs returns the attribute set whose projection partitions
// the table into the independent blocks of the first simplification
// step. ok is false when the chain is empty (a trivial set repairs to
// the table itself — there is no block structure).
func (bs *BlockSolver) TopStepAttrs() (schema.AttrSet, bool) {
	if len(bs.steps) == 0 {
		return 0, false
	}
	st := bs.steps[0]
	if st.Kind == fd.KindMarriage {
		return st.X1.Union(st.X2), true
	}
	return st.Removed, true
}

// TopStepAttrs is the convenience form over a fresh chain; ok is false
// when the chain is empty or the set does not simplify.
func TopStepAttrs(ds *fd.Set) (schema.AttrSet, bool) {
	bs, success := NewBlockSolver(ds)
	if !success {
		return 0, false
	}
	return bs.TopStepAttrs()
}

// SolveBlock computes the optimal S-repair row set of one top-level
// block: rows must all share their projection onto TopStepAttrs (one
// bucket of table.RowGroups), ascending. It runs the same depth-1
// recursion the root fan-out of OptSRepairCtx performs per group, on
// the same context (arena scratch, cancellation, stats), so the
// returned row indices are byte-identical to what a cold solve computes
// for that block. The result is freshly allocated except when the
// block bottoms out immediately, in which case it aliases rows.
func (bs *BlockSolver) SolveBlock(c *solve.Ctx, t *table.Table, rows []int32) ([]int32, error) {
	sv := solver{steps: bs.steps, c: c}
	return sv.solve(table.ViewOfRows(t, rows), 1)
}

// BlockWeight returns the total weight of a block repair, summing in
// row order — the same float additions, in the same order, as the
// root's TotalWeight over a subview, so cached weights splice into
// Combine bit-identically.
func BlockWeight(t *table.Table, rep []int32) float64 {
	rows := t.Rows()
	var sum float64
	for _, ri := range rep {
		sum += rows[ri].Weight
	}
	return sum
}

// Combine replays the root combine of OptSRepairCtx over precomputed
// block repairs: groups is the canonical block partition
// (table.RowGroups over TopStepAttrs), reps[i] the optimal repair of
// groups[i] (SolveBlock output, ascending), weights[i] its BlockWeight.
// The returned row set is byte-identical to a from-scratch solve's —
// union for a common-lhs step, heaviest block for consensus, the
// maximum-weight marriage matching over one edge per block for a
// marriage step. memo, when non-nil, caches matching components
// across calls (nil is always correct, just slower). The returned
// slice is owned by the BlockSolver and valid only until its next
// Combine call.
func (bs *BlockSolver) Combine(c *solve.Ctx, t *table.Table, groups, reps [][]int32, weights []float64, memo *MatchMemo) ([]int32, error) {
	if len(bs.steps) == 0 {
		return nil, fmt.Errorf("srepair: trivial FD set has no block structure")
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	st := bs.steps[0]
	switch st.Kind {
	case fd.KindCommonLHS:
		return bs.unionAscending(c, t.Len(), reps, nil), nil

	case fd.KindConsensus:
		var best []int32
		bestW := math.Inf(-1)
		for gi, rep := range reps {
			if w := weights[gi]; w > bestW {
				best, bestW = rep, w
			}
		}
		best = slices.Clone(best)
		if !slices.IsSorted(best) {
			sortRows(best)
		}
		return best, nil

	case fd.KindMarriage:
		// Node numbering by first appearance over the whole table,
		// exactly as the root view's marriageRep builds it (its Rows()
		// is 0..n-1). The earliest row carrying any X1 (or X2) code is
		// necessarily the first row of its block — an earlier row of the
		// same block would carry the same code — and groups are ordered
		// by first row, so scanning only the block-first rows visits the
		// codes in the same first-appearance order at O(blocks) instead
		// of O(rows).
		codes1, n1 := t.ProjectionCodes(st.X1)
		codes2, n2 := t.ProjectionCodes(st.X2)
		v1Index := newCodeIndex(c, n1, t.Len())
		defer v1Index.release(c)
		v2Index := newCodeIndex(c, n2, t.Len())
		defer v2Index.release(c)
		for _, grp := range groups {
			v1Index.add(codes1[grp[0]])
			v2Index.add(codes2[grp[0]])
		}
		edges := getEdges(c, len(groups), c.ProjectionCard(st.X1.Union(st.X2), c.Hints().Rows))
		defer putEdges(c, edges)
		for gi, grp := range groups {
			first := grp[0]
			edges[gi] = graph.Edge{
				I: v1Index.of(codes1[first]),
				J: v2Index.of(codes2[first]),
				W: weights[gi],
			}
		}
		sm, err := graph.NewSparseMatcher(v1Index.len(), v2Index.len(), edges)
		if err != nil {
			return nil, err
		}
		sm.Ctx = c
		sm.Memo = memo
		res, err := sm.Solve()
		if err != nil {
			return nil, err
		}
		return bs.unionAscending(c, t.Len(), reps, res.Picked), nil
	}
	return nil, fmt.Errorf("srepair: unknown simplification %v", st.Kind)
}

// unionKey pools unionAscending's membership bitmap on the solve
// context.
type unionKey struct{}

// unionAscending merges disjoint block repairs into one ascending row
// set: the reps at the picked indices (all of them when picked is nil).
// The blocks partition the table, so a membership bitmap over its rows
// plus one linear emit replaces the concat-and-sort a cold combine
// performs — same unique ascending result, O(rows) instead of
// O(rows·log rows).
func (bs *BlockSolver) unionAscending(c *solve.Ctx, n int, reps [][]int32, picked []int) []int32 {
	scr, _ := c.GetScratch(unionKey{}).(*[]bool)
	if scr == nil {
		scr = new([]bool)
	}
	in := solve.Grow(*scr, n)
	*scr = in
	defer c.PutScratch(unionKey{}, scr)
	clear(in)
	total := 0
	mark := func(rep []int32) {
		total += len(rep)
		for _, ri := range rep {
			in[ri] = true
		}
	}
	if picked == nil {
		for _, rep := range reps {
			mark(rep)
		}
	} else {
		for _, gi := range picked {
			mark(reps[gi])
		}
	}
	keep := slices.Grow(bs.unionBuf[:0], total)
	for ri := range n {
		if in[ri] {
			keep = append(keep, int32(ri))
		}
	}
	bs.unionBuf = keep
	return keep
}
