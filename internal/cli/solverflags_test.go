package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeOfficeCSV writes the Figure-1 table for the solver-flag tests.
func writeOfficeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "office.csv")
	csv := "id,facility,room,floor,city,w\n" +
		"1,HQ,322,3,Paris,2\n" +
		"2,HQ,322,30,Madrid,1\n" +
		"3,HQ,122,1,Madrid,1\n" +
		"4,Lab1,B35,3,London,2\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSRepairSolverFlags: -workers and -stats are wired through to a
// Solver — the repair result is unchanged and the stats line lands on
// stderr.
func TestSRepairSolverFlags(t *testing.T) {
	in := writeOfficeCSV(t)
	var stdout, stderr bytes.Buffer
	code := Run([]string{
		"srepair", "-in", in,
		"-fd", "facility -> city", "-fd", "facility room -> floor",
		"-workers", "4", "-stats",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "deleted weight (dist_sub): 2") {
		t.Fatalf("unexpected repair summary: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "solve stats: nodes=") {
		t.Fatalf("-stats did not print the counters: %s", stderr.String())
	}
}

// TestSRepairTimeoutExpires: an unmeetable -timeout surfaces the
// context error and a non-zero exit instead of a repair.
func TestSRepairTimeoutExpires(t *testing.T) {
	in := writeOfficeCSV(t)
	var stdout, stderr bytes.Buffer
	code := Run([]string{
		"srepair", "-in", in,
		"-fd", "facility -> city", "-fd", "facility room -> floor",
		"-timeout", "1ns",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("want non-zero exit, stdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "context deadline exceeded") {
		t.Fatalf("stderr = %s, want context deadline exceeded", stderr.String())
	}
}

// TestURepairAndMPDSolverFlags: the other two repair commands accept
// the same knobs.
func TestURepairAndMPDSolverFlags(t *testing.T) {
	in := writeOfficeCSV(t)
	var stdout, stderr bytes.Buffer
	if code := Run([]string{
		"urepair", "-in", in, "-fd", "facility -> city",
		"-workers", "2", "-stats",
	}, &stdout, &stderr); code != 0 {
		t.Fatalf("urepair exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "solve stats:") {
		t.Fatalf("urepair -stats missing: %s", stderr.String())
	}

	// MPD needs probability weights.
	mpdPath := filepath.Join(t.TempDir(), "prob.csv")
	csv := "id,facility,room,floor,city,w\n" +
		"1,HQ,322,3,Paris,0.9\n" +
		"2,HQ,322,30,Madrid,0.6\n" +
		"3,HQ,122,1,Madrid,0.6\n" +
		"4,Lab1,B35,3,London,0.9\n"
	if err := os.WriteFile(mpdPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := Run([]string{
		"mpd", "-in", mpdPath, "-fd", "facility -> city",
		"-workers", "2", "-stats",
	}, &stdout, &stderr); code != 0 {
		t.Fatalf("mpd exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "solve stats:") {
		t.Fatalf("mpd -stats missing: %s", stderr.String())
	}
}
