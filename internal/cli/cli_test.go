package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run executes the CLI and returns (stdout, stderr, exit code).
func run(args ...string) (string, string, int) {
	var out, errOut bytes.Buffer
	code := Run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

// writeCSV drops a CSV fixture into a temp dir.
func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const officeCSV = `id,facility,room,floor,city,w
1,HQ,322,3,Paris,2
2,HQ,322,30,Madrid,1
3,HQ,122,1,Madrid,1
4,Lab1,B35,3,London,2
`

func TestUsageAndUnknown(t *testing.T) {
	_, errOut, code := run()
	if code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("no-args: code %d, stderr %q", code, errOut)
	}
	_, errOut, code = run("bogus")
	if code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("unknown: code %d", code)
	}
	out, _, code := run("help")
	if code != 0 || !strings.Contains(out, "usage:") {
		t.Fatalf("help: code %d", code)
	}
}

func TestDemo(t *testing.T) {
	out, _, code := run("demo")
	if code != 0 {
		t.Fatalf("demo failed: %d", code)
	}
	for _, want := range []string{"optimal S-repair (dist_sub = 2)", "optimal U-repair (dist_upd = 2", "common lhs facility"} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q", want)
		}
	}
}

// TestBatch: the batch subcommand repairs several CSVs in one run,
// reports a per-file summary, and keeps per-file isolation (a file
// whose FD set fails auto mode errors alone; the rest still repair).
func TestBatch(t *testing.T) {
	a := writeCSV(t, "a.csv", officeCSV)
	b := writeCSV(t, "b.csv", officeCSV)
	out, errOut, code := run("batch",
		"-in", a, "-in", b,
		"-fd", "facility -> city", "-workers", "2", "-stats")
	if code != 0 {
		t.Fatalf("batch failed: %d, stderr %q", code, errOut)
	}
	for _, path := range []string{a, b} {
		if !strings.Contains(out, "== "+path+" ==") {
			t.Errorf("stdout missing section for %s:\n%s", path, out)
		}
		if !strings.Contains(errOut, path+": dist_sub=") {
			t.Errorf("stderr missing summary for %s:\n%s", path, errOut)
		}
		if !strings.Contains(errOut, path+": solve stats: nodes=") {
			t.Errorf("stderr missing per-request stats for %s:\n%s", path, errOut)
		}
	}

	// -outdir writes one repaired CSV per input file.
	dir := t.TempDir()
	_, errOut, code = run("batch", "-in", a, "-in", b,
		"-fd", "facility -> city", "-outdir", dir)
	if code != 0 {
		t.Fatalf("batch -outdir failed: %d, stderr %q", code, errOut)
	}
	for _, name := range []string{"a.csv", "b.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s in -outdir: %v", name, err)
		}
	}

	// auto mode falls back to the 2-approximation on APX-hard FD sets,
	// per file, exactly like `srepair -mode auto`.
	abc := writeCSV(t, "abc.csv", "id,A,B,C\n1,x,y,z\n2,x,y,q\n")
	out, errOut, code = run("batch", "-in", a, "-in", abc,
		"-fd", "A -> B", "-fd", "B -> C")
	if code == 0 {
		// The office file lacks attributes A,B,C so this mix can't run;
		// use two hard-set files instead.
		t.Fatalf("unexpected success mixing schemas: %q", errOut)
	}
	out, errOut, code = run("batch", "-in", abc, "-fd", "A -> B", "-fd", "B -> C")
	if code != 0 {
		t.Fatalf("batch auto on hard set failed: %d, stderr %q", code, errOut)
	}
	if !strings.Contains(errOut, "APX-hard") || !strings.Contains(errOut, abc+": dist_sub=") {
		t.Errorf("auto fallback not reported: %q", errOut)
	}
	if !strings.Contains(out, "== "+abc+" ==") {
		t.Errorf("auto fallback produced no repair output: %q", out)
	}

	// urepair mode rides the same batch entry point.
	_, errOut, code = run("batch", "-in", a, "-fd", "facility -> city", "-mode", "urepair")
	if code != 0 || !strings.Contains(errOut, "dist_upd=") {
		t.Fatalf("batch urepair: code %d, stderr %q", code, errOut)
	}

	if _, _, code := run("batch", "-fd", "A -> B"); code != 1 {
		t.Error("batch without -in must fail")
	}
	// Two inputs sharing a base name would clobber each other in
	// -outdir; refuse up front instead of silently losing a repair.
	other := writeCSV(t, "a.csv", officeCSV) // different temp dir, same base
	if _, errOut, code := run("batch", "-in", a, "-in", other,
		"-fd", "facility -> city", "-outdir", t.TempDir()); code != 1 || !strings.Contains(errOut, "rename an input") {
		t.Errorf("basename collision not rejected: code %d, stderr %q", code, errOut)
	}
	if _, _, code := run("batch", "-in", a, "-fd", "facility -> city", "-mode", "bogus"); code != 1 {
		t.Error("unknown -mode must fail")
	}
}

func TestClassify(t *testing.T) {
	out, _, code := run("classify", "-attrs", "A,B,C", "-fd", "A -> B", "-fd", "B -> C")
	if code != 0 {
		t.Fatalf("classify failed: %d", code)
	}
	if !strings.Contains(out, "APX-complete") || !strings.Contains(out, "class 3") {
		t.Errorf("classify output: %q", out)
	}
	out, _, code = run("classify", "-attrs", "A,B", "-fd", "A -> B")
	if code != 0 || !strings.Contains(out, "polynomial time") {
		t.Errorf("tractable classify: code %d, out %q", code, out)
	}
}

func TestClassifyErrors(t *testing.T) {
	if _, _, code := run("classify", "-fd", "A -> B"); code != 1 {
		t.Error("missing -attrs must fail")
	}
	if _, _, code := run("classify", "-attrs", "A,B"); code != 1 {
		t.Error("missing -fd must fail")
	}
	if _, _, code := run("classify", "-attrs", "A,B", "-fd", "A -> Z"); code != 1 {
		t.Error("unknown attribute must fail")
	}
}

func TestSRepairAuto(t *testing.T) {
	in := writeCSV(t, "office.csv", officeCSV)
	out, errOut, code := run("srepair", "-in", in,
		"-fd", "facility -> city", "-fd", "facility room -> floor")
	if code != 0 {
		t.Fatalf("srepair failed: %d (%s)", code, errOut)
	}
	if !strings.Contains(errOut, "dist_sub): 2") {
		t.Errorf("stderr = %q", errOut)
	}
	if !strings.Contains(out, "Lab1") {
		t.Errorf("stdout = %q", out)
	}
}

func TestSRepairHardFallsBack(t *testing.T) {
	in := writeCSV(t, "abc.csv", "id,A,B,C,w\n1,a,b,c1,1\n2,a,b,c2,1\n")
	_, errOut, code := run("srepair", "-in", in, "-fd", "A -> B", "-fd", "B -> C")
	if code != 0 {
		t.Fatalf("srepair failed: %d (%s)", code, errOut)
	}
	if !strings.Contains(errOut, "2-approximation") {
		t.Errorf("expected fallback note, got %q", errOut)
	}
	// Exact and approx modes work explicitly.
	if _, _, code := run("srepair", "-in", in, "-fd", "A -> B", "-mode", "exact"); code != 0 {
		t.Error("exact mode failed")
	}
	if _, _, code := run("srepair", "-in", in, "-fd", "A -> B", "-mode", "approx"); code != 0 {
		t.Error("approx mode failed")
	}
	if _, _, code := run("srepair", "-in", in, "-fd", "A -> B", "-mode", "zigzag"); code != 1 {
		t.Error("bad mode must fail")
	}
}

func TestSRepairOutFile(t *testing.T) {
	in := writeCSV(t, "office.csv", officeCSV)
	outPath := filepath.Join(t.TempDir(), "repaired.csv")
	_, _, code := run("srepair", "-in", in, "-out", outPath,
		"-fd", "facility -> city", "-fd", "facility room -> floor")
	if code != 0 {
		t.Fatal("srepair -out failed")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "id,facility,room,floor,city,w") {
		t.Errorf("output CSV malformed: %q", string(data))
	}
}

func TestURepair(t *testing.T) {
	in := writeCSV(t, "office.csv", officeCSV)
	_, errOut, code := run("urepair", "-in", in,
		"-fd", "facility -> city", "-fd", "facility room -> floor")
	if code != 0 {
		t.Fatalf("urepair failed: %d (%s)", code, errOut)
	}
	if !strings.Contains(errOut, "dist_upd): 2") || !strings.Contains(errOut, "optimal") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestMPD(t *testing.T) {
	in := writeCSV(t, "prob.csv", "id,A,B,w\n1,a,x,0.9\n2,a,y,0.7\n")
	out, errOut, code := run("mpd", "-in", in, "-fd", "A -> B")
	if code != 0 {
		t.Fatalf("mpd failed: %d (%s)", code, errOut)
	}
	if !strings.Contains(errOut, "most probable database: 1 of 2") {
		t.Errorf("stderr = %q", errOut)
	}
	if !strings.Contains(out, "x") || strings.Contains(out, "y") {
		t.Errorf("stdout = %q", out)
	}
	// Probabilities outside (0,1] are rejected.
	bad := writeCSV(t, "bad.csv", "id,A,B,w\n1,a,x,2\n")
	if _, _, code := run("mpd", "-in", bad, "-fd", "A -> B"); code != 1 {
		t.Error("invalid probability must fail")
	}
}

func TestCount(t *testing.T) {
	in := writeCSV(t, "office.csv", officeCSV)
	out, _, code := run("count", "-in", in, "-list", "5",
		"-fd", "facility -> city", "-fd", "facility room -> floor")
	if code != 0 {
		t.Fatalf("count failed: %d", code)
	}
	if !strings.Contains(out, "subset repairs: 2") || !strings.Contains(out, "polynomial counting") {
		t.Errorf("stdout = %q", out)
	}
	if strings.Count(out, "keep [") != 2 {
		t.Errorf("expected 2 listed repairs: %q", out)
	}
	// Non-chain note.
	abc := writeCSV(t, "abc.csv", "id,A,B,C,w\n1,a,b,c1,1\n2,a,b,c2,1\n")
	out, _, code = run("count", "-in", abc, "-fd", "A -> B", "-fd", "B -> C")
	if code != 0 || !strings.Contains(out, "bounded enumeration") {
		t.Errorf("non-chain count: code %d, out %q", code, out)
	}
}

func TestMissingInput(t *testing.T) {
	for _, sub := range []string{"srepair", "urepair", "mpd", "count"} {
		if _, _, code := run(sub, "-fd", "A -> B"); code != 1 {
			t.Errorf("%s without -in must fail", sub)
		}
		if _, _, code := run(sub, "-in", "/nonexistent.csv", "-fd", "A -> B"); code != 1 {
			t.Errorf("%s with missing file must fail", sub)
		}
	}
}

func TestDiffFlags(t *testing.T) {
	in := writeCSV(t, "office.csv", officeCSV)
	out, _, code := run("srepair", "-in", in, "-diff",
		"-fd", "facility -> city", "-fd", "facility room -> floor")
	if code != 0 {
		t.Fatal("srepair -diff failed")
	}
	if !strings.Contains(out, "- delete tuple") {
		t.Errorf("srepair diff = %q", out)
	}
	out, _, code = run("urepair", "-in", in, "-diff",
		"-fd", "facility -> city", "-fd", "facility room -> floor")
	if code != 0 {
		t.Fatal("urepair -diff failed")
	}
	if !strings.Contains(out, "~ tuple") || !strings.Contains(out, "facility:") {
		t.Errorf("urepair diff = %q", out)
	}
}

func TestEntails(t *testing.T) {
	out, _, code := run("entails", "-attrs", "A,B,C",
		"-fd", "A -> B", "-fd", "B -> C", "-check", "A -> C")
	if code != 0 {
		t.Fatal("entails failed")
	}
	if !strings.Contains(out, "fire A → B") || !strings.Contains(out, "⊢ C reached") {
		t.Errorf("derivation = %q", out)
	}
	out, _, code = run("entails", "-attrs", "A,B", "-fd", "A -> B", "-check", "B -> A")
	if code != 0 || !strings.Contains(out, "NOT entailed") {
		t.Errorf("non-entailment: code %d out %q", code, out)
	}
	if _, _, code := run("entails", "-attrs", "A,B", "-fd", "A -> B"); code != 1 {
		t.Error("missing -check must fail")
	}
	if _, _, code := run("entails", "-attrs", "A,B", "-fd", "A -> B", "-check", "A -> Z"); code != 1 {
		t.Error("bad -check must fail")
	}
}

// TestVerifyImpact: the verify subcommand prints the before/after
// impact report of an optimal S-repair — violations per FD, cells
// changed per block — and can write the repaired table out.
func TestVerifyImpact(t *testing.T) {
	in := writeCSV(t, "office.csv", officeCSV)
	dest := filepath.Join(t.TempDir(), "repaired.csv")
	out, errOut, code := run("verify", "-in", in, "-out", dest,
		"-fd", "facility -> city", "-fd", "facility room -> floor",
		"-workers", "2")
	if code != 0 {
		t.Fatalf("verify failed: %d, stderr %q", code, errOut)
	}
	for _, want := range []string{
		"impact: 4 rows",
		"deleted weight (dist_sub) 2",
		"FD",
		"facility → city",
		"facility room → floor",
		"cells-changed",
		"blocks changed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verify output missing %q:\n%s", want, out)
		}
	}
	// Both FDs start violated on Office and end clean.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "facility") {
			continue
		}
		f := strings.Fields(line)
		before, after := f[len(f)-2], f[len(f)-1]
		if before == "0" || after != "0" {
			t.Errorf("violations before/after = %s/%s in %q", before, after, line)
		}
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 3 { // header + 2 kept tuples
		t.Errorf("repaired CSV has %d lines:\n%s", got, data)
	}
	if _, _, code := run("verify", "-fd", "A -> B"); code != 1 {
		t.Error("missing -in must fail")
	}
	if _, _, code := run("verify", "-in", in, "-fd", "facility -> room", "-fd", "room -> floor"); code != 1 {
		t.Error("hard FD set must fail with the dichotomy error")
	}
}
