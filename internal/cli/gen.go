package cli

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/fdrepair"
	"repro/internal/workload"
)

// cmdGen generates synthetic dirty CSV tables for the other
// subcommands: a consistent table is built over the requested schema
// and a fraction of its cells corrupted.
func cmdGen(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("gen", stderr)
	attrs := fs.String("attrs", "A,B,C", "comma-separated attribute list")
	n := fs.Int("n", 100, "number of tuples")
	domain := fs.Int("domain", 10, "distinct clean groups")
	dirty := fs.Float64("dirty", 0.1, "fraction of corrupted cells")
	seed := fs.Int64("seed", 1, "random seed")
	kind := fs.String("kind", "dirty", "dirty | uniform | zipf | flights | office")
	out := fs.String("out", "", "output CSV (default: print)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return errors.New("-n must be positive")
	}
	rng := rand.New(rand.NewSource(*seed))
	var t *fdrepair.Table
	switch *kind {
	case "dirty", "uniform", "zipf":
		sc, err := fdrepair.NewSchema("T", strings.Split(*attrs, ",")...)
		if err != nil {
			return err
		}
		switch *kind {
		case "dirty":
			t = workload.DirtyTable(sc, nil, *n, *domain, *dirty, rng)
		case "uniform":
			t = workload.RandomTable(sc, *n, *domain, rng)
		case "zipf":
			t = workload.ZipfTable(sc, *n, *domain, rng)
		}
	case "flights":
		_, _, t = workload.Flights()
	case "office":
		_, _, t = workload.Office()
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if *out == "" {
		return t.WriteCSV(stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d tuples to %s\n", t.Len(), *out)
	return nil
}
