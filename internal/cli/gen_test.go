package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenKinds(t *testing.T) {
	for _, kind := range []string{"dirty", "uniform", "zipf", "flights", "office"} {
		out, errOut, code := run("gen", "-kind", kind, "-n", "20", "-seed", "7")
		if code != 0 {
			t.Fatalf("gen -kind %s failed: %d (%s)", kind, code, errOut)
		}
		lines := strings.Count(out, "\n")
		if lines < 2 {
			t.Errorf("gen -kind %s produced %d lines", kind, lines)
		}
		if !strings.HasPrefix(out, "id,") {
			t.Errorf("gen -kind %s missing id header: %q", kind, out[:20])
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	out1, _, _ := run("gen", "-kind", "dirty", "-n", "30", "-seed", "9", "-dirty", "0.2")
	out2, _, _ := run("gen", "-kind", "dirty", "-n", "30", "-seed", "9", "-dirty", "0.2")
	if out1 != out2 {
		t.Fatal("same seed must reproduce the same table")
	}
	out3, _, _ := run("gen", "-kind", "dirty", "-n", "30", "-seed", "10", "-dirty", "0.2")
	if out1 == out3 {
		t.Fatal("different seeds should differ")
	}
}

func TestGenToFileAndPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.csv")
	_, errOut, code := run("gen", "-kind", "dirty", "-n", "25", "-dirty", "0.3", "-out", path)
	if code != 0 {
		t.Fatalf("gen -out failed: %s", errOut)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	// The generated file feeds straight into srepair.
	_, errOut, code = run("srepair", "-in", path, "-fd", "A -> B", "-mode", "approx")
	if code != 0 {
		t.Fatalf("pipeline srepair failed: %s", errOut)
	}
	if !strings.Contains(errOut, "dist_sub") {
		t.Errorf("pipeline stderr = %q", errOut)
	}
}

func TestGenErrors(t *testing.T) {
	if _, _, code := run("gen", "-kind", "bogus"); code != 1 {
		t.Error("unknown kind must fail")
	}
	if _, _, code := run("gen", "-n", "0"); code != 1 {
		t.Error("n=0 must fail")
	}
	if _, _, code := run("gen", "-attrs", "A,A"); code != 1 {
		t.Error("duplicate attrs must fail")
	}
}
